package netpowerprop

// End-to-end integration tests: the full pipelines a user of this library
// would run, crossing module boundaries — fabric simulation feeding the
// per-chip mechanism studies, the analytical model feeding the cost model,
// and the OCS/scheduler stack sharing one fabric description.

import (
	"math"
	"testing"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/core"
	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/netsim"
	"netpowerprop/internal/ocs"
	"netpowerprop/internal/parking"
	"netpowerprop/internal/power"
	"netpowerprop/internal/rateadapt"
	"netpowerprop/internal/schedule"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// TestEndToEndFabricToRateAdapt runs the complete §4.3 pipeline: build a
// fat tree, run an ML ring job through the flow-level simulator, project
// one core switch's traffic onto per-pipeline utilization, and drive the
// rate-adaptation controller on it.
func TestEndToEndFabricToRateAdapt(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	job := traffic.Job{ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.2,
		Rate: 40 * units.Gbps, Pattern: traffic.Ring}
	flows, err := job.Flows(4)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.New(top)
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a switch that actually carried traffic.
	var busySwitch = -1
	for _, sw := range top.SwitchIDs() {
		if res.SwitchTrace[sw].MeanRate() > 0 {
			busySwitch = sw
			break
		}
	}
	if busySwitch < 0 {
		t.Fatal("no switch carried traffic")
	}

	cfg := asic.Config{
		Ports: 8, Pipelines: 4, MemoryBanks: 4,
		Max: device.SwitchMaxPower, Shares: asic.DefaultShares(),
		PipelineStaticFraction: 0.3,
	}
	times, utils, err := s.PipelineUtilization(res, busySwitch, cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(utils) != cfg.Pipelines {
		t.Fatalf("pipeline rows = %d", len(utils))
	}
	// Some pipeline saw load.
	var peak float64
	for _, row := range utils {
		for _, u := range row {
			if u > peak {
				peak = u
			}
		}
	}
	if peak <= 0 {
		t.Fatal("projected utilization all zero")
	}

	mk := func() rateadapt.Controller {
		c, err := rateadapt.NewReactive(1.1, 0.1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ra, err := rateadapt.Simulate(cfg, times, utils, mk, rateadapt.Options{GateIdleSerDes: true})
	if err != nil {
		t.Fatal(err)
	}
	// A 20%-duty workload on a mostly idle switch must save energy without
	// capacity shortfall.
	if ra.Savings <= 0 {
		t.Errorf("rate adaptation savings = %v, want > 0", ra.Savings)
	}
	if ra.ShortfallTime > 0 {
		t.Errorf("unexpected shortfall %v", ra.ShortfallTime)
	}
}

// TestEndToEndFabricToParking runs the §4.4 pipeline: the same fabric
// simulation drives the pipeline-parking policy through SwitchDemand.
func TestEndToEndFabricToParking(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	job := traffic.Job{ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.2,
		Rate: 40 * units.Gbps, Pattern: traffic.Ring}
	flows, err := job.Flows(4)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.New(top)
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	sw := top.SwitchIDs()[0]
	times, demand, err := s.SwitchDemand(res, sw, 400*units.Gbps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := parking.DefaultConfig()
	pol, err := parking.NewReactive(cfg.ASIC.Pipelines, cfg.MinActive, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := parking.Simulate(cfg, times, demand, pol)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Savings <= 0 {
		t.Errorf("parking savings = %v, want > 0 on a lightly loaded switch", pr.Savings)
	}
	if pr.DroppedBits > 0.05*pr.OfferedBits {
		t.Errorf("parking dropped %v of %v offered bits", pr.DroppedBits, pr.OfferedBits)
	}
}

// TestEndToEndScheduleThenTailor chains §4.2's two ideas: the job
// scheduler concentrates placement, then the OCS tailors the topology to
// the placed job's traffic — the combination powering off most switches.
func TestEndToEndScheduleThenTailor(t *testing.T) {
	f, err := ocs.ThreeTierFabric(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := schedule.Place(f, []schedule.JobReq{{ID: 1, Hosts: 8}}, schedule.Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	// Build the job's ring matrix over its placed hosts (synthetic IDs).
	ids := make([]int, 8)
	for i := range ids {
		ids[i] = i
	}
	m, err := (traffic.Job{ID: 1, Hosts: ids, Period: 10, CommRatio: 0.1,
		Rate: 100 * units.Gbps, Pattern: traffic.Ring}).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ocs.Tailor(f, m)
	if err != nil {
		t.Fatal(err)
	}
	// The OCS plan should be at least as concentrated as the scheduler's
	// estimate (it additionally knows the traffic pattern).
	if plan.ActiveSwitches() > placed.ActiveSwitches() {
		t.Errorf("tailored active (%d) exceeds scheduler estimate (%d)",
			plan.ActiveSwitches(), placed.ActiveSwitches())
	}
	cmp, err := ocs.Compare(plan, ocs.DefaultCompareParams())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Savings < 0.5 {
		t.Errorf("combined §4.2 savings = %v, want > 0.5", cmp.Savings)
	}
}

// TestEndToEndMultiJobConcentration runs the complete §4.2 story on the
// simulator: two training jobs are placed by the scheduler (concentrate
// vs. spread), realized on an explicit fat tree, their flows simulated,
// and the network energy compared with unused switches powered off. The
// concentrated placement must deliver the same bits for less energy.
func TestEndToEndMultiJobConcentration(t *testing.T) {
	const k = 8
	f, err := ocs.ThreeTierFabric(k, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	top, err := fattree.BuildThreeTier(k, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.JobReq{{ID: 1, Hosts: 8}, {ID: 2, Hosts: 4}}

	runPolicy := func(pol schedule.Policy) (energy float64, delivered float64) {
		t.Helper()
		placed, err := schedule.Place(f, jobs, pol)
		if err != nil {
			t.Fatal(err)
		}
		mapping, err := placed.MapToTopology(top)
		if err != nil {
			t.Fatal(err)
		}
		var flows []traffic.Flow
		for _, req := range jobs {
			job := traffic.Job{ID: req.ID, Hosts: mapping[req.ID], Period: 1,
				CommRatio: 0.2, Rate: 20 * units.Gbps, Pattern: traffic.Ring}
			fl, err := job.Flows(2)
			if err != nil {
				t.Fatal(err)
			}
			flows = append(flows, fl...)
		}
		s := netsim.New(top)
		res, err := s.Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range res.Flows {
			delivered += st.DeliveredBits
		}
		// Energy with unused switches powered off: only switches that
		// carried traffic draw power (two-state at 10% proportionality).
		model, err := powerModel()
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range top.SwitchIDs() {
			tr := res.SwitchTrace[sw]
			if tr.MeanRate() == 0 {
				continue // powered off by the scheduler
			}
			e, err := tr.Energy(model, device.SwitchCapacity, netsim.TwoState)
			if err != nil {
				t.Fatal(err)
			}
			energy += e.Joules()
		}
		return energy, delivered
	}

	concEnergy, concBits := runPolicy(schedule.Concentrate)
	spreadEnergy, spreadBits := runPolicy(schedule.Spread)
	if math.Abs(concBits-spreadBits) > 1e-3*spreadBits {
		t.Fatalf("policies delivered different work: %v vs %v bits", concBits, spreadBits)
	}
	if concEnergy >= spreadEnergy {
		t.Errorf("concentrated energy %v J should beat spread %v J", concEnergy, spreadEnergy)
	}
}

// powerModel builds the standard 750 W / 10%-proportional switch model.
func powerModel() (power.Model, error) {
	return power.NewModel(device.SwitchMaxPower, device.NetworkProportionality)
}

// TestEndToEndModelToCost chains the analytical model: Table 3 cell →
// §3.2 annualized dollars, verifying consistency between the two paths.
func TestEndToEndModelToCost(t *testing.T) {
	grid, err := core.ComputeSavingsGrid(core.Baseline(),
		[]units.Bandwidth{400 * units.Gbps}, []float64{0.50}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	viaGrid, err := core.DefaultCostModel().Annualize(grid.Cell(0, 0).SavedPower)
	if err != nil {
		t.Fatal(err)
	}
	viaSection, err := core.Section32(0.50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaGrid.Total()-viaSection.Total()) > 1 {
		t.Errorf("two cost paths disagree: %v vs %v", viaGrid.Total(), viaSection.Total())
	}
}

// TestEndToEndEnergyConsistency cross-checks the analytical two-state
// model against the flow-level simulator on a topology both can express:
// a full k=4 three-tier fat tree at full-capacity host count, running the
// paper's 10%-duty workload. Both predict the same network energy per
// iteration for the switch class.
func TestEndToEndEnergyConsistency(t *testing.T) {
	const k = 4
	top, err := fattree.BuildThreeTier(k, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	job := traffic.Job{ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.1,
		Rate: 1 * units.Gbps, Pattern: traffic.Ring}
	flows, err := job.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.New(top)
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Energy(res, 0.10, netsim.TwoState)
	if err != nil {
		t.Fatal(err)
	}
	// Analytical: every switch idles 0.9 s and is busy up to 0.1 s. The
	// ring only crosses a subset of switches, so the simulator's energy is
	// bounded by [all-idle, all-busy-during-comm].
	nSwitches := float64(len(top.SwitchIDs()))
	idleAll := nSwitches * 0.9 * 750 * 1.0 // W x s at 10% prop idle=675... compute exactly below
	_ = idleAll
	idlePower := 675.0 // 750 * (1-0.10)
	lo := nSwitches * idlePower * 1.0
	hi := nSwitches * (idlePower*0.9 + 750*0.1)
	got := rep.SwitchEnergy.Joules()
	if got < lo-1e-6 || got > hi+1e-6 {
		t.Errorf("simulated switch energy %v outside analytical bounds [%v, %v]", got, lo, hi)
	}
}
