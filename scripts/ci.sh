#!/bin/sh
# ci.sh is the single source of truth for the repo's CI checks. The GitHub
# workflow (.github/workflows/ci.yml) calls one step per stage so the UI
# still shows a line per check, and developers reproduce CI locally with:
#
#   scripts/ci.sh all
#
# or run a single step, e.g. `scripts/ci.sh kill-resume-smoke`.
set -eu

cd "$(dirname "$0")/.."

step_fmt() {
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needed on:" >&2
		echo "$out" >&2
		return 1
	fi
}

step_vet() {
	go vet ./...
}

step_build() {
	go build ./...
}

step_test() {
	go test -race ./...
}

# Chaos smoke: the fault-injection and panic-containment paths, under the
# race detector.
step_chaos_smoke() {
	go test -race -run 'Fault|Panic|Deadline' ./...
}

# Jobs race: the durable-job subsystem exercised twice under -race — its
# drain/resume/cancel paths are the most concurrency-sensitive code in the
# repo.
step_jobs_race() {
	go test -race -count=2 ./internal/jobs/
}

# Fault determinism: the same seed must print the same failure-rate table.
step_fault_determinism() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go run ./cmd/netsim faults -seed 7 >"$tmp/faults1.txt"
	go run ./cmd/netsim faults -seed 7 >"$tmp/faults2.txt"
	cmp "$tmp/faults1.txt" "$tmp/faults2.txt"
}

# Kill-and-resume smoke: run a journaled job, kill the process dead (exit 3,
# no terminal record) right after row 2 checkpoints, resume it in a fresh
# process, and require the recovered table to be byte-identical to an
# uninterrupted run. The journal row counts must also match — the resumed
# run may not recompute rows that were already checkpointed.
step_kill_resume_smoke() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/netsim" ./cmd/netsim

	rc=0
	"$tmp/netsim" -job -jobdir "$tmp/killed" -killrow 2 faults -seed 7 \
		>"$tmp/killed.txt" 2>/dev/null || rc=$?
	if [ "$rc" -ne 3 ]; then
		echo "killrow run exited $rc, want the dead-exit code 3" >&2
		return 1
	fi

	"$tmp/netsim" -resume -jobdir "$tmp/killed" >"$tmp/resumed.txt" 2>/dev/null
	"$tmp/netsim" -job -jobdir "$tmp/clean" faults -seed 7 \
		>"$tmp/clean.txt" 2>/dev/null

	if ! cmp "$tmp/resumed.txt" "$tmp/clean.txt"; then
		echo "resumed table differs from uninterrupted run" >&2
		return 1
	fi

	killed_rows="$(cat "$tmp"/killed/*.jsonl | grep -c '"t":"row"')"
	clean_rows="$(cat "$tmp"/clean/*.jsonl | grep -c '"t":"row"')"
	if [ "$killed_rows" -ne "$clean_rows" ]; then
		echo "journal row records: resumed=$killed_rows uninterrupted=$clean_rows (a checkpointed row was recomputed)" >&2
		return 1
	fi
	echo "kill-and-resume OK: byte-identical table, $killed_rows row records (no recompute)"
}

# Metrics smoke: boot the real server, drive a request through it, and
# validate /metrics with the strict exposition parser (cmd/expcheck) —
# HELP/TYPE on every family, histogram bucket monotonicity, label syntax.
step_metrics_smoke() {
	tmp="$(mktemp -d)"
	go build -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/expcheck" ./cmd/expcheck
	addr="127.0.0.1:18432"
	"$tmp/serve" -addr "$addr" -jobdir "$tmp/jobs" -loglevel warn &
	pid=$!
	trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
	"$tmp/expcheck" \
		-probe "http://$addr/healthz" \
		-probe "http://$addr/v1/whatif?gpus=64" \
		-require netpowerprop_engine_cache_misses_total \
		-require netpowerprop_engine_compute_duration_seconds \
		-require netpowerprop_http_requests_total \
		-require netpowerprop_jobs_submitted_total \
		"http://$addr/metrics"
}

# Topologies determinism: the cross-topology zoo comparison must print the
# same table twice — same seed, same fault trace, byte for byte — even
# though rows are built by a parallel fan-out and several generators route
# through the installed path enumerator.
step_topologies_determinism() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go run ./cmd/netsim topologies -hosts 16 -seed 7 >"$tmp/zoo1.txt"
	go run ./cmd/netsim topologies -hosts 16 -seed 7 >"$tmp/zoo2.txt"
	cmp "$tmp/zoo1.txt" "$tmp/zoo2.txt"
}

step_bench_smoke() {
	go test -run=NONE -bench . -benchtime=1x ./...
}

# Bench guard: a short measured run of the hot-path benchmarks compared
# against the frozen BENCH_netsim.json. The default x5 ns/op tolerance
# absorbs runner noise; override with BENCH_TOLERANCE for slower machines.
step_bench_guard() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/benchguard" ./cmd/benchguard
	go test -run=NONE -benchmem -benchtime=100x \
		-bench 'BenchmarkFabricSim$|BenchmarkMaxMin$|BenchmarkMaxMinDense$|BenchmarkTopoPaths|BenchmarkTopoSim' \
		. >"$tmp/bench.out"
	go test -run=NONE -benchmem -benchtime=100x \
		-bench 'BenchmarkServeBatch$|BenchmarkServeStream$' \
		./cmd/serve >>"$tmp/bench.out"
	"$tmp/benchguard" -baseline BENCH_netsim.json "$tmp/bench.out"
}

# Loadgen smoke: boot the real server, offer a seeded mixed workload
# (point queries, sweeps, batches, NDJSON streams) open-loop, and require
# zero errors; then run the singles-vs-batch capacity comparison and
# require /v1/batch to sustain at least 2x the goodput of the same rows
# as individual requests — the claim BENCH_netsim.json records.
step_loadgen_smoke() {
	tmp="$(mktemp -d)"
	go build -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen
	addr="127.0.0.1:18461"
	# Queue deep enough to hold a batch's rows: batch submissions admit
	# every unique row into the pool at once, by design.
	"$tmp/serve" -addr "$addr" -queue 4096 -loglevel warn &
	pid=$!
	trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
	for _ in $(seq 1 50); do
		if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
		sleep 0.1
	done
	"$tmp/loadgen" -addr "http://$addr" -mix mixed -rps 150 -duration 2s -seed 7 -maxerr 0
	"$tmp/loadgen" -addr "http://$addr" -compare -rows 1024 -batchrows 128 -conc 32 -minratio 2
}

# Cluster smoke: boot three gossiping replicas (serve built with -race)
# plus a single-node control, spray the seeded mixed workload across all
# three replicas, and SIGKILL one mid-run. Three things must hold:
#
#   1. The load run ends with zero failed rows — survivors absorb the dead
#      replica's keyspace (degraded local compute) and the client fails
#      over, so the kill is invisible to the workload.
#   2. A sweep stream cut off by the kill resumes on a survivor with
#      Last-Row, and the spliced bytes equal the single-node golden.
#   3. A journaled job running on the killed replica is adopted from the
#      shared job directory by a survivor (lease expiry + claim sweep) and
#      finishes without recomputing checkpointed rows: the journal's row
#      record count matches an uninterrupted single-node run's.
step_cluster_smoke() {
	tmp="$(mktemp -d)"
	go build -race -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen
	a="127.0.0.1:18471"
	b="127.0.0.1:18472"
	c="127.0.0.1:18473"
	solo="127.0.0.1:18474"
	peers="http://$a,http://$b,http://$c"
	for addr in "$a" "$b" "$c"; do
		"$tmp/serve" -addr "$addr" -peers "$peers" -cluster-addr "http://$addr" \
			-gossip-interval 100ms -jobdir "$tmp/jobs" -leasettl 2s \
			-queue 4096 -loglevel warn &
		eval "p_${addr##*:}=$!"
	done
	"$tmp/serve" -addr "$solo" -jobdir "$tmp/jobs-solo" -queue 4096 -loglevel warn &
	p_solo=$!
	pids="$p_18471 $p_18472 $p_18473 $p_solo"
	trap 'kill $pids 2>/dev/null; wait $pids 2>/dev/null; rm -rf "$tmp"' EXIT
	for addr in "$a" "$b" "$c" "$solo"; do
		for _ in $(seq 1 100); do
			if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
			sleep 0.1
		done
	done

	# Golden: one uninterrupted sweep stream from the single-node control.
	curl -sf "http://$solo/v1/sweep?steps=40&stream=1" >"$tmp/golden.ndjson"

	# Cut stream: the first 10 frames from the replica about to die.
	curl -sfN "http://$c/v1/sweep?steps=40&stream=1" | head -n 10 >"$tmp/head.ndjson"

	# Journaled job on the doomed replica, plus the uninterrupted control
	# run of the same job on the single node. Wait until the doomed job is
	# checkpointing rows so the kill lands mid-job.
	id="$(curl -sf -X POST "http://$c/v1/jobs" -d '{"op":"sweep","steps":20000}' |
		grep -o '"id": *"[^"]*"' | head -n 1 | sed 's/.*"\([^"]*\)"$/\1/')"
	if [ -z "$id" ]; then
		echo "job submission to $c returned no id" >&2
		return 1
	fi
	curl -sf -X POST "http://$solo/v1/jobs" -d '{"op":"sweep","steps":20000}' >/dev/null
	for _ in $(seq 1 200); do
		rows="$(cat "$tmp"/jobs/*.jsonl 2>/dev/null | grep -c '"t":"row"')" || rows=0
		if [ "$rows" -ge 500 ]; then break; fi
		sleep 0.05
	done

	# Open-loop spray across all three replicas; kill one a second in.
	"$tmp/loadgen" -peers "$peers" -mix mixed -rps 60 -duration 4s -seed 7 \
		-maxerr 0 >"$tmp/loadgen.out" &
	lg=$!
	sleep 1
	kill -9 "$p_18473"
	rc=0
	wait "$lg" || rc=$?
	cat "$tmp/loadgen.out"
	if [ "$rc" -ne 0 ]; then
		echo "loadgen failed ($rc): the replica kill was client-visible" >&2
		return 1
	fi

	# Resume the cut stream on a survivor: Last-Row names the last frame
	# the client holds; head + tail must equal the golden byte for byte.
	curl -sf -H "Last-Row: 9" "http://$a/v1/sweep?steps=40&stream=1" >"$tmp/tail.ndjson"
	cat "$tmp/head.ndjson" "$tmp/tail.ndjson" >"$tmp/spliced.ndjson"
	if ! cmp "$tmp/golden.ndjson" "$tmp/spliced.ndjson"; then
		echo "spliced failover stream differs from the single-node golden" >&2
		return 1
	fi

	# The killed replica's job must finish on a survivor.
	adopted=""
	for _ in $(seq 1 300); do
		for addr in "$a" "$b"; do
			if curl -sf "http://$addr/v1/jobs/$id" 2>/dev/null | grep -q '"state": *"done"'; then
				adopted="$addr"
				break
			fi
		done
		if [ -n "$adopted" ]; then break; fi
		sleep 0.1
	done
	if [ -z "$adopted" ]; then
		echo "job $id was not adopted and finished by a survivor within 30s" >&2
		return 1
	fi

	# No recompute: wait out the control job, then compare row records.
	for _ in $(seq 1 300); do
		if curl -sf "http://$solo/v1/jobs" | grep -q '"state": *"done"'; then break; fi
		sleep 0.1
	done
	killed_rows="$(cat "$tmp"/jobs/*.jsonl | grep -c '"t":"row"')"
	clean_rows="$(cat "$tmp"/jobs-solo/*.jsonl | grep -c '"t":"row"')"
	if [ "$killed_rows" -ne "$clean_rows" ]; then
		echo "journal row records: cluster=$killed_rows single-node=$clean_rows (a checkpointed row was recomputed)" >&2
		return 1
	fi
	echo "cluster smoke OK: kill invisible to the workload, byte-identical stream splice, job adopted by $adopted with $killed_rows row records (no recompute)"
}

step_fuzz_smoke() {
	go test -run=NONE -fuzz 'FuzzMaxMinDense$' -fuzztime=200x ./internal/netsim
}

run_step() {
	echo "=== ci: $1 ===" >&2
	case "$1" in
	fmt) step_fmt ;;
	vet) step_vet ;;
	build) step_build ;;
	test) step_test ;;
	chaos-smoke) step_chaos_smoke ;;
	jobs-race) step_jobs_race ;;
	fault-determinism) step_fault_determinism ;;
	topologies-determinism) step_topologies_determinism ;;
	kill-resume-smoke) step_kill_resume_smoke ;;
	metrics-smoke) step_metrics_smoke ;;
	bench-smoke) step_bench_smoke ;;
	bench-guard) step_bench_guard ;;
	loadgen-smoke) step_loadgen_smoke ;;
	cluster-smoke) step_cluster_smoke ;;
	fuzz-smoke) step_fuzz_smoke ;;
	*)
		echo "unknown step: $1" >&2
		echo "steps: fmt vet build test chaos-smoke jobs-race fault-determinism topologies-determinism kill-resume-smoke metrics-smoke bench-smoke bench-guard loadgen-smoke cluster-smoke fuzz-smoke all" >&2
		return 2
		;;
	esac
}

if [ $# -eq 0 ]; then
	set -- all
fi

if [ "$1" = all ]; then
	for s in fmt vet build test chaos-smoke jobs-race fault-determinism topologies-determinism kill-resume-smoke metrics-smoke bench-smoke bench-guard loadgen-smoke cluster-smoke fuzz-smoke; do
		# Steps that set EXIT traps get a subshell so temp dirs clean up
		# per step rather than at script exit.
		(run_step "$s")
	done
	echo "=== ci: all steps passed ===" >&2
else
	(run_step "$1")
fi
