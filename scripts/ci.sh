#!/bin/sh
# ci.sh is the single source of truth for the repo's CI checks. The GitHub
# workflow (.github/workflows/ci.yml) calls one step per stage so the UI
# still shows a line per check, and developers reproduce CI locally with:
#
#   scripts/ci.sh all
#
# or run a single step, e.g. `scripts/ci.sh kill-resume-smoke`.
set -eu

cd "$(dirname "$0")/.."

step_fmt() {
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needed on:" >&2
		echo "$out" >&2
		return 1
	fi
}

step_vet() {
	go vet ./...
}

step_build() {
	go build ./...
}

step_test() {
	go test -race ./...
}

# Chaos smoke: the fault-injection and panic-containment paths, under the
# race detector.
step_chaos_smoke() {
	go test -race -run 'Fault|Panic|Deadline' ./...
}

# Jobs race: the durable-job subsystem exercised twice under -race — its
# drain/resume/cancel paths are the most concurrency-sensitive code in the
# repo.
step_jobs_race() {
	go test -race -count=2 ./internal/jobs/
}

# Fault determinism: the same seed must print the same failure-rate table.
step_fault_determinism() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go run ./cmd/netsim faults -seed 7 >"$tmp/faults1.txt"
	go run ./cmd/netsim faults -seed 7 >"$tmp/faults2.txt"
	cmp "$tmp/faults1.txt" "$tmp/faults2.txt"
}

# Kill-and-resume smoke: run a journaled job, kill the process dead (exit 3,
# no terminal record) right after row 2 checkpoints, resume it in a fresh
# process, and require the recovered table to be byte-identical to an
# uninterrupted run. The journal row counts must also match — the resumed
# run may not recompute rows that were already checkpointed.
step_kill_resume_smoke() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/netsim" ./cmd/netsim

	rc=0
	"$tmp/netsim" -job -jobdir "$tmp/killed" -killrow 2 faults -seed 7 \
		>"$tmp/killed.txt" 2>/dev/null || rc=$?
	if [ "$rc" -ne 3 ]; then
		echo "killrow run exited $rc, want the dead-exit code 3" >&2
		return 1
	fi

	"$tmp/netsim" -resume -jobdir "$tmp/killed" >"$tmp/resumed.txt" 2>/dev/null
	"$tmp/netsim" -job -jobdir "$tmp/clean" faults -seed 7 \
		>"$tmp/clean.txt" 2>/dev/null

	if ! cmp "$tmp/resumed.txt" "$tmp/clean.txt"; then
		echo "resumed table differs from uninterrupted run" >&2
		return 1
	fi

	killed_rows="$(cat "$tmp"/killed/*.jsonl | grep -c '"t":"row"')"
	clean_rows="$(cat "$tmp"/clean/*.jsonl | grep -c '"t":"row"')"
	if [ "$killed_rows" -ne "$clean_rows" ]; then
		echo "journal row records: resumed=$killed_rows uninterrupted=$clean_rows (a checkpointed row was recomputed)" >&2
		return 1
	fi
	echo "kill-and-resume OK: byte-identical table, $killed_rows row records (no recompute)"
}

# Metrics smoke: boot the real server, drive a request through it, and
# validate /metrics with the strict exposition parser (cmd/expcheck) —
# HELP/TYPE on every family, histogram bucket monotonicity, label syntax.
step_metrics_smoke() {
	tmp="$(mktemp -d)"
	go build -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/expcheck" ./cmd/expcheck
	addr="127.0.0.1:18432"
	"$tmp/serve" -addr "$addr" -jobdir "$tmp/jobs" -loglevel warn &
	pid=$!
	trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
	"$tmp/expcheck" \
		-probe "http://$addr/healthz" \
		-probe "http://$addr/v1/whatif?gpus=64" \
		-require netpowerprop_engine_cache_misses_total \
		-require netpowerprop_engine_compute_duration_seconds \
		-require netpowerprop_http_requests_total \
		-require netpowerprop_jobs_submitted_total \
		"http://$addr/metrics"
}

# Topologies determinism: the cross-topology zoo comparison must print the
# same table twice — same seed, same fault trace, byte for byte — even
# though rows are built by a parallel fan-out and several generators route
# through the installed path enumerator.
step_topologies_determinism() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go run ./cmd/netsim topologies -hosts 16 -seed 7 >"$tmp/zoo1.txt"
	go run ./cmd/netsim topologies -hosts 16 -seed 7 >"$tmp/zoo2.txt"
	cmp "$tmp/zoo1.txt" "$tmp/zoo2.txt"
}

# Co-simulation determinism: the same seeded topologies run three ways —
# in-process models, live against cmd/cosim-stub in echo mode (recording
# a cassette), and replayed from that cassette with no subprocess — must
# print the same table byte for byte. Also runs the cosim package's
# race-enabled tests, which cover the locked client under the engine's
# parallel row fan-out and torn-cassette fail-closed fallback.
step_cosim_determinism() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/netsim" ./cmd/netsim
	go build -o "$tmp/cosim-stub" ./cmd/cosim-stub
	"$tmp/netsim" topologies -hosts 12 -seed 7 >"$tmp/plain.txt"
	"$tmp/netsim" -cosim "$tmp/cosim-stub" -cosim-record "$tmp/cassette.jsonl" \
		topologies -hosts 12 -seed 7 >"$tmp/live.txt"
	"$tmp/netsim" -cosim-replay "$tmp/cassette.jsonl" \
		topologies -hosts 12 -seed 7 >"$tmp/replay.txt"
	if ! cmp "$tmp/plain.txt" "$tmp/live.txt"; then
		echo "cosim live run differs from in-process models" >&2
		return 1
	fi
	if ! cmp "$tmp/plain.txt" "$tmp/replay.txt"; then
		echo "cosim cassette replay differs from in-process models" >&2
		return 1
	fi
	go test -race ./internal/cosim/
	echo "cosim-determinism OK: plain, live stub, and cassette replay byte-identical ($(wc -l <"$tmp/cassette.jsonl") cassette entries)"
}

step_bench_smoke() {
	go test -run=NONE -bench . -benchtime=1x ./...
}

# Bench guard: a short measured run of the hot-path benchmarks compared
# against the frozen BENCH_netsim.json. The default x5 ns/op tolerance
# absorbs runner noise; override with BENCH_TOLERANCE for slower machines.
step_bench_guard() {
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/benchguard" ./cmd/benchguard
	go test -run=NONE -benchmem -benchtime=100x \
		-bench 'BenchmarkFabricSim$|BenchmarkFabricSimCosimOff$|BenchmarkMaxMin$|BenchmarkMaxMinDense$|BenchmarkTopoPaths|BenchmarkTopoSim' \
		. >"$tmp/bench.out"
	go test -run=NONE -benchmem -benchtime=100x \
		-bench 'BenchmarkServeBatch$|BenchmarkServeStream$' \
		./cmd/serve >>"$tmp/bench.out"
	go test -run=NONE -benchmem -benchtime=10000x \
		-bench 'BenchmarkChaosDisarmed$' \
		./internal/chaos >>"$tmp/bench.out"
	"$tmp/benchguard" -baseline BENCH_netsim.json "$tmp/bench.out"
}

# Loadgen smoke: boot the real server, offer a seeded mixed workload
# (point queries, sweeps, batches, NDJSON streams) open-loop, and require
# zero errors; then run the singles-vs-batch capacity comparison and
# require /v1/batch to sustain at least 2x the goodput of the same rows
# as individual requests — the claim BENCH_netsim.json records.
step_loadgen_smoke() {
	tmp="$(mktemp -d)"
	go build -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen
	addr="127.0.0.1:18461"
	# Queue deep enough to hold a batch's rows: batch submissions admit
	# every unique row into the pool at once, by design.
	"$tmp/serve" -addr "$addr" -queue 4096 -loglevel warn &
	pid=$!
	trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
	for _ in $(seq 1 50); do
		if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
		sleep 0.1
	done
	"$tmp/loadgen" -addr "http://$addr" -mix mixed -rps 150 -duration 2s -seed 7 -maxerr 0
	"$tmp/loadgen" -addr "http://$addr" -compare -rows 1024 -batchrows 128 -conc 32 -minratio 2
}

# Cluster smoke: boot three gossiping replicas (serve built with -race)
# plus a single-node control, spray the seeded mixed workload across all
# three replicas, and SIGKILL one mid-run. Three things must hold:
#
#   1. The load run ends with zero failed rows — survivors absorb the dead
#      replica's keyspace (degraded local compute) and the client fails
#      over, so the kill is invisible to the workload.
#   2. A sweep stream cut off by the kill resumes on a survivor with
#      Last-Row, and the spliced bytes equal the single-node golden.
#   3. A journaled job running on the killed replica is adopted from the
#      shared job directory by a survivor (lease expiry + claim sweep) and
#      finishes without recomputing checkpointed rows: the journal's row
#      record count matches an uninterrupted single-node run's.
step_cluster_smoke() {
	tmp="$(mktemp -d)"
	go build -race -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen
	a="127.0.0.1:18471"
	b="127.0.0.1:18472"
	c="127.0.0.1:18473"
	solo="127.0.0.1:18474"
	peers="http://$a,http://$b,http://$c"
	for addr in "$a" "$b" "$c"; do
		"$tmp/serve" -addr "$addr" -peers "$peers" -cluster-addr "http://$addr" \
			-gossip-interval 100ms -jobdir "$tmp/jobs" -leasettl 2s \
			-queue 4096 -loglevel warn &
		eval "p_${addr##*:}=$!"
	done
	"$tmp/serve" -addr "$solo" -jobdir "$tmp/jobs-solo" -queue 4096 -loglevel warn &
	p_solo=$!
	pids="$p_18471 $p_18472 $p_18473 $p_solo"
	trap 'kill $pids 2>/dev/null; wait $pids 2>/dev/null; rm -rf "$tmp"' EXIT
	for addr in "$a" "$b" "$c" "$solo"; do
		for _ in $(seq 1 100); do
			if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
			sleep 0.1
		done
	done

	# Golden: one uninterrupted sweep stream from the single-node control.
	curl -sf "http://$solo/v1/sweep?steps=40&stream=1" >"$tmp/golden.ndjson"

	# Cut stream: the first 10 frames from the replica about to die.
	curl -sfN "http://$c/v1/sweep?steps=40&stream=1" | head -n 10 >"$tmp/head.ndjson"

	# Journaled job on the doomed replica, plus the uninterrupted control
	# run of the same job on the single node. Wait until the doomed job is
	# checkpointing rows so the kill lands mid-job.
	id="$(curl -sf -X POST "http://$c/v1/jobs" -d '{"op":"sweep","steps":20000}' |
		grep -o '"id": *"[^"]*"' | head -n 1 | sed 's/.*"\([^"]*\)"$/\1/')"
	if [ -z "$id" ]; then
		echo "job submission to $c returned no id" >&2
		return 1
	fi
	curl -sf -X POST "http://$solo/v1/jobs" -d '{"op":"sweep","steps":20000}' >/dev/null
	for _ in $(seq 1 200); do
		rows="$(cat "$tmp"/jobs/*.jsonl 2>/dev/null | grep -c '"t":"row"')" || rows=0
		if [ "$rows" -ge 500 ]; then break; fi
		sleep 0.05
	done

	# Open-loop spray across all three replicas; kill one a second in.
	"$tmp/loadgen" -peers "$peers" -mix mixed -rps 60 -duration 4s -seed 7 \
		-maxerr 0 >"$tmp/loadgen.out" &
	lg=$!
	sleep 1
	kill -9 "$p_18473"
	rc=0
	wait "$lg" || rc=$?
	cat "$tmp/loadgen.out"
	if [ "$rc" -ne 0 ]; then
		echo "loadgen failed ($rc): the replica kill was client-visible" >&2
		return 1
	fi

	# Resume the cut stream on a survivor: Last-Row names the last frame
	# the client holds; head + tail must equal the golden byte for byte.
	curl -sf -H "Last-Row: 9" "http://$a/v1/sweep?steps=40&stream=1" >"$tmp/tail.ndjson"
	cat "$tmp/head.ndjson" "$tmp/tail.ndjson" >"$tmp/spliced.ndjson"
	if ! cmp "$tmp/golden.ndjson" "$tmp/spliced.ndjson"; then
		echo "spliced failover stream differs from the single-node golden" >&2
		return 1
	fi

	# The killed replica's job must finish on a survivor.
	adopted=""
	for _ in $(seq 1 300); do
		for addr in "$a" "$b"; do
			if curl -sf "http://$addr/v1/jobs/$id" 2>/dev/null | grep -q '"state": *"done"'; then
				adopted="$addr"
				break
			fi
		done
		if [ -n "$adopted" ]; then break; fi
		sleep 0.1
	done
	if [ -z "$adopted" ]; then
		echo "job $id was not adopted and finished by a survivor within 30s" >&2
		return 1
	fi

	# No recompute: wait out the control job, then compare row records.
	for _ in $(seq 1 300); do
		if curl -sf "http://$solo/v1/jobs" | grep -q '"state": *"done"'; then break; fi
		sleep 0.1
	done
	killed_rows="$(cat "$tmp"/jobs/*.jsonl | grep -c '"t":"row"')"
	clean_rows="$(cat "$tmp"/jobs-solo/*.jsonl | grep -c '"t":"row"')"
	if [ "$killed_rows" -ne "$clean_rows" ]; then
		echo "journal row records: cluster=$killed_rows single-node=$clean_rows (a checkpointed row was recomputed)" >&2
		return 1
	fi
	echo "cluster smoke OK: kill invisible to the workload, byte-identical stream splice, job adopted by $adopted with $killed_rows row records (no recompute)"
}

step_fuzz_smoke() {
	go test -run=NONE -fuzz 'FuzzMaxMinDense$' -fuzztime=200x ./internal/netsim
}

# wait_healthz polls a replica's /healthz until it answers.
wait_healthz() {
	for _ in $(seq 1 100); do
		if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "replica $1 never became healthy" >&2
	return 1
}

# admit_allowed_sum totals netpowerprop_admit_allowed_total (all priority
# classes) across the given replicas — the "admission charged exactly
# once" probe.
admit_allowed_sum() {
	total=0
	for addr in "$@"; do
		v="$(curl -sf "http://$addr/metrics" |
			awk '/^netpowerprop_admit_allowed_total/ {s+=$2} END {printf "%d", s}')"
		total=$((total + ${v:-0}))
	done
	echo "$total"
}

# chaos_matrix_seed runs one fault schedule: a 3-replica -race cluster,
# each replica armed with a seed-derived count-bounded failpoint plan
# (forward errors and drops, added RTT, gossip drops, response-write
# latency), then checks the run's invariants:
#
#   1. 20 point queries sprayed across the replicas under live faults
#      charge admission exactly once each (forwards and hedges carry
#      X-Forwarded-Admit; degrades reuse the ingress charge).
#   2. The seeded mixed open-loop workload ends with zero failed rows.
#   3. A sweep stream from every replica is byte-identical to the
#      fault-free control's.
#   4. At least one fault actually injected (the schedule is not inert).
#   5. Every circuit breaker re-closes once the bounded faults clear.
chaos_matrix_seed() {
	seed="$1"
	tmp="$2"
	ma="127.0.0.1:18481"
	mb="127.0.0.1:18482"
	mc="127.0.0.1:18483"
	mpeers="http://$ma,http://$mb,http://$mc"
	spec_a="seed=$seed;site=cluster.forward.send kind=error count=6;site=cluster.gossip.send kind=drop count=4"
	spec_b="seed=$seed;site=cluster.forward.rtt kind=latency delay=40ms count=10;site=cluster.gossip.deliver kind=drop count=4"
	spec_c="seed=$seed;site=serve.response.write kind=latency delay=15ms count=6;site=cluster.forward.send kind=drop count=2"
	mpids=""
	for entry in "$ma|$spec_a" "$mb|$spec_b" "$mc|$spec_c"; do
		addr="${entry%%|*}"
		spec="${entry#*|}"
		"$tmp/serve" -addr "$addr" -peers "$mpeers" -cluster-addr "http://$addr" \
			-gossip-interval 100ms -hedge 50ms -gossip-seed "$seed" \
			-queue 4096 -loglevel warn -chaos "$spec" &
		mpids="$mpids $!"
	done
	MATRIX_PIDS="$MATRIX_PIDS $mpids"
	for addr in "$ma" "$mb" "$mc"; do
		wait_healthz "$addr" || return 1
	done

	# Invariant 1: exactly-once admission while faults are live.
	before="$(admit_allowed_sum "$ma" "$mb" "$mc")"
	j=0
	while [ "$j" -lt 20 ]; do
		case $((j % 3)) in
		0) tgt="$ma" ;;
		1) tgt="$mb" ;;
		2) tgt="$mc" ;;
		esac
		curl -sf "http://$tgt/v1/whatif?gpus=$((3000 + j))" >/dev/null || {
			echo "point query $j to $tgt failed client-visibly under faults" >&2
			return 1
		}
		j=$((j + 1))
	done
	after="$(admit_allowed_sum "$ma" "$mb" "$mc")"
	if [ $((after - before)) -ne 20 ]; then
		echo "admission charged $((after - before)) times for 20 requests (double or lost charge)" >&2
		return 1
	fi

	# Invariant 2: the seeded open-loop workload sees zero failures.
	rc=0
	"$tmp/loadgen" -peers "$mpeers" -mix mixed -rps 60 -duration 3s \
		-seed "$seed" -maxerr 0 >"$tmp/loadgen-$seed.out" 2>&1 || rc=$?
	if [ "$rc" -ne 0 ]; then
		cat "$tmp/loadgen-$seed.out"
		echo "loadgen failed ($rc): injected faults were client-visible" >&2
		return 1
	fi

	# Invariant 3: every replica's stream is byte-identical to the
	# fault-free control's.
	for addr in "$ma" "$mb" "$mc"; do
		curl -sf "http://$addr/v1/sweep?steps=40&stream=1" >"$tmp/sweep-$seed.ndjson" || return 1
		if ! cmp "$tmp/golden.ndjson" "$tmp/sweep-$seed.ndjson"; then
			echo "replica $addr stream differs from the fault-free control" >&2
			return 1
		fi
	done

	# Invariant 4: the schedule was not inert.
	inj=0
	for addr in "$ma" "$mb" "$mc"; do
		if curl -sf "http://$addr/v1/cluster" | grep -q '"chaos_injected": *[1-9]'; then
			inj=1
		fi
	done
	if [ "$inj" -ne 1 ]; then
		echo "no faults injected — the schedule never fired" >&2
		return 1
	fi

	# Invariant 5: breakers re-close once the count-bounded faults are
	# spent. Probe traffic gives half-open circuits their trial request.
	deadline=$(($(date +%s) + 20))
	k=0
	while :; do
		k=$((k + 1))
		for addr in "$ma" "$mb" "$mc"; do
			curl -sf "http://$addr/v1/whatif?gpus=$((9000 + k))" >/dev/null 2>&1 || true
		done
		open=0
		for addr in "$ma" "$mb" "$mc"; do
			if curl -sf "http://$addr/v1/cluster" | grep -Eq '"state": *"(half-)?open"'; then
				open=1
			fi
		done
		if [ "$open" -eq 0 ]; then break; fi
		if [ "$(date +%s)" -ge "$deadline" ]; then
			echo "a circuit breaker never re-closed after the faults cleared" >&2
			return 1
		fi
		sleep 0.3
	done

	kill $mpids 2>/dev/null
	wait $mpids 2>/dev/null
	echo "chaos-matrix seed=$seed OK"
}

# chaos_matrix_journal is the durability leg: an injected fsync failure
# mid-job must interrupt the job, flip /healthz to degraded, 503 new
# submits while compute traffic keeps serving, and a chaos-free restart
# must resume the job from its checkpoint — journal row records equal an
# uninterrupted control run's, so nothing checkpointed was recomputed.
chaos_matrix_journal() {
	tmp="$1"
	jaddr="127.0.0.1:18486"
	jctl="127.0.0.1:18487"
	"$tmp/serve" -addr "$jctl" -jobdir "$tmp/jm-ctl" -queue 4096 -loglevel warn &
	MATRIX_PIDS="$MATRIX_PIDS $!"
	"$tmp/serve" -addr "$jaddr" -jobdir "$tmp/jm" -queue 4096 -loglevel warn \
		-chaos "seed=7;site=jobs.journal.fsync kind=fsyncfail count=1 after=40" &
	jp=$!
	MATRIX_PIDS="$MATRIX_PIDS $jp"
	wait_healthz "$jaddr" || return 1
	wait_healthz "$jctl" || return 1

	body='{"op":"sweep","steps":200}'
	id="$(curl -sf -X POST "http://$jaddr/v1/jobs" -d "$body" |
		grep -o '"id": *"[^"]*"' | head -n 1 | sed 's/.*"\([^"]*\)"$/\1/')"
	if [ -z "$id" ]; then
		echo "journal leg: job submission returned no id" >&2
		return 1
	fi
	curl -sf -X POST "http://$jctl/v1/jobs" -d "$body" >/dev/null

	# The fsync fault fires at the 41st append (row 40): the job must
	# land interrupted, not failed and not done.
	hit=""
	for _ in $(seq 1 200); do
		if curl -sf "http://$jaddr/v1/jobs/$id" | grep -q '"state": *"interrupted"'; then
			hit=1
			break
		fi
		sleep 0.05
	done
	if [ -z "$hit" ]; then
		echo "journal leg: job never interrupted on the injected fsync failure" >&2
		return 1
	fi
	if ! curl -sf "http://$jaddr/healthz" | grep -q '"status": *"degraded"'; then
		echo "journal leg: /healthz not degraded after the journal fault" >&2
		return 1
	fi
	code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$jaddr/v1/jobs" -d '{"op":"sweep","steps":4}')"
	if [ "$code" != 503 ]; then
		echo "journal leg: submit during degradation answered $code, want 503" >&2
		return 1
	fi
	if ! curl -sf "http://$jaddr/v1/whatif?gpus=64" >/dev/null; then
		echo "journal leg: compute-only traffic failed during journal degradation" >&2
		return 1
	fi

	# Chaos-free restart over the same journal dir: resume, finish, and
	# recompute nothing that was checkpointed.
	kill "$jp" 2>/dev/null
	wait "$jp" 2>/dev/null
	"$tmp/serve" -addr "$jaddr" -jobdir "$tmp/jm" -queue 4096 -loglevel warn &
	MATRIX_PIDS="$MATRIX_PIDS $!"
	wait_healthz "$jaddr" || return 1
	fin=""
	for _ in $(seq 1 300); do
		if curl -sf "http://$jaddr/v1/jobs/$id" | grep -q '"state": *"done"'; then
			fin=1
			break
		fi
		sleep 0.05
	done
	if [ -z "$fin" ]; then
		echo "journal leg: resumed job never finished" >&2
		return 1
	fi
	for _ in $(seq 1 300); do
		if curl -sf "http://$jctl/v1/jobs/$id" | grep -q '"state": *"done"'; then break; fi
		sleep 0.05
	done
	faulted_rows="$(cat "$tmp"/jm/*.jsonl | grep -c '"t":"row"')"
	control_rows="$(cat "$tmp"/jm-ctl/*.jsonl | grep -c '"t":"row"')"
	if [ "$faulted_rows" -ne "$control_rows" ]; then
		echo "journal leg: row records faulted=$faulted_rows control=$control_rows (a checkpointed row was recomputed)" >&2
		return 1
	fi
	echo "chaos-matrix journal leg OK: interrupted -> degraded -> resumed with $faulted_rows row records (no recompute)"
}

# Chaos matrix: the PR's capstone gate. A seeded sweep of deterministic
# fault schedules over a 3-replica -race cluster under mixed open-loop
# load, plus a journal-fault durability leg. Every schedule is count-
# bounded, so the cluster must not only survive the faults but fully
# heal: breakers re-closed, streams byte-identical to a fault-free
# control, admission charged exactly once per request, journals resumed
# with no recomputed rows. The failing seed is printed for single-seed
# reproduction (CHAOS_SEEDS=<seed> scripts/ci.sh chaos-matrix).
step_chaos_matrix() {
	tmp="$(mktemp -d)"
	MATRIX_PIDS=""
	trap 'kill $MATRIX_PIDS 2>/dev/null; wait $MATRIX_PIDS 2>/dev/null; rm -rf "$tmp"' EXIT
	go build -race -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen

	# Fault-free control: the golden stream every faulted replica must
	# still reproduce byte for byte.
	control="127.0.0.1:18480"
	"$tmp/serve" -addr "$control" -queue 4096 -loglevel warn &
	MATRIX_PIDS="$MATRIX_PIDS $!"
	wait_healthz "$control"
	curl -sf "http://$control/v1/sweep?steps=40&stream=1" >"$tmp/golden.ndjson"

	for seed in ${CHAOS_SEEDS:-3 7 11 23 42}; do
		if ! chaos_matrix_seed "$seed" "$tmp"; then
			echo "chaos-matrix FAILED at seed=$seed" >&2
			echo "reproduce just this schedule with: CHAOS_SEEDS=$seed scripts/ci.sh chaos-matrix" >&2
			return 1
		fi
	done
	if ! chaos_matrix_journal "$tmp"; then
		echo "chaos-matrix FAILED in the journal-fault leg (fixed seed=7)" >&2
		echo "reproduce with: CHAOS_SEEDS='' scripts/ci.sh chaos-matrix" >&2
		return 1
	fi
	echo "chaos-matrix OK: schedules [${CHAOS_SEEDS:-3 7 11 23 42}] + journal leg survived with all invariants intact"
}

run_step() {
	echo "=== ci: $1 ===" >&2
	case "$1" in
	fmt) step_fmt ;;
	vet) step_vet ;;
	build) step_build ;;
	test) step_test ;;
	chaos-smoke) step_chaos_smoke ;;
	jobs-race) step_jobs_race ;;
	fault-determinism) step_fault_determinism ;;
	topologies-determinism) step_topologies_determinism ;;
	cosim-determinism) step_cosim_determinism ;;
	kill-resume-smoke) step_kill_resume_smoke ;;
	metrics-smoke) step_metrics_smoke ;;
	bench-smoke) step_bench_smoke ;;
	bench-guard) step_bench_guard ;;
	loadgen-smoke) step_loadgen_smoke ;;
	cluster-smoke) step_cluster_smoke ;;
	chaos-matrix) step_chaos_matrix ;;
	fuzz-smoke) step_fuzz_smoke ;;
	*)
		echo "unknown step: $1" >&2
		echo "steps: fmt vet build test chaos-smoke jobs-race fault-determinism topologies-determinism cosim-determinism kill-resume-smoke metrics-smoke bench-smoke bench-guard loadgen-smoke cluster-smoke chaos-matrix fuzz-smoke all" >&2
		return 2
		;;
	esac
}

if [ $# -eq 0 ]; then
	set -- all
fi

if [ "$1" = all ]; then
	for s in fmt vet build test chaos-smoke jobs-race fault-determinism topologies-determinism cosim-determinism kill-resume-smoke metrics-smoke bench-smoke bench-guard loadgen-smoke cluster-smoke chaos-matrix fuzz-smoke; do
		# Steps that set EXIT traps get a subshell so temp dirs clean up
		# per step rather than at script exit.
		(run_step "$s")
	done
	echo "=== ci: all steps passed ===" >&2
else
	(run_step "$1")
fi
