#!/bin/sh
# bench.sh runs the simulator hot-path benchmarks and writes
# BENCH_netsim.json at the repo root: current ns/op, B/op, and allocs/op
# for each benchmark, alongside the frozen pre-optimization seed numbers
# so the speedup is visible without digging through git history.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_netsim.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running root benchmarks..." >&2
go test -run=NONE -benchmem \
	-bench 'BenchmarkFabricSim$|BenchmarkRunParallel$|BenchmarkMaxMin$|BenchmarkMaxMinDense$|BenchmarkTable3$|BenchmarkFig2$|BenchmarkTopoPaths|BenchmarkTopoSim' \
	. >>"$tmp"
echo "running event-queue benchmark..." >&2
go test -run=NONE -benchmem -bench 'BenchmarkSchedule$' ./internal/sim >>"$tmp"

# The seed baselines below were measured on this repo at the commit before
# the dense-solver/path-cache/free-list optimizations, same machine class.
awk -v out="$out" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i+1) == "ns/op") ns[name] = $i
		if ($(i+1) == "B/op") bytes[name] = $i
		if ($(i+1) == "allocs/op") allocs[name] = $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	base["BenchmarkFabricSim"] = "{\"ns_per_op\": 577161, \"bytes_per_op\": 385824, \"allocs_per_op\": 3824}"
	base["BenchmarkMaxMin"] = "{\"ns_per_op\": 62429, \"bytes_per_op\": 9104, \"allocs_per_op\": 14}"
	printf "{\n  \"benchmarks\": {\n" > out
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": {\n", name >> out
		printf "      \"current\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			ns[name], bytes[name], allocs[name] >> out
		if (name in base) printf ",\n      \"seed\": %s\n", base[name] >> out
		else printf "\n" >> out
		printf "    }%s\n", (i < n ? "," : "") >> out
	}
	printf "  },\n" >> out
	printf "  \"notes\": \"seed = pre-optimization baseline (map-based MaxMin, per-run path enumeration, per-event heap allocation); current = dense Solver + path cache + event free list. Regenerate with scripts/bench.sh.\"\n" >> out
	printf "}\n" >> out
}
' "$tmp"

echo "wrote $out" >&2
