#!/bin/sh
# bench.sh runs the simulator hot-path benchmarks and writes
# BENCH_netsim.json at the repo root: current ns/op, B/op, and allocs/op
# for each benchmark, alongside the frozen pre-optimization seed numbers
# so the speedup is visible without digging through git history.
#
# It also runs the serving-capacity experiment: the same distinct what-if
# rows pushed as individual /v1/whatif requests and as /v1/batch
# submissions against a live server (cmd/loadgen -compare), recorded under
# "serve_capacity" with the batch/single goodput ratio.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_netsim.json}"
tmp="$(mktemp)"
tmpdir="$(mktemp -d)"
trap 'rm -f "$tmp"; rm -rf "$tmpdir"' EXIT

echo "running root benchmarks..." >&2
go test -run=NONE -benchmem \
	-bench 'BenchmarkFabricSim$|BenchmarkRunParallel$|BenchmarkMaxMin$|BenchmarkMaxMinDense$|BenchmarkTable3$|BenchmarkFig2$|BenchmarkTopoPaths|BenchmarkTopoSim' \
	. >>"$tmp"
echo "running event-queue benchmark..." >&2
go test -run=NONE -benchmem -bench 'BenchmarkSchedule$' ./internal/sim >>"$tmp"
echo "running serve-path benchmarks..." >&2
go test -run=NONE -benchmem -bench 'BenchmarkServeBatch$|BenchmarkServeStream$' ./cmd/serve >>"$tmp"

echo "running serve-capacity comparison (singles vs /v1/batch)..." >&2
go build -o "$tmpdir/serve" ./cmd/serve
go build -o "$tmpdir/loadgen" ./cmd/loadgen
addr="127.0.0.1:18471"
# The queue must hold a full batch's rows: batch submissions admit every
# unique row into the pool at once, by design.
"$tmpdir/serve" -addr "$addr" -queue 4096 -loglevel warn &
pid=$!
trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null; rm -f "$tmp"; rm -rf "$tmpdir"' EXIT
for _ in $(seq 1 50); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done
"$tmpdir/loadgen" -addr "http://$addr" -compare -rows 1024 -batchrows 128 -conc 32 \
	-out "$tmpdir/capacity.json" >&2
kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true

# The seed baselines below were measured on this repo at the commit before
# the named optimization landed, same machine class.
awk -v out="$out" -v capfile="$tmpdir/capacity.json" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i+1) == "ns/op") ns[name] = $i
		if ($(i+1) == "B/op") bytes[name] = $i
		if ($(i+1) == "allocs/op") allocs[name] = $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	base["BenchmarkFabricSim"] = "{\"ns_per_op\": 577161, \"bytes_per_op\": 385824, \"allocs_per_op\": 3824}"
	base["BenchmarkMaxMin"] = "{\"ns_per_op\": 62429, \"bytes_per_op\": 9104, \"allocs_per_op\": 14}"
	base["BenchmarkTopoPathsDragonfly"] = "{\"ns_per_op\": 1520248, \"bytes_per_op\": 862656, \"allocs_per_op\": 7624}"
	base["BenchmarkTopoPathsTorus3D"] = "{\"ns_per_op\": 2036794, \"bytes_per_op\": 895616, \"allocs_per_op\": 8336}"
	printf "{\n  \"benchmarks\": {\n" > out
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": {\n", name >> out
		printf "      \"current\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			ns[name], bytes[name], allocs[name] >> out
		if (name in base) printf ",\n      \"seed\": %s\n", base[name] >> out
		else printf "\n" >> out
		printf "    }%s\n", (i < n ? "," : "") >> out
	}
	printf "  },\n" >> out
	ncap = 0
	while ((getline line < capfile) > 0) caplines[++ncap] = line
	if (ncap > 0) {
		printf "  \"serve_capacity\": " >> out
		for (j = 1; j <= ncap; j++) {
			if (j == 1) printf "%s\n", caplines[j] >> out
			else if (j == ncap) printf "  %s,\n", caplines[j] >> out
			else printf "  %s\n", caplines[j] >> out
		}
	}
	printf "  \"notes\": \"seed = pre-optimization baseline (map-based MaxMin, per-run path enumeration, per-event heap allocation, per-call BFS scratch in topo paths); current = dense Solver + path cache + event free list + pooled path-enumeration scratch. serve_capacity = cmd/loadgen -compare: the same 1024 distinct what-if rows as individual /v1/whatif requests vs 128-row /v1/batch submissions, goodput_ratio = batch rows/s over single rows/s. Regenerate with scripts/bench.sh.\"\n" >> out
	printf "}\n" >> out
}
' "$tmp"

echo "wrote $out" >&2
