package engine

import (
	"context"
	"errors"
	"sync"

	"netpowerprop/internal/obs"
)

// This file is the engine's batched execution surface. DoBatch answers
// many what-if requests in one call, amortizing the per-request costs the
// interactive path pays N times: one normalization/keying pass, one cache
// pass with a single counter update, duplicate keys collapsed before
// dispatch (not just during flight), and one pending-admission decision
// per unique miss so the shed/Retry-After machinery sees the batch's true
// row count immediately. Rows never fail the batch: each row carries its
// own result or error, mirroring what N independent Do calls would have
// returned.

// BatchItem is the outcome of one row of a DoBatch call.
type BatchItem struct {
	// Result is the row's computed (or cached) result; nil when Err is set.
	Result *Result `json:"result,omitempty"`
	// Err is the row's failure, if any.
	Err error `json:"-"`
	// Cached reports the row was answered from the cache without waiting
	// on any computation.
	Cached bool `json:"cached,omitempty"`
	// Shared reports the row piggybacked on another row's (or another
	// request's) in-flight computation rather than running its own.
	Shared bool `json:"shared,omitempty"`
}

// batchGroup collects the batch rows that normalized to one canonical key.
type batchGroup struct {
	req    Request
	idxs   []int
	res    *Result
	err    error
	shared bool
	shed   bool
}

// DoBatch answers a batch of requests, one BatchItem per request in input
// order. Normalization, cache lookup, duplicate collapsing, and admission
// are amortized across the batch; unique cache misses are dispatched
// through the shared singleflight group and the same bounded worker pool
// interactive requests use. Admission is per unique miss: rows beyond the
// queue bound are shed individually with ErrOverloaded while the rest of
// the batch proceeds, so a batch can partially succeed under overload
// exactly as N independent requests would.
func (e *Engine) DoBatch(ctx context.Context, reqs []Request) []BatchItem {
	e.batches.Add(1)
	e.batchRows.Add(uint64(len(reqs)))
	items := make([]BatchItem, len(reqs))

	// Pass 1: normalize, key, and consult the cache for every row,
	// grouping the misses by canonical key. Counter updates are batched.
	groups := make(map[string]*batchGroup)
	var order []string // deterministic dispatch/fan-out order
	var hits, misses, errs uint64
	for i := range reqs {
		norm, err := reqs[i].Normalize()
		if err != nil {
			items[i].Err = err
			errs++
			continue
		}
		key := norm.Key()
		if res, ok := e.cache.Get(key); ok {
			items[i] = BatchItem{Result: res, Cached: true}
			hits++
			continue
		}
		misses++
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{req: norm}
			groups[key] = g
			order = append(order, key)
		}
		g.idxs = append(g.idxs, i)
	}
	if hits > 0 {
		e.hits.Add(hits)
	}
	if misses > 0 {
		e.misses.Add(misses)
	}
	if errs > 0 {
		e.errors.Add(errs)
	}
	if len(order) == 0 {
		return items
	}
	if err := ctx.Err(); err != nil {
		for _, key := range order {
			for _, i := range groups[key].idxs {
				items[i].Err = err
			}
		}
		e.errors.Add(uint64(misses))
		return items
	}

	// Pass 2: admit unique misses against the bounded queue. Reserving
	// every admitted row in pending before any compute starts is what
	// makes batch Retry-After row-aware: a 100-row batch raises the queue
	// depth by its unique-miss count at once, not by 1. admitted must be
	// a fresh slice, not order[:0]: Pass 4 still ranges over order, and
	// aliasing would let an admitted key overwrite an earlier shed key
	// whenever pending fluctuates mid-loop under concurrent load.
	admitted := make([]string, 0, len(order))
	for _, key := range order {
		g := groups[key]
		if p := e.pending.Add(1); e.maxQueue >= 0 && p > int64(e.workers+e.maxQueue) {
			e.pending.Add(-1)
			e.sheds.Add(1)
			g.shed = true
			e.log.Warn("batch row shed", "trace", obs.TraceID(ctx), "op", string(g.req.Op),
				"pending", p-1, "workers", e.workers, "maxqueue", e.maxQueue)
			continue
		}
		admitted = append(admitted, key)
	}

	// Pass 3: dispatch admitted unique keys through the shared
	// singleflight group. Worker-pool width still bounds concurrent
	// computation (runCompute acquires a slot); the goroutines here only
	// hold queue positions already reserved in pending.
	var wg sync.WaitGroup
	for _, key := range admitted {
		g := groups[key]
		wg.Add(1)
		go func(key string, g *batchGroup) {
			defer wg.Done()
			defer e.pending.Add(-1)
			g.res, g.shared, g.err = e.flight.do(ctx, key, func() (*Result, error) {
				return e.runCompute(ctx, key, g.req)
			})
		}(key, g)
	}
	wg.Wait()

	// Pass 4: fan each group's outcome to its rows, in input order within
	// the group. The first row of a computed group "owns" the computation;
	// the rest shared it, matching what the interactive path would report
	// had the same rows arrived concurrently.
	var shared, rowErrs, deadlines, canceled uint64
	for _, key := range order {
		g := groups[key]
		for j, i := range g.idxs {
			switch {
			case g.shed:
				items[i].Err = ErrOverloaded
				rowErrs++
			case g.err != nil:
				items[i].Err = g.err
				rowErrs++
				switch {
				case errors.Is(g.err, context.DeadlineExceeded):
					deadlines++
				case errors.Is(g.err, context.Canceled):
					canceled++
				}
			default:
				items[i] = BatchItem{Result: g.res, Shared: g.shared || j > 0}
				if items[i].Shared {
					shared++
				}
			}
		}
	}
	if shared > 0 {
		e.shared.Add(shared)
	}
	if rowErrs > 0 {
		e.errors.Add(rowErrs)
	}
	if deadlines > 0 {
		e.deadlines.Add(deadlines)
	}
	if canceled > 0 {
		e.canceled.Add(canceled)
	}
	return items
}
