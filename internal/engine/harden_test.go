package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func chaosReq(params map[string]float64) Request {
	return Request{Op: OpScenario, Scenario: "chaos", Params: params}
}

// A panicking computation must surface as an error — not kill the process —
// and bump the panic counter and degraded health.
func TestPanicRecovered(t *testing.T) {
	e := New(Options{Workers: 2})
	_, _, err := e.Do(context.Background(), chaosReq(map[string]float64{"panic": 1}))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected panic") {
		t.Errorf("panic error %q does not name the panic value", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	m := e.Metrics()
	if m.Panics != 1 {
		t.Errorf("panics = %d, want 1", m.Panics)
	}
	h := e.Health(time.Minute)
	if h.Status != "degraded" || !strings.Contains(h.Reason, "panic") {
		t.Errorf("health after panic = %+v, want degraded with panic reason", h)
	}
	// Outside the window the panic no longer degrades health.
	if h := e.Health(time.Nanosecond); h.Status != "ok" {
		t.Errorf("health with expired window = %+v, want ok", h)
	}
	// The engine still serves requests afterwards.
	if _, _, err := e.Do(context.Background(), chaosReq(nil)); err != nil {
		t.Fatalf("engine dead after recovered panic: %v", err)
	}
}

// A panic inside a parallel row worker is contained the same way.
func TestPanicInRowWorker(t *testing.T) {
	_, err := parallelRows(8, func(i int) ([]string, error) {
		if i == 3 {
			panic("row worker boom")
		}
		return []string{"ok"}, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

// Once Workers+MaxQueue computations are pending, further misses shed with
// ErrOverloaded instead of queuing unboundedly.
func TestLoadShedding(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: 1})
	release := make(chan struct{})
	launched := make(chan struct{}, 8)
	// Occupy the worker and the one queue slot with distinct slow requests.
	// The sleeps must be long enough that both stay pending while the poll
	// loop below looks — on a single-core runner a millisecond window can
	// fall entirely between two samples.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		sleep := 0.2 * float64(i+1) // distinct keys, so no singleflight collapse
		go func() {
			launched <- struct{}{}
			<-release
			_, _, err := e.Do(context.Background(), chaosReq(map[string]float64{"sleep": sleep}))
			done <- err
		}()
	}
	<-launched
	<-launched
	close(release)
	// Wait until both are admitted (pending == 2).
	deadline := time.After(2 * time.Second)
	for e.Metrics().Pending < 2 {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want 2", e.Metrics().Pending)
		case <-time.After(time.Millisecond):
		}
	}
	_, _, err := e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.003}))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if m := e.Metrics(); m.Sheds != 1 {
		t.Errorf("sheds = %d, want 1", m.Sheds)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
	// With the pool drained, the same request is admitted again. (Drain
	// first: pending is released slightly after Do returns.)
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := e.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, err := e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.003})); err != nil {
		t.Errorf("request after drain failed: %v", err)
	}
}

// A request deadline propagates into the computation: a slow scenario is
// cut off with DeadlineExceeded and counted.
func TestDeadlinePropagation(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := e.Do(ctx, chaosReq(map[string]float64{"sleep": 10}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if m := e.Metrics(); m.Deadlines != 1 {
		t.Errorf("deadlines = %d, want 1", m.Deadlines)
	}
	// The abandoned computation eventually finishes and frees the pool.
	drainCtx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer dcancel()
	if err := e.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// Drain returns promptly when idle and honors its context when work hangs.
func TestDrain(t *testing.T) {
	e := New(Options{Workers: 1})
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 30})) //nolint:errcheck
	deadline := time.After(2 * time.Second)
	for e.Metrics().Pending == 0 {
		select {
		case <-deadline:
			t.Fatal("slow request never admitted")
		case <-time.After(time.Millisecond):
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with hung work = %v, want DeadlineExceeded", err)
	}
}

// Health reports saturation when more requests are pending than workers.
func TestHealthSaturation(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: 4})
	if h := e.Health(time.Minute); h.Status != "ok" {
		t.Fatalf("idle health = %+v", h)
	}
	for i := 0; i < 3; i++ {
		sleep := 0.2 + 0.001*float64(i)
		go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": sleep})) //nolint:errcheck
	}
	deadline := time.After(2 * time.Second)
	for e.Metrics().Pending < 2 {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want >= 2", e.Metrics().Pending)
		case <-time.After(time.Millisecond):
		}
	}
	if h := e.Health(time.Minute); h.Status != "degraded" || !strings.Contains(h.Reason, "saturated") {
		t.Errorf("health under load = %+v, want degraded/saturated", h)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// An unbounded queue (negative MaxQueue) never sheds.
func TestUnboundedQueue(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: -1})
	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		sleep := 0.001 * float64(i+1)
		go func() {
			_, _, err := e.Do(context.Background(), chaosReq(map[string]float64{"sleep": sleep}))
			done <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Errorf("request failed: %v", err)
		}
	}
	if m := e.Metrics(); m.Sheds != 0 {
		t.Errorf("sheds = %d, want 0", m.Sheds)
	}
}
