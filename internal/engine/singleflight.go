package engine

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent computations of the same key: the
// first caller computes, later callers wait for the leader's result. A
// waiter whose context expires stops waiting, but the leader's
// computation continues (and still populates the cache).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per concurrent key; shared reports whether this caller
// piggybacked on another caller's computation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.res, false, c.err
}
