package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheGetAdd(t *testing.T) {
	c := newCache(4, 2)
	if _, ok := c.Get("a"); ok {
		t.Error("Get on empty cache returned a value")
	}
	r := &Result{Op: OpWhatIf}
	c.Add("a", r)
	got, ok := c.Get("a")
	if !ok || got != r {
		t.Errorf("Get(a) = %v, %v", got, ok)
	}
	// Re-adding the same key refreshes, not duplicates.
	c.Add("a", &Result{Op: OpTable3})
	if c.Len() != 1 {
		t.Errorf("Len = %d after refresh, want 1", c.Len())
	}
	if got, _ := c.Get("a"); got.Op != OpTable3 {
		t.Errorf("refresh did not replace value: %v", got.Op)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newCache(2, 1)
	c.Add("a", &Result{})
	c.Add("b", &Result{})
	// Touch "a" so "b" is the LRU victim.
	c.Get("a")
	c.Add("c", &Result{})
	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("new entry c missing")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
}

func TestCacheShardBounds(t *testing.T) {
	// Degenerate parameters still give a working cache.
	c := newCache(0, 0)
	c.Add("a", &Result{})
	if _, ok := c.Get("a"); !ok {
		t.Error("degenerate cache lost its entry")
	}
	// Population never exceeds (per-shard capacity) x shards.
	c = newCache(10, 4)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("k%d", i), &Result{})
	}
	if c.Len() > 12 { // ceil(10/4)=3 per shard x 4 shards
		t.Errorf("Len = %d exceeds sharded capacity", c.Len())
	}
}

func TestFlightGroupCollapse(t *testing.T) {
	g := newFlightGroup()
	var calls, entered, sharedCount atomic.Int32
	block := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			res, shared, err := g.do(context.Background(), "k", func() (*Result, error) {
				calls.Add(1)
				<-block
				return &Result{Op: OpWhatIf}, nil
			})
			if err != nil || res == nil {
				t.Errorf("do: res=%v err=%v", res, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Release the leader only once every goroutine is about to enter (or
	// already parked in) the flight group, so the calls collapse.
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared count = %d, want %d", sharedCount.Load(), n-1)
	}
}

func TestFlightGroupWaiterCancel(t *testing.T) {
	g := newFlightGroup()
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.do(context.Background(), "k", func() (*Result, error) {
			close(leaderIn)
			<-block
			return &Result{}, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.do(ctx, "k", func() (*Result, error) {
		t.Error("follower ran fn")
		return nil, nil
	})
	if err == nil || !shared {
		t.Errorf("canceled waiter: shared=%v err=%v", shared, err)
	}
	close(block)
	<-done
}
