package engine

import (
	"context"
	"fmt"

	"netpowerprop/internal/core"
	"netpowerprop/internal/units"
)

// compute dispatches one normalized request to the model code. Every
// branch reproduces the corresponding CLI computation exactly. The context
// carries the request deadline; long scenarios check it between rows.
func compute(ctx context.Context, req Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Op: req.Op, Request: req}
	switch req.Op {
	case OpWhatIf:
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		cl, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		res.Cluster = summarize(cl)
	case OpTable3:
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		grid, err := core.ComputeSavingsGrid(cfg, core.Table3Bandwidths(),
			core.Table3Proportionalities(), cfg.NetworkProportionality)
		if err != nil {
			return nil, err
		}
		res.Grid = gridOf(grid, req.Interp)
	case OpFig3:
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		kind, err := core.ParseBudgetKind(req.Budget)
		if err != nil {
			return nil, err
		}
		curves, err := core.Fig3Parallel(cfg, core.Table3Bandwidths(), req.Proportionalities, kind, 0)
		if err != nil {
			return nil, err
		}
		cross, err := core.BestBandwidth(curves)
		if err != nil {
			return nil, err
		}
		res.Curves = curvesOf(curves)
		res.Crossovers = crossoversOf(cross)
	case OpFig4:
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		kind, err := core.ParseBudgetKind(req.Budget)
		if err != nil {
			return nil, err
		}
		curves, err := core.Fig4Parallel(cfg, core.Table3Bandwidths(), req.Proportionalities,
			req.FixedCommRatio, kind, 0)
		if err != nil {
			return nil, err
		}
		res.Curves = curvesOf(curves)
	case OpSweep:
		pts, err := computeSweep(req)
		if err != nil {
			return nil, err
		}
		res.Sweep = pts
	case OpCost:
		c, err := computeCost(req)
		if err != nil {
			return nil, err
		}
		res.Cost = c
	case OpScenario:
		table, err := scenarios[req.Scenario].execute(ctx, req)
		if err != nil {
			return nil, err
		}
		res.Table = table
	default:
		return nil, fmt.Errorf("engine: unknown op %q", req.Op)
	}
	return res, nil
}

// computeSweep evaluates the proportionality sweep: steps+1 clusters from
// 0 to 1, savings relative to the proportionality-0 row.
func computeSweep(req Request) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, req.Steps+1)
	for i := 0; i <= req.Steps; i++ {
		pt, err := sweepRow(req, i)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// sweepRow computes one sweep point independently of every other point:
// the proportionality-0 reference is recomputed per row (the model is
// analytic, so this is cheap and bit-deterministic), which lets the jobs
// subsystem checkpoint and resume a sweep row by row while producing the
// exact bytes of a serial computeSweep.
func sweepRow(req Request, i int) (SweepPoint, error) {
	cfg, err := req.config()
	if err != nil {
		return SweepPoint{}, err
	}
	refCfg := cfg
	refCfg.NetworkProportionality = 0
	refCl, err := core.New(refCfg)
	if err != nil {
		return SweepPoint{}, err
	}
	refPower := refCl.AveragePower()
	p := float64(i) / float64(req.Steps)
	c := cfg
	c.NetworkProportionality = p
	cl, err := core.New(c)
	if err != nil {
		return SweepPoint{}, err
	}
	avg := cl.AveragePower()
	return SweepPoint{
		Proportionality:   p,
		AveragePower:      powerQ(avg),
		PeakPower:         powerQ(cl.PeakPower()),
		NetworkShare:      cl.NetworkShare(),
		NetworkEfficiency: cl.NetworkEfficiency(),
		Savings:           float64(refPower-avg) / float64(refPower),
	}, nil
}

// computeCost reproduces §3.2: the power saved by lifting the scenario's
// network proportionality from the 10% baseline to the requested value,
// annualized with the given cost model.
func computeCost(req Request) (*CostResult, error) {
	const refProp = 0.10
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	prop := *req.NetworkProportionality
	grid, err := core.ComputeSavingsGrid(cfg, []units.Bandwidth{cfg.Bandwidth}, []float64{prop}, refProp)
	if err != nil {
		return nil, err
	}
	saved := grid.Cell(0, 0).SavedPower
	model := core.CostModel{PricePerKWh: *req.Price, CoolingOverhead: *req.Cooling}
	s, err := model.Annualize(saved)
	if err != nil {
		return nil, err
	}
	return &CostResult{
		Proportionality:    prop,
		RefProportionality: refProp,
		SavedPower:         powerQ(saved),
		ElectricityPerYear: s.ElectricityPerYear,
		CoolingPerYear:     s.CoolingPerYear,
		TotalPerYear:       s.Total(),
	}, nil
}
