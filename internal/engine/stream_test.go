package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

// A streamed request emits one frame per plan row, in order, with row
// bytes identical to what ExecRow produces, and returns a Result
// byte-identical to the non-streaming path.
func TestStreamMatchesDo(t *testing.T) {
	for _, req := range []Request{
		{Op: OpSweep, Steps: 4},
		{Op: OpTable3},
		{Op: OpWhatIf}, // single-row fallback plan
	} {
		req := req
		t.Run(string(req.Op), func(t *testing.T) {
			streamed := New(Options{})
			var order []int
			var frames []json.RawMessage
			res, err := streamed.Stream(context.Background(), req, func(i int, data json.RawMessage) error {
				order = append(order, i)
				frames = append(frames, append(json.RawMessage(nil), data...))
				return nil
			})
			if err != nil {
				t.Fatalf("Stream: %v", err)
			}
			plan, err := streamed.Plan(req)
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) != plan.Rows() {
				t.Fatalf("got %d frames, plan has %d rows", len(frames), plan.Rows())
			}
			for i, want := range order {
				if i != want {
					t.Fatalf("frame order %v, want ascending from 0", order)
				}
			}
			// Frames must reassemble into the exact result.
			re, err := plan.Assemble(frames, nil)
			if err != nil {
				t.Fatalf("Assemble(frames): %v", err)
			}
			gotJSON, _ := json.Marshal(res)
			reJSON, _ := json.Marshal(re)
			if string(gotJSON) != string(reJSON) {
				t.Error("assembled frames differ from streamed result")
			}
			want := do(t, New(Options{}), req)
			wantJSON, _ := json.Marshal(want)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("streamed result differs from Do:\nstream: %s\n    do: %s", gotJSON, wantJSON)
			}
			// The assembled result is primed: a follow-up Do is a hit.
			if _, cached, err := streamed.Do(context.Background(), req); err != nil || !cached {
				t.Errorf("post-stream Do cached=%v err=%v, want cache hit", cached, err)
			}
			m := streamed.Metrics()
			if m.Streams != 1 || m.StreamRows != uint64(plan.Rows()) {
				t.Errorf("streams=%d streamRows=%d, want 1/%d", m.Streams, m.StreamRows, plan.Rows())
			}
		})
	}
}

// Canceling mid-stream counts as canceled (not a deadline), releases the
// stream's queue slot, and leaves the engine drainable.
func TestStreamCancelMidStream(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := Request{Op: OpScenario, Scenario: "chaos", Params: map[string]float64{"rows": 6}}
	seen := 0
	_, err := e.Stream(ctx, req, func(i int, data json.RawMessage) error {
		seen++
		if i == 1 {
			cancel() // client disconnects after the second row
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream after cancel = %v, want context.Canceled", err)
	}
	if seen < 2 || seen >= 6 {
		t.Fatalf("saw %d rows, want at least 2 and fewer than 6", seen)
	}
	m := e.Metrics()
	if m.Canceled != 1 || m.Deadlines != 0 {
		t.Errorf("canceled=%d deadlines=%d, want 1/0", m.Canceled, m.Deadlines)
	}
	if m.Pending != 0 {
		t.Errorf("pending = %d after canceled stream, want 0", m.Pending)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer dcancel()
	if err := e.Drain(dctx); err != nil {
		t.Fatalf("drain after canceled stream: %v", err)
	}
}

// A deadline expiring mid-stream is classified as a deadline.
func TestStreamDeadlineMidStream(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req := Request{Op: OpScenario, Scenario: "chaos",
		Params: map[string]float64{"rows": 2, "sleep": 5}}
	_, err := e.Stream(ctx, req, func(int, json.RawMessage) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Stream = %v, want DeadlineExceeded", err)
	}
	if m := e.Metrics(); m.Deadlines != 1 || m.Canceled != 0 {
		t.Errorf("deadlines=%d canceled=%d, want 1/0", m.Deadlines, m.Canceled)
	}
}

// A sink that fails (broken pipe to the client) aborts the stream and is
// counted as a cancellation.
func TestStreamEmitError(t *testing.T) {
	e := New(Options{})
	req := Request{Op: OpSweep, Steps: 4}
	_, err := e.Stream(context.Background(), req, func(i int, _ json.RawMessage) error {
		if i == 2 {
			return fmt.Errorf("write tcp: broken pipe")
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream with failing sink = %v, want context.Canceled", err)
	}
	if m := e.Metrics(); m.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", m.Canceled)
	}
}

// A failing row aborts the stream with the row's error.
func TestStreamRowFailure(t *testing.T) {
	e := New(Options{})
	req := Request{Op: OpScenario, Scenario: "chaos",
		Params: map[string]float64{"rows": 4, "failrow": 2}}
	emitted := 0
	_, err := e.Stream(context.Background(), req, func(int, json.RawMessage) error {
		emitted++
		return nil
	})
	if err == nil {
		t.Fatal("stream over failing row succeeded")
	}
	if emitted != 2 {
		t.Errorf("emitted %d rows before failure, want 2", emitted)
	}
}

// Streams are admitted against the bounded queue like any other request.
func TestStreamShedUnderOverload(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: 1})
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.15}))  //nolint:errcheck
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.151})) //nolint:errcheck
	waitPending(t, e, 2)
	_, err := e.Stream(context.Background(), Request{Op: OpSweep, Steps: 4},
		func(int, json.RawMessage) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Stream under overload = %v, want ErrOverloaded", err)
	}
	if m := e.Metrics(); m.Sheds != 1 {
		t.Errorf("sheds = %d, want 1", m.Sheds)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
