package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"netpowerprop/internal/core"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/units"
	"netpowerprop/internal/workload"
)

// Op identifies the computation a Request asks for.
type Op string

// The engine's operations. Each maps onto one paper artifact (or a §4
// mechanism simulation) and one `/v1/<op>` endpoint of cmd/serve.
const (
	// OpWhatIf sizes a single cluster scenario and reports its power,
	// share, and efficiency metrics (Fig. 2's underlying quantities).
	OpWhatIf Op = "whatif"
	// OpTable3 evaluates the savings grid of Table 3 for the scenario.
	OpTable3 Op = "table3"
	// OpFig3 evaluates the fixed-workload speedup curves of Fig. 3.
	OpFig3 Op = "fig3"
	// OpFig4 evaluates the fixed-comm-ratio speedup curves of Fig. 4.
	OpFig4 Op = "fig4"
	// OpSweep runs a proportionality sweep for one scenario.
	OpSweep Op = "sweep"
	// OpCost annualizes the §3.2 cost savings of a proportionality upgrade.
	OpCost Op = "cost"
	// OpScenario runs a named §4 mechanism simulation (see ScenarioNames).
	OpScenario Op = "scenario"
)

// Request is one what-if query. The zero value of every field means "use
// the paper's default"; Normalize resolves defaults so that two requests
// asking for the same computation share one canonical cache key.
type Request struct {
	Op Op `json:"op"`

	// Cluster scenario (the CLI's baseFlags): defaults are the paper's
	// baseline pod — 15,360 GPUs, 400 G, 10% comm ratio, 10%/85% network/
	// compute proportionality, absolute interpolation, no overlap.
	GPUs      int     `json:"gpus,omitempty"`
	Bandwidth string  `json:"bw,omitempty"`
	CommRatio float64 `json:"ratio,omitempty"`
	// NetworkProportionality doubles as the improved proportionality for
	// OpCost (default 0.50 there, 0.10 elsewhere). Pointer so that an
	// explicit 0 survives normalization.
	NetworkProportionality *float64 `json:"netprop,omitempty"`
	ComputeProportionality *float64 `json:"compprop,omitempty"`
	Interp                 string   `json:"interp,omitempty"`
	Overlap                float64  `json:"overlap,omitempty"`

	// Fig. 3 / Fig. 4 parameters.
	Budget            string    `json:"budget,omitempty"`
	Proportionalities []float64 `json:"props,omitempty"`
	FixedCommRatio    float64   `json:"fixedratio,omitempty"`

	// Sweep parameters.
	Steps int `json:"steps,omitempty"`

	// Cost parameters (§3.2).
	Price   *float64 `json:"price,omitempty"`
	Cooling *float64 `json:"cooling,omitempty"`

	// Scenario name and numeric parameters for OpScenario.
	Scenario string             `json:"scenario,omitempty"`
	Params   map[string]float64 `json:"params,omitempty"`
}

// ptr returns a pointer to v, for filling optional Request fields.
func ptr(v float64) *float64 { return &v }

// orDefault resolves an optional float field.
func orDefault(p *float64, def float64) float64 {
	if p == nil {
		return def
	}
	return *p
}

// Normalize validates the request and resolves every default, returning
// the canonical form: two requests describing the same computation
// normalize to identical values (and therefore identical cache keys).
// Fields irrelevant to the op are cleared so they cannot fragment the key.
func (r Request) Normalize() (Request, error) {
	n := Request{Op: r.Op}
	switch r.Op {
	case OpWhatIf, OpTable3, OpFig3, OpFig4, OpSweep, OpCost, OpScenario:
	default:
		return Request{}, fmt.Errorf("engine: unknown op %q", r.Op)
	}

	if r.Op == OpScenario {
		return r.normalizeScenario()
	}

	// Cluster scenario fields, shared by every analytical op.
	n.GPUs = r.GPUs
	if n.GPUs == 0 {
		n.GPUs = core.Baseline().GPUs
	}
	if n.GPUs < 1 {
		return Request{}, fmt.Errorf("engine: GPU count %d must be positive", n.GPUs)
	}
	bwStr := r.Bandwidth
	if bwStr == "" {
		bwStr = "400G"
	}
	bw, err := units.ParseBandwidth(bwStr)
	if err != nil {
		return Request{}, fmt.Errorf("engine: %w", err)
	}
	if bw <= 0 {
		return Request{}, fmt.Errorf("engine: bandwidth %v must be positive", bw)
	}
	n.Bandwidth = bw.String()
	n.CommRatio = r.CommRatio
	if n.CommRatio == 0 {
		n.CommRatio = 0.10
	}
	if n.CommRatio <= 0 || n.CommRatio >= 1 {
		return Request{}, fmt.Errorf("engine: ratio %v outside (0,1)", n.CommRatio)
	}
	defProp := 0.10
	if r.Op == OpCost {
		defProp = 0.50
	}
	netProp := orDefault(r.NetworkProportionality, defProp)
	if netProp < 0 || netProp > 1 {
		return Request{}, fmt.Errorf("engine: network proportionality %v outside [0,1]", netProp)
	}
	n.NetworkProportionality = &netProp
	compProp := orDefault(r.ComputeProportionality, 0.85)
	if compProp < 0 || compProp > 1 {
		return Request{}, fmt.Errorf("engine: compute proportionality %v outside [0,1]", compProp)
	}
	n.ComputeProportionality = &compProp
	n.Interp = r.Interp
	if n.Interp == "" {
		n.Interp = "absolute"
	}
	mode, err := fattree.ParseInterpMode(n.Interp)
	if err != nil {
		return Request{}, fmt.Errorf("engine: %w", err)
	}
	n.Interp = mode.String()
	n.Overlap = r.Overlap
	if n.Overlap < 0 || n.Overlap >= 1 {
		return Request{}, fmt.Errorf("engine: overlap %v outside [0,1)", n.Overlap)
	}

	switch r.Op {
	case OpFig3, OpFig4:
		kind, err := core.ParseBudgetKind(r.Budget)
		if err != nil {
			return Request{}, fmt.Errorf("engine: %w", err)
		}
		n.Budget = kind.String()
		n.Proportionalities = r.Proportionalities
		if len(n.Proportionalities) == 0 {
			n.Proportionalities = core.FigProportionalities()
		}
		for _, p := range n.Proportionalities {
			if p < 0 || p > 1 {
				return Request{}, fmt.Errorf("engine: proportionality %v outside [0,1]", p)
			}
		}
		if r.Op == OpFig4 {
			n.FixedCommRatio = r.FixedCommRatio
			if n.FixedCommRatio == 0 {
				n.FixedCommRatio = 0.10
			}
			if n.FixedCommRatio <= 0 || n.FixedCommRatio >= 1 {
				return Request{}, fmt.Errorf("engine: fixed comm ratio %v outside (0,1)", n.FixedCommRatio)
			}
		}
	case OpSweep:
		n.Steps = r.Steps
		if n.Steps == 0 {
			n.Steps = 10
		}
		if n.Steps < 1 {
			return Request{}, fmt.Errorf("engine: steps %d must be positive", n.Steps)
		}
	case OpCost:
		price := orDefault(r.Price, 0.13)
		cooling := orDefault(r.Cooling, 0.30)
		if price < 0 {
			return Request{}, fmt.Errorf("engine: negative electricity price %v", price)
		}
		if cooling < 0 {
			return Request{}, fmt.Errorf("engine: negative cooling overhead %v", cooling)
		}
		n.Price, n.Cooling = &price, &cooling
	}
	return n, nil
}

// normalizeScenario resolves a scenario request against the scenario
// registry: the scenario must exist, unknown parameters are rejected, and
// missing parameters take the scenario's defaults.
func (r Request) normalizeScenario() (Request, error) {
	spec, ok := scenarios[r.Scenario]
	if !ok {
		return Request{}, fmt.Errorf("engine: unknown scenario %q (have %v)", r.Scenario, ScenarioNames())
	}
	n := Request{Op: OpScenario, Scenario: r.Scenario}
	params := make(map[string]float64, len(spec.defaults))
	for k, v := range spec.defaults {
		params[k] = v
	}
	for k, v := range r.Params {
		if _, ok := spec.defaults[k]; !ok {
			return Request{}, fmt.Errorf("engine: scenario %q has no parameter %q", r.Scenario, k)
		}
		params[k] = v
	}
	if len(params) > 0 {
		n.Params = params
	}
	if spec.bandwidth != "" {
		bwStr := r.Bandwidth
		if bwStr == "" {
			bwStr = spec.bandwidth
		}
		bw, err := units.ParseBandwidth(bwStr)
		if err != nil {
			return Request{}, fmt.Errorf("engine: %w", err)
		}
		if bw <= 0 {
			return Request{}, fmt.Errorf("engine: bandwidth %v must be positive", bw)
		}
		n.Bandwidth = bw.String()
	}
	return n, nil
}

// Key returns the canonical cache key of a normalized request: its JSON
// encoding (struct fields in declaration order, map keys sorted).
func (r Request) Key() string {
	b, err := json.Marshal(r)
	if err != nil {
		// A Request is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("engine: marshal request: %v", err))
	}
	return string(b)
}

// config builds the core.Config a normalized request describes, exactly as
// cmd/powerprop's baseFlags did, so CLI and server produce identical
// numbers.
func (r Request) config() (core.Config, error) {
	bw, err := units.ParseBandwidth(r.Bandwidth)
	if err != nil {
		return core.Config{}, fmt.Errorf("engine: %w", err)
	}
	mode, err := fattree.ParseInterpMode(r.Interp)
	if err != nil {
		return core.Config{}, fmt.Errorf("engine: %w", err)
	}
	wl, err := workload.New(units.Seconds(1-r.CommRatio), units.Seconds(r.CommRatio), r.GPUs, bw)
	if err != nil {
		return core.Config{}, fmt.Errorf("engine: %w", err)
	}
	return core.Config{
		GPUs:                   r.GPUs,
		Bandwidth:              bw,
		Workload:               wl,
		ComputeProportionality: *r.ComputeProportionality,
		NetworkProportionality: *r.NetworkProportionality,
		Interp:                 mode,
		Overlap:                r.Overlap,
	}, nil
}

// ScenarioNames lists the registered §4 mechanism scenarios, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
