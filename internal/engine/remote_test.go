package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func remoteTestRequest() Request {
	return Request{Op: OpWhatIf, GPUs: 2048}
}

// A remote hook that answers must win over local compute, prime the
// cache so the next identical query is a local hit, and count as a
// remote hit in Metrics.
func TestRemoteHandledPrimesCache(t *testing.T) {
	e := New(Options{CacheSize: 32, Workers: 2})
	req := remoteTestRequest()
	norm, err := req.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	key := norm.Key()

	canned := &Result{Op: norm.Op, Request: norm}
	var calls atomic.Int64
	e.SetRemote(func(ctx context.Context, k string, r Request) (*Result, bool, error) {
		calls.Add(1)
		if k != key {
			t.Errorf("hook key = %q, want %q", k, key)
		}
		return canned, true, nil
	})

	res, cached, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res != canned {
		t.Fatal("Do did not return the remote result")
	}
	if cached {
		t.Error("remote answer reported cached=true on first fetch")
	}
	if got := e.Metrics().RemoteHits; got != 1 {
		t.Errorf("RemoteHits = %d, want 1", got)
	}
	if got := e.Metrics().Computations; got != 0 {
		t.Errorf("Computations = %d, want 0 — the owner computed, not us", got)
	}

	// Second identical query: local cache hit, hook not consulted again.
	res2, cached, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("second Do: %v", err)
	}
	if !cached || res2 != canned {
		t.Error("second Do not served from the primed cache")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("hook called %d times, want 1", got)
	}
}

// handled=false means "compute locally" — degradation, not failure.
func TestRemoteUnhandledFallsBackToLocal(t *testing.T) {
	e := New(Options{CacheSize: 32, Workers: 2})
	e.SetRemote(func(ctx context.Context, k string, r Request) (*Result, bool, error) {
		return nil, false, nil
	})
	res, _, err := e.Do(context.Background(), remoteTestRequest())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res == nil || res.Cluster == nil {
		t.Fatal("local fallback produced no cluster summary")
	}
	if got := e.Metrics().RemoteHits; got != 0 {
		t.Errorf("RemoteHits = %d, want 0 for unhandled dispatch", got)
	}
	if got := e.Metrics().Computations; got != 1 {
		t.Errorf("Computations = %d, want 1", got)
	}
}

// handled=true with an error surfaces the error unchanged and caches
// nothing.
func TestRemoteHandledErrorSurfaces(t *testing.T) {
	e := New(Options{CacheSize: 32, Workers: 2})
	boom := errors.New("hop deadline exceeded")
	e.SetRemote(func(ctx context.Context, k string, r Request) (*Result, bool, error) {
		return nil, true, boom
	})
	if _, _, err := e.Do(context.Background(), remoteTestRequest()); !errors.Is(err, boom) {
		t.Fatalf("Do err = %v, want %v", err, boom)
	}
	// The failure must not poison the cache: removing the hook, the same
	// request computes locally rather than hitting a stale entry.
	e.SetRemote(nil)
	res, cached, err := e.Do(context.Background(), remoteTestRequest())
	if err != nil {
		t.Fatalf("Do after unhook: %v", err)
	}
	if cached {
		t.Error("failed remote dispatch left a cache entry behind")
	}
	if res == nil || res.Cluster == nil {
		t.Fatal("local compute after unhook produced no result")
	}
}

// WithLocalOnly bypasses the hook entirely — forwarded requests must
// never bounce to a third replica.
func TestRemoteLocalOnlyBypassesHook(t *testing.T) {
	e := New(Options{CacheSize: 32, Workers: 2})
	var calls atomic.Int64
	e.SetRemote(func(ctx context.Context, k string, r Request) (*Result, bool, error) {
		calls.Add(1)
		return nil, false, nil
	})
	if _, _, err := e.Do(WithLocalOnly(context.Background()), remoteTestRequest()); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("hook called %d times under WithLocalOnly, want 0", got)
	}
}
