package engine

import (
	"context"
	"fmt"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/fault"
	"netpowerprop/internal/netsim"
	"netpowerprop/internal/report"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// faultRateMultipliers scales the base failure counts for the sweep rows.
var faultRateMultipliers = []int{1, 2, 4}

// faultGatingLevels is the fraction of core switches powered down in the
// gated fabric variant.
var faultGatingLevels = []float64{0.25, 0.5}

// faultsRows sweeps failure rate × gating level on a three-tier fat tree
// running an all-to-all job, comparing a fully-powered fabric against
// one with part of its core power-gated, under the same seeded failure
// trace. Gated fabrics wake a sleeping core switch in response to each
// primary failure, delayed by a sampled OCS reconfiguration (which can be
// slow or need retries) — the §4.2 robustness question: how much slowdown
// and recovery time does power gating add when the fabric degrades?
//
// Each grid cell is one row: a row regenerates its seeded trace and
// re-simulates the fully-powered fabric itself, so rows share no state
// and a single cell can be retried or replayed from a journal while
// producing exactly the bytes of a serial sweep.
func faultsRows(req Request) (*scenarioRows, error) {
	radix := int(req.Params["radix"])
	iters := int(req.Params["iters"])
	seed := uint64(req.Params["seed"])
	flaps := int(req.Params["flaps"])
	mttr := units.Seconds(req.Params["mttr"])
	stuckProb := req.Params["stuckprob"]
	stuckExtra := units.Seconds(req.Params["stuckextra"])
	reconfig := fault.ReconfigModel{
		Base:       units.Seconds(req.Params["reconfig"]),
		SlowProb:   req.Params["slowprob"],
		SlowFactor: 4,
		FailProb:   req.Params["failprob"],
	}
	if iters < 1 {
		return nil, fmt.Errorf("iters %d must be positive", iters)
	}
	if err := reconfig.Validate(); err != nil {
		return nil, err
	}
	top, err := fattree.BuildThreeTier(radix, 100*units.Gbps)
	if err != nil {
		return nil, err
	}
	// All-to-all keeps the core bisection loaded, so gating part of the
	// core is visible in the slowdown (a ring barely touches the core).
	job := traffic.Job{
		ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.5,
		Rate: 10 * units.Gbps, Pattern: traffic.AllToAll,
	}
	flows, err := job.Flows(iters)
	if err != nil {
		return nil, err
	}
	horizon := units.Seconds(iters) * job.Period
	idealBits := 0.0
	for _, f := range flows {
		idealBits += float64(f.Demand) * float64(f.Duration())
	}
	var optical []int
	for _, l := range top.Links {
		if l.Optical {
			optical = append(optical, l.ID)
		}
	}
	var core []int
	for _, sw := range top.SwitchIDs() {
		if top.Nodes[sw].Kind == fattree.KindCore {
			core = append(core, sw)
		}
	}

	type outcome struct {
		slowdown float64
		recovery units.Seconds
		rep      *netsim.FaultReport
	}
	simulate := func(tr *fault.Trace) (outcome, error) {
		s := netsim.New(top)
		s.Faults = tr
		s.Models = SimModels()
		res, err := s.RunParallel(flows, 0)
		if err != nil {
			return outcome{}, err
		}
		delivered := 0.0
		for _, st := range res.Flows {
			delivered += st.DeliveredBits
		}
		out := outcome{rep: res.Faults}
		if delivered > 0 {
			out.slowdown = idealBits / delivered
		}
		if out.rep != nil && out.rep.StalledFlows > 0 {
			out.recovery = out.rep.StallSeconds / units.Seconds(out.rep.StalledFlows)
		}
		return out, nil
	}

	t := &Table{
		Title: fmt.Sprintf("fault sweep — k=%d fat tree, all-to-all ×%d, seed %d (slowdown = offered/delivered bits)",
			radix, iters, seed),
		Headers: []string{"failure rate", "gating", "slowdown (full)", "slowdown (gated)",
			"recovery (full)", "recovery (gated)", "reroutes", "missed wakes"},
		Notes: []string{
			"full and gated fabrics see the identical seeded failure trace;",
			"gated fabrics start with part of the core asleep and wake one core",
			"switch per primary failure after a sampled OCS reconfiguration delay.",
		},
	}
	row := func(ctx context.Context, idx int) ([]string, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mult := faultRateMultipliers[idx/len(faultGatingLevels)]
		level := faultGatingLevels[idx%len(faultGatingLevels)]
		cfg := fault.GenConfig{
			Horizon: horizon, Links: optical,
			Flaps: flaps * mult, MTTR: mttr,
			PermanentFailures: mult,
			WakeStuckProb:     stuckProb, WakeStuckExtra: stuckExtra,
		}
		base, err := fault.Generate(cfg, seed)
		if err != nil {
			return nil, err
		}
		full, err := simulate(base)
		if err != nil {
			return nil, err
		}
		// Primary failures drive the gated fabric's wake-ups, in trace order.
		var failures []units.Seconds
		for _, e := range base.Events() {
			if e.Kind == fault.KindLinkDown && e.At > 0 {
				failures = append(failures, e.At)
			}
		}
		gatedCount := int(level * float64(len(core)))
		if gatedCount < 1 {
			gatedCount = 1
		}
		gated := base.Clone()
		rng := fault.NewRand(seed ^ uint64(mult))
		for i := 0; i < gatedCount; i++ {
			gated.SwitchDown(0, core[i])
		}
		// Each primary failure wakes the next sleeping core switch after
		// a sampled reconfiguration delay.
		for i, at := range failures {
			if i >= gatedCount {
				break
			}
			gated.SwitchUp(at+reconfig.Sample(rng).Delay, core[i])
		}
		g, err := simulate(gated)
		if err != nil {
			return nil, err
		}
		reroutes, missed := 0, 0
		if g.rep != nil {
			reroutes, missed = g.rep.Reroutes, g.rep.MissedWakes
		}
		return []string{
			fmt.Sprintf("%dx", mult),
			report.Percent(level),
			fmt.Sprintf("%.3f", full.slowdown),
			fmt.Sprintf("%.3f", g.slowdown),
			fmt.Sprintf("%.3gs", float64(full.recovery)),
			fmt.Sprintf("%.3gs", float64(g.recovery)),
			fmt.Sprintf("%d", reroutes),
			fmt.Sprintf("%d", missed),
		}, nil
	}
	return &scenarioRows{
		table: t,
		n:     len(faultRateMultipliers) * len(faultGatingLevels),
		row:   row,
	}, nil
}
