package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/chiplet"
	"netpowerprop/internal/core"
	"netpowerprop/internal/eee"
	"netpowerprop/internal/ocs"
	"netpowerprop/internal/parking"
	"netpowerprop/internal/powergate"
	"netpowerprop/internal/rateadapt"
	"netpowerprop/internal/report"
	"netpowerprop/internal/schedule"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// scenarioSpec describes one named §4 mechanism simulation: its default
// numeric parameters (the cmd/netsim flag defaults), an optional default
// bandwidth for scenarios parameterized by a link speed, and the
// simulation itself. Tables carry the exact strings the CLI prints.
//
// Scenarios whose table rows are independent computations set rows
// instead of run: the synchronous path fans the rows out exactly as
// before, and the jobs subsystem can additionally checkpoint, retry, and
// resume them row by row (see rows.go).
type scenarioSpec struct {
	defaults  map[string]float64
	bandwidth string
	run       func(ctx context.Context, req Request) (*Table, error)
	rows      func(req Request) (*scenarioRows, error)
}

// scenarioRows is a row-structured scenario: the table frame (title,
// headers, static notes) plus n independent row computations. The row
// function must be safe to call concurrently and deterministically
// produce the same cells for the same (req, i) — that contract is what
// makes journaled replay byte-identical.
type scenarioRows struct {
	table *Table
	n     int
	row   func(ctx context.Context, i int) ([]string, error)
}

// execute runs the scenario: row-structured specs fan their rows out
// through parallelRows (byte-identical to a serial loop), the rest run
// their bespoke simulation.
func (s scenarioSpec) execute(ctx context.Context, req Request) (*Table, error) {
	if s.rows == nil {
		return s.run(ctx, req)
	}
	sr, err := s.rows(req)
	if err != nil {
		return nil, err
	}
	rows, err := parallelRows(sr.n, func(i int) ([]string, error) { return sr.row(ctx, i) })
	if err != nil {
		return nil, err
	}
	t := *sr.table
	t.Rows = rows
	return &t, nil
}

// scenarios is the registry behind OpScenario and /v1/scenarios/<name>.
var scenarios = map[string]scenarioSpec{
	"gating": {
		defaults: map[string]float64{"ports": 64, "l3": 0, "fib": 0.25, "wake": 1.0},
		run:      runGating,
	},
	"rateadapt": {
		defaults: map[string]float64{"busy": 1, "ratio": 0.2, "level": 0.8, "samples": 400},
		rows:     rateAdaptRows,
	},
	"parking": {
		defaults: map[string]float64{"ratio": 0.2, "level": 0.5, "period": 2, "samples": 800},
		rows:     parkingRows,
	},
	"eee": {
		defaults:  map[string]float64{"active": 10, "horizon": 0.01, "seed": 1},
		bandwidth: "10G",
		rows:      eeeRows,
	},
	"ratelink": {
		defaults:  map[string]float64{"active": 10, "horizon": 0.01, "seed": 1},
		bandwidth: "10G",
		rows:      rateLinkRows,
	},
	"chiplet": {
		defaults: map[string]float64{"ratio": 0.1, "level": 0.8},
		run:      runChiplet,
	},
	"scheduler": {
		defaults: map[string]float64{"radix": 8},
		run:      runScheduler,
	},
	"summary": {
		defaults: map[string]float64{"ratio": 0.1},
		run:      runSummary,
	},
	"faults": {
		defaults: map[string]float64{
			"radix": 4, "iters": 4, "seed": 1,
			"flaps": 6, "mttr": 0.3, "stuckprob": 0.25, "stuckextra": 0.5,
			"reconfig": 0.2, "slowprob": 0.25, "failprob": 0.1,
		},
		rows: faultsRows,
	},
	"topologies": {
		defaults: map[string]float64{
			"hosts": 24, "iters": 2, "seed": 1,
			"flaps": 4, "mttr": 0.3, "perm": 1,
			"lowload": 0.1, "level": 0.9,
		},
		bandwidth: "100G",
		rows:      topologiesRows,
	},
	"chaos": {
		defaults: map[string]float64{"panic": 0, "sleep": 0, "fail": 0,
			"rows": 1, "failrow": -1, "panicrow": -1},
		rows: chaosRows,
	},
}

// parallelRows computes n independent table rows concurrently, bounded by
// GOMAXPROCS, and returns them in index order: the assembled table is
// byte-identical to a serial loop, errors surface lowest-index first. The
// row function must not share mutable state across indices.
func parallelRows(n int, row func(i int) ([]string, error)) ([][]string, error) {
	rows := make([][]string, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := safeRow(row, i)
			if err != nil {
				return nil, err
			}
			rows[i] = r
		}
		return rows, nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				rows[i], errs[i] = safeRow(row, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// mlTrace samples an ML periodic load profile every `step` seconds.
func mlTrace(ratio float64, period units.Seconds, level float64, n int, step units.Seconds) ([]units.Seconds, []float64, error) {
	prof, err := traffic.MLPeriodic(ratio, period, level)
	if err != nil {
		return nil, nil, err
	}
	times := make([]units.Seconds, n)
	demand := make([]float64, n)
	for i := range times {
		times[i] = units.Seconds(i) * step
		demand[i] = prof(times[i])
	}
	return times, demand, nil
}

func mkReactive() rateadapt.Controller {
	c, err := rateadapt.NewReactive(1.1, 0.2, 0.1)
	if err != nil {
		panic(err)
	}
	return c
}

func mkPredictive() rateadapt.Controller {
	c, err := rateadapt.NewPredictive(1.1, 0.2, 0.3)
	if err != nil {
		panic(err)
	}
	return c
}

// runGating evaluates the §4.1 power-gating modes for a deployment.
func runGating(ctx context.Context, req Request) (*Table, error) {
	usedPorts := int(req.Params["ports"])
	l3 := req.Params["l3"] != 0
	fib := req.Params["fib"]
	wake := req.Params["wake"]
	cfg := asic.DefaultConfig()
	if usedPorts < 0 || usedPorts > cfg.Ports {
		return nil, fmt.Errorf("ports %d outside [0,%d]", usedPorts, cfg.Ports)
	}
	ports := make([]int, usedPorts)
	for i := range ports {
		ports[i] = i
	}
	d := powergate.Deployment{
		UsedPorts:   ports,
		NeedsL3:     l3,
		FIBFraction: fib,
		WakeBudget:  units.Seconds(wake),
	}
	reports, err := powergate.Evaluate(cfg, d)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("§4.1 — power-gating modes (%d/%d ports, L3=%v, FIB %s, wake budget %vs)",
			usedPorts, cfg.Ports, l3, report.Percent(fib), wake),
		Headers: []string{"mode", "power", "savings", "wake", "allowed", "description"},
	}
	for _, r := range reports {
		t.AddRow(r.Mode.Name, r.Power.String(), report.Percent(r.Savings),
			fmt.Sprintf("%gs", float64(r.Mode.WakeLatency)),
			fmt.Sprintf("%v", r.Allowed), r.Mode.Description)
	}
	best, err := powergate.Best(reports)
	if err != nil {
		return nil, err
	}
	t.Notes = []string{fmt.Sprintf("governor picks %s: %v (%s saved)", best.Mode.Name, best.Power, report.Percent(best.Savings))}
	return t, nil
}

// rateAdaptRows compares the §4.3 rate-adaptation variants on a periodic
// ML load, one variant per row.
func rateAdaptRows(req Request) (*scenarioRows, error) {
	busy := int(req.Params["busy"])
	ratio := req.Params["ratio"]
	level := req.Params["level"]
	samples := int(req.Params["samples"])
	cfg := asic.DefaultConfig()
	if busy < 0 || busy > cfg.Pipelines {
		return nil, fmt.Errorf("busy %d outside [0,%d]", busy, cfg.Pipelines)
	}
	prof, err := traffic.MLPeriodic(ratio, 10, level)
	if err != nil {
		return nil, err
	}
	times := make([]units.Seconds, samples)
	utils := make([][]float64, cfg.Pipelines)
	for p := range utils {
		utils[p] = make([]float64, samples)
	}
	for i := range times {
		times[i] = units.Seconds(i) * 0.5
		for p := 0; p < busy; p++ {
			utils[p][i] = prof(times[i])
		}
	}
	type variant struct {
		name string
		mk   func() rateadapt.Controller
		opts rateadapt.Options
	}
	// Delay model: per-pipeline capacity is a quarter of the 51.2T chip.
	delay := rateadapt.Options{PipelineCapacity: 12.8 * units.Tbps, FrameBits: 12000}
	withDelay := func(o rateadapt.Options) rateadapt.Options {
		o.PipelineCapacity, o.FrameBits = delay.PipelineCapacity, delay.FrameBits
		return o
	}
	variants := []variant{
		{"static (today)", func() rateadapt.Controller { return rateadapt.Static{} }, withDelay(rateadapt.Options{})},
		{"global reactive", mkReactive, withDelay(rateadapt.Options{Global: true})},
		{"per-pipeline reactive", mkReactive, withDelay(rateadapt.Options{})},
		{"per-pipeline predictive", mkPredictive, withDelay(rateadapt.Options{})},
		{"per-pipeline reactive + SerDes gating", mkReactive, withDelay(rateadapt.Options{GateIdleSerDes: true})},
	}
	return &scenarioRows{
		table: &Table{
			Title: fmt.Sprintf("§4.3 — rate adaptation (%d/%d busy pipelines, %s duty cycle at %s load)",
				busy, cfg.Pipelines, report.Percent(ratio), report.Percent(level)),
			Headers: []string{"variant", "energy", "savings", "mean freq", "shortfall", "queue delay"},
		},
		n: len(variants),
		row: func(_ context.Context, i int) ([]string, error) {
			v := variants[i]
			res, err := rateadapt.Simulate(cfg, times, utils, v.mk, v.opts)
			if err != nil {
				return nil, err
			}
			return []string{v.name, res.Energy.String(), report.Percent(res.Savings),
				fmt.Sprintf("%.2f", res.MeanFreq), fmt.Sprintf("%gs", float64(res.ShortfallTime)),
				fmt.Sprintf("%.1fns", float64(res.MeanQueueingDelay)*1e9)}, nil
		},
	}, nil
}

// parkingRows compares the §4.4 pipeline-parking policies, one per row.
// Policies are constructed fresh per row: a Policy carries mutable
// controller state, so sharing instances across retried rows would break
// replay determinism.
func parkingRows(req Request) (*scenarioRows, error) {
	ratio := req.Params["ratio"]
	level := req.Params["level"]
	period := req.Params["period"]
	samples := int(req.Params["samples"])
	cfg := parking.DefaultConfig()
	times, demand, err := mlTrace(ratio, units.Seconds(period), level, samples, 0.05)
	if err != nil {
		return nil, err
	}
	policies := []func() (parking.Policy, error){
		func() (parking.Policy, error) { return parking.AlwaysOn{Pipelines: cfg.ASIC.Pipelines}, nil },
		func() (parking.Policy, error) {
			return parking.NewReactive(cfg.ASIC.Pipelines, cfg.MinActive, 0.8, 0.5)
		},
		func() (parking.Policy, error) {
			return parking.NewScheduled(units.Seconds(period), units.Seconds(period*ratio), 0.1, cfg.MinActive, cfg.ASIC.Pipelines)
		},
	}
	return &scenarioRows{
		table: &Table{
			Title: fmt.Sprintf("§4.4 — pipeline parking behind a circuit switch (duty %s at %s load, wake %gs)",
				report.Percent(ratio), report.Percent(level), float64(cfg.WakeLatency)),
			Headers: []string{"policy", "energy", "savings", "mean active", "reconfigs", "max backlog", "max delay", "dropped"},
		},
		n: len(policies),
		row: func(_ context.Context, i int) ([]string, error) {
			pol, err := policies[i]()
			if err != nil {
				return nil, err
			}
			res, err := parking.Simulate(cfg, times, demand, pol)
			if err != nil {
				return nil, err
			}
			return []string{pol.Name(), res.Energy.String(), report.Percent(res.Savings),
				fmt.Sprintf("%.2f", res.MeanActive),
				fmt.Sprintf("%d", res.Reconfigurations),
				fmt.Sprintf("%.0f b", res.MaxBacklogBits),
				fmt.Sprintf("%.2gs", float64(res.MaxDelay)),
				fmt.Sprintf("%.0f b", res.DroppedBits)}, nil
		},
	}, nil
}

// eeeUtilizations is the load sweep shared by the eee and ratelink
// scenarios.
var eeeUtilizations = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9}

// eeeRows simulates the 802.3az LPI baseline, one utilization per row.
// Each row draws its arrivals from a fresh rng seeded by the request seed
// (eee.PoissonPackets), so a retried or replayed row reproduces the
// identical packet sequence.
func eeeRows(req Request) (*scenarioRows, error) {
	cap, err := units.ParseBandwidth(req.Bandwidth)
	if err != nil {
		return nil, err
	}
	active := req.Params["active"]
	horizon := req.Params["horizon"]
	seed := int64(req.Params["seed"])
	params := eee.DefaultParams(cap, units.Power(active))
	return &scenarioRows{
		table: &Table{
			Title:   fmt.Sprintf("802.3az EEE baseline — %v link, Poisson traffic", cap),
			Headers: []string{"utilization", "savings", "mean delay", "max delay", "LPI share"},
		},
		n: len(eeeUtilizations),
		row: func(_ context.Context, i int) ([]string, error) {
			util := eeeUtilizations[i]
			pkts, err := eee.PoissonPackets(seed, cap, util, 12000, units.Seconds(horizon))
			if err != nil {
				return nil, err
			}
			res, err := eee.Simulate(params, pkts)
			if err != nil {
				return nil, err
			}
			return []string{report.Percent(util), report.Percent(res.Savings),
				fmt.Sprintf("%.2gus", float64(res.MeanDelay)*1e6),
				fmt.Sprintf("%.2gus", float64(res.MaxDelay)*1e6),
				report.Percent(float64(res.LPITime) / float64(res.Horizon))}, nil
		},
	}, nil
}

// rateLinkRows compares NSDI'08 link sleeping against rate adaptation,
// one utilization per row.
func rateLinkRows(req Request) (*scenarioRows, error) {
	cap, err := units.ParseBandwidth(req.Bandwidth)
	if err != nil {
		return nil, err
	}
	active := req.Params["active"]
	horizon := req.Params["horizon"]
	seed := int64(req.Params["seed"])
	lpi := eee.DefaultParams(cap, units.Power(active))
	rate := eee.DefaultRateParams(cap, units.Power(active))
	return &scenarioRows{
		table: &Table{
			Title:   fmt.Sprintf("NSDI'08 sleeping vs. rate adaptation — %v link, Poisson traffic", cap),
			Headers: []string{"utilization", "sleep savings", "sleep delay", "rate savings", "rate delay", "mean speed"},
		},
		n: len(eeeUtilizations),
		row: func(_ context.Context, i int) ([]string, error) {
			util := eeeUtilizations[i]
			pkts, err := eee.PoissonPackets(seed, cap, util, 12000, units.Seconds(horizon))
			if err != nil {
				return nil, err
			}
			sres, err := eee.Simulate(lpi, pkts)
			if err != nil {
				return nil, err
			}
			rres, err := eee.SimulateRate(rate, pkts)
			if err != nil {
				return nil, err
			}
			return []string{report.Percent(util),
				report.Percent(sres.Savings), fmt.Sprintf("%.2gus", float64(sres.MeanDelay)*1e6),
				report.Percent(rres.Savings), fmt.Sprintf("%.2gus", float64(rres.MeanDelay)*1e6),
				rres.MeanSpeed.String()}, nil
		},
	}, nil
}

// runChiplet sweeps the §4.5 ASIC redesign space on ML traffic.
func runChiplet(ctx context.Context, req Request) (*Table, error) {
	ratio := req.Params["ratio"]
	level := req.Params["level"]
	times, loads, err := mlTrace(ratio, 10, level, 400, 0.5)
	if err != nil {
		return nil, err
	}
	designs := []chiplet.Design{
		chiplet.Today(),
		chiplet.Gateable(),
		chiplet.Chiplets(4),
		chiplet.Chiplets(16),
		chiplet.Chiplets(64),
		chiplet.Chiplets(256),
	}
	rows, err := chiplet.Sweep(designs, times, loads)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("§4.5 — ASIC redesign space on ML traffic (%s duty at %s load)",
			report.Percent(ratio), report.Percent(level)),
		Headers: []string{"design", "max power", "proportionality", "energy", "savings vs today"},
	}
	for _, r := range rows {
		t.AddRow(r.Design.Name, r.MaxPower.String(), report.Percent(r.Proportionality),
			r.Energy.String(), report.Percent(r.SavingsVsToday))
	}
	return t, nil
}

// runScheduler compares spread vs. concentrate placement on a k-ary
// fabric (§4.2).
func runScheduler(ctx context.Context, req Request) (*Table, error) {
	radix := int(req.Params["radix"])
	f, err := ocs.ThreeTierFabric(radix, 400*units.Gbps)
	if err != nil {
		return nil, err
	}
	jobs := []schedule.JobReq{{ID: 1, Hosts: 8}, {ID: 2, Hosts: 6}, {ID: 3, Hosts: 2}}
	t := &Table{
		Title:   fmt.Sprintf("§4.2 — network-aware job scheduling (k=%d fabric, 3 jobs, 16 hosts)", radix),
		Headers: []string{"policy", "edges used", "pods used", "active switches", "energy (1h, off=sleep)", "energy (1h, off=idle)"},
	}
	for _, pol := range []schedule.Policy{schedule.Spread, schedule.Concentrate} {
		s, err := schedule.Place(f, jobs, pol)
		if err != nil {
			return nil, err
		}
		sleep, err := s.Energy(schedule.EnergyParams{Horizon: 3600, DutyCycle: 0.1, Proportionality: 0.1, OffSwitchesSleep: true})
		if err != nil {
			return nil, err
		}
		idle, err := s.Energy(schedule.EnergyParams{Horizon: 3600, DutyCycle: 0.1, Proportionality: 0.1})
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.String(), fmt.Sprintf("%d", s.EdgesUsed), fmt.Sprintf("%d", s.PodsUsed),
			fmt.Sprintf("%d", s.ActiveSwitches()), sleep.String(), idle.String())
	}
	return t, nil
}

// runSummary closes the loop between §4 and §3: each mechanism's simulated
// switch-level savings are converted into an effective power
// proportionality (the p that a two-state switch on the same duty cycle
// would need to match the mechanism's energy), which the §3 cluster model
// then prices at baseline-cluster scale.
func runSummary(ctx context.Context, req Request) (*Table, error) {
	ratio := req.Params["ratio"]
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("ratio %v outside (0,1)", ratio)
	}
	idleShare := 1 - ratio

	// ML load trace shared by the mechanism sims: the whole switch busy at
	// 80% during the communication window.
	times, demand, err := mlTrace(ratio, 10, 0.8, 400, 0.5)
	if err != nil {
		return nil, err
	}

	type mech struct {
		name    string
		savings float64
	}
	var mechs []mech

	// §4.3: per-pipeline rate adaptation + SerDes gating. All four
	// pipelines carry the load during bursts.
	cfg := asic.DefaultConfig()
	utils := make([][]float64, cfg.Pipelines)
	for p := range utils {
		utils[p] = demand
	}
	ra, err := rateadapt.Simulate(cfg, times, utils, mkReactive, rateadapt.Options{GateIdleSerDes: true})
	if err != nil {
		return nil, err
	}
	mechs = append(mechs, mech{"§4.3 rate adaptation + SerDes gating", ra.Savings})

	// §4.4: scheduled pipeline parking.
	pcfg := parking.DefaultConfig()
	sched, err := parking.NewScheduled(10, units.Seconds(10*ratio), 0.2, pcfg.MinActive, pcfg.ASIC.Pipelines)
	if err != nil {
		return nil, err
	}
	pk, err := parking.Simulate(pcfg, times, demand, sched)
	if err != nil {
		return nil, err
	}
	mechs = append(mechs, mech{"§4.4 scheduled pipeline parking", pk.Savings})

	// §4.5: 64-chiplet redesign with co-packaged optics.
	rows, err := chiplet.Sweep([]chiplet.Design{chiplet.Chiplets(64)}, times, demand)
	if err != nil {
		return nil, err
	}
	mechs = append(mechs, mech{"§4.5 64-chiplet redesign + CPO", rows[0].SavingsVsToday})

	t := &Table{
		Title: fmt.Sprintf("§4 -> §3 synthesis — switch-level savings priced at baseline-cluster scale (%s comm ratio)",
			report.Percent(ratio)),
		Headers: []string{"mechanism", "switch savings", "effective prop", "cluster savings", "$/year"},
	}
	cost := core.DefaultCostModel()
	for _, m := range mechs {
		// A two-state switch with proportionality p on this duty cycle
		// saves p*(idleShare) vs always-on; invert to get the effective p.
		pEff := m.savings / idleShare
		if pEff > 1 {
			pEff = 1
		}
		grid, err := core.ComputeSavingsGrid(core.Baseline(),
			[]units.Bandwidth{400 * units.Gbps}, []float64{pEff}, 0.10)
		if err != nil {
			return nil, err
		}
		cell := grid.Cell(0, 0)
		dollars, err := cost.Annualize(cell.SavedPower)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, report.Percent(m.savings), report.Percent(pEff),
			report.Percent(cell.Savings), report.Dollars(dollars.Total()))
	}
	t.Notes = []string{
		"note: cluster savings are negative when a mechanism's effective",
		"proportionality falls below today's 10% baseline; the conversion",
		"assumes the mechanism applies to switches, NICs, and transceivers alike.",
	}
	return t, nil
}
