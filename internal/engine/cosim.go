package engine

import (
	"sync/atomic"

	"netpowerprop/internal/netsim"
)

// simModels is the process-wide co-simulation hook set scenario rows
// attach to every Sim they build. Process-wide (not per-Engine) is
// deliberate: request cache keys do not encode the model configuration,
// so one process must run under exactly one co-sim configuration — the
// same contract CLIs already have for flags that shape results.
var simModels atomic.Pointer[netsim.Models]

// SetSimModels installs (nil clears) the co-simulation hooks consulted
// by every scenario simulation in this process. Call it once at startup,
// before serving requests; switching models mid-flight would let cached
// and fresh rows disagree.
func SetSimModels(m *netsim.Models) { simModels.Store(m) }

// SimModels returns the installed co-simulation hooks, or nil.
func SimModels() *netsim.Models { return simModels.Load() }
