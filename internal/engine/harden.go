package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"netpowerprop/internal/obs"
)

// ErrOverloaded is returned (without computing anything) when the engine's
// pending-request count exceeds the worker pool plus its bounded queue.
// Servers should map it to 503 with a Retry-After hint.
var ErrOverloaded = errors.New("engine: overloaded")

// PanicError is a panic recovered from a computation, surfaced as an
// ordinary error so one poisoned request cannot take the process down.
type PanicError struct {
	// Val is the value passed to panic; Stack is the goroutine stack at
	// recovery time.
	Val   any
	Stack []byte
}

// Error describes the recovered panic.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: computation panicked: %v", p.Val)
}

// safeCompute runs compute with panic containment: a panic on the compute
// goroutine (or one surfaced as a PanicError by a row worker) becomes an
// error and bumps the panic counters.
func (e *Engine) safeCompute(ctx context.Context, req Request) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Val: r, Stack: debug.Stack()}
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			e.panics.Add(1)
			e.lastPanic.Store(time.Now().UnixNano())
			e.log.Error("panic recovered in computation",
				"trace", obs.TraceID(ctx), "op", string(req.Op), "panic", pe.Val)
		}
	}()
	return compute(ctx, req)
}

// safeRow contains a panic from one table-row computation, so scenario
// fan-out workers cannot crash the process either.
func safeRow(row func(i int) ([]string, error), i int) (r []string, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, &PanicError{Val: v, Stack: debug.Stack()}
		}
	}()
	return row(i)
}

// Health is a point-in-time serving-fitness classification.
type Health struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Reason explains a degraded status; empty when ok.
	Reason string `json:"reason,omitempty"`
}

// Health reports degraded when the worker pool is saturated (more requests
// pending than workers) or a panic was recovered within the given window.
func (e *Engine) Health(panicWindow time.Duration) Health {
	if p := e.pending.Load(); p > int64(e.workers) {
		return Health{
			Status: "degraded",
			Reason: fmt.Sprintf("worker pool saturated: %d pending on %d workers", p, e.workers),
		}
	}
	if last := e.lastPanic.Load(); last != 0 && panicWindow > 0 {
		if age := time.Since(time.Unix(0, last)); age < panicWindow {
			return Health{
				Status: "degraded",
				Reason: fmt.Sprintf("panic recovered %s ago", age.Round(time.Millisecond)),
			}
		}
	}
	return Health{Status: "ok"}
}

// Drain blocks until every admitted computation has finished (queued or
// running), or the context expires — the graceful-shutdown hook: stop
// admitting requests, then Drain before exiting.
func (e *Engine) Drain(ctx context.Context) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if e.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// chaosRows is the fault-injection scenario for the serving path itself:
// it panics, sleeps (honoring the request deadline), or fails on demand,
// so the panic-recovery, deadline, and load-shedding machinery can be
// exercised end to end — through the real registry, cache, and HTTP
// stack. The request-level knobs (panic, sleep, fail) fire on row 0,
// preserving the historical single-row behavior; rows/failrow/panicrow
// turn it into an n-row job whose designated row deterministically fails
// or panics on every attempt, which is how the jobs subsystem's retry
// exhaustion and graceful degradation are tested end to end.
func chaosRows(req Request) (*scenarioRows, error) {
	n := int(req.Params["rows"])
	if n < 1 {
		return nil, fmt.Errorf("rows %d must be positive", n)
	}
	failRow := int(req.Params["failrow"])
	panicRow := int(req.Params["panicrow"])
	return &scenarioRows{
		table: &Table{
			Title:   "chaos — serving-path fault injection",
			Headers: []string{"outcome"},
			Notes:   []string{"set panic=1, fail=1, or sleep=<seconds> to misbehave"},
		},
		n: n,
		row: func(ctx context.Context, i int) ([]string, error) {
			if i == panicRow {
				panic(fmt.Sprintf("chaos scenario: injected panic on row %d", i))
			}
			if i == 0 {
				if req.Params["panic"] != 0 {
					panic("chaos scenario: injected panic")
				}
				if d := req.Params["sleep"]; d > 0 {
					select {
					case <-time.After(time.Duration(d * float64(time.Second))):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				if req.Params["fail"] != 0 {
					return nil, fmt.Errorf("chaos scenario: injected failure")
				}
			}
			if i == failRow {
				return nil, fmt.Errorf("chaos scenario: injected failure on row %d", i)
			}
			return []string{"ok"}, nil
		},
	}, nil
}
