package engine

import (
	"sync/atomic"

	"netpowerprop/internal/obs"
)

// This file wires the engine's counters into an obs.Registry and its
// events into an obs.Logger. The hot path keeps its existing atomics —
// the registry mirrors them through CounterFunc/GaugeFunc closures read
// only at render time — so instrumentation adds exactly one histogram
// observation per computation and per row, and nothing else.

// instrument attaches the logger and registers every engine metric
// under the netpowerprop_engine_* namespace. Histograms are created
// even without a registry so the hot path never nil-checks.
func (e *Engine) instrument(log *obs.Logger, reg *obs.Registry) {
	if log == nil {
		log = obs.Nop()
	}
	e.log = log
	for _, op := range allOps {
		st := e.opStats[op]
		if reg != nil {
			st.hist = reg.Histogram("netpowerprop_engine_compute_duration_seconds",
				"Latency of one engine computation, by operation.",
				obs.DefLatencyBuckets, "op", string(op))
		} else {
			st.hist = obs.NewHistogram(obs.DefLatencyBuckets)
		}
	}
	if reg != nil {
		e.rowHist = reg.Histogram("netpowerprop_engine_row_duration_seconds",
			"Latency of one job row executed through ExecRow.",
			obs.DefLatencyBuckets)
	} else {
		e.rowHist = obs.NewHistogram(obs.DefLatencyBuckets)
	}
	if reg == nil {
		return
	}
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("netpowerprop_engine_cache_hits_total",
		"Requests answered from the result cache.", &e.hits)
	counter("netpowerprop_engine_cache_misses_total",
		"Requests that had to wait on a computation.", &e.misses)
	counter("netpowerprop_engine_singleflight_shared_total",
		"Misses that piggybacked on an in-flight identical computation.", &e.shared)
	counter("netpowerprop_engine_computations_total",
		"Computations actually run.", &e.computations)
	counter("netpowerprop_engine_errors_total",
		"Failed requests (bad input, canceled, or compute error).", &e.errors)
	counter("netpowerprop_engine_panics_total",
		"Computations that panicked and were recovered.", &e.panics)
	counter("netpowerprop_engine_shed_total",
		"Requests rejected by the bounded queue (ErrOverloaded).", &e.sheds)
	counter("netpowerprop_engine_deadline_total",
		"Requests that failed with a deadline exceeded.", &e.deadlines)
	counter("netpowerprop_engine_canceled_total",
		"Requests abandoned because the client canceled (disconnect).", &e.canceled)
	counter("netpowerprop_engine_rows_executed_total",
		"Job rows run through ExecRow.", &e.rowsExecuted)
	counter("netpowerprop_engine_batches_total",
		"Batched requests answered through DoBatch.", &e.batches)
	counter("netpowerprop_engine_batch_rows_total",
		"Rows carried by batched requests.", &e.batchRows)
	counter("netpowerprop_engine_streams_total",
		"Row-streaming requests answered through Stream.", &e.streams)
	counter("netpowerprop_engine_stream_rows_total",
		"Row frames emitted by streaming requests.", &e.streamRows)
	counter("netpowerprop_engine_remote_hits_total",
		"Misses answered by the owning cluster replica via remote dispatch.", &e.remoteHits)
	reg.CounterFunc("netpowerprop_engine_cache_evictions_total",
		"Cache entries displaced by LRU pressure.",
		func() float64 { return float64(e.cache.Evictions()) })
	reg.CounterFunc("netpowerprop_engine_compute_seconds_total",
		"Cumulative computation time.",
		func() float64 { return float64(e.computeNanos.Load()) / 1e9 })
	reg.CounterFunc("netpowerprop_engine_row_compute_seconds_total",
		"Cumulative compute time spent in job rows.",
		func() float64 { return float64(e.rowNanos.Load()) / 1e9 })
	reg.GaugeFunc("netpowerprop_engine_inflight",
		"Computations running right now.",
		func() float64 { return float64(e.inFlight.Load()) })
	reg.GaugeFunc("netpowerprop_engine_pending",
		"Admitted computations, queued or running.",
		func() float64 { return float64(e.pending.Load()) })
	reg.GaugeFunc("netpowerprop_engine_cache_entries",
		"Current result-cache population.",
		func() float64 { return float64(e.cache.Len()) })
}
