// Package engine is the concurrent what-if query service over the cluster
// model: it wraps core, fattree, device, and the §4 mechanism simulations
// behind a typed request/response API with a canonical request-key
// normalizer, a sharded LRU result cache, singleflight deduplication of
// concurrent identical queries, and a bounded worker pool with
// per-request context cancellation. cmd/powerprop, cmd/netsim, and
// cmd/serve all route through this package, so CLI and server are
// guaranteed to produce identical numbers.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netpowerprop/internal/obs"
)

// Options configures an Engine. Zero values select sensible defaults.
type Options struct {
	// CacheSize is the total result-cache capacity in entries
	// (default 1024).
	CacheSize int
	// CacheShards is the number of LRU shards (default 16).
	CacheShards int
	// Workers bounds concurrently computing requests (default GOMAXPROCS).
	// Queued requests honor their context while waiting for a slot.
	Workers int
	// MaxQueue bounds requests waiting for a worker slot: once
	// Workers+MaxQueue requests are pending, further misses are shed with
	// ErrOverloaded instead of queuing without bound. Zero selects
	// 4×Workers; negative disables shedding.
	MaxQueue int
	// Logger receives structured engine events (cache hits/misses at
	// debug, sheds and deadlines at warn, recovered panics at error),
	// each tagged with the request's trace ID. Nil discards.
	Logger *obs.Logger
	// Registry, when non-nil, receives every engine metric under the
	// netpowerprop_engine_* namespace, including per-op latency
	// histograms. Register at most one engine per registry.
	Registry *obs.Registry
}

// Engine answers what-if requests, memoizing results by canonical key.
type Engine struct {
	cache    *cache
	flight   *flightGroup
	sem      chan struct{}
	workers  int
	maxQueue int // negative: unbounded

	hits         atomic.Uint64
	misses       atomic.Uint64
	shared       atomic.Uint64
	computations atomic.Uint64
	errors       atomic.Uint64
	inFlight     atomic.Int64
	computeNanos atomic.Int64
	// pending counts admitted computations (queued or running); it gates
	// load shedding and Drain. panics/sheds/deadlines are the robustness
	// counters surfaced on /metrics; lastPanic (UnixNano) feeds Health.
	pending   atomic.Int64
	panics    atomic.Uint64
	sheds     atomic.Uint64
	deadlines atomic.Uint64
	canceled  atomic.Uint64
	lastPanic atomic.Int64
	// rowsExecuted/rowNanos count job rows run through ExecRow — the
	// row-level execution surface internal/jobs checkpoints against.
	rowsExecuted atomic.Uint64
	rowNanos     atomic.Int64
	// batches/batchRows count DoBatch calls and the rows they carried;
	// streams/streamRows count Stream calls and the row frames they
	// emitted — the high-throughput serving surfaces.
	batches    atomic.Uint64
	batchRows  atomic.Uint64
	streams    atomic.Uint64
	streamRows atomic.Uint64
	// remote holds the cluster dispatch hook (see remote.go); remoteHits
	// counts misses answered by the owning replica instead of computed
	// locally.
	remote     atomic.Pointer[remoteBox]
	remoteHits atomic.Uint64
	// opStats breaks computation count and time down by operation. The map
	// is built once in New (one entry per registered Op) and never written
	// afterwards, so lookups are safe without a lock.
	opStats map[Op]*opStat
	// log and rowHist are set by instrument (always non-nil after New).
	log     *obs.Logger
	rowHist *obs.Histogram
}

// opStat accumulates per-operation compute counters.
type opStat struct {
	count atomic.Uint64
	nanos atomic.Int64
	hist  *obs.Histogram
}

// allOps lists every registered operation, for per-op metric setup.
var allOps = []Op{OpWhatIf, OpTable3, OpFig3, OpFig4, OpSweep, OpCost, OpScenario}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 1024
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 4 * opts.Workers
	}
	stats := make(map[Op]*opStat, len(allOps))
	for _, op := range allOps {
		stats[op] = new(opStat)
	}
	e := &Engine{
		cache:    newCache(opts.CacheSize, opts.CacheShards),
		flight:   newFlightGroup(),
		sem:      make(chan struct{}, opts.Workers),
		workers:  opts.Workers,
		maxQueue: opts.MaxQueue,
		opStats:  stats,
	}
	e.instrument(opts.Logger, opts.Registry)
	return e
}

// Workers is the size of the bounded compute pool; servers use it to
// derive Retry-After hints from queue depth.
func (e *Engine) Workers() int { return e.workers }

// Capacity is the admission bound — Workers+MaxQueue, the pending count
// at which further misses are shed — or -1 when the queue is unbounded.
// Admission layers derive early-shed thresholds from it.
func (e *Engine) Capacity() int {
	if e.maxQueue < 0 {
		return -1
	}
	return e.workers + e.maxQueue
}

// Pending is the live count of admitted computations (queued or
// running) — the cheap probe admission layers poll on every request,
// without snapshotting the full Metrics struct.
func (e *Engine) Pending() int64 { return e.pending.Load() }

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine the CLIs share.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}

// Do answers a request: normalize, consult the cache, collapse concurrent
// identical queries, and compute at most Workers requests at once. cached
// reports whether the result was served from the cache without waiting on
// any computation.
func (e *Engine) Do(ctx context.Context, req Request) (res *Result, cached bool, err error) {
	norm, err := req.Normalize()
	if err != nil {
		e.errors.Add(1)
		return nil, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	key := norm.Key()
	if res, ok := e.cache.Get(key); ok {
		e.hits.Add(1)
		if e.log.Enabled(obs.LevelDebug) {
			e.log.Debug("cache hit", "trace", obs.TraceID(ctx), "op", string(norm.Op))
		}
		return res, true, nil
	}
	e.misses.Add(1)
	if e.log.Enabled(obs.LevelDebug) {
		e.log.Debug("cache miss", "trace", obs.TraceID(ctx), "op", string(norm.Op))
	}
	res, shared, err := e.flight.do(ctx, key, func() (*Result, error) {
		return e.dispatch(ctx, key, norm)
	})
	if shared {
		e.shared.Add(1)
	}
	if err != nil {
		e.errors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			e.deadlines.Add(1)
			e.log.Warn("deadline exceeded", "trace", obs.TraceID(ctx), "op", string(norm.Op))
		case errors.Is(err, context.Canceled):
			// A client that disconnected (or otherwise canceled) is not a
			// deadline: count it separately so overload diagnosis does not
			// conflate the two.
			e.canceled.Add(1)
			e.log.Debug("request canceled", "trace", obs.TraceID(ctx), "op", string(norm.Op))
		}
		return nil, false, err
	}
	return res, false, nil
}

// computeAndCache runs one computation under the worker pool. The caller's
// context is honored both while queued and while computing; a computation
// that outlives its requester still completes and populates the cache, so
// the work is not wasted. Admission is bounded: when Workers+MaxQueue
// computations are already pending, the request is shed immediately with
// ErrOverloaded rather than queued without limit.
func (e *Engine) computeAndCache(ctx context.Context, key string, req Request) (*Result, error) {
	if p := e.pending.Add(1); e.maxQueue >= 0 && p > int64(e.workers+e.maxQueue) {
		e.pending.Add(-1)
		e.sheds.Add(1)
		e.log.Warn("request shed", "trace", obs.TraceID(ctx), "op", string(req.Op),
			"pending", p-1, "workers", e.workers, "maxqueue", e.maxQueue)
		return nil, ErrOverloaded
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer e.pending.Add(-1)
		res, err := e.runCompute(ctx, key, req)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runCompute acquires a worker slot, runs one computation with panic
// containment, updates the compute counters, and populates the cache on
// success. Admission (pending accounting and shedding) is the caller's
// responsibility: the interactive path admits per request, the batch path
// admits per row.
func (e *Engine) runCompute(ctx context.Context, key string, req Request) (*Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	e.inFlight.Add(1)
	start := time.Now()
	res, err := e.safeCompute(ctx, req)
	elapsed := int64(time.Since(start))
	e.computeNanos.Add(elapsed)
	if st := e.opStats[req.Op]; st != nil {
		st.count.Add(1)
		st.nanos.Add(elapsed)
		st.hist.ObserveDuration(time.Duration(elapsed))
	}
	e.inFlight.Add(-1)
	e.computations.Add(1)
	if err == nil {
		e.cache.Add(key, res)
	}
	return res, err
}

// Prime inserts an already computed result into the cache under its
// canonical key. The jobs subsystem calls it when a job finishes cleanly,
// so a synchronous query for the same request is a cache hit instead of a
// recomputation. Degraded results are never primed.
func (e *Engine) Prime(key string, res *Result) {
	if key == "" || res == nil || len(res.RowErrors) > 0 {
		return
	}
	e.cache.Add(key, res)
}

// Metrics is a point-in-time snapshot of the engine's counters.
type Metrics struct {
	// Hits counts requests answered from the cache.
	Hits uint64
	// Misses counts requests that had to wait on a computation.
	Misses uint64
	// Shared counts misses that piggybacked on another request's
	// in-flight computation (singleflight).
	Shared uint64
	// Computations counts computations actually run.
	Computations uint64
	// Errors counts failed requests (bad input or canceled).
	Errors uint64
	// Evictions counts cache entries displaced by LRU pressure.
	Evictions uint64
	// InFlight is the number of computations running right now.
	InFlight int64
	// Pending counts admitted computations, queued or running.
	Pending int64
	// Panics counts computations that panicked and were recovered.
	Panics uint64
	// Sheds counts requests rejected by the bounded queue (ErrOverloaded).
	Sheds uint64
	// Deadlines counts requests that failed with a deadline exceeded.
	Deadlines uint64
	// Canceled counts requests abandoned because the caller canceled
	// (typically a client disconnect), distinct from Deadlines.
	Canceled uint64
	// RowsExecuted counts job rows run through ExecRow.
	RowsExecuted uint64
	// RowSeconds is the cumulative compute time spent in job rows.
	RowSeconds float64
	// Batches counts DoBatch calls; BatchRows the rows they carried.
	Batches   uint64
	BatchRows uint64
	// Streams counts Stream calls; StreamRows the row frames emitted.
	Streams    uint64
	StreamRows uint64
	// RemoteHits counts misses answered by the owning cluster replica
	// through the remote-dispatch hook instead of computed locally.
	RemoteHits uint64
	// CacheEntries is the current cache population.
	CacheEntries int
	// ComputeSeconds is the cumulative computation time.
	ComputeSeconds float64
	// PerOp breaks Computations and ComputeSeconds down by operation.
	// Every registered op has an entry, even if never exercised.
	PerOp map[Op]OpMetrics
}

// OpMetrics is the per-operation slice of the compute counters.
type OpMetrics struct {
	// Count is how many computations ran for this op.
	Count uint64
	// Seconds is the cumulative computation time for this op.
	Seconds float64
}

// Metrics snapshots the engine's counters.
func (e *Engine) Metrics() Metrics {
	perOp := make(map[Op]OpMetrics, len(e.opStats))
	for op, st := range e.opStats {
		perOp[op] = OpMetrics{
			Count:   st.count.Load(),
			Seconds: float64(st.nanos.Load()) / 1e9,
		}
	}
	return Metrics{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		Shared:         e.shared.Load(),
		Computations:   e.computations.Load(),
		Errors:         e.errors.Load(),
		Evictions:      e.cache.Evictions(),
		InFlight:       e.inFlight.Load(),
		Pending:        e.pending.Load(),
		Panics:         e.panics.Load(),
		Sheds:          e.sheds.Load(),
		Deadlines:      e.deadlines.Load(),
		Canceled:       e.canceled.Load(),
		RowsExecuted:   e.rowsExecuted.Load(),
		RowSeconds:     float64(e.rowNanos.Load()) / 1e9,
		Batches:        e.batches.Load(),
		BatchRows:      e.batchRows.Load(),
		Streams:        e.streams.Load(),
		StreamRows:     e.streamRows.Load(),
		RemoteHits:     e.remoteHits.Load(),
		CacheEntries:   e.cache.Len(),
		ComputeSeconds: float64(e.computeNanos.Load()) / 1e9,
		PerOp:          perOp,
	}
}
