package engine

import (
	"context"
)

// This file is the engine's remote-dispatch surface for cluster mode: a
// hook consulted on every cache miss that may answer the request from the
// replica that owns its canonical key instead of computing locally. The
// hook slots inside the singleflight group, so concurrent identical
// queries share one network hop exactly as they share one computation,
// and a result fetched remotely primes the local cache so the next
// identical query is a local hit.

// RemoteFunc is the cluster dispatch hook. It receives the normalized
// request and its canonical key and reports one of three outcomes:
//
//   - handled=true, err=nil: res was produced by the owning replica; the
//     engine caches it and returns it as a non-cached answer.
//   - handled=true, err!=nil: the remote path owned the request but could
//     not answer in time (context expired mid-hop); the error surfaces to
//     the caller unchanged.
//   - handled=false: compute locally — either this replica owns the key,
//     or the owner is unreachable and the dispatcher chose graceful
//     degradation over failure (it does its own retry/hedge/failover
//     accounting before giving up).
type RemoteFunc func(ctx context.Context, key string, req Request) (res *Result, handled bool, err error)

// SetRemote installs (or, with nil, removes) the remote-dispatch hook.
// Safe to call while the engine is serving.
func (e *Engine) SetRemote(fn RemoteFunc) {
	if fn == nil {
		e.remote.Store((*remoteBox)(nil))
		return
	}
	e.remote.Store(&remoteBox{fn: fn})
}

// remoteBox wraps the hook for atomic.Pointer storage.
type remoteBox struct{ fn RemoteFunc }

// remoteFn loads the installed hook, or nil.
func (e *Engine) remoteFn() RemoteFunc {
	if b := e.remote.Load(); b != nil {
		return b.fn
	}
	return nil
}

// localOnlyKey marks a context as "compute here, never re-dispatch": the
// serving layer stamps it on requests that already took a cluster hop
// (X-Forwarded-Admit), so an ownership disagreement during a ring
// transition cannot bounce a request between replicas forever.
type localOnlyKey struct{}

// WithLocalOnly returns a context whose requests bypass the remote hook.
func WithLocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

// LocalOnly reports whether the context forbids remote dispatch.
func LocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// dispatch answers a cache miss: the remote hook first (when installed
// and permitted), local computation otherwise. Runs inside the
// singleflight group, so one network hop serves every concurrent
// identical query.
func (e *Engine) dispatch(ctx context.Context, key string, norm Request) (*Result, error) {
	if fn := e.remoteFn(); fn != nil && !LocalOnly(ctx) {
		res, handled, err := fn(ctx, key, norm)
		if handled {
			if err != nil {
				return nil, err
			}
			e.remoteHits.Add(1)
			// Prime so the next identical query is a local cache hit —
			// proxied results are as authoritative as local ones (both
			// replicas run the same deterministic computation).
			e.cache.Add(key, res)
			return res, nil
		}
	}
	return e.computeAndCache(ctx, key, norm)
}
