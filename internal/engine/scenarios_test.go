package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"netpowerprop/internal/topo"
)

// TestParallelRowsMatchesSerial: the concurrent row builder must assemble
// exactly the table a serial loop would, for row counts below, at, and
// above the worker count.
func TestParallelRowsMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 64} {
		row := func(i int) ([]string, error) {
			return []string{fmt.Sprintf("row-%d", i), fmt.Sprintf("%d", i*i)}, nil
		}
		want := make([][]string, n)
		for i := 0; i < n; i++ {
			want[i], _ = row(i)
		}
		got, err := parallelRows(n, row)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: parallel rows differ from serial:\ngot  %v\nwant %v", n, got, want)
		}
	}
}

// TestParallelRowsErrorOrder: when several rows fail, the lowest-index
// error is reported, matching what a serial loop would surface.
func TestParallelRowsErrorOrder(t *testing.T) {
	errLow := errors.New("row 2 failed")
	errHigh := errors.New("row 9 failed")
	_, err := parallelRows(12, func(i int) ([]string, error) {
		switch i {
		case 2:
			return nil, errLow
		case 9:
			return nil, errHigh
		}
		return []string{"ok"}, nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("error = %v, want lowest-index error %v", err, errLow)
	}
}

// TestScenariosParallelDeterministic: every registered scenario must
// produce identical tables across repeated runs — the parallel row fan-out
// may not perturb row order or contents.
func TestScenariosParallelDeterministic(t *testing.T) {
	for name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			req, err := Request{Op: OpScenario, Scenario: name}.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			first, err := compute(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			second, err := compute(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("scenario %q is not deterministic across runs", name)
			}
		})
	}
}

// TestTopologiesScenario: the zoo comparison has one row per registered
// generator, in name order, with every cell populated.
func TestTopologiesScenario(t *testing.T) {
	req, err := Request{
		Op: OpScenario, Scenario: "topologies",
		Params: map[string]float64{"hosts": 12, "iters": 1},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := compute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table
	if tbl == nil {
		t.Fatal("no table")
	}
	names := topo.Names()
	if len(tbl.Rows) != len(names) {
		t.Fatalf("table has %d rows, zoo has %d generators", len(tbl.Rows), len(names))
	}
	for i, row := range tbl.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d topology = %q, want %q", i, row[0], names[i])
		}
		if len(row) != len(tbl.Headers) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tbl.Headers))
		}
		for c, cell := range row {
			if cell == "" {
				t.Errorf("row %d (%s) column %q empty", i, row[0], tbl.Headers[c])
			}
		}
	}
}

// TestTopologiesRejects: the scenario validates its parameter envelope.
func TestTopologiesRejects(t *testing.T) {
	for _, params := range []map[string]float64{
		{"hosts": 2},                 // too few hosts for a low-load phase
		{"lowload": 1.5},             // not a fraction
		{"level": 0},                 // no offered load
		{"iters": 0},                 // nothing to simulate
		{"hosts": 4, "lowload": 0.9}, // low-load phase leaves no idle hosts
	} {
		req, err := Request{Op: OpScenario, Scenario: "topologies", Params: params}.Normalize()
		if err != nil {
			continue // rejected at normalization is fine too
		}
		if _, err := compute(context.Background(), req); err == nil {
			t.Errorf("params %v accepted", params)
		}
	}
}

// TestPerOpMetrics: computations are attributed to their op, and every
// registered op has an entry even when idle.
func TestPerOpMetrics(t *testing.T) {
	e := New(Options{})
	if _, _, err := e.Do(context.Background(), Request{Op: OpWhatIf}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Do(context.Background(), Request{Op: OpWhatIf}); err != nil {
		t.Fatal(err) // cache hit: must not count as a computation
	}
	if _, _, err := e.Do(context.Background(), Request{Op: OpCost}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if len(m.PerOp) != len(allOps) {
		t.Errorf("PerOp has %d entries, want %d", len(m.PerOp), len(allOps))
	}
	if got := m.PerOp[OpWhatIf].Count; got != 1 {
		t.Errorf("whatif count = %d, want 1", got)
	}
	if got := m.PerOp[OpCost].Count; got != 1 {
		t.Errorf("cost count = %d, want 1", got)
	}
	if got := m.PerOp[OpTable3].Count; got != 0 {
		t.Errorf("idle table3 count = %d, want 0", got)
	}
	if m.PerOp[OpWhatIf].Seconds < 0 {
		t.Errorf("negative whatif seconds %v", m.PerOp[OpWhatIf].Seconds)
	}
	var sum uint64
	for _, st := range m.PerOp {
		sum += st.Count
	}
	if sum != m.Computations {
		t.Errorf("per-op counts sum to %d, total computations %d", sum, m.Computations)
	}
}
