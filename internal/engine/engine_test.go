package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"netpowerprop/internal/core"
)

func do(t *testing.T, e *Engine, req Request) *Result {
	t.Helper()
	res, _, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do(%+v): %v", req, err)
	}
	return res
}

func TestNormalizeDefaults(t *testing.T) {
	n, err := Request{Op: OpWhatIf}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if n.GPUs != 15360 || n.Bandwidth != "400 Gbps" || n.CommRatio != 0.10 {
		t.Errorf("unexpected defaults: %+v", n)
	}
	if *n.NetworkProportionality != 0.10 || *n.ComputeProportionality != 0.85 {
		t.Errorf("unexpected proportionality defaults: %+v", n)
	}
	if n.Interp != "absolute" {
		t.Errorf("interp = %q, want absolute", n.Interp)
	}
	// OpCost defaults to the paper's §3.2 scenario: 50% proportionality.
	c, err := Request{Op: OpCost}.Normalize()
	if err != nil {
		t.Fatalf("Normalize cost: %v", err)
	}
	if *c.NetworkProportionality != 0.50 || *c.Price != 0.13 || *c.Cooling != 0.30 {
		t.Errorf("unexpected cost defaults: %+v", c)
	}
}

// TestKeyCanonical checks that a request spelled with explicit defaults and
// one spelled with zero values share a cache key.
func TestKeyCanonical(t *testing.T) {
	a, err := Request{Op: OpWhatIf}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request{
		Op:                     OpWhatIf,
		GPUs:                   15360,
		Bandwidth:              "400G",
		CommRatio:              0.10,
		NetworkProportionality: ptr(0.10),
		ComputeProportionality: ptr(0.85),
		Interp:                 "absolute",
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ:\n%s\n%s", a.Key(), b.Key())
	}
	// A different scenario gets a different key.
	c, err := Request{Op: OpWhatIf, GPUs: 1024}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == c.Key() {
		t.Errorf("distinct requests share key %s", a.Key())
	}
}

func TestNormalizeErrors(t *testing.T) {
	bad := []Request{
		{Op: "bogus"},
		{Op: OpWhatIf, Bandwidth: "nonsense"},
		{Op: OpWhatIf, CommRatio: 1.5},
		{Op: OpWhatIf, GPUs: -1},
		{Op: OpWhatIf, NetworkProportionality: ptr(2.0)},
		{Op: OpWhatIf, Interp: "bogus"},
		{Op: OpWhatIf, Overlap: 1.0},
		{Op: OpFig3, Budget: "bogus"},
		{Op: OpFig3, Proportionalities: []float64{-0.5}},
		{Op: OpFig4, FixedCommRatio: 2},
		{Op: OpSweep, Steps: -3},
		{Op: OpCost, Price: ptr(-1.0)},
		{Op: OpScenario, Scenario: "bogus"},
		{Op: OpScenario, Scenario: "gating", Params: map[string]float64{"nosuch": 1}},
	}
	for _, req := range bad {
		if _, err := req.Normalize(); err == nil {
			t.Errorf("Normalize(%+v): expected error", req)
		}
	}
}

// TestWhatIfMatchesCore pins the engine's whatif summary to the model's
// baseline cluster, so the server serves exactly the CLI's numbers.
func TestWhatIfMatchesCore(t *testing.T) {
	cl, err := core.New(core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	res := do(t, New(Options{}), Request{Op: OpWhatIf})
	s := res.Cluster
	if s == nil {
		t.Fatal("no cluster summary")
	}
	if s.AveragePower.Value != float64(cl.AveragePower()) {
		t.Errorf("average power %v != core %v", s.AveragePower.Value, float64(cl.AveragePower()))
	}
	if s.NetworkShare != cl.NetworkShare() {
		t.Errorf("network share %v != core %v", s.NetworkShare, cl.NetworkShare())
	}
	if s.NetworkEfficiency != cl.NetworkEfficiency() {
		t.Errorf("network efficiency %v != core %v", s.NetworkEfficiency, cl.NetworkEfficiency())
	}
	if s.AveragePower.Label != cl.AveragePower().String() {
		t.Errorf("average power label %q != core %q", s.AveragePower.Label, cl.AveragePower().String())
	}
}

// TestTable3MatchesCore pins the engine's grid to core.Table3 cell by cell.
func TestTable3MatchesCore(t *testing.T) {
	want, err := core.Table3()
	if err != nil {
		t.Fatal(err)
	}
	res := do(t, New(Options{}), Request{Op: OpTable3})
	g := res.Grid
	if g == nil {
		t.Fatal("no grid")
	}
	if len(g.Cells) != len(want.Bandwidths) {
		t.Fatalf("grid rows %d != %d", len(g.Cells), len(want.Bandwidths))
	}
	for i := range want.Bandwidths {
		for j := range want.Proportionalities {
			if g.Cells[i][j].Savings != want.Cell(i, j).Savings {
				t.Errorf("cell (%d,%d) savings %v != core %v",
					i, j, g.Cells[i][j].Savings, want.Cell(i, j).Savings)
			}
		}
	}
}

// TestCostMatchesSection32 pins the engine's §3.2 analysis to the model's.
func TestCostMatchesSection32(t *testing.T) {
	want, err := core.Section32(0.50)
	if err != nil {
		t.Fatal(err)
	}
	res := do(t, New(Options{}), Request{Op: OpCost})
	c := res.Cost
	if c == nil {
		t.Fatal("no cost result")
	}
	if c.SavedPower.Value != float64(want.SavedPower) {
		t.Errorf("saved power %v != core %v", c.SavedPower.Value, float64(want.SavedPower))
	}
	if c.ElectricityPerYear != want.ElectricityPerYear {
		t.Errorf("electricity %v != core %v", c.ElectricityPerYear, want.ElectricityPerYear)
	}
	if c.CoolingPerYear != want.CoolingPerYear {
		t.Errorf("cooling %v != core %v", c.CoolingPerYear, want.CoolingPerYear)
	}
}

func TestScenario(t *testing.T) {
	res := do(t, New(Options{}), Request{Op: OpScenario, Scenario: "gating"})
	if res.Table == nil {
		t.Fatal("no table")
	}
	if !strings.Contains(res.Table.Title, "§4.1") {
		t.Errorf("unexpected title %q", res.Table.Title)
	}
	if len(res.Table.Rows) == 0 || len(res.Table.Notes) == 0 {
		t.Errorf("table missing rows or notes: %+v", res.Table)
	}
	names := ScenarioNames()
	if len(names) != len(scenarios) {
		t.Errorf("ScenarioNames() = %v", names)
	}
}

// TestCacheHit checks that a repeated identical request is served from the
// cache and increments the hit counter.
func TestCacheHit(t *testing.T) {
	e := New(Options{})
	req := Request{Op: OpWhatIf}
	if _, cached, err := e.Do(context.Background(), req); err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	res, cached, err := e.Do(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if res == nil {
		t.Fatal("nil cached result")
	}
	m := e.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Computations != 1 {
		t.Errorf("metrics = %+v, want 1 hit / 1 miss / 1 computation", m)
	}
}

// TestSingleflightCollapse launches N concurrent identical requests on a
// fresh engine and checks that exactly one computation ran.
func TestSingleflightCollapse(t *testing.T) {
	e := New(Options{})
	const n = 16
	req := Request{Op: OpTable3}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, _, errs[i] = e.Do(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	m := e.Metrics()
	if m.Computations != 1 {
		t.Errorf("computations = %d, want 1 (singleflight should collapse identical queries)", m.Computations)
	}
	if m.Hits+m.Misses != n {
		t.Errorf("hits %d + misses %d != %d requests", m.Hits, m.Misses, n)
	}
}

// TestLRUEvictionBound checks that the cache population never exceeds its
// configured capacity.
func TestLRUEvictionBound(t *testing.T) {
	e := New(Options{CacheSize: 4, CacheShards: 1})
	for i := 0; i < 10; i++ {
		do(t, e, Request{Op: OpWhatIf, GPUs: 1024 + 128*i})
	}
	m := e.Metrics()
	if m.CacheEntries > 4 {
		t.Errorf("cache entries %d exceed capacity 4", m.CacheEntries)
	}
	if m.Evictions < 6 {
		t.Errorf("evictions = %d, want >= 6", m.Evictions)
	}
	if m.Computations != 10 {
		t.Errorf("computations = %d, want 10", m.Computations)
	}
}

func TestContextCanceled(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Do(ctx, Request{Op: OpWhatIf}); err == nil {
		t.Error("Do with canceled context: expected error")
	}
}

func TestDoInvalidRequest(t *testing.T) {
	e := New(Options{})
	if _, _, err := e.Do(context.Background(), Request{Op: "bogus"}); err == nil {
		t.Error("expected error for unknown op")
	}
	if m := e.Metrics(); m.Errors != 1 {
		t.Errorf("errors = %d, want 1", m.Errors)
	}
}

// TestStress hammers one small engine from many goroutines over a working
// set larger than the cache, so the race detector sees concurrent hits,
// misses, singleflight sharing, and evictions on every shard.
func TestStress(t *testing.T) {
	e := New(Options{CacheSize: 8, CacheShards: 2, Workers: 4})
	const (
		goroutines = 8
		iters      = 50
		keys       = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := Request{Op: OpWhatIf, GPUs: 512 * ((g+i)%keys + 1)}
				if _, _, err := e.Do(context.Background(), req); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m := e.Metrics()
	if m.Hits+m.Misses != goroutines*iters {
		t.Errorf("hits %d + misses %d != %d requests", m.Hits, m.Misses, goroutines*iters)
	}
	if m.CacheEntries > 8 {
		t.Errorf("cache entries %d exceed capacity 8", m.CacheEntries)
	}
	if m.InFlight != 0 {
		t.Errorf("in-flight = %d after quiescence", m.InFlight)
	}
}
