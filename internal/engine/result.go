package engine

import (
	"netpowerprop/internal/core"
	"netpowerprop/internal/units"
)

// Quantity is a physical value carried both numerically (base SI units:
// bits per second, watts, joules) and as the human-readable label the
// CLIs print, so the server's JSON and the CLI tables are guaranteed to
// agree.
type Quantity struct {
	Value float64 `json:"value"`
	Label string  `json:"label"`
}

func bandwidthQ(b units.Bandwidth) Quantity { return Quantity{float64(b), b.String()} }
func powerQ(p units.Power) Quantity         { return Quantity{float64(p), p.String()} }
func energyQ(e units.Energy) Quantity       { return Quantity{float64(e), e.String()} }

// Result is the engine's response. Exactly one payload field is set,
// matching the request's op. Results are cached and shared between
// concurrent requests; treat them as immutable.
type Result struct {
	Op Op `json:"op"`
	// Request echoes the normalized request the result answers.
	Request Request `json:"request"`

	Cluster    *ClusterSummary  `json:"cluster,omitempty"`
	Grid       *Grid            `json:"grid,omitempty"`
	Curves     []Curve          `json:"curves,omitempty"`
	Crossovers []CrossoverPoint `json:"crossovers,omitempty"`
	Sweep      []SweepPoint     `json:"sweep,omitempty"`
	Cost       *CostResult      `json:"cost,omitempty"`
	Table      *Table           `json:"table,omitempty"`

	// RowErrors marks rows that exhausted their retries when the result
	// was produced by the jobs subsystem (graceful degradation: the
	// successful rows are present, the failed ones are typed markers).
	// Always nil on the synchronous engine path.
	RowErrors []RowError `json:"row_errors,omitempty"`
}

// ClusterSummary reports one sized scenario: the fat-tree design and the
// power/efficiency metrics of §2–§3.
type ClusterSummary struct {
	GPUs                int      `json:"gpus"`
	Bandwidth           Quantity `json:"bandwidth"`
	Interp              string   `json:"interp"`
	Stages              float64  `json:"stages"`
	Switches            float64  `json:"switches"`
	Transceivers        float64  `json:"transceivers"`
	NetworkMaxPower     Quantity `json:"network_max_power"`
	ComputeMaxPower     Quantity `json:"compute_max_power"`
	AveragePower        Quantity `json:"average_power"`
	PeakPower           Quantity `json:"peak_power"`
	NetworkAveragePower Quantity `json:"network_average_power"`
	NetworkShare        float64  `json:"network_share"`
	NetworkEfficiency   float64  `json:"network_efficiency"`
	ComputeEfficiency   float64  `json:"compute_efficiency"`
	IterationTime       float64  `json:"iteration_time_s"`
	ScheduleTime        float64  `json:"schedule_time_s"`
	EnergyPerIteration  Quantity `json:"energy_per_iteration"`
}

func summarize(cl *core.Cluster) *ClusterSummary {
	cfg := cl.Config()
	d := cl.Design()
	return &ClusterSummary{
		GPUs:                cfg.GPUs,
		Bandwidth:           bandwidthQ(cfg.Bandwidth),
		Interp:              cfg.Interp.String(),
		Stages:              d.Stages,
		Switches:            d.Switches,
		Transceivers:        d.Transceivers(),
		NetworkMaxPower:     powerQ(cl.NetworkMaxPower()),
		ComputeMaxPower:     powerQ(cl.ComputeMaxPower()),
		AveragePower:        powerQ(cl.AveragePower()),
		PeakPower:           powerQ(cl.PeakPower()),
		NetworkAveragePower: powerQ(cl.NetworkAveragePower()),
		NetworkShare:        cl.NetworkShare(),
		NetworkEfficiency:   cl.NetworkEfficiency(),
		ComputeEfficiency:   cl.ComputeEfficiency(),
		IterationTime:       float64(cl.Iteration().Total()),
		ScheduleTime:        float64(cl.Schedule().Total()),
		EnergyPerIteration:  energyQ(cl.EnergyPerIteration()),
	}
}

// Grid is Table 3 in JSON form: rows by bandwidth, columns by
// proportionality, savings relative to the same-bandwidth reference.
type Grid struct {
	RefProportionality float64      `json:"ref_proportionality"`
	Interp             string       `json:"interp"`
	Bandwidths         []Quantity   `json:"bandwidths"`
	Proportionalities  []float64    `json:"proportionalities"`
	Cells              [][]GridCell `json:"cells"`
}

// GridCell is one savings cell.
type GridCell struct {
	Savings      float64  `json:"savings"`
	AveragePower Quantity `json:"average_power"`
	SavedPower   Quantity `json:"saved_power"`
}

func gridOf(g core.SavingsGrid, interp string) *Grid {
	out := &Grid{
		RefProportionality: g.RefProportionality,
		Interp:             interp,
		Proportionalities:  g.Proportionalities,
		Cells:              make([][]GridCell, len(g.Bandwidths)),
	}
	for _, bw := range g.Bandwidths {
		out.Bandwidths = append(out.Bandwidths, bandwidthQ(bw))
	}
	for i := range g.Bandwidths {
		row := make([]GridCell, len(g.Proportionalities))
		for j := range g.Proportionalities {
			c := g.Cell(i, j)
			row[j] = GridCell{
				Savings:      c.Savings,
				AveragePower: powerQ(c.AveragePower),
				SavedPower:   powerQ(c.SavedPower),
			}
		}
		out.Cells[i] = row
	}
	return out
}

// Curve is one Fig. 3/4 line: a bandwidth swept across proportionality.
type Curve struct {
	Bandwidth Quantity     `json:"bandwidth"`
	Points    []CurvePoint `json:"points"`
}

// CurvePoint is one optimized point of a speedup curve.
type CurvePoint struct {
	Proportionality float64 `json:"proportionality"`
	GPUs            int     `json:"gpus"`
	IterationTime   float64 `json:"iteration_time_s"`
	Speedup         float64 `json:"speedup"`
}

func curvesOf(cs []core.SpeedupCurve) []Curve {
	out := make([]Curve, 0, len(cs))
	for _, c := range cs {
		cv := Curve{Bandwidth: bandwidthQ(c.Bandwidth)}
		for _, p := range c.Points {
			cv.Points = append(cv.Points, CurvePoint{
				Proportionality: p.Proportionality,
				GPUs:            p.GPUs,
				IterationTime:   float64(p.IterationTime),
				Speedup:         p.Speedup,
			})
		}
		out = append(out, cv)
	}
	return out
}

// CrossoverPoint names the winning bandwidth at one proportionality.
type CrossoverPoint struct {
	Proportionality float64  `json:"proportionality"`
	Best            Quantity `json:"best"`
	Speedup         float64  `json:"speedup"`
}

func crossoversOf(cs []core.Crossover) []CrossoverPoint {
	out := make([]CrossoverPoint, 0, len(cs))
	for _, c := range cs {
		out = append(out, CrossoverPoint{
			Proportionality: c.Proportionality,
			Best:            bandwidthQ(c.Best),
			Speedup:         c.Speedup,
		})
	}
	return out
}

// SweepPoint is one row of a proportionality sweep.
type SweepPoint struct {
	Proportionality   float64  `json:"proportionality"`
	AveragePower      Quantity `json:"average_power"`
	PeakPower         Quantity `json:"peak_power"`
	NetworkShare      float64  `json:"network_share"`
	NetworkEfficiency float64  `json:"network_efficiency"`
	// Savings is relative to the sweep's proportionality-0 row.
	Savings float64 `json:"savings"`
}

// CostResult is the §3.2 annualized cost analysis.
type CostResult struct {
	Proportionality    float64  `json:"proportionality"`
	RefProportionality float64  `json:"ref_proportionality"`
	SavedPower         Quantity `json:"saved_power"`
	ElectricityPerYear float64  `json:"electricity_per_year"`
	CoolingPerYear     float64  `json:"cooling_per_year"`
	TotalPerYear       float64  `json:"total_per_year"`
}

// Table is a rendered mechanism-scenario result: the same title, headers,
// rows, and trailing notes the netsim CLI prints, in machine-readable
// form.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }
