package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"netpowerprop/internal/core"
	"netpowerprop/internal/obs"
	"netpowerprop/internal/units"
)

// This file is the engine's row-level execution surface: a RowPlan splits
// a normalized request into independently computable rows whose payloads
// can be checkpointed (journaled) one at a time and reassembled into the
// exact Result an uninterrupted computation would have produced. The jobs
// subsystem (internal/jobs) is the primary consumer: it executes rows
// through ExecRow — the same bounded worker pool interactive requests use
// — journals each completed row, and resumes interrupted work without
// recomputing any finished row.

// RowError is the typed per-row failure marker a degraded job carries in
// place of the row's payload: the row index, the final error text after
// retries were exhausted, and whether the failure was a contained panic.
type RowError struct {
	Row   int    `json:"row"`
	Err   string `json:"error"`
	Panic bool   `json:"panic,omitempty"`
}

// Error renders the marker as an ordinary error.
func (e RowError) Error() string {
	if e.Panic {
		return fmt.Sprintf("row %d panicked: %s", e.Row, e.Err)
	}
	return fmt.Sprintf("row %d failed: %s", e.Row, e.Err)
}

// RowPlan is one request split into independent rows. Row payloads are
// self-contained JSON so they can be journaled and replayed: Assemble
// rebuilds the Result from any mix of freshly computed and replayed
// payloads, and the bytes are identical either way.
type RowPlan struct {
	req Request
	key string
	n   int
	row func(ctx context.Context, i int) (json.RawMessage, error)
	// assemble receives one payload per row (nil where the row failed)
	// plus the typed markers for the failed rows, in row order.
	assemble func(rows []json.RawMessage, failed []RowError) (*Result, error)
}

// NewRowPlan builds a custom plan; the engine's own planners cover every
// registered op, so this exists for tests and alternative executors.
func NewRowPlan(req Request, n int,
	row func(ctx context.Context, i int) (json.RawMessage, error),
	assemble func(rows []json.RawMessage, failed []RowError) (*Result, error)) *RowPlan {
	return &RowPlan{req: req, key: req.Key(), n: n, row: row, assemble: assemble}
}

// Rows is the number of independent rows.
func (p *RowPlan) Rows() int { return p.n }

// Key is the canonical key of the normalized request — the jobs
// subsystem's idempotency token.
func (p *RowPlan) Key() string { return p.key }

// Request returns the normalized request the plan computes.
func (p *RowPlan) Request() Request { return p.req }

// Assemble rebuilds the Result from the row payloads. rows must have
// exactly Rows() entries; a nil entry must have a matching RowError in
// failed. When failed is empty the assembled Result is byte-identical
// (as JSON) to the one an uninterrupted computation would return;
// otherwise the Result carries the successful rows plus the markers.
func (p *RowPlan) Assemble(rows []json.RawMessage, failed []RowError) (*Result, error) {
	if len(rows) != p.n {
		return nil, fmt.Errorf("engine: assemble got %d rows, plan has %d", len(rows), p.n)
	}
	res, err := p.assemble(rows, failed)
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		res.RowErrors = failed
	}
	return res, nil
}

// runRow computes one row with panic containment, mirroring safeCompute:
// a panicking row yields a *PanicError instead of killing the process.
func (p *RowPlan) runRow(ctx context.Context, i int) (data json.RawMessage, err error) {
	defer func() {
		if v := recover(); v != nil {
			data, err = nil, &PanicError{Val: v, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.row(ctx, i)
}

// Plan normalizes a request and splits it into independent rows: sweeps
// split per point, Table 3 per bandwidth row, row-structured scenarios per
// table row, and everything else into a single row holding the whole
// computation. The split is chosen so rows share no mutable state and the
// assembled result is byte-identical to an uninterrupted computation.
func (e *Engine) Plan(req Request) (*RowPlan, error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	return planRows(norm)
}

// planRows builds the per-op plan for a normalized request.
func planRows(norm Request) (*RowPlan, error) {
	switch norm.Op {
	case OpSweep:
		return planSweep(norm), nil
	case OpTable3:
		return planTable3(norm), nil
	case OpScenario:
		if spec := scenarios[norm.Scenario]; spec.rows != nil {
			return planScenario(norm, spec)
		}
	}
	return planWhole(norm), nil
}

// planWhole is the fallback: one row carrying the entire Result, so any
// request — even ops with no natural row structure — can run as a job.
func planWhole(norm Request) *RowPlan {
	return NewRowPlan(norm, 1,
		func(ctx context.Context, _ int) (json.RawMessage, error) {
			res, err := compute(ctx, norm)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		},
		func(rows []json.RawMessage, failed []RowError) (*Result, error) {
			if len(failed) > 0 {
				return &Result{Op: norm.Op, Request: norm}, nil
			}
			var res Result
			if err := json.Unmarshal(rows[0], &res); err != nil {
				return nil, fmt.Errorf("engine: replay result: %w", err)
			}
			return &res, nil
		})
}

// planSweep splits a proportionality sweep into one row per point. Each
// row recomputes the proportionality-0 reference itself (core.New is
// analytic and cheap) so rows stay independent; the reference is
// deterministic, so every row prices savings against identical bytes.
func planSweep(norm Request) *RowPlan {
	return NewRowPlan(norm, norm.Steps+1,
		func(ctx context.Context, i int) (json.RawMessage, error) {
			pt, err := sweepRow(norm, i)
			if err != nil {
				return nil, err
			}
			return json.Marshal(pt)
		},
		func(rows []json.RawMessage, _ []RowError) (*Result, error) {
			res := &Result{Op: norm.Op, Request: norm}
			for _, raw := range rows {
				if raw == nil {
					continue
				}
				var pt SweepPoint
				if err := json.Unmarshal(raw, &pt); err != nil {
					return nil, fmt.Errorf("engine: replay sweep point: %w", err)
				}
				res.Sweep = append(res.Sweep, pt)
			}
			return res, nil
		})
}

// table3Row is the journaled payload of one Table 3 bandwidth row.
type table3Row struct {
	Bandwidth Quantity   `json:"bandwidth"`
	Cells     []GridCell `json:"cells"`
}

// planTable3 splits the savings grid by bandwidth row: the grid's
// reference power is per bandwidth, so rows are naturally independent.
func planTable3(norm Request) *RowPlan {
	bws := core.Table3Bandwidths()
	return NewRowPlan(norm, len(bws),
		func(ctx context.Context, i int) (json.RawMessage, error) {
			cfg, err := norm.config()
			if err != nil {
				return nil, err
			}
			grid, err := core.ComputeSavingsGrid(cfg, []units.Bandwidth{bws[i]},
				core.Table3Proportionalities(), cfg.NetworkProportionality)
			if err != nil {
				return nil, err
			}
			row := table3Row{Bandwidth: bandwidthQ(bws[i])}
			for j := range grid.Proportionalities {
				c := grid.Cell(0, j)
				row.Cells = append(row.Cells, GridCell{
					Savings:      c.Savings,
					AveragePower: powerQ(c.AveragePower),
					SavedPower:   powerQ(c.SavedPower),
				})
			}
			return json.Marshal(row)
		},
		func(rows []json.RawMessage, _ []RowError) (*Result, error) {
			g := &Grid{
				RefProportionality: *norm.NetworkProportionality,
				Interp:             norm.Interp,
				Proportionalities:  core.Table3Proportionalities(),
			}
			for _, raw := range rows {
				if raw == nil {
					continue
				}
				var row table3Row
				if err := json.Unmarshal(raw, &row); err != nil {
					return nil, fmt.Errorf("engine: replay grid row: %w", err)
				}
				g.Bandwidths = append(g.Bandwidths, row.Bandwidth)
				g.Cells = append(g.Cells, row.Cells)
			}
			return &Result{Op: norm.Op, Request: norm, Grid: g}, nil
		})
}

// planScenario splits a row-structured §4 scenario into its table rows.
func planScenario(norm Request, spec scenarioSpec) (*RowPlan, error) {
	sr, err := spec.rows(norm)
	if err != nil {
		return nil, err
	}
	return NewRowPlan(norm, sr.n,
		func(ctx context.Context, i int) (json.RawMessage, error) {
			cells, err := sr.row(ctx, i)
			if err != nil {
				return nil, err
			}
			return json.Marshal(cells)
		},
		func(rows []json.RawMessage, _ []RowError) (*Result, error) {
			t := *sr.table
			t.Rows = nil
			for _, raw := range rows {
				if raw == nil {
					continue
				}
				var cells []string
				if err := json.Unmarshal(raw, &cells); err != nil {
					return nil, fmt.Errorf("engine: replay table row: %w", err)
				}
				t.Rows = append(t.Rows, cells)
			}
			return &Result{Op: norm.Op, Request: norm, Table: &t}, nil
		}), nil
}

// ExecRow computes one row of a plan under the same bounded worker pool
// interactive requests use, with panic containment: background jobs share
// compute capacity fairly with the serving path instead of bypassing it.
func (e *Engine) ExecRow(ctx context.Context, p *RowPlan, i int) (json.RawMessage, error) {
	if i < 0 || i >= p.n {
		return nil, fmt.Errorf("engine: row %d outside plan of %d rows", i, p.n)
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	start := time.Now()
	data, err := p.runRow(ctx, i)
	elapsed := time.Since(start)
	e.rowNanos.Add(int64(elapsed))
	e.rowsExecuted.Add(1)
	e.rowHist.ObserveDuration(elapsed)
	var pe *PanicError
	if errors.As(err, &pe) {
		e.panics.Add(1)
		e.lastPanic.Store(time.Now().UnixNano())
		e.log.Error("panic recovered in row",
			"trace", obs.TraceID(ctx), "op", string(p.req.Op), "row", i, "panic", pe.Val)
	}
	return data, err
}
