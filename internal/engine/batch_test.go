package engine

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitPending polls until the engine has admitted at least n computations.
func waitPending(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for e.Metrics().Pending < n {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want >= %d", e.Metrics().Pending, n)
		case <-time.After(time.Millisecond):
		}
	}
}

// A batch answers every row with the same bytes N independent Do calls
// would have produced, in input order.
func TestBatchMatchesDo(t *testing.T) {
	reqs := []Request{
		{Op: OpWhatIf},
		{Op: OpWhatIf, GPUs: 1024},
		{Op: OpSweep, Steps: 4},
		{Op: OpCost},
	}
	batched := New(Options{})
	items := batched.DoBatch(context.Background(), reqs)
	if len(items) != len(reqs) {
		t.Fatalf("got %d items, want %d", len(items), len(reqs))
	}
	single := New(Options{})
	for i, req := range reqs {
		if items[i].Err != nil {
			t.Fatalf("row %d: %v", i, items[i].Err)
		}
		want := do(t, single, req)
		got, err := json.Marshal(items[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Errorf("row %d differs from Do:\n batch: %s\n    do: %s", i, got, ref)
		}
	}
	m := batched.Metrics()
	if m.Batches != 1 || m.BatchRows != uint64(len(reqs)) {
		t.Errorf("batches=%d rows=%d, want 1/%d", m.Batches, m.BatchRows, len(reqs))
	}
	if m.Computations != uint64(len(reqs)) {
		t.Errorf("computations = %d, want %d", m.Computations, len(reqs))
	}
}

// Duplicate rows (including differently spelled requests that normalize
// to one canonical key) collapse to a single computation; the extras are
// reported as shared.
func TestBatchDedupesWithinBatch(t *testing.T) {
	e := New(Options{})
	reqs := []Request{
		{Op: OpWhatIf},
		{Op: OpWhatIf, GPUs: 15360, Bandwidth: "400G", CommRatio: 0.10}, // same key as row 0
		{Op: OpWhatIf},
		{Op: OpWhatIf, GPUs: 2048},
	}
	items := e.DoBatch(context.Background(), reqs)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("row %d: %v", i, it.Err)
		}
	}
	if m := e.Metrics(); m.Computations != 2 {
		t.Errorf("computations = %d, want 2 (duplicates collapsed)", m.Computations)
	}
	if items[0].Shared || items[3].Shared {
		t.Errorf("first row of each group should own its computation: %+v", items)
	}
	if !items[1].Shared || !items[2].Shared {
		t.Errorf("duplicate rows should be shared: %+v", items)
	}
	if items[0].Result != items[1].Result || items[1].Result != items[2].Result {
		t.Error("duplicate rows should share one *Result")
	}
}

// Rows already in the cache are answered without computing, and prime the
// fast path for the rest of the batch's duplicates.
func TestBatchServesFromCache(t *testing.T) {
	e := New(Options{})
	warm := do(t, e, Request{Op: OpWhatIf})
	items := e.DoBatch(context.Background(), []Request{{Op: OpWhatIf}, {Op: OpCost}})
	if !items[0].Cached || items[0].Err != nil {
		t.Fatalf("warm row should be cached: %+v", items[0])
	}
	if items[0].Result != warm {
		t.Error("cached row should return the cached *Result")
	}
	if items[1].Cached {
		t.Errorf("cold row reported cached: %+v", items[1])
	}
	if m := e.Metrics(); m.Hits != 1 || m.Misses != 2 || m.Computations != 2 {
		t.Errorf("hits=%d misses=%d computations=%d, want 1/2/2", m.Hits, m.Misses, m.Computations)
	}
}

// A malformed row fails alone; the rest of the batch still computes.
func TestBatchRowErrorIsolated(t *testing.T) {
	e := New(Options{})
	items := e.DoBatch(context.Background(), []Request{
		{Op: OpWhatIf},
		{Op: "bogus"},
		{Op: OpCost},
	})
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good rows failed: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("bad row did not fail")
	}
	if items[1].Result != nil {
		t.Error("failed row carries a result")
	}
}

// Under overload, admission is per unique miss: rows that fit the queue
// bound proceed, the rest are shed with ErrOverloaded — matching what N
// independent requests would have seen.
func TestBatchPartialShed(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: 1})
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.15})) //nolint:errcheck
	waitPending(t, e, 1)
	// Capacity is workers+maxQueue = 2 and one slot is held by the
	// sleeper: exactly one of the three unique rows is admitted.
	items := e.DoBatch(context.Background(), []Request{
		{Op: OpWhatIf},
		{Op: OpWhatIf, GPUs: 1024},
		{Op: OpWhatIf, GPUs: 2048},
	})
	var ok, shed int
	for _, it := range items {
		switch {
		case it.Err == nil:
			ok++
		case errors.Is(it.Err, ErrOverloaded):
			shed++
		default:
			t.Errorf("unexpected error: %v", it.Err)
		}
	}
	if ok != 1 || shed != 2 {
		t.Fatalf("ok=%d shed=%d, want 1 admitted and 2 shed", ok, shed)
	}
	if m := e.Metrics(); m.Sheds != 2 {
		t.Errorf("sheds = %d, want 2", m.Sheds)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain after batch: %v", err)
	}
}

// All shed rows of one duplicated key report ErrOverloaded together.
func TestBatchShedCoversDuplicates(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueue: 1})
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.15}))  //nolint:errcheck
	go e.Do(context.Background(), chaosReq(map[string]float64{"sleep": 0.151})) //nolint:errcheck
	waitPending(t, e, 2)
	items := e.DoBatch(context.Background(), []Request{
		{Op: OpWhatIf},
		{Op: OpWhatIf},
	})
	for i, it := range items {
		if !errors.Is(it.Err, ErrOverloaded) {
			t.Errorf("row %d = %v, want ErrOverloaded", i, it.Err)
		}
	}
	// One unique key shed once, even though two rows carried it.
	if m := e.Metrics(); m.Sheds != 1 {
		t.Errorf("sheds = %d, want 1", m.Sheds)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// Regression: Pass 2's admitted list must not alias order's backing
// array. When pending drops between admission checks — exactly what
// happens under concurrent load — a shed key can precede an admitted
// key; with order[:0] aliasing, the admitted key overwrote the shed
// key's slot, so Pass 4 skipped the shed group (returning zero-value
// items: nil Result AND nil Err) and fanned a later group out twice.
// Hammer batches against a fluctuating queue and assert the invariant
// every row must satisfy: it carries a result or an error, never neither.
func TestBatchShedUnderChurnNeverYieldsEmptyItems(t *testing.T) {
	e := New(Options{Workers: 2, MaxQueue: 1})
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Unique params defeat the cache and singleflight so each
				// call really occupies (then frees) a queue slot.
				e.Do(context.Background(), chaosReq(map[string]float64{ //nolint:errcheck
					"sleep": 0.001 + float64(g*1_000_000+i)*1e-12,
				}))
			}
		}(g)
	}
	for i := 0; i < 150; i++ {
		reqs := make([]Request, 6)
		for k := range reqs {
			reqs[k] = Request{Op: OpWhatIf, GPUs: (i*len(reqs)+k+1)*8 + 16384}
		}
		items := e.DoBatch(context.Background(), reqs)
		for k, it := range items {
			if it.Result == nil && it.Err == nil {
				t.Fatalf("batch %d row %d is a zero-value item: no result, no error", i, k)
			}
		}
	}
	close(stop)
	churn.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain after churn: %v", err)
	}
}

// A batch submitted with an expired context fails every miss row without
// dispatching work.
func TestBatchCanceledContext(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := e.DoBatch(ctx, []Request{{Op: OpWhatIf}, {Op: OpCost}})
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("row %d = %v, want Canceled", i, it.Err)
		}
	}
	if m := e.Metrics(); m.Computations != 0 {
		t.Errorf("computations = %d, want 0", m.Computations)
	}
}

// An empty batch is a no-op beyond the batch counters.
func TestBatchEmpty(t *testing.T) {
	e := New(Options{})
	if items := e.DoBatch(context.Background(), nil); len(items) != 0 {
		t.Fatalf("got %d items for empty batch", len(items))
	}
	if m := e.Metrics(); m.Batches != 1 || m.BatchRows != 0 {
		t.Errorf("batches=%d rows=%d, want 1/0", m.Batches, m.BatchRows)
	}
}
