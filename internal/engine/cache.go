package engine

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// cache is a sharded LRU over canonical request keys. Sharding keeps the
// hot serving path from serializing on one mutex; each shard holds its own
// recency list, so eviction is LRU per shard (and therefore approximately
// LRU overall).
type cache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// newCache builds a cache with the given total capacity split across
// shards. Each shard holds at least one entry.
func newCache(capacity, shards int) *cache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	per := (capacity + shards - 1) / shards
	c := &cache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return c
}

func (c *cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Get returns the cached result for key, refreshing its recency.
func (c *cache) Get(key string) (*Result, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add inserts (or refreshes) a result, evicting the shard's least
// recently used entry when over capacity.
func (c *cache) Add(key string, res *Result) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, res: res})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions.Add(1)
	}
}

// Len returns the number of cached entries across all shards.
func (c *cache) Len() int {
	var n int
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Evictions returns the total entries evicted across all shards.
func (c *cache) Evictions() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.evictions.Load()
	}
	return n
}
