package engine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// planParityRequests spans every planner: the per-point sweep split, the
// per-bandwidth Table 3 split, the whole-result fallback, and (added in
// TestRowPlanParityScenarios) every row-structured scenario.
func planParityRequests() []Request {
	return []Request{
		{Op: OpSweep, Steps: 6},
		{Op: OpTable3},
		{Op: OpWhatIf},
		{Op: OpCost},
		{Op: OpFig3},
		{Op: OpFig4},
	}
}

// execPlan runs every row of a plan through ExecRow and assembles.
func execPlan(t *testing.T, e *Engine, p *RowPlan) *Result {
	t.Helper()
	rows := make([]json.RawMessage, p.Rows())
	for i := range rows {
		data, err := e.ExecRow(context.Background(), p, i)
		if err != nil {
			t.Fatalf("ExecRow(%d): %v", i, err)
		}
		rows[i] = data
	}
	res, err := p.Assemble(rows, nil)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return res
}

// TestRowPlanParity: executing a request row by row — through the journal
// payload round trip — must produce exactly the bytes the synchronous
// path produces. This is the property that makes checkpoint/resume safe.
func TestRowPlanParity(t *testing.T) {
	for _, req := range planParityRequests() {
		req := req
		t.Run(string(req.Op), func(t *testing.T) {
			e := New(Options{})
			plan, err := e.Plan(req)
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			got := execPlan(t, e, plan)
			want, _, err := e.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(want)
			if string(gb) != string(wb) {
				t.Errorf("row-plan result differs from synchronous result:\nrows: %s\nsync: %s", gb, wb)
			}
		})
	}
}

// TestRowPlanParityScenarios: every registered scenario, row-structured or
// not, assembles to the synchronous bytes.
func TestRowPlanParityScenarios(t *testing.T) {
	for name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e := New(Options{})
			req := Request{Op: OpScenario, Scenario: name}
			plan, err := e.Plan(req)
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			got := execPlan(t, e, plan)
			want, _, err := e.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(want)
			if string(gb) != string(wb) {
				t.Errorf("scenario %q row plan differs from synchronous result:\nrows: %s\nsync: %s", name, gb, wb)
			}
		})
	}
}

// TestRowPlanRowStructure: the splits are real (not single-row fallbacks)
// where the op has row structure.
func TestRowPlanRowStructure(t *testing.T) {
	e := New(Options{})
	cases := []struct {
		req  Request
		rows int
	}{
		{Request{Op: OpSweep, Steps: 6}, 7},
		{Request{Op: OpWhatIf}, 1},
		{Request{Op: OpScenario, Scenario: "chaos", Params: map[string]float64{"rows": 5}}, 5},
	}
	for _, c := range cases {
		p, err := e.Plan(c.req)
		if err != nil {
			t.Fatalf("Plan(%v): %v", c.req.Op, err)
		}
		if p.Rows() != c.rows {
			t.Errorf("Plan(%v).Rows() = %d, want %d", c.req.Op, p.Rows(), c.rows)
		}
		norm, _ := c.req.Normalize()
		if p.Key() != norm.Key() {
			t.Errorf("Plan(%v).Key() != canonical key", c.req.Op)
		}
	}
}

// TestRowPlanDegradedAssembly: assembling with a failed row keeps the
// healthy rows and attaches the typed markers.
func TestRowPlanDegradedAssembly(t *testing.T) {
	e := New(Options{})
	plan, err := e.Plan(Request{Op: OpSweep, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]json.RawMessage, plan.Rows())
	for i := range rows {
		if i == 2 {
			continue // the failed row stays nil
		}
		data, err := e.ExecRow(context.Background(), plan, i)
		if err != nil {
			t.Fatalf("ExecRow(%d): %v", i, err)
		}
		rows[i] = data
	}
	marker := RowError{Row: 2, Err: "injected", Panic: false}
	res, err := plan.Assemble(rows, []RowError{marker})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(res.Sweep) != plan.Rows()-1 {
		t.Errorf("degraded sweep has %d points, want %d", len(res.Sweep), plan.Rows()-1)
	}
	if len(res.RowErrors) != 1 || res.RowErrors[0] != marker {
		t.Errorf("RowErrors = %+v, want [%+v]", res.RowErrors, marker)
	}
}

// TestExecRowPanicContained: a panicking row surfaces as a *PanicError
// and bumps the engine's panic counters instead of crashing.
func TestExecRowPanicContained(t *testing.T) {
	e := New(Options{})
	plan, err := e.Plan(Request{
		Op: OpScenario, Scenario: "chaos",
		Params: map[string]float64{"rows": 3, "panicrow": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecRow(context.Background(), plan, 0); err != nil {
		t.Fatalf("healthy row: %v", err)
	}
	_, err = e.ExecRow(context.Background(), plan, 1)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking row returned %v, want *PanicError", err)
	}
	m := e.Metrics()
	if m.Panics != 1 {
		t.Errorf("Panics = %d, want 1", m.Panics)
	}
	if m.RowsExecuted != 2 {
		t.Errorf("RowsExecuted = %d, want 2", m.RowsExecuted)
	}
}

// TestExecRowBounds: out-of-range rows are rejected, not computed.
func TestExecRowBounds(t *testing.T) {
	e := New(Options{})
	plan, err := e.Plan(Request{Op: OpSweep, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, plan.Rows()} {
		if _, err := e.ExecRow(context.Background(), plan, i); err == nil {
			t.Errorf("ExecRow(%d) succeeded, want bounds error", i)
		}
	}
	if _, err := plan.Assemble(make([]json.RawMessage, plan.Rows()+1), nil); err == nil {
		t.Error("Assemble with wrong row count succeeded")
	}
}

// TestPrime: a primed result is served as a cache hit without compute.
func TestPrime(t *testing.T) {
	e := New(Options{})
	req := Request{Op: OpSweep, Steps: 3}
	norm, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Op: norm.Op, Request: norm}
	e.Prime(norm.Key(), res)
	got, cached, err := e.Do(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("Do after Prime: cached=%v err=%v", cached, err)
	}
	if got != res {
		t.Error("Do did not serve the primed result")
	}
	// Degraded results must never be primed.
	e2 := New(Options{})
	e2.Prime(norm.Key(), &Result{Op: norm.Op, Request: norm, RowErrors: []RowError{{Row: 0, Err: "x"}}})
	if _, cached, _ := e2.Do(context.Background(), req); cached {
		t.Error("degraded result was primed into the cache")
	}
}
