package engine

import (
	"context"
	"fmt"
	"math"

	"netpowerprop/internal/fault"
	"netpowerprop/internal/netsim"
	"netpowerprop/internal/report"
	"netpowerprop/internal/topo"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// topologiesRows runs the cross-topology power-proportionality comparison:
// every zoo generator sized to the same host count and link speed, each
// running the identical offered-load sweep (a low-load phase concentrated
// on a few hosts, a full-load all-to-all phase, and the full load again
// under a seeded fault trace). One row per topology reports the design's
// cost figures (switches, links, bisection), its delivered throughput and
// energy per bit at full load, the power proportionality the whole fabric
// achieves today (10%-proportional devices) and with perfectly gated
// devices, and its fault resilience (stall downtime, reroutes).
//
// The fabric-level proportionality is measured, not assumed: energy at the
// concentrated low load over energy at full load, normalized by the active
// host fraction. A topology whose idle switches the routing can drain
// scores near 1.0 when devices gate; one that keeps every switch busy even
// at low load (a torus) cannot exploit device gating at the fabric level.
func topologiesRows(req Request) (*scenarioRows, error) {
	hosts := int(req.Params["hosts"])
	iters := int(req.Params["iters"])
	seed := uint64(req.Params["seed"])
	flaps := int(req.Params["flaps"])
	mttr := units.Seconds(req.Params["mttr"])
	perm := int(req.Params["perm"])
	lowload := req.Params["lowload"]
	level := req.Params["level"]
	speed, err := units.ParseBandwidth(req.Bandwidth)
	if err != nil {
		return nil, err
	}
	if hosts < 4 {
		return nil, fmt.Errorf("hosts %d must be at least 4", hosts)
	}
	if iters < 1 {
		return nil, fmt.Errorf("iters %d must be positive", iters)
	}
	if level <= 0 || level > 1 {
		return nil, fmt.Errorf("level %v outside (0,1]", level)
	}
	if lowload <= 0 || lowload >= 1 {
		return nil, fmt.Errorf("lowload %v outside (0,1)", lowload)
	}
	activeLow := int(math.Ceil(lowload * float64(hosts)))
	if activeLow < 2 {
		activeLow = 2
	}
	if activeLow >= hosts {
		return nil, fmt.Errorf("lowload %v leaves no idle hosts at %d hosts", lowload, hosts)
	}
	names := topo.Names()

	t := &Table{
		Title: fmt.Sprintf("topology zoo — %d hosts @ %v each, all-to-all ×%d iters, %s low-load phase, seed %d",
			hosts, speed, iters, report.Percent(lowload), seed),
		Headers: []string{"topology", "switches", "links", "bisection", "throughput",
			"mean xfer", "energy/bit", "prop (today)", "prop (gated)", "downtime", "reroutes"},
		Notes: []string{
			"prop = measured fabric proportionality: energy drop from full to concentrated",
			"low load over the active-host drop, with 10%-proportional devices (today)",
			"and perfectly gated ones (gated); energy/bit and throughput at full load;",
			"downtime and reroutes under the same seeded fault trace for every topology.",
		},
	}
	row := func(ctx context.Context, idx int) ([]string, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := names[idx]
		top, design, err := topo.Build(name, topo.Spec{Hosts: hosts, LinkSpeed: speed})
		if err != nil {
			return nil, err
		}
		s := netsim.New(top)
		s.Routing = netsim.ConcentrateRouting
		s.Models = SimModels()
		hs := top.Hosts()

		runPhase := func(active []int, tr *fault.Trace) (*netsim.Result, float64, float64, error) {
			job := traffic.Job{
				ID: 1, Hosts: active, Period: 1, CommRatio: 0.5,
				Rate:    units.Bandwidth(level * float64(speed) / float64(len(active)-1)),
				Pattern: traffic.AllToAll,
			}
			flows, err := job.Flows(iters)
			if err != nil {
				return nil, 0, 0, err
			}
			offered := 0.0
			for _, f := range flows {
				offered += float64(f.Demand) * float64(f.Duration())
			}
			s.Faults = tr
			res, err := s.RunParallel(flows, 0)
			if err != nil {
				return nil, 0, 0, err
			}
			delivered := 0.0
			for _, st := range res.Flows {
				delivered += st.DeliveredBits
			}
			return res, offered, delivered, nil
		}
		energyAt := func(res *netsim.Result, prop float64) (units.Energy, error) {
			rep, err := s.Energy(res, prop, netsim.TwoState)
			if err != nil {
				return 0, err
			}
			return rep.Total(), nil
		}
		// proportionality: fractional energy drop over fractional load drop.
		propOf := func(elow, ehigh units.Energy) float64 {
			loadDrop := 1 - float64(activeLow)/float64(hosts)
			if ehigh <= 0 || loadDrop <= 0 {
				return 0
			}
			p := (1 - float64(elow)/float64(ehigh)) / loadDrop
			return math.Min(1, math.Max(0, p))
		}

		resLow, _, _, err := runPhase(hs[:activeLow], nil)
		if err != nil {
			return nil, fmt.Errorf("%s (low): %w", name, err)
		}
		resHigh, offered, delivered, err := runPhase(hs, nil)
		if err != nil {
			return nil, fmt.Errorf("%s (high): %w", name, err)
		}

		// The identical seeded fault process stresses every topology: same
		// flap count, repair time, and permanent failures, drawn over each
		// design's own optical links.
		var optical []int
		for _, l := range top.Links {
			if l.Optical {
				optical = append(optical, l.ID)
			}
		}
		downtime, reroutes := units.Seconds(0), 0
		if len(optical) > 0 {
			trace, err := fault.Generate(fault.GenConfig{
				Horizon: units.Seconds(iters), Links: optical,
				Flaps: flaps, MTTR: mttr, PermanentFailures: perm,
				WakeStuckProb: 0.25, WakeStuckExtra: mttr,
			}, seed)
			if err != nil {
				return nil, fmt.Errorf("%s (faults): %w", name, err)
			}
			resFault, _, _, err := runPhase(hs, trace)
			if err != nil {
				return nil, fmt.Errorf("%s (faulted): %w", name, err)
			}
			if resFault.Faults != nil {
				downtime = resFault.Faults.StallSeconds
				reroutes = resFault.Faults.Reroutes
			}
		}

		lowToday, err := energyAt(resLow, 0.1)
		if err != nil {
			return nil, err
		}
		highToday, err := energyAt(resHigh, 0.1)
		if err != nil {
			return nil, err
		}
		lowGated, err := energyAt(resLow, 1.0)
		if err != nil {
			return nil, err
		}
		highGated, err := energyAt(resHigh, 1.0)
		if err != nil {
			return nil, err
		}
		tput := 0.0
		if offered > 0 {
			tput = delivered / offered
		}
		// Mean per-flow transfer latency at full load — the co-sim latency
		// model's output surfaces here (in-process formula when no model
		// is attached).
		meanXfer := 0.0
		for _, st := range resHigh.Flows {
			meanXfer += float64(st.TransferLatency)
		}
		meanXfer /= float64(len(resHigh.Flows))
		perBit := math.Inf(1)
		if delivered > 0 {
			perBit = float64(highToday) / delivered
		}
		return []string{
			name,
			fmt.Sprintf("%d", design.Switches),
			fmt.Sprintf("%d", design.Links),
			design.Bisection.String(),
			report.Percent(tput),
			fmt.Sprintf("%.3gs", meanXfer),
			fmt.Sprintf("%.2f nJ/b", perBit*1e9),
			report.Percent(propOf(lowToday, highToday)),
			report.Percent(propOf(lowGated, highGated)),
			fmt.Sprintf("%.3gs", float64(downtime)),
			fmt.Sprintf("%d", reroutes),
		}, nil
	}
	return &scenarioRows{table: t, n: len(names), row: row}, nil
}
