package engine

import (
	"context"
	"encoding/json"
	"errors"

	"netpowerprop/internal/obs"
)

// This file is the engine's streaming execution surface. Stream executes
// a request through its RowPlan and hands each row's canonical JSON bytes
// to the caller as soon as it is computed, instead of buffering the whole
// Result. The emitted bytes are exactly the payloads the jobs journal
// checkpoints and Assemble consumes, so a streamed row is byte-identical
// to the corresponding row of the non-streaming JSON result, and the
// Result returned at the end is byte-identical (as JSON) to what Do would
// have produced.

// Stream computes req row by row, calling emit(i, data) for each row in
// order as soon as it is available. emit's error aborts the stream (a
// failed client write is treated as a cancellation). On success the
// assembled Result is returned and primed into the cache so a subsequent
// synchronous query is a hit. Streams bypass the result cache on read —
// a cached Result has no per-row bytes to replay — and are admitted
// against the same bounded queue as interactive requests: a stream that
// arrives with the queue full is shed with ErrOverloaded.
func (e *Engine) Stream(ctx context.Context, req Request, emit func(i int, data json.RawMessage) error) (*Result, error) {
	plan, err := e.Plan(req)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	e.streams.Add(1)

	// One pending slot covers the whole stream: rows run sequentially, so
	// the stream occupies at most one worker at a time, and Drain waits
	// for in-progress streams like any other admitted computation.
	if p := e.pending.Add(1); e.maxQueue >= 0 && p > int64(e.workers+e.maxQueue) {
		e.pending.Add(-1)
		e.sheds.Add(1)
		e.errors.Add(1)
		e.log.Warn("stream shed", "trace", obs.TraceID(ctx), "op", string(plan.req.Op),
			"pending", p-1, "workers", e.workers, "maxqueue", e.maxQueue)
		return nil, ErrOverloaded
	}
	defer e.pending.Add(-1)

	fail := func(err error) (*Result, error) {
		e.errors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			e.deadlines.Add(1)
			e.log.Warn("stream deadline exceeded", "trace", obs.TraceID(ctx), "op", string(plan.req.Op))
		case errors.Is(err, context.Canceled):
			// A disconnected streaming client is a cancellation, not a
			// deadline: the worker slot is already released (ExecRow holds
			// it only per row) and pending is released on return, so an
			// abandoned stream never blocks Drain.
			e.canceled.Add(1)
			e.log.Debug("stream canceled", "trace", obs.TraceID(ctx), "op", string(plan.req.Op))
		}
		return nil, err
	}

	rows := make([]json.RawMessage, plan.Rows())
	for i := 0; i < plan.Rows(); i++ {
		data, err := e.ExecRow(ctx, plan, i)
		if err != nil {
			return fail(err)
		}
		rows[i] = data
		e.streamRows.Add(1)
		if err := emit(i, data); err != nil {
			// The sink failed mid-stream (client went away): surface it as
			// a cancellation so overload diagnosis does not conflate dead
			// clients with slow computations.
			if ctx.Err() == nil {
				err = context.Canceled
			} else {
				err = ctx.Err()
			}
			return fail(err)
		}
	}
	res, err := plan.Assemble(rows, nil)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	e.Prime(plan.Key(), res)
	return res, nil
}
