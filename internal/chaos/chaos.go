// Package chaos is a seeded, deterministic failpoint framework.
//
// Code under test declares named injection sites at its cross-boundary
// I/O points (disk writes, inter-replica HTTP, gossip delivery). When
// the package is disarmed — the default — every site evaluates to a
// single atomic load and returns the zero Fault: no allocation, no
// branch beyond the flag check. When armed with a Plan (parsed from a
// compact spec string, see Parse), matching sites inject typed faults
// — error returns, short writes, fsync failures, ENOSPC, added
// latency, drops, one-way partitions — according to per-rule
// probability, count caps, and epoch windows.
//
// Every probabilistic decision is a pure hash of (plan seed, rule,
// per-rule hit counter), so a fault schedule is fully reproducible
// from its seed: the same plan against the same per-site evaluation
// sequence injects the same faults in the same order.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind names a fault type a rule can inject.
type Kind string

const (
	// KindError makes the site return ErrInjected.
	KindError Kind = "error"
	// KindShortWrite makes a file-write site persist only a prefix of
	// the buffer before failing (a torn write).
	KindShortWrite Kind = "shortwrite"
	// KindFsyncFail makes an fsync site fail after the data was
	// written: the bytes may or may not be durable.
	KindFsyncFail Kind = "fsyncfail"
	// KindENOSPC makes the site fail with a wrapped syscall.ENOSPC.
	KindENOSPC Kind = "enospc"
	// KindLatency delays the site by the rule's delay.
	KindLatency Kind = "latency"
	// KindDrop makes a message site lose the message.
	KindDrop Kind = "drop"
	// KindPartition is KindDrop restricted to one peer: combined with
	// the rule's peer matcher it models a one-way partition (traffic
	// FROM that peer into this node is lost; the reverse direction is
	// untouched).
	KindPartition Kind = "partition"
)

// Injected faults carry typed, recognizable errors so tests and
// callers can tell a chaos fault from an organic failure.
var (
	ErrInjected = errors.New("chaos: injected fault")
	// ErrInjectedENOSPC wraps syscall.ENOSPC so errors.Is sees both.
	ErrInjectedENOSPC = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
)

// Injection sites. Each constant names one cross-boundary point; the
// Registry below records its layer, the fault kinds it honors, and a
// one-line description (surfaced in DESIGN.md's site table).
const (
	SiteJournalWrite  = "jobs.journal.write"
	SiteJournalFsync  = "jobs.journal.fsync"
	SiteLeaseWrite    = "jobs.lease.write"
	SiteForwardSend   = "cluster.forward.send"
	SiteForwardRTT    = "cluster.forward.rtt"
	SiteGossipSend    = "cluster.gossip.send"
	SiteGossipDeliver = "cluster.gossip.deliver"
	SiteResponseWrite = "serve.response.write"
)

// SiteInfo describes one registered injection site.
type SiteInfo struct {
	Name  string
	Layer string
	Kinds []Kind
	Desc  string
}

// Registry lists every known site. Parse rejects unknown sites and
// kinds a site does not honor, so a typo in a spec fails fast instead
// of silently injecting nothing.
var Registry = []SiteInfo{
	{SiteJournalWrite, "jobs", []Kind{KindError, KindShortWrite, KindENOSPC}, "journal JSONL record write"},
	{SiteJournalFsync, "jobs", []Kind{KindFsyncFail}, "journal fsync after append"},
	{SiteLeaseWrite, "jobs", []Kind{KindError, KindENOSPC}, "owner lease file write"},
	{SiteForwardSend, "cluster", []Kind{KindError, KindDrop, KindPartition}, "forward/hedge HTTP request to a peer"},
	{SiteForwardRTT, "cluster", []Kind{KindLatency}, "added round-trip latency on a forward"},
	{SiteGossipSend, "cluster", []Kind{KindDrop, KindError, KindLatency}, "outbound gossip exchange request"},
	{SiteGossipDeliver, "cluster", []Kind{KindDrop, KindPartition}, "inbound gossip digest (request or reply)"},
	{SiteResponseWrite, "serve", []Kind{KindError, KindLatency}, "HTTP response body write to the client"},
}

func siteInfo(name string) *SiteInfo {
	for i := range Registry {
		if Registry[i].Name == name {
			return &Registry[i]
		}
	}
	return nil
}

func (s *SiteInfo) honors(k Kind) bool {
	for _, h := range s.Kinds {
		if h == k {
			return true
		}
	}
	return false
}

// Fault is the outcome of evaluating a site. The zero value means
// "no fault"; it is returned by value so the disarmed path allocates
// nothing.
type Fault struct {
	Kind  Kind
	Delay time.Duration // KindLatency
	N     int           // KindShortWrite: bytes persisted before the failure
	Err   error
}

// Active reports whether a fault was injected.
func (f Fault) Active() bool { return f.Kind != "" }

// Rule arms one fault on one site.
type Rule struct {
	Site  string
	Kind  Kind
	Prob  float64       // injection probability per eligible hit; 0 or 1 → always
	Count int           // max injections; 0 → unlimited
	After int           // skip the first After matching hits (epoch window start)
	Until int           // stop matching at hit Until (exclusive); 0 → no end
	Delay time.Duration // KindLatency
	Peer  string        // match only this peer; "" → any
}

type armedRule struct {
	Rule
	idx      int
	hits     atomic.Uint64
	injected atomic.Uint64
}

// Plan is an armed set of rules plus the seed all probabilistic
// decisions derive from.
type Plan struct {
	Seed   uint64
	rules  []*armedRule
	bySite map[string][]*armedRule
}

// global armed state: the flag is the fast path, the pointer the slow.
var (
	armedFlag atomic.Bool
	current   atomic.Pointer[Plan]
)

// Armed reports whether a plan is active.
func Armed() bool { return armedFlag.Load() }

// Arm activates p. Passing nil disarms.
func Arm(p *Plan) {
	if p == nil {
		Disarm()
		return
	}
	current.Store(p)
	armedFlag.Store(true)
}

// Disarm deactivates fault injection; all sites return to no-ops.
func Disarm() {
	armedFlag.Store(false)
	current.Store(nil)
}

// kind masks let each helper consume only rules it can honor, so a
// latency rule is never burned by a caller asking for errors.
type kindMask uint8

const (
	maskError kindMask = 1 << iota
	maskShortWrite
	maskFsyncFail
	maskENOSPC
	maskLatency
	maskDrop
	maskPartition
)

func maskOf(k Kind) kindMask {
	switch k {
	case KindError:
		return maskError
	case KindShortWrite:
		return maskShortWrite
	case KindFsyncFail:
		return maskFsyncFail
	case KindENOSPC:
		return maskENOSPC
	case KindLatency:
		return maskLatency
	case KindDrop:
		return maskDrop
	case KindPartition:
		return maskPartition
	}
	return 0
}

// eval walks p's rules for site in declaration order and injects the
// first one that matches peer, the mask, its window, its count cap,
// and its seeded coin flip.
func (p *Plan) eval(site, peer string, mask kindMask) Fault {
	for _, r := range p.bySite[site] {
		if maskOf(r.Kind)&mask == 0 {
			continue
		}
		if r.Peer != "" && r.Peer != peer {
			continue
		}
		h := r.hits.Add(1) - 1 // index of this hit in the rule's own sequence
		if h < uint64(r.After) {
			continue
		}
		if r.Until > 0 && h >= uint64(r.Until) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && unitHash(p.Seed, uint64(r.idx), h) >= r.Prob {
			continue
		}
		// Count cap, exact under concurrency.
		for {
			c := r.injected.Load()
			if r.Count > 0 && c >= uint64(r.Count) {
				break
			}
			if r.injected.CompareAndSwap(c, c+1) {
				siteInjections(site).Add(1)
				return r.fault()
			}
		}
	}
	return Fault{}
}

func (r *armedRule) fault() Fault {
	switch r.Kind {
	case KindError, KindDrop, KindPartition, KindFsyncFail:
		return Fault{Kind: r.Kind, Err: fmt.Errorf("%w: %s %s", ErrInjected, r.Site, r.Kind)}
	case KindENOSPC:
		return Fault{Kind: r.Kind, Err: fmt.Errorf("%w: %s", ErrInjectedENOSPC, r.Site)}
	case KindShortWrite:
		return Fault{Kind: r.Kind, Err: fmt.Errorf("%w: %s shortwrite", ErrInjected, r.Site)}
	case KindLatency:
		return Fault{Kind: r.Kind, Delay: r.Delay}
	}
	return Fault{}
}

// unitHash maps (seed, rule, hit) to [0,1) via FNV-64a with an
// avalanche finalizer — the same deterministic-jitter idiom the jobs
// retry policy uses.
func unitHash(seed, rule, hit uint64) float64 {
	h := uint64(1469598103934665603)
	for _, v := range [3]uint64{seed, rule, hit} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

func evalSite(site, peer string, mask kindMask) Fault {
	if !armedFlag.Load() {
		return Fault{}
	}
	p := current.Load()
	if p == nil {
		return Fault{}
	}
	siteEvals(site).Add(1)
	return p.eval(site, peer, mask)
}

const maskAny = maskError | maskShortWrite | maskFsyncFail | maskENOSPC | maskLatency | maskDrop | maskPartition

// Fire evaluates site against all fault kinds, with no peer context.
func Fire(site string) Fault { return evalSite(site, "", maskAny) }

// FirePeer evaluates site for traffic to/from peer, all fault kinds.
func FirePeer(site, peer string) Fault { return evalSite(site, peer, maskAny) }

// Error evaluates site for error-returning faults (error, enospc,
// fsyncfail) and returns the injected error, or nil.
func Error(site string) error {
	return evalSite(site, "", maskError|maskENOSPC|maskFsyncFail).Err
}

// ErrorPeer is Error with a peer matcher.
func ErrorPeer(site, peer string) error {
	return evalSite(site, peer, maskError|maskENOSPC|maskFsyncFail).Err
}

// Sleep evaluates site for latency faults and blocks for the
// configured delay, honoring ctx. Returns ctx.Err() if the context
// expires mid-delay.
func Sleep(ctx context.Context, site string) error { return SleepPeer(ctx, site, "") }

// SleepPeer is Sleep with a peer matcher.
func SleepPeer(ctx context.Context, site, peer string) error {
	f := evalSite(site, peer, maskLatency)
	if !f.Active() || f.Delay <= 0 {
		return nil
	}
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drop evaluates site for drop/partition faults on a message from/to
// peer and reports whether the message should be lost.
func Drop(site, peer string) bool {
	return evalSite(site, peer, maskDrop|maskPartition).Active()
}

// FileWrite evaluates a file-write site about to persist n bytes.
// It returns (n, nil) when no fault fires; on a short write it
// returns how many bytes should reach the file before the failure.
func FileWrite(site string, n int) (int, error) {
	f := evalSite(site, "", maskError|maskENOSPC|maskShortWrite)
	if !f.Active() {
		return n, nil
	}
	if f.Kind == KindShortWrite {
		return n / 2, f.Err
	}
	return 0, f.Err
}

// --- spec parsing ------------------------------------------------------

// Parse compiles a compact spec string into a Plan. Grammar:
//
//	spec   := clause (';' clause)*
//	clause := "seed=N" | rule
//	rule   := "site=NAME kind=KIND [prob=F] [count=N] [after=N] [until=N] [delay=DUR] [peer=ADDR]"
//
// Example:
//
//	seed=7;site=cluster.forward.rtt kind=latency delay=120ms prob=0.4 count=30;site=jobs.journal.fsync kind=fsyncfail count=1 after=4
//
// Unknown sites, kinds a site does not honor, and malformed fields are
// errors: a chaos spec that injects nothing should never pass silently.
func Parse(spec string) (*Plan, error) {
	p := &Plan{bySite: make(map[string][]*armedRule)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok && !strings.ContainsRune(v, ' ') {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			p.Seed = n
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		ar := &armedRule{Rule: r, idx: len(p.rules)}
		p.rules = append(p.rules, ar)
		p.bySite[r.Site] = append(p.bySite[r.Site], ar)
	}
	if len(p.rules) == 0 {
		return nil, errors.New("chaos: spec has no rules")
	}
	return p, nil
}

func parseRule(clause string) (Rule, error) {
	r := Rule{Prob: 1}
	for _, f := range strings.Fields(clause) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("chaos: bad field %q in %q", f, clause)
		}
		var err error
		switch k {
		case "site":
			r.Site = v
		case "kind":
			r.Kind = Kind(v)
		case "prob":
			r.Prob, err = strconv.ParseFloat(v, 64)
			if err == nil && (r.Prob < 0 || r.Prob > 1) {
				err = errors.New("out of [0,1]")
			}
		case "count":
			r.Count, err = strconv.Atoi(v)
		case "after":
			r.After, err = strconv.Atoi(v)
		case "until":
			r.Until, err = strconv.Atoi(v)
		case "delay":
			r.Delay, err = time.ParseDuration(v)
		case "peer":
			r.Peer = v
		default:
			return r, fmt.Errorf("chaos: unknown field %q in %q", k, clause)
		}
		if err != nil {
			return r, fmt.Errorf("chaos: bad %s=%q: %v", k, v, err)
		}
	}
	si := siteInfo(r.Site)
	if si == nil {
		known := make([]string, len(Registry))
		for i, s := range Registry {
			known[i] = s.Name
		}
		return r, fmt.Errorf("chaos: unknown site %q (known: %s)", r.Site, strings.Join(known, ", "))
	}
	if !si.honors(r.Kind) {
		return r, fmt.Errorf("chaos: site %s does not honor kind %q (honors: %v)", r.Site, r.Kind, si.Kinds)
	}
	if r.Kind == KindLatency && r.Delay <= 0 {
		return r, fmt.Errorf("chaos: site %s kind=latency needs delay=", r.Site)
	}
	if r.Kind == KindPartition && r.Peer == "" {
		return r, fmt.Errorf("chaos: site %s kind=partition needs peer=", r.Site)
	}
	return r, nil
}

// String renders the plan back to a parseable spec.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, r := range p.rules {
		fmt.Fprintf(&b, ";site=%s kind=%s", r.Site, r.Kind)
		if r.Prob != 1 {
			fmt.Fprintf(&b, " prob=%g", r.Prob)
		}
		if r.Count != 0 {
			fmt.Fprintf(&b, " count=%d", r.Count)
		}
		if r.After != 0 {
			fmt.Fprintf(&b, " after=%d", r.After)
		}
		if r.Until != 0 {
			fmt.Fprintf(&b, " until=%d", r.Until)
		}
		if r.Delay != 0 {
			fmt.Fprintf(&b, " delay=%s", r.Delay)
		}
		if r.Peer != "" {
			fmt.Fprintf(&b, " peer=%s", r.Peer)
		}
	}
	return b.String()
}

// --- counters ----------------------------------------------------------

// Per-site counters live outside the plan so they survive re-arming
// and can be registered as metrics once at startup.
type siteCounters struct {
	evals, injections atomic.Uint64
}

var counters = func() map[string]*siteCounters {
	m := make(map[string]*siteCounters, len(Registry))
	for _, s := range Registry {
		m[s.Name] = &siteCounters{}
	}
	return m
}()

func siteEvals(site string) *atomic.Uint64      { return &counters[site].evals }
func siteInjections(site string) *atomic.Uint64 { return &counters[site].injections }

// SiteCount is a snapshot of one site's counters.
type SiteCount struct {
	Site       string `json:"site"`
	Evals      uint64 `json:"evals"`
	Injections uint64 `json:"injections"`
}

// Counts snapshots every site's counters, sorted by site name.
func Counts() []SiteCount {
	out := make([]SiteCount, 0, len(counters))
	for name, c := range counters {
		out = append(out, SiteCount{name, c.evals.Load(), c.injections.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// ResetCounts zeroes every site counter (test hygiene).
func ResetCounts() {
	for _, c := range counters {
		c.evals.Store(0)
		c.injections.Store(0)
	}
}

// Injections sums injected faults across all sites.
func Injections() uint64 {
	var n uint64
	for _, c := range counters {
		n += c.injections.Load()
	}
	return n
}
