package chaos

import "netpowerprop/internal/obs"

// Instrument registers the chaos counters on reg:
//
//	netpowerprop_chaos_armed                     — 1 while a plan is active
//	netpowerprop_chaos_evaluations_total{site=}  — armed site evaluations
//	netpowerprop_chaos_injected_total{site=}     — faults actually injected
//
// Families render even when disarmed (all zeros) so dashboards and the
// exposition validator see a stable metric set.
func Instrument(reg *obs.Registry) {
	reg.GaugeFunc("netpowerprop_chaos_armed",
		"1 while a chaos fault plan is armed, 0 otherwise.",
		func() float64 {
			if Armed() {
				return 1
			}
			return 0
		})
	for _, s := range Registry {
		c := counters[s.Name]
		reg.CounterFunc("netpowerprop_chaos_evaluations_total",
			"Armed failpoint evaluations by site.",
			func() float64 { return float64(c.evals.Load()) },
			"site", s.Name)
		reg.CounterFunc("netpowerprop_chaos_injected_total",
			"Faults injected by site.",
			func() float64 { return float64(c.injections.Load()) },
			"site", s.Name)
	}
}
