package chaos

import (
	"context"
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Arm(p)
	t.Cleanup(func() {
		Disarm()
		ResetCounts()
	})
	return p
}

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed after Disarm")
	}
	if f := Fire(SiteJournalWrite); f.Active() {
		t.Fatalf("disarmed Fire injected %+v", f)
	}
	if err := Error(SiteJournalFsync); err != nil {
		t.Fatalf("disarmed Error: %v", err)
	}
	if Drop(SiteGossipDeliver, "x") {
		t.Fatal("disarmed Drop fired")
	}
	if n, err := FileWrite(SiteJournalWrite, 42); n != 42 || err != nil {
		t.Fatalf("disarmed FileWrite = (%d, %v)", n, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                                       // no rules
		"seed=5",                                 // no rules
		"site=nope kind=error",                   // unknown site
		"site=jobs.journal.write kind=fsyncfail", // kind not honored by site
		"site=cluster.forward.rtt kind=latency",  // latency needs delay
		"site=cluster.gossip.deliver kind=partition", // partition needs peer
		"site=jobs.journal.write kind=error prob=1.5",
		"site=jobs.journal.write kind=error bogus=1",
		"seed=abc;site=jobs.journal.write kind=error",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7;site=cluster.forward.rtt kind=latency prob=0.4 count=30 delay=120ms;site=jobs.journal.fsync kind=fsyncfail count=1 after=4"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("round trip drifted:\n%s\n%s", p.String(), p2.String())
	}
}

func TestCountAndAfterWindows(t *testing.T) {
	arm(t, "seed=1;site=jobs.journal.fsync kind=fsyncfail count=2 after=3")
	var got []int
	for i := 0; i < 10; i++ {
		if Error(SiteJournalFsync) != nil {
			got = append(got, i)
		}
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("injections at %v, want [3 4]", got)
	}
}

func TestUntilWindow(t *testing.T) {
	arm(t, "seed=1;site=jobs.journal.fsync kind=fsyncfail after=2 until=4")
	var got []int
	for i := 0; i < 8; i++ {
		if Error(SiteJournalFsync) != nil {
			got = append(got, i)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("injections at %v, want [2 3]", got)
	}
}

// Probabilistic decisions must be a pure function of (seed, rule, hit):
// re-arming the same spec replays the identical injection sequence, and
// a different seed picks a different one.
func TestSeededDeterminism(t *testing.T) {
	sequence := func(spec string) string {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		Arm(p)
		defer Disarm()
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if Drop(SiteGossipDeliver, "peer") {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	const spec = "seed=42;site=cluster.gossip.deliver kind=drop prob=0.3"
	a, b := sequence(spec), sequence(spec)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("prob=0.3 over 200 hits should mix hits and misses: %s", a)
	}
	if c := sequence("seed=43;site=cluster.gossip.deliver kind=drop prob=0.3"); c == a {
		t.Fatal("different seed produced identical sequence")
	}
	ResetCounts()
}

func TestPeerMatcher(t *testing.T) {
	arm(t, "seed=1;site=cluster.gossip.deliver kind=partition peer=http://a")
	if !Drop(SiteGossipDeliver, "http://a") {
		t.Fatal("matching peer not dropped")
	}
	if Drop(SiteGossipDeliver, "http://b") {
		t.Fatal("non-matching peer dropped")
	}
}

func TestKindMaskDoesNotBurnForeignRules(t *testing.T) {
	// A latency rule must not be consumed (or injected) by Error/Drop
	// callers that cannot honor it.
	arm(t, "seed=1;site=cluster.gossip.send kind=latency delay=1ms count=1")
	if err := Error(SiteGossipSend); err != nil {
		t.Fatalf("Error consumed a latency rule: %v", err)
	}
	if Drop(SiteGossipSend, "") {
		t.Fatal("Drop consumed a latency rule")
	}
	ctx := context.Background()
	start := time.Now()
	if err := Sleep(ctx, SiteGossipSend); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency rule did not fire for Sleep")
	}
}

func TestSleepHonorsContext(t *testing.T) {
	arm(t, "seed=1;site=cluster.forward.rtt kind=latency delay=10s")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Sleep(ctx, SiteForwardRTT)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored context cancellation")
	}
}

func TestFileWriteKinds(t *testing.T) {
	arm(t, "seed=1;site=jobs.journal.write kind=shortwrite count=1")
	n, err := FileWrite(SiteJournalWrite, 100)
	if n != 50 || !errors.Is(err, ErrInjected) {
		t.Fatalf("shortwrite = (%d, %v), want (50, ErrInjected)", n, err)
	}
	if n, err := FileWrite(SiteJournalWrite, 100); n != 100 || err != nil {
		t.Fatalf("count=1 exhausted but FileWrite = (%d, %v)", n, err)
	}
	Disarm()
	ResetCounts()

	arm(t, "seed=1;site=jobs.journal.write kind=enospc count=1")
	_, err = FileWrite(SiteJournalWrite, 100)
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("enospc fault = %v, want ENOSPC and ErrInjected", err)
	}
}

func TestCounts(t *testing.T) {
	arm(t, "seed=1;site=jobs.journal.fsync kind=fsyncfail count=1")
	Error(SiteJournalFsync)
	Error(SiteJournalFsync)
	for _, c := range Counts() {
		if c.Site != SiteJournalFsync {
			continue
		}
		if c.Evals != 2 || c.Injections != 1 {
			t.Fatalf("counts = %+v, want evals=2 injections=1", c)
		}
		if Injections() == 0 {
			t.Fatal("Injections() = 0")
		}
		return
	}
	t.Fatal("site missing from Counts()")
}
