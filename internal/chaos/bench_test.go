package chaos

import "testing"

// The disarmed fast path must be allocation-free — exactly zero, not
// "within tolerance": these evaluations sit on the serve hot path.
func TestDisarmedFireAllocatesNothing(t *testing.T) {
	Disarm()
	allocs := testing.AllocsPerRun(1000, func() {
		if f := Fire(SiteResponseWrite); f.Active() {
			t.Fatal("disarmed site injected")
		}
		if err := Error(SiteJournalFsync); err != nil {
			t.Fatal("disarmed site errored")
		}
		if Drop(SiteGossipDeliver, "http://peer:1") {
			t.Fatal("disarmed site dropped")
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed evaluations allocate %g times per run, want 0", allocs)
	}
}

// BenchmarkChaosDisarmed guards the "disarmed failpoints add 0
// allocs/op" claim: a site evaluation with no plan armed must be a
// single atomic load, nothing more.
func BenchmarkChaosDisarmed(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f := Fire(SiteResponseWrite); f.Active() {
			b.Fatal("disarmed site injected")
		}
	}
}
