// Package nos is the user-facing piece of §4.1: a network-OS-style command
// shell that actually exposes the power knobs today's closed network
// operating systems hide. It wraps an ASIC model with `show`/`set`/`apply`
// commands — individual component gating for experts, and the predefined
// PM0–PM3 low-power modes (the "networking equivalent of C-states") for
// everyone else.
package nos

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/powergate"
	"netpowerprop/internal/report"
	"netpowerprop/internal/units"
)

// Shell interprets power-knob commands against one ASIC.
type Shell struct {
	asic *asic.ASIC
	out  io.Writer
}

// NewShell wraps an ASIC. Output (command responses) goes to out.
func NewShell(a *asic.ASIC, out io.Writer) (*Shell, error) {
	if a == nil {
		return nil, fmt.Errorf("nos: nil ASIC")
	}
	if out == nil {
		return nil, fmt.Errorf("nos: nil output writer")
	}
	return &Shell{asic: a, out: out}, nil
}

// ASIC exposes the wrapped chip (for tests and composition).
func (s *Shell) ASIC() *asic.ASIC { return s.asic }

// Exec runs one command line. Unknown or malformed commands return errors;
// state is only mutated on success.
func (s *Shell) Exec(line string) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	switch fields[0] {
	case "show":
		return s.execShow(fields[1:])
	case "set":
		return s.execSet(fields[1:])
	case "apply":
		return s.execApply(fields[1:])
	case "help":
		return s.printHelp()
	default:
		return fmt.Errorf("nos: unknown command %q (try help)", fields[0])
	}
}

// Run executes commands line by line until EOF. Errors are reported to the
// output and do not stop the session (interactive semantics); the first
// I/O error aborts.
func (s *Shell) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if err := s.Exec(sc.Text()); err != nil {
			if _, werr := fmt.Fprintf(s.out, "error: %v\n", err); werr != nil {
				return werr
			}
		}
	}
	return sc.Err()
}

func (s *Shell) printHelp() error {
	_, err := fmt.Fprint(s.out, `commands:
  show power                     current / min / max draw
  show pipelines|ports|memory    component states
  show modes                     PM0-PM3 mode ladder
  set port <n> up|down           gate one port's SerDes
  set pipeline <n> on|off        park or wake a pipeline
  set pipeline <n> freq <0-1>    scale a pipeline's clock
  set memory <n> on|off          gate a memory bank
  set l3 on|off                  gate L3 lookup stages
  apply mode <PM0-PM3>           enter a predefined low-power mode
                                 (deployment inferred from port states)
`)
	return err
}

func (s *Shell) execShow(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("nos: usage: show power|pipelines|ports|memory|modes")
	}
	cfg := s.asic.Config()
	switch args[0] {
	case "power":
		_, err := fmt.Fprintf(s.out, "power: %v (floor %v, max %v)\n",
			s.asic.Power(), s.asic.MinPower(), cfg.Max)
		return err
	case "pipelines":
		for p := 0; p < cfg.Pipelines; p++ {
			state := "off"
			if s.asic.PipelineOn(p) {
				state = fmt.Sprintf("on freq=%.2f", s.asic.PipelineFreq(p))
			}
			if _, err := fmt.Fprintf(s.out, "pipeline %d: %s\n", p, state); err != nil {
				return err
			}
		}
		return nil
	case "ports":
		up := 0
		for p := 0; p < cfg.Ports; p++ {
			if s.asic.PortOn(p) {
				up++
			}
		}
		_, err := fmt.Fprintf(s.out, "ports: %d/%d up\n", up, cfg.Ports)
		return err
	case "memory":
		on := 0
		for b := 0; b < cfg.MemoryBanks; b++ {
			if s.asic.MemoryBankOn(b) {
				on++
			}
		}
		_, err := fmt.Fprintf(s.out, "memory banks: %d/%d on, l3: %v\n", on, cfg.MemoryBanks, s.asic.L3On())
		return err
	case "modes":
		reports, err := powergate.Evaluate(cfg, s.deployment())
		if err != nil {
			return err
		}
		tb := report.Table{Headers: []string{"mode", "power", "savings", "wake"}}
		for _, r := range reports {
			tb.AddRow(r.Mode.Name, r.Power.String(), report.Percent(r.Savings),
				fmt.Sprintf("%gs", float64(r.Mode.WakeLatency)))
		}
		return tb.Write(s.out)
	default:
		return fmt.Errorf("nos: unknown show target %q", args[0])
	}
}

func (s *Shell) execSet(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("nos: usage: set port|pipeline|memory|l3 ...")
	}
	onOff := func(w string) (bool, error) {
		switch w {
		case "on", "up":
			return true, nil
		case "off", "down":
			return false, nil
		default:
			return false, fmt.Errorf("nos: want on/off, got %q", w)
		}
	}
	switch args[0] {
	case "port":
		if len(args) != 3 {
			return fmt.Errorf("nos: usage: set port <n> up|down")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("nos: bad port %q", args[1])
		}
		state, err := onOff(args[2])
		if err != nil {
			return err
		}
		if err := s.asic.SetPort(n, state); err != nil {
			return err
		}
	case "pipeline":
		if len(args) == 4 && args[2] == "freq" {
			n, err := strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("nos: bad pipeline %q", args[1])
			}
			f, err := strconv.ParseFloat(args[3], 64)
			if err != nil {
				return fmt.Errorf("nos: bad frequency %q", args[3])
			}
			if err := s.asic.SetPipelineFreq(n, f); err != nil {
				return err
			}
			break
		}
		if len(args) != 3 {
			return fmt.Errorf("nos: usage: set pipeline <n> on|off|freq <f>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("nos: bad pipeline %q", args[1])
		}
		state, err := onOff(args[2])
		if err != nil {
			return err
		}
		if err := s.asic.SetPipeline(n, state); err != nil {
			return err
		}
	case "memory":
		if len(args) != 3 {
			return fmt.Errorf("nos: usage: set memory <n> on|off")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("nos: bad bank %q", args[1])
		}
		state, err := onOff(args[2])
		if err != nil {
			return err
		}
		if err := s.asic.SetMemoryBank(n, state); err != nil {
			return err
		}
	case "l3":
		state, err := onOff(args[1])
		if err != nil {
			return err
		}
		s.asic.SetL3(state)
	default:
		return fmt.Errorf("nos: unknown set target %q", args[0])
	}
	_, err := fmt.Fprintf(s.out, "ok; power now %v\n", s.asic.Power())
	return err
}

// deployment infers the current deployment from shell state: used ports
// are the ones up; L3 and memory follow the current gating.
func (s *Shell) deployment() powergate.Deployment {
	cfg := s.asic.Config()
	var used []int
	for p := 0; p < cfg.Ports; p++ {
		if s.asic.PortOn(p) {
			used = append(used, p)
		}
	}
	on := 0
	for b := 0; b < cfg.MemoryBanks; b++ {
		if s.asic.MemoryBankOn(b) {
			on++
		}
	}
	return powergate.Deployment{
		UsedPorts:   used,
		NeedsL3:     s.asic.L3On(),
		FIBFraction: float64(on) / float64(cfg.MemoryBanks),
		WakeBudget:  units.Seconds(1),
	}
}

func (s *Shell) execApply(args []string) error {
	if len(args) != 2 || args[0] != "mode" {
		return fmt.Errorf("nos: usage: apply mode <PM0-PM3>")
	}
	for _, m := range powergate.Modes() {
		if m.Name == args[1] {
			if err := powergate.Apply(s.asic, s.deployment(), m); err != nil {
				return err
			}
			_, err := fmt.Fprintf(s.out, "mode %s applied; power now %v (wake %gs)\n",
				m.Name, s.asic.Power(), float64(m.WakeLatency))
			return err
		}
	}
	return fmt.Errorf("nos: unknown mode %q", args[1])
}
