package nos

import (
	"math"
	"strings"
	"testing"

	"netpowerprop/internal/asic"
)

func shell(t *testing.T) (*Shell, *strings.Builder) {
	t.Helper()
	a, err := asic.New(asic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sh, err := NewShell(a, &sb)
	if err != nil {
		t.Fatal(err)
	}
	return sh, &sb
}

func TestNewShellValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewShell(nil, &sb); err == nil {
		t.Error("nil ASIC accepted")
	}
	a, _ := asic.New(asic.DefaultConfig())
	if _, err := NewShell(a, nil); err == nil {
		t.Error("nil writer accepted")
	}
}

func TestShowPower(t *testing.T) {
	sh, out := shell(t)
	if err := sh.Exec("show power"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "750 W") {
		t.Errorf("show power output: %q", out.String())
	}
}

func TestSetPortGates(t *testing.T) {
	sh, out := shell(t)
	before := sh.ASIC().Power()
	if err := sh.Exec("set port 0 down"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().PortOn(0) {
		t.Error("port still up")
	}
	if sh.ASIC().Power() >= before {
		t.Error("gating a port did not reduce power")
	}
	if !strings.Contains(out.String(), "ok; power now") {
		t.Errorf("missing confirmation: %q", out.String())
	}
	if err := sh.Exec("set port 0 up"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().Power() != before {
		t.Error("re-enabling did not restore power")
	}
}

func TestSetPipelineAndFreq(t *testing.T) {
	sh, _ := shell(t)
	if err := sh.Exec("set pipeline 1 off"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().PipelineOn(1) {
		t.Error("pipeline still on")
	}
	if err := sh.Exec("set pipeline 0 freq 0.5"); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh.ASIC().PipelineFreq(0)-0.5) > 1e-12 {
		t.Error("frequency not applied")
	}
	if err := sh.Exec("set pipeline 0 freq 2"); err == nil {
		t.Error("invalid frequency accepted")
	}
}

func TestSetMemoryAndL3(t *testing.T) {
	sh, _ := shell(t)
	if err := sh.Exec("set memory 7 off"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().MemoryBankOn(7) {
		t.Error("bank still on")
	}
	if err := sh.Exec("set l3 off"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().L3On() {
		t.Error("l3 still on")
	}
}

func TestApplyMode(t *testing.T) {
	sh, out := shell(t)
	// Take half the ports down, then let PM3 park the empty pipelines.
	for p := 64; p < 128; p++ {
		if err := sh.Exec("set port " + itoa(p) + " down"); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Exec("apply mode PM3"); err != nil {
		t.Fatal(err)
	}
	if sh.ASIC().PipelineOn(2) || sh.ASIC().PipelineOn(3) {
		t.Error("PM3 left empty pipelines on")
	}
	if !sh.ASIC().PipelineOn(0) {
		t.Error("PM3 parked a live pipeline")
	}
	if !strings.Contains(out.String(), "mode PM3 applied") {
		t.Errorf("missing mode confirmation: %q", out.String())
	}
	if err := sh.Exec("apply mode PM9"); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := sh.Exec("apply PM3"); err == nil {
		t.Error("malformed apply accepted")
	}
}

func TestShowViews(t *testing.T) {
	sh, out := shell(t)
	for _, cmd := range []string{"show pipelines", "show ports", "show memory", "show modes", "help"} {
		if err := sh.Exec(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	s := out.String()
	for _, want := range []string{"pipeline 0: on", "ports: 128/128 up", "memory banks: 8/8", "PM0", "PM3", "apply mode"} {
		if !strings.Contains(s, want) {
			t.Errorf("views missing %q:\n%s", want, s)
		}
	}
}

func TestExecErrors(t *testing.T) {
	sh, _ := shell(t)
	for _, cmd := range []string{
		"bogus", "show", "show bogus", "set", "set port", "set port x down",
		"set port 0 sideways", "set port 999 down", "set pipeline 0",
		"set pipeline x on", "set pipeline 0 freq x", "set memory 0",
		"set memory x off", "set memory 99 off", "set bogus 1 on", "set l3 maybe",
	} {
		if err := sh.Exec(cmd); err == nil {
			t.Errorf("%q accepted", cmd)
		}
	}
	// Blank lines and comments are no-ops.
	if err := sh.Exec(""); err != nil {
		t.Error("blank line errored")
	}
	if err := sh.Exec("# comment"); err != nil {
		t.Error("comment errored")
	}
}

func TestRunSession(t *testing.T) {
	sh, out := shell(t)
	script := strings.Join([]string{
		"# take the back half of the box down",
		"set port 127 down",
		"set l3 off",
		"show power",
		"not-a-command",
		"show ports",
	}, "\n")
	if err := sh.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "error: nos: unknown command") {
		t.Errorf("session did not surface the bad command:\n%s", s)
	}
	if !strings.Contains(s, "ports: 127/128 up") {
		t.Errorf("session state wrong:\n%s", s)
	}
}

// itoa avoids importing strconv in tests for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
