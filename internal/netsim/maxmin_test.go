package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMinSingleLink(t *testing.T) {
	// Three flows share a 90-unit link; equal split.
	rates, err := MaxMin(
		[]float64{100, 100, 100},
		[][]int{{1}, {1}, {1}},
		map[int]float64{1: 90})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if math.Abs(r-30) > 1e-9 {
			t.Errorf("rate[%d] = %v, want 30", i, r)
		}
	}
}

func TestMaxMinDemandBounded(t *testing.T) {
	// One small flow takes its demand; the rest split the remainder.
	rates, err := MaxMin(
		[]float64{10, 100, 100},
		[][]int{{1}, {1}, {1}},
		map[int]float64{1: 90})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-10) > 1e-9 {
		t.Errorf("small flow = %v, want 10", rates[0])
	}
	for _, i := range []int{1, 2} {
		if math.Abs(rates[i]-40) > 1e-9 {
			t.Errorf("rate[%d] = %v, want 40", i, rates[i])
		}
	}
}

func TestMaxMinClassicTandem(t *testing.T) {
	// The textbook example: flow A crosses links 1 and 2, flow B link 1,
	// flow C link 2. cap(1)=10, cap(2)=20. Max-min: A=5, B=5, C=15.
	rates, err := MaxMin(
		[]float64{100, 100, 100},
		[][]int{{1, 2}, {1}, {2}},
		map[int]float64{1: 10, 2: 20})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 5, 15}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Errorf("rate[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestMaxMinUnconstrained(t *testing.T) {
	// Demands below all fair shares: everyone gets their demand.
	rates, err := MaxMin(
		[]float64{5, 7},
		[][]int{{1}, {2}},
		map[int]float64{1: 100, 2: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 5 || rates[1] != 7 {
		t.Errorf("rates = %v, want [5 7]", rates)
	}
}

func TestMaxMinZeroCapacity(t *testing.T) {
	// A parked (zero-capacity) link starves its flows without wedging the
	// algorithm.
	rates, err := MaxMin(
		[]float64{10, 10},
		[][]int{{1}, {2}},
		map[int]float64{1: 0, 2: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0 {
		t.Errorf("flow on dead link = %v, want 0", rates[0])
	}
	if rates[1] != 10 {
		t.Errorf("healthy flow = %v, want 10", rates[1])
	}
}

func TestMaxMinZeroDemand(t *testing.T) {
	rates, err := MaxMin(
		[]float64{0, 50},
		[][]int{{1}, {1}},
		map[int]float64{1: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0 || math.Abs(rates[1]-40) > 1e-9 {
		t.Errorf("rates = %v, want [0 40]", rates)
	}
}

func TestMaxMinErrors(t *testing.T) {
	if _, err := MaxMin([]float64{1}, nil, nil); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := MaxMin([]float64{-1}, [][]int{{1}}, map[int]float64{1: 10}); err == nil {
		t.Error("negative demand should fail")
	}
	if _, err := MaxMin([]float64{1}, [][]int{{}}, map[int]float64{}); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := MaxMin([]float64{1}, [][]int{{9}}, map[int]float64{1: 10}); err == nil {
		t.Error("unknown link should fail")
	}
	if _, err := MaxMin([]float64{1}, [][]int{{1}}, map[int]float64{1: -5}); err == nil {
		t.Error("negative capacity should fail")
	}
	if rates, err := MaxMin(nil, nil, nil); err != nil || len(rates) != 0 {
		t.Error("empty input should succeed with no rates")
	}
}

// Property: max-min allocations are feasible (no link over capacity, no
// flow over demand) and leave no link with unfrozen headroom wasted: every
// flow is either demand-limited or crosses a saturated link.
func TestMaxMinFeasibleAndEfficient(t *testing.T) {
	f := func(seed [12]uint8) bool {
		// Build a small random instance from the seed: 4 links, 6 flows.
		caps := map[int]float64{}
		for l := 0; l < 4; l++ {
			caps[l] = float64(10 + int(seed[l])%90)
		}
		demands := make([]float64, 6)
		paths := make([][]int, 6)
		for i := 0; i < 6; i++ {
			demands[i] = float64(1 + int(seed[i+4])%60)
			a := int(seed[(i+7)%12]) % 4
			b := (a + 1 + int(seed[(i+3)%12])%3) % 4
			paths[i] = []int{a, b}
		}
		rates, err := MaxMin(demands, paths, caps)
		if err != nil {
			return false
		}
		used := map[int]float64{}
		for i, r := range rates {
			if r < -1e-9 || r > demands[i]+1e-9 {
				return false
			}
			for _, l := range paths[i] {
				used[l] += r
			}
		}
		for l, u := range used {
			if u > caps[l]+1e-6 {
				return false
			}
		}
		// Efficiency: every flow is demand-limited or bottlenecked.
		for i, r := range rates {
			if math.Abs(r-demands[i]) < 1e-6 {
				continue
			}
			bottlenecked := false
			for _, l := range paths[i] {
				if used[l] > caps[l]-1e-6 {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
