package netsim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// denseOf converts a map-keyed instance with contiguous link IDs 0..n-1
// into a dense capacity slice.
func denseOf(t *testing.T, capacity map[int]float64) []float64 {
	t.Helper()
	out := make([]float64, len(capacity))
	for l, c := range capacity {
		if l < 0 || l >= len(out) {
			t.Fatalf("non-contiguous link id %d", l)
		}
		out[l] = c
	}
	return out
}

// solverCases are shared dense-vs-reference instances covering the solver
// phases: demand-limited freezes, bottleneck freezes, dead links, and
// multi-round progressive filling.
var solverCases = []struct {
	name     string
	demands  []float64
	paths    [][]int
	capacity map[int]float64
}{
	{"uncontended", []float64{10, 20}, [][]int{{0}, {1}}, map[int]float64{0: 100, 1: 100}},
	{"shared-bottleneck", []float64{100, 100, 100}, [][]int{{0}, {0}, {0}}, map[int]float64{0: 90}},
	{"demand-limited-first", []float64{10, 90}, [][]int{{0}, {0}}, map[int]float64{0: 100}},
	{"two-rounds", []float64{100, 100, 100}, [][]int{{0, 1}, {0}, {1}}, map[int]float64{0: 60, 1: 150}},
	{"dead-link", []float64{50, 10}, [][]int{{0}, {1}}, map[int]float64{0: 0, 1: 100}},
	{"chain", []float64{30, 30, 30, 30}, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, map[int]float64{0: 40, 1: 80, 2: 25, 3: 100}},
	{"zero-demand", []float64{0, 10}, [][]int{{0}, {0}}, map[int]float64{0: 5}},
}

// TestSolverMatchesReference checks the dense solver against the retained
// map-based reference on hand-picked instances, via both the dense and the
// map-keyed entry points.
func TestSolverMatchesReference(t *testing.T) {
	for _, tc := range solverCases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := maxMinReference(tc.demands, tc.paths, tc.capacity)
			if err != nil {
				t.Fatal(err)
			}
			var s Solver
			dense, err := s.Solve(tc.demands, tc.paths, denseOf(t, tc.capacity))
			if err != nil {
				t.Fatal(err)
			}
			viaMap, err := MaxMin(tc.demands, tc.paths, tc.capacity)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(dense[i]-want[i]) > 1e-9 {
					t.Errorf("dense rate[%d] = %v, reference %v", i, dense[i], want[i])
				}
				if math.Abs(viaMap[i]-want[i]) > 1e-9 {
					t.Errorf("MaxMin rate[%d] = %v, reference %v", i, viaMap[i], want[i])
				}
			}
		})
	}
}

// TestSolverReuse runs disagreeing instances back-to-back through one
// solver: stale scratch from a larger instance must not leak into a
// smaller or differently-shaped one.
func TestSolverReuse(t *testing.T) {
	var s Solver
	for round := 0; round < 3; round++ {
		for _, tc := range solverCases {
			want, err := maxMinReference(tc.demands, tc.paths, tc.capacity)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Solve(tc.demands, tc.paths, denseOf(t, tc.capacity))
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Errorf("%s round %d: rate[%d] = %v, want %v", tc.name, round, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSolverErrors mirrors the reference validation on the dense entry.
func TestSolverErrors(t *testing.T) {
	var s Solver
	if _, err := s.Solve([]float64{1}, nil, nil); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := s.Solve([]float64{-1}, [][]int{{0}}, []float64{10}); err == nil {
		t.Error("negative demand should fail")
	}
	if _, err := s.Solve([]float64{1}, [][]int{{}}, []float64{10}); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := s.Solve([]float64{1}, [][]int{{3}}, []float64{10}); err == nil {
		t.Error("out-of-range link should fail")
	}
	if _, err := s.Solve([]float64{1}, [][]int{{0}}, []float64{-5}); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := s.SolveMap([]float64{1}, [][]int{{7}}, map[int]float64{1: 10}); err == nil {
		t.Error("unknown map link should fail")
	}
}

// TestSolverAllocFree: a warm solver's Solve path performs no heap
// allocations — the property the simulation hot loop depends on.
func TestSolverAllocFree(t *testing.T) {
	var s Solver
	tc := solverCases[5] // chain: multi-round, all phases
	caps := denseOf(t, tc.capacity)
	if _, err := s.Solve(tc.demands, tc.paths, caps); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Solve(tc.demands, tc.paths, caps); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm Solve allocates %.1f objects/op, want 0", allocs)
	}
}

// parallelFlows builds a staggered multi-iteration workload so the sweep
// produces many intervals with varying active sets.
func parallelFlows(t *testing.T, top *fattree.Topology) []traffic.Flow {
	t.Helper()
	job := traffic.Job{ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.1,
		Rate: 50 * units.Gbps, Pattern: traffic.Ring}
	flows, err := job.Flows(3)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	// Staggered extras crossing iteration boundaries.
	for i := 0; i < 8; i++ {
		flows = append(flows, traffic.Flow{
			Src: hosts[i], Dst: hosts[len(hosts)-1-i], Demand: 30 * units.Gbps,
			Start: units.Seconds(float64(i) * 0.17), End: units.Seconds(1.1 + float64(i)*0.31),
		})
	}
	return flows
}

// TestRunParallelByteIdentical: RunParallel must reproduce Run bit-for-bit
// at any worker count — same rates, delivered bits, and traces. JSON is
// the byte-level comparator: identical bytes require identical float bits.
func TestRunParallelByteIdentical(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	flows := parallelFlows(t, top)
	serial, err := New(top).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		par, err := New(top).RunParallel(flows, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d output differs from serial Run", workers)
		}
	}
}

// TestPathCacheReuse: repeated Runs on one Sim hit the path cache and the
// outputs stay identical to a fresh Sim's.
func TestPathCacheReuse(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	flows := parallelFlows(t, top)
	s := New(top)
	first, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.pathCache) == 0 {
		t.Fatal("path cache not populated")
	}
	second, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Error("cached-path rerun diverged from first run")
	}
}
