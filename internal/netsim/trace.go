package netsim

import (
	"fmt"

	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// Segment is a span of constant rate on a link or through a switch.
type Segment struct {
	Start, End units.Seconds
	Rate       units.Bandwidth
}

// Duration returns the segment length.
func (s Segment) Duration() units.Seconds { return s.End - s.Start }

// Trace is a contiguous, time-ordered sequence of segments.
type Trace []Segment

// append adds a span, merging with the previous segment when the rate is
// unchanged (keeps traces compact over long idle periods).
func (t Trace) append(start, end units.Seconds, rate units.Bandwidth) Trace {
	if end <= start {
		return t
	}
	if n := len(t); n > 0 && t[n-1].End == start && t[n-1].Rate == rate {
		t[n-1].End = end
		return t
	}
	return append(t, Segment{Start: start, End: end, Rate: rate})
}

// At returns the rate at time x (0 outside the trace).
func (t Trace) At(x units.Seconds) units.Bandwidth {
	for _, s := range t {
		if x >= s.Start && x < s.End {
			return s.Rate
		}
	}
	return 0
}

// Duration returns the covered time span.
func (t Trace) Duration() units.Seconds {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].End - t[0].Start
}

// MeanRate returns the time-weighted average rate.
func (t Trace) MeanRate() units.Bandwidth {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	var acc float64
	for _, s := range t {
		acc += float64(s.Rate) * float64(s.Duration())
	}
	return units.Bandwidth(acc / float64(d))
}

// PeakRate returns the maximum rate.
func (t Trace) PeakRate() units.Bandwidth {
	var p units.Bandwidth
	for _, s := range t {
		if s.Rate > p {
			p = s.Rate
		}
	}
	return p
}

// BusyTime returns how long the rate was non-zero.
func (t Trace) BusyTime() units.Seconds {
	var d units.Seconds
	for _, s := range t {
		if s.Rate > 0 {
			d += s.Duration()
		}
	}
	return d
}

// Utilization returns the mean rate over the capacity, in [0,1] when the
// trace respects the capacity.
func (t Trace) Utilization(capacity units.Bandwidth) float64 {
	if capacity <= 0 {
		return 0
	}
	return float64(t.MeanRate()) / float64(capacity)
}

// Validate checks the trace is time-ordered, gap-free, and non-negative.
func (t Trace) Validate() error {
	for i, s := range t {
		if s.End <= s.Start {
			return fmt.Errorf("netsim: segment %d empty or reversed [%v,%v]", i, s.Start, s.End)
		}
		if s.Rate < 0 {
			return fmt.Errorf("netsim: segment %d negative rate %v", i, s.Rate)
		}
		if i > 0 && t[i-1].End != s.Start {
			return fmt.Errorf("netsim: gap between segment %d and %d (%v != %v)", i-1, i, t[i-1].End, s.Start)
		}
	}
	return nil
}

// PowerLaw maps a device's instantaneous utilization to power; the §4
// mechanisms provide richer stateful models, while these two cover the
// baseline hardware behaviors.
type PowerLaw int

const (
	// TwoState draws max power at any non-zero utilization and idle power
	// otherwise (the paper's §2.3 assumption).
	TwoState PowerLaw = iota
	// Linear ramps between idle and max with utilization (an idealized
	// fully rate-adaptive device).
	Linear
)

// Energy integrates a device power model over a utilization trace.
// capacity scales the rate into a utilization for the Linear law. The
// per-segment rule is segmentPower, shared with SegmentEnergy so the
// co-sim echo model reproduces these energies bit-for-bit.
func (t Trace) Energy(m power.Model, capacity units.Bandwidth, law PowerLaw) (units.Energy, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	var e units.Energy
	for _, s := range t {
		p, err := segmentPower(m, capacity, law, s.Rate)
		if err != nil {
			return 0, err
		}
		e += units.EnergyOver(p, s.Duration())
	}
	return e, nil
}

var errLinearNeedsCapacity = fmt.Errorf("netsim: linear law needs positive capacity")

func errUnknownPowerLaw(law PowerLaw) error {
	return fmt.Errorf("netsim: unknown power law %d", law)
}
