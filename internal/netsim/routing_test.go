package netsim

import (
	"testing"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// busySwitches counts switches that carried any traffic.
func busySwitches(top *fattree.Topology, res *Result) int {
	n := 0
	for _, sw := range top.SwitchIDs() {
		if res.SwitchTrace[sw].MeanRate() > 0 {
			n++
		}
	}
	return n
}

// crossPodFlows builds light flows between many cross-pod pairs, giving
// ECMP plenty of core choices to spread over.
func crossPodFlows(t *testing.T, top *fattree.Topology) []traffic.Flow {
	t.Helper()
	hosts := top.Hosts()
	var flows []traffic.Flow
	for i := 0; i < len(hosts); i++ {
		for j := range hosts {
			if top.Nodes[hosts[i]].Pod == top.Nodes[hosts[j]].Pod {
				continue
			}
			// Light enough that even full concentration stays uncontended
			// (128 flows x 100 Mbps = 12.8 G << any 100 G link).
			flows = append(flows, traffic.Flow{
				Src: hosts[i], Dst: hosts[j],
				Demand: 100 * units.Mbps, Start: 0, End: 1,
			})
			break
		}
	}
	return flows
}

// TestConcentrateRoutingUsesFewerSwitches: the §4.2 routing policy touches
// no more switches than hash ECMP, freeing the rest to power off.
func TestConcentrateRoutingUsesFewerSwitches(t *testing.T) {
	top, err := fattree.BuildThreeTier(8, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	flows := crossPodFlows(t, top)

	ecmp := New(top)
	eRes, err := ecmp.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	conc := New(top)
	conc.Routing = ConcentrateRouting
	cRes, err := conc.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	eBusy := busySwitches(top, eRes)
	cBusy := busySwitches(top, cRes)
	if cBusy >= eBusy {
		t.Errorf("concentrate used %d switches, ECMP %d — expected fewer", cBusy, eBusy)
	}
	// Same work delivered: light flows are uncontended either way.
	var eBits, cBits float64
	for i := range eRes.Flows {
		eBits += eRes.Flows[i].DeliveredBits
		cBits += cRes.Flows[i].DeliveredBits
	}
	if eBits != cBits {
		t.Errorf("delivered bits differ: %v vs %v", eBits, cBits)
	}
	// And the energy with off-switches sleeping is lower under
	// concentration.
	eEnergy := sleepingEnergy(t, ecmp, eRes)
	cEnergy := sleepingEnergy(t, conc, cRes)
	if cEnergy >= eEnergy {
		t.Errorf("concentrate energy %v should beat ECMP %v", cEnergy, eEnergy)
	}
}

// sleepingEnergy sums two-state switch energy counting only busy switches.
func sleepingEnergy(t *testing.T, s *Sim, res *Result) float64 {
	t.Helper()
	var total float64
	rep, err := s.Energy(res, 0.10, TwoState)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	for _, sw := range s.Top.SwitchIDs() {
		tr := res.SwitchTrace[sw]
		if tr.MeanRate() == 0 {
			continue
		}
		// 675 W idle / 750 W busy, over the trace.
		for _, seg := range tr {
			p := 675.0
			if seg.Rate > 0 {
				p = 750.0
			}
			total += p * float64(seg.Duration())
		}
	}
	return total
}

// TestConcentrateRoutingDeterministic: two runs pick identical paths.
func TestConcentrateRoutingDeterministic(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	flows := crossPodFlows(t, top)
	r1, err := func() (*Result, error) { s := New(top); s.Routing = ConcentrateRouting; return s.Run(flows) }()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := func() (*Result, error) { s := New(top); s.Routing = ConcentrateRouting; return s.Run(flows) }()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Flows {
		for j := range r1.Flows[i].Path {
			if r1.Flows[i].Path[j] != r2.Flows[i].Path[j] {
				t.Fatal("concentrate routing not deterministic")
			}
		}
	}
}

// TestConcentrateStateResetBetweenRuns: a second Run starts fresh.
func TestConcentrateStateResetBetweenRuns(t *testing.T) {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := New(top)
	s.Routing = ConcentrateRouting
	flows := crossPodFlows(t, top)
	r1, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if busySwitches(top, r1) != busySwitches(top, r2) {
		t.Error("second run saw stale concentration state")
	}
}

func TestRoutingString(t *testing.T) {
	if HashECMP.String() != "ecmp" || ConcentrateRouting.String() != "concentrate" {
		t.Error("routing names broken")
	}
	if Routing(9).String() != "Routing(9)" {
		t.Error("unknown routing formatting broken")
	}
}
