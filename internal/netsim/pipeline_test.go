package netsim

import (
	"testing"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func smallASIC() asic.Config {
	return asic.Config{
		Ports: 8, Pipelines: 4, MemoryBanks: 4,
		Max: device.SwitchMaxPower, Shares: asic.DefaultShares(),
		PipelineStaticFraction: 0.3,
	}
}

func runRing(t *testing.T) (*Sim, *Result, *fattree.Topology) {
	t.Helper()
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := New(top)
	job := traffic.Job{ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.2,
		Rate: 40 * units.Gbps, Pattern: traffic.Ring}
	flows, err := job.Flows(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	return s, res, top
}

func TestPipelineUtilizationShape(t *testing.T) {
	s, res, top := runRing(t)
	sw := top.SwitchIDs()[0]
	times, utils, err := s.PipelineUtilization(res, sw, smallASIC(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(utils) != 4 {
		t.Fatalf("pipelines = %d, want 4", len(utils))
	}
	for p := range utils {
		if len(utils[p]) != len(times) {
			t.Fatalf("row %d length %d != %d", p, len(utils[p]), len(times))
		}
		for i, u := range utils[p] {
			if u < 0 || u > 1 {
				t.Fatalf("utilization[%d][%d] = %v outside [0,1]", p, i, u)
			}
		}
	}
	// Times are uniform and start at 0.
	if times[0] != 0 || times[1]-times[0] != 0.1 {
		t.Errorf("times malformed: %v...", times[:2])
	}
}

func TestPipelineUtilizationSeesTraffic(t *testing.T) {
	s, res, top := runRing(t)
	// A switch with traffic yields non-zero utilization somewhere.
	for _, sw := range top.SwitchIDs() {
		if res.SwitchTrace[sw].MeanRate() == 0 {
			continue
		}
		_, utils, err := s.PipelineUtilization(res, sw, smallASIC(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		var peak float64
		for _, row := range utils {
			for _, u := range row {
				if u > peak {
					peak = u
				}
			}
		}
		if peak == 0 {
			t.Errorf("switch %d carried traffic but projected utilization is zero", sw)
		}
		return
	}
	t.Fatal("no busy switch found")
}

func TestPipelineUtilizationErrors(t *testing.T) {
	s, res, top := runRing(t)
	sw := top.SwitchIDs()[0]
	if _, _, err := s.PipelineUtilization(nil, sw, smallASIC(), 0.1); err == nil {
		t.Error("nil result accepted")
	}
	if _, _, err := s.PipelineUtilization(res, sw, smallASIC(), 0); err == nil {
		t.Error("zero step accepted")
	}
	host := top.Hosts()[0]
	if _, _, err := s.PipelineUtilization(res, host, smallASIC(), 0.1); err == nil {
		t.Error("host node accepted")
	}
	if _, _, err := s.PipelineUtilization(res, 10_000, smallASIC(), 0.1); err == nil {
		t.Error("out-of-range node accepted")
	}
	// An ASIC with fewer ports than the switch has links must fail.
	tiny := smallASIC()
	tiny.Ports, tiny.Pipelines = 2, 2
	if _, _, err := s.PipelineUtilization(res, sw, tiny, 0.1); err == nil {
		t.Error("undersized ASIC accepted")
	}
	bad := smallASIC()
	bad.Max = 0
	if _, _, err := s.PipelineUtilization(res, sw, bad, 0.1); err == nil {
		t.Error("invalid ASIC config accepted")
	}
}

func TestSwitchDemand(t *testing.T) {
	s, res, top := runRing(t)
	var sw int = -1
	for _, id := range top.SwitchIDs() {
		if res.SwitchTrace[id].MeanRate() > 0 {
			sw = id
			break
		}
	}
	if sw < 0 {
		t.Fatal("no busy switch")
	}
	times, demand, err := s.SwitchDemand(res, sw, 400*units.Gbps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(demand) || len(times) < 2 {
		t.Fatalf("shape: %d/%d", len(times), len(demand))
	}
	var peak float64
	for _, d := range demand {
		if d < 0 || d > 1 {
			t.Fatalf("demand %v outside [0,1]", d)
		}
		if d > peak {
			peak = d
		}
	}
	if peak == 0 {
		t.Error("busy switch projected zero demand")
	}
}

func TestSwitchDemandErrors(t *testing.T) {
	s, res, top := runRing(t)
	sw := top.SwitchIDs()[0]
	if _, _, err := s.SwitchDemand(nil, sw, 400*units.Gbps, 0.1); err == nil {
		t.Error("nil result accepted")
	}
	if _, _, err := s.SwitchDemand(res, sw, 0, 0.1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, _, err := s.SwitchDemand(res, sw, 400*units.Gbps, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, _, err := s.SwitchDemand(res, 10_000, 400*units.Gbps, 0.1); err == nil {
		t.Error("unknown switch accepted")
	}
}
