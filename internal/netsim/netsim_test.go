package netsim

import (
	"math"
	"testing"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/power"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func smallTopo(t *testing.T) *fattree.Topology {
	t.Helper()
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestRunSingleFlow(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 50 * units.Gbps, Start: 1, End: 3}
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 3 {
		t.Errorf("horizon = %v, want 3", res.Horizon)
	}
	st := res.Flows[0]
	// Uncontended flow gets its full demand.
	if math.Abs(float64(st.MeanRate-fl.Demand)) > 1 {
		t.Errorf("mean rate = %v, want %v", st.MeanRate, fl.Demand)
	}
	if math.Abs(st.DeliveredBits-float64(fl.Demand)*2) > 1 {
		t.Errorf("delivered = %v, want %v", st.DeliveredBits, float64(fl.Demand)*2)
	}
	// Cross-pod path in a 3-tier tree: 6 links.
	if len(st.Path) != 6 {
		t.Errorf("path length = %d, want 6", len(st.Path))
	}
	// Every link on the path carries the flow during [1,3) and nothing else.
	for _, lid := range st.Path {
		tr := res.LinkTrace[lid]
		if err := tr.Validate(); err != nil {
			t.Fatalf("link %d trace: %v", lid, err)
		}
		if got := tr.At(2); math.Abs(float64(got-fl.Demand)) > 1 {
			t.Errorf("link %d rate at t=2: %v, want %v", lid, got, fl.Demand)
		}
		if got := tr.At(0.5); got != 0 {
			t.Errorf("link %d rate at t=0.5: %v, want 0", lid, got)
		}
	}
	// Off-path links carry nothing.
	onPath := map[int]bool{}
	for _, lid := range st.Path {
		onPath[lid] = true
	}
	for id, tr := range res.LinkTrace {
		if !onPath[id] && tr.MeanRate() != 0 {
			t.Errorf("off-path link %d carries %v", id, tr.MeanRate())
		}
	}
}

func TestRunContention(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	// Two hosts under the same edge both send to a third host under that
	// edge: the destination's 100G host link is the bottleneck; each flow
	// gets 50G despite demanding 100G.
	var edgeHosts []int
	e0, _ := top.EdgeOf(hosts[0])
	for _, h := range hosts {
		if e, _ := top.EdgeOf(h); e == e0 {
			edgeHosts = append(edgeHosts, h)
		}
	}
	if len(edgeHosts) < 2 {
		t.Fatal("need 2 hosts under one edge")
	}
	// In a k=4 tree each edge has 2 hosts; use a cross-edge destination
	// shared bottleneck instead: both send to the same destination host.
	dst := hosts[len(hosts)-1]
	flows := []traffic.Flow{
		{Src: edgeHosts[0], Dst: dst, Demand: 100 * units.Gbps, Start: 0, End: 10},
		{Src: edgeHosts[1], Dst: dst, Demand: 100 * units.Gbps, Start: 0, End: 10},
	}
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Flows[0].MeanRate + res.Flows[1].MeanRate)
	if math.Abs(total-float64(100*units.Gbps)) > 1e-3*float64(units.Gbps) {
		t.Errorf("combined rate = %v Gbps, want 100 (dst link bottleneck)", total/1e9)
	}
	// The destination host link is saturated.
	de, _ := top.EdgeOf(dst)
	l, _ := top.LinkBetween(dst, de)
	if got := res.LinkTrace[l.ID].At(5); math.Abs(float64(got)-100e9) > 1e6 {
		t.Errorf("dst link rate = %v, want 100G", got)
	}
}

func TestRunFlowSequencing(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	// Two back-to-back flows on the same pair: trace shows both windows.
	flows := []traffic.Flow{
		{Src: hosts[0], Dst: hosts[3], Demand: 10 * units.Gbps, Start: 0, End: 1},
		{Src: hosts[0], Dst: hosts[3], Demand: 20 * units.Gbps, Start: 2, End: 3},
	}
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	lid := res.Flows[0].Path[0]
	tr := res.LinkTrace[lid]
	if got := tr.At(0.5); math.Abs(float64(got)-10e9) > 1 {
		t.Errorf("first window rate = %v", got)
	}
	if got := tr.At(1.5); got != 0 {
		t.Errorf("gap rate = %v, want 0", got)
	}
	if got := tr.At(2.5); math.Abs(float64(got)-20e9) > 1 {
		t.Errorf("second window rate = %v", got)
	}
	if bt := tr.BusyTime(); math.Abs(float64(bt)-2) > 1e-9 {
		t.Errorf("busy time = %v, want 2", bt)
	}
}

func TestRunSwitchTraces(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 40 * units.Gbps, Start: 0, End: 1}
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod: 5 switches on the path (edge, agg, core, agg, edge).
	busy := 0
	for _, sw := range top.SwitchIDs() {
		if res.SwitchTrace[sw].MeanRate() > 0 {
			busy++
		}
	}
	if busy != 5 {
		t.Errorf("busy switches = %d, want 5", busy)
	}
}

func TestRunValidation(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	if _, err := s.Run(nil); err == nil {
		t.Error("no flows should fail")
	}
	if _, err := s.Run([]traffic.Flow{{Src: hosts[0], Dst: hosts[1], Demand: 1, Start: 5, End: 5}}); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := s.Run([]traffic.Flow{{Src: hosts[0], Dst: hosts[1], Demand: 0, Start: 0, End: 1}}); err == nil {
		t.Error("zero demand should fail")
	}
	if _, err := s.Run([]traffic.Flow{{Src: hosts[0], Dst: hosts[0], Demand: 1, Start: 0, End: 1}}); err == nil {
		t.Error("self flow should fail")
	}
	bad := New(nil)
	if _, err := bad.Run([]traffic.Flow{{Src: 0, Dst: 1, Demand: 1, Start: 0, End: 1}}); err == nil {
		t.Error("nil topology should fail")
	}
}

func TestECMPDeterminismAndSpread(t *testing.T) {
	top := smallTopo(t)
	s1 := New(top)
	s2 := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 1 * units.Gbps, Start: 0, End: 1}
	r1, err := s1.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Flows[0].Path {
		if r1.Flows[0].Path[i] != r2.Flows[0].Path[i] {
			t.Fatal("same seed produced different paths")
		}
	}
	// Different seeds eventually pick different paths (4 ECMP choices).
	base := r1.Flows[0].Path
	varied := false
	for seed := uint64(1); seed < 16 && !varied; seed++ {
		s := New(top)
		s.ECMPSeed = seed
		r, err := s.Run([]traffic.Flow{fl})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if r.Flows[0].Path[i] != base[i] {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Error("ECMP seed never changed the path across 16 seeds")
	}
}

func TestCapacityOverride(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 80 * units.Gbps, Start: 0, End: 1}
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	// Throttle the first path link to 10G and re-run: flow capped at 10G.
	s.Capacity = map[int]units.Bandwidth{res.Flows[0].Path[1]: 10 * units.Gbps}
	res2, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Flows[0].MeanRate; math.Abs(float64(got)-10e9) > 1 {
		t.Errorf("throttled rate = %v, want 10G", got)
	}
}

func TestEnergyReportTwoStateVsLinear(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	// Light load for half the horizon.
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 10 * units.Gbps, Start: 0, End: 5}
	end := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 1 * units.Gbps, Start: 9.999, End: 10}
	res, err := s.Run([]traffic.Flow{fl, end})
	if err != nil {
		t.Fatal(err)
	}
	two, err := s.Energy(res, 0.10, TwoState)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := s.Energy(res, 0.10, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if two.Total() <= 0 || lin.Total() <= 0 {
		t.Fatal("energies must be positive")
	}
	// Linear (rate-adaptive) never burns more than two-state at light load.
	if lin.Total() > two.Total() {
		t.Errorf("linear energy %v exceeds two-state %v", lin.Total(), two.Total())
	}
	if two.Horizon != 10 {
		t.Errorf("horizon = %v, want 10", two.Horizon)
	}
	// Higher proportionality strictly reduces energy (idle power falls).
	better, err := s.Energy(res, 0.90, TwoState)
	if err != nil {
		t.Fatal(err)
	}
	if better.Total() >= two.Total() {
		t.Errorf("90%% prop energy %v should be below 10%% prop %v", better.Total(), two.Total())
	}
	if _, err := s.Energy(res, 1.5, TwoState); err == nil {
		t.Error("invalid proportionality should fail")
	}
}

// TestEnergyConservation: total switch energy in a fully idle network equals
// idle power x switches x horizon.
func TestEnergyIdleNetwork(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	// One tiny flow so the run is valid, then measure a proportionality-1
	// network: idle energy must be ~0 outside the flow window.
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[1], Demand: 1 * units.Gbps, Start: 0, End: 1}
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Energy(res, 1.0, TwoState)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 2 switches on the same-edge path draw power, for 1 s each.
	m, _ := power.NewModel(750*units.Watt, 1.0)
	_ = m
	wantMax := 2 * 750.0 * 1.0 // at most two switches busy 1s... same-edge path crosses 1 switch
	if rep.SwitchEnergy.Joules() > wantMax+1 {
		t.Errorf("switch energy = %v J, want <= %v", rep.SwitchEnergy.Joules(), wantMax)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{}
	tr = tr.append(0, 1, 10)
	tr = tr.append(1, 2, 10) // merges
	tr = tr.append(2, 3, 20)
	tr = tr.append(3, 3, 99) // empty span ignored
	if len(tr) != 2 {
		t.Fatalf("segments = %d, want 2 (merged)", len(tr))
	}
	if tr.Duration() != 3 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if got := tr.MeanRate(); math.Abs(float64(got)-(10*2+20)/3.0) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if tr.PeakRate() != 20 {
		t.Errorf("peak = %v", tr.PeakRate())
	}
	if tr.At(2.5) != 20 || tr.At(99) != 0 {
		t.Error("At broken")
	}
	if got := tr.Utilization(40); math.Abs(got-float64(tr.MeanRate())/40) > 1e-12 {
		t.Errorf("utilization = %v", got)
	}
	if (Trace{}).MeanRate() != 0 || (Trace{}).Utilization(0) != 0 {
		t.Error("empty trace should be zero")
	}
	bad := Trace{{Start: 0, End: 1, Rate: 1}, {Start: 2, End: 3, Rate: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("gapped trace should fail validation")
	}
	rev := Trace{{Start: 1, End: 0, Rate: 1}}
	if err := rev.Validate(); err == nil {
		t.Error("reversed segment should fail validation")
	}
	neg := Trace{{Start: 0, End: 1, Rate: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative rate should fail validation")
	}
}

func TestTraceEnergyLaws(t *testing.T) {
	m, _ := power.NewModel(100*units.Watt, 0.5) // idle 50
	tr := Trace{{Start: 0, End: 1, Rate: 0}, {Start: 1, End: 2, Rate: 50}}
	e, err := tr.Energy(m, 100, TwoState)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Joules()-150) > 1e-9 { // 50 idle + 100 busy
		t.Errorf("two-state energy = %v, want 150", e.Joules())
	}
	e, err = tr.Energy(m, 100, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Joules()-125) > 1e-9 { // 50 + (50+0.5*50)
		t.Errorf("linear energy = %v, want 125", e.Joules())
	}
	if _, err := tr.Energy(m, 0, Linear); err == nil {
		t.Error("linear law without capacity should fail")
	}
	if _, err := tr.Energy(m, 100, PowerLaw(9)); err == nil {
		t.Error("unknown law should fail")
	}
	bad := Trace{{Start: 1, End: 0, Rate: 1}}
	if _, err := bad.Energy(m, 100, TwoState); err == nil {
		t.Error("invalid trace should fail energy")
	}
}
