package netsim

import (
	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// HopLatency is the fixed per-hop forwarding delay charged by the
// in-process transfer-latency model: one switch traversal's worth of
// serialization + pipeline delay. External co-sim models are free to
// replace the whole formula.
const HopLatency units.Seconds = 600e-9

// LatencyRequest describes one completed transfer for a latency model:
// the flow endpoints, the hop count of the chosen start-epoch path, the
// bits actually delivered, and the tightest base link capacity along that
// path. Fields are primitives so the request serializes canonically for
// the co-sim wire protocol and cassettes.
type LatencyRequest struct {
	Src, Dst      int
	Hops          int
	Bits          float64
	BottleneckBps float64
}

// PowerRequest describes one device's utilization trace for a power
// model: which device class and ID, the two-state model parameters, the
// power law, and the trace itself. The co-sim layer flattens Trace into
// explicit (duration, rate) pairs so an external model can fold energy in
// exactly the order Trace.Energy does.
type PowerRequest struct {
	// Device is "switch" or "link".
	Device          string
	ID              int
	Max             units.Power
	Proportionality float64
	Law             PowerLaw
	Capacity        units.Bandwidth
	Trace           Trace
}

// Models lets external co-simulation models replace the in-process
// latency and power formulas. Either hook may be nil. A hook returning an
// error fails closed: the in-process formula is used for that call and
// the run continues (the co-sim binding counts the fallback).
type Models struct {
	Latency func(LatencyRequest) (units.Seconds, error)
	Power   func(PowerRequest) (units.Energy, error)
}

// TransferLatency is the in-process transfer-latency formula: per-hop
// forwarding delay plus serialization of the delivered bits at the path's
// bottleneck capacity. It is exported so the co-sim echo stub reuses the
// exact same operations in the same order, keeping echo-mode output
// bit-identical to the in-process model. Non-positive bits or bottleneck
// (a fully stalled or disabled path) charge hop delay only.
func TransferLatency(hops int, bits, bottleneckBps float64) units.Seconds {
	lat := units.Seconds(float64(hops) * float64(HopLatency))
	if bits > 0 && bottleneckBps > 0 {
		lat += units.Seconds(bits / bottleneckBps)
	}
	return lat
}

// SegmentEnergy folds a device power model over explicit
// (duration, rate) pairs — the same per-segment operations, in the same
// order, as Trace.Energy. It is the shared kernel between the in-process
// power model and the co-sim echo stub, so echo-mode energies are
// bit-identical to Trace.Energy over the equivalent trace.
func SegmentEnergy(m power.Model, capacity units.Bandwidth, law PowerLaw, segs [][2]float64) (units.Energy, error) {
	var e units.Energy
	for _, s := range segs {
		p, err := segmentPower(m, capacity, law, units.Bandwidth(s[1]))
		if err != nil {
			return 0, err
		}
		e += units.EnergyOver(p, units.Seconds(s[0]))
	}
	return e, nil
}

// segmentPower is the per-segment power rule shared by Trace.Energy and
// SegmentEnergy.
func segmentPower(m power.Model, capacity units.Bandwidth, law PowerLaw, rate units.Bandwidth) (units.Power, error) {
	switch law {
	case TwoState:
		if rate > 0 {
			return m.Max, nil
		}
		return m.Idle(), nil
	case Linear:
		if capacity <= 0 {
			return 0, errLinearNeedsCapacity
		}
		return m.AtLinear(float64(rate) / float64(capacity)), nil
	default:
		return 0, errUnknownPowerLaw(law)
	}
}
