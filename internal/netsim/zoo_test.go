package netsim_test

import (
	"reflect"
	"testing"

	"netpowerprop/internal/fault"
	"netpowerprop/internal/netsim"
	"netpowerprop/internal/topo"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// TestZooRunParallelIdentical runs an all-to-all job on zoo topologies —
// which exercise the custom path enumerator instead of the native Clos
// walk — and checks RunParallel output equals serial Run output, with and
// without an injected fault trace.
func TestZooRunParallelIdentical(t *testing.T) {
	for _, name := range []string{"dragonfly", "torus3d", "railopt"} {
		top, _, err := topo.Build(name, topo.Spec{Hosts: 16, LinkSpeed: 100 * units.Gbps})
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		job := traffic.Job{
			ID: 1, Hosts: top.Hosts(), Period: 1, CommRatio: 0.5,
			Rate: 10 * units.Gbps, Pattern: traffic.AllToAll,
		}
		flows, err := job.Flows(2)
		if err != nil {
			t.Fatal(err)
		}
		var optical []int
		for _, l := range top.Links {
			if l.Optical {
				optical = append(optical, l.ID)
			}
		}
		trace, err := fault.Generate(fault.GenConfig{
			Horizon: 2, Links: optical,
			Flaps: 4, MTTR: 0.3, PermanentFailures: 1,
			WakeStuckProb: 0.25, WakeStuckExtra: 0.3,
		}, 7)
		if err != nil {
			t.Fatalf("%s: fault.Generate: %v", name, err)
		}
		for _, tc := range []struct {
			label string
			tr    *fault.Trace
		}{
			{"clean", nil},
			{"faulted", trace},
		} {
			serial := netsim.New(top)
			serial.Routing = netsim.ConcentrateRouting
			serial.Faults = tc.tr
			want, err := serial.Run(flows)
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", name, tc.label, err)
			}
			par := netsim.New(top)
			par.Routing = netsim.ConcentrateRouting
			par.Faults = tc.tr
			got, err := par.RunParallel(flows, 4)
			if err != nil {
				t.Fatalf("%s/%s: RunParallel: %v", name, tc.label, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s/%s: RunParallel result differs from Run", name, tc.label)
			}
			if tc.tr != nil && want.Faults == nil {
				t.Fatalf("%s: faulted run reported no fault summary", name)
			}
		}
	}
}
