package netsim

import (
	"math"
	"reflect"
	"testing"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/fault"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// faultFlows builds a small all-pairs-ish workload over the topology.
func faultFlows(top *fattree.Topology, demand units.Bandwidth) []traffic.Flow {
	hosts := top.Hosts()
	var flows []traffic.Flow
	for i, src := range hosts {
		dst := hosts[(i+len(hosts)/2)%len(hosts)]
		flows = append(flows, traffic.Flow{Src: src, Dst: dst, Demand: demand, Start: 0, End: 4})
	}
	return flows
}

// A flow whose hashed ECMP path loses a link must reroute onto a surviving
// path and keep delivering; the dead link carries nothing during the outage.
func TestFaultRerouteAroundDeadLink(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 50 * units.Gbps, Start: 0, End: 4}

	clean, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	victim := clean.Flows[0].Path[2] // an inter-switch link on the chosen path

	tr := &fault.Trace{}
	tr.Flap(1, victim, 2) // victim dead during [1,3)
	s.Faults = tr
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Flows[0]
	if st.Downtime != 0 {
		t.Fatalf("flow stalled %v despite surviving ECMP paths", st.Downtime)
	}
	// Full delivery: the reroute keeps the flow at its demand.
	want := float64(fl.Demand) * 4
	if math.Abs(st.DeliveredBits-want) > 1 {
		t.Errorf("delivered = %v, want %v", st.DeliveredBits, want)
	}
	if got := res.LinkTrace[victim].At(2); got != 0 {
		t.Errorf("dead link carried %v at t=2", got)
	}
	if res.Faults == nil {
		t.Fatal("faulted run returned nil FaultReport")
	}
	if res.Faults.Events != 2 || res.Faults.Epochs != 3 {
		t.Errorf("report = %+v, want 2 events over 3 epochs", res.Faults)
	}
	if res.Faults.Reroutes == 0 {
		t.Error("report counted no reroutes")
	}
	if res.Faults.StalledFlows != 0 {
		t.Errorf("report counted %d stalled flows, want 0", res.Faults.StalledFlows)
	}
}

// Killing a host's access link leaves the flow no path at all: it stalls,
// accumulates downtime, and resumes on recovery.
func TestFaultStallAndRecovery(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	hosts := top.Hosts()
	fl := traffic.Flow{Src: hosts[0], Dst: hosts[len(hosts)-1], Demand: 50 * units.Gbps, Start: 0, End: 4}
	access := top.LinksOf(hosts[0])
	if len(access) != 1 {
		t.Fatalf("host has %d access links, want 1", len(access))
	}

	tr := &fault.Trace{}
	tr.Flap(1, access[0], 2) // no path during [1,3)
	s.Faults = tr
	res, err := s.Run([]traffic.Flow{fl})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Flows[0]
	if math.Abs(float64(st.Downtime)-2) > 1e-12 {
		t.Errorf("downtime = %v, want 2", st.Downtime)
	}
	// Delivery only over the 2 surviving seconds.
	want := float64(fl.Demand) * 2
	if math.Abs(st.DeliveredBits-want) > 1 {
		t.Errorf("delivered = %v, want %v", st.DeliveredBits, want)
	}
	if res.Faults.StalledFlows != 1 {
		t.Errorf("stalled flows = %d, want 1", res.Faults.StalledFlows)
	}
	if math.Abs(float64(res.Faults.StallSeconds)-2) > 1e-12 {
		t.Errorf("stall seconds = %v, want 2", res.Faults.StallSeconds)
	}
}

// A switch failure takes all incident links down: flows through it reroute,
// and the switch's trace shows zero rate during the outage.
func TestFaultSwitchFailure(t *testing.T) {
	top := smallTopo(t)
	s := New(top)
	flows := faultFlows(top, 20*units.Gbps)

	// Fail one core switch (a switch whose links are all optical and which
	// sits on cross-pod paths).
	core := -1
	for _, sw := range top.SwitchIDs() {
		links := top.LinksOf(sw)
		allOptical := true
		for _, l := range links {
			if !top.Links[l].Optical {
				allOptical = false
				break
			}
		}
		if allOptical {
			core = sw
			break
		}
	}
	if core < 0 {
		t.Fatal("no core switch found")
	}
	tr := &fault.Trace{}
	tr.SwitchDown(1, core)
	tr.SwitchUp(3, core)
	s.Faults = tr
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SwitchTrace[core].At(2); got != 0 {
		t.Errorf("failed switch carried %v at t=2", got)
	}
	for i, st := range res.Flows {
		if st.Downtime != 0 {
			t.Errorf("flow %d stalled %v; core failure should be routable-around", i, st.Downtime)
		}
	}
}

// Seeded fault scenarios must be bit-reproducible: the same generated trace
// yields identical results across repeated runs and across Run/RunParallel.
func TestFaultDeterminismSerialParallel(t *testing.T) {
	top := smallTopo(t)
	flows := faultFlows(top, 30*units.Gbps)
	var optical []int
	for _, l := range top.Links {
		if l.Optical {
			optical = append(optical, l.ID)
		}
	}
	cfg := fault.GenConfig{
		Horizon: 4, Links: optical, Flaps: 8, MTTR: 0.5,
		PermanentFailures: 1, WakeStuckProb: 0.5, WakeStuckExtra: 0.4,
	}
	run := func(workers int) *Result {
		t.Helper()
		trace, err := fault.Generate(cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		s := New(top)
		s.Faults = trace
		var res *Result
		if workers == 1 {
			res, err = s.Run(flows)
		} else {
			res, err = s.RunParallel(flows, workers)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.Faults == nil || serial.Faults.Events == 0 {
		t.Fatalf("generated trace produced no in-horizon events: %+v", serial.Faults)
	}
	if !reflect.DeepEqual(serial, run(1)) {
		t.Error("repeated serial runs differ for the same seed")
	}
	for _, w := range []int{2, 4, 7} {
		if !reflect.DeepEqual(serial, run(w)) {
			t.Errorf("RunParallel(%d) differs from Run", w)
		}
	}
}

// Path-cache invalidation: after a link fails and recovers, cached per-epoch
// alive filters must refresh, so post-recovery flow rates match a from-scratch
// fault-free simulation of the same span — and a Sim reused after a faulted
// run behaves identically to a fresh one.
func TestFaultPathCacheInvalidation(t *testing.T) {
	top := smallTopo(t)
	flows := faultFlows(top, 30*units.Gbps)

	s := New(top)
	clean, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	victim := clean.Flows[0].Path[2]
	tr := &fault.Trace{}
	tr.Flap(1, victim, 1) // dead during [1,2), recovered for [2,4)
	s.Faults = tr
	faulted, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	// After recovery the routing and rates must match the fault-free run:
	// every link's rate at t=3 agrees to 1e-9.
	for _, l := range top.Links {
		want := float64(clean.LinkTrace[l.ID].At(3))
		got := float64(faulted.LinkTrace[l.ID].At(3))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("link %d rate at t=3: %v, want %v (stale path cache?)", l.ID, got, want)
		}
	}
	// And during the outage the victim must be drained.
	if got := faulted.LinkTrace[victim].At(1.5); got != 0 {
		t.Errorf("victim link carried %v mid-outage", got)
	}

	// Reusing the Sim with faults cleared must reproduce the clean run
	// exactly (cached alive filters from the faulted run are stale).
	s.Faults = nil
	again, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, again) {
		t.Error("Sim reuse after a faulted run differs from the fresh clean run")
	}

	// A fresh Sim with the same trace agrees with the warm-cache faulted
	// run bit-for-bit.
	s2 := New(top)
	s2.Faults = tr
	fresh, err := s2.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulted, fresh) {
		t.Error("warm path cache changed faulted results")
	}
}

// An empty trace must leave results byte-identical to a nil one.
func TestFaultEmptyTraceIsNoop(t *testing.T) {
	top := smallTopo(t)
	flows := faultFlows(top, 30*units.Gbps)
	a := New(top)
	clean, err := a.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	b := New(top)
	b.Faults = &fault.Trace{}
	empty, err := b.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, empty) {
		t.Error("empty fault trace changed results")
	}
	if empty.Faults != nil {
		t.Error("empty trace produced a FaultReport")
	}
}

// Concentrate routing under faults: still deterministic, and gated (down at
// t<=0) switches stay off unless a failure forces traffic through... here we
// just check rerouting respects dead links under ConcentrateRouting too.
func TestFaultConcentrateRouting(t *testing.T) {
	top := smallTopo(t)
	flows := faultFlows(top, 20*units.Gbps)
	s := New(top)
	s.Routing = ConcentrateRouting
	clean, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	victim := clean.Flows[0].Path[2]
	tr := &fault.Trace{}
	tr.FailLink(0, victim) // dead for the whole run
	s.Faults = tr
	res, err := s.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LinkTrace[victim].At(2); got != 0 {
		t.Errorf("dead link carried %v under concentrate routing", got)
	}
	res2 := func() *Result {
		s2 := New(top)
		s2.Routing = ConcentrateRouting
		s2.Faults = tr
		r, err := s2.Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if !reflect.DeepEqual(res, res2) {
		t.Error("concentrate routing under faults is not deterministic")
	}
}

// Invalid fault traces surface as errors from Run, not corrupt results.
func TestFaultValidation(t *testing.T) {
	top := smallTopo(t)
	flows := faultFlows(top, 20*units.Gbps)
	s := New(top)
	bad := &fault.Trace{}
	bad.LinkDown(1, len(top.Links)+5)
	s.Faults = bad
	if _, err := s.Run(flows); err == nil {
		t.Error("out-of-range fault target accepted")
	}
}
