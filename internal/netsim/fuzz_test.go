package netsim

import (
	"math"
	"testing"
)

// FuzzMaxMin feeds arbitrary small instances to the fairness solver and
// checks the core feasibility invariants on every accepted input: no link
// over capacity, no flow over demand, no negative rates, and termination
// (implied by returning at all).
func FuzzMaxMin(f *testing.F) {
	f.Add([]byte{10, 20, 30, 1, 2, 3, 4, 5, 6}, uint8(3), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(4), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, nFlows, nLinks uint8) {
		flows := 1 + int(nFlows)%8
		links := 1 + int(nLinks)%6
		if len(raw) < flows*3+links {
			return
		}
		capacity := make(map[int]float64, links)
		for l := 0; l < links; l++ {
			capacity[l] = float64(raw[l]) // 0..255, zero-capacity allowed
		}
		demands := make([]float64, flows)
		paths := make([][]int, flows)
		for i := 0; i < flows; i++ {
			demands[i] = float64(raw[links+i*3])
			a := int(raw[links+i*3+1]) % links
			b := int(raw[links+i*3+2]) % links
			if a == b {
				paths[i] = []int{a}
			} else {
				paths[i] = []int{a, b}
			}
		}
		rates, err := MaxMin(demands, paths, capacity)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}
		used := map[int]float64{}
		for i, r := range rates {
			if r < -1e-9 {
				t.Fatalf("negative rate %v", r)
			}
			if r > demands[i]+1e-9 {
				t.Fatalf("flow %d rate %v exceeds demand %v", i, r, demands[i])
			}
			for _, l := range paths[i] {
				used[l] += r
			}
		}
		for l, u := range used {
			if u > capacity[l]+1e-6 {
				t.Fatalf("link %d used %v over capacity %v", l, u, capacity[l])
			}
		}
	})
}

// FuzzMaxMinDense is the differential oracle for the optimized solver:
// on every randomized instance, the dense Solver (both the slice-keyed
// and the map-keyed entry points) must match the retained map-based
// reference implementation's rate vector within 1e-9.
func FuzzMaxMinDense(f *testing.F) {
	f.Add([]byte{10, 20, 30, 1, 2, 3, 4, 5, 6}, uint8(3), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(4), uint8(4))
	f.Add([]byte{100, 100, 100, 50, 0, 1, 50, 1, 0, 7, 0, 1}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, nFlows, nLinks uint8) {
		flows := 1 + int(nFlows)%8
		links := 1 + int(nLinks)%6
		if len(raw) < flows*3+links {
			return
		}
		capacity := make(map[int]float64, links)
		dense := make([]float64, links)
		for l := 0; l < links; l++ {
			capacity[l] = float64(raw[l]) // 0..255, zero-capacity allowed
			dense[l] = float64(raw[l])
		}
		demands := make([]float64, flows)
		paths := make([][]int, flows)
		for i := 0; i < flows; i++ {
			demands[i] = float64(raw[links+i*3])
			a := int(raw[links+i*3+1]) % links
			b := int(raw[links+i*3+2]) % links
			if a == b {
				paths[i] = []int{a}
			} else {
				paths[i] = []int{a, b}
			}
		}
		want, err := maxMinReference(demands, paths, capacity)
		if err != nil {
			t.Fatalf("reference rejected valid instance: %v", err)
		}
		var s Solver
		got, err := s.Solve(demands, paths, dense)
		if err != nil {
			t.Fatalf("dense solver rejected valid instance: %v", err)
		}
		viaMap, err := MaxMin(demands, paths, capacity)
		if err != nil {
			t.Fatalf("MaxMin rejected valid instance: %v", err)
		}
		for i := range want {
			if diff := math.Abs(got[i] - want[i]); diff > 1e-9 {
				t.Fatalf("flow %d: dense %v vs reference %v (diff %v)\ndemands=%v paths=%v caps=%v",
					i, got[i], want[i], diff, demands, paths, capacity)
			}
			if diff := math.Abs(viaMap[i] - want[i]); diff > 1e-9 {
				t.Fatalf("flow %d: MaxMin %v vs reference %v (diff %v)\ndemands=%v paths=%v caps=%v",
					i, viaMap[i], want[i], diff, demands, paths, capacity)
			}
		}
	})
}
