package netsim

import (
	"fmt"
	"hash/fnv"
	"sort"

	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/power"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// Routing selects how flows pick among their ECMP paths.
type Routing int

const (
	// HashECMP spreads flows by 5-tuple hash — today's load balancing.
	HashECMP Routing = iota
	// ConcentrateRouting greedily picks the path that touches the fewest
	// switches not already carrying traffic, so unused switches can sleep
	// (§4.2's "concentrate the network traffic on as few devices as
	// possible" applied at the routing layer). Deterministic: flows are
	// routed in input order.
	ConcentrateRouting
)

// String names the routing mode.
func (r Routing) String() string {
	switch r {
	case HashECMP:
		return "ecmp"
	case ConcentrateRouting:
		return "concentrate"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Sim runs flow-level simulations on an explicit fat-tree topology.
type Sim struct {
	Top *fattree.Topology
	// ECMPSeed perturbs deterministic path selection, so repeated runs can
	// explore different ECMP placements reproducibly.
	ECMPSeed uint64
	// Routing selects the path-selection policy (default HashECMP).
	Routing Routing
	// Capacity overrides per-link capacity; absent links default to their
	// topology speed. Used by parking/OCS studies to disable links (0).
	Capacity map[int]units.Bandwidth

	// usedSwitches tracks switches already chosen by ConcentrateRouting
	// within one Run.
	usedSwitches map[int]bool
}

// New returns a simulator over a topology.
func New(top *fattree.Topology) *Sim {
	return &Sim{Top: top}
}

// FlowStat reports one flow's outcome.
type FlowStat struct {
	Flow traffic.Flow
	// Path is the chosen link-ID sequence.
	Path []int
	// DeliveredBits integrates the achieved rate over the flow lifetime.
	DeliveredBits float64
	// MeanRate is DeliveredBits / lifetime.
	MeanRate units.Bandwidth
}

// Result is a completed simulation: utilization traces per link and per
// switch, plus flow outcomes. Traces cover [0, Horizon].
type Result struct {
	Horizon     units.Seconds
	LinkTrace   map[int]Trace
	SwitchTrace map[int]Trace
	Flows       []FlowStat
}

// pathFor picks one path per the routing policy.
func (s *Sim) pathFor(f traffic.Flow) ([]int, error) {
	paths, err := s.Top.Paths(f.Src, f.Dst)
	if err != nil {
		return nil, err
	}
	if s.Routing == ConcentrateRouting {
		best, bestNew := paths[0], len(s.Top.Nodes)+1
		for _, p := range paths {
			newSwitches := 0
			for _, sw := range s.switchesOn(p, f.Src) {
				if !s.usedSwitches[sw] {
					newSwitches++
				}
			}
			if newSwitches < bestNew {
				best, bestNew = p, newSwitches
			}
		}
		for _, sw := range s.switchesOn(best, f.Src) {
			s.usedSwitches[sw] = true
		}
		return best, nil
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(f.Src))
	put(uint64(f.Dst))
	put(s.ECMPSeed)
	return paths[h.Sum64()%uint64(len(paths))], nil
}

// capacityOf resolves a link's effective capacity.
func (s *Sim) capacityOf(l fattree.Link) units.Bandwidth {
	if s.Capacity != nil {
		if c, ok := s.Capacity[l.ID]; ok {
			return c
		}
	}
	return l.Speed
}

// Run simulates the flows and returns utilization traces. The horizon is
// the latest flow end time (0 horizon is an error: nothing to simulate).
func (s *Sim) Run(flows []traffic.Flow) (*Result, error) {
	if s.Top == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("netsim: no flows")
	}
	s.usedSwitches = make(map[int]bool)
	type flowState struct {
		spec traffic.Flow
		path []int
		// switches crossed, derived from the path once.
		switches  []int
		delivered float64
	}
	states := make([]*flowState, len(flows))
	var horizon units.Seconds
	for i, f := range flows {
		if f.End <= f.Start {
			return nil, fmt.Errorf("netsim: flow %d empty window [%v,%v]", i, f.Start, f.End)
		}
		if f.Demand <= 0 {
			return nil, fmt.Errorf("netsim: flow %d non-positive demand %v", i, f.Demand)
		}
		path, err := s.pathFor(f)
		if err != nil {
			return nil, fmt.Errorf("netsim: flow %d: %w", i, err)
		}
		states[i] = &flowState{spec: f, path: path, switches: s.switchesOn(path, f.Src)}
		if f.End > horizon {
			horizon = f.End
		}
	}

	// Event times: every flow boundary plus 0 and horizon.
	timeSet := map[units.Seconds]struct{}{0: {}, horizon: {}}
	for _, st := range states {
		timeSet[st.spec.Start] = struct{}{}
		timeSet[st.spec.End] = struct{}{}
	}
	times := make([]units.Seconds, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	caps := make(map[int]float64, len(s.Top.Links))
	for _, l := range s.Top.Links {
		caps[l.ID] = float64(s.capacityOf(l))
	}

	res := &Result{
		Horizon:     horizon,
		LinkTrace:   make(map[int]Trace, len(s.Top.Links)),
		SwitchTrace: make(map[int]Trace),
	}
	for _, l := range s.Top.Links {
		res.LinkTrace[l.ID] = nil
	}
	for _, sw := range s.Top.SwitchIDs() {
		res.SwitchTrace[sw] = nil
	}

	for ti := 0; ti+1 < len(times); ti++ {
		t0, t1 := times[ti], times[ti+1]
		// Active flows during [t0, t1).
		var active []*flowState
		for _, st := range states {
			if st.spec.Start <= t0 && st.spec.End >= t1 {
				active = append(active, st)
			}
		}
		linkRate := make(map[int]float64)
		switchRate := make(map[int]float64)
		if len(active) > 0 {
			demands := make([]float64, len(active))
			paths := make([][]int, len(active))
			for i, st := range active {
				demands[i] = float64(st.spec.Demand)
				paths[i] = st.path
			}
			rates, err := MaxMin(demands, paths, caps)
			if err != nil {
				return nil, err
			}
			for i, st := range active {
				st.delivered += rates[i] * float64(t1-t0)
				for _, l := range st.path {
					linkRate[l] += rates[i]
				}
				for _, sw := range st.switches {
					switchRate[sw] += rates[i]
				}
			}
		}
		for id := range res.LinkTrace {
			res.LinkTrace[id] = res.LinkTrace[id].append(t0, t1, units.Bandwidth(linkRate[id]))
		}
		for id := range res.SwitchTrace {
			res.SwitchTrace[id] = res.SwitchTrace[id].append(t0, t1, units.Bandwidth(switchRate[id]))
		}
	}

	res.Flows = make([]FlowStat, len(states))
	for i, st := range states {
		life := float64(st.spec.End - st.spec.Start)
		res.Flows[i] = FlowStat{
			Flow:          st.spec,
			Path:          st.path,
			DeliveredBits: st.delivered,
			MeanRate:      units.Bandwidth(st.delivered / life),
		}
	}
	return res, nil
}

// switchesOn lists the switch nodes a path visits, walking the link
// sequence from the source host.
func (s *Sim) switchesOn(path []int, src int) []int {
	var out []int
	at := src
	for _, lid := range path {
		at = s.Top.Peer(lid, at)
		if s.Top.Nodes[at].IsSwitch() {
			out = append(out, at)
		}
	}
	return out
}

// EnergyReport is the baseline network energy of a simulation under a
// uniform device proportionality: switches as two-state devices, optical
// transceivers on inter-switch links (two per link, drawing power whenever
// the link is up).
type EnergyReport struct {
	SwitchEnergy      units.Energy
	TransceiverEnergy units.Energy
	// BusySwitchSeconds sums switch busy time, for efficiency metrics.
	BusySwitchSeconds units.Seconds
	// Horizon echoes the simulated time span.
	Horizon units.Seconds
}

// Total returns switch plus transceiver energy.
func (r EnergyReport) Total() units.Energy { return r.SwitchEnergy + r.TransceiverEnergy }

// Energy integrates baseline network energy over a result. proportionality
// applies to every device; law selects the power-vs-load behavior.
func (s *Sim) Energy(res *Result, proportionality float64, law PowerLaw) (EnergyReport, error) {
	var rep EnergyReport
	rep.Horizon = res.Horizon
	switchModel, err := power.NewModel(device.SwitchMaxPower, proportionality)
	if err != nil {
		return rep, err
	}
	for _, sw := range s.Top.SwitchIDs() {
		tr := res.SwitchTrace[sw]
		e, err := tr.Energy(switchModel, device.SwitchCapacity, law)
		if err != nil {
			return rep, fmt.Errorf("netsim: switch %d: %w", sw, err)
		}
		rep.SwitchEnergy += e
		rep.BusySwitchSeconds += tr.BusyTime()
	}
	for _, l := range s.Top.Links {
		if !l.Optical {
			continue
		}
		xp, err := device.TransceiverPower(l.Speed)
		if err != nil {
			return rep, err
		}
		m, err := power.NewModel(2*xp, proportionality)
		if err != nil {
			return rep, err
		}
		e, err := res.LinkTrace[l.ID].Energy(m, s.capacityOf(l), law)
		if err != nil {
			return rep, fmt.Errorf("netsim: link %d: %w", l.ID, err)
		}
		rep.TransceiverEnergy += e
	}
	return rep, nil
}
