package netsim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/fault"
	"netpowerprop/internal/power"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// Routing selects how flows pick among their ECMP paths.
type Routing int

const (
	// HashECMP spreads flows by 5-tuple hash — today's load balancing.
	HashECMP Routing = iota
	// ConcentrateRouting greedily picks the path that touches the fewest
	// switches not already carrying traffic, so unused switches can sleep
	// (§4.2's "concentrate the network traffic on as few devices as
	// possible" applied at the routing layer). Deterministic: flows are
	// routed in input order.
	ConcentrateRouting
)

// String names the routing mode.
func (r Routing) String() string {
	switch r {
	case HashECMP:
		return "ecmp"
	case ConcentrateRouting:
		return "concentrate"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Sim runs flow-level simulations on an explicit fat-tree topology.
type Sim struct {
	Top *fattree.Topology
	// ECMPSeed perturbs deterministic path selection, so repeated runs can
	// explore different ECMP placements reproducibly.
	ECMPSeed uint64
	// Routing selects the path-selection policy (default HashECMP).
	Routing Routing
	// Capacity overrides per-link capacity; absent links default to their
	// topology speed. Used by parking/OCS studies to disable links (0).
	Capacity map[int]units.Bandwidth
	// Faults, when non-nil and non-empty, injects a deterministic link and
	// switch fault timeline into the run: flows reroute around dead links
	// at each fault epoch, flows with no surviving path stall (and
	// accumulate downtime), and the fairness solver sees dead links at
	// zero capacity. A nil or empty trace reproduces the fault-free
	// behavior exactly.
	Faults *fault.Trace
	// Models, when non-nil, delegates per-transfer latency and per-device
	// power to external co-simulation hooks (see Models). Nil keeps the
	// in-process formulas and adds nothing to the hot path.
	Models *Models

	// usedSwitches tracks switches already chosen by ConcentrateRouting
	// within one Run.
	usedSwitches map[int]bool

	// pathCache memoizes the ECMP path enumeration (and the switches each
	// path visits) per (src,dst) pair: the enumeration depends only on the
	// topology, never on seed, routing mode, or capacity overrides, so it
	// survives across Run calls. Fault-filtered views of each entry are
	// cached on the pathSet itself and invalidated per (run, epoch).
	pathCache map[[2]int]*pathSet

	// runGen counts runs; it stamps the per-pathSet alive caches so a new
	// run (possibly with a different fault trace) never reuses a stale
	// filtered path list.
	runGen uint64

	// Scratch reused by the serial run path so repeated Runs on one Sim
	// allocate nothing in the solve loop.
	scratch runScratch
}

// pathSet is one (src,dst) pair's cached ECMP choices.
type pathSet struct {
	paths    [][]int
	switches [][]int // switches visited by paths[i], in path order

	// alive caches the indices of paths surviving the current fault
	// epoch's dead-link set. Stamped with (run generation, epoch): a link
	// failing or recovering starts a new epoch, which invalidates the
	// entry on first use.
	alive      []int
	aliveRun   uint64
	aliveEpoch int
}

// runScratch is the per-worker solve state.
type runScratch struct {
	solver  Solver
	demands []float64
	paths   [][]int
	// slots maps each solver row back to its position in the interval's
	// active-flow snapshot; stalled flows are excluded from the solve.
	slots []int
}

// New returns a simulator over a topology.
func New(top *fattree.Topology) *Sim {
	return &Sim{Top: top}
}

// FlowStat reports one flow's outcome.
type FlowStat struct {
	Flow traffic.Flow
	// Path is the chosen link-ID sequence (at the flow's start epoch; a
	// faulted run may reroute the flow in later epochs).
	Path []int
	// DeliveredBits integrates the achieved rate over the flow lifetime.
	DeliveredBits float64
	// MeanRate is DeliveredBits / lifetime.
	MeanRate units.Bandwidth
	// Downtime is the time the flow spent stalled with every ECMP path
	// dead. Always zero without fault injection.
	Downtime units.Seconds
	// TransferLatency models the flow's completion latency: per-hop
	// forwarding delay plus serialization of the delivered bits at the
	// start-epoch path's bottleneck capacity (TransferLatency), or
	// whatever an attached co-sim latency model returns for the same
	// request.
	TransferLatency units.Seconds
}

// FaultReport summarizes a faulted run.
type FaultReport struct {
	// Events counts trace events within the horizon; Epochs counts the
	// constant-dead-set spans the horizon split into.
	Events int
	Epochs int
	// MissedWakes counts links that came up late ("stuck asleep").
	MissedWakes int
	// StallSeconds sums downtime across flows; StalledFlows counts flows
	// with any downtime.
	StallSeconds units.Seconds
	StalledFlows int
	// Reroutes counts flow-epochs routed while at least one of the pair's
	// ECMP paths was dead (the flow had to steer around a failure).
	Reroutes int
}

// Result is a completed simulation: utilization traces per link and per
// switch, plus flow outcomes. Traces cover [0, Horizon].
type Result struct {
	Horizon     units.Seconds
	LinkTrace   map[int]Trace
	SwitchTrace map[int]Trace
	Flows       []FlowStat
	// Faults reports fault impact; nil when the run had no fault trace.
	Faults *FaultReport
}

// pathsFor returns the cached path set for a pair, enumerating on first use.
func (s *Sim) pathsFor(src, dst int) (*pathSet, error) {
	key := [2]int{src, dst}
	if ps, ok := s.pathCache[key]; ok {
		return ps, nil
	}
	paths, err := s.Top.Paths(src, dst)
	if err != nil {
		return nil, err
	}
	ps := &pathSet{paths: paths, switches: make([][]int, len(paths))}
	for i, p := range paths {
		ps.switches[i] = s.switchesOn(p, src)
	}
	if s.pathCache == nil {
		s.pathCache = make(map[[2]int]*pathSet)
	}
	s.pathCache[key] = ps
	return ps, nil
}

// aliveFor returns the indices of ps.paths that avoid every dead link,
// refreshing the pathSet's cached filter when it is stale for this
// (run, epoch) — the invalidation step after a link fails or recovers.
func (s *Sim) aliveFor(ps *pathSet, epoch int, dead []bool) []int {
	if ps.aliveRun == s.runGen && ps.aliveEpoch == epoch {
		return ps.alive
	}
	ps.alive = ps.alive[:0]
	for i, p := range ps.paths {
		ok := true
		if dead != nil {
			for _, l := range p {
				if dead[l] {
					ok = false
					break
				}
			}
		}
		if ok {
			ps.alive = append(ps.alive, i)
		}
	}
	ps.aliveRun, ps.aliveEpoch = s.runGen, epoch
	return ps.alive
}

// route is one flow's routing decision within one fault epoch.
type route struct {
	path     []int
	switches []int
	// stalled marks an epoch where every ECMP path crossed a dead link.
	stalled bool
	// rerouted marks an epoch where the flow routed while at least one of
	// its ECMP paths was dead.
	rerouted bool
}

// routeFor picks one path (and its switch sequence) per the routing policy,
// restricted to paths avoiding the epoch's dead links. With no dead links
// the choice is identical to the fault-free policy.
func (s *Sim) routeFor(f traffic.Flow, epoch int, dead []bool) (route, error) {
	ps, err := s.pathsFor(f.Src, f.Dst)
	if err != nil {
		return route{}, err
	}
	alive := s.aliveFor(ps, epoch, dead)
	if len(alive) == 0 {
		return route{stalled: true}, nil
	}
	rerouted := len(alive) < len(ps.paths)
	if s.Routing == ConcentrateRouting {
		best, bestNew := alive[0], len(s.Top.Nodes)+1
		for _, i := range alive {
			newSwitches := 0
			for _, sw := range ps.switches[i] {
				if !s.usedSwitches[sw] {
					newSwitches++
				}
			}
			if newSwitches < bestNew {
				best, bestNew = i, newSwitches
			}
		}
		for _, sw := range ps.switches[best] {
			s.usedSwitches[sw] = true
		}
		return route{path: ps.paths[best], switches: ps.switches[best], rerouted: rerouted}, nil
	}
	// Inline FNV-1a over (src, dst, seed) in little-endian order — the
	// same bytes the hash.Hash64 version fed, without its allocation. The
	// hash picks among surviving paths, so the fault-free choice (all
	// paths alive) is unchanged.
	h := uint64(14695981039346656037)
	for _, v := range [3]uint64{uint64(f.Src), uint64(f.Dst), s.ECMPSeed} {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	i := alive[h%uint64(len(alive))]
	return route{path: ps.paths[i], switches: ps.switches[i], rerouted: rerouted}, nil
}

// capacityOf resolves a link's effective capacity.
func (s *Sim) capacityOf(l fattree.Link) units.Bandwidth {
	if s.Capacity != nil {
		if c, ok := s.Capacity[l.ID]; ok {
			return c
		}
	}
	return l.Speed
}

// flowState is one flow's per-epoch routing decisions and running account.
type flowState struct {
	spec traffic.Flow
	// routes[e] is the decision for fault epoch e; only epochs overlapping
	// the flow's window are populated. Fault-free runs have one epoch.
	routes    []route
	delivered float64
	downtime  units.Seconds
}

// interval is one constant-rate span of the sweep: the flows active during
// [t0,t1) live at activeIdx[off:off+n].
type interval struct {
	t0, t1 units.Seconds
	off, n int
}

// Run simulates the flows and returns utilization traces. The horizon is
// the latest flow end time (0 horizon is an error: nothing to simulate).
func (s *Sim) Run(flows []traffic.Flow) (*Result, error) {
	return s.run(flows, 1)
}

// RunParallel is Run with the per-interval fairness solves fanned across a
// worker pool (workers <= 0 selects GOMAXPROCS). Interval solves are
// independent; delivered bits, rate sums, and traces are still accumulated
// serially in time order, so the output is byte-identical to Run.
func (s *Sim) RunParallel(flows []traffic.Flow, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return s.run(flows, workers)
}

func (s *Sim) run(flows []traffic.Flow, workers int) (*Result, error) {
	if s.Top == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("netsim: no flows")
	}
	s.usedSwitches = make(map[int]bool)
	s.runGen++
	states := make([]flowState, len(flows))
	var horizon units.Seconds
	for i, f := range flows {
		if f.End <= f.Start {
			return nil, fmt.Errorf("netsim: flow %d empty window [%v,%v]", i, f.Start, f.End)
		}
		if f.Demand <= 0 {
			return nil, fmt.Errorf("netsim: flow %d non-positive demand %v", i, f.Demand)
		}
		states[i] = flowState{spec: f}
		if f.End > horizon {
			horizon = f.End
		}
	}

	// Compile the fault trace into epochs of constant dead-link sets. A
	// nil timeline (no faults) leaves a single clean epoch spanning the
	// whole horizon, so the fault-free path is untouched.
	var tl *fault.Timeline
	if s.Faults != nil && s.Faults.Len() > 0 {
		var err error
		tl, err = fault.Compile(s.Faults, horizon, len(s.Top.Links), s.Top.LinksOf)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
	}
	numEpochs := 1
	if tl != nil {
		numEpochs = tl.NumEpochs()
	}

	// Route every flow for every epoch overlapping its window. Epochs run
	// outer and flows inner in input order, so ConcentrateRouting stays
	// deterministic and each pathSet's alive filter is computed once per
	// epoch. With one epoch this is exactly the fault-free routing pass.
	routeArena := make([]route, len(states)*numEpochs)
	for i := range states {
		states[i].routes = routeArena[i*numEpochs : (i+1)*numEpochs]
	}
	reroutes := 0
	for e := 0; e < numEpochs; e++ {
		var dead []bool
		et0, et1 := units.Seconds(0), horizon
		if tl != nil {
			if tl.DeadCount[e] > 0 {
				dead = tl.Dead[e]
			}
			et0 = tl.Starts[e]
			if e+1 < numEpochs {
				et1 = tl.Starts[e+1]
			}
		}
		for i := range states {
			f := states[i].spec
			if f.End <= et0 || f.Start >= et1 {
				continue
			}
			rt, err := s.routeFor(f, e, dead)
			if err != nil {
				return nil, fmt.Errorf("netsim: flow %d: %w", i, err)
			}
			if rt.rerouted && !rt.stalled {
				reroutes++
			}
			states[i].routes[e] = rt
		}
	}

	// Event times: every flow boundary and epoch start plus 0 and horizon,
	// sorted unique, so each interval lies within exactly one epoch.
	times := make([]units.Seconds, 0, 2*len(states)+numEpochs+1)
	times = append(times, 0, horizon)
	for i := range states {
		times = append(times, states[i].spec.Start, states[i].spec.End)
	}
	if tl != nil {
		times = append(times, tl.Starts[1:]...)
	}
	slices.Sort(times)
	times = slices.Compact(times)

	// Sweep the sorted start/end events once to snapshot each interval's
	// active flows, replacing the O(intervals × flows) rescan. Flow order
	// within an interval is (start, input index) — deterministic.
	byStart := make([]int, len(states))
	for i := range byStart {
		byStart[i] = i
	}
	slices.SortStableFunc(byStart, func(a, b int) int {
		sa, sb := states[a].spec.Start, states[b].spec.Start
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	})
	intervals := make([]interval, 0, len(times)-1)
	var activeIdx []int // arena: every interval's active-flow snapshot
	cur := make([]int, 0, len(states))
	next := 0
	for ti := 0; ti+1 < len(times); ti++ {
		t0, t1 := times[ti], times[ti+1]
		for next < len(byStart) && states[byStart[next]].spec.Start <= t0 {
			cur = append(cur, byStart[next])
			next++
		}
		k := 0
		for _, fi := range cur {
			if states[fi].spec.End > t0 {
				cur[k] = fi
				k++
			}
		}
		cur = cur[:k]
		intervals = append(intervals, interval{t0: t0, t1: t1, off: len(activeIdx), n: len(cur)})
		activeIdx = append(activeIdx, cur...)
	}

	// Epoch starts are event times, so each interval sits inside exactly
	// one epoch; a single forward walk labels them all.
	epochOf := make([]int, len(intervals))
	if tl != nil {
		e := 0
		for k := range intervals {
			for e+1 < numEpochs && tl.Starts[e+1] <= intervals[k].t0 {
				e++
			}
			epochOf[k] = e
		}
	}

	caps := make([]float64, len(s.Top.Links))
	for _, l := range s.Top.Links {
		caps[l.ID] = float64(s.capacityOf(l))
	}
	// Per-epoch capacities: dead links drop to zero so the max-min solver
	// cannot place traffic on them. Clean epochs share the base slice.
	epochCaps := [][]float64{caps}
	if tl != nil {
		epochCaps = make([][]float64, numEpochs)
		for e := range epochCaps {
			if tl.DeadCount[e] == 0 {
				epochCaps[e] = caps
				continue
			}
			ec := make([]float64, len(caps))
			copy(ec, caps)
			for l, d := range tl.Dead[e] {
				if d {
					ec[l] = 0
				}
			}
			epochCaps[e] = ec
		}
	}

	// Solve every interval's fairness problem. rateArena mirrors activeIdx:
	// the rate of activeIdx[i]'s flow during its interval lands in
	// rateArena[i], so workers write disjoint ranges. Stalled flows are
	// excluded from the solve and keep the arena's zero rate.
	rateArena := make([]float64, len(activeIdx))
	solve := func(sc *runScratch, k int) error {
		iv := intervals[k]
		if iv.n == 0 {
			return nil
		}
		epoch := epochOf[k]
		idxs := activeIdx[iv.off : iv.off+iv.n]
		if cap(sc.demands) < iv.n {
			sc.demands = make([]float64, 0, iv.n)
			sc.paths = make([][]int, 0, iv.n)
			sc.slots = make([]int, 0, iv.n)
		}
		sc.demands = sc.demands[:0]
		sc.paths = sc.paths[:0]
		sc.slots = sc.slots[:0]
		for j, fi := range idxs {
			rt := &states[fi].routes[epoch]
			if rt.stalled {
				continue
			}
			sc.demands = append(sc.demands, float64(states[fi].spec.Demand))
			sc.paths = append(sc.paths, rt.path)
			sc.slots = append(sc.slots, j)
		}
		if len(sc.demands) == 0 {
			return nil
		}
		rates, err := sc.solver.Solve(sc.demands, sc.paths, epochCaps[epoch])
		if err != nil {
			return err
		}
		for r, j := range sc.slots {
			rateArena[iv.off+j] = rates[r]
		}
		return nil
	}
	if workers <= 1 || len(intervals) <= 1 {
		for k := range intervals {
			if err := solve(&s.scratch, k); err != nil {
				return nil, err
			}
		}
	} else {
		if workers > len(intervals) {
			workers = len(intervals)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var sc runScratch
				for k := w; k < len(intervals); k += workers {
					if err := solve(&sc, k); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Accumulate delivered bits, per-link and per-switch rate sums, and
	// traces serially in time order: the summation order is identical for
	// every worker count, keeping serial and parallel output byte-identical.
	res := &Result{
		Horizon:     horizon,
		LinkTrace:   make(map[int]Trace, len(s.Top.Links)),
		SwitchTrace: make(map[int]Trace),
	}
	switchIDs := s.Top.SwitchIDs()
	for _, l := range s.Top.Links {
		res.LinkTrace[l.ID] = nil
	}
	for _, sw := range switchIDs {
		res.SwitchTrace[sw] = nil
	}
	linkRate := make([]float64, len(s.Top.Links))
	switchRate := make([]float64, len(s.Top.Nodes))
	for k, iv := range intervals {
		for i := range linkRate {
			linkRate[i] = 0
		}
		for i := range switchRate {
			switchRate[i] = 0
		}
		epoch := epochOf[k]
		dt := float64(iv.t1 - iv.t0)
		for j := 0; j < iv.n; j++ {
			fi := activeIdx[iv.off+j]
			st := &states[fi]
			rt := &st.routes[epoch]
			if rt.stalled {
				st.downtime += iv.t1 - iv.t0
				continue
			}
			rate := rateArena[iv.off+j]
			st.delivered += rate * dt
			for _, l := range rt.path {
				linkRate[l] += rate
			}
			for _, sw := range rt.switches {
				switchRate[sw] += rate
			}
		}
		for _, l := range s.Top.Links {
			res.LinkTrace[l.ID] = res.LinkTrace[l.ID].append(iv.t0, iv.t1, units.Bandwidth(linkRate[l.ID]))
		}
		for _, sw := range switchIDs {
			res.SwitchTrace[sw] = res.SwitchTrace[sw].append(iv.t0, iv.t1, units.Bandwidth(switchRate[sw]))
		}
	}

	res.Flows = make([]FlowStat, len(states))
	for i := range states {
		st := &states[i]
		startEpoch := 0
		if tl != nil {
			startEpoch = tl.EpochAt(st.spec.Start)
		}
		life := float64(st.spec.End - st.spec.Start)
		path := st.routes[startEpoch].path
		// Bottleneck over base capacities of the start-epoch path; a
		// disabled (zero-capacity) link zeroes the bottleneck and
		// TransferLatency charges hop delay only.
		var bottleneck float64
		for pi, l := range path {
			if c := caps[l]; pi == 0 || c < bottleneck {
				bottleneck = c
			}
		}
		lat := TransferLatency(len(path), st.delivered, bottleneck)
		if s.Models != nil && s.Models.Latency != nil {
			req := LatencyRequest{Src: st.spec.Src, Dst: st.spec.Dst, Hops: len(path), Bits: st.delivered, BottleneckBps: bottleneck}
			if v, err := s.Models.Latency(req); err == nil {
				lat = v
			}
		}
		res.Flows[i] = FlowStat{
			Flow:            st.spec,
			Path:            path,
			DeliveredBits:   st.delivered,
			MeanRate:        units.Bandwidth(st.delivered / life),
			Downtime:        st.downtime,
			TransferLatency: lat,
		}
	}
	if tl != nil {
		rep := &FaultReport{
			Events:      tl.Events,
			Epochs:      numEpochs,
			MissedWakes: tl.MissedWakes,
			Reroutes:    reroutes,
		}
		for i := range states {
			if d := states[i].downtime; d > 0 {
				rep.StallSeconds += d
				rep.StalledFlows++
			}
		}
		res.Faults = rep
	}
	return res, nil
}

// switchesOn lists the switch nodes a path visits, walking the link
// sequence from the source host.
func (s *Sim) switchesOn(path []int, src int) []int {
	var out []int
	at := src
	for _, lid := range path {
		at = s.Top.Peer(lid, at)
		if s.Top.Nodes[at].IsSwitch() {
			out = append(out, at)
		}
	}
	return out
}

// EnergyReport is the baseline network energy of a simulation under a
// uniform device proportionality: switches as two-state devices, optical
// transceivers on inter-switch links (two per link, drawing power whenever
// the link is up).
type EnergyReport struct {
	SwitchEnergy      units.Energy
	TransceiverEnergy units.Energy
	// BusySwitchSeconds sums switch busy time, for efficiency metrics.
	BusySwitchSeconds units.Seconds
	// Horizon echoes the simulated time span.
	Horizon units.Seconds
}

// Total returns switch plus transceiver energy.
func (r EnergyReport) Total() units.Energy { return r.SwitchEnergy + r.TransceiverEnergy }

// Energy integrates baseline network energy over a result. proportionality
// applies to every device; law selects the power-vs-load behavior.
func (s *Sim) Energy(res *Result, proportionality float64, law PowerLaw) (EnergyReport, error) {
	var rep EnergyReport
	rep.Horizon = res.Horizon
	switchModel, err := power.NewModel(device.SwitchMaxPower, proportionality)
	if err != nil {
		return rep, err
	}
	for _, sw := range s.Top.SwitchIDs() {
		tr := res.SwitchTrace[sw]
		e, err := s.deviceEnergy("switch", sw, switchModel, device.SwitchCapacity, law, tr)
		if err != nil {
			return rep, fmt.Errorf("netsim: switch %d: %w", sw, err)
		}
		rep.SwitchEnergy += e
		rep.BusySwitchSeconds += tr.BusyTime()
	}
	for _, l := range s.Top.Links {
		if !l.Optical {
			continue
		}
		xp, err := device.TransceiverPower(l.Speed)
		if err != nil {
			return rep, err
		}
		m, err := power.NewModel(2*xp, proportionality)
		if err != nil {
			return rep, err
		}
		e, err := s.deviceEnergy("link", l.ID, m, s.capacityOf(l), law, res.LinkTrace[l.ID])
		if err != nil {
			return rep, fmt.Errorf("netsim: link %d: %w", l.ID, err)
		}
		rep.TransceiverEnergy += e
	}
	return rep, nil
}

// deviceEnergy integrates one device's trace, delegating to the co-sim
// power hook when attached and failing closed to the in-process model on
// hook error.
func (s *Sim) deviceEnergy(dev string, id int, m power.Model, capacity units.Bandwidth, law PowerLaw, tr Trace) (units.Energy, error) {
	if s.Models != nil && s.Models.Power != nil {
		req := PowerRequest{
			Device:          dev,
			ID:              id,
			Max:             m.Max,
			Proportionality: m.Proportionality,
			Law:             law,
			Capacity:        capacity,
			Trace:           tr,
		}
		if e, err := s.Models.Power(req); err == nil {
			return e, nil
		}
	}
	return tr.Energy(m, capacity, law)
}
