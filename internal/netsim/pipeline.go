package netsim

import (
	"fmt"
	"sort"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/units"
)

// PipelineUtilization projects one switch's simulated traffic onto an ASIC
// model: the switch's incident links map to ASIC ports in stable
// (adjacency) order, each port belongs to its hard-wired pipeline, and the
// result is a uniformly sampled per-pipeline offered-utilization trace —
// exactly the input the §4.3 (rateadapt) and §4.4 (parking, via
// SwitchDemand) simulators consume. This is the bridge from the
// flow-level fabric simulation to the per-chip mechanism studies.
func (s *Sim) PipelineUtilization(res *Result, switchID int, cfg asic.Config, step units.Seconds) ([]units.Seconds, [][]float64, error) {
	if res == nil {
		return nil, nil, fmt.Errorf("netsim: nil result")
	}
	if step <= 0 {
		return nil, nil, fmt.Errorf("netsim: step %v must be positive", step)
	}
	if switchID < 0 || switchID >= len(s.Top.Nodes) || !s.Top.Nodes[switchID].IsSwitch() {
		return nil, nil, fmt.Errorf("netsim: node %d is not a switch", switchID)
	}
	links := append([]int(nil), s.Top.LinksOf(switchID)...)
	sort.Ints(links)
	if len(links) > cfg.Ports {
		return nil, nil, fmt.Errorf("netsim: switch %d has %d links but the ASIC has %d ports",
			switchID, len(links), cfg.Ports)
	}
	a, err := asic.New(cfg)
	if err != nil {
		return nil, nil, err
	}

	n := int(float64(res.Horizon)/float64(step)) + 1
	if n < 2 {
		n = 2
	}
	times := make([]units.Seconds, n)
	utils := make([][]float64, cfg.Pipelines)
	for p := range utils {
		utils[p] = make([]float64, n)
	}
	// Per-pipeline capacity: its port count times the port speed (taken
	// from each mapped link's speed; unmapped ports idle).
	perPipePorts := cfg.Ports / cfg.Pipelines
	for i := range times {
		times[i] = units.Seconds(i) * step
		for port, lid := range links {
			pipe, err := a.PipelineOf(port)
			if err != nil {
				return nil, nil, err
			}
			link := s.Top.Links[lid]
			capPerPipe := float64(link.Speed) * float64(perPipePorts)
			if capPerPipe <= 0 {
				continue
			}
			utils[pipe][i] += float64(res.LinkTrace[lid].At(times[i])) / capPerPipe
		}
	}
	for p := range utils {
		for i, u := range utils[p] {
			if u > 1 {
				utils[p][i] = 1
			}
		}
	}
	return times, utils, nil
}

// SwitchDemand samples one switch's aggregate offered utilization (of the
// given capacity) — the input the §4.4 parking simulator consumes.
func (s *Sim) SwitchDemand(res *Result, switchID int, capacity units.Bandwidth, step units.Seconds) ([]units.Seconds, []float64, error) {
	if res == nil {
		return nil, nil, fmt.Errorf("netsim: nil result")
	}
	if step <= 0 || capacity <= 0 {
		return nil, nil, fmt.Errorf("netsim: step %v and capacity %v must be positive", step, capacity)
	}
	tr, ok := res.SwitchTrace[switchID]
	if !ok {
		return nil, nil, fmt.Errorf("netsim: no trace for switch %d", switchID)
	}
	n := int(float64(res.Horizon)/float64(step)) + 1
	if n < 2 {
		n = 2
	}
	times := make([]units.Seconds, n)
	demand := make([]float64, n)
	for i := range times {
		times[i] = units.Seconds(i) * step
		u := float64(tr.At(times[i])) / float64(capacity)
		if u > 1 {
			u = 1
		}
		demand[i] = u
	}
	return times, demand, nil
}
