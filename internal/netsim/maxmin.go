// Package netsim is a flow-level network simulator on explicit fat-tree
// topologies: flows pick ECMP paths, link rates follow demand-bounded
// max-min fairness, and the simulator emits per-link and per-switch
// utilization traces that the §4 mechanism models (EEE, rate adaptation,
// pipeline parking, OCS) consume, plus baseline energy accounting.
package netsim

import (
	"fmt"
	"math"
)

// MaxMin computes the demand-bounded max-min fair rate allocation.
//
// demands[i] is flow i's offered rate; paths[i] lists the link IDs flow i
// traverses; capacity maps link ID to its capacity. The returned rates
// satisfy: no link exceeds its capacity, no flow exceeds its demand, and
// no flow's rate can be increased without decreasing a flow of equal or
// smaller rate (progressive filling).
//
// This entry point runs the dense Solver through a pool, so one-shot
// callers get the allocation-free hot path too; the original map-based
// implementation is retained as maxMinReference for differential testing.
func MaxMin(demands []float64, paths [][]int, capacity map[int]float64) ([]float64, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	rates, err := s.SolveMap(demands, paths, capacity)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rates))
	copy(out, rates)
	return out, nil
}

// maxMinReference is the original map-based progressive-filling solver,
// kept verbatim as the oracle the fuzz differential test compares the
// dense Solver against.
func maxMinReference(demands []float64, paths [][]int, capacity map[int]float64) ([]float64, error) {
	n := len(demands)
	if len(paths) != n {
		return nil, fmt.Errorf("netsim: %d demands but %d paths", n, len(paths))
	}
	rates := make([]float64, n)
	frozen := make([]bool, n)
	remaining := make(map[int]float64, len(capacity))
	count := make(map[int]int)
	for i := 0; i < n; i++ {
		if demands[i] < 0 {
			return nil, fmt.Errorf("netsim: flow %d negative demand %v", i, demands[i])
		}
		if len(paths[i]) == 0 {
			return nil, fmt.Errorf("netsim: flow %d has empty path", i)
		}
		for _, l := range paths[i] {
			c, ok := capacity[l]
			if !ok {
				return nil, fmt.Errorf("netsim: flow %d crosses unknown link %d", i, l)
			}
			if c < 0 {
				return nil, fmt.Errorf("netsim: link %d negative capacity %v", l, c)
			}
			if _, seen := remaining[l]; !seen {
				remaining[l] = c
			}
			count[l]++
		}
	}

	unfrozen := n
	for unfrozen > 0 {
		// Minimum fair share across links still carrying unfrozen flows.
		share := math.Inf(1)
		for l, c := range count {
			if c == 0 {
				continue
			}
			if s := remaining[l] / float64(c); s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			// No link constrains the remaining flows (cannot happen with
			// non-empty paths, but guard anyway): give them their demand.
			for i := 0; i < n; i++ {
				if !frozen[i] {
					freezeRef(i, demands[i], rates, frozen, paths, remaining, count)
					unfrozen--
				}
			}
			break
		}
		// Freeze demand-limited flows first: any unfrozen flow whose demand
		// is at or below the current share can take exactly its demand.
		progressed := false
		for i := 0; i < n; i++ {
			if !frozen[i] && demands[i] <= share+1e-12 {
				freezeRef(i, demands[i], rates, frozen, paths, remaining, count)
				unfrozen--
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Otherwise freeze the flows crossing a bottleneck link at the share.
		for l, c := range count {
			if c == 0 {
				continue
			}
			if remaining[l]/float64(c) <= share+1e-12 {
				for i := 0; i < n; i++ {
					if frozen[i] {
						continue
					}
					for _, pl := range paths[i] {
						if pl == l {
							freezeRef(i, share, rates, frozen, paths, remaining, count)
							unfrozen--
							break
						}
					}
				}
			}
		}
	}
	return rates, nil
}

func freezeRef(i int, rate float64, rates []float64, frozen []bool, paths [][]int, remaining map[int]float64, count map[int]int) {
	rates[i] = rate
	frozen[i] = true
	for _, l := range paths[i] {
		remaining[l] -= rate
		if remaining[l] < 0 {
			remaining[l] = 0 // numerical guard
		}
		count[l]--
	}
}
