package netsim

import (
	"fmt"
	"math"
	"sync"
)

// Solver computes demand-bounded max-min fair allocations over dense
// link-ID-indexed capacity slices. All scratch state — remaining capacity,
// unfrozen-flow counts, frozen flags, the active-link worklist, and the
// link→flow index — is reused across calls, so the simulation hot path
// allocates nothing once the solver is warm. A Solver is not safe for
// concurrent use; give each worker its own.
type Solver struct {
	rates    []float64
	frozen   []bool
	unfrozen []int // flow indices not yet frozen, ascending

	remaining []float64
	count     []int
	active    []int // link IDs still carrying unfrozen flows, ascending

	// CSR link→flow index: flows crossing link l are
	// csrFlows[csrOff[l]:csrOff[l+1]].
	csrOff   []int
	csrFlows []int
	cursor   []int

	// Map-keyed inputs (the MaxMin compatibility path) are densified into
	// these buffers: link IDs are assigned dense indices in first-seen
	// order over the flows' paths, which keeps the solve deterministic.
	idx        map[int]int
	denseCap   []float64
	densePaths [][]int
	pathArena  []int
}

// Solve computes the max-min fair rates for the flows. demands[i] is flow
// i's offered rate, paths[i] the link IDs it traverses, and capacity[l]
// the capacity of link ID l; every path entry must index into capacity.
// The returned slice is owned by the solver and valid until the next call.
func (s *Solver) Solve(demands []float64, paths [][]int, capacity []float64) ([]float64, error) {
	n, nl := len(demands), len(capacity)
	if len(paths) != n {
		return nil, fmt.Errorf("netsim: %d demands but %d paths", n, len(paths))
	}
	s.rates = resizeFloats(s.rates, n)
	s.frozen = resizeBools(s.frozen, n)
	s.remaining = append(s.remaining[:0], capacity...)
	s.count = resizeInts(s.count, nl)

	total := 0
	for i := 0; i < n; i++ {
		if demands[i] < 0 {
			return nil, fmt.Errorf("netsim: flow %d negative demand %v", i, demands[i])
		}
		if len(paths[i]) == 0 {
			return nil, fmt.Errorf("netsim: flow %d has empty path", i)
		}
		for _, l := range paths[i] {
			if l < 0 || l >= nl {
				return nil, fmt.Errorf("netsim: flow %d crosses unknown link %d", i, l)
			}
			if capacity[l] < 0 {
				return nil, fmt.Errorf("netsim: link %d negative capacity %v", l, capacity[l])
			}
			s.count[l]++
		}
		total += len(paths[i])
	}

	// Build the link→flow index while counts are still pristine.
	s.csrOff = resizeInts(s.csrOff, nl+1)
	s.cursor = resizeInts(s.cursor, nl)
	off := 0
	for l := 0; l < nl; l++ {
		s.csrOff[l] = off
		s.cursor[l] = off
		off += s.count[l]
	}
	s.csrOff[nl] = off
	if cap(s.csrFlows) < total {
		s.csrFlows = make([]int, total)
	}
	s.csrFlows = s.csrFlows[:total]
	for i := 0; i < n; i++ {
		for _, l := range paths[i] {
			s.csrFlows[s.cursor[l]] = i
			s.cursor[l]++
		}
	}

	s.active = s.active[:0]
	for l := 0; l < nl; l++ {
		if s.count[l] > 0 {
			s.active = append(s.active, l)
		}
	}
	s.unfrozen = s.unfrozen[:0]
	for i := 0; i < n; i++ {
		s.unfrozen = append(s.unfrozen, i)
	}

	for len(s.unfrozen) > 0 {
		// Minimum fair share across links still carrying unfrozen flows,
		// compacting drained links out of the worklist as we scan.
		share := math.Inf(1)
		k := 0
		for _, l := range s.active {
			c := s.count[l]
			if c == 0 {
				continue
			}
			s.active[k] = l
			k++
			if v := s.remaining[l] / float64(c); v < share {
				share = v
			}
		}
		s.active = s.active[:k]
		if math.IsInf(share, 1) {
			// No link constrains the remaining flows (cannot happen with
			// non-empty paths, but guard anyway): give them their demand.
			for _, i := range s.unfrozen {
				s.freeze(i, demands[i], paths)
			}
			s.unfrozen = s.unfrozen[:0]
			break
		}
		// Freeze demand-limited flows first: any unfrozen flow whose demand
		// is at or below the current share can take exactly its demand.
		progressed := false
		k = 0
		for _, i := range s.unfrozen {
			if demands[i] <= share+1e-12 {
				s.freeze(i, demands[i], paths)
				progressed = true
			} else {
				s.unfrozen[k] = i
				k++
			}
		}
		s.unfrozen = s.unfrozen[:k]
		if progressed {
			continue
		}
		// Otherwise freeze the flows crossing a bottleneck link at the share.
		for _, l := range s.active {
			c := s.count[l]
			if c == 0 {
				continue
			}
			if s.remaining[l]/float64(c) <= share+1e-12 {
				for _, i := range s.csrFlows[s.csrOff[l]:s.csrOff[l+1]] {
					if !s.frozen[i] {
						s.freeze(i, share, paths)
					}
				}
			}
		}
		k = 0
		for _, i := range s.unfrozen {
			if !s.frozen[i] {
				s.unfrozen[k] = i
				k++
			}
		}
		s.unfrozen = s.unfrozen[:k]
	}
	return s.rates, nil
}

func (s *Solver) freeze(i int, rate float64, paths [][]int) {
	s.rates[i] = rate
	s.frozen[i] = true
	for _, l := range paths[i] {
		s.remaining[l] -= rate
		if s.remaining[l] < 0 {
			s.remaining[l] = 0 // numerical guard
		}
		s.count[l]--
	}
}

// SolveMap answers a map-keyed instance (arbitrary link IDs) by assigning
// dense indices in first-seen order over the flows' paths, then running
// the dense solve. Capacity entries no flow crosses are ignored, exactly
// as in the reference solver. The returned slice is owned by the solver.
func (s *Solver) SolveMap(demands []float64, paths [][]int, capacity map[int]float64) ([]float64, error) {
	n := len(demands)
	if len(paths) != n {
		return nil, fmt.Errorf("netsim: %d demands but %d paths", n, len(paths))
	}
	if s.idx == nil {
		s.idx = make(map[int]int, len(capacity))
	} else {
		clear(s.idx)
	}
	s.denseCap = s.denseCap[:0]
	s.pathArena = s.pathArena[:0]
	for i := 0; i < n; i++ {
		if demands[i] < 0 {
			return nil, fmt.Errorf("netsim: flow %d negative demand %v", i, demands[i])
		}
		if len(paths[i]) == 0 {
			return nil, fmt.Errorf("netsim: flow %d has empty path", i)
		}
		for _, l := range paths[i] {
			d, ok := s.idx[l]
			if !ok {
				c, known := capacity[l]
				if !known {
					return nil, fmt.Errorf("netsim: flow %d crosses unknown link %d", i, l)
				}
				if c < 0 {
					return nil, fmt.Errorf("netsim: link %d negative capacity %v", l, c)
				}
				d = len(s.denseCap)
				s.idx[l] = d
				s.denseCap = append(s.denseCap, c)
			}
			s.pathArena = append(s.pathArena, d)
		}
	}
	// Subslice the arena only after it stopped growing (appends above may
	// have reallocated it).
	s.densePaths = s.densePaths[:0]
	off := 0
	for i := 0; i < n; i++ {
		s.densePaths = append(s.densePaths, s.pathArena[off:off+len(paths[i])])
		off += len(paths[i])
	}
	return s.Solve(demands, s.densePaths, s.denseCap)
}

var solverPool = sync.Pool{New: func() any { return new(Solver) }}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
