// Package backbone models the paper's other context (§3.4): ISP networks,
// where "the benefits from power proportionality are even more direct
// since it is all network and no compute", and underutilization is
// unavoidable because customers expect capacity they do not use 24/7.
//
// A backbone is a router graph with per-link diurnal load profiles. The
// package provides a link-sleeping optimizer that powers optical links
// down at night subject to two safety constraints: the graph must stay
// connected (no bridge may sleep), and the slept link's traffic — rerouted
// along the shortest remaining path — must not push any surviving link
// over a utilization cap. This is the §3.4 "different kind of
// underutilization": links are underutilized rather than unused.
package backbone

import (
	"fmt"
	"sort"

	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// Link is one bidirectional backbone adjacency.
type Link struct {
	ID   int
	A, B int
	// Capacity per direction.
	Capacity units.Bandwidth
	// Load is the link's offered utilization over time (of Capacity).
	Load traffic.Profile
	// Power is the link's interface power (both ends' transceivers and
	// line cards) when up; a slept link draws nothing.
	Power units.Power
}

// Network is a backbone graph. Build with New and AddLink.
type Network struct {
	routers int
	links   []Link
	adj     map[int][]int // router -> link IDs
	// RouterPower is each router's chassis draw (base power that never
	// sleeps; §3.4 routers stay up even when links sleep).
	RouterPower units.Power
}

// New creates a backbone with n routers and the given chassis power.
func New(n int, routerPower units.Power) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("backbone: need at least 2 routers, have %d", n)
	}
	if routerPower < 0 {
		return nil, fmt.Errorf("backbone: negative router power %v", routerPower)
	}
	return &Network{routers: n, adj: make(map[int][]int), RouterPower: routerPower}, nil
}

// Routers returns the router count.
func (n *Network) Routers() int { return n.routers }

// Links returns the links (do not mutate).
func (n *Network) Links() []Link { return n.links }

// AddLink connects two routers.
func (n *Network) AddLink(a, b int, capacity units.Bandwidth, power units.Power, load traffic.Profile) (int, error) {
	if a < 0 || a >= n.routers || b < 0 || b >= n.routers {
		return 0, fmt.Errorf("backbone: endpoint outside [0,%d)", n.routers)
	}
	if a == b {
		return 0, fmt.Errorf("backbone: self-link at router %d", a)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("backbone: non-positive capacity %v", capacity)
	}
	if power < 0 {
		return 0, fmt.Errorf("backbone: negative link power %v", power)
	}
	if load == nil {
		return 0, fmt.Errorf("backbone: nil load profile")
	}
	id := len(n.links)
	n.links = append(n.links, Link{ID: id, A: a, B: b, Capacity: capacity, Power: power, Load: load})
	n.adj[a] = append(n.adj[a], id)
	n.adj[b] = append(n.adj[b], id)
	return id, nil
}

// Ring builds the classic resilient backbone shape: n routers in a cycle,
// every link with the same capacity/power and a diurnal profile whose
// phase shifts per link (time zones along the ring).
func Ring(n int, capacity units.Bandwidth, linkPower, routerPower units.Power, trough, peak float64) (*Network, error) {
	net, err := New(n, routerPower)
	if err != nil {
		return nil, err
	}
	const day = units.Seconds(86400)
	for i := 0; i < n; i++ {
		base, err := traffic.Diurnal(trough, peak, day)
		if err != nil {
			return nil, err
		}
		shift := units.Seconds(float64(day) * float64(i) / float64(n))
		prof := func(s units.Seconds) float64 { return base(s + shift) }
		if _, err := net.AddLink(i, (i+1)%n, capacity, linkPower, prof); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// connected reports whether the routers form one component using only the
// links marked up.
func (n *Network) connected(up map[int]bool) bool {
	if n.routers == 0 {
		return true
	}
	seen := make([]bool, n.routers)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range n.adj[r] {
			if !up[lid] {
				continue
			}
			l := n.links[lid]
			peer := l.A
			if peer == r {
				peer = l.B
			}
			if !seen[peer] {
				seen[peer] = true
				count++
				stack = append(stack, peer)
			}
		}
	}
	return count == n.routers
}

// shortestAltPath finds the shortest path (in hops) between a link's
// endpoints using only up links excluding the link itself. Returns the
// link IDs or nil when none exists.
func (n *Network) shortestAltPath(skip int, up map[int]bool) []int {
	src, dst := n.links[skip].A, n.links[skip].B
	type node struct {
		router int
		path   []int
	}
	visited := make([]bool, n.routers)
	visited[src] = true
	queue := []node{{router: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, lid := range n.adj[cur.router] {
			if lid == skip || !up[lid] {
				continue
			}
			l := n.links[lid]
			peer := l.A
			if peer == cur.router {
				peer = l.B
			}
			if visited[peer] {
				continue
			}
			path := append(append([]int{}, cur.path...), lid)
			if peer == dst {
				return path
			}
			visited[peer] = true
			queue = append(queue, node{router: peer, path: path})
		}
	}
	return nil
}

// SleepPlan is the sleeping decision at one instant.
type SleepPlan struct {
	// Asleep lists slept link IDs.
	Asleep []int
	// Utilization maps every up link to its post-reroute utilization.
	Utilization map[int]float64
	// Power is the instantaneous network power under the plan.
	Power units.Power
}

// PlanAt greedily sleeps the lowest-utilized links at time t, subject to:
// utilization below sleepBelow, connectivity preserved, and the rerouted
// traffic keeping every surviving link at or below maxUtil.
func (n *Network) PlanAt(t units.Seconds, sleepBelow, maxUtil float64) (SleepPlan, error) {
	if len(n.links) == 0 {
		return SleepPlan{}, fmt.Errorf("backbone: no links")
	}
	if sleepBelow < 0 || sleepBelow > 1 || maxUtil <= 0 || maxUtil > 1 {
		return SleepPlan{}, fmt.Errorf("backbone: thresholds sleepBelow=%v maxUtil=%v invalid", sleepBelow, maxUtil)
	}
	up := make(map[int]bool, len(n.links))
	util := make(map[int]float64, len(n.links))
	for _, l := range n.links {
		up[l.ID] = true
		u := l.Load(t)
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		util[l.ID] = u
	}
	// Candidates ascending by utilization: sleep the emptiest first.
	candidates := make([]int, 0, len(n.links))
	for id, u := range util {
		if u < sleepBelow {
			candidates = append(candidates, id)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if util[candidates[i]] != util[candidates[j]] {
			return util[candidates[i]] < util[candidates[j]]
		}
		return candidates[i] < candidates[j]
	})

	var asleep []int
	for _, id := range candidates {
		up[id] = false
		if !n.connected(up) {
			up[id] = true
			continue
		}
		// Reroute this link's traffic along the shortest alternative.
		path := n.shortestAltPath(id, up)
		if path == nil {
			up[id] = true
			continue
		}
		moved := util[id] * float64(n.links[id].Capacity)
		ok := true
		for _, lid := range path {
			if util[lid]+moved/float64(n.links[lid].Capacity) > maxUtil {
				ok = false
				break
			}
		}
		if !ok {
			up[id] = true
			continue
		}
		for _, lid := range path {
			util[lid] += moved / float64(n.links[lid].Capacity)
		}
		util[id] = 0
		asleep = append(asleep, id)
	}

	plan := SleepPlan{Asleep: asleep, Utilization: make(map[int]float64)}
	var p float64
	p += float64(n.RouterPower) * float64(n.routers)
	for _, l := range n.links {
		if up[l.ID] {
			p += float64(l.Power)
			plan.Utilization[l.ID] = util[l.ID]
		}
	}
	plan.Power = units.Power(p)
	return plan, nil
}

// DayResult summarizes a simulated day.
type DayResult struct {
	// Energy under link sleeping; Baseline with every link up.
	Energy   units.Energy
	Baseline units.Energy
	Savings  float64
	// MeanAsleep is the time-averaged slept-link count.
	MeanAsleep float64
	// MaxUtilization is the highest post-reroute utilization seen.
	MaxUtilization float64
}

// SimulateDay evaluates the sleeping policy over one day at the given
// sampling step.
func (n *Network) SimulateDay(step units.Seconds, sleepBelow, maxUtil float64) (DayResult, error) {
	var res DayResult
	if step <= 0 || step > 86400 {
		return res, fmt.Errorf("backbone: step %v outside (0, 86400]", step)
	}
	var basePower float64
	basePower += float64(n.RouterPower) * float64(n.routers)
	for _, l := range n.links {
		basePower += float64(l.Power)
	}
	samples := 0
	var asleepAcc float64
	for t := units.Seconds(0); t < 86400; t += step {
		plan, err := n.PlanAt(t, sleepBelow, maxUtil)
		if err != nil {
			return res, err
		}
		res.Energy += units.EnergyOver(plan.Power, step)
		res.Baseline += units.EnergyOver(units.Power(basePower), step)
		asleepAcc += float64(len(plan.Asleep))
		for _, u := range plan.Utilization {
			if u > res.MaxUtilization {
				res.MaxUtilization = u
			}
		}
		samples++
	}
	if samples > 0 {
		res.MeanAsleep = asleepAcc / float64(samples)
	}
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	return res, nil
}
