package backbone

import (
	"math"
	"testing"

	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func flat(level float64) traffic.Profile {
	p, err := traffic.Constant(level)
	if err != nil {
		panic(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 100); err == nil {
		t.Error("single router accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative router power accepted")
	}
	n, err := New(4, 100*units.Watt)
	if err != nil || n.Routers() != 4 {
		t.Fatalf("New: %v", err)
	}
}

func TestAddLinkValidation(t *testing.T) {
	n, _ := New(4, 100*units.Watt)
	if _, err := n.AddLink(0, 9, 100*units.Gbps, 10*units.Watt, flat(0.5)); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := n.AddLink(1, 1, 100*units.Gbps, 10*units.Watt, flat(0.5)); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := n.AddLink(0, 1, 0, 10*units.Watt, flat(0.5)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := n.AddLink(0, 1, 100*units.Gbps, -1, flat(0.5)); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := n.AddLink(0, 1, 100*units.Gbps, 10*units.Watt, nil); err == nil {
		t.Error("nil profile accepted")
	}
	id, err := n.AddLink(0, 1, 100*units.Gbps, 10*units.Watt, flat(0.5))
	if err != nil || id != 0 {
		t.Fatalf("AddLink: %v, id=%d", err, id)
	}
	if len(n.Links()) != 1 {
		t.Errorf("links = %d", len(n.Links()))
	}
}

func TestRingConstruction(t *testing.T) {
	n, err := Ring(8, 100*units.Gbps, 20*units.Watt, 200*units.Watt, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Links()) != 8 {
		t.Fatalf("ring links = %d, want 8", len(n.Links()))
	}
	// Phase shifts: different links peak at different times.
	l0, l4 := n.Links()[0], n.Links()[4]
	if math.Abs(l0.Load(0)-l4.Load(0)) < 1e-9 {
		t.Error("phase shift missing: links 0 and 4 have identical load at t=0")
	}
}

// TestRingSleepsAtMostOne: a pure cycle has no redundancy beyond one link;
// connectivity admits exactly one slept link.
func TestRingSleepsAtMostOne(t *testing.T) {
	n, err := Ring(6, 100*units.Gbps, 20*units.Watt, 200*units.Watt, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := n.PlanAt(0, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Asleep) != 1 {
		t.Errorf("ring slept %d links, want exactly 1", len(plan.Asleep))
	}
	// The slept link's traffic moved onto the 5-hop alternative path, so
	// the summed utilization grows by exactly 4x the moved load (the
	// moved traffic now crosses five links instead of one).
	var before, after float64
	for _, l := range n.Links() {
		before += l.Load(0)
	}
	for _, u := range plan.Utilization {
		after += u
	}
	moved := n.Links()[plan.Asleep[0]].Load(0)
	if math.Abs(after-(before+4*moved)) > 1e-9 {
		t.Errorf("reroute accounting off: before %v, after %v, moved %v", before, after, moved)
	}
	// No slept link appears among the survivors.
	if _, ok := plan.Utilization[plan.Asleep[0]]; ok {
		t.Error("slept link still listed as up")
	}
}

// chordedRing builds a ring plus cross chords — enough redundancy to sleep
// several links.
func chordedRing(t *testing.T, trough, peak float64) *Network {
	t.Helper()
	n, err := Ring(8, 100*units.Gbps, 20*units.Watt, 200*units.Watt, trough, peak)
	if err != nil {
		t.Fatal(err)
	}
	const day = units.Seconds(86400)
	for _, chord := range [][2]int{{0, 4}, {2, 6}} {
		prof, err := traffic.Diurnal(trough, peak, day)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddLink(chord[0], chord[1], 100*units.Gbps, 20*units.Watt, prof); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestChordedRingSleepsMore(t *testing.T) {
	n := chordedRing(t, 0.05, 0.3)
	plan, err := n.PlanAt(0, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Asleep) < 2 {
		t.Errorf("chorded ring slept %d links, want >= 2", len(plan.Asleep))
	}
	// No surviving link exceeds the cap.
	for id, u := range plan.Utilization {
		if u > 0.9+1e-9 {
			t.Errorf("link %d at %v exceeds the 0.9 cap", id, u)
		}
	}
	// Power accounting: routers + surviving links.
	wantPower := 8*200.0 + float64(10-len(plan.Asleep))*20.0
	if math.Abs(float64(plan.Power)-wantPower) > 1e-9 {
		t.Errorf("plan power = %v, want %v", plan.Power, wantPower)
	}
}

// TestCapBlocksSleeping: with links already near the cap, rerouting would
// overload survivors, so nothing sleeps even below the sleep threshold.
func TestCapBlocksSleeping(t *testing.T) {
	n, _ := New(3, 100*units.Watt)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if _, err := n.AddLink(e[0], e[1], 100*units.Gbps, 10*units.Watt, flat(0.45)); err != nil {
			t.Fatal(err)
		}
	}
	// sleepBelow 0.5 makes every link a candidate, but moving 0.45 onto a
	// 0.45 link busts a 0.8 cap.
	plan, err := n.PlanAt(0, 0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Asleep) != 0 {
		t.Errorf("slept %d links despite the utilization cap", len(plan.Asleep))
	}
	// Raise the cap: one link can sleep (0.45+0.45 = 0.90 <= 0.95).
	plan, err = n.PlanAt(0, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Asleep) != 1 {
		t.Errorf("slept %d links with a high cap, want 1", len(plan.Asleep))
	}
}

func TestPlanAtValidation(t *testing.T) {
	n, _ := New(2, 100*units.Watt)
	if _, err := n.PlanAt(0, 0.5, 0.9); err == nil {
		t.Error("no links accepted")
	}
	n.AddLink(0, 1, 100*units.Gbps, 10*units.Watt, flat(0.1))
	if _, err := n.PlanAt(0, -0.1, 0.9); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := n.PlanAt(0, 0.5, 0); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := n.PlanAt(0, 0.5, 1.5); err == nil {
		t.Error("cap > 1 accepted")
	}
}

// TestBridgeNeverSleeps: a line topology's middle link is a bridge.
func TestBridgeNeverSleeps(t *testing.T) {
	n, _ := New(3, 100*units.Watt)
	n.AddLink(0, 1, 100*units.Gbps, 10*units.Watt, flat(0.01))
	n.AddLink(1, 2, 100*units.Gbps, 10*units.Watt, flat(0.01))
	plan, err := n.PlanAt(0, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Asleep) != 0 {
		t.Errorf("bridges slept: %v", plan.Asleep)
	}
}

func TestSimulateDay(t *testing.T) {
	n := chordedRing(t, 0.05, 0.7)
	res, err := n.SimulateDay(3600, 0.3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings <= 0 {
		t.Errorf("diurnal sleeping saved %v, want > 0", res.Savings)
	}
	if res.Energy >= res.Baseline {
		t.Error("energy above baseline")
	}
	if res.MeanAsleep <= 0 {
		t.Error("nothing slept on a diurnal day")
	}
	if res.MaxUtilization > 0.85+1e-9 {
		t.Errorf("max utilization %v exceeded the cap", res.MaxUtilization)
	}
	// Savings are bounded by the link share of total power: 10 links x 20 W
	// of 8x200 + 10x20 = 1800 W -> at most ~11%.
	if res.Savings > 10.0*20/(8*200+10*20) {
		t.Errorf("savings %v exceed the sleepable share", res.Savings)
	}
	if _, err := n.SimulateDay(0, 0.3, 0.85); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := n.SimulateDay(1e9, 0.3, 0.85); err == nil {
		t.Error("oversized step accepted")
	}
}

// TestNightVsDay: more links sleep at the diurnal trough than at the peak.
func TestNightVsDay(t *testing.T) {
	n := chordedRing(t, 0.05, 0.9)
	// The shared-phase chords plus shifted ring links: compare plans at
	// trough (t=0 for link 0's profile) and near the common peak.
	night, err := n.PlanAt(0, 0.4, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	day, err := n.PlanAt(43200, 0.4, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(night.Asleep) <= len(day.Asleep) {
		t.Errorf("night slept %d, day slept %d — expected more at night",
			len(night.Asleep), len(day.Asleep))
	}
}
