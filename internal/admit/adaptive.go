package admit

// Adaptive low-priority shedding. The fixed policy — shed low priority
// once the engine queue is half full — wastes headroom when the cluster
// is fast (half the queue idles) and reacts too late when rows are slow
// (half a queue of expensive sweeps already blows the latency target).
// When the serving layer supplies a latency probe and a target, the
// threshold walks between capacity/4 and 3×capacity/4 instead: observed
// p99 above the target tightens it, p99 comfortably below relaxes it,
// and a hysteresis band between the two holds it still so the threshold
// does not flap on every probe. Re-evaluation is rate-limited, so the
// hot path pays one atomic load per low-priority request in the common
// case.

const (
	// tightenAbove / relaxBelow bound the hysteresis band as multiples
	// of the target p99: outside the band the threshold moves, inside it
	// holds. The band must be non-empty or the threshold oscillates
	// between two probes straddling the target.
	tightenAbove = 1.2
	relaxBelow   = 0.8
)

// shedThreshold returns the pending-count bound at which low-priority
// work is shed right now, re-evaluating the adaptive walk if the probe
// is due. Without a probe/target pair it is the fixed half-capacity
// bound, unchanged from the non-adaptive controller.
func (c *Controller) shedThreshold() int64 {
	if c.p99 == nil || c.targetP99 <= 0 {
		return int64((c.capacity + 1) / 2)
	}
	c.maybeAdapt()
	return c.threshold.Load()
}

// ShedThreshold exposes the current effective low-priority shed bound
// (0 when the early shed is disabled) for status endpoints and tests.
func (c *Controller) ShedThreshold() int64 {
	if c.capacity <= 0 || c.pending == nil {
		return 0
	}
	return c.shedThreshold()
}

// maybeAdapt runs one step of the threshold walk if at least adaptEvery
// has passed since the last step. The CAS on lastAdapt elects a single
// adapting goroutine per interval; losers use the current threshold.
func (c *Controller) maybeAdapt() {
	now := c.now().UnixNano()
	last := c.lastAdapt.Load()
	if now-last < int64(c.adaptEvery) {
		return
	}
	if !c.lastAdapt.CompareAndSwap(last, now) {
		return
	}
	p99 := c.p99()
	if p99 <= 0 {
		// No observations yet: hold rather than walk on noise.
		return
	}
	target := c.targetP99.Seconds()
	cur := c.threshold.Load()
	next := cur
	switch {
	case p99 > target*tightenAbove:
		next = cur - c.adaptStep()
	case p99 < target*relaxBelow:
		next = cur + c.adaptStep()
	default:
		return // inside the hysteresis band: hold
	}
	if lo := c.thresholdFloor(); next < lo {
		next = lo
	}
	if hi := c.thresholdCeil(); next > hi {
		next = hi
	}
	if next != cur {
		c.threshold.Store(next)
		c.adaptations.Add(1)
	}
}

// adaptStep is the per-interval threshold movement: an eighth of
// capacity, so the walk crosses its full range in a few seconds of
// sustained pressure without slamming between extremes on one probe.
func (c *Controller) adaptStep() int64 {
	if s := int64(c.capacity / 8); s > 1 {
		return s
	}
	return 1
}

// thresholdFloor is the tightest the walk may go: a quarter of
// capacity (at least 1), so low priority always has some path in and
// cannot be starved outright by a noisy probe.
func (c *Controller) thresholdFloor() int64 {
	if f := int64(c.capacity / 4); f > 1 {
		return f
	}
	return 1
}

// thresholdCeil is the loosest the walk may go: three quarters of
// capacity, preserving the final quarter for normal and high traffic
// even when latency is far under target.
func (c *Controller) thresholdCeil() int64 {
	hi := int64(3 * c.capacity / 4)
	if lo := c.thresholdFloor(); hi < lo {
		return lo
	}
	return hi
}
