// Package admit is the serving path's admission-control layer: priority
// classes and per-tenant token-bucket quotas, applied before a request
// reaches the engine's bounded queue. The engine's shed machinery stays
// the sole authority for normal-priority overload — this layer only
// (a) rejects tenants that exceed their row-rate quota, with a precise
// Retry-After derived from the bucket's refill rate, and (b) sheds
// low-priority work early, while the queue still has room for
// higher-priority requests. High priority may overdraw its bucket by one
// burst before quota rejection kicks in, so operator traffic survives a
// tenant's own flood. Quotas are disabled unless a positive rate is
// configured, so the default serving behavior is unchanged.
package admit

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netpowerprop/internal/obs"
)

// Priority is a request's admission class.
type Priority int8

const (
	// Low is best-effort work: shed early under load, double token cost.
	Low Priority = iota - 1
	// Normal is the default class: quota-checked, engine-shed only.
	Normal
	// High is operator traffic: may overdraw its quota by one burst.
	High
)

// ParsePriority maps the X-Priority header to a class. Empty selects
// Normal; ok is false for unknown values (the caller should 400).
func ParsePriority(s string) (p Priority, ok bool) {
	switch s {
	case "", "normal":
		return Normal, true
	case "low":
		return Low, true
	case "high":
		return High, true
	}
	return Normal, false
}

// String renders the class as its wire name.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case High:
		return "high"
	}
	return "normal"
}

// cost is the tokens one row costs for this class: low-priority rows pay
// double, so best-effort bulk traffic drains a tenant's quota faster than
// interactive traffic.
func (p Priority) cost() float64 {
	if p == Low {
		return 2
	}
	return 1
}

// Reasons a request can be turned away.
const (
	// ReasonQuota: the tenant's token bucket cannot cover the rows; the
	// HTTP layer maps it to 429.
	ReasonQuota = "quota"
	// ReasonLoad: low-priority work shed early under queue pressure; the
	// HTTP layer maps it to 503, like an engine shed.
	ReasonLoad = "load"
	// ReasonTooLarge: the request's token cost exceeds the bucket's
	// capacity, so no amount of waiting would ever admit it — retrying
	// is futile and the client must split the request. The HTTP layer
	// maps it to 413 with no Retry-After.
	ReasonTooLarge = "too-large"
)

// Decision is the outcome of one admission check.
type Decision struct {
	// OK: the request may proceed to the engine.
	OK bool
	// Reason is ReasonQuota or ReasonLoad when !OK.
	Reason string
	// RetryAfter is the suggested client wait when !OK: for quota
	// rejections, the time until the bucket can cover the request.
	RetryAfter time.Duration
}

// Options configures a Controller.
type Options struct {
	// RatePerSec is each tenant's sustained row budget per second.
	// Zero or negative disables quotas entirely.
	RatePerSec float64
	// Burst is the bucket capacity in tokens (default 2×RatePerSec,
	// minimum 1): the largest instantaneous row spend.
	Burst float64
	// Capacity is the engine's admission bound (workers+maxqueue); low
	// priority is shed once pending reaches half of it. Zero disables the
	// early shed.
	Capacity int
	// Pending probes the live engine queue depth (nil disables the
	// low-priority early shed).
	Pending func() int64
	// P99 probes the observed serving latency p99 in seconds (typically
	// an obs.Histogram.Quantile closure over the request-duration
	// histogram). Together with TargetP99 it makes the low-priority shed
	// threshold adaptive — see adaptive.go. Nil keeps the fixed
	// half-capacity bound.
	P99 func() float64
	// TargetP99 is the latency objective the adaptive threshold defends.
	// Zero disables adaptation.
	TargetP99 time.Duration
	// AdaptEvery rate-limits threshold re-evaluation (default 1s).
	AdaptEvery time.Duration
	// MaxTenants bounds tracked buckets (default 4096); the least
	// recently seen bucket is evicted at the bound, which at worst
	// refunds an idle tenant its burst.
	MaxTenants int
	// Now injects time for tests; defaults to time.Now.
	Now func() time.Time
	// Registry, when non-nil, receives netpowerprop_admit_* metrics.
	Registry *obs.Registry
}

// bucket is one tenant's token bucket, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// Controller applies priority and quota policy. The zero value is not
// usable; build one with New.
type Controller struct {
	rate       float64
	burst      float64
	capacity   int
	pending    func() int64
	maxTenants int
	now        func() time.Time

	// Adaptive low-priority shed state (see adaptive.go).
	p99         func() float64
	targetP99   time.Duration
	adaptEvery  time.Duration
	threshold   atomic.Int64
	lastAdapt   atomic.Int64
	adaptations atomic.Uint64

	mu      sync.Mutex
	buckets map[string]*bucket

	allowed   [3]atomic.Uint64 // indexed by class (Low+1)
	quotaRej  [3]atomic.Uint64
	loadShed  atomic.Uint64
	tooLarge  atomic.Uint64
	refunded  atomic.Uint64
	evictions atomic.Uint64
}

// New builds a controller.
func New(opts Options) *Controller {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = 4096
	}
	if opts.Burst <= 0 {
		opts.Burst = 2 * opts.RatePerSec
	}
	if opts.Burst < 1 {
		opts.Burst = 1
	}
	if opts.AdaptEvery <= 0 {
		opts.AdaptEvery = time.Second
	}
	c := &Controller{
		rate:       opts.RatePerSec,
		burst:      opts.Burst,
		capacity:   opts.Capacity,
		pending:    opts.Pending,
		maxTenants: opts.MaxTenants,
		now:        opts.Now,
		p99:        opts.P99,
		targetP99:  opts.TargetP99,
		adaptEvery: opts.AdaptEvery,
		buckets:    make(map[string]*bucket),
	}
	// The adaptive walk starts from the fixed bound and moves only on
	// probe evidence; lastAdapt starts at the construction instant so the
	// first step waits a full interval of real observations.
	c.threshold.Store(int64((opts.Capacity + 1) / 2))
	c.lastAdapt.Store(c.now().UnixNano())
	c.instrument(opts.Registry)
	return c
}

// QuotaEnabled reports whether per-tenant quotas are active.
func (c *Controller) QuotaEnabled() bool { return c.rate > 0 }

// Admit decides whether tenant may spend rows at the given priority.
// rows is the request's true row count — a 100-row batch spends 100
// tokens, not 1 — so quotas meter work, not HTTP calls.
func (c *Controller) Admit(tenant string, pri Priority, rows int) Decision {
	if rows < 1 {
		rows = 1
	}
	// Low priority yields while the queue still has headroom reserved
	// for normal and high traffic, which only the engine's own bound
	// sheds. The bound is fixed at half capacity, or walks with observed
	// p99 latency when a probe is configured (adaptive.go).
	if pri == Low && c.capacity > 0 && c.pending != nil {
		if p := c.pending(); p >= c.shedThreshold() {
			c.loadShed.Add(1)
			return Decision{Reason: ReasonLoad, RetryAfter: time.Second}
		}
	}
	if c.rate <= 0 {
		c.allowed[pri+1].Add(1)
		return Decision{OK: true}
	}

	cost := float64(rows) * pri.cost()
	// High priority may overdraw to -burst: its effective floor is one
	// burst below empty.
	floor := 0.0
	if pri == High {
		floor = -c.burst
	}
	// A cost no full bucket could ever cover is rejected permanently:
	// tokens refill only to burst, so a finite Retry-After here would
	// have the client retrying forever, always getting 429.
	if cost > c.burst-floor {
		c.tooLarge.Add(1)
		return Decision{Reason: ReasonTooLarge}
	}

	now := c.now()
	c.mu.Lock()
	b := c.buckets[tenant]
	if b == nil {
		c.evict()
		b = &bucket{tokens: c.burst, last: now}
		c.buckets[tenant] = b
	} else {
		b.tokens = math.Min(c.burst, b.tokens+c.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens-cost >= floor {
		b.tokens -= cost
		c.mu.Unlock()
		c.allowed[pri+1].Add(1)
		return Decision{OK: true}
	}
	deficit := cost - (b.tokens - floor)
	c.mu.Unlock()
	c.quotaRej[pri+1].Add(1)
	return Decision{
		Reason:     ReasonQuota,
		RetryAfter: time.Duration(deficit / c.rate * float64(time.Second)),
	}
}

// Refund returns rows' worth of tokens to the tenant's bucket, capped at
// burst. The serve layer calls it for batch rows the engine shed after
// quota admission: the work was never done, so a retrying client should
// not pay for it twice. No-op when quotas are disabled or the bucket has
// since been evicted (the eviction already granted a full refill).
func (c *Controller) Refund(tenant string, pri Priority, rows int) {
	if c.rate <= 0 || rows < 1 {
		return
	}
	c.mu.Lock()
	if b := c.buckets[tenant]; b != nil {
		b.tokens = math.Min(c.burst, b.tokens+float64(rows)*pri.cost())
		c.refunded.Add(uint64(rows))
	}
	c.mu.Unlock()
}

// evict drops the least recently seen bucket once the tenant table is
// full. Callers hold c.mu.
func (c *Controller) evict() {
	if len(c.buckets) < c.maxTenants {
		return
	}
	var victim string
	var oldest time.Time
	for t, b := range c.buckets {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = t, b.last
		}
	}
	delete(c.buckets, victim)
	c.evictions.Add(1)
}

// Tenants is the number of tracked buckets.
func (c *Controller) Tenants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buckets)
}

// Metrics is a point-in-time snapshot of the controller's counters.
type Metrics struct {
	// Allowed counts admitted requests by class.
	Allowed map[string]uint64
	// QuotaRejected counts quota rejections by class.
	QuotaRejected map[string]uint64
	// LoadShed counts low-priority requests shed early under load.
	LoadShed uint64
	// TooLarge counts requests whose cost no full bucket could cover.
	TooLarge uint64
	// RefundedRows counts rows refunded after an engine shed.
	RefundedRows uint64
	// Evictions counts tenant buckets dropped at the table bound.
	Evictions uint64
	// Tenants is the current tracked-bucket count.
	Tenants int
	// ShedThreshold is the current effective low-priority shed bound
	// (0 when the early shed is disabled).
	ShedThreshold int64
	// Adaptations counts adaptive threshold moves.
	Adaptations uint64
}

// Metrics snapshots the counters.
func (c *Controller) Metrics() Metrics {
	m := Metrics{
		Allowed:       make(map[string]uint64, 3),
		QuotaRejected: make(map[string]uint64, 3),
		LoadShed:      c.loadShed.Load(),
		TooLarge:      c.tooLarge.Load(),
		RefundedRows:  c.refunded.Load(),
		Evictions:     c.evictions.Load(),
		Tenants:       c.Tenants(),
		ShedThreshold: c.ShedThreshold(),
		Adaptations:   c.adaptations.Load(),
	}
	for _, pri := range []Priority{Low, Normal, High} {
		m.Allowed[pri.String()] = c.allowed[pri+1].Load()
		m.QuotaRejected[pri.String()] = c.quotaRej[pri+1].Load()
	}
	return m
}

// instrument registers the controller's metrics under
// netpowerprop_admit_*.
func (c *Controller) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, pri := range []Priority{Low, Normal, High} {
		pri := pri
		reg.CounterFunc("netpowerprop_admit_allowed_total",
			"Requests admitted past priority/quota checks.",
			func() float64 { return float64(c.allowed[pri+1].Load()) },
			"class", pri.String())
		reg.CounterFunc("netpowerprop_admit_quota_rejected_total",
			"Requests rejected by a tenant's token-bucket quota.",
			func() float64 { return float64(c.quotaRej[pri+1].Load()) },
			"class", pri.String())
	}
	reg.CounterFunc("netpowerprop_admit_load_shed_total",
		"Low-priority requests shed early under queue pressure.",
		func() float64 { return float64(c.loadShed.Load()) })
	reg.CounterFunc("netpowerprop_admit_too_large_total",
		"Requests rejected permanently: cost exceeds bucket capacity.",
		func() float64 { return float64(c.tooLarge.Load()) })
	reg.CounterFunc("netpowerprop_admit_refunded_rows_total",
		"Rows refunded to tenant buckets after an engine shed.",
		func() float64 { return float64(c.refunded.Load()) })
	reg.CounterFunc("netpowerprop_admit_tenant_evictions_total",
		"Tenant buckets evicted at the table bound.",
		func() float64 { return float64(c.evictions.Load()) })
	reg.GaugeFunc("netpowerprop_admit_tenants",
		"Tenant buckets currently tracked.",
		func() float64 { return float64(c.Tenants()) })
	reg.GaugeFunc("netpowerprop_admit_shed_threshold",
		"Current low-priority early-shed bound on engine pending count.",
		func() float64 { return float64(c.ShedThreshold()) })
	reg.CounterFunc("netpowerprop_admit_shed_adaptations_total",
		"Moves of the adaptive low-priority shed threshold.",
		func() float64 { return float64(c.adaptations.Load()) })
}
