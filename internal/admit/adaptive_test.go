package admit

import (
	"testing"
	"time"

	"netpowerprop/internal/obs"
)

// adaptiveFixture builds a controller whose p99 probe reads a synthetic
// obs histogram and whose clock is manual, so the walk is exercised
// deterministically.
type adaptiveFixture struct {
	c    *Controller
	h    *obs.Histogram
	now  time.Time
	load int64
}

func newAdaptiveFixture(t *testing.T, capacity int) *adaptiveFixture {
	t.Helper()
	f := &adaptiveFixture{
		h:   obs.NewHistogram([]float64{0.01, 0.05, 0.1, 0.5, 1}),
		now: time.Unix(1000, 0),
	}
	f.c = New(Options{
		Capacity:   capacity,
		Pending:    func() int64 { return f.load },
		P99:        func() float64 { return f.h.Quantile(0.99) },
		TargetP99:  100 * time.Millisecond,
		AdaptEvery: time.Second,
		Now:        func() time.Time { return f.now },
	})
	return f
}

// refill replaces the histogram's contents: obs histograms only
// accumulate, so swap in a fresh one with the given observations.
func (f *adaptiveFixture) refill(seconds float64, n int) {
	f.h = obs.NewHistogram(f.h.Bounds())
	for i := 0; i < n; i++ {
		f.h.Observe(seconds)
	}
}

func (f *adaptiveFixture) tick() { f.now = f.now.Add(time.Second) }

func TestAdaptiveShedDisabledIsFixedHalfCapacity(t *testing.T) {
	var load int64
	c := New(Options{Capacity: 16, Pending: func() int64 { return load }})
	if got := c.ShedThreshold(); got != 8 {
		t.Fatalf("fixed threshold = %d, want 8", got)
	}
	load = 7
	if d := c.Admit("t", Low, 1); !d.OK {
		t.Errorf("low shed at pending=7 under fixed threshold 8")
	}
	load = 8
	if d := c.Admit("t", Low, 1); d.OK || d.Reason != ReasonLoad {
		t.Errorf("low admitted at pending=8, want load shed; got %+v", d)
	}
}

func TestAdaptiveShedTightensAndClamps(t *testing.T) {
	f := newAdaptiveFixture(t, 32) // start 16, step 4, floor 8, ceil 24
	if got := f.c.ShedThreshold(); got != 16 {
		t.Fatalf("initial threshold = %d, want 16", got)
	}
	// p99 0.5s against a 0.1s target: above the 1.2× band edge, so each
	// elapsed interval tightens by one step until the floor.
	f.refill(0.5, 100)
	for i, want := range []int64{12, 8, 8} {
		f.tick()
		if got := f.c.ShedThreshold(); got != want {
			t.Fatalf("step %d: threshold = %d, want %d", i, got, want)
		}
	}
	if got := f.c.Metrics().Adaptations; got != 2 {
		t.Errorf("Adaptations = %d, want 2 (the clamped step is not a move)", got)
	}
	// The shed decision follows the walked threshold.
	f.load = 8
	if d := f.c.Admit("t", Low, 1); d.OK || d.Reason != ReasonLoad {
		t.Errorf("low admitted at pending=8 with threshold 8; got %+v", d)
	}
	f.load = 7
	if d := f.c.Admit("t", Low, 1); !d.OK {
		t.Error("low shed at pending=7 with threshold 8")
	}
}

func TestAdaptiveShedRelaxesAndClamps(t *testing.T) {
	f := newAdaptiveFixture(t, 32)
	// p99 5ms, far under the 0.8× band edge: relax a step per interval
	// up to the 3/4-capacity ceiling.
	f.refill(0.005, 100)
	for i, want := range []int64{20, 24, 24} {
		f.tick()
		if got := f.c.ShedThreshold(); got != want {
			t.Fatalf("step %d: threshold = %d, want %d", i, got, want)
		}
	}
	f.load = 23
	if d := f.c.Admit("t", Low, 1); !d.OK {
		t.Error("low shed at pending=23 with relaxed threshold 24")
	}
}

func TestAdaptiveShedHysteresisHolds(t *testing.T) {
	f := newAdaptiveFixture(t, 32)
	// p99 inside the (0.8×, 1.2×) band around the 100ms target: hold.
	f.refill(0.1, 100)
	for i := 0; i < 3; i++ {
		f.tick()
		if got := f.c.ShedThreshold(); got != 16 {
			t.Fatalf("threshold moved to %d inside the hysteresis band", got)
		}
	}
	if got := f.c.Metrics().Adaptations; got != 0 {
		t.Errorf("Adaptations = %d inside the band, want 0", got)
	}
}

func TestAdaptiveShedRateLimited(t *testing.T) {
	f := newAdaptiveFixture(t, 32)
	f.refill(0.5, 100)
	// Repeated probes within one interval must not walk more than once.
	f.now = f.now.Add(time.Second)
	for i := 0; i < 5; i++ {
		if got := f.c.ShedThreshold(); got != 12 {
			t.Fatalf("probe %d: threshold = %d, want a single 16→12 step", i, got)
		}
	}
	// An empty histogram (no observations yet) holds rather than walks.
	f.refill(0, 0)
	f.tick()
	if got := f.c.ShedThreshold(); got != 12 {
		t.Errorf("threshold = %d after empty probe, want held 12", got)
	}
}
