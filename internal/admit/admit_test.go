package admit

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"netpowerprop/internal/obs"
)

// fakeNow is an injectable clock.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeNow() *fakeNow {
	return &fakeNow{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeNow) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", Normal, true},
		{"normal", Normal, true},
		{"low", Low, true},
		{"high", High, true},
		{"urgent", Normal, false},
	}
	for _, c := range cases {
		got, ok := ParsePriority(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParsePriority(%q) = %v/%v, want %v/%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// With no rate configured, everything is admitted.
func TestQuotaDisabled(t *testing.T) {
	c := New(Options{})
	if c.QuotaEnabled() {
		t.Fatal("quota enabled with zero rate")
	}
	for i := 0; i < 1000; i++ {
		if d := c.Admit("t", Normal, 100); !d.OK {
			t.Fatalf("request %d rejected with quotas disabled: %+v", i, d)
		}
	}
}

// A tenant burns its burst, is rejected with a refill-derived
// Retry-After, and is admitted again once the bucket refills.
func TestTokenBucketRefill(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 10, Burst: 20, Now: now.Now})
	if d := c.Admit("a", Normal, 20); !d.OK {
		t.Fatalf("initial burst rejected: %+v", d)
	}
	d := c.Admit("a", Normal, 5)
	if d.OK || d.Reason != ReasonQuota {
		t.Fatalf("over-quota admit = %+v, want quota rejection", d)
	}
	if d.RetryAfter != 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 500ms (5 tokens at 10/s)", d.RetryAfter)
	}
	now.Advance(500 * time.Millisecond)
	if d := c.Admit("a", Normal, 5); !d.OK {
		t.Fatalf("post-refill admit rejected: %+v", d)
	}
	// Refill never exceeds the burst.
	now.Advance(time.Hour)
	if d := c.Admit("a", Normal, 21); d.OK {
		t.Fatal("admit above burst succeeded after long idle")
	}
}

// Quotas meter rows, not requests: a batch spends its row count.
func TestQuotaCountsRows(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 10, Now: now.Now})
	if d := c.Admit("a", Normal, 8); !d.OK {
		t.Fatalf("8-row batch rejected: %+v", d)
	}
	if d := c.Admit("a", Normal, 8); d.OK {
		t.Fatal("second 8-row batch admitted with 2 tokens left")
	}
	if d := c.Admit("a", Normal, 2); !d.OK {
		t.Fatalf("2-row spend of the remainder rejected: %+v", d)
	}
}

// Tenants have independent buckets.
func TestTenantsIsolated(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 5, Now: now.Now})
	if d := c.Admit("a", Normal, 5); !d.OK {
		t.Fatalf("tenant a rejected: %+v", d)
	}
	if d := c.Admit("a", Normal, 1); d.OK {
		t.Fatal("tenant a admitted past its burst")
	}
	if d := c.Admit("b", Normal, 5); !d.OK {
		t.Fatalf("tenant b rejected after a's exhaustion: %+v", d)
	}
}

// Low priority pays double and is shed early under queue pressure.
func TestLowPriority(t *testing.T) {
	now := newFakeNow()
	var pending int64
	c := New(Options{
		RatePerSec: 1, Burst: 10, Now: now.Now,
		Capacity: 10, Pending: func() int64 { return pending },
	})
	// Double cost: 10 tokens cover only 5 low-priority rows.
	if d := c.Admit("a", Low, 5); !d.OK {
		t.Fatalf("low 5 rows rejected: %+v", d)
	}
	if d := c.Admit("a", Low, 1); d.OK {
		t.Fatal("low row admitted from an empty bucket")
	}
	// Early shed at half capacity, even with a full bucket.
	pending = 5
	d := c.Admit("b", Low, 1)
	if d.OK || d.Reason != ReasonLoad {
		t.Fatalf("low under load = %+v, want load shed", d)
	}
	// Normal sails through the same queue depth (engine is the authority).
	if d := c.Admit("b", Normal, 1); !d.OK {
		t.Fatalf("normal under half-full queue rejected: %+v", d)
	}
	if m := c.Metrics(); m.LoadShed != 1 {
		t.Errorf("LoadShed = %d, want 1", m.LoadShed)
	}
}

// High priority overdraws to -burst before quota kicks in.
func TestHighPriorityOverdraw(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 5, Now: now.Now})
	if d := c.Admit("a", Normal, 5); !d.OK {
		t.Fatalf("burst spend rejected: %+v", d)
	}
	if d := c.Admit("a", Normal, 1); d.OK {
		t.Fatal("normal admitted from empty bucket")
	}
	if d := c.Admit("a", High, 5); !d.OK {
		t.Fatalf("high overdraw rejected: %+v", d)
	}
	d := c.Admit("a", High, 1)
	if d.OK || d.Reason != ReasonQuota {
		t.Fatalf("high past the overdraw floor = %+v, want quota rejection", d)
	}
	if d.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", d.RetryAfter)
	}
}

// A cost no full bucket could ever cover is rejected permanently — no
// Retry-After, distinct reason — instead of a finite wait the client
// would retry against forever.
func TestTooLargePermanentRejection(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 4, Now: now.Now})
	d := c.Admit("a", Normal, 5)
	if d.OK || d.Reason != ReasonTooLarge || d.RetryAfter != 0 {
		t.Fatalf("5 rows against burst 4 = %+v, want permanent too-large", d)
	}
	// Low pays double: 3 rows cost 6, above the 4-token capacity.
	d = c.Admit("a", Low, 3)
	if d.OK || d.Reason != ReasonTooLarge {
		t.Fatalf("3 low rows against burst 4 = %+v, want too-large", d)
	}
	// The rejections spent nothing: the full burst is still available.
	if d := c.Admit("a", Normal, 4); !d.OK {
		t.Fatalf("full-burst spend after too-large rejections: %+v", d)
	}
	// High may overdraw one burst, so its ceiling is 2×burst — 8 rows can
	// be admitted (by waiting, or here from a fresh bucket), 9 never can.
	if d := c.Admit("b", High, 8); !d.OK {
		t.Fatalf("8 high rows against burst 4 rejected: %+v", d)
	}
	d = c.Admit("c", High, 9)
	if d.OK || d.Reason != ReasonTooLarge {
		t.Fatalf("9 high rows against burst 4 = %+v, want too-large", d)
	}
	if m := c.Metrics(); m.TooLarge != 3 {
		t.Errorf("TooLarge = %d, want 3", m.TooLarge)
	}
}

// Refund restores shed rows' tokens, capped at burst, so a client
// resubmitting work the engine never did does not pay quota twice.
func TestRefund(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 10, Now: now.Now})
	if d := c.Admit("a", Normal, 10); !d.OK {
		t.Fatalf("burst spend rejected: %+v", d)
	}
	// The engine shed 6 of the 10 rows: the refund makes them spendable.
	c.Refund("a", Normal, 6)
	if d := c.Admit("a", Normal, 6); !d.OK {
		t.Fatalf("refunded rows rejected on resubmission: %+v", d)
	}
	if d := c.Admit("a", Normal, 1); d.OK {
		t.Fatal("refund credited more than the shed rows")
	}
	// A refund never fills past burst.
	c.Refund("a", Normal, 100)
	if d := c.Admit("a", Normal, 10); !d.OK {
		t.Fatalf("burst spend after oversized refund rejected: %+v", d)
	}
	if d := c.Admit("a", Normal, 1); d.OK {
		t.Fatal("oversized refund filled past burst")
	}
	// Unknown tenants (evicted buckets) and disabled quotas are no-ops.
	c.Refund("ghost", Normal, 5)
	if n := c.Tenants(); n != 1 {
		t.Errorf("refund created a bucket: %d tenants, want 1", n)
	}
	New(Options{}).Refund("x", Normal, 5)
	if m := c.Metrics(); m.RefundedRows != 106 {
		t.Errorf("RefundedRows = %d, want 106", m.RefundedRows)
	}
}

// The tenant table is bounded; the least recently seen bucket is evicted.
func TestTenantEviction(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 5, MaxTenants: 3, Now: now.Now})
	for i := 0; i < 3; i++ {
		c.Admit(fmt.Sprintf("t%d", i), Normal, 1)
		now.Advance(time.Millisecond)
	}
	c.Admit("t3", Normal, 1) // evicts t0, the stalest
	if n := c.Tenants(); n != 3 {
		t.Fatalf("tenants = %d, want 3 after eviction", n)
	}
	if m := c.Metrics(); m.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.Evictions)
	}
	// t0 returns with a fresh (full) bucket — the cost of bounding state.
	if d := c.Admit("t0", Normal, 5); !d.OK {
		t.Fatalf("re-added tenant rejected: %+v", d)
	}
}

// Metrics render under the netpowerprop_admit_* namespace.
func TestAdmitMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 2, Now: now.Now, Registry: reg})
	c.Admit("a", Normal, 2)
	c.Admit("a", Normal, 2)
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`netpowerprop_admit_allowed_total{class="normal"} 1`,
		`netpowerprop_admit_quota_rejected_total{class="normal"} 1`,
		"netpowerprop_admit_tenants 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// Concurrent admits on one tenant never oversell the bucket.
func TestAdmitConcurrent(t *testing.T) {
	now := newFakeNow()
	c := New(Options{RatePerSec: 1, Burst: 100, Now: now.Now})
	var wg sync.WaitGroup
	var admitted atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if c.Admit("hot", Normal, 1).OK {
					admitted.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.load(); got != 100 {
		t.Fatalf("admitted %d rows from a 100-token bucket", got)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
