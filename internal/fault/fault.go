// Package fault is the deterministic fault-injection layer for the
// simulators: link flaps, permanent link and switch failures, "stuck
// asleep" wake misses for power-gated/EEE links, and slow or failed OCS
// reconfigurations. Faults are described as a Trace of timestamped events
// — built explicitly or drawn from a seeded RNG (Generate) — and compiled
// into a Timeline of epochs with constant dead-link sets, which
// internal/netsim consumes to reroute flows and reduce solver capacities.
// Everything in this package is deterministic for a fixed seed: the same
// trace compiles to the same timeline on every run, which is what keeps
// seeded fault scenarios bit-reproducible across Run/RunParallel.
package fault

import (
	"fmt"
	"slices"

	"netpowerprop/internal/units"
)

// Kind classifies a fault event.
type Kind int

const (
	// KindLinkDown takes a link out of service at the event time (the
	// start of a flap, or forever if no matching KindLinkUp follows).
	KindLinkDown Kind = iota
	// KindLinkUp returns a link to service.
	KindLinkUp
	// KindSwitchDown fails a switch: every incident link goes down.
	KindSwitchDown
	// KindSwitchUp recovers a switch and its incident links.
	KindSwitchUp
	// KindWakeStuck is a link wake that missed its deadline: the link was
	// due up at At-Extra but only comes up at At. State-wise it is a
	// KindLinkUp at At; the kind is kept distinct so reports can count
	// missed wake deadlines (the §4 power-gating/EEE failure mode).
	KindWakeStuck
	// KindReconfigSlow annotates a slow OCS reconfiguration: Extra is the
	// added latency. No direct state change; recovery events derived from
	// the reconfiguration already carry the delay.
	KindReconfigSlow
	// KindReconfigFail annotates a failed OCS reconfiguration attempt that
	// had to be retried. No direct state change.
	KindReconfigFail
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindSwitchDown:
		return "switch-down"
	case KindSwitchUp:
		return "switch-up"
	case KindWakeStuck:
		return "wake-stuck"
	case KindReconfigSlow:
		return "reconfig-slow"
	case KindReconfigFail:
		return "reconfig-fail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timestamped fault. Target is a link ID for link events and
// a switch node ID for switch events. Extra carries kind-specific latency
// (how late a stuck wake was, how long a slow reconfiguration took).
type Event struct {
	At     units.Seconds
	Kind   Kind
	Target int
	Extra  units.Seconds
}

// Trace is an ordered sequence of fault events. The zero value is an empty
// trace ready to use. Traces are value-buildable and deterministic: events
// sort by (time, insertion order), so two identically-built traces compile
// to identical timelines.
type Trace struct {
	events []Event
	seq    []int // insertion order, for a stable sort among equal times
	sorted bool
}

// Add appends an event.
func (t *Trace) Add(e Event) {
	t.events = append(t.events, e)
	t.seq = append(t.seq, len(t.seq))
	t.sorted = false
}

// LinkDown schedules a link outage starting at the given time.
func (t *Trace) LinkDown(at units.Seconds, link int) {
	t.Add(Event{At: at, Kind: KindLinkDown, Target: link})
}

// LinkUp schedules a link recovery.
func (t *Trace) LinkUp(at units.Seconds, link int) {
	t.Add(Event{At: at, Kind: KindLinkUp, Target: link})
}

// Flap schedules a transient outage: down at `at`, back up after `repair`.
func (t *Trace) Flap(at units.Seconds, link int, repair units.Seconds) {
	t.LinkDown(at, link)
	t.LinkUp(at+repair, link)
}

// FailLink schedules a permanent link failure (no recovery).
func (t *Trace) FailLink(at units.Seconds, link int) { t.LinkDown(at, link) }

// SwitchDown schedules a switch outage (all incident links down).
func (t *Trace) SwitchDown(at units.Seconds, sw int) {
	t.Add(Event{At: at, Kind: KindSwitchDown, Target: sw})
}

// SwitchUp schedules a switch recovery.
func (t *Trace) SwitchUp(at units.Seconds, sw int) {
	t.Add(Event{At: at, Kind: KindSwitchUp, Target: sw})
}

// FailSwitch schedules a permanent switch failure.
func (t *Trace) FailSwitch(at units.Seconds, sw int) { t.SwitchDown(at, sw) }

// WakeStuck records that a link due up at `deadline` misses it by `extra`:
// the link actually comes up at deadline+extra.
func (t *Trace) WakeStuck(deadline units.Seconds, link int, extra units.Seconds) {
	t.Add(Event{At: deadline + extra, Kind: KindWakeStuck, Target: link, Extra: extra})
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.events) }

// sort orders events by (time, insertion order) in place.
func (t *Trace) sort() {
	if t.sorted {
		return
	}
	idx := make([]int, len(t.events))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		ta, tb := t.events[a].At, t.events[b].At
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		default:
			return t.seq[a] - t.seq[b]
		}
	})
	ev := make([]Event, len(t.events))
	for i, j := range idx {
		ev[i] = t.events[j]
	}
	t.events = ev
	for i := range t.seq {
		t.seq[i] = i
	}
	t.sorted = true
}

// Events returns the events sorted by (time, insertion order). The
// returned slice is owned by the trace; do not mutate it.
func (t *Trace) Events() []Event {
	t.sort()
	return t.events
}

// Merge appends every event of other into t (other is unchanged).
func (t *Trace) Merge(other *Trace) {
	for _, e := range other.Events() {
		t.Add(e)
	}
}

// Clone returns an independent copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{}
	for _, e := range t.Events() {
		c.Add(e)
	}
	return c
}

// Validate checks event sanity against a topology size: non-negative
// times, link targets within [0, numLinks), switch targets valid per the
// incident function.
func (t *Trace) Validate(numLinks int, incident func(sw int) []int) error {
	for i, e := range t.Events() {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative time %v", i, e.At)
		}
		switch e.Kind {
		case KindLinkDown, KindLinkUp, KindWakeStuck:
			if e.Target < 0 || e.Target >= numLinks {
				return fmt.Errorf("fault: event %d targets unknown link %d", i, e.Target)
			}
		case KindSwitchDown, KindSwitchUp:
			if incident == nil {
				return fmt.Errorf("fault: event %d targets switch %d but no topology given", i, e.Target)
			}
			if len(incident(e.Target)) == 0 {
				return fmt.Errorf("fault: event %d targets switch %d with no incident links", i, e.Target)
			}
		case KindReconfigSlow, KindReconfigFail:
			// Annotations: no target constraints.
		default:
			return fmt.Errorf("fault: event %d has unknown kind %v", i, e.Kind)
		}
	}
	return nil
}
