package fault

import (
	"fmt"
	"math"
	"math/rand/v2"

	"netpowerprop/internal/units"
)

// GenConfig parameterizes the seeded fault generator.
type GenConfig struct {
	// Horizon bounds event times: every primary failure starts within
	// [0, Horizon). Repairs may land beyond it (and are then dropped at
	// compile time).
	Horizon units.Seconds
	// Links are the candidate link IDs for flaps and permanent failures.
	Links []int
	// Flaps is the number of transient link outages to draw.
	Flaps int
	// MTTR is the mean repair time of a flap (exponentially distributed).
	MTTR units.Seconds
	// PermanentFailures is the number of links (drawn from Links) that go
	// down and stay down.
	PermanentFailures int
	// Switches are candidate switch node IDs for switch failures.
	Switches []int
	// SwitchFailures is the number of permanent switch failures to draw.
	SwitchFailures int
	// WakeStuckProb is the probability that a flap repair — the link
	// "waking" — misses its deadline (the power-gated/EEE sleeping-link
	// failure mode).
	WakeStuckProb float64
	// WakeStuckExtra is the mean extra latency of a stuck wake
	// (exponentially distributed).
	WakeStuckExtra units.Seconds
}

func (c GenConfig) validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("fault: non-positive horizon %v", c.Horizon)
	}
	if (c.Flaps > 0 || c.PermanentFailures > 0) && len(c.Links) == 0 {
		return fmt.Errorf("fault: link failures requested but no candidate links")
	}
	if c.SwitchFailures > 0 && len(c.Switches) == 0 {
		return fmt.Errorf("fault: switch failures requested but no candidate switches")
	}
	if c.Flaps > 0 && c.MTTR <= 0 {
		return fmt.Errorf("fault: flaps need a positive MTTR, have %v", c.MTTR)
	}
	if c.WakeStuckProb < 0 || c.WakeStuckProb > 1 {
		return fmt.Errorf("fault: wake-stuck probability %v outside [0,1]", c.WakeStuckProb)
	}
	if c.WakeStuckProb > 0 && c.WakeStuckExtra <= 0 {
		return fmt.Errorf("fault: wake-stuck extra latency must be positive, have %v", c.WakeStuckExtra)
	}
	return nil
}

// rng returns the deterministic generator for a seed. PCG is seeded from
// the caller's seed alone, so the same seed always yields the same trace.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// expDraw samples an exponential with the given mean via inverse CDF, so
// the distribution is fully determined by this package (no dependence on
// the standard library's ziggurat tables).
func expDraw(r *rand.Rand, mean units.Seconds) units.Seconds {
	u := r.Float64()
	return units.Seconds(-float64(mean) * math.Log(1-u))
}

// Generate draws a fault trace from a seeded RNG: transient link flaps
// (uniform start times, exponential repair), permanent link and switch
// failures (uniform times), and stuck wakes (each flap repair misses its
// deadline with WakeStuckProb by an exponential extra latency). The draw
// order is fixed, so a given (config, seed) pair always produces the same
// trace.
func Generate(cfg GenConfig, seed uint64) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng(seed)
	tr := &Trace{}
	for i := 0; i < cfg.Flaps; i++ {
		link := cfg.Links[r.IntN(len(cfg.Links))]
		at := units.Seconds(r.Float64()) * cfg.Horizon
		repair := expDraw(r, cfg.MTTR)
		stuck := cfg.WakeStuckProb > 0 && r.Float64() < cfg.WakeStuckProb
		tr.LinkDown(at, link)
		if stuck {
			tr.WakeStuck(at+repair, link, expDraw(r, cfg.WakeStuckExtra))
		} else {
			tr.LinkUp(at+repair, link)
		}
	}
	for i := 0; i < cfg.PermanentFailures; i++ {
		link := cfg.Links[r.IntN(len(cfg.Links))]
		tr.FailLink(units.Seconds(r.Float64())*cfg.Horizon, link)
	}
	for i := 0; i < cfg.SwitchFailures; i++ {
		sw := cfg.Switches[r.IntN(len(cfg.Switches))]
		tr.FailSwitch(units.Seconds(r.Float64())*cfg.Horizon, sw)
	}
	return tr, nil
}

// ReconfigModel draws OCS reconfiguration latencies with injected slow and
// failed attempts — the §4.2 failure mode where waking a powered-down part
// of the fabric takes longer than budgeted (or needs retries).
type ReconfigModel struct {
	// Base is the nominal reconfiguration latency.
	Base units.Seconds
	// SlowProb is the probability an attempt is slow; a slow attempt takes
	// Base*SlowFactor instead of Base.
	SlowProb   float64
	SlowFactor float64
	// FailProb is the probability an attempt fails outright and must be
	// retried (each retry doubles the accumulated delay's base).
	FailProb float64
	// MaxRetries bounds failed attempts (default 3 when zero).
	MaxRetries int
}

// Validate checks the model's parameters.
func (m ReconfigModel) Validate() error {
	if m.Base <= 0 {
		return fmt.Errorf("fault: reconfig base latency must be positive, have %v", m.Base)
	}
	if m.SlowProb < 0 || m.SlowProb > 1 {
		return fmt.Errorf("fault: reconfig slow probability %v outside [0,1]", m.SlowProb)
	}
	if m.SlowProb > 0 && m.SlowFactor < 1 {
		return fmt.Errorf("fault: reconfig slow factor %v must be >= 1", m.SlowFactor)
	}
	if m.FailProb < 0 || m.FailProb >= 1 {
		return fmt.Errorf("fault: reconfig fail probability %v outside [0,1)", m.FailProb)
	}
	return nil
}

// ReconfigOutcome is one sampled reconfiguration.
type ReconfigOutcome struct {
	// Delay is the total time until the reconfiguration completed.
	Delay units.Seconds
	// Slow counts slow attempts, Failed counts failed (retried) attempts.
	Slow, Failed int
}

// Sample draws one reconfiguration outcome from the model using the given
// RNG. Failed attempts retry with doubled base latency, bounded by
// MaxRetries; the final attempt always succeeds (the fabric eventually
// reconfigures, just late).
func (m ReconfigModel) Sample(r *rand.Rand) ReconfigOutcome {
	maxRetries := m.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	var out ReconfigOutcome
	base := m.Base
	for {
		attempt := base
		if m.SlowProb > 0 && r.Float64() < m.SlowProb {
			attempt = units.Seconds(float64(base) * m.SlowFactor)
			out.Slow++
		}
		out.Delay += attempt
		if out.Failed >= maxRetries || m.FailProb == 0 || r.Float64() >= m.FailProb {
			return out
		}
		out.Failed++
		base *= 2
	}
}

// NewRand exposes the package's deterministic seeded RNG so scenario code
// drawing reconfiguration outcomes shares one generator construction.
func NewRand(seed uint64) *rand.Rand { return rng(seed) }
