package fault

import (
	"fmt"
	"sort"

	"netpowerprop/internal/units"
)

// Timeline is a compiled fault trace: the horizon split into epochs, each
// with a constant set of dead links. Epoch e covers
// [Starts[e], Starts[e+1]) (the last runs to the horizon). Dead[e][l]
// reports whether link l is out of service during epoch e; link outages
// are reference-counted, so a link failed by both a flap and its switch
// stays down until both recover.
type Timeline struct {
	Starts []units.Seconds
	Dead   [][]bool
	// DeadCount[e] is the number of dead links during epoch e, so callers
	// can skip fault handling entirely for clean epochs.
	DeadCount []int
	// Events is the number of trace events that fell within the horizon.
	Events int
	// MissedWakes counts KindWakeStuck events within the horizon — links
	// that were due up earlier but woke late.
	MissedWakes int
}

// NumEpochs returns the number of epochs (always >= 1).
func (tl *Timeline) NumEpochs() int { return len(tl.Starts) }

// EpochAt returns the index of the epoch containing time x.
func (tl *Timeline) EpochAt(x units.Seconds) int {
	// First epoch with Start > x, minus one.
	i := sort.Search(len(tl.Starts), func(i int) bool { return tl.Starts[i] > x })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Compile flattens a trace into a timeline over [0, horizon). numLinks
// sizes the dead-link sets; incident maps a switch node ID to its link IDs
// (required only when the trace contains switch events). Events at or
// beyond the horizon are dropped — they cannot affect the simulated span.
func Compile(tr *Trace, horizon units.Seconds, numLinks int, incident func(sw int) []int) (*Timeline, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("fault: non-positive horizon %v", horizon)
	}
	if err := tr.Validate(numLinks, incident); err != nil {
		return nil, err
	}
	depth := make([]int, numLinks) // outage reference count per link
	tl := &Timeline{}
	snapshot := func(at units.Seconds) {
		dead := make([]bool, numLinks)
		n := 0
		for l, d := range depth {
			if d > 0 {
				dead[l] = true
				n++
			}
		}
		// Only open a new epoch if the dead set actually changed.
		if len(tl.Starts) > 0 {
			last := tl.Dead[len(tl.Dead)-1]
			same := true
			for l := range dead {
				if dead[l] != last[l] {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		tl.Starts = append(tl.Starts, at)
		tl.Dead = append(tl.Dead, dead)
		tl.DeadCount = append(tl.DeadCount, n)
	}

	apply := func(e Event) {
		var links []int
		var delta int
		switch e.Kind {
		case KindLinkDown:
			links, delta = []int{e.Target}, 1
		case KindLinkUp, KindWakeStuck:
			links, delta = []int{e.Target}, -1
		case KindSwitchDown:
			links, delta = incident(e.Target), 1
		case KindSwitchUp:
			links, delta = incident(e.Target), -1
		default:
			return // annotation-only kinds
		}
		for _, l := range links {
			depth[l] += delta
			if depth[l] < 0 {
				// An unmatched recovery (e.g. a wake for a link that was
				// never taken down in this trace) clamps at zero: the link
				// is simply up.
				depth[l] = 0
			}
		}
	}

	events := tr.Events()
	i := 0
	// Fold every t<=0 event into the initial state.
	for ; i < len(events) && events[i].At <= 0; i++ {
		tl.note(events[i])
		apply(events[i])
	}
	snapshot(0)
	for ; i < len(events); i++ {
		e := events[i]
		if e.At >= horizon {
			break
		}
		tl.note(e)
		apply(e)
		// Apply every event sharing this timestamp before snapshotting.
		for i+1 < len(events) && events[i+1].At == e.At {
			i++
			tl.note(events[i])
			apply(events[i])
		}
		snapshot(e.At)
	}
	return tl, nil
}

// note counts an in-horizon event into the timeline's report fields.
func (tl *Timeline) note(e Event) {
	tl.Events++
	if e.Kind == KindWakeStuck {
		tl.MissedWakes++
	}
}
