package fault

import (
	"reflect"
	"testing"

	"netpowerprop/internal/sim"
	"netpowerprop/internal/units"
)

func TestCompileFlap(t *testing.T) {
	tr := &Trace{}
	tr.Flap(2, 1, 3) // link 1 down [2,5)
	tl, err := Compile(tr, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStarts := []units.Seconds{0, 2, 5}
	if !reflect.DeepEqual(tl.Starts, wantStarts) {
		t.Fatalf("starts = %v, want %v", tl.Starts, wantStarts)
	}
	if tl.Dead[0][1] || !tl.Dead[1][1] || tl.Dead[2][1] {
		t.Fatalf("dead sets wrong: %v", tl.Dead)
	}
	if tl.DeadCount[0] != 0 || tl.DeadCount[1] != 1 || tl.DeadCount[2] != 0 {
		t.Fatalf("dead counts = %v", tl.DeadCount)
	}
	if tl.Events != 2 {
		t.Fatalf("events = %d, want 2", tl.Events)
	}
}

func TestCompileEpochLookup(t *testing.T) {
	tr := &Trace{}
	tr.Flap(2, 0, 3)
	tl, err := Compile(tr, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   units.Seconds
		want int
	}{{0, 0}, {1.9, 0}, {2, 1}, {4.9, 1}, {5, 2}, {9, 2}} {
		if got := tl.EpochAt(tc.at); got != tc.want {
			t.Errorf("EpochAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

// A link failed by both a flap and its switch must stay down until both
// recover (outages are reference-counted).
func TestCompileOverlapDepth(t *testing.T) {
	incident := func(sw int) []int {
		if sw == 7 {
			return []int{0, 1}
		}
		return nil
	}
	tr := &Trace{}
	tr.LinkDown(1, 0)
	tr.SwitchDown(2, 7) // links 0 and 1 down
	tr.LinkUp(3, 0)     // link 0 still down: switch 7 holds it
	tr.SwitchUp(4, 7)   // now everything recovers
	tl, err := Compile(tr, 10, 2, incident)
	if err != nil {
		t.Fatal(err)
	}
	type state struct {
		at     units.Seconds
		l0, l1 bool
	}
	for _, tc := range []state{{1.5, true, false}, {2.5, true, true}, {3.5, true, true}, {4.5, false, false}} {
		e := tl.EpochAt(tc.at)
		if tl.Dead[e][0] != tc.l0 || tl.Dead[e][1] != tc.l1 {
			t.Errorf("at %v: dead = (%v,%v), want (%v,%v)", tc.at, tl.Dead[e][0], tl.Dead[e][1], tc.l0, tc.l1)
		}
	}
}

// Events at t<=0 (e.g. power-gated links expressed as down-at-zero) fold
// into epoch 0; events at or beyond the horizon are dropped.
func TestCompileBoundaries(t *testing.T) {
	tr := &Trace{}
	tr.LinkDown(0, 2)
	tr.LinkUp(15, 2) // beyond the horizon
	tl, err := Compile(tr, 10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumEpochs() != 1 || !tl.Dead[0][2] {
		t.Fatalf("want one epoch with link 2 dead, got starts=%v dead=%v", tl.Starts, tl.Dead)
	}
	if tl.Events != 1 {
		t.Fatalf("events = %d, want 1 (recovery beyond horizon dropped)", tl.Events)
	}
}

// An unmatched recovery is clamped: the link is simply up.
func TestCompileUnmatchedUp(t *testing.T) {
	tr := &Trace{}
	tr.LinkUp(1, 0)
	tr.LinkDown(2, 0)
	tl, err := Compile(tr, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Dead[tl.EpochAt(1.5)][0] {
		t.Fatal("unmatched up must not take the link down")
	}
	if !tl.Dead[tl.EpochAt(2.5)][0] {
		t.Fatal("later down must still apply")
	}
}

func TestCompileWakeStuck(t *testing.T) {
	tr := &Trace{}
	tr.LinkDown(1, 0)
	tr.WakeStuck(3, 0, 0.5) // due up at 3, actually up at 3.5
	tl, err := Compile(tr, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Dead[tl.EpochAt(3.2)][0] {
		t.Fatal("link must still be down past its missed wake deadline")
	}
	if tl.Dead[tl.EpochAt(3.6)][0] {
		t.Fatal("link must be up after the stuck wake completes")
	}
	if tl.MissedWakes != 1 {
		t.Fatalf("missed wakes = %d, want 1", tl.MissedWakes)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := &Trace{}
	bad.LinkDown(1, 99)
	if _, err := Compile(bad, 10, 4, nil); err == nil {
		t.Error("out-of-range link accepted")
	}
	neg := &Trace{}
	neg.Add(Event{At: -1, Kind: KindLinkDown, Target: 0})
	if _, err := Compile(neg, 10, 4, nil); err == nil {
		t.Error("negative event time accepted")
	}
	sw := &Trace{}
	sw.SwitchDown(1, 3)
	if _, err := Compile(sw, 10, 4, nil); err == nil {
		t.Error("switch event without topology accepted")
	}
	if _, err := Compile(&Trace{}, 0, 4, nil); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Horizon: 10, Links: []int{0, 1, 2, 3}, Flaps: 20, MTTR: 0.5,
		PermanentFailures: 2, Switches: []int{10, 11}, SwitchFailures: 1,
		WakeStuckProb: 0.3, WakeStuckExtra: 1,
	}
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical traces")
	}
	// Every primary failure starts within the horizon; targets are valid.
	downs := 0
	for _, e := range a.Events() {
		switch e.Kind {
		case KindLinkDown, KindSwitchDown:
			downs++
			if e.At < 0 || e.At >= cfg.Horizon {
				t.Errorf("failure at %v outside [0,%v)", e.At, cfg.Horizon)
			}
		}
	}
	if want := cfg.Flaps + cfg.PermanentFailures + cfg.SwitchFailures; downs != want {
		t.Errorf("downs = %d, want %d", downs, want)
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, cfg := range []GenConfig{
		{Horizon: 0},
		{Horizon: 10, Flaps: 1},                  // no links
		{Horizon: 10, Links: []int{0}, Flaps: 1}, // no MTTR
		{Horizon: 10, SwitchFailures: 1},         // no switches
		{Horizon: 10, Links: []int{0}, Flaps: 1, MTTR: 1, WakeStuckProb: 2},   // bad prob
		{Horizon: 10, Links: []int{0}, Flaps: 1, MTTR: 1, WakeStuckProb: 0.5}, // no extra
	} {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestReconfigModel(t *testing.T) {
	m := ReconfigModel{Base: 0.1, SlowProb: 0.5, SlowFactor: 10, FailProb: 0.3}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		oa, ob := m.Sample(a), m.Sample(b)
		if oa != ob {
			t.Fatalf("sample %d: %+v != %+v", i, oa, ob)
		}
		if oa.Delay < m.Base {
			t.Fatalf("delay %v below base %v", oa.Delay, m.Base)
		}
	}
	// With injections disabled the delay is exactly the base.
	clean := ReconfigModel{Base: 0.25}
	if out := clean.Sample(NewRand(1)); out.Delay != 0.25 || out.Slow != 0 || out.Failed != 0 {
		t.Fatalf("clean sample = %+v", out)
	}
	for _, bad := range []ReconfigModel{
		{Base: 0},
		{Base: 1, SlowProb: 2},
		{Base: 1, SlowProb: 0.5, SlowFactor: 0.5},
		{Base: 1, FailProb: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("model %+v accepted", bad)
		}
	}
}

// Storm replays a trace onto the discrete-event kernel in time order, and
// canceling the returned timers stops the remainder of the storm.
func TestStormReplayAndCancel(t *testing.T) {
	tr := &Trace{}
	tr.Flap(1, 3, 2)
	tr.FailSwitch(4, 9)
	var got []Event
	var eng sim.Engine
	timers := Storm(&eng, tr, func(e *sim.Engine, ev Event) {
		if e.Now() != ev.At {
			t.Errorf("event %v delivered at %v", ev, e.Now())
		}
		got = append(got, ev)
	})
	if len(timers) != 3 {
		t.Fatalf("timers = %d, want 3", len(timers))
	}
	timers[2].Cancel() // drop the switch failure
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	if got[0].Kind != KindLinkDown || got[1].Kind != KindLinkUp {
		t.Fatalf("events out of order: %v", got)
	}
}
