package fault

import (
	"netpowerprop/internal/sim"
)

// Storm replays a fault trace onto a discrete-event engine: every event is
// scheduled at its trace time and delivered to the handler with the engine
// clock set. The returned timers let a caller cancel the remainder of the
// storm (e.g. when a simulated component shuts down mid-run) — exercising
// exactly the Timer/free-list interactions an event-driven simulator sees
// under fault injection.
func Storm(eng *sim.Engine, tr *Trace, h func(e *sim.Engine, ev Event)) []sim.Timer {
	events := tr.Events()
	timers := make([]sim.Timer, 0, len(events))
	for _, ev := range events {
		ev := ev
		timers = append(timers, eng.Schedule(ev.At, func(e *sim.Engine) { h(e, ev) }))
	}
	return timers
}
