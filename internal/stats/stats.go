// Package stats provides the small numerical toolbox the analysis needs:
// linear interpolation, monotone bracketing/bisection root finding, a
// golden-section maximizer for the fixed-power-budget optimizer, and basic
// series summaries for simulator output.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Lerp linearly interpolates between (x0,y0) and (x1,y1) at x. When x0==x1
// it returns y0.
func Lerp(x0, y0, x1, y1, x float64) float64 {
	if x1 == x0 {
		return y0
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// ErrNoBracket is returned when a root finder cannot bracket a sign change.
var ErrNoBracket = errors.New("stats: no sign change in bracket")

// Bisect finds x in [lo, hi] with f(x) ≈ 0 for a continuous f whose sign
// differs at the endpoints. tol bounds the interval width at termination.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if flo*fhi > 0 {
		return 0, fmt.Errorf("%w: f(%v)=%v, f(%v)=%v", ErrNoBracket, lo, flo, hi, fhi)
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return lo + (hi-lo)/2, nil
}

// MaximizeGolden finds the x in [lo, hi] maximizing a unimodal f via
// golden-section search, to within tol on x.
func MaximizeGolden(f func(float64) float64, lo, hi, tol float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < 400 && b-a > tol; i++ {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// MaximizeInt maximizes f over the integers in [lo, hi] by golden-section
// on the relaxation followed by a local integer scan. f need only be
// quasi-concave for the result to be exact; otherwise it is a good local
// maximum. Returns the argmax and the maximum.
func MaximizeInt(f func(int) float64, lo, hi int) (int, float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo <= 64 {
		return scanInt(f, lo, hi)
	}
	x := MaximizeGolden(func(x float64) float64 { return f(int(math.Round(x))) },
		float64(lo), float64(hi), 1)
	center := int(math.Round(x))
	scanLo := center - 32
	scanHi := center + 32
	if scanLo < lo {
		scanLo = lo
	}
	if scanHi > hi {
		scanHi = hi
	}
	return scanInt(f, scanLo, scanHi)
}

func scanInt(f func(int) float64, lo, hi int) (int, float64) {
	best, bestV := lo, f(lo)
	for x := lo + 1; x <= hi; x++ {
		if v := f(x); v > bestV {
			best, bestV = x, v
		}
	}
	return best, bestV
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P95, P99 float64
	Sum           float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample using linear interpolation between order statistics.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	p = Clamp(p, 0, 1)
	pos := p * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0,1]. The zero value is unseeded; the first Update seeds it.
type EWMA struct {
	Alpha  float64
	value  float64
	seeded bool
}

// Update folds a sample into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.seeded {
		e.value = x
		e.seeded = true
		return x
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.5
	}
	e.value = a*x + (1-a)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether any sample has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }
