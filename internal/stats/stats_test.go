package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLerp(t *testing.T) {
	tests := []struct{ x0, y0, x1, y1, x, want float64 }{
		{0, 0, 1, 10, 0.5, 5},
		{0, 0, 1, 10, 0, 0},
		{0, 0, 1, 10, 1, 10},
		{0, 0, 1, 10, 2, 20},   // extrapolation
		{0, 0, 1, 10, -1, -10}, // extrapolation below
		{5, 7, 5, 9, 5, 7},     // degenerate segment returns y0
	}
	for _, tt := range tests {
		if got := Lerp(tt.x0, tt.y0, tt.x1, tt.y1, tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Lerp(...%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestBisect(t *testing.T) {
	// Root of x^2 - 2 in [0, 2] is sqrt(2).
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("Bisect = %v, want sqrt(2)", root)
	}
	// Reversed bounds still work.
	root, err = Bisect(func(x float64) float64 { return x - 1 }, 3, 0, 1e-10)
	if err != nil || math.Abs(root-1) > 1e-9 {
		t.Errorf("Bisect reversed = %v, err=%v", root, err)
	}
	// Endpoint root.
	root, err = Bisect(func(x float64) float64 { return x }, 0, 1, 1e-10)
	if err != nil || root != 0 {
		t.Errorf("Bisect endpoint = %v, err=%v", root, err)
	}
	// No bracket.
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-10); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestMaximizeGolden(t *testing.T) {
	// Max of -(x-3)^2 on [0, 10] is at 3.
	x := MaximizeGolden(func(x float64) float64 { return -(x - 3) * (x - 3) }, 0, 10, 1e-9)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("MaximizeGolden = %v, want 3", x)
	}
	// Reversed bounds.
	x = MaximizeGolden(func(x float64) float64 { return -(x - 3) * (x - 3) }, 10, 0, 1e-9)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("MaximizeGolden reversed = %v, want 3", x)
	}
}

func TestMaximizeInt(t *testing.T) {
	f := func(x int) float64 { return -float64(x-42) * float64(x-42) }
	got, v := MaximizeInt(f, 0, 1000000)
	if got != 42 || v != 0 {
		t.Errorf("MaximizeInt = (%d, %v), want (42, 0)", got, v)
	}
	// Small range scan.
	got, _ = MaximizeInt(f, 40, 45)
	if got != 42 {
		t.Errorf("MaximizeInt small = %d, want 42", got)
	}
	// Reversed bounds.
	got, _ = MaximizeInt(f, 45, 40)
	if got != 42 {
		t.Errorf("MaximizeInt reversed = %d, want 42", got)
	}
	// Max at boundary.
	inc := func(x int) float64 { return float64(x) }
	got, _ = MaximizeInt(inc, 0, 100000)
	if got != 100000 {
		t.Errorf("MaximizeInt boundary = %d, want 100000", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("Summarize basic fields: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2.5)", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Stddev != 0 {
		t.Errorf("single-sample summary: %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.5, 40}, {-1, 10},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Seeded() {
		t.Error("fresh EWMA should not be seeded")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update seeds: got %v", got)
	}
	if got := e.Update(20); math.Abs(got-15) > 1e-12 {
		t.Errorf("second update = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Errorf("Value = %v", e.Value())
	}
	// Out-of-range alpha falls back to 0.5 rather than corrupting state.
	bad := EWMA{Alpha: 7}
	bad.Update(10)
	if got := bad.Update(20); math.Abs(got-15) > 1e-12 {
		t.Errorf("fallback alpha update = %v, want 15", got)
	}
}

// Property: Lerp at the endpoints returns the endpoint values exactly, and
// interior points lie between them for monotone segments.
func TestLerpBounded(t *testing.T) {
	f := func(y0, y1, tRaw float64) bool {
		y0 = math.Mod(y0, 1e6)
		y1 = math.Mod(y1, 1e6)
		tt := math.Abs(math.Mod(tRaw, 1.0))
		got := Lerp(0, y0, 1, y1, tt)
		lo, hi := math.Min(y0, y1), math.Max(y0, y1)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize respects Min <= P50 <= Max and Mean within [Min, Max].
func TestSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			xs[i] = math.Mod(xs[i], 1e9)
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.P50+1e-9 && s.P50 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.P50 <= s.P95+1e-9 && s.P95 <= s.P99+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
