package eee_test

import (
	"fmt"
	"log"

	"netpowerprop/internal/eee"
	"netpowerprop/internal/units"
)

// Simulate runs 802.3az LPI over a lone frame on an otherwise idle link:
// near-maximal savings, at the cost of the wake latency.
func ExampleSimulate() {
	params := eee.DefaultParams(10*units.Gbps, 10*units.Watt)
	params.CoalesceTimer = 0 // wake immediately on the first frame
	res, err := eee.Simulate(params, []eee.Packet{{Arrival: 0.5, Bits: 12000}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("savings: %.0f%%\n", res.Savings*100)
	fmt.Printf("added delay: %.2f us (the wake transition)\n", float64(res.MeanDelay)*1e6)
	// Output:
	// savings: 90%
	// added delay: 4.48 us (the wake transition)
}
