// Package eee models Energy Efficient Ethernet (IEEE 802.3az) — the
// historical link-sleeping approach the paper revisits (§1, §4): a link
// enters Low Power Idle (LPI) when it has nothing to send, pays sleep and
// wake transition times around every active period, and optionally
// coalesces frames to amortize those transitions. The simulator takes a
// packet arrival sequence and reports energy (vs. an always-on link) and
// the latency the sleeping adds — the classic energy/latency trade-off
// that made EEE lose its appeal at high speeds.
package eee

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netpowerprop/internal/units"
)

// Params configures one EEE link.
type Params struct {
	// Capacity is the link speed.
	Capacity units.Bandwidth
	// ActivePower is the PHY power while transmitting or transitioning.
	ActivePower units.Power
	// LPIPower is the PHY power in Low Power Idle (~10% of active in the
	// 802.3az design).
	LPIPower units.Power
	// SleepTime (Ts) is the active-to-LPI transition duration.
	SleepTime units.Seconds
	// WakeTime (Tw) is the LPI-to-active transition duration.
	WakeTime units.Seconds
	// CoalesceTimer holds the first buffered frame at most this long
	// before forcing a wake (0 disables coalescing: wake immediately).
	CoalesceTimer units.Seconds
	// CoalesceCount wakes early once this many frames are buffered
	// (<=1 disables count-triggered coalescing).
	CoalesceCount int
	// BufferFrames bounds the wake-buffer; frames beyond it are dropped
	// (0 means unlimited).
	BufferFrames int
}

// DefaultParams returns 802.3az-flavored parameters for a link of the
// given speed and PHY active power: microsecond-scale transitions and
// LPI at 10% of active power.
func DefaultParams(capacity units.Bandwidth, active units.Power) Params {
	return Params{
		Capacity:      capacity,
		ActivePower:   active,
		LPIPower:      units.Power(0.1 * float64(active)),
		SleepTime:     2.88e-6,
		WakeTime:      4.48e-6,
		CoalesceTimer: 12e-6,
		CoalesceCount: 32,
		BufferFrames:  1024,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Capacity <= 0 {
		return fmt.Errorf("eee: capacity %v must be positive", p.Capacity)
	}
	if p.ActivePower < 0 || p.LPIPower < 0 {
		return fmt.Errorf("eee: negative power (active %v, lpi %v)", p.ActivePower, p.LPIPower)
	}
	if p.LPIPower > p.ActivePower {
		return fmt.Errorf("eee: LPI power %v above active power %v", p.LPIPower, p.ActivePower)
	}
	if p.SleepTime < 0 || p.WakeTime < 0 || p.CoalesceTimer < 0 {
		return fmt.Errorf("eee: negative transition or coalesce time")
	}
	if p.BufferFrames < 0 {
		return fmt.Errorf("eee: negative buffer bound %d", p.BufferFrames)
	}
	return nil
}

// Packet is one frame arriving at the link.
type Packet struct {
	Arrival units.Seconds
	Bits    float64
}

// Result summarizes a simulation.
type Result struct {
	// Horizon is the simulated span (last departure or last arrival).
	Horizon units.Seconds
	// Energy is the EEE link's energy; Baseline is an always-active link
	// over the same horizon.
	Energy   units.Energy
	Baseline units.Energy
	// Savings is 1 − Energy/Baseline.
	Savings float64
	// Delivered and Dropped count frames.
	Delivered int
	Dropped   int
	// MeanDelay and MaxDelay are the queueing+wake delays added versus an
	// always-on link (transmission time excluded).
	MeanDelay units.Seconds
	MaxDelay  units.Seconds
	// LPITime is the total time spent in Low Power Idle.
	LPITime units.Seconds
}

// Simulate runs the LPI state machine over a packet sequence (sorted by
// arrival; Simulate sorts a copy if needed).
func Simulate(p Params, packets []Packet) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if len(packets) == 0 {
		return Result{}, fmt.Errorf("eee: no packets")
	}
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Arrival < pkts[j].Arrival })
	for i, pk := range pkts {
		if pk.Arrival < 0 || pk.Bits <= 0 {
			return Result{}, fmt.Errorf("eee: packet %d invalid (arrival %v, bits %v)", i, pk.Arrival, pk.Bits)
		}
	}

	var (
		res        Result
		activeTime units.Seconds // time at ActivePower (tx + transitions)
		totalDelay float64
		// linkFree is when the link finished its last transmission.
		linkFree units.Seconds
	)

	i := 0
	n := len(pkts)
	for i < n {
		// Batch collection: the link is in LPI; the first frame starts the
		// coalescing window.
		first := pkts[i].Arrival
		wakeAt := first
		if p.CoalesceTimer > 0 {
			wakeAt = first + p.CoalesceTimer
		}
		j := i + 1
		for j < n && pkts[j].Arrival <= wakeAt {
			if p.CoalesceCount > 1 && j-i+1 >= p.CoalesceCount {
				// Threshold reached: wake as soon as this frame arrives.
				wakeAt = pkts[j].Arrival
				j++
				break
			}
			j++
		}
		// Transmission can begin after the wake transition.
		ready := wakeAt + p.WakeTime
		txStart := ready
		buffered := 0
		// Transmit the batch and any frames arriving while active (FIFO).
		for i < n && (i < j || pkts[i].Arrival <= linkFree) {
			pk := pkts[i]
			start := txStart
			if pk.Arrival > start {
				start = pk.Arrival
			}
			if linkFree > start {
				start = linkFree
			}
			// Buffer occupancy check: frames waiting between arrival and
			// service. Approximate as batch position for the wake batch.
			if p.BufferFrames > 0 && i < j {
				buffered++
				if buffered > p.BufferFrames {
					res.Dropped++
					i++
					continue
				}
			}
			tx := units.Seconds(pk.Bits / float64(p.Capacity))
			finish := start + tx
			delay := float64(start - pk.Arrival)
			totalDelay += delay
			if units.Seconds(delay) > res.MaxDelay {
				res.MaxDelay = units.Seconds(delay)
			}
			res.Delivered++
			linkFree = finish
			i++
			if i == j && i < n && pkts[i].Arrival <= linkFree {
				// Extend the active period: frames arriving during
				// transmission are served without re-sleeping.
				j = i + 1
			}
		}
		// Active span: wake transition start through last bit, plus the
		// sleep transition back to LPI.
		activeTime += (linkFree - wakeAt) + p.WakeTime + p.SleepTime
		// If the next frame arrives during the sleep transition, 802.3az
		// completes the sleep and wakes again; the state machine above
		// charges that wake separately, which is the conservative choice.
	}

	horizon := linkFree + p.SleepTime
	if last := pkts[n-1].Arrival; last > horizon {
		horizon = last
	}
	res.Horizon = horizon
	lpi := horizon - activeTime
	if lpi < 0 {
		lpi = 0
		activeTime = horizon
	}
	res.LPITime = lpi
	res.Energy = units.EnergyOver(p.ActivePower, activeTime) + units.EnergyOver(p.LPIPower, lpi)
	res.Baseline = units.EnergyOver(p.ActivePower, horizon)
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	if res.Delivered > 0 {
		res.MeanDelay = units.Seconds(totalDelay / float64(res.Delivered))
	}
	return res, nil
}

// PoissonPackets generates a deterministic Poisson arrival sequence at the
// given utilization of the link capacity with fixed-size frames, for
// reproducible experiments. It is shorthand for PoissonPacketsRand with a
// fresh rand.New(rand.NewSource(seed)).
func PoissonPackets(seed int64, capacity units.Bandwidth, utilization float64, frameBits float64, horizon units.Seconds) ([]Packet, error) {
	return PoissonPacketsRand(rand.New(rand.NewSource(seed)), capacity, utilization, frameBits, horizon)
}

// PoissonPacketsRand is PoissonPackets with an injected random source. The
// package never touches the global math/rand state: callers own the *rand.Rand
// and therefore the reproducibility of the workload — two calls with
// identically seeded sources yield identical arrival sequences, which is what
// makes EEE scenario rows replayable under the jobs retry/resume path.
func PoissonPacketsRand(rng *rand.Rand, capacity units.Bandwidth, utilization float64, frameBits float64, horizon units.Seconds) ([]Packet, error) {
	if rng == nil {
		return nil, fmt.Errorf("eee: nil random source")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("eee: capacity %v must be positive", capacity)
	}
	if utilization <= 0 || utilization > 1 {
		return nil, fmt.Errorf("eee: utilization %v outside (0,1]", utilization)
	}
	if frameBits <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("eee: frame bits %v and horizon %v must be positive", frameBits, horizon)
	}
	rate := utilization * float64(capacity) / frameBits // frames per second
	var out []Packet
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= float64(horizon) {
			break
		}
		out = append(out, Packet{Arrival: units.Seconds(t), Bits: frameBits})
	}
	if len(out) == 0 {
		// Degenerate draw (tiny horizon): place one frame mid-horizon so
		// callers always get a valid workload.
		out = append(out, Packet{Arrival: horizon / 2, Bits: frameBits})
	}
	return out, nil
}

// BurstPackets generates the ML-style on/off pattern: bursts of
// back-to-back frames at line rate during each communication window.
func BurstPackets(capacity units.Bandwidth, frameBits float64, period, window units.Seconds, bursts int) ([]Packet, error) {
	if capacity <= 0 || frameBits <= 0 {
		return nil, fmt.Errorf("eee: capacity and frame size must be positive")
	}
	if window <= 0 || window > period {
		return nil, fmt.Errorf("eee: window %v must be in (0, period %v]", window, period)
	}
	if bursts < 1 {
		return nil, fmt.Errorf("eee: bursts %d must be positive", bursts)
	}
	perBurst := int(math.Max(1, math.Floor(float64(window)*float64(capacity)/frameBits)))
	gap := units.Seconds(frameBits / float64(capacity))
	var out []Packet
	for b := 0; b < bursts; b++ {
		start := units.Seconds(b)*period + (period - window)
		for k := 0; k < perBurst; k++ {
			out = append(out, Packet{Arrival: start + units.Seconds(k)*gap, Bits: frameBits})
		}
	}
	return out, nil
}
