package eee

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func params() Params {
	return DefaultParams(10*units.Gbps, 10*units.Watt)
}

func TestDefaultParams(t *testing.T) {
	p := params()
	if p.LPIPower != 1*units.Watt {
		t.Errorf("LPI power = %v, want 1 W (10%%)", p.LPIPower)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Capacity = 0 },
		func(p *Params) { p.ActivePower = -1 },
		func(p *Params) { p.LPIPower = p.ActivePower + 1 },
		func(p *Params) { p.SleepTime = -1 },
		func(p *Params) { p.WakeTime = -1 },
		func(p *Params) { p.CoalesceTimer = -1 },
		func(p *Params) { p.BufferFrames = -1 },
	}
	for i, mutate := range cases {
		p := params()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSimulateSinglePacket(t *testing.T) {
	p := params()
	p.CoalesceTimer = 0                  // wake immediately
	pkt := Packet{Arrival: 1, Bits: 1e4} // 1 us transmission at 10G
	res, err := Simulate(p, []Packet{pkt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Dropped != 0 {
		t.Fatalf("delivered/dropped = %d/%d", res.Delivered, res.Dropped)
	}
	// Delay is exactly the wake time.
	if math.Abs(float64(res.MeanDelay-p.WakeTime)) > 1e-12 {
		t.Errorf("delay = %v, want wake time %v", res.MeanDelay, p.WakeTime)
	}
	// Link slept from 0 to arrival: big savings on a mostly idle second.
	if res.Savings < 0.85 {
		t.Errorf("savings = %v, want > 0.85 on an idle link", res.Savings)
	}
	if res.LPITime <= 0 || res.LPITime >= res.Horizon {
		t.Errorf("LPI time = %v of %v", res.LPITime, res.Horizon)
	}
}

func TestSimulateCoalescingAmortizesWakes(t *testing.T) {
	p := params()
	p.CoalesceTimer = 50e-6
	// 50 frames in 10 clusters 500 us apart; frames within a cluster are
	// 8 us apart: far enough that an immediate-wake link re-sleeps between
	// them (wake 4.48 us + tx 1 us < 8 us), close enough that one 50 us
	// coalescing window batches the whole cluster into a single wake.
	var pkts []Packet
	for c := 0; c < 10; c++ {
		base := units.Seconds(float64(c) * 500e-6)
		for k := 0; k < 5; k++ {
			pkts = append(pkts, Packet{Arrival: base + units.Seconds(float64(k)*8e-6), Bits: 1e4})
		}
	}
	withCoalesce, err := Simulate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	noCoalesce := p
	noCoalesce.CoalesceTimer = 0
	noCoalesce.CoalesceCount = 0
	without, err := Simulate(noCoalesce, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if withCoalesce.Delivered != 50 || without.Delivered != 50 {
		t.Fatalf("delivered = %d/%d, want 50", withCoalesce.Delivered, without.Delivered)
	}
	// Coalescing adds delay but saves energy versus immediate wake.
	if withCoalesce.MeanDelay <= without.MeanDelay {
		t.Errorf("coalescing should add delay: %v vs %v", withCoalesce.MeanDelay, without.MeanDelay)
	}
	if withCoalesce.Energy >= without.Energy {
		t.Errorf("coalescing should save energy here: %v vs %v", withCoalesce.Energy, without.Energy)
	}
}

func TestSimulateBackToBackStaysActive(t *testing.T) {
	p := params()
	p.CoalesceTimer = 0
	// Second frame arrives while the first transmits: no second wake, so
	// its only delay is queueing behind frame 1.
	tx := units.Seconds(1e4 / 10e9)
	pkts := []Packet{
		{Arrival: 0, Bits: 1e4},
		{Arrival: p.WakeTime + tx/2, Bits: 1e4},
	}
	res, err := Simulate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	// Frame 2's delay = remaining half transmission of frame 1 (no wake).
	wantDelay2 := float64(tx) / 2
	// Mean = (wake + wantDelay2)/2.
	wantMean := (float64(p.WakeTime) + wantDelay2) / 2
	if math.Abs(float64(res.MeanDelay)-wantMean) > 1e-12 {
		t.Errorf("mean delay = %v, want %v", res.MeanDelay, wantMean)
	}
}

func TestSimulateSavingsScaleWithIdleness(t *testing.T) {
	p := params()
	// Same 10 frames over a short horizon vs. stretched 100x: the
	// stretched trace idles more and saves more.
	var dense, sparse []Packet
	for k := 0; k < 10; k++ {
		dense = append(dense, Packet{Arrival: units.Seconds(float64(k) * 1e-5), Bits: 1e4})
		sparse = append(sparse, Packet{Arrival: units.Seconds(float64(k) * 1e-3), Bits: 1e4})
	}
	dr, err := Simulate(p, dense)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(p, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Savings <= dr.Savings {
		t.Errorf("sparse savings %v should exceed dense %v", sr.Savings, dr.Savings)
	}
}

func TestSimulateUnsortedInput(t *testing.T) {
	p := params()
	pkts := []Packet{
		{Arrival: 5e-3, Bits: 1e4},
		{Arrival: 1e-3, Bits: 1e4},
	}
	res, err := Simulate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("unsorted input mishandled: %+v", res)
	}
}

func TestSimulateErrors(t *testing.T) {
	p := params()
	if _, err := Simulate(p, nil); err == nil {
		t.Error("no packets should fail")
	}
	if _, err := Simulate(p, []Packet{{Arrival: -1, Bits: 1}}); err == nil {
		t.Error("negative arrival should fail")
	}
	if _, err := Simulate(p, []Packet{{Arrival: 0, Bits: 0}}); err == nil {
		t.Error("zero-bit packet should fail")
	}
	bad := p
	bad.Capacity = 0
	if _, err := Simulate(bad, []Packet{{Arrival: 0, Bits: 1}}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestBufferDrops(t *testing.T) {
	p := params()
	p.BufferFrames = 4
	p.CoalesceCount = 0
	p.CoalesceTimer = 1e-3 // long window buffers many frames
	var pkts []Packet
	for k := 0; k < 10; k++ {
		pkts = append(pkts, Packet{Arrival: units.Seconds(float64(k) * 1e-6), Bits: 1e4})
	}
	res, err := Simulate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("expected drops with a 4-frame buffer and 10-frame batch")
	}
	if res.Delivered+res.Dropped != 10 {
		t.Errorf("delivered %d + dropped %d != 10", res.Delivered, res.Dropped)
	}
}

func TestPoissonPacketsDeterministic(t *testing.T) {
	a, err := PoissonPackets(42, 10*units.Gbps, 0.3, 12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PoissonPackets(42, 10*units.Gbps, 0.3, 12000, 0.01)
	if len(a) != len(b) {
		t.Fatalf("same seed different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different packets")
		}
	}
	c, _ := PoissonPackets(43, 10*units.Gbps, 0.3, 12000, 0.01)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
	// Load sanity: ~30% utilization means ~0.3*10e9*0.01 bits total.
	var bits float64
	for _, pk := range a {
		bits += pk.Bits
	}
	want := 0.3 * 10e9 * 0.01
	if bits < want*0.7 || bits > want*1.3 {
		t.Errorf("offered bits = %v, want ~%v", bits, want)
	}
}

// TestPoissonPacketsRandInjectedSource: the injected-source variant is the
// single generator — the seed shorthand matches it exactly, identically
// seeded sources reproduce the trace, and the package never touches global
// math/rand state.
func TestPoissonPacketsRandInjectedSource(t *testing.T) {
	shorthand, err := PoissonPackets(42, 10*units.Gbps, 0.3, 12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := PoissonPacketsRand(rand.New(rand.NewSource(42)), 10*units.Gbps, 0.3, 12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(shorthand) != len(injected) {
		t.Fatalf("seed shorthand and injected source diverge: %d vs %d packets", len(shorthand), len(injected))
	}
	for i := range shorthand {
		if shorthand[i] != injected[i] {
			t.Fatalf("packet %d differs between seed shorthand and injected source", i)
		}
	}
	// A caller-owned source is consumed in place: two draws from the same
	// rng continue the stream rather than restarting it.
	rng := rand.New(rand.NewSource(7))
	first, _ := PoissonPacketsRand(rng, 10*units.Gbps, 0.3, 12000, 0.01)
	second, _ := PoissonPacketsRand(rng, 10*units.Gbps, 0.3, 12000, 0.01)
	if len(first) == len(second) {
		same := true
		for i := range first {
			if first[i] != second[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("consecutive draws from one source repeated the trace; source not consumed")
		}
	}
	if _, err := PoissonPacketsRand(nil, 10*units.Gbps, 0.3, 12000, 0.01); err == nil {
		t.Error("nil source should fail")
	}
}

func TestPoissonPacketsErrors(t *testing.T) {
	if _, err := PoissonPackets(1, 0, 0.5, 1e4, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := PoissonPackets(1, 10*units.Gbps, 0, 1e4, 1); err == nil {
		t.Error("zero utilization should fail")
	}
	if _, err := PoissonPackets(1, 10*units.Gbps, 1.5, 1e4, 1); err == nil {
		t.Error("excess utilization should fail")
	}
	if _, err := PoissonPackets(1, 10*units.Gbps, 0.5, 0, 1); err == nil {
		t.Error("zero frame should fail")
	}
	if _, err := PoissonPackets(1, 10*units.Gbps, 0.5, 1e4, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestBurstPackets(t *testing.T) {
	pkts, err := BurstPackets(10*units.Gbps, 1e4, 1, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0.1 s at 10G / 1e4 bits = 1e5 frames per burst, 3 bursts.
	if len(pkts) != 3e5 {
		t.Fatalf("frames = %d, want 300000", len(pkts))
	}
	// First burst starts at period - window = 0.9.
	if math.Abs(float64(pkts[0].Arrival)-0.9) > 1e-9 {
		t.Errorf("first arrival = %v, want 0.9", pkts[0].Arrival)
	}
	if _, err := BurstPackets(0, 1e4, 1, 0.1, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := BurstPackets(10*units.Gbps, 1e4, 1, 2, 1); err == nil {
		t.Error("window > period should fail")
	}
	if _, err := BurstPackets(10*units.Gbps, 1e4, 1, 0.1, 0); err == nil {
		t.Error("zero bursts should fail")
	}
}

// Property: energy never exceeds the always-on baseline, savings are in
// [0,1), and all frames are accounted for.
func TestSimulateInvariants(t *testing.T) {
	f := func(seed int64, utilRaw uint8) bool {
		util := 0.05 + float64(utilRaw%90)/100
		pkts, err := PoissonPackets(seed, 10*units.Gbps, util, 12000, 0.002)
		if err != nil {
			return false
		}
		res, err := Simulate(params(), pkts)
		if err != nil {
			return false
		}
		if res.Energy > res.Baseline+1e-9 {
			return false
		}
		if res.Savings < 0 || res.Savings >= 1 {
			return false
		}
		if res.Delivered+res.Dropped != len(pkts) {
			return false
		}
		return res.MeanDelay >= 0 && res.MaxDelay >= res.MeanDelay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: savings decrease as utilization rises — EEE helps idle links,
// not busy ones (the reason it lost its appeal on fast, busy links).
func TestSavingsDecreaseWithLoad(t *testing.T) {
	prev := 2.0
	for _, util := range []float64{0.05, 0.2, 0.5, 0.9} {
		pkts, err := PoissonPackets(7, 10*units.Gbps, util, 12000, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(params(), pkts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Savings >= prev {
			t.Errorf("savings at util %v = %v, not below %v", util, res.Savings, prev)
		}
		prev = res.Savings
	}
}
