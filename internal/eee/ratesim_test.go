package eee

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func rateParams() RateParams {
	return DefaultRateParams(10*units.Gbps, 10*units.Watt)
}

func TestDefaultRateParams(t *testing.T) {
	p := rateParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default rate params invalid: %v", err)
	}
	if len(p.Levels) != 4 || p.Levels[3].Speed != 10*units.Gbps {
		t.Errorf("levels = %+v", p.Levels)
	}
	// Power scales sublinearly: the 1 Gbps level draws 30%, not 10%.
	if p.Levels[0].Power != 3*units.Watt {
		t.Errorf("lowest level power = %v, want 3 W", p.Levels[0].Power)
	}
}

func TestRateParamsValidation(t *testing.T) {
	cases := []func(*RateParams){
		func(p *RateParams) { p.Levels = nil },
		func(p *RateParams) { p.Levels[0].Speed = 0 },
		func(p *RateParams) { p.Levels[0].Power = -1 },
		func(p *RateParams) { p.Levels[1].Speed = p.Levels[0].Speed },
		func(p *RateParams) { p.Levels[1].Power = p.Levels[0].Power - 1 },
		func(p *RateParams) { p.DecisionInterval = 0 },
		func(p *RateParams) { p.SwitchTime = -1 },
		func(p *RateParams) { p.Headroom = 0.5 },
	}
	for i, mutate := range cases {
		p := rateParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSimulateRateLowLoadDownRates(t *testing.T) {
	p := rateParams()
	pkts, err := PoissonPackets(3, 10*units.Gbps, 0.05, 12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateRate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// 5% load fits the 1 Gbps level most of the time: ~65-70% savings.
	if res.Savings < 0.5 {
		t.Errorf("low-load savings = %v, want > 0.5", res.Savings)
	}
	if res.MeanSpeed >= 5*units.Gbps {
		t.Errorf("mean speed = %v, expected heavy down-rating", res.MeanSpeed)
	}
	if res.Energy > res.Baseline {
		t.Error("energy exceeds baseline")
	}
}

func TestSimulateRateHighLoadStaysFast(t *testing.T) {
	p := rateParams()
	pkts, err := PoissonPackets(3, 10*units.Gbps, 0.9, 12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateRate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// 90% x 1.2 headroom needs the full rate: little saving.
	if res.Savings > 0.10 {
		t.Errorf("high-load savings = %v, want < 0.10", res.Savings)
	}
	if res.MeanSpeed < 9*units.Gbps {
		t.Errorf("mean speed = %v, want near line rate", res.MeanSpeed)
	}
}

func TestSimulateRateSavingsMonotoneInLoad(t *testing.T) {
	p := rateParams()
	prev := 2.0
	for _, util := range []float64{0.05, 0.2, 0.5, 0.9} {
		pkts, err := PoissonPackets(7, 10*units.Gbps, util, 12000, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateRate(p, pkts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Savings >= prev {
			t.Errorf("savings at util %v = %v, not below %v", util, res.Savings, prev)
		}
		prev = res.Savings
	}
}

// TestSleepingVsRateAdaptation reproduces the NSDI'08 comparison the paper
// cites: on a bursty low-utilization trace, sleeping (EEE) saves more than
// rate adaptation, because idle gaps dominate and LPI power (10%) undercuts
// even the lowest operating rate (30%).
func TestSleepingVsRateAdaptation(t *testing.T) {
	lpi := DefaultParams(10*units.Gbps, 10*units.Watt)
	rate := rateParams()
	pkts, err := BurstPackets(10*units.Gbps, 12000, 1e-3, 1e-4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sleepRes, err := Simulate(lpi, pkts)
	if err != nil {
		t.Fatal(err)
	}
	rateRes, err := SimulateRate(rate, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if sleepRes.Savings <= rateRes.Savings {
		t.Errorf("on bursty 10%%-duty traffic, sleeping (%v) should beat rate adaptation (%v)",
			sleepRes.Savings, rateRes.Savings)
	}
}

func TestSimulateRateSwitchesCounted(t *testing.T) {
	p := rateParams()
	p.DecisionInterval = 1e-4
	// Alternate a busy and an idle interval: the controller oscillates.
	var pkts []Packet
	for k := 0; k < 10; k += 2 {
		base := units.Seconds(float64(k) * 1e-4)
		for j := 0; j < 50; j++ {
			pkts = append(pkts, Packet{Arrival: base + units.Seconds(float64(j)*2e-6), Bits: 12000})
		}
	}
	res, err := SimulateRate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RateSwitches < 4 {
		t.Errorf("rate switches = %d, expected oscillation", res.RateSwitches)
	}
	if res.MeanDelay < 0 || res.MaxDelay < res.MeanDelay {
		t.Errorf("delay stats inconsistent: %v / %v", res.MeanDelay, res.MaxDelay)
	}
}

func TestSimulateRateErrors(t *testing.T) {
	p := rateParams()
	if _, err := SimulateRate(p, nil); err == nil {
		t.Error("no packets accepted")
	}
	if _, err := SimulateRate(p, []Packet{{Arrival: -1, Bits: 1}}); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := SimulateRate(p, []Packet{{Arrival: 0, Bits: 0}}); err == nil {
		t.Error("zero bits accepted")
	}
	bad := p
	bad.Headroom = 0
	if _, err := SimulateRate(bad, []Packet{{Arrival: 0, Bits: 1}}); err == nil {
		t.Error("invalid params accepted")
	}
}

// Property: energy never exceeds baseline; savings in [0,1); delays
// non-negative.
func TestSimulateRateInvariants(t *testing.T) {
	f := func(seed int64, utilRaw uint8) bool {
		util := 0.05 + float64(utilRaw%90)/100
		pkts, err := PoissonPackets(seed, 10*units.Gbps, util, 12000, 0.002)
		if err != nil {
			return false
		}
		res, err := SimulateRate(rateParams(), pkts)
		if err != nil {
			return false
		}
		return res.Energy <= res.Baseline+1e-9 &&
			res.Savings >= 0 && res.Savings < 1 &&
			res.MeanDelay >= 0 && res.MaxDelay >= res.MeanDelay &&
			res.MeanSpeed > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulateRateUnsortedInput(t *testing.T) {
	p := rateParams()
	pkts := []Packet{
		{Arrival: 5e-4, Bits: 12000},
		{Arrival: 1e-4, Bits: 12000},
	}
	res, err := SimulateRate(p, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon <= 0 {
		t.Error("unsorted input mishandled")
	}
	_ = math.Pi
}
