package eee

import (
	"fmt"
	"sort"

	"netpowerprop/internal/units"
)

// This file implements the other half of Nedevschi et al.'s NSDI'08 study
// the paper builds on ("Reducing Network Energy Consumption via Sleeping
// and Rate-Adaptation"): instead of sleeping between packets, the link
// runs at a reduced rate matched to the offered load (§4.3 observes the
// same idea surviving today as interface down-rating, e.g. a 100G port
// configured at 10G). Comparing SimulateRate against Simulate on the same
// packet trace reproduces the classic trade-off: sleeping wins on bursty
// low load, rate adaptation on smooth moderate load.

// SpeedPower is one operating point of a multi-rate PHY.
type SpeedPower struct {
	Speed units.Bandwidth
	Power units.Power
}

// RateParams configures a rate-adaptive link.
type RateParams struct {
	// Levels are the PHY's operating points, ascending by speed. The last
	// level is the full line rate.
	Levels []SpeedPower
	// DecisionInterval is how often the rate controller re-evaluates.
	DecisionInterval units.Seconds
	// SwitchTime stalls the link when changing rate (PHY retraining).
	SwitchTime units.Seconds
	// Headroom multiplies the observed load when picking a rate.
	Headroom float64
}

// DefaultRateParams builds a four-level PHY for the given line rate with
// power scaling sublinearly in speed (mirroring Table 2's NIC curve shape:
// a 10x slower interface draws ~1/3 the power, not 1/10).
func DefaultRateParams(lineRate units.Bandwidth, fullPower units.Power) RateParams {
	return RateParams{
		Levels: []SpeedPower{
			{lineRate / 10, units.Power(0.30 * float64(fullPower))},
			{lineRate / 4, units.Power(0.45 * float64(fullPower))},
			{lineRate / 2, units.Power(0.65 * float64(fullPower))},
			{lineRate, fullPower},
		},
		DecisionInterval: 100e-6,
		SwitchTime:       1e-6,
		Headroom:         1.2,
	}
}

// Validate checks the parameters.
func (p RateParams) Validate() error {
	if len(p.Levels) == 0 {
		return fmt.Errorf("eee: rate adaptation needs at least one level")
	}
	for i, l := range p.Levels {
		if l.Speed <= 0 || l.Power < 0 {
			return fmt.Errorf("eee: level %d invalid (%v, %v)", i, l.Speed, l.Power)
		}
		if i > 0 {
			if l.Speed <= p.Levels[i-1].Speed {
				return fmt.Errorf("eee: level speeds not ascending at %d", i)
			}
			if l.Power < p.Levels[i-1].Power {
				return fmt.Errorf("eee: level power decreasing at %d", i)
			}
		}
	}
	if p.DecisionInterval <= 0 {
		return fmt.Errorf("eee: decision interval %v must be positive", p.DecisionInterval)
	}
	if p.SwitchTime < 0 {
		return fmt.Errorf("eee: negative switch time %v", p.SwitchTime)
	}
	if p.Headroom < 1 {
		return fmt.Errorf("eee: headroom %v must be >= 1", p.Headroom)
	}
	return nil
}

// RateResult summarizes a rate-adaptation run.
type RateResult struct {
	Horizon units.Seconds
	// Energy under rate adaptation; Baseline at full rate throughout.
	Energy   units.Energy
	Baseline units.Energy
	Savings  float64
	// MeanDelay / MaxDelay are queueing+retraining delays added versus an
	// ideal full-rate link (its own transmission time excluded).
	MeanDelay units.Seconds
	MaxDelay  units.Seconds
	// RateSwitches counts PHY retrainings.
	RateSwitches int
	// MeanSpeed is the time-averaged operating speed.
	MeanSpeed units.Bandwidth
}

// SimulateRate runs the rate-adaptive link over a packet trace. In each
// decision interval the controller picks the lowest level whose speed
// covers the previous interval's offered load times the headroom.
func SimulateRate(p RateParams, packets []Packet) (RateResult, error) {
	var res RateResult
	if err := p.Validate(); err != nil {
		return res, err
	}
	if len(packets) == 0 {
		return res, fmt.Errorf("eee: no packets")
	}
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Arrival < pkts[j].Arrival })
	for i, pk := range pkts {
		if pk.Arrival < 0 || pk.Bits <= 0 {
			return res, fmt.Errorf("eee: packet %d invalid (arrival %v, bits %v)", i, pk.Arrival, pk.Bits)
		}
	}

	D := float64(p.DecisionInterval)
	last := float64(pkts[len(pkts)-1].Arrival)
	intervals := int(last/D) + 1

	// Offered bits per interval.
	offered := make([]float64, intervals+1)
	for _, pk := range pkts {
		idx := int(float64(pk.Arrival) / D)
		offered[idx] += pk.Bits
	}

	// Level per interval, from the previous interval's load.
	level := make([]int, intervals+1)
	fullTx := func(bits float64) float64 { return bits / float64(p.Levels[len(p.Levels)-1].Speed) }
	for k := range level {
		if k == 0 {
			level[k] = 0
			continue
		}
		needed := offered[k-1] / D * p.Headroom
		idx := len(p.Levels) - 1
		for i, l := range p.Levels {
			if float64(l.Speed) >= needed {
				idx = i
				break
			}
		}
		level[k] = idx
	}

	// FIFO service with per-interval speed; a rate change stalls the link
	// for SwitchTime at the interval boundary.
	var (
		linkFree   float64
		totalDelay float64
	)
	stallUntil := make([]float64, intervals+1)
	for k := 1; k <= intervals; k++ {
		if level[k] != level[k-1] {
			res.RateSwitches++
			stallUntil[k] = float64(k)*D + float64(p.SwitchTime)
		}
	}
	for _, pk := range pkts {
		start := float64(pk.Arrival)
		if linkFree > start {
			start = linkFree
		}
		k := int(start / D)
		if k > intervals {
			k = intervals
		}
		if stallUntil[k] > start {
			start = stallUntil[k]
		}
		speed := float64(p.Levels[level[k]].Speed)
		finish := start + pk.Bits/speed
		// Delay versus an ideal always-full-rate link serving the same
		// FIFO: approximate the ideal as arrival + full-rate transmission.
		delay := (start - float64(pk.Arrival)) + (pk.Bits/speed - fullTx(pk.Bits))
		if delay < 0 {
			delay = 0
		}
		totalDelay += delay
		if units.Seconds(delay) > res.MaxDelay {
			res.MaxDelay = units.Seconds(delay)
		}
		linkFree = finish
	}

	horizon := linkFree
	if h := float64(intervals+1) * D; h > horizon {
		horizon = h
	}
	res.Horizon = units.Seconds(horizon)
	// Energy: each interval at its level's power (rate-adaptive links do
	// not sleep; they just run slower).
	var energy, speedAcc float64
	for k := 0; float64(k)*D < horizon; k++ {
		idx := intervals
		if k <= intervals {
			idx = k
		}
		d := D
		if rem := horizon - float64(k)*D; rem < d {
			d = rem
		}
		energy += float64(p.Levels[level[idx]].Power) * d
		speedAcc += float64(p.Levels[level[idx]].Speed) * d
	}
	res.Energy = units.Energy(energy)
	res.Baseline = units.EnergyOver(p.Levels[len(p.Levels)-1].Power, res.Horizon)
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	res.MeanDelay = units.Seconds(totalDelay / float64(len(pkts)))
	res.MeanSpeed = units.Bandwidth(speedAcc / horizon)
	return res, nil
}
