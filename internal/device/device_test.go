package device

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

// TestTable1Constants asserts the paper's Table 1 inputs verbatim.
func TestTable1Constants(t *testing.T) {
	if H100MaxPower != 400*units.Watt {
		t.Errorf("H100 max power = %v, want 400 W", H100MaxPower)
	}
	if SwitchMaxPower != 750*units.Watt {
		t.Errorf("switch max power = %v, want 750 W", SwitchMaxPower)
	}
	if GPUUnitMaxPower != 500*units.Watt {
		t.Errorf("GPU unit max power = %v, want 500 W (400 GPU + 100 server share)", GPUUnitMaxPower)
	}
	if SwitchCapacity != 51.2*units.Tbps {
		t.Errorf("switch capacity = %v, want 51.2 Tbps", SwitchCapacity)
	}
}

// TestTable2NIC asserts the paper's Table 2 NIC row verbatim.
func TestTable2NIC(t *testing.T) {
	want := map[float64]float64{100: 8.6, 200: 16.7, 400: 25.4, 800: 38.6, 1600: 58.8}
	for gbps, watts := range want {
		p, err := NICPower(units.Bandwidth(gbps) * units.Gbps)
		if err != nil {
			t.Fatalf("NICPower(%vG): %v", gbps, err)
		}
		if math.Abs(p.Watts()-watts) > 1e-9 {
			t.Errorf("NICPower(%vG) = %v W, want %v W", gbps, p.Watts(), watts)
		}
	}
}

// TestTable2Transceiver asserts the paper's Table 2 transceiver row verbatim.
func TestTable2Transceiver(t *testing.T) {
	want := map[float64]float64{100: 4, 200: 6.5, 400: 10, 800: 16.5, 1600: 27.27}
	for gbps, watts := range want {
		p, err := TransceiverPower(units.Bandwidth(gbps) * units.Gbps)
		if err != nil {
			t.Fatalf("TransceiverPower(%vG): %v", gbps, err)
		}
		if math.Abs(p.Watts()-watts) > 1e-9 {
			t.Errorf("TransceiverPower(%vG) = %v W, want %v W", gbps, p.Watts(), watts)
		}
	}
}

func TestExtrapolationMarkers(t *testing.T) {
	if !IsExtrapolated(800*units.Gbps, ClassNIC) || !IsExtrapolated(1600*units.Gbps, ClassNIC) {
		t.Error("800G and 1600G NIC values should be marked extrapolated")
	}
	if IsExtrapolated(400*units.Gbps, ClassNIC) {
		t.Error("400G NIC value should not be marked extrapolated")
	}
	if !IsExtrapolated(1600*units.Gbps, ClassTransceiver) {
		t.Error("1600G transceiver value should be marked extrapolated")
	}
	if IsExtrapolated(800*units.Gbps, ClassTransceiver) {
		t.Error("800G transceiver value should not be marked extrapolated")
	}
	if IsExtrapolated(400*units.Gbps, ClassGPU) {
		t.Error("non-network classes are never extrapolated")
	}
}

func TestInterpolationBetweenRatedPoints(t *testing.T) {
	// 300G is midway between 200G (16.7) and 400G (25.4): expect 21.05 W.
	p, err := NICPower(300 * units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Watts()-21.05) > 1e-9 {
		t.Errorf("NICPower(300G) = %v W, want 21.05 W", p.Watts())
	}
}

func TestExtrapolationOutsideRange(t *testing.T) {
	// Below 100G: extrapolate from 100/200 pair; 50G -> 8.6 - 0.081*50 = 4.55.
	p, err := NICPower(50 * units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Watts()-4.55) > 1e-9 {
		t.Errorf("NICPower(50G) = %v W, want 4.55 W", p.Watts())
	}
	// Above 1600G: extrapolate from 800/1600 pair.
	p, err = NICPower(3200 * units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	want := 58.8 + (58.8-38.6)/800*1600
	if math.Abs(p.Watts()-want) > 1e-9 {
		t.Errorf("NICPower(3200G) = %v W, want %v W", p.Watts(), want)
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := NICPower(0); err == nil {
		t.Error("NICPower(0) should fail")
	}
	if _, err := TransceiverPower(-1 * units.Gbps); err == nil {
		t.Error("TransceiverPower(-1G) should fail")
	}
}

func TestSwitchPorts(t *testing.T) {
	tests := []struct {
		speed units.Bandwidth
		want  int
	}{
		{100 * units.Gbps, 512},
		{200 * units.Gbps, 256},
		{400 * units.Gbps, 128},
		{800 * units.Gbps, 64},
		{1600 * units.Gbps, 32},
	}
	for _, tt := range tests {
		got, err := SwitchPorts(tt.speed)
		if err != nil {
			t.Fatalf("SwitchPorts(%v): %v", tt.speed, err)
		}
		if got != tt.want {
			t.Errorf("SwitchPorts(%v) = %d, want %d", tt.speed, got, tt.want)
		}
	}
	if _, err := SwitchPorts(0); err == nil {
		t.Error("SwitchPorts(0) should fail")
	}
	if _, err := SwitchPorts(40 * units.Tbps); err == nil {
		t.Error("SwitchPorts above half capacity should fail")
	}
}

func TestSpecs(t *testing.T) {
	if g := GPU(); g.Class != ClassGPU || g.Max != 500*units.Watt {
		t.Errorf("GPU() = %+v", g)
	}
	if s := Switch(); s.Class != ClassSwitch || s.Max != 750*units.Watt {
		t.Errorf("Switch() = %+v", s)
	}
	n, err := NIC(400 * units.Gbps)
	if err != nil || n.Class != ClassNIC || math.Abs(n.Max.Watts()-25.4) > 1e-9 {
		t.Errorf("NIC(400G) = %+v, err=%v", n, err)
	}
	x, err := Transceiver(800 * units.Gbps)
	if err != nil || x.Class != ClassTransceiver || math.Abs(x.Max.Watts()-16.5) > 1e-9 {
		t.Errorf("Transceiver(800G) = %+v, err=%v", x, err)
	}
	if _, err := NIC(0); err == nil {
		t.Error("NIC(0) should fail")
	}
	if _, err := Transceiver(0); err == nil {
		t.Error("Transceiver(0) should fail")
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassGPU:         "GPU&Server",
		ClassSwitch:      "Switches",
		ClassNIC:         "NICs",
		ClassTransceiver: "Transceiver",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class formatting broken: %q", Class(99).String())
	}
	if len(Classes()) != 4 {
		t.Errorf("Classes() should enumerate 4 classes")
	}
}

func TestRatedSpeedsSorted(t *testing.T) {
	speeds := RatedSpeeds()
	if len(speeds) != 5 {
		t.Fatalf("RatedSpeeds() len = %d, want 5", len(speeds))
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] <= speeds[i-1] {
			t.Errorf("RatedSpeeds not ascending at %d: %v", i, speeds)
		}
	}
}

// Property: NIC and transceiver power are monotone non-decreasing in speed
// over the modeled range — faster interfaces never draw less power.
func TestPowerMonotoneInSpeed(t *testing.T) {
	f := func(a, b uint16) bool {
		sa := units.Bandwidth(50+int(a)%3200) * units.Gbps
		sb := units.Bandwidth(50+int(b)%3200) * units.Gbps
		if sa > sb {
			sa, sb = sb, sa
		}
		pa, err1 := NICPower(sa)
		pb, err2 := NICPower(sb)
		ta, err3 := TransceiverPower(sa)
		tb, err4 := TransceiverPower(sb)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return pa <= pb+1e-12 && ta <= tb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interpolated power is bounded by the bracketing table entries.
func TestInterpolationBounded(t *testing.T) {
	f := func(raw uint16) bool {
		s := units.Bandwidth(100+int(raw)%1500) * units.Gbps
		p, err := NICPower(s)
		if err != nil {
			return false
		}
		return p >= 8.6*units.Watt-1e-9 && p <= 58.8*units.Watt+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
