// Package device holds the hardware catalog used by the power model:
// GPUs, servers, switches, NICs, and transceivers, with the max-power
// values published in the paper (Tables 1 and 2) and the paper's linear
// extrapolation rule for interface speeds with no datasheet entry.
package device

import (
	"fmt"
	"sort"

	"netpowerprop/internal/units"
)

// Class identifies the broad category a device belongs to; power breakdowns
// (Fig. 2a) are reported per class.
type Class int

// Device classes, in the order the paper's figures report them.
const (
	ClassGPU Class = iota // GPU plus its share of server overhead
	ClassSwitch
	ClassNIC
	ClassTransceiver
)

// String returns the figure-legend name of the class.
func (c Class) String() string {
	switch c {
	case ClassGPU:
		return "GPU&Server"
	case ClassSwitch:
		return "Switches"
	case ClassNIC:
		return "NICs"
	case ClassTransceiver:
		return "Transceiver"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all device classes in report order.
func Classes() []Class {
	return []Class{ClassGPU, ClassSwitch, ClassNIC, ClassTransceiver}
}

// Spec describes one device model: its class, a label, and its maximum
// power draw. Idle power is derived from proportionality by the power
// package, not stored here, because the paper treats proportionality as a
// per-scenario knob rather than a device property.
type Spec struct {
	Class Class
	Name  string
	Max   units.Power
}

// Paper constants (Table 1).
const (
	// H100MaxPower is the rated max power of an Nvidia H100 NVL GPU.
	H100MaxPower = 400 * units.Watt
	// ServerOverheadPerGPU is the per-GPU share of the host server's other
	// components (CPUs, RAM, storage, fans): 800 W across 8 GPUs (§2.3.1).
	ServerOverheadPerGPU = 100 * units.Watt
	// GPUUnitMaxPower is the max power attributed to one GPU including its
	// server share: 500 W (§2.3.1).
	GPUUnitMaxPower = H100MaxPower + ServerOverheadPerGPU
	// SwitchMaxPower is the max power of a 51.2 Tbps switch as reported by
	// Alibaba [27] (Table 1).
	SwitchMaxPower = 750 * units.Watt
	// SwitchCapacity is the switching capacity of the modeled switch.
	SwitchCapacity = 51.2 * units.Tbps
)

// Proportionality defaults (§2.3).
const (
	// ComputeProportionality is the power proportionality of modern servers
	// (~85%, Barroso et al. [4]).
	ComputeProportionality = 0.85
	// NetworkProportionality is the paper's baseline network power
	// proportionality (10%, within the 5–20% literature range).
	NetworkProportionality = 0.10
)

// ratedPoint is one datasheet row of Table 2.
type ratedPoint struct {
	speed units.Bandwidth
	power units.Power
	// extrapolated marks values the paper derived by linear extrapolation
	// rather than reading from a datasheet (Table 2 footnote).
	extrapolated bool
}

// Table 2: NIC power (NVIDIA ConnectX-7 datasheet; 800G and 1600G linearly
// extrapolated) and transceiver power (FS.com; 1600G extrapolated).
var (
	nicTable = []ratedPoint{
		{100 * units.Gbps, 8.6 * units.Watt, false},
		{200 * units.Gbps, 16.7 * units.Watt, false},
		{400 * units.Gbps, 25.4 * units.Watt, false},
		{800 * units.Gbps, 38.6 * units.Watt, true},
		{1600 * units.Gbps, 58.8 * units.Watt, true},
	}
	transceiverTable = []ratedPoint{
		{100 * units.Gbps, 4 * units.Watt, false},
		{200 * units.Gbps, 6.5 * units.Watt, false},
		{400 * units.Gbps, 10 * units.Watt, false},
		{800 * units.Gbps, 16.5 * units.Watt, false},
		{1600 * units.Gbps, 27.27 * units.Watt, true},
	}
)

// NICPower returns the max power of a NIC serving the given interface speed.
// Exact Table 2 speeds return the published value; other speeds are linearly
// interpolated/extrapolated from the closest datasheet points, mirroring the
// paper's extrapolation rule (§2.3.2).
func NICPower(speed units.Bandwidth) (units.Power, error) {
	return lookupRated(nicTable, speed, "NIC")
}

// TransceiverPower returns the max power of one short-range optical
// transceiver at the given speed. The paper uses these between switches;
// GPU-to-ToR links are electrical and modeled at 0 W.
func TransceiverPower(speed units.Bandwidth) (units.Power, error) {
	return lookupRated(transceiverTable, speed, "transceiver")
}

// RatedSpeeds lists the interface speeds the paper evaluates, ascending.
func RatedSpeeds() []units.Bandwidth {
	out := make([]units.Bandwidth, len(nicTable))
	for i, p := range nicTable {
		out[i] = p.speed
	}
	return out
}

// IsExtrapolated reports whether the Table 2 value at this exact speed was
// marked as extrapolated in the paper (only meaningful for rated speeds).
func IsExtrapolated(speed units.Bandwidth, class Class) bool {
	var table []ratedPoint
	switch class {
	case ClassNIC:
		table = nicTable
	case ClassTransceiver:
		table = transceiverTable
	default:
		return false
	}
	for _, p := range table {
		if p.speed == speed {
			return p.extrapolated
		}
	}
	return false
}

// lookupRated interpolates within the table, or extrapolates linearly from
// the closest pair when speed lies outside the table's range.
func lookupRated(table []ratedPoint, speed units.Bandwidth, what string) (units.Power, error) {
	if speed <= 0 {
		return 0, fmt.Errorf("%s power: non-positive speed %v", what, speed)
	}
	i := sort.Search(len(table), func(i int) bool { return table[i].speed >= speed })
	if i < len(table) && table[i].speed == speed {
		return table[i].power, nil
	}
	// Pick the bracketing (or closest) pair for linear inter/extrapolation.
	var lo, hi ratedPoint
	switch {
	case i == 0:
		lo, hi = table[0], table[1]
	case i == len(table):
		lo, hi = table[len(table)-2], table[len(table)-1]
	default:
		lo, hi = table[i-1], table[i]
	}
	slope := float64(hi.power-lo.power) / float64(hi.speed-lo.speed)
	p := float64(lo.power) + slope*float64(speed-lo.speed)
	if p < 0 {
		p = 0
	}
	return units.Power(p), nil
}

// GPU returns the spec of one GPU unit (GPU plus server share).
func GPU() Spec {
	return Spec{Class: ClassGPU, Name: "Nvidia H100 (incl. server share)", Max: GPUUnitMaxPower}
}

// Switch returns the spec of the 51.2 Tbps switch.
func Switch() Spec {
	return Spec{Class: ClassSwitch, Name: "51.2 Tbps switch", Max: SwitchMaxPower}
}

// NIC returns the spec of a NIC at the given speed.
func NIC(speed units.Bandwidth) (Spec, error) {
	p, err := NICPower(speed)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Class: ClassNIC, Name: fmt.Sprintf("NIC %s", speed), Max: p}, nil
}

// Transceiver returns the spec of an optical transceiver at the given speed.
func Transceiver(speed units.Bandwidth) (Spec, error) {
	p, err := TransceiverPower(speed)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Class: ClassTransceiver, Name: fmt.Sprintf("Transceiver %s", speed), Max: p}, nil
}

// SwitchPorts returns how many ports a 51.2 Tbps switch exposes at the given
// per-port speed (the radix used to size fat trees, §2.4).
func SwitchPorts(speed units.Bandwidth) (int, error) {
	if speed <= 0 {
		return 0, fmt.Errorf("switch ports: non-positive speed %v", speed)
	}
	n := int(float64(SwitchCapacity) / float64(speed))
	if n < 2 {
		return 0, fmt.Errorf("switch ports: speed %v exceeds half the switch capacity", speed)
	}
	return n, nil
}
