// Package asic models a switching ASIC at the granularity the paper's §4
// mechanisms need: packet pipelines with a fixed port-to-pipeline mapping
// (§4.4's premise), per-port SerDes lanes, shared memory banks, a control
// block, and a fixed remainder. Each component can be power-gated (§4.1)
// and pipelines can be frequency-scaled (§4.3); Power() folds the current
// state into a single draw.
package asic

import (
	"fmt"

	"netpowerprop/internal/device"
	"netpowerprop/internal/units"
)

// Shares splits the ASIC's maximum power across component groups. The
// fractions must sum to 1.
type Shares struct {
	// SerDes is the share drawn by the port SerDes lanes, split evenly
	// across ports. Interface I/O dominates modern switch power, so this
	// is the largest share by default.
	SerDes float64
	// Pipeline is the share drawn by the packet pipelines at full
	// frequency, split evenly across pipelines.
	Pipeline float64
	// Memory is the share drawn by packet-buffer/table memory banks.
	Memory float64
	// Control is the share of the control plane (CPU, management).
	Control float64
	// Fixed is the non-gateable remainder (fans, board, PHY misc).
	Fixed float64
}

// validate checks the fractions form a distribution.
func (s Shares) validate() error {
	for name, v := range map[string]float64{
		"serdes": s.SerDes, "pipeline": s.Pipeline, "memory": s.Memory,
		"control": s.Control, "fixed": s.Fixed,
	} {
		if v < 0 {
			return fmt.Errorf("asic: negative %s share %v", name, v)
		}
	}
	sum := s.SerDes + s.Pipeline + s.Memory + s.Control + s.Fixed
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("asic: shares sum to %v, want 1", sum)
	}
	return nil
}

// DefaultShares reflects the rough consensus breakdown for merchant
// silicon: I/O (SerDes) dominates, then pipelines, then memory.
func DefaultShares() Shares {
	return Shares{SerDes: 0.35, Pipeline: 0.30, Memory: 0.15, Control: 0.10, Fixed: 0.10}
}

// Config sizes an ASIC.
type Config struct {
	Ports     int
	Pipelines int
	// MemoryBanks is the number of independently gateable memory banks.
	MemoryBanks int
	// Max is the ASIC's total maximum power.
	Max units.Power
	// Shares splits Max across components.
	Shares Shares
	// PipelineStaticFraction is the share of a pipeline's power that does
	// not scale with frequency (clock tree, leakage); the rest is dynamic
	// and scales linearly with the frequency setting (§4.3).
	PipelineStaticFraction float64
}

// DefaultConfig models the paper's 51.2 Tbps switch: 128 x 400 G ports,
// 4 pipelines, 8 memory banks, 750 W.
func DefaultConfig() Config {
	return Config{
		Ports:                  128,
		Pipelines:              4,
		MemoryBanks:            8,
		Max:                    device.SwitchMaxPower,
		Shares:                 DefaultShares(),
		PipelineStaticFraction: 0.3,
	}
}

// ASIC is a configured switch chip with mutable power state. Use New; the
// zero value is not usable.
type ASIC struct {
	cfg Config

	portOn []bool
	pipeOn []bool
	// pipeFreq is the per-pipeline frequency setting in (0,1].
	pipeFreq []float64
	bankOn   []bool
	// l3 models the routing (L3) functionality share of each pipeline; a
	// pure L2 deployment can gate it (§4.1's example). It costs
	// L3FractionOfPipeline of each active pipeline's power.
	l3 bool
}

// L3FractionOfPipeline is the pipeline power share attributable to L3
// lookup stages (gated when the switch is configured for pure L2).
const L3FractionOfPipeline = 0.25

// New builds an ASIC with everything powered on at full frequency.
func New(cfg Config) (*ASIC, error) {
	if cfg.Ports < 1 || cfg.Pipelines < 1 || cfg.MemoryBanks < 1 {
		return nil, fmt.Errorf("asic: ports %d, pipelines %d, banks %d must all be positive",
			cfg.Ports, cfg.Pipelines, cfg.MemoryBanks)
	}
	if cfg.Ports%cfg.Pipelines != 0 {
		return nil, fmt.Errorf("asic: %d ports do not divide evenly across %d pipelines",
			cfg.Ports, cfg.Pipelines)
	}
	if cfg.Max <= 0 {
		return nil, fmt.Errorf("asic: max power %v must be positive", cfg.Max)
	}
	if err := cfg.Shares.validate(); err != nil {
		return nil, err
	}
	if cfg.PipelineStaticFraction < 0 || cfg.PipelineStaticFraction > 1 {
		return nil, fmt.Errorf("asic: pipeline static fraction %v outside [0,1]", cfg.PipelineStaticFraction)
	}
	a := &ASIC{
		cfg:      cfg,
		portOn:   make([]bool, cfg.Ports),
		pipeOn:   make([]bool, cfg.Pipelines),
		pipeFreq: make([]float64, cfg.Pipelines),
		bankOn:   make([]bool, cfg.MemoryBanks),
		l3:       true,
	}
	for i := range a.portOn {
		a.portOn[i] = true
	}
	for i := range a.pipeOn {
		a.pipeOn[i] = true
		a.pipeFreq[i] = 1
	}
	for i := range a.bankOn {
		a.bankOn[i] = true
	}
	return a, nil
}

// Config returns the sizing configuration.
func (a *ASIC) Config() Config { return a.cfg }

// PipelineOf returns the pipeline a port is hard-wired to (§4.4: "an
// incoming packet on a given port must be processed by the pipeline this
// port is attached to").
func (a *ASIC) PipelineOf(port int) (int, error) {
	if port < 0 || port >= a.cfg.Ports {
		return 0, fmt.Errorf("asic: port %d outside [0,%d)", port, a.cfg.Ports)
	}
	return port / (a.cfg.Ports / a.cfg.Pipelines), nil
}

// PortsOf lists the ports attached to a pipeline.
func (a *ASIC) PortsOf(pipe int) ([]int, error) {
	if pipe < 0 || pipe >= a.cfg.Pipelines {
		return nil, fmt.Errorf("asic: pipeline %d outside [0,%d)", pipe, a.cfg.Pipelines)
	}
	per := a.cfg.Ports / a.cfg.Pipelines
	out := make([]int, per)
	for i := range out {
		out[i] = pipe*per + i
	}
	return out, nil
}

// SetPort powers a port's SerDes on or off.
func (a *ASIC) SetPort(port int, on bool) error {
	if port < 0 || port >= a.cfg.Ports {
		return fmt.Errorf("asic: port %d outside [0,%d)", port, a.cfg.Ports)
	}
	a.portOn[port] = on
	return nil
}

// PortOn reports a port's SerDes state.
func (a *ASIC) PortOn(port int) bool {
	return port >= 0 && port < a.cfg.Ports && a.portOn[port]
}

// SetPipeline powers a pipeline on or off (§4.4). Turning a pipeline off
// does not touch its ports: the caller decides whether traffic is
// redirected (circuit-switch indirection) or the ports go dark too.
func (a *ASIC) SetPipeline(pipe int, on bool) error {
	if pipe < 0 || pipe >= a.cfg.Pipelines {
		return fmt.Errorf("asic: pipeline %d outside [0,%d)", pipe, a.cfg.Pipelines)
	}
	a.pipeOn[pipe] = on
	return nil
}

// PipelineOn reports a pipeline's state.
func (a *ASIC) PipelineOn(pipe int) bool {
	return pipe >= 0 && pipe < a.cfg.Pipelines && a.pipeOn[pipe]
}

// SetPipelineFreq sets a pipeline's frequency in (0,1] (§4.3 rate
// adaptation). The pipeline must be on to have a meaningful frequency.
func (a *ASIC) SetPipelineFreq(pipe int, f float64) error {
	if pipe < 0 || pipe >= a.cfg.Pipelines {
		return fmt.Errorf("asic: pipeline %d outside [0,%d)", pipe, a.cfg.Pipelines)
	}
	if f <= 0 || f > 1 {
		return fmt.Errorf("asic: frequency %v outside (0,1]", f)
	}
	a.pipeFreq[pipe] = f
	return nil
}

// PipelineFreq returns a pipeline's frequency setting.
func (a *ASIC) PipelineFreq(pipe int) float64 {
	if pipe < 0 || pipe >= a.cfg.Pipelines {
		return 0
	}
	return a.pipeFreq[pipe]
}

// SetMemoryBank powers a memory bank on or off (§4.1: a route-reflector
// client needs a fraction of the FIB memory).
func (a *ASIC) SetMemoryBank(bank int, on bool) error {
	if bank < 0 || bank >= a.cfg.MemoryBanks {
		return fmt.Errorf("asic: bank %d outside [0,%d)", bank, a.cfg.MemoryBanks)
	}
	a.bankOn[bank] = on
	return nil
}

// MemoryBankOn reports a bank's state.
func (a *ASIC) MemoryBankOn(bank int) bool {
	return bank >= 0 && bank < a.cfg.MemoryBanks && a.bankOn[bank]
}

// SetL3 gates the L3 functionality of all pipelines (§4.1: "if the switch
// is only configured for L2 forwarding, it could automatically turn off
// all L3 functionality").
func (a *ASIC) SetL3(on bool) { a.l3 = on }

// L3On reports whether L3 stages are powered.
func (a *ASIC) L3On() bool { return a.l3 }

// Power computes the ASIC's current draw from its component states.
func (a *ASIC) Power() units.Power {
	max := float64(a.cfg.Max)
	sh := a.cfg.Shares

	perPort := max * sh.SerDes / float64(a.cfg.Ports)
	var p float64
	for _, on := range a.portOn {
		if on {
			p += perPort
		}
	}
	perPipe := max * sh.Pipeline / float64(a.cfg.Pipelines)
	static := a.cfg.PipelineStaticFraction
	for i, on := range a.pipeOn {
		if !on {
			continue
		}
		pipe := perPipe * (static + (1-static)*a.pipeFreq[i])
		if !a.l3 {
			pipe *= 1 - L3FractionOfPipeline
		}
		p += pipe
	}
	perBank := max * sh.Memory / float64(a.cfg.MemoryBanks)
	for _, on := range a.bankOn {
		if on {
			p += perBank
		}
	}
	p += max * sh.Control
	p += max * sh.Fixed
	return units.Power(p)
}

// MinPower returns the floor with every gateable component off and one
// pipeline at minimum frequency — the best any §4.1-style static
// optimization can reach without turning the box off entirely.
func (a *ASIC) MinPower() units.Power {
	max := float64(a.cfg.Max)
	sh := a.cfg.Shares
	return units.Power(max * (sh.Control + sh.Fixed))
}

// Clone returns an independent copy of the ASIC and its state, so policies
// can evaluate hypothetical configurations.
func (a *ASIC) Clone() *ASIC {
	cp := &ASIC{cfg: a.cfg, l3: a.l3}
	cp.portOn = append([]bool(nil), a.portOn...)
	cp.pipeOn = append([]bool(nil), a.pipeOn...)
	cp.pipeFreq = append([]float64(nil), a.pipeFreq...)
	cp.bankOn = append([]bool(nil), a.bankOn...)
	return cp
}
