package asic

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func newASIC(t *testing.T) *ASIC {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFullPowerEqualsMax(t *testing.T) {
	a := newASIC(t)
	if got := a.Power(); math.Abs(float64(got-a.Config().Max)) > 1e-6 {
		t.Errorf("full-on power = %v, want %v", got, a.Config().Max)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.Pipelines = 0 },
		func(c *Config) { c.MemoryBanks = 0 },
		func(c *Config) { c.Ports = 127 }, // not divisible by 4 pipelines
		func(c *Config) { c.Max = 0 },
		func(c *Config) { c.Shares.SerDes = -0.1 },
		func(c *Config) { c.Shares.Fixed += 0.5 }, // sum != 1
		func(c *Config) { c.PipelineStaticFraction = 1.5 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSharesDistribution(t *testing.T) {
	s := DefaultShares()
	sum := s.SerDes + s.Pipeline + s.Memory + s.Control + s.Fixed
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("default shares sum to %v", sum)
	}
}

func TestPortPipelineMapping(t *testing.T) {
	a := newASIC(t)
	// 128 ports / 4 pipelines = 32 ports each, contiguous blocks.
	for _, tt := range []struct{ port, pipe int }{
		{0, 0}, {31, 0}, {32, 1}, {127, 3},
	} {
		got, err := a.PipelineOf(tt.port)
		if err != nil || got != tt.pipe {
			t.Errorf("PipelineOf(%d) = %d (%v), want %d", tt.port, got, err, tt.pipe)
		}
	}
	if _, err := a.PipelineOf(-1); err == nil {
		t.Error("negative port should fail")
	}
	if _, err := a.PipelineOf(128); err == nil {
		t.Error("out-of-range port should fail")
	}
	ports, err := a.PortsOf(2)
	if err != nil || len(ports) != 32 || ports[0] != 64 || ports[31] != 95 {
		t.Errorf("PortsOf(2) = %v (%v)", ports, err)
	}
	if _, err := a.PortsOf(4); err == nil {
		t.Error("out-of-range pipeline should fail")
	}
	// Round trip: every port maps to a pipeline that contains it.
	for p := 0; p < 128; p++ {
		pipe, _ := a.PipelineOf(p)
		ports, _ := a.PortsOf(pipe)
		found := false
		for _, q := range ports {
			if q == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("port %d not in its own pipeline %d", p, pipe)
		}
	}
}

func TestPortGatingSavesSerDesShare(t *testing.T) {
	a := newASIC(t)
	full := float64(a.Power())
	// Gate half the ports: saves half the SerDes share.
	for p := 0; p < 64; p++ {
		if err := a.SetPort(p, false); err != nil {
			t.Fatal(err)
		}
	}
	want := full - 0.5*0.35*750
	if got := float64(a.Power()); math.Abs(got-want) > 1e-6 {
		t.Errorf("power after gating 64 ports = %v, want %v", got, want)
	}
	if a.PortOn(0) || !a.PortOn(64) {
		t.Error("port state tracking broken")
	}
	if err := a.SetPort(500, false); err == nil {
		t.Error("out-of-range port should fail")
	}
}

func TestPipelineGating(t *testing.T) {
	a := newASIC(t)
	full := float64(a.Power())
	if err := a.SetPipeline(1, false); err != nil {
		t.Fatal(err)
	}
	want := full - 0.30*750/4
	if got := float64(a.Power()); math.Abs(got-want) > 1e-6 {
		t.Errorf("power after gating one pipeline = %v, want %v", got, want)
	}
	if a.PipelineOn(1) || !a.PipelineOn(0) {
		t.Error("pipeline state tracking broken")
	}
	if err := a.SetPipeline(9, false); err == nil {
		t.Error("out-of-range pipeline should fail")
	}
}

func TestFrequencyScaling(t *testing.T) {
	a := newASIC(t)
	full := float64(a.Power())
	// Halving one pipeline's frequency saves half its dynamic share:
	// perPipe = 56.25 W, dynamic = 0.7 of it, saving = 0.35 * 56.25.
	if err := a.SetPipelineFreq(0, 0.5); err != nil {
		t.Fatal(err)
	}
	want := full - 0.5*0.7*(0.30*750/4)
	if got := float64(a.Power()); math.Abs(got-want) > 1e-6 {
		t.Errorf("power at half frequency = %v, want %v", got, want)
	}
	if got := a.PipelineFreq(0); got != 0.5 {
		t.Errorf("freq = %v", got)
	}
	if a.PipelineFreq(-1) != 0 {
		t.Error("out-of-range freq should be 0")
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := a.SetPipelineFreq(0, bad); err == nil {
			t.Errorf("frequency %v should fail", bad)
		}
	}
	if err := a.SetPipelineFreq(9, 0.5); err == nil {
		t.Error("out-of-range pipeline should fail")
	}
}

func TestMemoryBankGating(t *testing.T) {
	a := newASIC(t)
	full := float64(a.Power())
	// Gate 6 of 8 banks (route-reflector client needing 1/4 of the FIB).
	for b := 2; b < 8; b++ {
		if err := a.SetMemoryBank(b, false); err != nil {
			t.Fatal(err)
		}
	}
	want := full - 6.0/8.0*0.15*750
	if got := float64(a.Power()); math.Abs(got-want) > 1e-6 {
		t.Errorf("power after gating 6 banks = %v, want %v", got, want)
	}
	if !a.MemoryBankOn(0) || a.MemoryBankOn(5) {
		t.Error("bank state tracking broken")
	}
	if err := a.SetMemoryBank(8, false); err == nil {
		t.Error("out-of-range bank should fail")
	}
}

func TestL3Gating(t *testing.T) {
	a := newASIC(t)
	full := float64(a.Power())
	a.SetL3(false)
	want := full - L3FractionOfPipeline*0.30*750
	if got := float64(a.Power()); math.Abs(got-want) > 1e-6 {
		t.Errorf("power with L3 gated = %v, want %v", got, want)
	}
	if a.L3On() {
		t.Error("L3 state tracking broken")
	}
	// L3 gating only applies to pipelines that are on.
	a.SetL3(true)
	for i := 0; i < 4; i++ {
		a.SetPipeline(i, false)
	}
	withL3 := a.Power()
	a.SetL3(false)
	if a.Power() != withL3 {
		t.Error("L3 gating changed power of fully-gated pipelines")
	}
}

func TestMinPower(t *testing.T) {
	a := newASIC(t)
	// Gate everything gateable.
	for p := 0; p < 128; p++ {
		a.SetPort(p, false)
	}
	for i := 0; i < 4; i++ {
		a.SetPipeline(i, false)
	}
	for b := 0; b < 8; b++ {
		a.SetMemoryBank(b, false)
	}
	got := float64(a.Power())
	want := float64(a.MinPower())
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("fully gated power = %v, MinPower = %v", got, want)
	}
	// The default shares leave a 20% floor (control + fixed).
	if math.Abs(want-0.20*750) > 1e-6 {
		t.Errorf("MinPower = %v, want 150 W", want)
	}
}

func TestClone(t *testing.T) {
	a := newASIC(t)
	a.SetPort(0, false)
	a.SetPipelineFreq(1, 0.5)
	cp := a.Clone()
	if cp.Power() != a.Power() {
		t.Error("clone power differs")
	}
	// Mutating the clone must not touch the original.
	cp.SetPort(1, false)
	cp.SetPipeline(2, false)
	if !a.PortOn(1) || !a.PipelineOn(2) {
		t.Error("clone shares state with original")
	}
}

// Property: power is always within [MinPower, Max] whatever the state.
func TestPowerBounded(t *testing.T) {
	f := func(ops []uint16) bool {
		a, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		for _, op := range ops {
			kind := op % 5
			idx := int(op>>3) % 128
			switch kind {
			case 0:
				a.SetPort(idx%128, op&1 == 0)
			case 1:
				a.SetPipeline(idx%4, op&1 == 0)
			case 2:
				a.SetPipelineFreq(idx%4, 0.1+float64(op%900)/1000)
			case 3:
				a.SetMemoryBank(idx%8, op&1 == 0)
			case 4:
				a.SetL3(op&1 == 0)
			}
		}
		p := a.Power()
		return p >= a.MinPower()-units.Power(1e-9) && p <= a.Config().Max+units.Power(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
