package core

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

// paperTable3 holds the paper's published Table 3 (percent savings vs. the
// same-bandwidth 10%-proportional network). Our model is expected to match
// the 400 G row within rounding and the remaining rows in shape and
// approximate magnitude (see EXPERIMENTS.md).
var paperTable3 = map[float64][5]float64{
	// bandwidth Gbps: savings % at prop 10, 20, 50, 85, 100.
	100:  {0.0, 0.3, 1.2, 2.3, 2.7},
	200:  {0.0, 0.6, 2.5, 4.8, 5.7},
	400:  {0.0, 1.2, 4.7, 8.8, 10.6},
	800:  {0.0, 2.2, 8.7, 16.4, 19.7},
	1600: {0.0, 3.9, 15.6, 29.3, 35.1},
}

func computeTable3(t *testing.T) SavingsGrid {
	t.Helper()
	g, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTable3Shape checks structural properties of the grid: zero savings at
// the reference column, monotone increase along both axes.
func TestTable3Shape(t *testing.T) {
	g := computeTable3(t)
	if len(g.Cells) != 5 || len(g.Cells[0]) != 5 {
		t.Fatalf("grid shape = %dx%d, want 5x5", len(g.Cells), len(g.Cells[0]))
	}
	for i := range g.Cells {
		if math.Abs(g.Cells[i][0].Savings) > 1e-12 {
			t.Errorf("row %d reference column savings = %v, want 0", i, g.Cells[i][0].Savings)
		}
		for j := 1; j < len(g.Cells[i]); j++ {
			if g.Cells[i][j].Savings < g.Cells[i][j-1].Savings {
				t.Errorf("row %d not monotone in proportionality at col %d", i, j)
			}
		}
	}
	// Higher bandwidth -> bigger savings potential at every column > ref.
	for j := 1; j < 5; j++ {
		for i := 1; i < 5; i++ {
			if g.Cells[i][j].Savings <= g.Cells[i-1][j].Savings {
				t.Errorf("col %d not monotone in bandwidth at row %d", j, i)
			}
		}
	}
}

// TestTable3Baseline400G asserts the paper's 400 G row within rounding:
// 0.0 / 1.2 / 4.7 / 8.8 / 10.6 percent.
func TestTable3Baseline400G(t *testing.T) {
	g := computeTable3(t)
	want := paperTable3[400]
	for j, cell := range g.Cells[2] {
		got := cell.Savings * 100
		if math.Abs(got-want[j]) > 0.2 {
			t.Errorf("400G savings at prop %v = %.2f%%, paper %.1f%%",
				cell.Proportionality, got, want[j])
		}
	}
}

// TestTable3AllRowsApproximate checks every cell against the paper within a
// tolerance that accounts for the under-specified interpolation rule
// (±0.6 pp absolute; the 400 G row is held to ±0.2 above).
func TestTable3AllRowsApproximate(t *testing.T) {
	g := computeTable3(t)
	for i, bw := range []float64{100, 200, 400, 800, 1600} {
		want := paperTable3[bw]
		for j, cell := range g.Cells[i] {
			got := cell.Savings * 100
			if math.Abs(got-want[j]) > 0.6 {
				t.Errorf("%vG savings at prop %v = %.2f%%, paper %.1f%% (off by %.2f pp)",
					bw, cell.Proportionality, got, want[j], got-want[j])
			}
		}
	}
}

// TestSection32WorkedExample checks §3.2's 400 G / 50% example: ~365 kW
// average power saved, ~$416k/yr electricity and ~$125k/yr cooling. Our
// calibrated model lands within ~5%.
func TestSection32WorkedExample(t *testing.T) {
	s, err := Section32(0.50)
	if err != nil {
		t.Fatal(err)
	}
	if kw := s.SavedPower.Kilowatts(); math.Abs(kw-365) > 20 {
		t.Errorf("saved power = %.1f kW, paper reports ~365 kW", kw)
	}
	if math.Abs(s.ElectricityPerYear-416000) > 25000 {
		t.Errorf("electricity savings = $%.0f/yr, paper reports ~$416k", s.ElectricityPerYear)
	}
	if math.Abs(s.CoolingPerYear-125000) > 8000 {
		t.Errorf("cooling savings = $%.0f/yr, paper reports ~$125k", s.CoolingPerYear)
	}
	if math.Abs(s.Total()-(s.ElectricityPerYear+s.CoolingPerYear)) > 1e-9 {
		t.Error("Total() broken")
	}
}

func TestCostModelValidation(t *testing.T) {
	m := DefaultCostModel()
	if _, err := m.Annualize(-1 * units.Watt); err == nil {
		t.Error("negative saved power should fail")
	}
	bad := CostModel{PricePerKWh: -1}
	if _, err := bad.Annualize(100 * units.Watt); err == nil {
		t.Error("negative price should fail")
	}
	// Sanity: 1 kW for a year at $0.13 with 30% cooling.
	s, err := m.Annualize(1 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ElectricityPerYear-8760*0.13) > 1e-6 {
		t.Errorf("electricity = %v, want %v", s.ElectricityPerYear, 8760*0.13)
	}
	if math.Abs(s.CoolingPerYear-8760*0.13*0.3) > 1e-6 {
		t.Errorf("cooling = %v, want %v", s.CoolingPerYear, 8760*0.13*0.3)
	}
}

func TestComputeSavingsGridErrors(t *testing.T) {
	if _, err := ComputeSavingsGrid(Baseline(), nil, []float64{0.5}, 0.1); err == nil {
		t.Error("empty bandwidths should fail")
	}
	if _, err := ComputeSavingsGrid(Baseline(), Table3Bandwidths(), nil, 0.1); err == nil {
		t.Error("empty proportionalities should fail")
	}
	if _, err := ComputeSavingsGrid(Baseline(), Table3Bandwidths(), []float64{2}, 0.1); err == nil {
		t.Error("invalid proportionality should fail")
	}
	if _, err := ComputeSavingsGrid(Baseline(), Table3Bandwidths(), []float64{0.5}, 2); err == nil {
		t.Error("invalid reference proportionality should fail")
	}
}

// Property: savings relative to the reference proportionality are linear in
// (p − p_ref): the ratio savings(p1)/savings(p2) equals
// (p1−ref)/(p2−ref) for any p1, p2 above the reference — a structural
// identity of the two-state model the paper's Table 3 also satisfies
// (10.6/4.7 ≈ (1−0.1)/(0.5−0.1)).
func TestSavingsLinearInProportionality(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		p1 := 0.15 + math.Abs(math.Mod(aRaw, 0.85))
		p2 := 0.15 + math.Abs(math.Mod(bRaw, 0.85))
		g, err := ComputeSavingsGrid(Baseline(),
			[]units.Bandwidth{400 * units.Gbps}, []float64{p1, p2}, 0.10)
		if err != nil {
			return false
		}
		s1, s2 := g.Cell(0, 0).Savings, g.Cell(0, 1).Savings
		if s2 == 0 {
			return s1 == 0
		}
		wantRatio := (p1 - 0.10) / (p2 - 0.10)
		return math.Abs(s1/s2-wantRatio) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable3Axes(t *testing.T) {
	bws := Table3Bandwidths()
	if len(bws) != 5 || bws[0] != 100*units.Gbps || bws[4] != 1600*units.Gbps {
		t.Errorf("Table3Bandwidths = %v", bws)
	}
	props := Table3Proportionalities()
	if len(props) != 5 || props[0] != 0.10 || props[4] != 1.00 {
		t.Errorf("Table3Proportionalities = %v", props)
	}
}
