package core

import (
	"math"
	"testing"
)

func curvesEqual(t *testing.T, a, b []SpeedupCurve, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: curve counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Bandwidth != b[i].Bandwidth {
			t.Fatalf("%s: bandwidth order differs at %d", label, i)
		}
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("%s: point counts differ at %d", label, i)
		}
		for j := range a[i].Points {
			pa, pb := a[i].Points[j], b[i].Points[j]
			if pa.GPUs != pb.GPUs {
				t.Errorf("%s: GPUs differ at (%d,%d): %d vs %d", label, i, j, pa.GPUs, pb.GPUs)
			}
			if math.Abs(pa.Speedup-pb.Speedup) > 1e-12 {
				t.Errorf("%s: speedup differs at (%d,%d): %v vs %v", label, i, j, pa.Speedup, pb.Speedup)
			}
		}
	}
}

// TestFig3ParallelMatchesSerial: the concurrent driver is a pure
// optimization — bit-identical results to the serial path.
func TestFig3ParallelMatchesSerial(t *testing.T) {
	props := []float64{0, 0.5, 1}
	serial, err := Fig3(Baseline(), figBandwidths(), props, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0, 32} {
		parallel, err := Fig3Parallel(Baseline(), figBandwidths(), props, AvgBudget, workers)
		if err != nil {
			t.Fatal(err)
		}
		curvesEqual(t, serial, parallel, "fig3")
	}
}

// TestFig4ParallelMatchesSerial: same for the fixed-ratio scenario.
func TestFig4ParallelMatchesSerial(t *testing.T) {
	props := []float64{0, 0.5, 1}
	serial, err := Fig4(Baseline(), figBandwidths(), props, 0.10, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig4Parallel(Baseline(), figBandwidths(), props, 0.10, AvgBudget, 8)
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, serial, parallel, "fig4")
}

func TestParallelErrors(t *testing.T) {
	bad := Baseline()
	bad.GPUs = 0
	if _, err := Fig3Parallel(bad, figBandwidths(), []float64{0.5}, AvgBudget, 4); err == nil {
		t.Error("invalid base accepted by Fig3Parallel")
	}
	if _, err := Fig4Parallel(bad, figBandwidths(), []float64{0.5}, 0.10, AvgBudget, 4); err == nil {
		t.Error("invalid base accepted by Fig4Parallel")
	}
	// A cell-level failure propagates: proportionality outside [0,1].
	if _, err := Fig3Parallel(Baseline(), figBandwidths(), []float64{2}, AvgBudget, 4); err == nil {
		t.Error("invalid proportionality accepted by Fig3Parallel")
	}
	if _, err := Fig4Parallel(Baseline(), figBandwidths(), []float64{0.5}, 1.5, AvgBudget, 4); err == nil {
		t.Error("invalid ratio accepted by Fig4Parallel")
	}
}
