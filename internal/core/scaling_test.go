package core

import (
	"math"
	"testing"
)

func TestScalingStudyBaselineAnchor(t *testing.T) {
	pts, err := ScalingStudy(Baseline(), []int{15360})
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if math.Abs(pt.NetworkShare-0.1204) > 0.001 {
		t.Errorf("share at baseline size = %v, want ~0.120", pt.NetworkShare)
	}
	if math.Abs(pt.NetworkEfficiency-0.1099) > 0.001 {
		t.Errorf("efficiency at baseline size = %v", pt.NetworkEfficiency)
	}
	if math.Abs(pt.SavingsAtComputeParity-0.0893) > 0.002 {
		t.Errorf("savings at compute parity = %v, want ~0.089 (paper: ~9%%)", pt.SavingsAtComputeParity)
	}
	if math.Abs(pt.Stages-2.0139) > 0.001 {
		t.Errorf("stages = %v", pt.Stages)
	}
}

// TestScalingShareGrows: bigger clusters need deeper trees, so the
// network's power share and the parity savings grow with scale.
func TestScalingShareGrows(t *testing.T) {
	pts, err := ScalingStudy(Baseline(), DefaultScalingSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkShare <= pts[i-1].NetworkShare {
			t.Errorf("share not growing at %d GPUs: %v <= %v",
				pts[i].GPUs, pts[i].NetworkShare, pts[i-1].NetworkShare)
		}
		if pts[i].SavingsAtComputeParity <= pts[i-1].SavingsAtComputeParity {
			t.Errorf("parity savings not growing at %d GPUs", pts[i].GPUs)
		}
		if pts[i].Stages < pts[i-1].Stages {
			t.Errorf("stages shrank at %d GPUs", pts[i].GPUs)
		}
		if pts[i].AveragePower <= pts[i-1].AveragePower {
			t.Errorf("average power not growing at %d GPUs", pts[i].GPUs)
		}
	}
	// Network efficiency is scale-free in this model (same duty cycle and
	// proportionality): it stays ~11% at every size.
	for _, pt := range pts {
		if math.Abs(pt.NetworkEfficiency-0.11) > 0.005 {
			t.Errorf("efficiency at %d GPUs = %v, want ~0.11", pt.GPUs, pt.NetworkEfficiency)
		}
	}
}

func TestScalingStudyValidation(t *testing.T) {
	if _, err := ScalingStudy(Baseline(), nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := ScalingStudy(Baseline(), []int{0}); err == nil {
		t.Error("zero size accepted")
	}
	bad := Baseline()
	bad.Bandwidth = 0
	if _, err := ScalingStudy(bad, []int{1000}); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestDefaultScalingSizes(t *testing.T) {
	sizes := DefaultScalingSizes()
	if len(sizes) < 3 {
		t.Fatal("too few sizes")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Error("sizes not ascending")
		}
	}
	// The paper's baseline size is included.
	found := false
	for _, s := range sizes {
		if s == 15360 {
			found = true
		}
	}
	if !found {
		t.Error("baseline size missing from the default sweep")
	}
}
