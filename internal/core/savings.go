package core

import (
	"fmt"

	"netpowerprop/internal/units"
)

// SavingsCell is one cell of Table 3: the relative average-power saving of
// running the cluster at Proportionality instead of the reference network
// proportionality, at the given per-GPU bandwidth.
type SavingsCell struct {
	Bandwidth       units.Bandwidth
	Proportionality float64
	// Savings is the fractional reduction of total average cluster power
	// relative to the same-bandwidth reference cluster.
	Savings float64
	// AveragePower is the absolute average power at this cell.
	AveragePower units.Power
	// SavedPower is the absolute average power reduction vs. the reference
	// (used by the §3.2 cost analysis: 365 kW at 400 G / 50%).
	SavedPower units.Power
}

// SavingsGrid is the full Table 3: rows by bandwidth, columns by
// proportionality.
type SavingsGrid struct {
	Bandwidths         []units.Bandwidth
	Proportionalities  []float64
	RefProportionality float64
	Cells              [][]SavingsCell // [row][col]
}

// Cell returns the cell at (bandwidth row i, proportionality column j).
func (g SavingsGrid) Cell(i, j int) SavingsCell { return g.Cells[i][j] }

// Table3Bandwidths lists the paper's Table 3 rows.
func Table3Bandwidths() []units.Bandwidth {
	return []units.Bandwidth{
		100 * units.Gbps, 200 * units.Gbps, 400 * units.Gbps,
		800 * units.Gbps, 1600 * units.Gbps,
	}
}

// Table3Proportionalities lists the paper's Table 3 columns.
func Table3Proportionalities() []float64 {
	return []float64{0.10, 0.20, 0.50, 0.85, 1.00}
}

// ComputeSavingsGrid evaluates Table 3 for an arbitrary base scenario,
// bandwidth set, and proportionality set. Each row keeps the base GPU count
// and the fixed workload (so communication time scales with bandwidth);
// savings are relative to the same-bandwidth cluster at refProp.
func ComputeSavingsGrid(base Config, bandwidths []units.Bandwidth, props []float64, refProp float64) (SavingsGrid, error) {
	if len(bandwidths) == 0 || len(props) == 0 {
		return SavingsGrid{}, fmt.Errorf("core: empty savings grid axes")
	}
	g := SavingsGrid{
		Bandwidths:         bandwidths,
		Proportionalities:  props,
		RefProportionality: refProp,
		Cells:              make([][]SavingsCell, len(bandwidths)),
	}
	for i, bw := range bandwidths {
		refCfg := base
		refCfg.Bandwidth = bw
		refCfg.NetworkProportionality = refProp
		refCluster, err := New(refCfg)
		if err != nil {
			return SavingsGrid{}, fmt.Errorf("core: savings reference at %v: %w", bw, err)
		}
		refPower := refCluster.AveragePower()
		g.Cells[i] = make([]SavingsCell, len(props))
		for j, p := range props {
			cfg := refCfg
			cfg.NetworkProportionality = p
			cl, err := New(cfg)
			if err != nil {
				return SavingsGrid{}, fmt.Errorf("core: savings cell (%v, %v): %w", bw, p, err)
			}
			avg := cl.AveragePower()
			cell := SavingsCell{
				Bandwidth:       bw,
				Proportionality: p,
				AveragePower:    avg,
				SavedPower:      refPower - avg,
			}
			if refPower > 0 {
				cell.Savings = float64(refPower-avg) / float64(refPower)
			}
			g.Cells[i][j] = cell
		}
	}
	return g, nil
}

// Table3 evaluates the paper's Table 3 on the baseline cluster: savings of
// total average cluster power versus today's 10%-proportional network.
func Table3() (SavingsGrid, error) {
	return ComputeSavingsGrid(Baseline(), Table3Bandwidths(), Table3Proportionalities(), 0.10)
}
