package core

import (
	"fmt"

	"netpowerprop/internal/device"
	"netpowerprop/internal/units"
	"netpowerprop/internal/workload"
)

// Sensitivity analysis: how the paper's headline results (network power
// share, network efficiency, and the 50%-proportionality savings) move
// when the model's assumptions are perturbed. The paper fixes several
// inputs from datasheets and one production report; this quantifies which
// of them the conclusions actually depend on.

// Assumption identifies one perturbable model input.
type Assumption int

// The perturbable assumptions.
const (
	// AssumeCommRatio varies the workload's communication ratio (paper:
	// 10% from the Alibaba pod).
	AssumeCommRatio Assumption = iota
	// AssumeServerOverhead varies the per-GPU server share (paper: 100 W,
	// i.e. 800 W per 8-GPU server).
	AssumeServerOverhead
	// AssumeSwitchPower varies the switch max power (paper: 750 W).
	AssumeSwitchPower
	// AssumeComputeProportionality varies the server proportionality
	// (paper: 85%).
	AssumeComputeProportionality
	// AssumeNetworkProportionality varies today's network proportionality
	// (paper: 10%, literature range 5–20%).
	AssumeNetworkProportionality
)

// String names the assumption.
func (a Assumption) String() string {
	switch a {
	case AssumeCommRatio:
		return "communication ratio"
	case AssumeServerOverhead:
		return "server overhead per GPU"
	case AssumeSwitchPower:
		return "switch max power"
	case AssumeComputeProportionality:
		return "compute proportionality"
	case AssumeNetworkProportionality:
		return "network proportionality"
	default:
		return fmt.Sprintf("Assumption(%d)", int(a))
	}
}

// Assumptions lists all perturbable assumptions.
func Assumptions() []Assumption {
	return []Assumption{
		AssumeCommRatio, AssumeServerOverhead, AssumeSwitchPower,
		AssumeComputeProportionality, AssumeNetworkProportionality,
	}
}

// SensitivityPoint is one evaluated perturbation.
type SensitivityPoint struct {
	Assumption Assumption
	// Value is the perturbed input value (in the assumption's natural
	// unit: a ratio, watts, or a proportionality).
	Value float64
	// NetworkShare, NetworkEfficiency are §3.1's headline metrics.
	NetworkShare      float64
	NetworkEfficiency float64
	// SavingsAt50 is the total-power saving of moving the network from the
	// scenario's proportionality to 50% (Table 3's middle column).
	SavingsAt50 float64
}

// perturbed builds a baseline config with one assumption overridden, along
// with any auxiliary model override the assumption needs.
type perturbed struct {
	cfg Config
	// switchPower overrides device.SwitchMaxPower via scaling the model
	// after construction; handled inside evaluate.
	switchPowerScale float64
	serverOverheadW  float64
}

// Sensitivity evaluates the headline metrics across a sweep of one
// assumption's values. Unlisted inputs stay at the paper's baseline.
func Sensitivity(a Assumption, values []float64) ([]SensitivityPoint, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("core: empty sensitivity sweep")
	}
	out := make([]SensitivityPoint, 0, len(values))
	for _, v := range values {
		p, err := buildPerturbed(a, v)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %v=%v: %w", a, v, err)
		}
		pt, err := evaluatePerturbed(a, v, p)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %v=%v: %w", a, v, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func buildPerturbed(a Assumption, v float64) (perturbed, error) {
	p := perturbed{cfg: Baseline(), switchPowerScale: 1, serverOverheadW: 100}
	switch a {
	case AssumeCommRatio:
		if v <= 0 || v >= 1 {
			return p, fmt.Errorf("comm ratio %v outside (0,1)", v)
		}
		wl, err := workload.New(units.Seconds(1-v), units.Seconds(v),
			p.cfg.GPUs, p.cfg.Bandwidth)
		if err != nil {
			return p, err
		}
		p.cfg.Workload = wl
	case AssumeServerOverhead:
		if v < 0 {
			return p, fmt.Errorf("negative server overhead %v", v)
		}
		p.serverOverheadW = v
	case AssumeSwitchPower:
		if v <= 0 {
			return p, fmt.Errorf("non-positive switch power %v", v)
		}
		p.switchPowerScale = v / 750.0
	case AssumeComputeProportionality:
		if v < 0 || v > 1 {
			return p, fmt.Errorf("compute proportionality %v outside [0,1]", v)
		}
		p.cfg.ComputeProportionality = v
	case AssumeNetworkProportionality:
		if v < 0 || v > 1 {
			return p, fmt.Errorf("network proportionality %v outside [0,1]", v)
		}
		p.cfg.NetworkProportionality = v
	default:
		return p, fmt.Errorf("unknown assumption %d", int(a))
	}
	return p, nil
}

// evaluatePerturbed computes the metrics, applying the power-scale
// overrides that Config cannot express by adjusting aggregate powers.
func evaluatePerturbed(a Assumption, v float64, p perturbed) (SensitivityPoint, error) {
	cl, err := New(p.cfg)
	if err != nil {
		return SensitivityPoint{}, err
	}
	adjust := func(c *Cluster) (avg, netAvg, netMax float64) {
		// Reconstruct aggregate powers with the overrides: scale the
		// switch class and swap the GPU unit power.
		gpuMax := float64(c.Config().GPUs) * (float64(device.H100MaxPower) + p.serverOverheadW)
		gpuIdle := gpuMax * (1 - c.Config().ComputeProportionality)
		swMax := float64(c.Model(device.ClassSwitch).Max) * p.switchPowerScale
		nicMax := float64(c.Model(device.ClassNIC).Max)
		xcMax := float64(c.Model(device.ClassTransceiver).Max)
		netMaxW := swMax + nicMax + xcMax
		netIdle := netMaxW * (1 - c.Config().NetworkProportionality)
		it := c.Iteration()
		total := float64(it.Total())
		comp := float64(it.Compute) / total
		comm := float64(it.Comm) / total
		avgW := comp*(gpuMax+netIdle) + comm*(gpuIdle+netMaxW)
		netAvgW := comp*netIdle + comm*netMaxW
		return avgW, netAvgW, netMaxW
	}
	avg, netAvg, netMax := adjust(cl)
	pt := SensitivityPoint{Assumption: a, Value: v}
	if avg > 0 {
		pt.NetworkShare = netAvg / avg
	}
	if netAvg > 0 {
		it := cl.Iteration()
		total := float64(it.Total())
		useful := float64(it.Comm) / total * netMax
		pt.NetworkEfficiency = useful / netAvg
	}
	// Savings of moving the network to 50% proportionality.
	fifty := p.cfg
	fifty.NetworkProportionality = 0.50
	cl50, err := New(fifty)
	if err != nil {
		return pt, err
	}
	avg50, _, _ := adjust(cl50)
	if avg > 0 {
		pt.SavingsAt50 = (avg - avg50) / avg
	}
	return pt, nil
}
