package core

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/units"
)

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

// TestBaselineComputePower checks the compute side of the baseline:
// 15,360 GPUs x 500 W = 7.68 MW max, 1.152 MW idle (85% proportional).
func TestBaselineComputePower(t *testing.T) {
	c := mustCluster(t, Baseline())
	if got := c.ComputeMaxPower().Megawatts(); math.Abs(got-7.68) > 1e-9 {
		t.Errorf("compute max = %v MW, want 7.68", got)
	}
	if got := c.Model(device.ClassGPU).Idle().Megawatts(); math.Abs(got-1.152) > 1e-9 {
		t.Errorf("compute idle = %v MW, want 1.152", got)
	}
}

// TestBaselineNetworkPower checks the calibrated network sizing: ~474
// switches, ~15.6k inter-switch links, network max power ~1.057 MW
// (Fig. 2b shows the network at roughly 1 MW).
func TestBaselineNetworkPower(t *testing.T) {
	c := mustCluster(t, Baseline())
	d := c.Design()
	if d.Switches < 470 || d.Switches > 478 {
		t.Errorf("switches = %v, want ~474", d.Switches)
	}
	net := c.NetworkMaxPower().Megawatts()
	if math.Abs(net-1.0569) > 0.002 {
		t.Errorf("network max = %v MW, want ~1.057", net)
	}
	// Component split: switches ~355 kW, NICs ~390 kW, transceivers ~311 kW.
	if got := c.Model(device.ClassSwitch).Max.Kilowatts(); math.Abs(got-355.3) > 1 {
		t.Errorf("switch power = %v kW, want ~355", got)
	}
	if got := c.Model(device.ClassNIC).Max.Kilowatts(); math.Abs(got-390.144) > 1e-6 {
		t.Errorf("NIC power = %v kW, want 390.144", got)
	}
	if got := c.Model(device.ClassTransceiver).Max.Kilowatts(); math.Abs(got-311.5) > 1 {
		t.Errorf("transceiver power = %v kW, want ~311", got)
	}
}

// TestPaperHeadlineNumbers asserts §3.1's two headline results: the network
// accounts for 12% of the cluster's average power, consumed at an 11%
// energy efficiency.
func TestPaperHeadlineNumbers(t *testing.T) {
	c := mustCluster(t, Baseline())
	if share := c.NetworkShare(); math.Abs(share-0.12) > 0.005 {
		t.Errorf("network share = %.4f, paper reports 12%%", share)
	}
	if eff := c.NetworkEfficiency(); math.Abs(eff-0.11) > 0.005 {
		t.Errorf("network efficiency = %.4f, paper reports 11%%", eff)
	}
	// Compute hardware, by contrast, is ~98% efficient on this workload.
	if eff := c.ComputeEfficiency(); eff < 0.95 {
		t.Errorf("compute efficiency = %.4f, expected near 1", eff)
	}
}

// TestBaselineAveragePower checks the absolute scale of Fig. 2b: average
// cluster power ~7.99 MW, peak (computation-phase) power ~8.63 MW.
func TestBaselineAveragePower(t *testing.T) {
	c := mustCluster(t, Baseline())
	if got := c.AveragePower().Megawatts(); math.Abs(got-7.989) > 0.01 {
		t.Errorf("average power = %v MW, want ~7.99", got)
	}
	if got := c.PeakPower().Megawatts(); math.Abs(got-8.631) > 0.01 {
		t.Errorf("peak power = %v MW, want ~8.63", got)
	}
	// Peak occurs in the computation phase for this compute-heavy cluster.
	if c.TotalPower(PhaseComputation) <= c.TotalPower(PhaseCommunication) {
		t.Error("computation phase should dominate peak power")
	}
	e := c.EnergyPerIteration()
	want := float64(c.AveragePower()) * float64(c.Iteration().Total())
	if math.Abs(e.Joules()-want) > 1e-6*want {
		t.Errorf("energy per iteration = %v, want %v", e.Joules(), want)
	}
}

// TestFig2aComputationBar checks Fig. 2a's computation bar: the GPU&Server
// share is ~88-89% (the paper prints 88.1%) and the rest is idle network.
func TestFig2aComputationBar(t *testing.T) {
	c := mustCluster(t, Baseline())
	bars := c.Fig2a()
	if len(bars) != 3 {
		t.Fatalf("Fig2a bars = %d, want 3", len(bars))
	}
	comp := bars[0]
	if comp.Phase != PhaseComputation {
		t.Errorf("first bar phase = %v", comp.Phase)
	}
	gpuShare := comp.Fraction(device.ClassGPU)
	if math.Abs(gpuShare-0.885) > 0.01 {
		t.Errorf("computation-phase GPU share = %.4f, paper reports 0.881", gpuShare)
	}
	// Everything that is not GPU power is idle network power in this phase.
	if math.Abs(gpuShare+comp.IdleFraction()-1) > 1e-9 {
		t.Errorf("computation bar does not decompose: gpu %v + idle %v != 1",
			gpuShare, comp.IdleFraction())
	}
	if len(comp.Active) != 1 {
		t.Errorf("computation bar active classes = %v, want only GPU", comp.Active)
	}
}

// TestFig2aCommunicationBar: during communication the split between compute
// (idle GPUs) and active network is close to 50/50 (§3.1).
func TestFig2aCommunicationBar(t *testing.T) {
	c := mustCluster(t, Baseline())
	comm := c.Fig2a()[2]
	if comm.Phase != PhaseCommunication {
		t.Errorf("third bar phase = %v", comm.Phase)
	}
	var netActive float64
	for _, cl := range []device.Class{device.ClassSwitch, device.ClassNIC, device.ClassTransceiver} {
		netActive += comm.Fraction(cl)
	}
	if math.Abs(netActive-0.48) > 0.04 {
		t.Errorf("communication-phase network share = %.4f, paper says close to 50/50", netActive)
	}
	if math.Abs(netActive+comm.IdleFraction()-1) > 1e-9 {
		t.Error("communication bar does not decompose")
	}
}

// TestFig2aAverageBar: the average bar mixes the two phases by time; its
// total equals the average cluster power.
func TestFig2aAverageBar(t *testing.T) {
	c := mustCluster(t, Baseline())
	avg := c.Fig2a()[1]
	if avg.Phase != PhaseAverage {
		t.Errorf("middle bar phase = %v", avg.Phase)
	}
	if math.Abs(float64(avg.Total-c.AveragePower())) > 1e-3 {
		t.Errorf("average bar total %v != average power %v", avg.Total, c.AveragePower())
	}
	// Active + idle decomposes.
	var sum float64
	for _, p := range avg.Active {
		sum += float64(p)
	}
	sum += float64(avg.Idle)
	if math.Abs(sum-float64(avg.Total)) > 1e-3 {
		t.Error("average bar does not decompose")
	}
}

func TestFig2bData(t *testing.T) {
	c := mustCluster(t, Baseline())
	f := c.Fig2bData()
	if got := f.ComputePower[PhaseComputation].Megawatts(); math.Abs(got-7.68) > 1e-9 {
		t.Errorf("Fig2b compute@computation = %v MW, want 7.68", got)
	}
	if got := f.ComputePower[PhaseCommunication].Megawatts(); math.Abs(got-1.152) > 1e-9 {
		t.Errorf("Fig2b compute@communication = %v MW, want 1.152", got)
	}
	// Network power barely moves between phases (10% proportionality).
	netComp := f.NetworkPower[PhaseComputation].Megawatts()
	netComm := f.NetworkPower[PhaseCommunication].Megawatts()
	if netComp >= netComm {
		t.Errorf("network idle %v should be below max %v", netComp, netComm)
	}
	if (netComm-netComp)/netComm > 0.11 {
		t.Errorf("network power swing %v-%v too large for 10%% proportionality", netComp, netComm)
	}
	if math.Abs(f.NetworkEfficiency-0.11) > 0.005 {
		t.Errorf("Fig2b network efficiency = %v, want ~0.11", f.NetworkEfficiency)
	}
	if f.ComputeEfficiency < 0.95 {
		t.Errorf("Fig2b compute efficiency = %v", f.ComputeEfficiency)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := Baseline()
	cfg.GPUs = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero GPUs should fail")
	}
	cfg = Baseline()
	cfg.Bandwidth = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero bandwidth should fail")
	}
	cfg = Baseline()
	cfg.NetworkProportionality = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("proportionality > 1 should fail")
	}
	cfg = Baseline()
	cfg.ComputeProportionality = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative compute proportionality should fail")
	}
	cfg = Baseline()
	cfg.Bandwidth = 40 * units.Tbps
	if _, err := New(cfg); err == nil {
		t.Error("bandwidth beyond switch capacity should fail")
	}
	cfg = Baseline()
	cfg.FixedCommRatio = 2
	if _, err := New(cfg); err == nil {
		t.Error("fixed ratio >= 1 should fail")
	}
}

func TestFixedCommRatioConfig(t *testing.T) {
	cfg := Baseline()
	cfg.FixedCommRatio = 0.10
	cfg.Bandwidth = 1600 * units.Gbps
	c := mustCluster(t, cfg)
	if got := c.Iteration().CommRatio(); math.Abs(got-0.10) > 1e-9 {
		t.Errorf("fixed comm ratio = %v, want 0.10", got)
	}
	// Without pinning, 1600G shrinks the ratio to 0.025/0.925.
	cfg.FixedCommRatio = 0
	c2 := mustCluster(t, cfg)
	if got := c2.Iteration().CommRatio(); got > 0.03 {
		t.Errorf("free comm ratio at 1600G = %v, want ~0.027", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseComputation.String() != "Computation" ||
		PhaseCommunication.String() != "Communication" ||
		PhaseAverage.String() != "Average" {
		t.Error("phase names broken")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase formatting broken")
	}
}

// Property: for any proportionality, average power is between the idle-only
// and max-only extremes, and network share is in (0,1).
func TestClusterInvariants(t *testing.T) {
	f := func(pRaw float64, gRaw uint16) bool {
		cfg := Baseline()
		cfg.NetworkProportionality = math.Abs(math.Mod(pRaw, 1.0))
		cfg.GPUs = 1024 + int(gRaw)%100000
		c, err := New(cfg)
		if err != nil {
			return false
		}
		avg := c.AveragePower()
		peak := c.PeakPower()
		if avg <= 0 || peak < avg {
			return false
		}
		share := c.NetworkShare()
		if share <= 0 || share >= 1 {
			return false
		}
		eff := c.NetworkEfficiency()
		return eff > 0 && eff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: average cluster power decreases monotonically as network
// proportionality improves (more proportional hardware never costs power).
func TestAveragePowerMonotoneInProportionality(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1.0))
		pb := math.Abs(math.Mod(b, 1.0))
		if pa > pb {
			pa, pb = pb, pa
		}
		cfgA, cfgB := Baseline(), Baseline()
		cfgA.NetworkProportionality = pa
		cfgB.NetworkProportionality = pb
		ca, err1 := New(cfgA)
		cb, err2 := New(cfgB)
		if err1 != nil || err2 != nil {
			return false
		}
		return cb.AveragePower() <= ca.AveragePower()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the per-host interpolation ablation never yields a larger
// network power than the calibrated absolute mode at the baseline scale.
func TestInterpModesOrdered(t *testing.T) {
	f := func(gRaw uint32) bool {
		gpus := 9000 + int(gRaw)%400000
		cfgAbs, cfgPH := Baseline(), Baseline()
		cfgAbs.GPUs, cfgPH.GPUs = gpus, gpus
		cfgPH.Interp = fattree.InterpPerHost
		ca, err1 := New(cfgAbs)
		cp, err2 := New(cfgPH)
		if err1 != nil || err2 != nil {
			return false
		}
		return cp.NetworkMaxPower() <= ca.NetworkMaxPower()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
