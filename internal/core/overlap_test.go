package core

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

// TestOverlapZeroIdentical: the overlap machinery reduces exactly to the
// sequential model at overlap 0.
func TestOverlapZeroIdentical(t *testing.T) {
	a := mustCluster(t, Baseline())
	cfg := Baseline()
	cfg.Overlap = 0
	b := mustCluster(t, cfg)
	if a.AveragePower() != b.AveragePower() || a.PeakPower() != b.PeakPower() {
		t.Error("overlap-0 cluster differs from default")
	}
	if a.NetworkEfficiency() != b.NetworkEfficiency() {
		t.Error("overlap-0 efficiency differs")
	}
}

// TestOverlapRaisesNetworkEfficiency: hiding communication behind compute
// shortens the iteration and reduces network idle time, so the network's
// energy efficiency improves (§3.4: overlap still leaves underutilization,
// just less).
func TestOverlapRaisesNetworkEfficiency(t *testing.T) {
	seq := mustCluster(t, Baseline())
	cfg := Baseline()
	cfg.Overlap = 0.5
	ov := mustCluster(t, cfg)
	if ov.NetworkEfficiency() <= seq.NetworkEfficiency() {
		t.Errorf("overlap efficiency %v should exceed sequential %v",
			ov.NetworkEfficiency(), seq.NetworkEfficiency())
	}
	// Iteration shortens: 1.0 -> 0.95.
	if math.Abs(float64(ov.Schedule().Total())-0.95) > 1e-12 {
		t.Errorf("overlapped iteration = %v, want 0.95", ov.Schedule().Total())
	}
	// The network still idles 85/95 of the time — underutilization remains.
	if share := ov.Schedule().NetworkIdleShare(); math.Abs(share-0.85/0.95) > 1e-9 {
		t.Errorf("network idle share = %v", share)
	}
}

// TestOverlapPeakPower: with overlap, the peak segment runs compute AND
// network at max simultaneously — higher than either sequential phase.
func TestOverlapPeakPower(t *testing.T) {
	cfg := Baseline()
	cfg.Overlap = 0.5
	ov := mustCluster(t, cfg)
	seq := mustCluster(t, Baseline())
	if ov.PeakPower() <= seq.PeakPower() {
		t.Errorf("overlap peak %v should exceed sequential %v", ov.PeakPower(), seq.PeakPower())
	}
	want := ov.ComputeMaxPower() + ov.NetworkMaxPower()
	if math.Abs(float64(ov.PeakPower()-want)) > 1 {
		t.Errorf("overlap peak = %v, want compute+network max %v", ov.PeakPower(), want)
	}
}

// TestOverlapSavingsPersist: proportionality still pays off under overlap —
// the paper's point that the savings case survives relaxing the no-overlap
// assumption.
func TestOverlapSavingsPersist(t *testing.T) {
	for _, overlap := range []float64{0, 0.5, 1} {
		base := Baseline()
		base.Overlap = overlap
		ref := mustCluster(t, base)
		better := base
		better.NetworkProportionality = 0.85
		imp := mustCluster(t, better)
		savings := float64(ref.AveragePower()-imp.AveragePower()) / float64(ref.AveragePower())
		if savings < 0.05 {
			t.Errorf("overlap %v: savings at 85%% proportionality = %v, want > 5%%", overlap, savings)
		}
	}
}

// TestOverlapAverageBarDecomposes: the Fig. 2a average bar still sums to
// the average power with an overlapped segment present.
func TestOverlapAverageBarDecomposes(t *testing.T) {
	cfg := Baseline()
	cfg.Overlap = 0.6
	cl := mustCluster(t, cfg)
	avg := cl.Fig2a()[1]
	if math.Abs(float64(avg.Total-cl.AveragePower())) > 1e-3 {
		t.Errorf("average bar total %v != average power %v", avg.Total, cl.AveragePower())
	}
	var sum float64
	for _, p := range avg.Active {
		sum += float64(p)
	}
	sum += float64(avg.Idle)
	if math.Abs(sum-float64(avg.Total)) > 1e-3 {
		t.Error("average bar does not decompose under overlap")
	}
}

func TestOverlapValidation(t *testing.T) {
	cfg := Baseline()
	cfg.Overlap = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("overlap > 1 accepted")
	}
	cfg = Baseline()
	cfg.Overlap = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative overlap accepted")
	}
}

// Property: average power is monotone non-increasing in overlap for a
// fixed configuration — hiding communication never costs energy per unit
// time beyond the busy-time conservation (it shortens idle tails), and
// energy per iteration strictly drops.
func TestOverlapEnergyMonotone(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1.0))
		b := math.Abs(math.Mod(bRaw, 1.0))
		if a > b {
			a, b = b, a
		}
		cfgA, cfgB := Baseline(), Baseline()
		cfgA.Overlap, cfgB.Overlap = a, b
		ca, err1 := New(cfgA)
		cb, err2 := New(cfgB)
		if err1 != nil || err2 != nil {
			return false
		}
		ea := float64(ca.EnergyPerIteration())
		eb := float64(cb.EnergyPerIteration())
		return eb <= ea+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOverlapEnergyAccounting: energy per iteration equals the sum of
// segment energies computed by hand.
func TestOverlapEnergyAccounting(t *testing.T) {
	cfg := Baseline()
	cfg.Overlap = 0.5
	cl := mustCluster(t, cfg)
	s := cl.Schedule()
	var want float64
	want += float64(cl.segmentTotal(true, false)) * float64(s.ComputeOnly)
	want += float64(cl.segmentTotal(true, true)) * float64(s.Overlapped)
	want += float64(cl.segmentTotal(false, true)) * float64(s.CommOnly)
	got := cl.EnergyPerIteration().Joules()
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("energy = %v, want %v", got, want)
	}
	_ = units.Joule
}
