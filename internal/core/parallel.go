package core

import (
	"fmt"
	"runtime"
	"sync"

	"netpowerprop/internal/units"
)

// Parallel sweep drivers: Fig. 3 and Fig. 4 evaluate an independent
// optimization per (bandwidth, proportionality) cell, so the grids
// parallelize perfectly. These drivers produce results identical to the
// serial Fig3/Fig4 — cell order is deterministic — using a bounded worker
// pool.

// gridJob is one (row, col) cell to evaluate.
type gridJob struct{ row, col int }

// runGrid evaluates rows x cols cells with the given worker count,
// stopping at the first error.
func runGrid(rows, cols, workers int, eval func(row, col int) error) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make(chan gridJob)
	errOnce := sync.Once{}
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := eval(j.row, j.col); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			jobs <- gridJob{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// Fig3Parallel computes Fig. 3 concurrently; workers <= 0 uses GOMAXPROCS.
// The result is identical to Fig3.
func Fig3Parallel(base Config, bandwidths []units.Bandwidth, props []float64, kind BudgetKind, workers int) ([]SpeedupCurve, error) {
	baseCluster, err := New(base)
	if err != nil {
		return nil, fmt.Errorf("core: fig3 baseline: %w", err)
	}
	budget := budgetPower(baseCluster, kind)
	refTime := baseCluster.Iteration().Total()
	if refTime <= 0 {
		return nil, fmt.Errorf("core: fig3 baseline has zero iteration time")
	}
	curves := make([]SpeedupCurve, len(bandwidths))
	for i, bw := range bandwidths {
		curves[i] = SpeedupCurve{Bandwidth: bw, Points: make([]SpeedupPoint, len(props))}
	}
	err = runGrid(len(bandwidths), len(props), workers, func(i, j int) error {
		cfg := base
		cfg.Bandwidth = bandwidths[i]
		cfg.NetworkProportionality = props[j]
		cl, err := OptimizeGPUs(cfg, budget, kind)
		if err != nil {
			return fmt.Errorf("core: fig3 (%v, %v): %w", bandwidths[i], props[j], err)
		}
		t := cl.Iteration().Total()
		curves[i].Points[j] = SpeedupPoint{
			Bandwidth:       bandwidths[i],
			Proportionality: props[j],
			GPUs:            cl.Config().GPUs,
			IterationTime:   t,
			Speedup:         float64(refTime)/float64(t) - 1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return curves, nil
}

// Fig4Parallel computes Fig. 4 concurrently; workers <= 0 uses GOMAXPROCS.
// The result is identical to Fig4.
func Fig4Parallel(base Config, bandwidths []units.Bandwidth, props []float64, ratio float64, kind BudgetKind, workers int) ([]SpeedupCurve, error) {
	baseCluster, err := New(base)
	if err != nil {
		return nil, fmt.Errorf("core: fig4 baseline: %w", err)
	}
	budget := budgetPower(baseCluster, kind)

	// Per-bandwidth references (prop 0) first — they gate every cell in
	// their row, so compute them in a parallel pass of their own.
	refTimes := make([]units.Seconds, len(bandwidths))
	err = runGrid(len(bandwidths), 1, workers, func(i, _ int) error {
		refCfg := base
		refCfg.Bandwidth = bandwidths[i]
		refCfg.NetworkProportionality = 0
		refCfg.FixedCommRatio = ratio
		refCl, err := OptimizeGPUs(refCfg, budget, kind)
		if err != nil {
			return fmt.Errorf("core: fig4 reference at %v: %w", bandwidths[i], err)
		}
		refTimes[i] = refCl.Iteration().Total()
		return nil
	})
	if err != nil {
		return nil, err
	}

	curves := make([]SpeedupCurve, len(bandwidths))
	for i, bw := range bandwidths {
		curves[i] = SpeedupCurve{Bandwidth: bw, Points: make([]SpeedupPoint, len(props))}
	}
	err = runGrid(len(bandwidths), len(props), workers, func(i, j int) error {
		cfg := base
		cfg.Bandwidth = bandwidths[i]
		cfg.NetworkProportionality = props[j]
		cfg.FixedCommRatio = ratio
		cl, err := OptimizeGPUs(cfg, budget, kind)
		if err != nil {
			return fmt.Errorf("core: fig4 (%v, %v): %w", bandwidths[i], props[j], err)
		}
		t := cl.Iteration().Total()
		curves[i].Points[j] = SpeedupPoint{
			Bandwidth:       bandwidths[i],
			Proportionality: props[j],
			GPUs:            cl.Config().GPUs,
			IterationTime:   t,
			Speedup:         float64(refTimes[i])/float64(t) - 1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return curves, nil
}
