package core

import (
	"netpowerprop/internal/device"
	"netpowerprop/internal/units"
)

// Breakdown is one bar of Fig. 2a: a phase's total power split into the
// power of busy device classes plus a lumped "Idle" share for the devices
// idling in that phase (the figure's grey segment).
type Breakdown struct {
	Phase Phase
	// Active holds the power of each class while busy in this phase.
	// Classes idle in this phase contribute to Idle instead.
	Active map[device.Class]units.Power
	// IdleByClass splits the idle power by class (not shown in the paper's
	// figure but useful for analysis).
	IdleByClass map[device.Class]units.Power
	// Idle is the summed idle power.
	Idle units.Power
	// Total is Active + Idle.
	Total units.Power
}

// Fraction returns a class's active share of the bar's total.
func (b Breakdown) Fraction(class device.Class) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Active[class]) / float64(b.Total)
}

// IdleFraction returns the idle share of the bar's total.
func (b Breakdown) IdleFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Idle) / float64(b.Total)
}

// breakdownAt computes a single phase bar.
func (c *Cluster) breakdownAt(p Phase) Breakdown {
	b := Breakdown{
		Phase:       p,
		Active:      make(map[device.Class]units.Power),
		IdleByClass: make(map[device.Class]units.Power),
	}
	for _, cl := range device.Classes() {
		pw := c.PhasePower(cl, p)
		b.Total += pw
		if classBusy(cl, p) {
			b.Active[cl] = pw
		} else {
			b.IdleByClass[cl] = pw
			b.Idle += pw
		}
	}
	return b
}

// breakdownAverage computes the Average bar as the time-weighted mix over
// the iteration's segments, so that a class contributes to Active for the
// time it is busy — including any overlapped segment — and to Idle for the
// rest (matching Fig. 2a's middle bar).
func (c *Cluster) breakdownAverage() Breakdown {
	total := float64(c.sched.Total())
	b := Breakdown{
		Phase:       PhaseAverage,
		Active:      make(map[device.Class]units.Power),
		IdleByClass: make(map[device.Class]units.Power),
	}
	if total == 0 {
		return b
	}
	segments := []struct {
		weight               float64
		computeBusy, netBusy bool
	}{
		{float64(c.sched.ComputeOnly) / total, true, false},
		{float64(c.sched.Overlapped) / total, true, true},
		{float64(c.sched.CommOnly) / total, false, true},
	}
	for _, cl := range device.Classes() {
		var active, idle float64
		for _, seg := range segments {
			busy := seg.netBusy
			if cl == device.ClassGPU {
				busy = seg.computeBusy
			}
			p := seg.weight * float64(c.classPowerIn(cl, seg.computeBusy, seg.netBusy))
			if busy {
				active += p
			} else {
				idle += p
			}
		}
		if active > 0 {
			b.Active[cl] = units.Power(active)
		}
		if idle > 0 {
			b.IdleByClass[cl] = units.Power(idle)
		}
		b.Idle += units.Power(idle)
		b.Total += units.Power(active + idle)
	}
	return b
}

// Fig2a returns the three bars of the paper's Fig. 2a: Computation,
// Average, and Communication, in the paper's display order.
func (c *Cluster) Fig2a() []Breakdown {
	return []Breakdown{
		c.breakdownAt(PhaseComputation),
		c.breakdownAverage(),
		c.breakdownAt(PhaseCommunication),
	}
}

// Fig2b mirrors the paper's Fig. 2b: absolute compute and network power in
// each phase plus each group's energy efficiency over the iteration.
type Fig2b struct {
	// ComputePower and NetworkPower index by phase.
	ComputePower map[Phase]units.Power
	NetworkPower map[Phase]units.Power
	// ComputeEfficiency and NetworkEfficiency are the per-group energy
	// efficiencies (paper: ~97% and ~11% on the baseline).
	ComputeEfficiency float64
	NetworkEfficiency float64
}

// Fig2bData computes Fig. 2b for the cluster.
func (c *Cluster) Fig2bData() Fig2b {
	out := Fig2b{
		ComputePower:      make(map[Phase]units.Power, 3),
		NetworkPower:      make(map[Phase]units.Power, 3),
		ComputeEfficiency: c.ComputeEfficiency(),
		NetworkEfficiency: c.NetworkEfficiency(),
	}
	for _, p := range []Phase{PhaseComputation, PhaseAverage, PhaseCommunication} {
		out.ComputePower[p] = c.PhasePower(device.ClassGPU, p)
		var net units.Power
		for _, cl := range networkClasses {
			net += c.PhasePower(cl, p)
		}
		out.NetworkPower[p] = net
	}
	return out
}
