package core

import (
	"fmt"

	"netpowerprop/internal/units"
)

// ScalingPoint is one cluster size of a scaling study: as pods grow, the
// fat tree climbs through stage counts, switches-per-host rises, and the
// network's share of the power budget grows — the paper's motivation that
// the problem gets worse at scale.
type ScalingPoint struct {
	GPUs int
	// Stages is the effective fat-tree stage count.
	Stages float64
	// SwitchesPerThousandGPUs normalizes the network size.
	SwitchesPerThousandGPUs float64
	// NetworkShare and NetworkEfficiency are the §3.1 metrics at this size.
	NetworkShare      float64
	NetworkEfficiency float64
	// AveragePower is the cluster's average draw.
	AveragePower units.Power
	// SavingsAtComputeParity is the total-power saving of raising network
	// proportionality to the compute's level (85%).
	SavingsAtComputeParity float64
}

// ScalingStudy evaluates the baseline scenario across cluster sizes.
func ScalingStudy(base Config, sizes []int) ([]ScalingPoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: empty scaling study")
	}
	// A scaling study keeps the WORKLOAD SHAPE constant: each size runs a
	// proportionally larger job at the base scenario's communication
	// ratio, rather than shrinking the base job onto more GPUs (which
	// would drive the ratio toward 1 as compute time vanishes).
	ratio := base.FixedCommRatio
	if ratio == 0 {
		ratio = base.Workload.CommRatio()
	}
	out := make([]ScalingPoint, 0, len(sizes))
	for _, g := range sizes {
		if g < 1 {
			return nil, fmt.Errorf("core: invalid cluster size %d", g)
		}
		cfg := base
		cfg.GPUs = g
		cfg.FixedCommRatio = ratio
		cl, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: scaling at %d GPUs: %w", g, err)
		}
		parity := cfg
		parity.NetworkProportionality = cfg.ComputeProportionality
		clParity, err := New(parity)
		if err != nil {
			return nil, fmt.Errorf("core: scaling parity at %d GPUs: %w", g, err)
		}
		pt := ScalingPoint{
			GPUs:                    g,
			Stages:                  cl.Design().Stages,
			SwitchesPerThousandGPUs: cl.Design().Switches / float64(g) * 1000,
			NetworkShare:            cl.NetworkShare(),
			NetworkEfficiency:       cl.NetworkEfficiency(),
			AveragePower:            cl.AveragePower(),
		}
		if avg := cl.AveragePower(); avg > 0 {
			pt.SavingsAtComputeParity = float64(avg-clParity.AveragePower()) / float64(avg)
		}
		out = append(out, pt)
	}
	return out, nil
}

// DefaultScalingSizes spans pod to multi-pod scale around the paper's
// 15,360-GPU baseline.
func DefaultScalingSizes() []int {
	return []int{1024, 4096, 15360, 65536, 262144}
}
