package core

import (
	"math"
	"testing"
)

// TestSensitivityBaselineRecovered: perturbing each assumption to its
// paper value reproduces the headline metrics exactly.
func TestSensitivityBaselineRecovered(t *testing.T) {
	cases := []struct {
		a Assumption
		v float64
	}{
		{AssumeCommRatio, 0.10},
		{AssumeServerOverhead, 100},
		{AssumeSwitchPower, 750},
		{AssumeComputeProportionality, 0.85},
		{AssumeNetworkProportionality, 0.10},
	}
	for _, tc := range cases {
		pts, err := Sensitivity(tc.a, []float64{tc.v})
		if err != nil {
			t.Fatalf("%v: %v", tc.a, err)
		}
		pt := pts[0]
		if math.Abs(pt.NetworkShare-0.1204) > 0.001 {
			t.Errorf("%v at baseline: share = %v, want ~0.120", tc.a, pt.NetworkShare)
		}
		if math.Abs(pt.NetworkEfficiency-0.1099) > 0.001 {
			t.Errorf("%v at baseline: efficiency = %v, want ~0.110", tc.a, pt.NetworkEfficiency)
		}
		if math.Abs(pt.SavingsAt50-0.0476) > 0.001 {
			t.Errorf("%v at baseline: savings@50 = %v, want ~0.048", tc.a, pt.SavingsAt50)
		}
	}
}

// TestSensitivityCommRatio: a larger communication ratio makes the network
// busier, raising its efficiency and (the network being a bigger deal) its
// average share.
func TestSensitivityCommRatio(t *testing.T) {
	pts, err := Sensitivity(AssumeCommRatio, []float64{0.05, 0.10, 0.20, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkEfficiency <= pts[i-1].NetworkEfficiency {
			t.Errorf("efficiency not increasing with comm ratio at %v", pts[i].Value)
		}
	}
	// Savings@50 falls with comm ratio: a busier network has less idle
	// power to reclaim.
	if pts[3].SavingsAt50 >= pts[0].SavingsAt50 {
		t.Errorf("savings@50 should fall with comm ratio: %v vs %v",
			pts[3].SavingsAt50, pts[0].SavingsAt50)
	}
}

// TestSensitivityServerOverhead: heavier servers dilute the network share.
func TestSensitivityServerOverhead(t *testing.T) {
	pts, err := Sensitivity(AssumeServerOverhead, []float64{0, 100, 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkShare >= pts[i-1].NetworkShare {
			t.Errorf("share not decreasing with server overhead at %v", pts[i].Value)
		}
	}
}

// TestSensitivitySwitchPower: hungrier switches raise the network share
// and the savings potential, with efficiency unchanged (it is a ratio of
// the network's own busy/total energy).
func TestSensitivitySwitchPower(t *testing.T) {
	pts, err := Sensitivity(AssumeSwitchPower, []float64{375, 750, 1500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkShare <= pts[i-1].NetworkShare {
			t.Errorf("share not increasing with switch power at %v", pts[i].Value)
		}
		if pts[i].SavingsAt50 <= pts[i-1].SavingsAt50 {
			t.Errorf("savings not increasing with switch power at %v", pts[i].Value)
		}
		if math.Abs(pts[i].NetworkEfficiency-pts[0].NetworkEfficiency) > 1e-9 {
			t.Errorf("efficiency should not depend on switch power scale")
		}
	}
}

// TestSensitivityNetworkProportionality: the literature range 5–20% barely
// moves the headline share (the paper's conclusion is robust to it), while
// the savings@50 shrink as today's network gets better.
func TestSensitivityNetworkProportionality(t *testing.T) {
	pts, err := Sensitivity(AssumeNetworkProportionality, []float64{0.05, 0.10, 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].NetworkShare-pts[2].NetworkShare) > 0.02 {
		t.Errorf("share swings too much across the literature range: %v vs %v",
			pts[0].NetworkShare, pts[2].NetworkShare)
	}
	if !(pts[0].SavingsAt50 > pts[1].SavingsAt50 && pts[1].SavingsAt50 > pts[2].SavingsAt50) {
		t.Errorf("savings@50 should shrink as baseline proportionality improves: %v",
			[]float64{pts[0].SavingsAt50, pts[1].SavingsAt50, pts[2].SavingsAt50})
	}
}

// TestSensitivityComputeProportionality: worse servers (lower
// proportionality) draw more on average, diluting the network share.
func TestSensitivityComputeProportionality(t *testing.T) {
	pts, err := Sensitivity(AssumeComputeProportionality, []float64{0.5, 0.85, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkShare <= pts[i-1].NetworkShare {
			t.Errorf("share should rise as compute gets more proportional at %v", pts[i].Value)
		}
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := Sensitivity(AssumeCommRatio, nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := Sensitivity(AssumeCommRatio, []float64{0}); err == nil {
		t.Error("zero comm ratio accepted")
	}
	if _, err := Sensitivity(AssumeServerOverhead, []float64{-1}); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := Sensitivity(AssumeSwitchPower, []float64{0}); err == nil {
		t.Error("zero switch power accepted")
	}
	if _, err := Sensitivity(AssumeComputeProportionality, []float64{2}); err == nil {
		t.Error("excess proportionality accepted")
	}
	if _, err := Sensitivity(AssumeNetworkProportionality, []float64{-0.1}); err == nil {
		t.Error("negative proportionality accepted")
	}
	if _, err := Sensitivity(Assumption(99), []float64{1}); err == nil {
		t.Error("unknown assumption accepted")
	}
}

func TestAssumptionStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Assumptions() {
		name := a.String()
		if name == "" || seen[name] {
			t.Errorf("assumption %d unnamed or duplicated (%q)", int(a), name)
		}
		seen[name] = true
	}
	if Assumption(99).String() != "Assumption(99)" {
		t.Error("unknown assumption formatting broken")
	}
	if len(Assumptions()) != 5 {
		t.Error("Assumptions() should list 5 entries")
	}
}
