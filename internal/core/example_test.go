package core_test

import (
	"fmt"
	"log"

	"netpowerprop/internal/core"
	"netpowerprop/internal/units"
)

// The paper's §3.1 analysis in four lines: build the baseline pod and read
// off the two headline metrics.
func ExampleNew() {
	cluster, err := core.New(core.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network share: %.1f%%\n", cluster.NetworkShare()*100)
	fmt.Printf("network efficiency: %.1f%%\n", cluster.NetworkEfficiency()*100)
	// Output:
	// network share: 12.0%
	// network efficiency: 11.0%
}

// Table 3's headline cell: a 50%-proportional network saves ~5% of the
// whole 400 G cluster.
func ExampleTable3() {
	grid, err := core.Table3()
	if err != nil {
		log.Fatal(err)
	}
	cell := grid.Cell(2, 2) // 400 G row, 50% column
	fmt.Printf("%v at %.0f%% proportionality saves %.1f%%\n",
		cell.Bandwidth, cell.Proportionality*100, cell.Savings*100)
	// Output:
	// 400 Gbps at 50% proportionality saves 4.8%
}

// §3.2's worked example: what the 50%-proportionality savings are worth
// per year.
func ExampleSection32() {
	s, err := core.Section32(0.50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved power: %v\n", s.SavedPower)
	fmt.Printf("electricity: $%.0fk/year\n", s.ElectricityPerYear/1000)
	// Output:
	// saved power: 380.5 kW
	// electricity: $433k/year
}

// OptimizeGPUs answers §3.3's question: how many GPUs fit a fixed power
// budget once the network gets cheaper to idle?
func ExampleOptimizeGPUs() {
	base := core.Baseline()
	baseline, err := core.New(base)
	if err != nil {
		log.Fatal(err)
	}
	budget := baseline.AveragePower()

	better := base
	better.NetworkProportionality = 0.85
	cl, err := core.OptimizeGPUs(better, budget, core.AvgBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same budget, 85%%-proportional network: %d GPUs (was %d)\n",
		cl.Config().GPUs, base.GPUs)
	// Output:
	// same budget, 85%-proportional network: 16984 GPUs (was 15360)
}

// ComputeSavingsGrid evaluates custom what-if grids beyond Table 3.
func ExampleComputeSavingsGrid() {
	grid, err := core.ComputeSavingsGrid(core.Baseline(),
		[]units.Bandwidth{800 * units.Gbps}, []float64{0.85}, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("800G at 85%%: %.1f%% saved\n", grid.Cell(0, 0).Savings*100)
	// Output:
	// 800G at 85%: 16.0% saved
}
