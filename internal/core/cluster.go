// Package core implements the paper's primary contribution: the
// cluster-level what-if model that combines the workload model (§2.2),
// the power model (§2.3), and the fat-tree network model (§2.4) to
// quantify the impact of network power proportionality on an ML training
// cluster's power draw, energy efficiency, and performance (§3).
package core

import (
	"fmt"

	"netpowerprop/internal/device"
	"netpowerprop/internal/fattree"
	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
	"netpowerprop/internal/workload"
)

// Config describes one what-if scenario: a cluster size, a per-GPU network
// bandwidth, the workload to run, and the power proportionality of compute
// and network hardware.
type Config struct {
	// GPUs is the cluster size in GPUs (the paper's "hosts": one 400 G-class
	// interface per GPU, 8 GPUs per server).
	GPUs int
	// Bandwidth is the network bandwidth per GPU.
	Bandwidth units.Bandwidth
	// Workload is the training workload; phase durations scale with GPUs
	// and Bandwidth per §2.2.
	Workload workload.Workload
	// ComputeProportionality is the power proportionality of the
	// GPU+server units (paper: 85%).
	ComputeProportionality float64
	// NetworkProportionality applies to switches, NICs, and transceivers
	// (paper baseline: 10%).
	NetworkProportionality float64
	// Interp selects the fat-tree interpolation mode (DESIGN.md).
	Interp fattree.InterpMode
	// FixedCommRatio, when positive, pins the communication ratio instead
	// of deriving communication time from the fixed workload (§3.3's
	// second scenario).
	FixedCommRatio float64
	// Overlap hides this fraction of the communication phase behind
	// computation (§3.4's relaxation of the no-overlap assumption; 0 is
	// the paper's default sequential model).
	Overlap float64
}

// Baseline returns the paper's baseline scenario (§2.1): one production pod
// of 15,360 H100 GPUs with 400 G per GPU, a 10% communication ratio, 85%
// compute and 10% network power proportionality.
func Baseline() Config {
	return Config{
		GPUs:                   15360,
		Bandwidth:              400 * units.Gbps,
		Workload:               workload.Baseline(),
		ComputeProportionality: device.ComputeProportionality,
		NetworkProportionality: device.NetworkProportionality,
		Interp:                 fattree.InterpAbsolute,
	}
}

// Cluster is a fully sized scenario: the network design and per-class
// aggregate power models derived from a Config.
type Cluster struct {
	cfg    Config
	design fattree.Design
	iter   workload.Iteration
	sched  workload.Schedule
	models map[device.Class]power.Model
}

// New sizes the network and builds the per-class power models for a Config.
func New(cfg Config) (*Cluster, error) {
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("core: GPU count %d must be positive", cfg.GPUs)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("core: bandwidth %v must be positive", cfg.Bandwidth)
	}
	ports, err := device.SwitchPorts(cfg.Bandwidth)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	design, err := fattree.Size(cfg.GPUs, ports, cfg.Interp)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var iter workload.Iteration
	if cfg.FixedCommRatio > 0 {
		iter, err = cfg.Workload.WithFixedRatio(cfg.GPUs, cfg.FixedCommRatio)
	} else {
		iter, err = cfg.Workload.On(cfg.GPUs, cfg.Bandwidth)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sched, err := iter.WithOverlap(cfg.Overlap)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nicPower, err := device.NICPower(cfg.Bandwidth)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	xcvrPower, err := device.TransceiverPower(cfg.Bandwidth)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	models := make(map[device.Class]power.Model, 4)
	gpuModel, err := power.NewModel(
		units.Power(float64(device.GPUUnitMaxPower)*float64(cfg.GPUs)),
		cfg.ComputeProportionality)
	if err != nil {
		return nil, fmt.Errorf("core: compute model: %w", err)
	}
	models[device.ClassGPU] = gpuModel
	for class, max := range map[device.Class]units.Power{
		device.ClassSwitch:      units.Power(design.Switches * float64(device.SwitchMaxPower)),
		device.ClassNIC:         units.Power(float64(cfg.GPUs) * float64(nicPower)),
		device.ClassTransceiver: units.Power(design.Transceivers() * float64(xcvrPower)),
	} {
		m, err := power.NewModel(max, cfg.NetworkProportionality)
		if err != nil {
			return nil, fmt.Errorf("core: network model (%v): %w", class, err)
		}
		models[class] = m
	}
	return &Cluster{cfg: cfg, design: design, iter: iter, sched: sched, models: models}, nil
}

// Config returns the scenario this cluster was built from.
func (c *Cluster) Config() Config { return c.cfg }

// Design returns the fat-tree sizing outcome.
func (c *Cluster) Design() fattree.Design { return c.design }

// Iteration returns the workload iteration on this cluster.
func (c *Cluster) Iteration() workload.Iteration { return c.iter }

// Schedule returns the iteration laid out with the configured overlap.
func (c *Cluster) Schedule() workload.Schedule { return c.sched }

// Model returns the aggregate power model of a device class.
func (c *Cluster) Model(class device.Class) power.Model { return c.models[class] }

// networkClasses are the classes the paper groups as "the network".
var networkClasses = []device.Class{device.ClassSwitch, device.ClassNIC, device.ClassTransceiver}

// NetworkMaxPower returns the aggregate max power of switches + NICs +
// transceivers.
func (c *Cluster) NetworkMaxPower() units.Power {
	var p units.Power
	for _, cl := range networkClasses {
		p += c.models[cl].Max
	}
	return p
}

// ComputeMaxPower returns the aggregate max power of the GPU+server units.
func (c *Cluster) ComputeMaxPower() units.Power { return c.models[device.ClassGPU].Max }

// Phase identifies one side of the iteration.
type Phase int

// The two phases of §2.2, plus the time-weighted average pseudo-phase used
// in Fig. 2a's middle bar.
const (
	PhaseComputation Phase = iota
	PhaseCommunication
	PhaseAverage
)

// String names the phase as in Fig. 2a.
func (p Phase) String() string {
	switch p {
	case PhaseComputation:
		return "Computation"
	case PhaseCommunication:
		return "Communication"
	case PhaseAverage:
		return "Average"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// classBusy reports whether a device class is busy during a phase under the
// no-overlap assumption.
func classBusy(class device.Class, p Phase) bool {
	if class == device.ClassGPU {
		return p == PhaseComputation
	}
	return p == PhaseCommunication
}

// classPowerIn returns a class's power in a segment where compute and/or
// network hardware is busy.
func (c *Cluster) classPowerIn(class device.Class, computeBusy, netBusy bool) units.Power {
	m := c.models[class]
	busy := netBusy
	if class == device.ClassGPU {
		busy = computeBusy
	}
	if busy {
		return m.Max
	}
	return m.Idle()
}

// PhasePower returns the power draw of one device class during a phase:
// PhaseComputation is the compute-only segment, PhaseCommunication the
// communication-only segment, and PhaseAverage the time-weighted mean over
// the whole iteration (including any overlapped segment).
func (c *Cluster) PhasePower(class device.Class, p Phase) units.Power {
	switch p {
	case PhaseComputation:
		return c.classPowerIn(class, true, false)
	case PhaseCommunication:
		return c.classPowerIn(class, false, true)
	case PhaseAverage:
		total := float64(c.sched.Total())
		if total == 0 {
			return 0
		}
		acc := float64(c.classPowerIn(class, true, false)) * float64(c.sched.ComputeOnly)
		acc += float64(c.classPowerIn(class, true, true)) * float64(c.sched.Overlapped)
		acc += float64(c.classPowerIn(class, false, true)) * float64(c.sched.CommOnly)
		return units.Power(acc / total)
	default:
		return 0
	}
}

// TotalPower returns the cluster power during a phase (all classes).
func (c *Cluster) TotalPower(p Phase) units.Power {
	var sum units.Power
	for _, cl := range device.Classes() {
		sum += c.PhasePower(cl, p)
	}
	return sum
}

// segmentTotal sums all classes' power in a segment.
func (c *Cluster) segmentTotal(computeBusy, netBusy bool) units.Power {
	var sum units.Power
	for _, cl := range device.Classes() {
		sum += c.classPowerIn(cl, computeBusy, netBusy)
	}
	return sum
}

// AveragePower is the time-weighted mean cluster power over one iteration —
// the quantity Table 3's savings are computed on.
func (c *Cluster) AveragePower() units.Power { return c.TotalPower(PhaseAverage) }

// PeakPower is the maximum instantaneous cluster power across the
// iteration's segments — the quantity a datacenter must provision for
// (§3.3). With overlap, the everything-busy segment dominates.
func (c *Cluster) PeakPower() units.Power {
	var peak units.Power
	for _, seg := range []struct {
		dur                  units.Seconds
		computeBusy, netBusy bool
	}{
		{c.sched.ComputeOnly, true, false},
		{c.sched.Overlapped, true, true},
		{c.sched.CommOnly, false, true},
	} {
		if seg.dur <= 0 {
			continue
		}
		if p := c.segmentTotal(seg.computeBusy, seg.netBusy); p > peak {
			peak = p
		}
	}
	return peak
}

// NetworkAveragePower returns the network's time-weighted mean power.
func (c *Cluster) NetworkAveragePower() units.Power {
	var sum units.Power
	for _, cl := range networkClasses {
		sum += c.PhasePower(cl, PhaseAverage)
	}
	return sum
}

// NetworkShare returns the network's fraction of the average cluster power
// (the paper's headline 12%).
func (c *Cluster) NetworkShare() float64 {
	total := c.AveragePower()
	if total == 0 {
		return 0
	}
	return float64(c.NetworkAveragePower()) / float64(total)
}

// NetworkEfficiency returns the network's energy efficiency over one
// iteration: busy-time energy over total energy (the paper's 11%).
func (c *Cluster) NetworkEfficiency() float64 {
	return c.classGroupEfficiency(networkClasses, c.sched.NetworkPhases())
}

// ComputeEfficiency returns the compute hardware's energy efficiency.
func (c *Cluster) ComputeEfficiency() float64 {
	return c.classGroupEfficiency([]device.Class{device.ClassGPU}, c.sched.ComputePhases())
}

func (c *Cluster) classGroupEfficiency(classes []device.Class, phases []power.Phase) float64 {
	var useful, total float64
	for _, cl := range classes {
		m := c.models[cl]
		for _, ph := range phases {
			p := m.Idle()
			if ph.Busy {
				p = m.Max
				useful += float64(p) * float64(ph.Duration)
			}
			total += float64(p) * float64(ph.Duration)
		}
	}
	if total == 0 {
		return 0
	}
	return useful / total
}

// EnergyPerIteration returns the cluster energy consumed over one iteration.
func (c *Cluster) EnergyPerIteration() units.Energy {
	return units.EnergyOver(c.AveragePower(), c.sched.Total())
}
