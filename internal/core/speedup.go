package core

import (
	"fmt"
	"sort"

	"netpowerprop/internal/units"
)

// BudgetKind selects which power quantity a fixed power budget constrains.
type BudgetKind int

const (
	// AvgBudget constrains the time-averaged cluster power — the default.
	// Calibration: only the average-power budget reproduces Fig. 3's
	// published shape (200 G still beating 400 G at 50% proportionality,
	// 800/1600 G winning only above ~90%); see EXPERIMENTS.md.
	AvgBudget BudgetKind = iota
	// PeakBudget constrains the peak (provisioned) power instead; provided
	// as an ablation.
	PeakBudget
)

// String names the budget kind for CLI flags.
func (k BudgetKind) String() string {
	switch k {
	case AvgBudget:
		return "avg"
	case PeakBudget:
		return "peak"
	default:
		return fmt.Sprintf("BudgetKind(%d)", int(k))
	}
}

// ParseBudgetKind converts a CLI string into a BudgetKind.
func ParseBudgetKind(s string) (BudgetKind, error) {
	switch s {
	case "avg", "average", "":
		return AvgBudget, nil
	case "peak":
		return PeakBudget, nil
	default:
		return 0, fmt.Errorf("unknown budget kind %q (want avg or peak)", s)
	}
}

// budgetPower evaluates the budgeted quantity of a cluster.
func budgetPower(c *Cluster, kind BudgetKind) units.Power {
	if kind == PeakBudget {
		return c.PeakPower()
	}
	return c.AveragePower()
}

// OptimizeGPUs returns the largest GPU count whose cluster (built from cfg
// with GPUs replaced) fits the power budget, together with that cluster.
// Cluster power is monotone increasing in the GPU count, and iteration time
// is monotone decreasing, so the largest feasible count is optimal.
func OptimizeGPUs(cfg Config, budget units.Power, kind BudgetKind) (*Cluster, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("core: power budget %v must be positive", budget)
	}
	feasible := func(g int) (*Cluster, bool, error) {
		c := cfg
		c.GPUs = g
		cl, err := New(c)
		if err != nil {
			return nil, false, err
		}
		return cl, budgetPower(cl, kind) <= budget, nil
	}
	one, ok, err := feasible(1)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: budget %v cannot power even one GPU at %v", budget, cfg.Bandwidth)
	}
	// Exponential search for an infeasible upper bound.
	hi := 1
	var last *Cluster = one
	for {
		next := hi * 2
		cl, ok, err := feasible(next)
		if err != nil {
			return nil, err
		}
		if !ok {
			hi = next
			break
		}
		last = cl
		hi = next
		if hi > 1<<30 {
			return last, nil // absurdly large budget; accept
		}
	}
	// Binary search the feasibility boundary in (hi/2, hi].
	lo := hi / 2
	g := lo + sort.Search(hi-lo, func(d int) bool {
		_, ok, err := feasible(lo + d + 1)
		return err != nil || !ok
	})
	cl, ok, err := feasible(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return last, nil
	}
	return cl, nil
}

// SpeedupPoint is one point of Fig. 3 or Fig. 4.
type SpeedupPoint struct {
	Bandwidth       units.Bandwidth
	Proportionality float64
	// GPUs is the optimized GPU count under the power budget.
	GPUs int
	// IterationTime is the resulting iteration time.
	IterationTime units.Seconds
	// Speedup is (t_ref / t − 1): positive means faster than the reference.
	Speedup float64
}

// SpeedupCurve is one line of Fig. 3/4: a bandwidth across proportionality
// values.
type SpeedupCurve struct {
	Bandwidth units.Bandwidth
	Points    []SpeedupPoint
}

// Fig3 evaluates the paper's fixed-workload scenario (§3.3): with a fixed
// power budget taken from the baseline scenario, re-optimize the GPU count
// for every (bandwidth, proportionality) pair; communication time scales
// with bandwidth, and speedups are relative to the baseline scenario's
// iteration time.
func Fig3(base Config, bandwidths []units.Bandwidth, props []float64, kind BudgetKind) ([]SpeedupCurve, error) {
	baseCluster, err := New(base)
	if err != nil {
		return nil, fmt.Errorf("core: fig3 baseline: %w", err)
	}
	budget := budgetPower(baseCluster, kind)
	refTime := baseCluster.Iteration().Total()
	if refTime <= 0 {
		return nil, fmt.Errorf("core: fig3 baseline has zero iteration time")
	}
	curves := make([]SpeedupCurve, 0, len(bandwidths))
	for _, bw := range bandwidths {
		curve := SpeedupCurve{Bandwidth: bw}
		for _, p := range props {
			cfg := base
			cfg.Bandwidth = bw
			cfg.NetworkProportionality = p
			cl, err := OptimizeGPUs(cfg, budget, kind)
			if err != nil {
				return nil, fmt.Errorf("core: fig3 (%v, %v): %w", bw, p, err)
			}
			t := cl.Iteration().Total()
			curve.Points = append(curve.Points, SpeedupPoint{
				Bandwidth:       bw,
				Proportionality: p,
				GPUs:            cl.Config().GPUs,
				IterationTime:   t,
				Speedup:         float64(refTime)/float64(t) - 1,
			})
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Fig4 evaluates the paper's fixed-communication-ratio scenario (§3.3): the
// communication workload grows with bandwidth so the ratio stays pinned
// (default 10%); the power budget is taken from the baseline scenario, and
// each curve's speedups are relative to the *same bandwidth* at zero
// network power proportionality.
func Fig4(base Config, bandwidths []units.Bandwidth, props []float64, ratio float64, kind BudgetKind) ([]SpeedupCurve, error) {
	baseCluster, err := New(base)
	if err != nil {
		return nil, fmt.Errorf("core: fig4 baseline: %w", err)
	}
	budget := budgetPower(baseCluster, kind)
	curves := make([]SpeedupCurve, 0, len(bandwidths))
	for _, bw := range bandwidths {
		refCfg := base
		refCfg.Bandwidth = bw
		refCfg.NetworkProportionality = 0
		refCfg.FixedCommRatio = ratio
		refCl, err := OptimizeGPUs(refCfg, budget, kind)
		if err != nil {
			return nil, fmt.Errorf("core: fig4 reference at %v: %w", bw, err)
		}
		refTime := refCl.Iteration().Total()
		curve := SpeedupCurve{Bandwidth: bw}
		for _, p := range props {
			cfg := refCfg
			cfg.NetworkProportionality = p
			cl, err := OptimizeGPUs(cfg, budget, kind)
			if err != nil {
				return nil, fmt.Errorf("core: fig4 (%v, %v): %w", bw, p, err)
			}
			t := cl.Iteration().Total()
			curve.Points = append(curve.Points, SpeedupPoint{
				Bandwidth:       bw,
				Proportionality: p,
				GPUs:            cl.Config().GPUs,
				IterationTime:   t,
				Speedup:         float64(refTime)/float64(t) - 1,
			})
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Crossover is one row of the best-bandwidth table: the bandwidth that
// maximizes speedup at a proportionality.
type Crossover struct {
	Proportionality float64
	Best            units.Bandwidth
	Speedup         float64
}

// BestBandwidth reduces Fig. 3 curves to the winner at each
// proportionality — the crossover structure the paper narrates ("800 and
// 1600 Gbps speeds become the best alternatives only at very high
// proportionality values").
func BestBandwidth(curves []SpeedupCurve) ([]Crossover, error) {
	if len(curves) == 0 || len(curves[0].Points) == 0 {
		return nil, fmt.Errorf("core: empty speedup curves")
	}
	nProps := len(curves[0].Points)
	for _, c := range curves {
		if len(c.Points) != nProps {
			return nil, fmt.Errorf("core: ragged speedup curves")
		}
	}
	out := make([]Crossover, 0, nProps)
	for j := 0; j < nProps; j++ {
		best := Crossover{
			Proportionality: curves[0].Points[j].Proportionality,
			Best:            curves[0].Bandwidth,
			Speedup:         curves[0].Points[j].Speedup,
		}
		for _, c := range curves[1:] {
			if c.Points[j].Speedup > best.Speedup {
				best.Best = c.Bandwidth
				best.Speedup = c.Points[j].Speedup
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// FigProportionalities returns the x-axis sweep used for Figs. 3 and 4:
// 0 to 1 in 5% steps. Values are computed by division, not accumulation,
// so the endpoints are exact.
func FigProportionalities() []float64 {
	out := make([]float64, 21)
	for i := range out {
		out[i] = float64(i) / 20
	}
	return out
}
