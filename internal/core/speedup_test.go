package core

import (
	"math"
	"testing"

	"netpowerprop/internal/units"
)

func figBandwidths() []units.Bandwidth { return Table3Bandwidths() }

func fig3At(t *testing.T, props []float64, kind BudgetKind) map[float64]map[float64]float64 {
	t.Helper()
	curves, err := Fig3(Baseline(), figBandwidths(), props, kind)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[float64]map[float64]float64)
	for _, c := range curves {
		row := make(map[float64]float64)
		for _, p := range c.Points {
			row[p.Proportionality] = p.Speedup
		}
		out[c.Bandwidth.Gigabits()] = row
	}
	return out
}

// TestFig3BaselineAnchor: the baseline point (400 G, 10% proportionality)
// has zero speedup by construction.
func TestFig3BaselineAnchor(t *testing.T) {
	m := fig3At(t, []float64{0.10}, AvgBudget)
	if s := m[400][0.10]; math.Abs(s) > 1e-6 {
		t.Errorf("baseline anchor speedup = %v, want 0", s)
	}
}

// TestFig3LowerBandwidthWinsAtPoorProportionality asserts the paper's
// headline Fig. 3 finding: with poor proportionality, lower network
// bandwidth is faster overall — at 10% proportionality the 100 G and 200 G
// clusters beat 400 G, which beats 800 G, which beats 1600 G.
func TestFig3LowerBandwidthWinsAtPoorProportionality(t *testing.T) {
	m := fig3At(t, []float64{0.10}, AvgBudget)
	p := 0.10
	if !(m[200][p] > m[400][p] && m[100][p] > m[400][p]) {
		t.Errorf("at 10%% prop, 100G (%v) and 200G (%v) should beat 400G (%v)",
			m[100][p], m[200][p], m[400][p])
	}
	if !(m[400][p] > m[800][p] && m[800][p] > m[1600][p]) {
		t.Errorf("at 10%% prop, higher bandwidths should be slower: 400=%v 800=%v 1600=%v",
			m[400][p], m[800][p], m[1600][p])
	}
}

// TestFig3TwoHundredStillBeatsFourHundredAtFifty asserts: "even at 50%
// proportionality, a 200 Gbps network is still faster than a 400 Gbps one."
func TestFig3TwoHundredStillBeatsFourHundredAtFifty(t *testing.T) {
	m := fig3At(t, []float64{0.50}, AvgBudget)
	if m[200][0.50] <= m[400][0.50] {
		t.Errorf("at 50%% prop, 200G (%v) should still beat 400G (%v)",
			m[200][0.50], m[400][0.50])
	}
}

// TestFig3HighBandwidthNeedsVeryHighProportionality asserts: "800 and 1600
// Gbps speeds become the best alternatives only at very high
// proportionality values (> 90%)": at 90% they do not yet win; at 100%
// 1600 G is the best.
func TestFig3HighBandwidthNeedsVeryHighProportionality(t *testing.T) {
	m := fig3At(t, []float64{0.90, 1.00}, AvgBudget)
	best90 := bestBandwidth(m, 0.90)
	if best90 == 800 || best90 == 1600 {
		t.Errorf("at 90%% prop, best bandwidth = %vG; paper says 800/1600 win only above 90%%", best90)
	}
	best100 := bestBandwidth(m, 1.00)
	if best100 != 1600 {
		t.Errorf("at 100%% prop, best bandwidth = %vG, want 1600", best100)
	}
}

func bestBandwidth(m map[float64]map[float64]float64, p float64) float64 {
	best, bestV := 0.0, math.Inf(-1)
	for bw, row := range m {
		if row[p] > bestV {
			best, bestV = bw, row[p]
		}
	}
	return best
}

// TestFig3SixteenHundredWorstAtZero: the 1600 G curve starts deepest
// (paper: about −30% at the left edge).
func TestFig3SixteenHundredWorstAtZero(t *testing.T) {
	m := fig3At(t, []float64{0}, AvgBudget)
	if s := m[1600][0]; s > -0.20 || s < -0.40 {
		t.Errorf("1600G speedup at 0%% prop = %v, paper shows about -0.30", s)
	}
	for _, bw := range []float64{100, 200, 400, 800} {
		if m[bw][0] < m[1600][0] {
			t.Errorf("%vG (%v) should not be below 1600G (%v) at 0%% prop", bw, m[bw][0], m[1600][0])
		}
	}
}

// TestFig3MonotoneInProportionality: better proportionality never slows any
// bandwidth down ("better power proportionality improves the iteration time
// for all bandwidth speeds").
func TestFig3MonotoneInProportionality(t *testing.T) {
	props := []float64{0, 0.25, 0.5, 0.75, 1}
	curves, err := Fig3(Baseline(), figBandwidths(), props, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Speedup < c.Points[i-1].Speedup-1e-9 {
				t.Errorf("%v: speedup not monotone at prop %v", c.Bandwidth, c.Points[i].Proportionality)
			}
		}
	}
}

// TestFig3GPUCountsGrow: freeing network power budget adds GPUs — the
// optimized GPU count rises with proportionality for every bandwidth.
func TestFig3GPUCountsGrow(t *testing.T) {
	curves, err := Fig3(Baseline(), figBandwidths(), []float64{0, 0.5, 1}, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].GPUs <= c.Points[i-1].GPUs {
				t.Errorf("%v: GPU count not growing with proportionality", c.Bandwidth)
			}
		}
	}
}

// TestFig4ZeroAtReference: every Fig. 4 curve is zero at 0% proportionality
// by construction (speedups are relative to the same-bandwidth
// zero-proportionality network).
func TestFig4ZeroAtReference(t *testing.T) {
	curves, err := Fig4(Baseline(), figBandwidths(), []float64{0, 0.5}, 0.10, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if s := c.Points[0].Speedup; math.Abs(s) > 1e-9 {
			t.Errorf("%v: speedup at 0%% prop = %v, want 0", c.Bandwidth, s)
		}
	}
}

// TestFig4HigherBandwidthGainsMore asserts the paper's Fig. 4 finding: "the
// higher the bandwidth, the bigger the performance gain."
func TestFig4HigherBandwidthGainsMore(t *testing.T) {
	curves, err := Fig4(Baseline(), figBandwidths(), []float64{0.5, 1}, 0.10, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 2; col++ {
		for i := 1; i < len(curves); i++ {
			if curves[i].Points[col].Speedup <= curves[i-1].Points[col].Speedup {
				t.Errorf("at prop %v, %v gain (%v) should exceed %v gain (%v)",
					curves[i].Points[col].Proportionality,
					curves[i].Bandwidth, curves[i].Points[col].Speedup,
					curves[i-1].Bandwidth, curves[i-1].Points[col].Speedup)
			}
		}
	}
}

// TestFig4EightHundredAtFifty asserts the worked number: "a network power
// proportionality of 50% on a 800 Gbps network would enable a 10% speedup."
func TestFig4EightHundredAtFifty(t *testing.T) {
	curves, err := Fig4(Baseline(), []units.Bandwidth{800 * units.Gbps}, []float64{0.50}, 0.10, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	s := curves[0].Points[0].Speedup
	if math.Abs(s-0.10) > 0.025 {
		t.Errorf("800G at 50%% prop speedup = %.3f, paper reports ~0.10", s)
	}
}

// TestFig4FixedRatioHolds: every optimized cluster in Fig. 4 keeps the
// pinned 10% communication ratio.
func TestFig4FixedRatioHolds(t *testing.T) {
	curves, err := Fig4(Baseline(), figBandwidths(), []float64{0, 1}, 0.10, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline()
	for _, c := range curves {
		for _, p := range c.Points {
			cfg := base
			cfg.Bandwidth = c.Bandwidth
			cfg.NetworkProportionality = p.Proportionality
			cfg.FixedCommRatio = 0.10
			cfg.GPUs = p.GPUs
			cl := mustCluster(t, cfg)
			if got := cl.Iteration().CommRatio(); math.Abs(got-0.10) > 1e-9 {
				t.Errorf("%v prop %v: comm ratio = %v, want 0.10", c.Bandwidth, p.Proportionality, got)
			}
		}
	}
}

func TestOptimizeGPUs(t *testing.T) {
	base := Baseline()
	baseCl := mustCluster(t, base)
	budget := baseCl.AveragePower()
	// Optimizing the baseline config against its own average power recovers
	// (at least) the baseline GPU count.
	opt, err := OptimizeGPUs(base, budget, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.Config().GPUs; got < base.GPUs || got > base.GPUs+1 {
		t.Errorf("optimized GPUs = %d, want %d (+1 rounding at most)", got, base.GPUs)
	}
	// The result saturates the budget: one more GPU would exceed it.
	over := base
	over.GPUs = opt.Config().GPUs + 1
	overCl := mustCluster(t, over)
	if overCl.AveragePower() <= budget {
		t.Error("OptimizeGPUs left budget on the table")
	}
	// Errors.
	if _, err := OptimizeGPUs(base, 0, AvgBudget); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := OptimizeGPUs(base, 100*units.Watt, AvgBudget); err == nil {
		t.Error("budget below one GPU should fail")
	}
	bad := base
	bad.Bandwidth = 0
	if _, err := OptimizeGPUs(bad, budget, AvgBudget); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestOptimizeGPUsPeakVsAvg(t *testing.T) {
	base := Baseline()
	baseCl := mustCluster(t, base)
	// With the same numeric budget, a peak constraint is tighter than an
	// average constraint, so it affords fewer GPUs.
	budget := baseCl.PeakPower()
	peakOpt, err := OptimizeGPUs(base, budget, PeakBudget)
	if err != nil {
		t.Fatal(err)
	}
	avgOpt, err := OptimizeGPUs(base, budget, AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	if peakOpt.Config().GPUs > avgOpt.Config().GPUs {
		t.Errorf("peak-constrained GPUs (%d) should not exceed avg-constrained (%d)",
			peakOpt.Config().GPUs, avgOpt.Config().GPUs)
	}
}

func TestBudgetKindParse(t *testing.T) {
	for _, s := range []string{"avg", "average", ""} {
		k, err := ParseBudgetKind(s)
		if err != nil || k != AvgBudget {
			t.Errorf("ParseBudgetKind(%q) = %v, %v", s, k, err)
		}
	}
	k, err := ParseBudgetKind("peak")
	if err != nil || k != PeakBudget {
		t.Errorf("ParseBudgetKind(peak) = %v, %v", k, err)
	}
	if _, err := ParseBudgetKind("bogus"); err == nil {
		t.Error("bogus kind should fail")
	}
	if AvgBudget.String() != "avg" || PeakBudget.String() != "peak" {
		t.Error("BudgetKind.String broken")
	}
	if BudgetKind(9).String() != "BudgetKind(9)" {
		t.Error("unknown kind formatting broken")
	}
}

// TestBestBandwidthCrossovers pins the paper's crossover narrative with
// the full 5%-step sweep: 100/200 G win at poor proportionality, 400 G in
// the middle band, and 800/1600 G only above 90%.
func TestBestBandwidthCrossovers(t *testing.T) {
	curves, err := Fig3(Baseline(), figBandwidths(), FigProportionalities(), AvgBudget)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := BestBandwidth(curves)
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) != 21 {
		t.Fatalf("crossover rows = %d", len(cross))
	}
	for _, c := range cross {
		gb := c.Best.Gigabits()
		switch {
		case c.Proportionality <= 0.30:
			if gb > 200 {
				t.Errorf("at %.0f%% prop best = %vG; low proportionality should favor low bandwidth",
					c.Proportionality*100, gb)
			}
		case c.Proportionality >= 0.96:
			if gb < 800 {
				t.Errorf("at %.0f%% prop best = %vG; near-perfect proportionality should favor high bandwidth",
					c.Proportionality*100, gb)
			}
		}
		// The winner is never slower than the baseline scenario.
		if c.Speedup < 0 {
			t.Errorf("best speedup at %.0f%% prop is negative: %v", c.Proportionality*100, c.Speedup)
		}
	}
	// 800/1600 must NOT win anywhere at or below 90%.
	for _, c := range cross {
		if c.Proportionality <= 0.90+1e-9 && c.Best.Gigabits() >= 800 {
			t.Errorf("%vG wins already at %.0f%% proportionality; paper says only above 90%%",
				c.Best.Gigabits(), c.Proportionality*100)
		}
	}
}

func TestBestBandwidthErrors(t *testing.T) {
	if _, err := BestBandwidth(nil); err == nil {
		t.Error("empty curves accepted")
	}
	ragged := []SpeedupCurve{
		{Bandwidth: 100, Points: []SpeedupPoint{{}, {}}},
		{Bandwidth: 200, Points: []SpeedupPoint{{}}},
	}
	if _, err := BestBandwidth(ragged); err == nil {
		t.Error("ragged curves accepted")
	}
}

func TestFigProportionalities(t *testing.T) {
	props := FigProportionalities()
	if len(props) != 21 || props[0] != 0 {
		t.Fatalf("FigProportionalities = %v", props)
	}
	if math.Abs(props[20]-1.0) > 1e-9 {
		t.Errorf("last proportionality = %v, want 1.0", props[20])
	}
	for i := 1; i < len(props); i++ {
		if props[i] <= props[i-1] {
			t.Error("proportionality sweep not ascending")
		}
	}
}

func TestFigErrors(t *testing.T) {
	bad := Baseline()
	bad.GPUs = 0
	if _, err := Fig3(bad, figBandwidths(), []float64{0.5}, AvgBudget); err == nil {
		t.Error("invalid base should fail Fig3")
	}
	if _, err := Fig4(bad, figBandwidths(), []float64{0.5}, 0.10, AvgBudget); err == nil {
		t.Error("invalid base should fail Fig4")
	}
	if _, err := Fig4(Baseline(), figBandwidths(), []float64{0.5}, 1.5, AvgBudget); err == nil {
		t.Error("invalid ratio should fail Fig4")
	}
}
