package core

import (
	"fmt"

	"netpowerprop/internal/units"
)

// CostModel converts saved power into annual operating-cost savings, the
// way §3.2 does: saved network power at the average US commercial
// electricity price, plus the induced cooling savings.
type CostModel struct {
	// PricePerKWh is the electricity price in dollars per kWh
	// (paper: $0.13, US commercial average [11]).
	PricePerKWh float64
	// CoolingOverhead is the cooling power as a fraction of IT power
	// (paper: 0.30, from [35]).
	CoolingOverhead float64
}

// DefaultCostModel returns the paper's §3.2 assumptions.
func DefaultCostModel() CostModel {
	return CostModel{PricePerKWh: 0.13, CoolingOverhead: 0.30}
}

// HoursPerYear is the 365-day year used for annualized savings.
const HoursPerYear = 365 * 24

// Savings is an annualized cost-saving estimate.
type Savings struct {
	// SavedPower is the average power reduction the savings derive from.
	SavedPower units.Power
	// ElectricityPerYear is the direct annual electricity saving ($).
	ElectricityPerYear float64
	// CoolingPerYear is the annual cooling saving ($).
	CoolingPerYear float64
}

// Total returns electricity plus cooling savings per year.
func (s Savings) Total() float64 { return s.ElectricityPerYear + s.CoolingPerYear }

// Annualize converts an average power reduction into annual dollar savings.
func (m CostModel) Annualize(saved units.Power) (Savings, error) {
	if m.PricePerKWh < 0 || m.CoolingOverhead < 0 {
		return Savings{}, fmt.Errorf("core: negative cost-model parameter (%+v)", m)
	}
	if saved < 0 {
		return Savings{}, fmt.Errorf("core: negative saved power %v", saved)
	}
	kwhPerYear := saved.Kilowatts() * HoursPerYear
	return Savings{
		SavedPower:         saved,
		ElectricityPerYear: kwhPerYear * m.PricePerKWh,
		CoolingPerYear:     kwhPerYear * m.CoolingOverhead * m.PricePerKWh,
	}, nil
}

// Section32 reproduces §3.2's worked example: the absolute power saved by
// improving the baseline 400 G cluster's network proportionality from 10%
// to the given value, annualized with the default cost model. The paper's
// numbers at 50%: ~365 kW saved, ~$416k/yr electricity, ~$125k/yr cooling.
func Section32(proportionality float64) (Savings, error) {
	grid, err := ComputeSavingsGrid(Baseline(),
		[]units.Bandwidth{400 * units.Gbps}, []float64{proportionality}, 0.10)
	if err != nil {
		return Savings{}, err
	}
	return DefaultCostModel().Annualize(grid.Cell(0, 0).SavedPower)
}
