package fattree

import (
	"errors"
	"testing"

	"netpowerprop/internal/units"
)

func TestBuildTwoTierCounts(t *testing.T) {
	top, err := BuildTwoTier(4, 100*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 leaves, 2 spines, 8 hosts; links: 8 host + 4*2 leaf-spine.
	if got := len(top.Hosts()); got != 8 {
		t.Errorf("hosts = %d, want 8", got)
	}
	if got := len(top.SwitchIDs()); got != 6 {
		t.Errorf("switches = %d, want 6", got)
	}
	if got := len(top.Links); got != 16 {
		t.Errorf("links = %d, want 16", got)
	}
	optical := 0
	for _, l := range top.Links {
		if l.Optical {
			optical++
		}
	}
	if optical != 8 {
		t.Errorf("optical links = %d, want 8 (leaf-spine only)", optical)
	}
	if err := top.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Matches the sizing formula at full capacity.
	if sw, _ := StageSwitches(4, 2); sw != len(top.SwitchIDs()) {
		t.Errorf("topology switches %d disagree with formula %d", len(top.SwitchIDs()), sw)
	}
	if ln, _ := StageLinks(4, 2); ln != optical {
		t.Errorf("topology optical links %d disagree with formula %d", optical, ln)
	}
}

func TestBuildThreeTierCounts(t *testing.T) {
	top, err := BuildThreeTier(4, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 16 hosts, 20 switches (8 edge + 8 agg + 4 core), 32 optical links.
	if got := len(top.Hosts()); got != 16 {
		t.Errorf("hosts = %d, want 16", got)
	}
	if got := len(top.SwitchIDs()); got != 20 {
		t.Errorf("switches = %d, want 20", got)
	}
	optical := 0
	for _, l := range top.Links {
		if l.Optical {
			optical++
		}
	}
	if optical != 32 {
		t.Errorf("optical links = %d, want 32", optical)
	}
	if err := top.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if sw, _ := StageSwitches(4, 3); sw != len(top.SwitchIDs()) {
		t.Errorf("topology switches %d disagree with formula %d", len(top.SwitchIDs()), sw)
	}
	if ln, _ := StageLinks(4, 3); ln != optical {
		t.Errorf("topology optical links %d disagree with formula %d", optical, ln)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildTwoTier(3, 100*units.Gbps); err == nil {
		t.Error("odd radix should fail")
	}
	if _, err := BuildThreeTier(0, 100*units.Gbps); err == nil {
		t.Error("zero radix should fail")
	}
}

func TestEdgeOf(t *testing.T) {
	top, _ := BuildThreeTier(4, 400*units.Gbps)
	for _, h := range top.Hosts() {
		e, err := top.EdgeOf(h)
		if err != nil {
			t.Fatalf("EdgeOf(%d): %v", h, err)
		}
		if top.Nodes[e].Kind != KindEdge {
			t.Errorf("EdgeOf(%d) = node kind %v", h, top.Nodes[e].Kind)
		}
		if top.Nodes[e].Pod != top.Nodes[h].Pod {
			t.Errorf("host %d pod %d but edge pod %d", h, top.Nodes[h].Pod, top.Nodes[e].Pod)
		}
	}
	sw := top.SwitchIDs()[0]
	if _, err := top.EdgeOf(sw); err == nil {
		t.Error("EdgeOf(switch) should fail")
	}
}

func TestPathsSameEdge(t *testing.T) {
	top, _ := BuildThreeTier(4, 400*units.Gbps)
	// Hosts under the same edge: exactly one 2-link path.
	hosts := top.Hosts()
	var a, b int = -1, -1
	for _, h1 := range hosts {
		e1, _ := top.EdgeOf(h1)
		for _, h2 := range hosts {
			if h1 == h2 {
				continue
			}
			if e2, _ := top.EdgeOf(h2); e1 == e2 {
				a, b = h1, h2
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	paths, err := top.Paths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("same-edge paths = %v, want one 2-hop path", paths)
	}
}

func TestPathsSamePod(t *testing.T) {
	top, _ := BuildThreeTier(4, 400*units.Gbps)
	// Find two hosts in the same pod but different edges.
	var a, b int = -1, -1
	for _, h1 := range top.Hosts() {
		e1, _ := top.EdgeOf(h1)
		for _, h2 := range top.Hosts() {
			if h1 == h2 || top.Nodes[h1].Pod != top.Nodes[h2].Pod {
				continue
			}
			if e2, _ := top.EdgeOf(h2); e1 != e2 {
				a, b = h1, h2
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	paths, err := top.Paths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 2 aggs per pod -> 2 paths of 4 links.
	if len(paths) != 2 {
		t.Errorf("same-pod path count = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("same-pod path length = %d, want 4", len(p))
		}
	}
}

func TestPathsCrossPod(t *testing.T) {
	top, _ := BuildThreeTier(4, 400*units.Gbps)
	var a, b int = -1, -1
	for _, h1 := range top.Hosts() {
		for _, h2 := range top.Hosts() {
			if top.Nodes[h1].Pod != top.Nodes[h2].Pod {
				a, b = h1, h2
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	paths, err := top.Paths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// k=4 fat tree: 4 core switches -> 4 distinct cross-pod paths of 6 links.
	if len(paths) != 4 {
		t.Errorf("cross-pod path count = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if len(p) != 6 {
			t.Errorf("cross-pod path length = %d, want 6", len(p))
		}
		// Path must be connected: consecutive links share a node.
		prev := top.Links[p[0]]
		for i := 1; i < len(p); i++ {
			cur := top.Links[p[i]]
			if prev.A != cur.A && prev.A != cur.B && prev.B != cur.A && prev.B != cur.B {
				t.Errorf("path %v disconnected at hop %d", p, i)
			}
			prev = cur
		}
	}
}

func TestPathsTwoTier(t *testing.T) {
	top, _ := BuildTwoTier(4, 100*units.Gbps)
	hosts := top.Hosts()
	// Hosts on different leaves: k/2 = 2 paths of 4 links.
	var a, b int = -1, -1
	for _, h1 := range hosts {
		e1, _ := top.EdgeOf(h1)
		for _, h2 := range hosts {
			if h1 == h2 {
				continue
			}
			if e2, _ := top.EdgeOf(h2); e1 != e2 {
				a, b = h1, h2
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	paths, err := top.Paths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Errorf("two-tier path count = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("two-tier path length = %d, want 4", len(p))
		}
	}
}

func TestPathsErrors(t *testing.T) {
	top, _ := BuildTwoTier(4, 100*units.Gbps)
	h := top.Hosts()[0]
	if _, err := top.Paths(h, h); err == nil {
		t.Error("same-host path should fail")
	}
	sw := top.SwitchIDs()[0]
	if _, err := top.Paths(sw, h); err == nil {
		t.Error("switch source should fail")
	}
}

func TestLinkHelpers(t *testing.T) {
	top, _ := BuildTwoTier(4, 100*units.Gbps)
	h := top.Hosts()[0]
	e, _ := top.EdgeOf(h)
	l, ok := top.LinkBetween(h, e)
	if !ok {
		t.Fatal("host-edge link missing")
	}
	// Order of arguments must not matter.
	l2, ok := top.LinkBetween(e, h)
	if !ok || l2.ID != l.ID {
		t.Error("LinkBetween not symmetric")
	}
	if top.Peer(l.ID, h) != e || top.Peer(l.ID, e) != h {
		t.Error("Peer broken")
	}
	if _, ok := top.LinkBetween(h, top.Hosts()[1]); ok {
		t.Error("hosts are not directly linked")
	}
	if got := top.LinksOf(h); len(got) != 1 {
		t.Errorf("host degree = %d, want 1", len(got))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	top, _ := BuildTwoTier(4, 100*units.Gbps)
	bad := *top
	bad.Links = append([]Link{}, top.Links...)
	bad.Links[0].B = bad.Links[0].A // self loop
	if err := bad.Validate(); err == nil {
		t.Error("self-loop should fail validation")
	}
	bad.Links[0] = Link{ID: 0, A: 0, B: 10_000}
	if err := bad.Validate(); err == nil {
		t.Error("dangling endpoint should fail validation")
	}
}

func TestNodeKindString(t *testing.T) {
	want := map[NodeKind]string{KindHost: "host", KindEdge: "edge", KindAgg: "agg", KindCore: "core"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("NodeKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if NodeKind(9).String() != "NodeKind(9)" {
		t.Error("unknown kind formatting broken")
	}
}

// Regression: path queries with degenerate arguments must return typed
// errors, never panic — callers outside the package probe topologies with
// arbitrary IDs (the zoo scenario iterates host pairs mechanically).
func TestPathsTypedErrors(t *testing.T) {
	top, _ := BuildTwoTier(4, 100*units.Gbps)
	h := top.Hosts()[0]
	if _, err := top.Paths(h, h); !errors.Is(err, ErrSameHost) {
		t.Errorf("same-host error = %v, want ErrSameHost", err)
	}
	for _, bad := range []int{-1, len(top.Nodes), len(top.Nodes) + 100} {
		if _, err := top.Paths(bad, h); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("Paths(%d, h) error = %v, want ErrUnknownNode", bad, err)
		}
		if _, err := top.Paths(h, bad); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("Paths(h, %d) error = %v, want ErrUnknownNode", bad, err)
		}
		if _, err := top.EdgeOf(bad); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("EdgeOf(%d) error = %v, want ErrUnknownNode", bad, err)
		}
	}
}

// GraphBuilder must produce topologies equivalent to the package's own
// builders: adjacency indexed, hosts in insertion order, and a custom
// path enumerator honored by Paths.
func TestGraphBuilder(t *testing.T) {
	g := NewGraphBuilder(4, 2)
	sw := g.AddNode(KindEdge, 0, 0)
	h1 := g.AddNode(KindHost, 0, 0)
	h2 := g.AddNode(KindHost, 0, 1)
	if err := g.AddLink(h1, sw, 100*units.Gbps, false); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(h2, sw, 100*units.Gbps, false); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(h1, sw, 100*units.Gbps, false); err == nil {
		t.Error("duplicate link should fail")
	}
	if err := g.AddLink(sw, sw, 100*units.Gbps, false); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddLink(sw, 99, 100*units.Gbps, false); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("out-of-range endpoint error = %v, want ErrUnknownNode", err)
	}
	top := g.Topology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := top.Hosts(); len(got) != 2 || got[0] != h1 || got[1] != h2 {
		t.Errorf("hosts = %v, want [%d %d]", got, h1, h2)
	}
	if e, err := top.EdgeOf(h1); err != nil || e != sw {
		t.Errorf("EdgeOf = %d, %v", e, err)
	}
	// Built-in 2-tier enumeration handles the shared-edge pair...
	paths, err := top.Paths(h1, h2)
	if err != nil || len(paths) != 1 {
		t.Fatalf("paths = %v, %v", paths, err)
	}
	// ...and a custom enumerator takes over when installed.
	called := false
	top.SetPathFn(func(src, dst int) ([][]int, error) {
		called = true
		return [][]int{{0, 1}}, nil
	})
	if _, err := top.Paths(h1, h2); err != nil || !called {
		t.Errorf("custom enumerator not used (err %v)", err)
	}
	// Degenerate queries are rejected before the enumerator runs.
	called = false
	if _, err := top.Paths(h1, h1); !errors.Is(err, ErrSameHost) || called {
		t.Errorf("same-host guard bypassed (err %v, called %v)", err, called)
	}
}
