package fattree

import (
	"errors"
	"fmt"

	"netpowerprop/internal/units"
)

// Typed path-query errors, so callers can distinguish a degenerate query
// from a genuinely broken topology with errors.Is.
var (
	// ErrSameHost is returned by Paths when src == dst: a host-to-itself
	// query has no network path by definition.
	ErrSameHost = errors.New("src and dst are the same host")
	// ErrUnknownNode is returned when a node ID is outside the topology.
	ErrUnknownNode = errors.New("unknown node")
)

// NodeKind distinguishes topology node roles.
type NodeKind int

// Node kinds, bottom-up.
const (
	KindHost NodeKind = iota
	KindEdge
	KindAgg
	KindCore
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdge:
		return "edge"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of an explicit topology: a host or a switch.
type Node struct {
	ID   int
	Kind NodeKind
	// Pod is the pod index for edge/agg switches and hosts; -1 for core.
	Pod int
	// Index is the position within the pod (or within the core layer).
	Index int
}

// IsSwitch reports whether the node is a switch of any tier.
func (n Node) IsSwitch() bool { return n.Kind != KindHost }

// Link is an undirected edge between two nodes. Links are full duplex with
// the same speed each direction.
type Link struct {
	ID    int
	A, B  int // node IDs, A < B
	Speed units.Bandwidth
	// Optical marks switch-to-switch links (which carry two optical
	// transceivers in the power model); host links are electrical.
	Optical bool
}

// Topology is an explicit fat-tree graph, used by the flow-level simulator.
// Build it with BuildTwoTier or BuildThreeTier.
type Topology struct {
	Ports  int // switch radix k
	Stages int // 2 or 3
	Nodes  []Node
	Links  []Link

	hosts    []int          // node IDs of hosts in order
	adjacent map[int][]int  // node ID -> link IDs
	linkAt   map[[2]int]int // (min,max) node pair -> link ID

	// pathFn, when set, replaces the built-in Clos path enumeration for
	// topologies whose Pod/Kind semantics don't match a folded Clos (the
	// internal/topo zoo installs a BFS enumerator here). It is only called
	// with validated, distinct host IDs.
	pathFn func(src, dst int) ([][]int, error)
}

// Hosts returns the node IDs of all hosts, in construction order.
func (t *Topology) Hosts() []int { return t.hosts }

// SwitchIDs returns the node IDs of all switches.
func (t *Topology) SwitchIDs() []int {
	var out []int
	for _, n := range t.Nodes {
		if n.IsSwitch() {
			out = append(out, n.ID)
		}
	}
	return out
}

// LinksOf returns the link IDs incident to a node.
func (t *Topology) LinksOf(node int) []int { return t.adjacent[node] }

// LinkBetween returns the link joining two nodes, if any.
func (t *Topology) LinkBetween(a, b int) (Link, bool) {
	if a > b {
		a, b = b, a
	}
	id, ok := t.linkAt[[2]int{a, b}]
	if !ok {
		return Link{}, false
	}
	return t.Links[id], true
}

// Peer returns the node at the other end of a link.
func (t *Topology) Peer(linkID, node int) int {
	l := t.Links[linkID]
	if l.A == node {
		return l.B
	}
	return l.A
}

// EdgeOf returns the edge switch a host attaches to.
func (t *Topology) EdgeOf(host int) (int, error) {
	if host < 0 || host >= len(t.Nodes) {
		return 0, fmt.Errorf("fattree: %w: node %d outside [0,%d)", ErrUnknownNode, host, len(t.Nodes))
	}
	n := t.Nodes[host]
	if n.Kind != KindHost {
		return 0, fmt.Errorf("fattree: node %d is a %v, not a host", host, n.Kind)
	}
	for _, lid := range t.adjacent[host] {
		p := t.Peer(lid, host)
		if t.Nodes[p].Kind == KindEdge {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fattree: host %d has no edge switch", host)
}

// SetPathFn installs a custom path enumerator, replacing the built-in
// Clos up/down enumeration. Generators for non-Clos topologies (dragonfly,
// torus, …) use this to keep Paths — and therefore netsim's ECMP routing
// and fault rerouting — working on arbitrary graphs. The enumerator must
// be deterministic; it is called with validated, distinct host IDs only.
func (t *Topology) SetPathFn(fn func(src, dst int) ([][]int, error)) { t.pathFn = fn }

// Paths enumerates the ECMP path set between two distinct hosts as
// sequences of link IDs. For Clos builds this is every shortest up/down
// path; topologies with a custom enumerator (SetPathFn) define their own
// set. src==dst and out-of-range IDs return typed errors (ErrSameHost,
// ErrUnknownNode), never panic.
func (t *Topology) Paths(src, dst int) ([][]int, error) {
	if src < 0 || src >= len(t.Nodes) {
		return nil, fmt.Errorf("fattree: %w: node %d outside [0,%d)", ErrUnknownNode, src, len(t.Nodes))
	}
	if dst < 0 || dst >= len(t.Nodes) {
		return nil, fmt.Errorf("fattree: %w: node %d outside [0,%d)", ErrUnknownNode, dst, len(t.Nodes))
	}
	if src == dst {
		return nil, fmt.Errorf("fattree: %w: host %d", ErrSameHost, src)
	}
	if t.pathFn != nil {
		return t.pathFn(src, dst)
	}
	se, err := t.EdgeOf(src)
	if err != nil {
		return nil, err
	}
	de, err := t.EdgeOf(dst)
	if err != nil {
		return nil, err
	}
	up1, _ := t.LinkBetween(src, se)
	down1, _ := t.LinkBetween(dst, de)
	if se == de {
		return [][]int{{up1.ID, down1.ID}}, nil
	}
	var paths [][]int
	if t.Nodes[se].Pod == t.Nodes[de].Pod {
		// Same pod: up to any shared agg, down.
		for _, lid := range t.adjacent[se] {
			agg := t.Peer(lid, se)
			if t.Nodes[agg].Kind != KindAgg {
				continue
			}
			l2, ok := t.LinkBetween(agg, de)
			if !ok {
				continue
			}
			paths = append(paths, []int{up1.ID, lid, l2.ID, down1.ID})
		}
		if len(paths) > 0 {
			return paths, nil
		}
	}
	// Cross pod (or 2-tier same "pod" semantics): edge -> agg/spine -> (core ->)
	// matching agg -> edge.
	for _, l1 := range t.adjacent[se] {
		mid := t.Peer(l1, se)
		midNode := t.Nodes[mid]
		if midNode.Kind == KindHost {
			continue
		}
		if t.Stages == 2 {
			// Two tiers: mid is a spine directly adjacent to both edges.
			if l2, ok := t.LinkBetween(mid, de); ok {
				paths = append(paths, []int{up1.ID, l1, l2.ID, down1.ID})
			}
			continue
		}
		if midNode.Kind != KindAgg {
			continue
		}
		for _, l2 := range t.adjacent[mid] {
			core := t.Peer(l2, mid)
			if t.Nodes[core].Kind != KindCore {
				continue
			}
			for _, l3 := range t.adjacent[core] {
				agg2 := t.Peer(l3, core)
				if t.Nodes[agg2].Kind != KindAgg || t.Nodes[agg2].Pod != t.Nodes[de].Pod {
					continue
				}
				if l4, ok := t.LinkBetween(agg2, de); ok {
					paths = append(paths, []int{up1.ID, l1, l2, l3, l4.ID, down1.ID})
				}
			}
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("fattree: no path between hosts %d and %d", src, dst)
	}
	return paths, nil
}

// builder accumulates nodes and links.
type builder struct {
	t Topology
}

func (b *builder) addNode(kind NodeKind, pod, index int) int {
	id := len(b.t.Nodes)
	b.t.Nodes = append(b.t.Nodes, Node{ID: id, Kind: kind, Pod: pod, Index: index})
	if kind == KindHost {
		b.t.hosts = append(b.t.hosts, id)
	}
	return id
}

func (b *builder) addLink(a, bID int, speed units.Bandwidth, optical bool) {
	if a > bID {
		a, bID = bID, a
	}
	id := len(b.t.Links)
	b.t.Links = append(b.t.Links, Link{ID: id, A: a, B: bID, Speed: speed, Optical: optical})
	b.t.adjacent[a] = append(b.t.adjacent[a], id)
	b.t.adjacent[bID] = append(b.t.adjacent[bID], id)
	b.t.linkAt[[2]int{a, bID}] = id
}

func newBuilder(ports, stages int) *builder {
	return &builder{t: Topology{
		Ports:    ports,
		Stages:   stages,
		adjacent: make(map[int][]int),
		linkAt:   make(map[[2]int]int),
	}}
}

// BuildTwoTier constructs a full two-tier (leaf-spine) fat tree from k-port
// switches: k leaves, k/2 spines, k²/2 hosts, every leaf wired to every
// spine once. All links run at the given speed.
func BuildTwoTier(ports int, speed units.Bandwidth) (*Topology, error) {
	if err := checkPorts(ports); err != nil {
		return nil, err
	}
	k := ports
	b := newBuilder(k, 2)
	leaves := make([]int, k)
	spines := make([]int, k/2)
	for i := range spines {
		spines[i] = b.addNode(KindCore, -1, i)
	}
	for i := range leaves {
		leaves[i] = b.addNode(KindEdge, i, 0)
		for h := 0; h < k/2; h++ {
			host := b.addNode(KindHost, i, h)
			b.addLink(host, leaves[i], speed, false)
		}
		for _, s := range spines {
			b.addLink(leaves[i], s, speed, true)
		}
	}
	return &b.t, nil
}

// BuildThreeTier constructs the classic three-tier fat tree from k-port
// switches: k pods of k/2 edge and k/2 aggregation switches, (k/2)² core
// switches, k³/4 hosts. Aggregation switch j of each pod connects to core
// switches [j·k/2, (j+1)·k/2).
func BuildThreeTier(ports int, speed units.Bandwidth) (*Topology, error) {
	if err := checkPorts(ports); err != nil {
		return nil, err
	}
	k := ports
	half := k / 2
	b := newBuilder(k, 3)
	cores := make([]int, half*half)
	for i := range cores {
		cores[i] = b.addNode(KindCore, -1, i)
	}
	for p := 0; p < k; p++ {
		aggs := make([]int, half)
		for j := 0; j < half; j++ {
			aggs[j] = b.addNode(KindAgg, p, j)
			for c := j * half; c < (j+1)*half; c++ {
				b.addLink(aggs[j], cores[c], speed, true)
			}
		}
		for e := 0; e < half; e++ {
			edge := b.addNode(KindEdge, p, e)
			for _, a := range aggs {
				b.addLink(edge, a, speed, true)
			}
			for h := 0; h < half; h++ {
				host := b.addNode(KindHost, p, e*half+h)
				b.addLink(host, edge, speed, false)
			}
		}
	}
	return &b.t, nil
}

// GraphBuilder assembles an explicit Topology node by node, for topology
// generators outside this package (the internal/topo zoo). It maintains
// the same adjacency and link indexes the Clos builders do, so the result
// is a first-class Topology: netsim, fault injection, and powergate all
// consume it unchanged.
type GraphBuilder struct {
	b *builder
}

// NewGraphBuilder starts an empty topology with the given switch radix and
// nominal stage count (the stage count only matters to the built-in Clos
// Paths enumeration; custom-routed topologies may pass any value ≥ 1).
func NewGraphBuilder(ports, stages int) *GraphBuilder {
	return &GraphBuilder{b: newBuilder(ports, stages)}
}

// AddNode appends a node and returns its ID. Hosts are recorded in
// Hosts() order of insertion.
func (g *GraphBuilder) AddNode(kind NodeKind, pod, index int) int {
	return g.b.addNode(kind, pod, index)
}

// AddLink joins two existing nodes with a full-duplex link.
func (g *GraphBuilder) AddLink(a, b int, speed units.Bandwidth, optical bool) error {
	n := len(g.b.t.Nodes)
	if a < 0 || a >= n || b < 0 || b >= n {
		return fmt.Errorf("fattree: %w: link endpoints (%d,%d) outside [0,%d)", ErrUnknownNode, a, b, n)
	}
	if a == b {
		return fmt.Errorf("fattree: link (%d,%d) is a self-loop", a, b)
	}
	if _, dup := g.b.t.LinkBetween(a, b); dup {
		return fmt.Errorf("fattree: duplicate link between %d and %d", a, b)
	}
	g.b.addLink(a, b, speed, optical)
	return nil
}

// Topology returns the built graph. The builder must not be reused after.
func (g *GraphBuilder) Topology() *Topology { return &g.b.t }

// Validate checks structural invariants: port budgets respected, link
// endpoints exist, host degree 1, and (for full trees) the expected counts.
func (t *Topology) Validate() error {
	degree := make(map[int]int)
	for _, l := range t.Links {
		if l.A < 0 || l.B < 0 || l.A >= len(t.Nodes) || l.B >= len(t.Nodes) {
			return fmt.Errorf("fattree: link %d endpoint out of range", l.ID)
		}
		if l.A == l.B {
			return fmt.Errorf("fattree: link %d is a self-loop", l.ID)
		}
		degree[l.A]++
		degree[l.B]++
	}
	for _, n := range t.Nodes {
		d := degree[n.ID]
		switch {
		case n.Kind == KindHost && d != 1:
			return fmt.Errorf("fattree: host %d has degree %d, want 1", n.ID, d)
		case n.IsSwitch() && d > t.Ports:
			return fmt.Errorf("fattree: switch %d uses %d ports, radix %d", n.ID, d, t.Ports)
		}
	}
	return nil
}
