package fattree

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStageCapacity(t *testing.T) {
	tests := []struct{ ports, stages, want int }{
		{4, 1, 4},      // 2*(2)^1
		{4, 2, 8},      // 2*4
		{4, 3, 16},     // k^3/4
		{128, 2, 8192}, // 400G baseline two-stage
		{128, 3, 524288},
		{512, 2, 131072}, // 100G
		{32, 3, 8192},    // 1600G three-stage
		{32, 4, 131072},
	}
	for _, tt := range tests {
		got, err := StageCapacity(tt.ports, tt.stages)
		if err != nil {
			t.Fatalf("StageCapacity(%d,%d): %v", tt.ports, tt.stages, err)
		}
		if got != tt.want {
			t.Errorf("StageCapacity(%d,%d) = %d, want %d", tt.ports, tt.stages, got, tt.want)
		}
	}
}

func TestStageSwitches(t *testing.T) {
	tests := []struct{ ports, stages, want int }{
		{4, 1, 1},
		{4, 2, 6},  // 3*(k/2)
		{4, 3, 20}, // 5k²/4
		{128, 2, 192},
		{128, 3, 20480},
		{32, 3, 1280},
		{32, 4, 28672},
	}
	for _, tt := range tests {
		got, err := StageSwitches(tt.ports, tt.stages)
		if err != nil {
			t.Fatalf("StageSwitches(%d,%d): %v", tt.ports, tt.stages, err)
		}
		if got != tt.want {
			t.Errorf("StageSwitches(%d,%d) = %d, want %d", tt.ports, tt.stages, got, tt.want)
		}
	}
}

func TestStageLinks(t *testing.T) {
	tests := []struct{ ports, stages, want int }{
		{4, 1, 0},
		{4, 2, 8},  // one boundary, N=8
		{4, 3, 32}, // two boundaries, N=16
		{128, 2, 8192},
		{128, 3, 1048576},
	}
	for _, tt := range tests {
		got, err := StageLinks(tt.ports, tt.stages)
		if err != nil {
			t.Fatalf("StageLinks(%d,%d): %v", tt.ports, tt.stages, err)
		}
		if got != tt.want {
			t.Errorf("StageLinks(%d,%d) = %d, want %d", tt.ports, tt.stages, got, tt.want)
		}
	}
}

func TestStageValidation(t *testing.T) {
	if _, err := StageCapacity(3, 2); err == nil {
		t.Error("odd radix should fail")
	}
	if _, err := StageCapacity(0, 2); err == nil {
		t.Error("zero radix should fail")
	}
	if _, err := StageCapacity(4, 0); err == nil {
		t.Error("zero stages should fail")
	}
	if _, err := StageCapacity(4, 99); err == nil {
		t.Error("excessive stages should fail")
	}
	if _, err := StageSwitches(4, 0); err == nil {
		t.Error("StageSwitches zero stages should fail")
	}
}

// TestSizeBaseline400G reproduces the paper's baseline network: 15,360 hosts
// at 400G (k=128). The host count falls between the 2-stage (8,192) and
// 3-stage (524,288) capacities; absolute interpolation yields ~474 switches,
// which calibrates the paper's 12% network power share (see DESIGN.md).
func TestSizeBaseline400G(t *testing.T) {
	d, err := Size(15360, 128, InterpAbsolute)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(15360-8192) / float64(524288-8192)
	wantSwitches := 192 + frac*(20480-192)
	if math.Abs(d.Switches-wantSwitches) > 1e-6 {
		t.Errorf("Switches = %v, want %v", d.Switches, wantSwitches)
	}
	if d.Switches < 450 || d.Switches > 500 {
		t.Errorf("Switches = %v, expected ~474 for the calibrated baseline", d.Switches)
	}
	// Links follow the per-host rule: (stages_eff − 1) per host.
	wantLinks := (1 + frac) * 15360
	if math.Abs(d.InterSwitchLinks-wantLinks) > 1e-6 {
		t.Errorf("InterSwitchLinks = %v, want %v", d.InterSwitchLinks, wantLinks)
	}
	if math.Abs(d.Stages-(2+frac)) > 1e-9 {
		t.Errorf("Stages = %v, want %v", d.Stages, 2+frac)
	}
	if d.Transceivers() != 2*d.InterSwitchLinks {
		t.Errorf("Transceivers = %v, want 2x links", d.Transceivers())
	}
}

func TestSizeExactCapacities(t *testing.T) {
	// Exactly at a stage capacity: no interpolation.
	d, err := Size(8192, 128, InterpAbsolute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Switches != 192 || d.Stages != 2 || d.InterSwitchLinks != 8192 {
		t.Errorf("Size(8192,128) = %+v", d)
	}
	d, err = Size(524288, 128, InterpPerHost)
	if err != nil {
		t.Fatal(err)
	}
	if d.Switches != 20480 || d.Stages != 3 {
		t.Errorf("Size(524288,128) = %+v", d)
	}
}

func TestSizeSingleSwitch(t *testing.T) {
	for _, hosts := range []int{1, 64, 128} {
		d, err := Size(hosts, 128, InterpAbsolute)
		if err != nil {
			t.Fatal(err)
		}
		if d.Switches != 1 || d.InterSwitchLinks != 0 || d.Stages != 1 {
			t.Errorf("Size(%d,128) = %+v, want single switch", hosts, d)
		}
	}
}

func TestSizePerHostMode(t *testing.T) {
	d, err := Size(15360, 128, InterpPerHost)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(15360-8192) / float64(524288-8192)
	wantPerHost := (1-frac)*(192.0/8192.0) + frac*(20480.0/524288.0)
	if math.Abs(d.Switches-wantPerHost*15360) > 1e-6 {
		t.Errorf("per-host Switches = %v, want %v", d.Switches, wantPerHost*15360)
	}
	wantLinks := (1 + frac) * 15360
	if math.Abs(d.InterSwitchLinks-wantLinks) > 1e-6 {
		t.Errorf("per-host links = %v, want %v", d.InterSwitchLinks, wantLinks)
	}
	// Per-host mode always yields a smaller network in this regime.
	abs, _ := Size(15360, 128, InterpAbsolute)
	if d.Switches >= abs.Switches {
		t.Errorf("per-host (%v) should be below absolute (%v) here", d.Switches, abs.Switches)
	}
}

func TestSizeErrors(t *testing.T) {
	if _, err := Size(0, 128, InterpAbsolute); err == nil {
		t.Error("zero hosts should fail")
	}
	if _, err := Size(100, 5, InterpAbsolute); err == nil {
		t.Error("odd radix should fail")
	}
	if _, err := Size(100, 128, InterpMode(99)); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestParseInterpMode(t *testing.T) {
	for _, s := range []string{"absolute", "abs", ""} {
		m, err := ParseInterpMode(s)
		if err != nil || m != InterpAbsolute {
			t.Errorf("ParseInterpMode(%q) = %v, %v", s, m, err)
		}
	}
	for _, s := range []string{"perhost", "per-host", "ratio"} {
		m, err := ParseInterpMode(s)
		if err != nil || m != InterpPerHost {
			t.Errorf("ParseInterpMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseInterpMode("bogus"); err == nil {
		t.Error("bogus mode should fail")
	}
	if InterpAbsolute.String() != "absolute" || InterpPerHost.String() != "perhost" {
		t.Error("InterpMode.String broken")
	}
	if InterpMode(42).String() == "" {
		t.Error("unknown mode should still format")
	}
}

// Property: switch and link counts are monotone non-decreasing in host count
// for a fixed radix, in both interpolation modes.
func TestSizeMonotoneInHosts(t *testing.T) {
	f := func(a, b uint32, modeRaw bool) bool {
		mode := InterpAbsolute
		if modeRaw {
			mode = InterpPerHost
		}
		ha := 1 + int(a%500000)
		hb := 1 + int(b%500000)
		if ha > hb {
			ha, hb = hb, ha
		}
		da, err1 := Size(ha, 128, mode)
		db, err2 := Size(hb, 128, mode)
		if err1 != nil || err2 != nil {
			return false
		}
		return da.Switches <= db.Switches+1e-6 && da.InterSwitchLinks <= db.InterSwitchLinks+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interpolated counts lie between the bracketing full-capacity
// configurations.
func TestSizeBounded(t *testing.T) {
	f := func(raw uint32) bool {
		hosts := 8193 + int(raw%(524288-8193))
		d, err := Size(hosts, 128, InterpAbsolute)
		if err != nil {
			return false
		}
		return d.Switches >= 192-1e-9 && d.Switches <= 20480+1e-9 &&
			d.InterSwitchLinks >= 8192-1e-9 && d.InterSwitchLinks <= 1048576+1e-9 &&
			d.Stages >= 2 && d.Stages <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more ports never require more switches for the same host count.
func TestSizeMonotoneInRadix(t *testing.T) {
	f := func(raw uint32) bool {
		hosts := 100 + int(raw%100000)
		small, err1 := Size(hosts, 64, InterpAbsolute)
		large, err2 := Size(hosts, 128, InterpAbsolute)
		if err1 != nil || err2 != nil {
			return false
		}
		return large.Switches <= small.Switches+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
