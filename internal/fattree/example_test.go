package fattree_test

import (
	"fmt"
	"log"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/units"
)

// Size reproduces the paper's §2.4 network sizing for the baseline pod:
// 15,360 hosts at 400 G (128-port switches) fall between the 2-stage and
// 3-stage capacities and interpolate to ~474 switches.
func ExampleSize() {
	d, err := fattree.Size(15360, 128, fattree.InterpAbsolute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stages: %.4f\n", d.Stages)
	fmt.Printf("switches: %.1f\n", d.Switches)
	fmt.Printf("transceivers: %.0f\n", d.Transceivers())
	// Output:
	// stages: 2.0139
	// switches: 473.8
	// transceivers: 31147
}

// BuildThreeTier constructs an explicit topology for the simulator; a k=4
// tree has the textbook 16 hosts, 20 switches, and 4 ECMP paths between
// cross-pod hosts.
func ExampleBuildThreeTier() {
	top, err := fattree.BuildThreeTier(4, 100*units.Gbps)
	if err != nil {
		log.Fatal(err)
	}
	hosts := top.Hosts()
	var cross int
	for _, h := range hosts[1:] {
		if top.Nodes[h].Pod != top.Nodes[hosts[0]].Pod {
			cross = h
			break
		}
	}
	paths, err := top.Paths(hosts[0], cross)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosts: %d, switches: %d\n", len(hosts), len(top.SwitchIDs()))
	fmt.Printf("cross-pod ECMP paths: %d\n", len(paths))
	// Output:
	// hosts: 16, switches: 20
	// cross-pod ECMP paths: 4
}
