// Package fattree implements the fat-tree (folded-Clos) arithmetic the
// paper uses to size the network (§2.4), plus an explicit topology builder
// used by the flow-level simulator.
//
// An n-stage fat tree built from k-port switches supports 2·(k/2)^n hosts
// using (2n−1)·(k/2)^(n−1) switches, with (n−1)·N inter-switch links at
// full capacity N (full bisection bandwidth at every stage boundary). When
// the host count falls between the capacities of n and n+1 stages, the
// paper interpolates; the exact rule is unspecified, so two calibrated
// modes are provided (see DESIGN.md).
package fattree

import (
	"fmt"

	"netpowerprop/internal/stats"
)

// InterpMode selects how switch/link counts are interpolated between the
// capacities of consecutive stage counts.
type InterpMode int

const (
	// InterpAbsolute interpolates the absolute switch and link counts
	// between the two full-capacity configurations. Calibrated default:
	// reproduces the paper's 400G baseline (12% network power share, 11%
	// efficiency, Table 3 row) to within rounding.
	InterpAbsolute InterpMode = iota
	// InterpPerHost interpolates the per-host switch and link ratios
	// instead; yields smaller networks for host counts just above a stage
	// boundary. Provided as an ablation.
	InterpPerHost
)

// String names the mode for CLI flags and reports.
func (m InterpMode) String() string {
	switch m {
	case InterpAbsolute:
		return "absolute"
	case InterpPerHost:
		return "perhost"
	default:
		return fmt.Sprintf("InterpMode(%d)", int(m))
	}
}

// ParseInterpMode converts a CLI string into an InterpMode.
func ParseInterpMode(s string) (InterpMode, error) {
	switch s {
	case "absolute", "abs", "":
		return InterpAbsolute, nil
	case "perhost", "per-host", "ratio":
		return InterpPerHost, nil
	default:
		return 0, fmt.Errorf("unknown interpolation mode %q (want absolute or perhost)", s)
	}
}

// maxStages bounds the stage search; 2·(k/2)^12 overflows any practical
// cluster long before this for k ≥ 4.
const maxStages = 12

// StageCapacity returns the number of hosts an n-stage fat tree of k-port
// switches supports: 2·(k/2)^n.
func StageCapacity(ports, stages int) (int, error) {
	if err := checkPorts(ports); err != nil {
		return 0, err
	}
	if stages < 1 || stages > maxStages {
		return 0, fmt.Errorf("fattree: stages %d outside [1,%d]", stages, maxStages)
	}
	half := ports / 2
	cap := 2
	for i := 0; i < stages; i++ {
		if cap > (1<<56)/half {
			return 0, fmt.Errorf("fattree: capacity overflow at k=%d n=%d", ports, stages)
		}
		cap *= half
	}
	return cap, nil
}

// StageSwitches returns the switch count of a full n-stage fat tree:
// (2n−1)·(k/2)^(n−1).
func StageSwitches(ports, stages int) (int, error) {
	if err := checkPorts(ports); err != nil {
		return 0, err
	}
	if stages < 1 || stages > maxStages {
		return 0, fmt.Errorf("fattree: stages %d outside [1,%d]", stages, maxStages)
	}
	half := ports / 2
	s := 2*stages - 1
	for i := 0; i < stages-1; i++ {
		if s > (1<<56)/half {
			return 0, fmt.Errorf("fattree: switch count overflow at k=%d n=%d", ports, stages)
		}
		s *= half
	}
	return s, nil
}

// StageLinks returns the inter-switch link count of a full n-stage fat tree:
// (n−1)·capacity — every stage boundary above the hosts carries one link per
// host at full bisection bandwidth. Host-to-edge links are excluded (they
// are electrical and free in the power model).
func StageLinks(ports, stages int) (int, error) {
	cap, err := StageCapacity(ports, stages)
	if err != nil {
		return 0, err
	}
	return (stages - 1) * cap, nil
}

// Design is the (possibly fractional) outcome of sizing a fat tree for a
// host count that need not align with a full-capacity configuration.
type Design struct {
	Hosts int
	Ports int
	// Stages is the effective stage count; fractional between full
	// configurations.
	Stages float64
	// Switches is the interpolated switch count.
	Switches float64
	// InterSwitchLinks is the interpolated count of switch-to-switch links;
	// each needs two optical transceivers in the power model.
	InterSwitchLinks float64
	// Mode records which interpolation produced this design.
	Mode InterpMode
}

// Transceivers returns the optical transceiver count: two per inter-switch
// link (§2.3.2).
func (d Design) Transceivers() float64 { return 2 * d.InterSwitchLinks }

// Size computes the fat-tree design for the given host count and switch
// radix. Host counts at or below a single switch's host capacity use one
// switch; host counts between stage capacities are interpolated per mode.
func Size(hosts, ports int, mode InterpMode) (Design, error) {
	if err := checkPorts(ports); err != nil {
		return Design{}, err
	}
	if hosts < 1 {
		return Design{}, fmt.Errorf("fattree: host count %d must be positive", hosts)
	}
	if mode != InterpAbsolute && mode != InterpPerHost {
		return Design{}, fmt.Errorf("fattree: unknown interpolation mode %d", mode)
	}
	d := Design{Hosts: hosts, Ports: ports, Mode: mode}

	cap1, _ := StageCapacity(ports, 1)
	if hosts <= cap1 {
		// A single switch suffices; below one stage there is nothing to
		// interpolate against, so clamp at the 1-stage design.
		d.Stages = 1
		d.Switches = 1
		d.InterSwitchLinks = 0
		return d, nil
	}

	// Find n with cap(n) < hosts <= cap(n+1).
	for n := 1; n < maxStages; n++ {
		capN, err := StageCapacity(ports, n)
		if err != nil {
			return Design{}, err
		}
		capN1, err := StageCapacity(ports, n+1)
		if err != nil {
			return Design{}, err
		}
		if hosts > capN1 {
			continue
		}
		if hosts == capN1 {
			s, _ := StageSwitches(ports, n+1)
			l, _ := StageLinks(ports, n+1)
			d.Stages = float64(n + 1)
			d.Switches = float64(s)
			d.InterSwitchLinks = float64(l)
			return d, nil
		}
		frac := float64(hosts-capN) / float64(capN1-capN)
		d.Stages = float64(n) + frac
		sN, _ := StageSwitches(ports, n)
		sN1, _ := StageSwitches(ports, n+1)
		switch mode {
		case InterpAbsolute:
			d.Switches = stats.Lerp(0, float64(sN), 1, float64(sN1), frac)
		case InterpPerHost:
			swPerHost := stats.Lerp(0, float64(sN)/float64(capN), 1, float64(sN1)/float64(capN1), frac)
			d.Switches = swPerHost * float64(hosts)
		}
		// Inter-switch links always follow the per-host rule: every host
		// contributes one link per stage boundary above it at full bisection
		// bandwidth, so (stages_eff − 1) links per host. This agrees with
		// the full configurations at both endpoints and calibrates the
		// paper's 400 G baseline (12% network share; see DESIGN.md).
		d.InterSwitchLinks = (d.Stages - 1) * float64(hosts)
		return d, nil
	}
	return Design{}, fmt.Errorf("fattree: %d hosts exceed a %d-stage tree of %d-port switches", hosts, maxStages, ports)
}

func checkPorts(ports int) error {
	if ports < 2 {
		return fmt.Errorf("fattree: switch radix %d must be at least 2", ports)
	}
	if ports%2 != 0 {
		return fmt.Errorf("fattree: switch radix %d must be even (half up, half down)", ports)
	}
	return nil
}
