package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func testJob(pattern Pattern, hosts int) Job {
	ids := make([]int, hosts)
	for i := range ids {
		ids[i] = 100 + i
	}
	return Job{
		ID:        1,
		Hosts:     ids,
		Period:    10,
		CommRatio: 0.2,
		Rate:      100 * units.Gbps,
		Pattern:   pattern,
	}
}

func TestJobValidate(t *testing.T) {
	good := testJob(Ring, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []func(*Job){
		func(j *Job) { j.Hosts = j.Hosts[:1] },
		func(j *Job) { j.Period = 0 },
		func(j *Job) { j.CommRatio = 0 },
		func(j *Job) { j.CommRatio = 1 },
		func(j *Job) { j.Rate = 0 },
		func(j *Job) { j.Offset = -1 },
		func(j *Job) { j.Pattern = Pattern(42) },
	}
	for i, mutate := range cases {
		j := testJob(Ring, 4)
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestRingFlows(t *testing.T) {
	j := testJob(Ring, 4)
	flows, err := j.Flows(2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 hosts -> 4 ring flows per iteration, 2 iterations.
	if len(flows) != 8 {
		t.Fatalf("flows = %d, want 8", len(flows))
	}
	// Communication window is the last 20% of each period: [8,10) and [18,20).
	for i, f := range flows {
		wantStart := units.Seconds(8)
		if i >= 4 {
			wantStart = 18
		}
		if f.Start != wantStart || f.End != wantStart+2 {
			t.Errorf("flow %d window [%v,%v], want [%v,%v]", i, f.Start, f.End, wantStart, wantStart+2)
		}
		if f.Duration() != 2 {
			t.Errorf("flow %d duration %v, want 2", i, f.Duration())
		}
	}
	// Ring structure: each host appears exactly once as src and once as dst
	// per iteration.
	srcCount := map[int]int{}
	dstCount := map[int]int{}
	for _, f := range flows[:4] {
		srcCount[f.Src]++
		dstCount[f.Dst]++
	}
	for _, h := range j.Hosts {
		if srcCount[h] != 1 || dstCount[h] != 1 {
			t.Errorf("host %d src=%d dst=%d, want 1/1", h, srcCount[h], dstCount[h])
		}
	}
}

func TestAllToAllFlows(t *testing.T) {
	j := testJob(AllToAll, 3)
	flows, err := j.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 6 { // 3*2 ordered pairs
		t.Fatalf("flows = %d, want 6", len(flows))
	}
	seen := map[[2]int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Error("self flow generated")
		}
		seen[[2]int{f.Src, f.Dst}] = true
	}
	if len(seen) != 6 {
		t.Errorf("distinct pairs = %d, want 6", len(seen))
	}
}

func TestNeighborFlows(t *testing.T) {
	j := testJob(Neighbor, 4)
	flows, err := j.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 4 { // two pairs, bidirectional
		t.Fatalf("flows = %d, want 4", len(flows))
	}
	// Odd host count: the last host is left unpaired.
	j = testJob(Neighbor, 5)
	flows, _ = j.Flows(1)
	if len(flows) != 4 {
		t.Errorf("odd-host neighbor flows = %d, want 4", len(flows))
	}
}

func TestHierarchicalFlows(t *testing.T) {
	j := testJob(Hierarchical, 8)
	j.GroupSize = 4
	flows, err := j.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 groups x 4 intra-ring edges + 2 leader edges = 10 flows.
	if len(flows) != 10 {
		t.Fatalf("flows = %d, want 10", len(flows))
	}
	// Count cross-group flows: exactly the 2 leader-ring edges.
	cross := 0
	groupOf := func(h int) int { return (h - 100) / 4 }
	for _, f := range flows {
		if groupOf(f.Src) != groupOf(f.Dst) {
			cross++
		}
	}
	if cross != 2 {
		t.Errorf("cross-group flows = %d, want 2 (hierarchical keeps traffic local)", cross)
	}
	// Compare locality against a flat ring over the same hosts: the flat
	// ring crosses groups twice too, but hierarchical adds intra traffic
	// without adding cross traffic as the job grows.
	big := testJob(Hierarchical, 16)
	big.GroupSize = 4
	bigFlows, err := big.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	bigCross := 0
	bigGroup := func(h int) int { return (h - 100) / 4 }
	for _, f := range bigFlows {
		if bigGroup(f.Src) != bigGroup(f.Dst) {
			bigCross++
		}
	}
	if bigCross != 4 { // leader ring over 4 groups
		t.Errorf("16-host cross-group flows = %d, want 4", bigCross)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	j := testJob(Hierarchical, 8)
	j.GroupSize = 0
	if err := j.Validate(); err == nil {
		t.Error("zero group size accepted")
	}
	j.GroupSize = 8
	if err := j.Validate(); err == nil {
		t.Error("group size == hosts accepted")
	}
	j.GroupSize = 3
	if err := j.Validate(); err == nil {
		t.Error("non-divisible group size accepted")
	}
	j.GroupSize = 4
	if err := j.Validate(); err != nil {
		t.Errorf("valid hierarchical job rejected: %v", err)
	}
	if Hierarchical.String() != "hierarchical" {
		t.Error("pattern name broken")
	}
}

func TestFlowsWithOffset(t *testing.T) {
	j := testJob(Ring, 2)
	j.Offset = 3
	flows, err := j.Flows(1)
	if err != nil {
		t.Fatal(err)
	}
	if flows[0].Start != 11 { // 3 + (10-2)
		t.Errorf("offset flow start = %v, want 11", flows[0].Start)
	}
}

func TestFlowsErrors(t *testing.T) {
	j := testJob(Ring, 4)
	if _, err := j.Flows(0); err == nil {
		t.Error("zero iterations should fail")
	}
	j.Rate = 0
	if _, err := j.Flows(1); err == nil {
		t.Error("invalid job should fail Flows")
	}
}

func TestJobMatrix(t *testing.T) {
	j := testJob(Ring, 4)
	m, err := j.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 {
		t.Errorf("matrix entries = %d, want 4", m.Len())
	}
	// Average rate = rate x comm ratio = 20 Gbps per ring edge.
	want := 20 * units.Gbps
	if got := m.Demand(100, 101); math.Abs(float64(got-want)) > 1 {
		t.Errorf("demand(100,101) = %v, want %v", got, want)
	}
	if got := m.Total(); math.Abs(float64(got-4*want)) > 1 {
		t.Errorf("total = %v, want %v", got, 4*want)
	}
	bad := j
	bad.Period = 0
	if _, err := bad.Matrix(); err == nil {
		t.Error("invalid job should fail Matrix")
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewMatrix()
	m.Add(1, 2, 10*units.Gbps)
	m.Add(1, 2, 5*units.Gbps)
	m.Add(1, 1, 99*units.Gbps) // self-demand ignored
	m.Add(2, 3, 0)             // zero ignored
	if m.Len() != 1 {
		t.Errorf("entries = %d, want 1", m.Len())
	}
	if m.Demand(1, 2) != 15*units.Gbps {
		t.Errorf("demand = %v, want 15 Gbps", m.Demand(1, 2))
	}
	other := NewMatrix()
	other.Add(1, 2, 1*units.Gbps)
	other.Add(3, 4, 2*units.Gbps)
	m.Merge(other)
	if m.Len() != 2 || m.Demand(1, 2) != 16*units.Gbps || m.Demand(3, 4) != 2*units.Gbps {
		t.Errorf("merge broken: %d entries", m.Len())
	}
	var visited int
	m.Pairs(func(s, d int, v units.Bandwidth) { visited++ })
	if visited != 2 {
		t.Errorf("Pairs visited %d, want 2", visited)
	}
}

func TestDiurnal(t *testing.T) {
	p, err := Diurnal(0.1, 0.9, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if got := p(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("trough = %v, want 0.1", got)
	}
	if got := p(43200); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("peak = %v, want 0.9", got)
	}
	if got := p(86400); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("full period = %v, want 0.1", got)
	}
	for _, bad := range []struct{ lo, hi float64 }{{-0.1, 0.5}, {0.2, 1.1}, {0.9, 0.1}} {
		if _, err := Diurnal(bad.lo, bad.hi, 86400); err == nil {
			t.Errorf("Diurnal(%v,%v) should fail", bad.lo, bad.hi)
		}
	}
	if _, err := Diurnal(0.1, 0.9, 0); err == nil {
		t.Error("zero period should fail")
	}
}

func TestMLPeriodic(t *testing.T) {
	p, err := MLPeriodic(0.2, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero during computation [0,8), full during communication [8,10).
	for _, tt := range []struct {
		t    units.Seconds
		want float64
	}{
		{0, 0}, {4, 0}, {7.99, 0}, {8, 1}, {9.5, 1}, {10, 0}, {18, 1},
	} {
		if got := p(tt.t); got != tt.want {
			t.Errorf("MLPeriodic(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if _, err := MLPeriodic(0, 10, 1); err == nil {
		t.Error("zero ratio should fail")
	}
	if _, err := MLPeriodic(0.2, 0, 1); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := MLPeriodic(0.2, 10, 2); err == nil {
		t.Error("level > 1 should fail")
	}
}

func TestConstantAndSample(t *testing.T) {
	p, err := Constant(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts, vs, err := Sample(p, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 || len(vs) != 5 {
		t.Fatalf("samples = %d/%d, want 5/5", len(ts), len(vs))
	}
	for i, v := range vs {
		if v != 0.5 {
			t.Errorf("sample %d = %v, want 0.5", i, v)
		}
	}
	if ts[4] != 8 {
		t.Errorf("last sample time = %v, want 8", ts[4])
	}
	if _, err := Constant(-0.1); err == nil {
		t.Error("negative level should fail")
	}
	if _, _, err := Sample(p, 0, 1); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, _, err := Sample(p, 10, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestPatternString(t *testing.T) {
	if Ring.String() != "ring" || AllToAll.String() != "alltoall" || Neighbor.String() != "neighbor" {
		t.Error("pattern names broken")
	}
	if Pattern(9).String() != "Pattern(9)" {
		t.Error("unknown pattern formatting broken")
	}
}

// Property: diurnal profiles stay within their configured bounds.
func TestDiurnalBounded(t *testing.T) {
	p, err := Diurnal(0.2, 0.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		tt := units.Seconds(math.Abs(math.Mod(raw, 1e6)))
		v := p(tt)
		return v >= 0.2-1e-9 && v <= 0.8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a job's flows all lie within [offset, offset + iterations x
// period] and total flow-seconds match iterations x pairs x window.
func TestFlowsWindowInvariant(t *testing.T) {
	f := func(hRaw, itRaw uint8) bool {
		hosts := 2 + int(hRaw)%6
		iters := 1 + int(itRaw)%5
		j := testJob(Ring, hosts)
		flows, err := j.Flows(iters)
		if err != nil {
			return false
		}
		horizon := j.Offset + units.Seconds(iters)*j.Period
		var totalDur float64
		for _, fl := range flows {
			if fl.Start < j.Offset || fl.End > horizon+1e-9 {
				return false
			}
			totalDur += float64(fl.Duration())
		}
		want := float64(iters*hosts) * float64(j.Period) * j.CommRatio
		return math.Abs(totalDur-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
