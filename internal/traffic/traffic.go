// Package traffic generates the synthetic offered loads the mechanism
// simulators run on: ML training jobs with periodic compute/communicate
// iterations (the paper's §2.2 pattern, matching the predictable traffic
// CASSINI reports), collective-communication flow patterns (ring allreduce,
// all-to-all), and ISP-style diurnal load profiles (§3.4).
package traffic

import (
	"fmt"
	"math"

	"netpowerprop/internal/units"
)

// Flow is one unidirectional demand between two hosts over a time window.
type Flow struct {
	Src, Dst int
	// Demand is the offered rate; the simulator may deliver less under
	// contention.
	Demand units.Bandwidth
	Start  units.Seconds
	End    units.Seconds
}

// Duration returns the flow's lifetime.
func (f Flow) Duration() units.Seconds { return f.End - f.Start }

// Pattern selects the collective-communication shape of a job's
// communication phase.
type Pattern int

const (
	// Ring sends host i -> host i+1 (mod n): the classic ring allreduce.
	Ring Pattern = iota
	// AllToAll sends every host to every other host.
	AllToAll
	// Neighbor sends host 2i <-> 2i+1 pairs (tensor-parallel style).
	Neighbor
	// Hierarchical runs a ring within each group of GroupSize hosts plus a
	// ring among the group leaders — the two-level allreduce large training
	// jobs use to keep most traffic rack-local.
	Hierarchical
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Ring:
		return "ring"
	case AllToAll:
		return "alltoall"
	case Neighbor:
		return "neighbor"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Job is a training job: a set of hosts iterating compute/communicate with
// a fixed period, emitting collective flows during each communication
// window.
type Job struct {
	ID    int
	Hosts []int
	// Period is the iteration time; CommRatio the communication share of
	// it (§2.2).
	Period    units.Seconds
	CommRatio float64
	// Rate is each flow's offered rate during the communication window.
	Rate units.Bandwidth
	// Pattern shapes the communication phase.
	Pattern Pattern
	// Offset delays the first iteration (jobs need not be synchronized;
	// CASSINI interleaves them deliberately).
	Offset units.Seconds
	// GroupSize sets the intra-group ring width for the Hierarchical
	// pattern (ignored otherwise). Must divide into at least two groups.
	GroupSize int
}

// Validate checks the job's parameters.
func (j Job) Validate() error {
	if len(j.Hosts) < 2 {
		return fmt.Errorf("traffic: job %d needs at least 2 hosts, has %d", j.ID, len(j.Hosts))
	}
	if j.Period <= 0 {
		return fmt.Errorf("traffic: job %d period %v must be positive", j.ID, j.Period)
	}
	if j.CommRatio <= 0 || j.CommRatio >= 1 {
		return fmt.Errorf("traffic: job %d comm ratio %v outside (0,1)", j.ID, j.CommRatio)
	}
	if j.Rate <= 0 {
		return fmt.Errorf("traffic: job %d rate %v must be positive", j.ID, j.Rate)
	}
	if j.Offset < 0 {
		return fmt.Errorf("traffic: job %d negative offset %v", j.ID, j.Offset)
	}
	switch j.Pattern {
	case Ring, AllToAll, Neighbor:
	case Hierarchical:
		if j.GroupSize < 2 || j.GroupSize >= len(j.Hosts) {
			return fmt.Errorf("traffic: job %d hierarchical group size %d outside [2,%d)", j.ID, j.GroupSize, len(j.Hosts))
		}
		if len(j.Hosts)%j.GroupSize != 0 {
			return fmt.Errorf("traffic: job %d host count %d not divisible by group size %d", j.ID, len(j.Hosts), j.GroupSize)
		}
	default:
		return fmt.Errorf("traffic: job %d unknown pattern %v", j.ID, j.Pattern)
	}
	return nil
}

// pairs returns the (src,dst) index pairs of one communication round.
func (j Job) pairs() [][2]int {
	n := len(j.Hosts)
	var out [][2]int
	switch j.Pattern {
	case Ring:
		for i := 0; i < n; i++ {
			out = append(out, [2]int{i, (i + 1) % n})
		}
	case AllToAll:
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if i != k {
					out = append(out, [2]int{i, k})
				}
			}
		}
	case Neighbor:
		for i := 0; i+1 < n; i += 2 {
			out = append(out, [2]int{i, i + 1}, [2]int{i + 1, i})
		}
	case Hierarchical:
		g := j.GroupSize
		groups := n / g
		// Intra-group rings (skipped for trivial 1-wide groups by the
		// validator's g >= 2 bound).
		for grp := 0; grp < groups; grp++ {
			base := grp * g
			for i := 0; i < g; i++ {
				out = append(out, [2]int{base + i, base + (i+1)%g})
			}
		}
		// Leader ring across groups (leader = first host of each group).
		for grp := 0; grp < groups; grp++ {
			out = append(out, [2]int{grp * g, ((grp + 1) % groups) * g})
		}
	}
	return out
}

// Flows expands the job into flows for the given number of iterations. The
// communication window sits at the end of each period, mirroring Fig. 1's
// compute-then-communicate structure.
func (j Job) Flows(iterations int) ([]Flow, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if iterations < 1 {
		return nil, fmt.Errorf("traffic: job %d iterations %d must be positive", j.ID, iterations)
	}
	commLen := units.Seconds(float64(j.Period) * j.CommRatio)
	pairs := j.pairs()
	flows := make([]Flow, 0, iterations*len(pairs))
	for it := 0; it < iterations; it++ {
		start := j.Offset + units.Seconds(it)*j.Period + (j.Period - commLen)
		for _, p := range pairs {
			flows = append(flows, Flow{
				Src:    j.Hosts[p[0]],
				Dst:    j.Hosts[p[1]],
				Demand: j.Rate,
				Start:  start,
				End:    start + commLen,
			})
		}
	}
	return flows, nil
}

// Matrix returns the job's steady traffic matrix (average offered rate
// between host pairs over one period) — the input to OCS topology
// tailoring (§4.2).
func (j Job) Matrix() (*Matrix, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	m := NewMatrix()
	for _, p := range j.pairs() {
		avg := units.Bandwidth(float64(j.Rate) * j.CommRatio)
		m.Add(j.Hosts[p[0]], j.Hosts[p[1]], avg)
	}
	return m, nil
}

// Matrix is a sparse host-to-host demand matrix.
type Matrix struct {
	demand map[[2]int]units.Bandwidth
}

// NewMatrix returns an empty matrix.
func NewMatrix() *Matrix {
	return &Matrix{demand: make(map[[2]int]units.Bandwidth)}
}

// Add accumulates demand from src to dst.
func (m *Matrix) Add(src, dst int, d units.Bandwidth) {
	if d == 0 || src == dst {
		return
	}
	m.demand[[2]int{src, dst}] += d
}

// Demand returns the demand from src to dst.
func (m *Matrix) Demand(src, dst int) units.Bandwidth {
	return m.demand[[2]int{src, dst}]
}

// Pairs visits every non-zero entry.
func (m *Matrix) Pairs(visit func(src, dst int, d units.Bandwidth)) {
	for k, v := range m.demand {
		visit(k[0], k[1], v)
	}
}

// Total returns the summed demand.
func (m *Matrix) Total() units.Bandwidth {
	var t units.Bandwidth
	for _, v := range m.demand {
		t += v
	}
	return t
}

// Len returns the number of non-zero entries.
func (m *Matrix) Len() int { return len(m.demand) }

// Merge accumulates another matrix into this one.
func (m *Matrix) Merge(other *Matrix) {
	other.Pairs(func(s, d int, v units.Bandwidth) { m.Add(s, d, v) })
}

// Profile is a time-varying offered utilization in [0,1], used for
// link-level studies (EEE, rate adaptation) where individual flows matter
// less than the load envelope.
type Profile func(t units.Seconds) float64

// Diurnal returns an ISP-style day/night load curve: utilization oscillates
// sinusoidally between trough and peak over the period (§3.4's "customers
// expect capacity to be there, but will not be using it 24/7").
func Diurnal(trough, peak float64, period units.Seconds) (Profile, error) {
	if trough < 0 || peak > 1 || trough > peak {
		return nil, fmt.Errorf("traffic: diurnal bounds [%v,%v] invalid", trough, peak)
	}
	if period <= 0 {
		return nil, fmt.Errorf("traffic: diurnal period %v must be positive", period)
	}
	mid := (trough + peak) / 2
	amp := (peak - trough) / 2
	return func(t units.Seconds) float64 {
		// Trough at t=0, peak at period/2.
		return mid - amp*math.Cos(2*math.Pi*float64(t)/float64(period))
	}, nil
}

// MLPeriodic returns the square-wave load of a training iteration: zero
// during computation, full rate during the communication window at the end
// of each period.
func MLPeriodic(commRatio float64, period units.Seconds, level float64) (Profile, error) {
	if commRatio <= 0 || commRatio >= 1 {
		return nil, fmt.Errorf("traffic: comm ratio %v outside (0,1)", commRatio)
	}
	if period <= 0 {
		return nil, fmt.Errorf("traffic: period %v must be positive", period)
	}
	if level < 0 || level > 1 {
		return nil, fmt.Errorf("traffic: level %v outside [0,1]", level)
	}
	return func(t units.Seconds) float64 {
		phase := math.Mod(float64(t), float64(period)) / float64(period)
		if phase >= 1-commRatio {
			return level
		}
		return 0
	}, nil
}

// Constant returns a flat load profile.
func Constant(level float64) (Profile, error) {
	if level < 0 || level > 1 {
		return nil, fmt.Errorf("traffic: level %v outside [0,1]", level)
	}
	return func(units.Seconds) float64 { return level }, nil
}

// Sample evaluates a profile at a fixed step over [0, horizon), returning
// (times, values); used to drive the link-level simulators.
func Sample(p Profile, horizon, step units.Seconds) ([]units.Seconds, []float64, error) {
	if horizon <= 0 || step <= 0 {
		return nil, nil, fmt.Errorf("traffic: horizon %v and step %v must be positive", horizon, step)
	}
	n := int(math.Ceil(float64(horizon) / float64(step)))
	ts := make([]units.Seconds, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = units.Seconds(i) * step
		vs[i] = p(ts[i])
	}
	return ts, vs, nil
}
