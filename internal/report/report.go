// Package report renders analysis results as aligned text tables, CSV, and
// ASCII line charts, so every table and figure of the paper can be
// regenerated on a terminal without plotting dependencies.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table with right-aligned numeric-looking columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table,
// preceded by the title as a bold paragraph when present.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	escape := func(c string) string {
		return strings.ReplaceAll(c, "|", "\\|")
	}
	row := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = escape(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = "---"
	}
	if err := row(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one line of an ASCII chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a multi-series ASCII line chart on a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height of the plot area in characters; defaults 64x20.
	Width, Height int
}

// markers cycles per series.
var markers = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Write renders the chart. Series points are plotted on a character grid
// with linear axes covering the joint data range.
func (c *Chart) Write(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	var points int
	for _, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Zero line, if within range.
	if ymin < 0 && ymax > 0 {
		r := rowOf(0, ymin, ymax, height)
		for x := 0; x < width; x++ {
			grid[r][x] = '.'
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			grid[rowOf(s.Y[i], ymin, ymax, height)][col] = m
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.4g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.4g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %-10.4g%s%10.4g\n", "",
		xmin, strings.Repeat(" ", max(0, width-20)), xmax); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%10sx: %s   y: %s\n", "", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	for si, s := range c.Series {
		if _, err := fmt.Fprintf(w, "%10s%c %s\n", "", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func rowOf(y, ymin, ymax float64, height int) int {
	r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
	if r < 0 {
		r = 0
	}
	if r >= height {
		r = height - 1
	}
	return r
}

// Percent formats a fraction as a percentage with one decimal.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Dollars formats a dollar amount with thousands separators.
func Dollars(v float64) string {
	neg := v < 0
	v = math.Abs(v)
	s := fmt.Sprintf("%.0f", v)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	if neg {
		return "-$" + b.String()
	}
	return "$" + b.String()
}
