package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tb := Table{
		Title:   "Table 3",
		Headers: []string{"Bandwidth", "10%", "50%"},
	}
	tb.AddRow("100G", "0.0%", "1.0%")
	tb.AddRow("400G", "0.0%", "4.8%")
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 3", "Bandwidth", "400G", "4.8%", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + rule + 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: header and data lines have equal length.
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("plain", `has "quotes", and comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has \"\"quotes\"\", and comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableWriteMarkdown(t *testing.T) {
	tb := Table{Title: "Table 3", Headers: []string{"bw", "save"}}
	tb.AddRow("400G", "4.8%")
	tb.AddRow("pipe|y", "x")
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**Table 3**", "| bw | save |", "| --- | --- |", "| 400G | 4.8% |", `pipe\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Untitled tables omit the heading.
	plain := Table{Headers: []string{"a"}}
	sb.Reset()
	if err := plain.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "**") {
		t.Errorf("untitled table rendered a heading: %q", sb.String())
	}
}

func TestChartWrite(t *testing.T) {
	ch := Chart{
		Title:  "Fig 3",
		XLabel: "proportionality",
		YLabel: "speedup %",
		Series: []Series{
			{Name: "400G", X: []float64{0, 0.5, 1}, Y: []float64{-1, 5, 11}},
			{Name: "1600G", X: []float64{0, 0.5, 1}, Y: []float64{-28, -12, 13}},
		},
		Width:  40,
		Height: 10,
	}
	var sb strings.Builder
	if err := ch.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 3", "400G", "1600G", "proportionality", "o", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Zero line drawn since the y range spans zero.
	if !strings.Contains(out, "...") {
		t.Errorf("chart missing zero line:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := Chart{Title: "empty"}
	var sb strings.Builder
	if err := ch.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no data)") {
		t.Errorf("empty chart output: %q", sb.String())
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// A single point must not divide by zero.
	ch := Chart{Series: []Series{{Name: "pt", X: []float64{1}, Y: []float64{2}}}}
	var sb strings.Builder
	if err := ch.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "o") {
		t.Error("single point not plotted")
	}
	// Mismatched X/Y lengths use the shorter prefix.
	ch = Chart{Series: []Series{{Name: "m", X: []float64{0, 1, 2}, Y: []float64{5}}}}
	sb.Reset()
	if err := ch.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.119); got != "11.9%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0); got != "0.0%" {
		t.Errorf("Percent(0) = %q", got)
	}
	if got := Percent(-0.05); got != "-5.0%" {
		t.Errorf("Percent(-0.05) = %q", got)
	}
}

func TestDollars(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{416000, "$416,000"},
		{125000, "$125,000"},
		{999, "$999"},
		{1000, "$1,000"},
		{0, "$0"},
		{-1234567, "-$1,234,567"},
	}
	for _, tt := range tests {
		if got := Dollars(tt.in); got != tt.want {
			t.Errorf("Dollars(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
