package rateadapt

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func sampleTimes(n int, step units.Seconds) []units.Seconds {
	out := make([]units.Seconds, n)
	for i := range out {
		out[i] = units.Seconds(i) * step
	}
	return out
}

// mlUtils builds per-pipeline utilization rows from an ML periodic profile,
// with some pipelines idle (their ports unused by the job).
func mlUtils(t *testing.T, cfg asic.Config, n int, step units.Seconds, busyPipelines int) ([]units.Seconds, [][]float64) {
	t.Helper()
	prof, err := traffic.MLPeriodic(0.2, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	times := sampleTimes(n, step)
	utils := make([][]float64, cfg.Pipelines)
	for p := range utils {
		utils[p] = make([]float64, n)
		if p >= busyPipelines {
			continue
		}
		for i, ts := range times {
			utils[p][i] = prof(ts)
		}
	}
	return times, utils
}

func TestStaticControllerBaseline(t *testing.T) {
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 100, 0.5, 4)
	res, err := Simulate(cfg, times, utils, func() Controller { return Static{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy-res.Baseline)) > 1e-6 {
		t.Errorf("static controller energy %v != baseline %v", res.Energy, res.Baseline)
	}
	if res.Savings != 0 || res.MeanFreq != 1 || res.ShortfallTime != 0 {
		t.Errorf("static result = %+v", res)
	}
}

func TestReactiveSavesOnPeriodicLoad(t *testing.T) {
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 200, 0.5, 4)
	newCtrl := func() Controller {
		c, err := NewReactive(1.1, 0.2, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	res, err := Simulate(cfg, times, utils, newCtrl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings <= 0.05 {
		t.Errorf("reactive savings = %v, want > 5%% on an 80%%-idle load", res.Savings)
	}
	if res.ShortfallTime != 0 {
		t.Errorf("reactive with headroom should have no shortfall, got %v", res.ShortfallTime)
	}
	if res.MeanFreq >= 1 || res.MeanFreq <= 0.2 {
		t.Errorf("mean frequency = %v", res.MeanFreq)
	}
}

func TestPerPipelineBeatsGlobal(t *testing.T) {
	// Only one of four pipelines carries load: per-pipeline clocking slows
	// the idle three; global clocking must keep all at the busy pipeline's
	// frequency — the §4.3 argument for independent clock trees.
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 200, 0.5, 1)
	mk := func() Controller {
		c, _ := NewReactive(1.1, 0.2, 0.1)
		return c
	}
	per, err := Simulate(cfg, times, utils, mk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	global, err := Simulate(cfg, times, utils, mk, Options{Global: true})
	if err != nil {
		t.Fatal(err)
	}
	if per.Energy >= global.Energy {
		t.Errorf("per-pipeline energy %v should beat global %v", per.Energy, global.Energy)
	}
}

func TestGatingAmplifiesSavings(t *testing.T) {
	// Idle pipelines with gated SerDes save far more than frequency
	// scaling alone — the paper's point that rate adaptation must combine
	// with power gating.
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 200, 0.5, 1)
	mk := func() Controller {
		c, _ := NewReactive(1.1, 0.2, 0.1)
		return c
	}
	plain, err := Simulate(cfg, times, utils, mk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := Simulate(cfg, times, utils, mk, Options{GateIdleSerDes: true})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Savings <= plain.Savings {
		t.Errorf("gated savings %v should exceed plain %v", gated.Savings, plain.Savings)
	}
	// Three of four pipelines are fully idle; gating their SerDes alone is
	// worth 3/4 x 35% = 26% of switch power.
	if gated.Savings-plain.Savings < 0.20 {
		t.Errorf("SerDes gating added only %v", gated.Savings-plain.Savings)
	}
}

func TestPredictiveTracksBursts(t *testing.T) {
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 200, 0.5, 4)
	mk := func() Controller {
		c, err := NewPredictive(1.1, 0.2, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	res, err := Simulate(cfg, times, utils, mk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The predictive controller never clocks below instantaneous need.
	if res.ShortfallTime != 0 {
		t.Errorf("predictive shortfall = %v, want 0", res.ShortfallTime)
	}
	if res.Savings <= 0 {
		t.Errorf("predictive savings = %v", res.Savings)
	}
}

func TestReactiveHysteresis(t *testing.T) {
	c, err := NewReactive(1.0, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at full frequency; a clear drop follows the load down.
	if f := c.Decide(0.5); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("dropped to %v, want 0.5", f)
	}
	// Rise is immediate.
	if f := c.Decide(0.9); math.Abs(f-0.9) > 1e-12 {
		t.Errorf("rise to %v, want 0.9", f)
	}
	// Small dip within hysteresis: hold.
	if f := c.Decide(0.85); math.Abs(f-0.9) > 1e-12 {
		t.Errorf("held at %v, want 0.9", f)
	}
	// Large dip: follow down.
	if f := c.Decide(0.3); math.Abs(f-0.3) > 1e-12 {
		t.Errorf("dropped to %v, want 0.3", f)
	}
	// Floor.
	if f := c.Decide(0); math.Abs(f-0.1) > 1e-12 {
		t.Errorf("floored at %v, want 0.1", f)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewReactive(0.9, 0.2, 0.1); err == nil {
		t.Error("headroom < 1 accepted")
	}
	if _, err := NewReactive(1.1, 0, 0.1); err == nil {
		t.Error("zero min freq accepted")
	}
	if _, err := NewReactive(1.1, 1.5, 0.1); err == nil {
		t.Error("min freq > 1 accepted")
	}
	if _, err := NewReactive(1.1, 0.2, -0.1); err == nil {
		t.Error("negative hysteresis accepted")
	}
	if _, err := NewPredictive(0.5, 0.2, 0.3); err == nil {
		t.Error("predictive headroom < 1 accepted")
	}
	if _, err := NewPredictive(1.1, 0, 0.3); err == nil {
		t.Error("predictive zero min freq accepted")
	}
	if _, err := NewPredictive(1.1, 0.2, 0); err == nil {
		t.Error("predictive zero alpha accepted")
	}
	if (Static{}).Name() != "static" {
		t.Error("static name")
	}
	r, _ := NewReactive(1.1, 0.2, 0.1)
	if r.Name() != "reactive" {
		t.Error("reactive name")
	}
	p, _ := NewPredictive(1.1, 0.2, 0.3)
	if p.Name() != "predictive" {
		t.Error("predictive name")
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := asic.DefaultConfig()
	mk := func() Controller { return Static{} }
	times, utils := mlUtils(nil2(t), cfg, 10, 1, 4)
	if _, err := Simulate(cfg, times[:1], utils, mk, Options{}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Simulate(cfg, times, utils[:2], mk, Options{}); err == nil {
		t.Error("wrong pipeline count accepted")
	}
	short := [][]float64{{0}, {0}, {0}, {0}}
	if _, err := Simulate(cfg, times, short, mk, Options{}); err == nil {
		t.Error("short rows accepted")
	}
	bad := make([][]float64, 4)
	for i := range bad {
		bad[i] = make([]float64, len(times))
	}
	bad[0][0] = 2
	if _, err := Simulate(cfg, times, bad, mk, Options{}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Simulate(cfg, times, utils, func() Controller { return nil }, Options{}); err == nil {
		t.Error("nil controller accepted")
	}
	rev := []units.Seconds{1, 0, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, err := Simulate(cfg, rev, utils, mk, Options{}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

// nil2 adapts mlUtils's *testing.T requirement for validation tests.
func nil2(t *testing.T) *testing.T { return t }

func TestMD1Wait(t *testing.T) {
	// rho=0.5, service 1us: W = 0.5*1e-6 / (2*0.5) = 0.5us.
	if got := md1Wait(0.5, 1e-6); math.Abs(got-0.5e-6) > 1e-15 {
		t.Errorf("md1Wait(0.5) = %v, want 0.5us", got)
	}
	if md1Wait(0, 1e-6) != 0 {
		t.Error("zero load should have zero wait")
	}
	// Saturation returns a large finite value rather than infinity.
	over := md1Wait(1.5, 1e-6)
	if math.IsInf(over, 0) || over <= md1Wait(0.9, 1e-6) {
		t.Errorf("saturated wait = %v", over)
	}
	// Monotone in load.
	if md1Wait(0.8, 1e-6) <= md1Wait(0.4, 1e-6) {
		t.Error("wait not monotone in load")
	}
}

// TestQueueingDelayCost: slowing pipelines raises the estimated queueing
// delay versus full frequency — the §4.3 latency cost made explicit.
func TestQueueingDelayCost(t *testing.T) {
	cfg := asic.DefaultConfig()
	times, utils := mlUtils(t, cfg, 200, 0.5, 4)
	opts := rateOpts()
	mk := func() Controller {
		c, _ := NewReactive(1.05, 0.2, 0.05)
		return c
	}
	res, err := Simulate(cfg, times, utils, mk, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanQueueingDelay <= 0 {
		t.Fatal("delay model produced no estimate")
	}
	if res.MeanQueueingDelay <= res.BaselineQueueingDelay {
		t.Errorf("scaled delay %v should exceed full-rate delay %v",
			res.MeanQueueingDelay, res.BaselineQueueingDelay)
	}
	if res.MaxQueueingDelay < res.MeanQueueingDelay {
		t.Errorf("max %v below mean %v", res.MaxQueueingDelay, res.MeanQueueingDelay)
	}
	// Without the model parameters, no estimates are produced.
	plain, err := Simulate(cfg, times, utils, mk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanQueueingDelay != 0 || plain.MaxQueueingDelay != 0 {
		t.Error("delay estimated without model parameters")
	}
}

func rateOpts() Options {
	return Options{
		PipelineCapacity: 12.8 * units.Tbps, // quarter of a 51.2T chip
		FrameBits:        12000,
	}
}

// Property: energy under any reactive controller is within
// [MinPower x horizon, baseline], and savings in [0,1).
func TestSimulateBounded(t *testing.T) {
	cfg := asic.DefaultConfig()
	f := func(seed uint16, busyRaw uint8) bool {
		busy := 1 + int(busyRaw)%4
		n := 50
		times := sampleTimes(n, 1)
		utils := make([][]float64, cfg.Pipelines)
		for p := range utils {
			utils[p] = make([]float64, n)
			if p >= busy {
				continue
			}
			x := float64(seed%1000) / 1000
			for i := range utils[p] {
				x = math.Mod(x*1.7+0.13, 1.0)
				utils[p][i] = x
			}
		}
		mk := func() Controller {
			c, _ := NewReactive(1.05, 0.1, 0.05)
			return c
		}
		res, err := Simulate(cfg, times, utils, mk, Options{GateIdleSerDes: seed%2 == 0})
		if err != nil {
			return false
		}
		a, _ := asic.New(cfg)
		floor := units.EnergyOver(a.MinPower(), res.Horizon)
		return res.Energy >= floor-1 && res.Energy <= res.Baseline+1 &&
			res.Savings >= 0 && res.Savings < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
