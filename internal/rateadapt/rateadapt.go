// Package rateadapt implements §4.3's dynamic optimization: rate
// adaptation. Packet pipelines scale their clock frequency to the offered
// load, saving dynamic power. The package provides reactive and
// EWMA-predictive controllers with hysteresis, a "global" mode that
// reproduces today's limitation of clocking every pipeline jointly, and an
// option to combine frequency scaling with SerDes power gating — the
// combination the paper argues is needed for real savings.
package rateadapt

import (
	"fmt"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/stats"
	"netpowerprop/internal/units"
)

// Controller maps an observed pipeline utilization (fraction of pipeline
// capacity, [0,1]) to a frequency setting in [MinFreq, 1].
type Controller interface {
	Name() string
	// Decide returns the frequency for the next interval given the
	// utilization observed over the last one.
	Decide(util float64) float64
}

// Static always runs at full frequency (today's default behavior).
type Static struct{}

// Name implements Controller.
func (Static) Name() string { return "static" }

// Decide implements Controller.
func (Static) Decide(float64) float64 { return 1 }

// Reactive tracks the last observed utilization with headroom and
// hysteresis: frequency rises immediately when utilization exceeds the
// current setting, but only falls when the setting exceeds need by the
// hysteresis margin — avoiding oscillation on noisy load.
type Reactive struct {
	// Headroom multiplies the observed load to leave slack for bursts
	// (e.g. 1.25 runs 25% above observed need).
	Headroom float64
	// MinFreq floors the frequency (pipelines cannot clock to zero; §4.4
	// handles turning them off entirely).
	MinFreq float64
	// Hysteresis is the downward margin: the frequency only drops when
	// need + Hysteresis < current.
	Hysteresis float64

	current float64
}

// NewReactive validates and builds a reactive controller.
func NewReactive(headroom, minFreq, hysteresis float64) (*Reactive, error) {
	if headroom < 1 {
		return nil, fmt.Errorf("rateadapt: headroom %v must be >= 1", headroom)
	}
	if minFreq <= 0 || minFreq > 1 {
		return nil, fmt.Errorf("rateadapt: min frequency %v outside (0,1]", minFreq)
	}
	if hysteresis < 0 || hysteresis > 1 {
		return nil, fmt.Errorf("rateadapt: hysteresis %v outside [0,1]", hysteresis)
	}
	return &Reactive{Headroom: headroom, MinFreq: minFreq, Hysteresis: hysteresis, current: 1}, nil
}

// Name implements Controller.
func (r *Reactive) Name() string { return "reactive" }

// Decide implements Controller.
func (r *Reactive) Decide(util float64) float64 {
	need := stats.Clamp(util*r.Headroom, r.MinFreq, 1)
	switch {
	case need > r.current:
		r.current = need
	case need+r.Hysteresis < r.current:
		r.current = need
	}
	return r.current
}

// Predictive smooths utilization with an EWMA before applying headroom —
// §4.3's "dynamically adapt to the load" with a memory, suited to the
// predictable periodic load of ML training.
type Predictive struct {
	Headroom float64
	MinFreq  float64
	ewma     stats.EWMA
}

// NewPredictive validates and builds a predictive controller. alpha is the
// EWMA smoothing factor in (0,1].
func NewPredictive(headroom, minFreq, alpha float64) (*Predictive, error) {
	if headroom < 1 {
		return nil, fmt.Errorf("rateadapt: headroom %v must be >= 1", headroom)
	}
	if minFreq <= 0 || minFreq > 1 {
		return nil, fmt.Errorf("rateadapt: min frequency %v outside (0,1]", minFreq)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("rateadapt: alpha %v outside (0,1]", alpha)
	}
	return &Predictive{Headroom: headroom, MinFreq: minFreq, ewma: stats.EWMA{Alpha: alpha}}, nil
}

// Name implements Controller.
func (p *Predictive) Name() string { return "predictive" }

// Decide implements Controller.
func (p *Predictive) Decide(util float64) float64 {
	smoothed := p.ewma.Update(util)
	// Never clock below the instantaneous need: smoothing must not shed
	// packets during a burst the EWMA has not caught up with.
	need := smoothed
	if util > need {
		need = util
	}
	return stats.Clamp(need*p.Headroom, p.MinFreq, 1)
}

// Options configures a simulation run.
type Options struct {
	// Global clocks all pipelines jointly at the maximum decided frequency
	// — reproducing the "all pipelines controlled jointly by the ASIC's
	// frequency" limitation of today's routers.
	Global bool
	// GateIdleSerDes additionally powers off the SerDes of pipelines with
	// zero utilization in an interval — the paper's point that frequency
	// scaling must work with power gating to be really efficient.
	GateIdleSerDes bool
	// PipelineCapacity and FrameBits, when both positive, enable the
	// M/D/1 queueing-delay estimate: a pipeline at frequency f serves
	// frames at f·PipelineCapacity.
	PipelineCapacity units.Bandwidth
	FrameBits        float64
}

// md1Wait returns the M/D/1 mean waiting time for load rho on a server
// with the given deterministic service time: W = rho·S / (2(1−rho)).
// Loads at or above 1 return the saturated-interval bound instead (the
// queue grows without limit within the interval; callers cap at the
// interval length elsewhere via ShortfallTime).
func md1Wait(rho, service float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		rho = 0.999 // report a large finite wait; shortfall is tracked separately
	}
	return rho * service / (2 * (1 - rho))
}

// Result summarizes a run.
type Result struct {
	// Energy under the controller; Baseline at full frequency throughout.
	Energy   units.Energy
	Baseline units.Energy
	Savings  float64
	// ShortfallTime accumulates interval time where a pipeline's frequency
	// was below its utilization (capacity shortfall: queueing/loss proxy).
	ShortfallTime units.Seconds
	// MeanFreq is the time-averaged frequency across pipelines.
	MeanFreq float64
	// Horizon is the simulated span.
	Horizon units.Seconds
	// MeanQueueingDelay and MaxQueueingDelay estimate the latency cost of
	// running pipelines slower (§4.3's challenge): an M/D/1 waiting-time
	// estimate per busy interval, averaged over traffic. Zero when
	// Options.FrameBits or PipelineCapacity is unset.
	MeanQueueingDelay units.Seconds
	MaxQueueingDelay  units.Seconds
	// BaselineQueueingDelay is the same estimate at full frequency, for
	// comparison.
	BaselineQueueingDelay units.Seconds
}

// Simulate drives per-pipeline controllers over sampled utilizations.
// times[i] is the start of interval i (uniformly spaced, step inferred
// from the first two samples); utils[pipe][i] is pipeline pipe's offered
// utilization during interval i. newController builds one controller per
// pipeline (controllers are stateful).
func Simulate(cfg asic.Config, times []units.Seconds, utils [][]float64, newController func() Controller, opts Options) (Result, error) {
	var res Result
	if len(times) < 2 {
		return res, fmt.Errorf("rateadapt: need at least 2 samples, have %d", len(times))
	}
	if len(utils) != cfg.Pipelines {
		return res, fmt.Errorf("rateadapt: %d utilization rows for %d pipelines", len(utils), cfg.Pipelines)
	}
	for p, row := range utils {
		if len(row) != len(times) {
			return res, fmt.Errorf("rateadapt: pipeline %d has %d samples, want %d", p, len(row), len(times))
		}
	}
	step := times[1] - times[0]
	if step <= 0 {
		return res, fmt.Errorf("rateadapt: non-increasing sample times")
	}

	a, err := asic.New(cfg)
	if err != nil {
		return res, err
	}
	base, err := asic.New(cfg)
	if err != nil {
		return res, err
	}
	ctrls := make([]Controller, cfg.Pipelines)
	for p := range ctrls {
		ctrls[p] = newController()
		if ctrls[p] == nil {
			return res, fmt.Errorf("rateadapt: newController returned nil")
		}
	}

	var freqSum float64
	var delayAcc, baseDelayAcc, trafficAcc float64
	delayModel := opts.PipelineCapacity > 0 && opts.FrameBits > 0
	for i := range times {
		freqs := make([]float64, cfg.Pipelines)
		for p := range ctrls {
			u := utils[p][i]
			if u < 0 || u > 1 {
				return res, fmt.Errorf("rateadapt: utilization %v outside [0,1] (pipeline %d, sample %d)", u, p, i)
			}
			freqs[p] = ctrls[p].Decide(u)
		}
		if opts.Global {
			maxF := 0.0
			for _, f := range freqs {
				if f > maxF {
					maxF = f
				}
			}
			for p := range freqs {
				freqs[p] = maxF
			}
		}
		for p, f := range freqs {
			if err := a.SetPipelineFreq(p, f); err != nil {
				return res, err
			}
			ports, err := a.PortsOf(p)
			if err != nil {
				return res, err
			}
			gate := opts.GateIdleSerDes && utils[p][i] == 0
			for _, port := range ports {
				if err := a.SetPort(port, !gate); err != nil {
					return res, err
				}
			}
			if utils[p][i] > freqs[p]+1e-12 {
				res.ShortfallTime += step
			}
			freqSum += f
			if delayModel && utils[p][i] > 0 {
				// Traffic-weighted M/D/1 waiting time: service time is one
				// frame at the scaled rate; load is util relative to the
				// scaled capacity.
				weight := utils[p][i] * float64(step)
				svc := opts.FrameBits / (f * float64(opts.PipelineCapacity))
				wait := md1Wait(utils[p][i]/f, svc)
				svcFull := opts.FrameBits / float64(opts.PipelineCapacity)
				waitFull := md1Wait(utils[p][i], svcFull)
				delayAcc += wait * weight
				baseDelayAcc += waitFull * weight
				trafficAcc += weight
				if units.Seconds(wait) > res.MaxQueueingDelay {
					res.MaxQueueingDelay = units.Seconds(wait)
				}
			}
		}
		res.Energy += units.EnergyOver(a.Power(), step)
		res.Baseline += units.EnergyOver(base.Power(), step)
	}
	res.Horizon = step * units.Seconds(len(times))
	res.MeanFreq = freqSum / float64(len(times)*cfg.Pipelines)
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	if trafficAcc > 0 {
		res.MeanQueueingDelay = units.Seconds(delayAcc / trafficAcc)
		res.BaselineQueueingDelay = units.Seconds(baseDelayAcc / trafficAcc)
	}
	return res, nil
}
