package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandwidthScales(t *testing.T) {
	tests := []struct {
		in   Bandwidth
		gbps float64
	}{
		{400 * Gbps, 400},
		{51.2 * Tbps, 51200},
		{100 * Mbps, 0.1},
		{0, 0},
	}
	for _, tt := range tests {
		if got := tt.in.Gigabits(); math.Abs(got-tt.gbps) > 1e-9 {
			t.Errorf("%v.Gigabits() = %v, want %v", tt.in, got, tt.gbps)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	tests := []struct {
		in   string
		want Bandwidth
	}{
		{"400G", 400 * Gbps},
		{"400 Gbps", 400 * Gbps},
		{"400Gb", 400 * Gbps},
		{"51.2T", 51.2 * Tbps},
		{"51.2 Tbps", 51.2 * Tbps},
		{"100", 100 * Gbps}, // bare numbers are Gbps (paper convention)
		{"1600g", 1600 * Gbps},
		{"10Mbps", 10 * Mbps},
		{"5kbps", 5 * Kbps},
	}
	for _, tt := range tests {
		got, err := ParseBandwidth(tt.in)
		if err != nil {
			t.Errorf("ParseBandwidth(%q) error: %v", tt.in, err)
			continue
		}
		if math.Abs(float64(got-tt.want)) > 1e-3 {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseBandwidthErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "400X", "  ", "12.5 parsecs"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q) expected error, got nil", in)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	tests := []struct {
		in   Bandwidth
		want string
	}{
		{400 * Gbps, "400 Gbps"},
		{51.2 * Tbps, "51.2 Tbps"},
		{1 * Kbps, "1 Kbps"},
		{512 * BitPerSecond, "512 bps"},
		{1.5 * Mbps, "1.5 Mbps"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParsePower(t *testing.T) {
	tests := []struct {
		in   string
		want Power
	}{
		{"750W", 750 * Watt},
		{"750 W", 750 * Watt},
		{"365kW", 365 * Kilowatt},
		{"1.05 MW", 1.05 * Megawatt},
		{"8.6", 8.6 * Watt},
		{"27.27w", 27.27 * Watt},
	}
	for _, tt := range tests {
		got, err := ParsePower(tt.in)
		if err != nil {
			t.Errorf("ParsePower(%q) error: %v", tt.in, err)
			continue
		}
		if math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("ParsePower(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParsePowerErrors(t *testing.T) {
	for _, in := range []string{"", "watt", "10GW"} {
		if _, err := ParsePower(in); err == nil {
			t.Errorf("ParsePower(%q) expected error, got nil", in)
		}
	}
}

func TestPowerString(t *testing.T) {
	tests := []struct {
		in   Power
		want string
	}{
		{750 * Watt, "750 W"},
		{365 * Kilowatt, "365 kW"},
		{7.68 * Megawatt, "7.68 MW"},
		{0, "0 W"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEnergyConversions(t *testing.T) {
	e := EnergyOver(1*Kilowatt, 3600) // 1 kW for one hour
	if got := e.KilowattHours(); math.Abs(got-1) > 1e-9 {
		t.Errorf("1kW x 1h = %v kWh, want 1", got)
	}
	if got := AveragePower(e, 3600); math.Abs(float64(got-1*Kilowatt)) > 1e-9 {
		t.Errorf("AveragePower = %v, want 1 kW", got)
	}
	if got := AveragePower(e, 0); got != 0 {
		t.Errorf("AveragePower over zero duration = %v, want 0", got)
	}
}

func TestEnergyString(t *testing.T) {
	tests := []struct {
		in   Energy
		want string
	}{
		{500 * Joule, "500 J"},
		{5 * Kilojoule, "5 kJ"},
		{2 * KilowattHour, "2 kWh"},
		{3 * MegawattHour, "3 MWh"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: energy over a duration divided back by the duration recovers the
// power, for any positive power and duration.
func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(pw, dur float64) bool {
		p := Power(math.Abs(math.Mod(pw, 1e9)))
		d := Seconds(1e-3 + math.Abs(math.Mod(dur, 1e6)))
		back := AveragePower(EnergyOver(p, d), d)
		return math.Abs(float64(back-p)) <= 1e-6*math.Max(1, float64(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: formatting then parsing a bandwidth is lossy only in rounding.
func TestBandwidthFormatParseRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		b := Bandwidth(1 + math.Abs(math.Mod(raw, 1e13)))
		parsed, err := ParseBandwidth(b.String())
		if err != nil {
			return false
		}
		// String() keeps 3 decimals of the scaled value; allow 0.1% slack.
		return math.Abs(float64(parsed-b)) <= 1e-3*float64(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1.0, "1"},
		{1.5, "1.5"},
		{1.250, "1.25"},
		{0.0, "0"},
		{-2.400, "-2.4"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
