// Package units provides strongly typed physical quantities used throughout
// the power-proportionality model: bandwidth, power, and energy.
//
// All quantities are float64 wrappers with SI-scaled constructors, parsers,
// and human-readable formatting. Arithmetic stays in base units (bits per
// second, watts, joules) so model code never multiplies mismatched scales.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bandwidth is a data rate in bits per second.
type Bandwidth float64

// Common bandwidth scales.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1e3 * BitPerSecond
	Mbps                   = 1e6 * BitPerSecond
	Gbps                   = 1e9 * BitPerSecond
	Tbps                   = 1e12 * BitPerSecond
)

// Gigabits returns the bandwidth expressed in Gbps.
func (b Bandwidth) Gigabits() float64 { return float64(b / Gbps) }

// Terabits returns the bandwidth expressed in Tbps.
func (b Bandwidth) Terabits() float64 { return float64(b / Tbps) }

// String formats the bandwidth with an auto-selected SI suffix.
func (b Bandwidth) String() string {
	v := float64(b)
	switch {
	case math.Abs(v) >= float64(Tbps):
		return trimFloat(v/float64(Tbps)) + " Tbps"
	case math.Abs(v) >= float64(Gbps):
		return trimFloat(v/float64(Gbps)) + " Gbps"
	case math.Abs(v) >= float64(Mbps):
		return trimFloat(v/float64(Mbps)) + " Mbps"
	case math.Abs(v) >= float64(Kbps):
		return trimFloat(v/float64(Kbps)) + " Kbps"
	default:
		return trimFloat(v) + " bps"
	}
}

// ParseBandwidth parses strings such as "400G", "400 Gbps", "51.2T",
// "100Mbps", or a bare number interpreted as Gbps (the paper's convention).
func ParseBandwidth(s string) (Bandwidth, error) {
	num, suffix, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("parse bandwidth %q: %w", s, err)
	}
	switch strings.ToLower(strings.TrimSuffix(strings.TrimSuffix(suffix, "bps"), "b")) {
	case "":
		if suffix == "" {
			return Bandwidth(num) * Gbps, nil
		}
		return Bandwidth(num) * BitPerSecond, nil
	case "k":
		return Bandwidth(num) * Kbps, nil
	case "m":
		return Bandwidth(num) * Mbps, nil
	case "g":
		return Bandwidth(num) * Gbps, nil
	case "t":
		return Bandwidth(num) * Tbps, nil
	default:
		return 0, fmt.Errorf("parse bandwidth %q: unknown suffix %q", s, suffix)
	}
}

// Power is an electrical power in watts.
type Power float64

// Common power scales.
const (
	Watt     Power = 1
	Kilowatt       = 1e3 * Watt
	Megawatt       = 1e6 * Watt
)

// Watts returns the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// Kilowatts returns the power in kW.
func (p Power) Kilowatts() float64 { return float64(p / Kilowatt) }

// Megawatts returns the power in MW.
func (p Power) Megawatts() float64 { return float64(p / Megawatt) }

// String formats the power with an auto-selected SI suffix.
func (p Power) String() string {
	v := float64(p)
	switch {
	case math.Abs(v) >= float64(Megawatt):
		return trimFloat(v/float64(Megawatt)) + " MW"
	case math.Abs(v) >= float64(Kilowatt):
		return trimFloat(v/float64(Kilowatt)) + " kW"
	default:
		return trimFloat(v) + " W"
	}
}

// ParsePower parses strings such as "750W", "1.05 MW", "365kW", or a bare
// number interpreted as watts.
func ParsePower(s string) (Power, error) {
	num, suffix, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("parse power %q: %w", s, err)
	}
	switch strings.TrimSuffix(strings.ToLower(suffix), "w") {
	case "":
		return Power(num) * Watt, nil
	case "k":
		return Power(num) * Kilowatt, nil
	case "m":
		return Power(num) * Megawatt, nil
	default:
		return 0, fmt.Errorf("parse power %q: unknown suffix %q", s, suffix)
	}
}

// Energy is an amount of electrical energy in joules.
type Energy float64

// Common energy scales.
const (
	Joule        Energy = 1
	Kilojoule           = 1e3 * Joule
	Megajoule           = 1e6 * Joule
	WattHour            = 3600 * Joule
	KilowattHour        = 1e3 * WattHour
	MegawattHour        = 1e6 * WattHour
)

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// KilowattHours returns the energy in kWh.
func (e Energy) KilowattHours() float64 { return float64(e / KilowattHour) }

// String formats the energy with an auto-selected suffix, preferring kWh for
// utility-scale values.
func (e Energy) String() string {
	v := float64(e)
	switch {
	case math.Abs(v) >= float64(MegawattHour):
		return trimFloat(v/float64(MegawattHour)) + " MWh"
	case math.Abs(v) >= float64(KilowattHour):
		return trimFloat(v/float64(KilowattHour)) + " kWh"
	case math.Abs(v) >= float64(Kilojoule):
		return trimFloat(v/float64(Kilojoule)) + " kJ"
	default:
		return trimFloat(v) + " J"
	}
}

// Seconds is a model duration in seconds. The analytical model works in
// normalized iteration time, while the simulator uses wall-clock seconds;
// both share this type.
type Seconds float64

// EnergyOver returns the energy consumed drawing power p for d seconds.
func EnergyOver(p Power, d Seconds) Energy {
	return Energy(float64(p) * float64(d))
}

// AveragePower returns the average power of consuming e over d seconds.
// It returns 0 when d is 0 to keep degenerate intervals harmless.
func AveragePower(e Energy, d Seconds) Power {
	if d == 0 {
		return 0
	}
	return Power(float64(e) / float64(d))
}

// splitQuantity separates "12.5kW" into 12.5 and "kW" (suffix untrimmed of
// unit letters; callers interpret it). Spaces between number and suffix are
// allowed.
func splitQuantity(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", fmt.Errorf("empty quantity")
	}
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			// Guard: 'e'/'E' only counts as part of the number when followed
			// by a digit or sign (scientific notation), not a unit suffix.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '-' && n != '+' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	num, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", err
	}
	return num, strings.TrimSpace(s[i:]), nil
}

// trimFloat renders a float with up to 3 decimals, trimming trailing zeros.
func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
