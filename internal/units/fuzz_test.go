package units

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseBandwidth checks the parser never panics and that accepted
// inputs round-trip through String within formatting tolerance.
func FuzzParseBandwidth(f *testing.F) {
	for _, seed := range []string{"400G", "51.2 Tbps", "100", "0", "-5G", "1e3Mbps",
		"  12.5 Kbps ", "Gbps", "4e", "4eG", "1.2.3G", "9999999999999T"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseBandwidth(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(b)) {
			t.Fatalf("ParseBandwidth(%q) = NaN without error", s)
		}
		// Positive finite values must round-trip through String.
		if b > 0 && !math.IsInf(float64(b), 0) {
			back, err := ParseBandwidth(b.String())
			if err != nil {
				t.Fatalf("reparse of %q (from %q) failed: %v", b.String(), s, err)
			}
			if float64(b) > 1 && math.Abs(float64(back-b)) > 1e-3*float64(b)+1 {
				t.Fatalf("round trip %q -> %v -> %v", s, b, back)
			}
		}
	})
}

// FuzzParsePower mirrors FuzzParseBandwidth for the power parser.
func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{"750W", "1.05 MW", "365kW", "8.6", "-1W", "W", "1e2 kW"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePower(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(p)) {
			t.Fatalf("ParsePower(%q) = NaN without error", s)
		}
		if p > 0 && !math.IsInf(float64(p), 0) {
			back, err := ParsePower(p.String())
			if err != nil {
				t.Fatalf("reparse of %q (from %q) failed: %v", p.String(), s, err)
			}
			if float64(p) > 1 && math.Abs(float64(back-p)) > 1e-3*float64(p)+1 {
				t.Fatalf("round trip %q -> %v -> %v", s, p, back)
			}
		}
	})
}

// FuzzSplitQuantity hammers the shared tokenizer directly.
func FuzzSplitQuantity(f *testing.F) {
	for _, seed := range []string{"", " ", "1", "1.5e3 kW", "e", "+", "-", "..", "1e+", "1E9G"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		num, suffix, err := splitQuantity(s)
		if err != nil {
			return
		}
		if math.IsNaN(num) {
			t.Fatalf("splitQuantity(%q) returned NaN without error", s)
		}
		if strings.TrimSpace(suffix) != suffix {
			t.Fatalf("splitQuantity(%q) returned untrimmed suffix %q", s, suffix)
		}
	})
}
