package parking

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func mlDemand(t *testing.T, n int, step units.Seconds, period units.Seconds, ratio, level float64) ([]units.Seconds, []float64) {
	t.Helper()
	prof, err := traffic.MLPeriodic(ratio, period, level)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]units.Seconds, n)
	demand := make([]float64, n)
	for i := range times {
		times[i] = units.Seconds(i) * step
		demand[i] = prof(times[i])
	}
	return times, demand
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.CircuitSwitchPower = -1 },
		func(c *Config) { c.WakeLatency = -1 },
		func(c *Config) { c.BufferBits = -1 },
		func(c *Config) { c.MinActive = 0 },
		func(c *Config) { c.MinActive = 99 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAlwaysOnMatchesBaselinePlusCircuitSwitch(t *testing.T) {
	cfg := DefaultConfig()
	times, demand := mlDemand(t, 200, 0.05, 1, 0.2, 0.5)
	res, err := Simulate(cfg, times, demand, AlwaysOn{Pipelines: cfg.ASIC.Pipelines})
	if err != nil {
		t.Fatal(err)
	}
	// Always-on with a circuit switch costs slightly MORE than baseline:
	// the indirection hardware isn't free.
	wantExtra := units.EnergyOver(cfg.CircuitSwitchPower, res.Horizon)
	if math.Abs(float64(res.Energy-res.Baseline-wantExtra)) > 1e-6 {
		t.Errorf("always-on energy = %v, want baseline %v + circuit switch %v",
			res.Energy, res.Baseline, wantExtra)
	}
	if res.Savings >= 0 {
		t.Errorf("always-on savings = %v, want negative (circuit switch overhead)", res.Savings)
	}
	if res.DroppedBits != 0 || res.MaxBacklogBits != 0 {
		t.Errorf("always-on should never buffer: %+v", res)
	}
	if res.MeanActive != 4 {
		t.Errorf("mean active = %v, want 4", res.MeanActive)
	}
}

func TestReactiveParksDuringCompute(t *testing.T) {
	cfg := DefaultConfig()
	// ML pattern: 80% of the time idle, bursts to 50% utilization.
	times, demand := mlDemand(t, 400, 0.05, 2, 0.2, 0.5)
	pol, err := NewReactive(4, 1, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, times, demand, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings <= 0.05 {
		t.Errorf("reactive savings = %v, want > 5%%", res.Savings)
	}
	if res.MeanActive >= 4 || res.MeanActive < 1 {
		t.Errorf("mean active = %v", res.MeanActive)
	}
	if res.Reconfigurations == 0 {
		t.Error("reactive never reconfigured on periodic load")
	}
	// Wake latency on burst onset causes some buffering.
	if res.MaxBacklogBits == 0 {
		t.Error("expected backlog at burst onsets with 10 ms wake latency")
	}
}

func TestScheduledAvoidsBacklog(t *testing.T) {
	cfg := DefaultConfig()
	period := units.Seconds(2.0)
	times, demand := mlDemand(t, 400, 0.05, period, 0.2, 0.5)
	// Lead covers the wake latency plus one sampling step (the policy is
	// evaluated at interval granularity).
	sched, err := NewScheduled(period, 0.4, 0.1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, times, demand, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBits != 0 {
		t.Errorf("scheduled policy dropped %v bits", res.DroppedBits)
	}
	if res.MaxBacklogBits > 0 {
		t.Errorf("scheduled policy backlog = %v bits, want 0", res.MaxBacklogBits)
	}
	if res.Savings <= 0.05 {
		t.Errorf("scheduled savings = %v", res.Savings)
	}
}

func TestScheduledBeatsReactiveOnLatency(t *testing.T) {
	cfg := DefaultConfig()
	period := units.Seconds(2.0)
	times, demand := mlDemand(t, 800, 0.05, period, 0.2, 0.5)
	reactive, _ := NewReactive(4, 1, 0.8, 0.5)
	sched, _ := NewScheduled(period, 0.4, 0.1, 1, 4)
	r1, err := Simulate(cfg, times, demand, reactive)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(cfg, times, demand, sched)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle schedule eliminates the wake-latency backlog the reactive
	// policy pays at every burst onset (§4.4's predictability argument).
	if r2.MaxDelay >= r1.MaxDelay {
		t.Errorf("scheduled max delay %v should beat reactive %v", r2.MaxDelay, r1.MaxDelay)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBits = 1e6 // 125 kB: tiny
	cfg.WakeLatency = 0.5
	times, demand := mlDemand(t, 200, 0.05, 2, 0.2, 0.9)
	pol, _ := NewReactive(4, 1, 0.8, 0.5)
	res, err := Simulate(cfg, times, demand, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBits <= 0 {
		t.Error("expected drops with a tiny buffer and 0.5 s wake latency")
	}
	if res.DroppedBits >= res.OfferedBits {
		t.Errorf("drops %v exceed offered %v", res.DroppedBits, res.OfferedBits)
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewReactive(0, 1, 0.8, 0.5); err == nil {
		t.Error("zero pipelines accepted")
	}
	if _, err := NewReactive(4, 5, 0.8, 0.5); err == nil {
		t.Error("min > pipelines accepted")
	}
	if _, err := NewReactive(4, 1, 0.5, 0.8); err == nil {
		t.Error("up <= down accepted")
	}
	if _, err := NewReactive(4, 1, 1.5, 0.5); err == nil {
		t.Error("up > 1 accepted")
	}
	if _, err := NewScheduled(0, 0.4, 0.1, 1, 4); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewScheduled(2, 3, 0.1, 1, 4); err == nil {
		t.Error("window > period accepted")
	}
	if _, err := NewScheduled(2, 0.4, 1.7, 1, 4); err == nil {
		t.Error("excess lead accepted")
	}
	if _, err := NewScheduled(2, 0.4, 0.1, 0, 4); err == nil {
		t.Error("zero low accepted")
	}
	if _, err := NewScheduled(2, 0.4, 0.1, 3, 2); err == nil {
		t.Error("high < low accepted")
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := DefaultConfig()
	times, demand := mlDemand(t, 10, 0.1, 1, 0.2, 0.5)
	pol := AlwaysOn{Pipelines: 4}
	if _, err := Simulate(cfg, times[:1], demand[:1], pol); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Simulate(cfg, times, demand[:5], pol); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Simulate(cfg, times, demand, nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := append([]float64{}, demand...)
	bad[3] = 2
	if _, err := Simulate(cfg, times, bad, pol); err == nil {
		t.Error("demand > 1 accepted")
	}
	badCfg := cfg
	badCfg.MinActive = 0
	if _, err := Simulate(badCfg, times, demand, pol); err == nil {
		t.Error("invalid config accepted")
	}
	rev := append([]units.Seconds{}, times...)
	rev[1] = rev[0]
	if _, err := Simulate(cfg, rev, demand, pol); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestReactiveDecideBounds(t *testing.T) {
	pol, _ := NewReactive(4, 1, 0.8, 0.5)
	// High load on few pipelines: scale up one at a time.
	if got := pol.Decide(0, 0.9, 2); got != 3 {
		t.Errorf("scale up = %d, want 3", got)
	}
	// Cannot exceed pipeline count.
	if got := pol.Decide(0, 1.0, 4); got != 4 {
		t.Errorf("at max = %d, want 4", got)
	}
	// Low load: scale down.
	if got := pol.Decide(0, 0.05, 2); got != 1 {
		t.Errorf("scale down = %d, want 1", got)
	}
	// Never below min.
	if got := pol.Decide(0, 0, 1); got != 1 {
		t.Errorf("at min = %d, want 1", got)
	}
}

// Property: conservation — delivered bits (offered - dropped) never exceed
// offered; energy within [minActive floor, always-on + circuit switch];
// mean active within [min, pipelines].
func TestSimulateInvariants(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint16, lvlRaw uint8) bool {
		level := 0.1 + float64(lvlRaw%80)/100
		n := 100
		times := make([]units.Seconds, n)
		demand := make([]float64, n)
		x := float64(seed) / 65536
		for i := range times {
			times[i] = units.Seconds(i) * 0.05
			x = math.Mod(x*1.9+0.07, 1.0)
			if x < 0.5 {
				demand[i] = 0
			} else {
				demand[i] = level
			}
		}
		pol, err := NewReactive(4, 1, 0.8, 0.5)
		if err != nil {
			return false
		}
		res, err := Simulate(cfg, times, demand, pol)
		if err != nil {
			return false
		}
		if res.DroppedBits < 0 || res.DroppedBits > res.OfferedBits+1e-6 {
			return false
		}
		if res.MeanActive < 1 || res.MeanActive > 4 {
			return false
		}
		ceiling := res.Baseline + units.EnergyOver(cfg.CircuitSwitchPower, res.Horizon)
		return res.Energy <= ceiling+1 && res.Energy > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
