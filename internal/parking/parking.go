// Package parking implements §4.4's dynamic optimization: turning entire
// pipelines off. A circuit switch between the physical ports and the ASIC
// (Fig. 5) breaks the fixed port-to-pipeline mapping, so traffic can be
// concentrated onto a few active pipelines while the rest power down.
//
// The simulator drives a parking policy over a sampled demand trace and
// accounts for the §4.4 trade-offs: the circuit switch's own power, the
// wake latency of a parked pipeline (demand arriving before capacity is
// back gets buffered — or dropped when the buffer overflows), and the
// buffering delay this adds.
package parking

import (
	"fmt"
	"math"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/units"
)

// Config sizes the parking-capable switch.
type Config struct {
	// ASIC is the chip being parked.
	ASIC asic.Config
	// CircuitSwitchPower is the indirection layer's constant draw. The
	// paper postulates it is small (it only redirects signals) but grows
	// if buffers are added.
	CircuitSwitchPower units.Power
	// WakeLatency is how long an off pipeline takes to come back.
	WakeLatency units.Seconds
	// BufferBits bounds the backlog the circuit switch can hold while
	// capacity catches up; excess is dropped (or, equivalently, paused at
	// the sender via Ethernet pause frames — we count it as loss here).
	BufferBits float64
	// MinActive floors the number of powered pipelines.
	MinActive int
}

// DefaultConfig pairs the default ASIC with a 5 W buffered electrical
// circuit switch, a 10 ms pipeline wake, a 100 MB buffer, and one pipeline
// always on.
func DefaultConfig() Config {
	return Config{
		ASIC:               asic.DefaultConfig(),
		CircuitSwitchPower: 5 * units.Watt,
		WakeLatency:        10e-3,
		BufferBits:         8 * 100e6,
		MinActive:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CircuitSwitchPower < 0 {
		return fmt.Errorf("parking: negative circuit switch power %v", c.CircuitSwitchPower)
	}
	if c.WakeLatency < 0 {
		return fmt.Errorf("parking: negative wake latency %v", c.WakeLatency)
	}
	if c.BufferBits < 0 {
		return fmt.Errorf("parking: negative buffer %v", c.BufferBits)
	}
	if c.MinActive < 1 || c.MinActive > c.ASIC.Pipelines {
		return fmt.Errorf("parking: min active %d outside [1,%d]", c.MinActive, c.ASIC.Pipelines)
	}
	return nil
}

// Policy decides how many pipelines should be active for the next interval.
type Policy interface {
	Name() string
	// Decide sees the current time, the switch-wide offered utilization
	// (fraction of full-ASIC capacity) observed over the last interval,
	// and the currently active pipeline count.
	Decide(now units.Seconds, util float64, active int) int
}

// AlwaysOn keeps every pipeline powered (today's behavior).
type AlwaysOn struct{ Pipelines int }

// Name implements Policy.
func (AlwaysOn) Name() string { return "always-on" }

// Decide implements Policy.
func (a AlwaysOn) Decide(units.Seconds, float64, int) int { return a.Pipelines }

// Reactive turns a pipeline off when the remaining ones could absorb the
// load below the down-threshold, and turns one on when utilization of the
// active set crosses the up-threshold — §4.4's "reactive manner".
type Reactive struct {
	Pipelines int
	MinActive int
	// UpThreshold and DownThreshold are utilizations of the *active*
	// capacity; Up > Down gives hysteresis.
	UpThreshold   float64
	DownThreshold float64
}

// NewReactive validates and builds the policy.
func NewReactive(pipelines, minActive int, up, down float64) (*Reactive, error) {
	if pipelines < 1 || minActive < 1 || minActive > pipelines {
		return nil, fmt.Errorf("parking: pipelines %d / min %d invalid", pipelines, minActive)
	}
	if down <= 0 || up <= down || up > 1 {
		return nil, fmt.Errorf("parking: thresholds up %v / down %v invalid (need 0 < down < up <= 1)", up, down)
	}
	return &Reactive{Pipelines: pipelines, MinActive: minActive, UpThreshold: up, DownThreshold: down}, nil
}

// Name implements Policy.
func (r *Reactive) Name() string { return "reactive" }

// Decide implements Policy.
func (r *Reactive) Decide(_ units.Seconds, util float64, active int) int {
	if active < r.MinActive {
		active = r.MinActive
	}
	perPipe := 1.0 / float64(r.Pipelines)
	activeUtil := util / (float64(active) * perPipe)
	switch {
	case activeUtil > r.UpThreshold && active < r.Pipelines:
		return active + 1
	case active > r.MinActive:
		// Would the load fit on one fewer pipeline below the down
		// threshold?
		if util/(float64(active-1)*perPipe) < r.DownThreshold {
			return active - 1
		}
	}
	return active
}

// Scheduled exploits ML training predictability: it powers up to High
// pipelines a lead time before each periodic communication window and
// drops to Low outside it — §4.4's "orchestrate when pipelines are turned
// on and off based on when traffic is expected".
type Scheduled struct {
	Period units.Seconds
	// Window is the communication window length at the end of each period.
	Window units.Seconds
	// Lead wakes pipelines this long before the window opens (covering the
	// wake latency).
	Lead      units.Seconds
	Low, High int
}

// NewScheduled validates and builds the policy.
func NewScheduled(period, window, lead units.Seconds, low, high int) (*Scheduled, error) {
	if period <= 0 || window <= 0 || window > period {
		return nil, fmt.Errorf("parking: window %v / period %v invalid", window, period)
	}
	if lead < 0 || lead > period-window {
		return nil, fmt.Errorf("parking: lead %v outside [0, %v]", lead, period-window)
	}
	if low < 1 || high < low {
		return nil, fmt.Errorf("parking: counts low %d / high %d invalid", low, high)
	}
	return &Scheduled{Period: period, Window: window, Lead: lead, Low: low, High: high}, nil
}

// Name implements Policy.
func (s *Scheduled) Name() string { return "scheduled" }

// Decide implements Policy.
func (s *Scheduled) Decide(now units.Seconds, _ float64, _ int) int {
	phase := math.Mod(float64(now), float64(s.Period))
	wakeAt := float64(s.Period - s.Window - s.Lead)
	if phase >= wakeAt {
		return s.High
	}
	return s.Low
}

// Result summarizes a parking run.
type Result struct {
	Energy   units.Energy
	Baseline units.Energy
	Savings  float64
	// Reconfigurations counts pipeline state changes.
	Reconfigurations int
	// DroppedBits overflowed the circuit-switch buffer.
	DroppedBits float64
	// OfferedBits is the total offered demand.
	OfferedBits float64
	// MaxBacklogBits and MeanDelay quantify the buffering cost; MeanDelay
	// is the backlog-weighted average delay proxy (backlog / active
	// capacity).
	MaxBacklogBits float64
	MeanDelay      units.Seconds
	MaxDelay       units.Seconds
	// MeanActive is the time-averaged active pipeline count.
	MeanActive float64
	Horizon    units.Seconds
}

// Simulate drives a policy over a sampled demand trace. times must be
// uniformly spaced; demand[i] is the switch-wide offered utilization (of
// the full ASIC capacity) during interval i. The ASIC's ports stay powered
// (the circuit switch still needs the SerDes); only pipelines park.
func Simulate(cfg Config, times []units.Seconds, demand []float64, pol Policy) (Result, error) {
	var res Result
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if len(times) < 2 || len(demand) != len(times) {
		return res, fmt.Errorf("parking: need matching times/demand with >= 2 samples (have %d/%d)", len(times), len(demand))
	}
	step := times[1] - times[0]
	if step <= 0 {
		return res, fmt.Errorf("parking: non-increasing sample times")
	}
	if pol == nil {
		return res, fmt.Errorf("parking: nil policy")
	}

	a, err := asic.New(cfg.ASIC)
	if err != nil {
		return res, err
	}
	base, err := asic.New(cfg.ASIC)
	if err != nil {
		return res, err
	}
	totalCap := float64(asicCapacity(cfg.ASIC))
	perPipeCap := totalCap / float64(cfg.ASIC.Pipelines)

	active := cfg.ASIC.Pipelines
	// pendingWake[t] pipelines become active at time t (wake latency).
	type wake struct {
		at    units.Seconds
		count int
	}
	var pending []wake
	backlog := 0.0
	var delayWeighted, backlogTime float64

	for i, now := range times {
		u := demand[i]
		if u < 0 || u > 1 {
			return res, fmt.Errorf("parking: demand %v outside [0,1] at sample %d", u, i)
		}
		// Apply completed wakes.
		effective := active
		var stillPending []wake
		for _, w := range pending {
			if w.at <= now {
				effective += w.count
			} else {
				stillPending = append(stillPending, w)
			}
		}
		pending = stillPending
		pendingCount := 0
		for _, w := range pending {
			pendingCount += w.count
		}
		active = effective

		want := pol.Decide(now, u, active)
		if want < cfg.MinActive {
			want = cfg.MinActive
		}
		if want > cfg.ASIC.Pipelines {
			want = cfg.ASIC.Pipelines
		}
		switch {
		case want > active+pendingCount:
			// Wake the difference; capacity arrives after the latency.
			n := want - active - pendingCount
			pending = append(pending, wake{at: now + cfg.WakeLatency, count: n})
			res.Reconfigurations += n
		case want < active:
			// Parking is immediate (drain first in hardware; the backlog
			// model below charges any resulting shortfall).
			res.Reconfigurations += active - want
			active = want
		}

		// Configure the ASIC: pipelines [0,active) on, rest off.
		for p := 0; p < cfg.ASIC.Pipelines; p++ {
			if err := a.SetPipeline(p, p < active); err != nil {
				return res, err
			}
		}

		// Traffic accounting over the interval.
		offered := u * totalCap * float64(step)
		capacity := float64(active) * perPipeCap * float64(step)
		res.OfferedBits += offered
		backlog += offered - capacity
		if backlog < 0 {
			backlog = 0
		}
		if backlog > cfg.BufferBits {
			res.DroppedBits += backlog - cfg.BufferBits
			backlog = cfg.BufferBits
		}
		if backlog > res.MaxBacklogBits {
			res.MaxBacklogBits = backlog
		}
		if backlog > 0 {
			d := backlog / (float64(active) * perPipeCap)
			delayWeighted += d * float64(step)
			backlogTime += float64(step)
			if units.Seconds(d) > res.MaxDelay {
				res.MaxDelay = units.Seconds(d)
			}
		}

		res.Energy += units.EnergyOver(a.Power()+cfg.CircuitSwitchPower, step)
		res.Baseline += units.EnergyOver(base.Power(), step)
		res.MeanActive += float64(active)
	}
	res.Horizon = step * units.Seconds(len(times))
	res.MeanActive /= float64(len(times))
	if backlogTime > 0 {
		res.MeanDelay = units.Seconds(delayWeighted / backlogTime)
	}
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	return res, nil
}

// asicCapacity returns the chip's aggregate forwarding capacity, assuming
// the port count times a 400 G port (the paper's 51.2 Tbps switch).
func asicCapacity(cfg asic.Config) units.Bandwidth {
	return units.Bandwidth(float64(cfg.Ports)) * 400 * units.Gbps
}
