package parking

import (
	"math"
	"testing"

	"netpowerprop/internal/units"
)

// bigFrames keeps packet counts tractable: even a scaled-down switch
// demands enormous frame rates, so validation uses 100 Mb aggregate
// "frames" (frame size does not change fluid-level energy).
const bigFrame = 1e8

// pktCfg scales the switch down to 8 ports (3.2 Tbps) so packet-level
// validation runs in milliseconds; the fluid/packet comparison is
// capacity-scale-free.
func pktCfg() Config {
	cfg := DefaultConfig()
	cfg.ASIC.Ports = 8
	cfg.ASIC.MemoryBanks = 8
	return cfg
}

func TestArrivalsFromDemand(t *testing.T) {
	cfg := pktCfg()
	times, demand := mlDemand(t, 40, 0.05, 2, 0.2, 0.5)
	arr, err := ArrivalsFromDemand(cfg, times, demand, bigFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	// Total bits match the fluid offered bits within one frame per sample.
	var got float64
	for _, a := range arr {
		got += a.Bits
	}
	var want float64
	totalCap := float64(asicCapacity(cfg.ASIC))
	for _, u := range demand {
		want += u * totalCap * 0.05
	}
	if math.Abs(got-want) > bigFrame*float64(len(times)) {
		t.Errorf("offered bits %v, want ~%v", got, want)
	}
	// Arrivals sorted within each interval.
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrivals unsorted")
		}
	}
}

func TestArrivalsFromDemandErrors(t *testing.T) {
	cfg := pktCfg()
	times, demand := mlDemand(t, 10, 0.05, 2, 0.2, 0.5)
	if _, err := ArrivalsFromDemand(cfg, times[:1], demand[:1], bigFrame); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := ArrivalsFromDemand(cfg, times, demand, 0); err == nil {
		t.Error("zero frame accepted")
	}
	bad := append([]float64{}, demand...)
	bad[0] = 2
	if _, err := ArrivalsFromDemand(cfg, times, bad, bigFrame); err == nil {
		t.Error("demand > 1 accepted")
	}
	zero := make([]float64, len(times))
	if _, err := ArrivalsFromDemand(cfg, times, zero, bigFrame); err == nil {
		t.Error("all-zero demand accepted")
	}
}

func TestSimulatePacketsAlwaysOn(t *testing.T) {
	cfg := pktCfg()
	times, demand := mlDemand(t, 100, 0.05, 2, 0.2, 0.5)
	arr, err := ArrivalsFromDemand(cfg, times, demand, bigFrame)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePackets(cfg, arr, AlwaysOn{Pipelines: cfg.ASIC.Pipelines}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("always-on dropped %d", res.Dropped)
	}
	if res.Delivered != len(arr) {
		t.Errorf("delivered %d of %d", res.Delivered, len(arr))
	}
	// Energy = baseline + circuit switch.
	extra := units.EnergyOver(cfg.CircuitSwitchPower, res.Horizon)
	if math.Abs(float64(res.Energy-res.Baseline-extra)) > 1e-6 {
		t.Errorf("always-on energy %v != baseline %v + %v", res.Energy, res.Baseline, extra)
	}
	// At 50% demand on 4 active pipelines the queue never builds beyond
	// one frame's service time.
	frameSvc := bigFrame / float64(asicCapacity(cfg.ASIC))
	if float64(res.MaxDelay) > 10*frameSvc {
		t.Errorf("always-on max delay %v too large", res.MaxDelay)
	}
}

// TestFluidMatchesPackets: the fluid model's energy savings agree with the
// packet-level ground truth within a few percentage points on the same
// workload and policy.
func TestFluidMatchesPackets(t *testing.T) {
	cfg := pktCfg()
	times, demand := mlDemand(t, 200, 0.05, 2, 0.2, 0.5)
	pol1, _ := NewReactive(4, 1, 0.8, 0.5)
	pol2, _ := NewReactive(4, 1, 0.8, 0.5)
	fluid, err := Simulate(cfg, times, demand, pol1)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrivalsFromDemand(cfg, times, demand, bigFrame)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := SimulatePackets(cfg, arr, pol2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fluid.Savings-pkt.Savings) > 0.05 {
		t.Errorf("fluid savings %v vs packet savings %v differ by > 5 pp",
			fluid.Savings, pkt.Savings)
	}
	if pkt.Reconfigurations == 0 {
		t.Error("packet-level run never reconfigured")
	}
}

func TestSimulatePacketsScheduledNoDrops(t *testing.T) {
	cfg := pktCfg()
	times, demand := mlDemand(t, 200, 0.05, 2, 0.2, 0.5)
	sched, err := NewScheduled(2, 0.4, 0.2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrivalsFromDemand(cfg, times, demand, bigFrame)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePackets(cfg, arr, sched, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("scheduled policy dropped %d frames", res.Dropped)
	}
	if res.Savings <= 0 {
		t.Errorf("scheduled packet savings = %v", res.Savings)
	}
	if res.Delivered+res.Dropped != len(arr) {
		t.Errorf("conservation: %d+%d != %d", res.Delivered, res.Dropped, len(arr))
	}
}

func TestSimulatePacketsTinyBufferDrops(t *testing.T) {
	cfg := pktCfg()
	cfg.BufferBits = 2 * bigFrame
	cfg.WakeLatency = 0.5
	times, demand := mlDemand(t, 100, 0.05, 2, 0.2, 0.9)
	pol, _ := NewReactive(4, 1, 0.8, 0.5)
	arr, err := ArrivalsFromDemand(cfg, times, demand, bigFrame)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePackets(cfg, arr, pol, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("expected drops with a 2-frame buffer and slow wake")
	}
}

func TestSimulatePacketsValidation(t *testing.T) {
	cfg := pktCfg()
	pol := AlwaysOn{Pipelines: 4}
	arr := []Arrival{{At: 0, Bits: bigFrame}}
	if _, err := SimulatePackets(cfg, nil, pol, 0.05); err == nil {
		t.Error("no arrivals accepted")
	}
	if _, err := SimulatePackets(cfg, arr, pol, 0); err == nil {
		t.Error("zero tick accepted")
	}
	if _, err := SimulatePackets(cfg, arr, nil, 0.05); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := SimulatePackets(cfg, []Arrival{{At: -1, Bits: 1}}, pol, 0.05); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := SimulatePackets(cfg, []Arrival{{At: 0, Bits: 0}}, pol, 0.05); err == nil {
		t.Error("zero-bit frame accepted")
	}
	bad := cfg
	bad.MinActive = 0
	if _, err := SimulatePackets(bad, arr, pol, 0.05); err == nil {
		t.Error("invalid config accepted")
	}
}
