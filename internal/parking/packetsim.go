package parking

import (
	"fmt"
	"sort"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/sim"
	"netpowerprop/internal/units"
)

// Packet-level validation of the fluid model: the same switch, circuit
// switch, and parking policy, but driven by individual frames through the
// discrete-event kernel. The fluid Simulate is what the studies sweep
// (fast); SimulatePackets is the ground truth it is checked against
// (TestFluidMatchesPackets).

// Arrival is one frame offered to the switch.
type Arrival struct {
	At   units.Seconds
	Bits float64
}

// PacketResult summarizes a packet-level run.
type PacketResult struct {
	Delivered int
	Dropped   int
	// MeanDelay and MaxDelay are queueing delays (service excluded).
	MeanDelay units.Seconds
	MaxDelay  units.Seconds
	Energy    units.Energy
	Baseline  units.Energy
	Savings   float64
	// Reconfigurations counts pipeline state changes.
	Reconfigurations int
	Horizon          units.Seconds
}

// SimulatePackets drives the parking policy at packet granularity. tick is
// the policy's evaluation interval (the fluid model's sample step).
func SimulatePackets(cfg Config, arrivals []Arrival, pol Policy, tick units.Seconds) (PacketResult, error) {
	var res PacketResult
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("parking: no arrivals")
	}
	if tick <= 0 {
		return res, fmt.Errorf("parking: tick %v must be positive", tick)
	}
	if pol == nil {
		return res, fmt.Errorf("parking: nil policy")
	}
	pkts := make([]Arrival, len(arrivals))
	copy(pkts, arrivals)
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].At < pkts[j].At })
	for i, a := range pkts {
		if a.At < 0 || a.Bits <= 0 {
			return res, fmt.Errorf("parking: arrival %d invalid (at %v, bits %v)", i, a.At, a.Bits)
		}
	}
	horizon := pkts[len(pkts)-1].At + tick

	a, err := asic.New(cfg.ASIC)
	if err != nil {
		return res, err
	}
	totalCap := float64(asicCapacity(cfg.ASIC))
	perPipe := totalCap / float64(cfg.ASIC.Pipelines)

	type state struct {
		active      int
		queueBits   float64
		queue       []Arrival
		serving     bool
		servedBits  float64 // bits served since the last policy tick
		totalDelay  float64
		reconfigs   int
		delivered   int
		dropped     int
		maxDelay    float64
		setPipes    func(n int)
		serviceRate func() float64
	}
	st := &state{active: cfg.ASIC.Pipelines}
	st.setPipes = func(n int) {
		for p := 0; p < cfg.ASIC.Pipelines; p++ {
			_ = a.SetPipeline(p, p < n)
		}
	}
	st.serviceRate = func() float64 { return float64(st.active) * perPipe }

	var eng sim.Engine
	meter := sim.NewMeter(0, a.Power()+cfg.CircuitSwitchPower)

	var startService func(e *sim.Engine)
	startService = func(e *sim.Engine) {
		if st.serving || len(st.queue) == 0 || st.active == 0 {
			return
		}
		st.serving = true
		pk := st.queue[0]
		st.queue = st.queue[1:]
		st.queueBits -= pk.Bits
		delay := float64(e.Now() - pk.At)
		if delay < 0 {
			delay = 0
		}
		st.totalDelay += delay
		if delay > st.maxDelay {
			st.maxDelay = delay
		}
		rate := st.serviceRate()
		e.After(units.Seconds(pk.Bits/rate), func(e2 *sim.Engine) {
			st.serving = false
			st.delivered++
			st.servedBits += pk.Bits
			startService(e2)
		})
	}

	// Arrivals.
	for _, pk := range pkts {
		pk := pk
		eng.Schedule(pk.At, func(e *sim.Engine) {
			if st.queueBits+pk.Bits > cfg.BufferBits {
				st.dropped++
				return
			}
			st.queue = append(st.queue, pk)
			st.queueBits += pk.Bits
			startService(e)
		})
	}

	// Policy ticks.
	pendingWakes := 0
	var tickFn func(e *sim.Engine)
	tickFn = func(e *sim.Engine) {
		util := st.servedBits / (totalCap * float64(tick))
		if util > 1 {
			util = 1
		}
		st.servedBits = 0
		want := pol.Decide(e.Now(), util, st.active)
		if want < cfg.MinActive {
			want = cfg.MinActive
		}
		if want > cfg.ASIC.Pipelines {
			want = cfg.ASIC.Pipelines
		}
		switch {
		case want > st.active+pendingWakes:
			n := want - st.active - pendingWakes
			pendingWakes += n
			st.reconfigs += n
			e.After(cfg.WakeLatency, func(e2 *sim.Engine) {
				st.active += n
				pendingWakes -= n
				st.setPipes(st.active)
				meter.Set(e2.Now(), a.Power()+cfg.CircuitSwitchPower, st.serving)
				startService(e2)
			})
		case want < st.active:
			st.reconfigs += st.active - want
			st.active = want
			st.setPipes(st.active)
			meter.Set(e.Now(), a.Power()+cfg.CircuitSwitchPower, st.serving)
		}
		if e.Now()+tick < horizon {
			e.After(tick, tickFn)
		}
	}
	eng.Schedule(tick, tickFn)

	eng.RunUntil(horizon)

	res.Delivered = st.delivered
	res.Dropped = st.dropped
	res.Reconfigurations = st.reconfigs
	res.Horizon = horizon
	if st.delivered > 0 {
		res.MeanDelay = units.Seconds(st.totalDelay / float64(st.delivered))
	}
	res.MaxDelay = units.Seconds(st.maxDelay)
	res.Energy = meter.Energy(horizon)
	base, err := asic.New(cfg.ASIC)
	if err != nil {
		return res, err
	}
	res.Baseline = units.EnergyOver(base.Power(), horizon)
	if res.Baseline > 0 {
		res.Savings = 1 - float64(res.Energy)/float64(res.Baseline)
	}
	return res, nil
}

// ArrivalsFromDemand expands a sampled demand trace into deterministic
// evenly spaced frames, so the packet-level and fluid simulators can run
// the same workload.
func ArrivalsFromDemand(cfg Config, times []units.Seconds, demand []float64, frameBits float64) ([]Arrival, error) {
	if len(times) < 2 || len(demand) != len(times) {
		return nil, fmt.Errorf("parking: need matching times/demand with >= 2 samples")
	}
	if frameBits <= 0 {
		return nil, fmt.Errorf("parking: frame bits %v must be positive", frameBits)
	}
	step := times[1] - times[0]
	if step <= 0 {
		return nil, fmt.Errorf("parking: non-increasing sample times")
	}
	totalCap := float64(asicCapacity(cfg.ASIC))
	var out []Arrival
	for i, u := range demand {
		if u < 0 || u > 1 {
			return nil, fmt.Errorf("parking: demand %v outside [0,1] at sample %d", u, i)
		}
		bits := u * totalCap * float64(step)
		n := int(bits / frameBits)
		if n == 0 {
			continue
		}
		gap := step / units.Seconds(n)
		for k := 0; k < n; k++ {
			out = append(out, Arrival{At: times[i] + units.Seconds(k)*gap, Bits: frameBits})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("parking: demand trace yields no frames")
	}
	return out, nil
}
