package powergate_test

import (
	"fmt"
	"log"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/powergate"
)

// Evaluate walks the §4.1 mode ladder for a half-used L2 switch: the
// governor picks the deepest mode within the deployment's wake budget.
func ExampleEvaluate() {
	ports := make([]int, 64) // 64 of 128 ports carry links
	for i := range ports {
		ports[i] = i
	}
	deployment := powergate.Deployment{
		UsedPorts:   ports,
		NeedsL3:     false, // pure L2 role
		FIBFraction: 0.25,  // route-reflector client
		WakeBudget:  1,     // seconds
	}
	reports, err := powergate.Evaluate(asic.DefaultConfig(), deployment)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("%s: %v (%.1f%% saved)\n", r.Mode.Name, r.Power, r.Savings*100)
	}
	best, err := powergate.Best(reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("governor: %s\n", best.Mode.Name)
	// Output:
	// PM0: 750 W (0.0% saved)
	// PM1: 618.75 W (17.5% saved)
	// PM2: 478.125 W (36.2% saved)
	// PM3: 393.75 W (47.5% saved)
	// governor: PM3
}
