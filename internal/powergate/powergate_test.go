package powergate

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/units"
)

// halfDeployment uses ports 0..63 (pipelines 0 and 1 of 4), pure L2, a
// quarter of the FIB, and a generous wake budget.
func halfDeployment() Deployment {
	ports := make([]int, 64)
	for i := range ports {
		ports[i] = i
	}
	return Deployment{UsedPorts: ports, NeedsL3: false, FIBFraction: 0.25, WakeBudget: 1}
}

func TestDeploymentValidate(t *testing.T) {
	cfg := asic.DefaultConfig()
	if err := halfDeployment().Validate(cfg); err != nil {
		t.Fatalf("valid deployment rejected: %v", err)
	}
	bad := halfDeployment()
	bad.UsedPorts = []int{5, 5}
	if err := bad.Validate(cfg); err == nil {
		t.Error("duplicate port accepted")
	}
	bad = halfDeployment()
	bad.UsedPorts = []int{200}
	if err := bad.Validate(cfg); err == nil {
		t.Error("out-of-range port accepted")
	}
	bad = halfDeployment()
	bad.FIBFraction = 1.5
	if err := bad.Validate(cfg); err == nil {
		t.Error("FIB fraction > 1 accepted")
	}
	bad = halfDeployment()
	bad.WakeBudget = -1
	if err := bad.Validate(cfg); err == nil {
		t.Error("negative wake budget accepted")
	}
}

func TestModesLadder(t *testing.T) {
	modes := Modes()
	if len(modes) != 4 || modes[0].Name != "PM0" || modes[3].Name != "PM3" {
		t.Fatalf("modes = %+v", modes)
	}
	for i := 1; i < len(modes); i++ {
		if modes[i].WakeLatency <= modes[i-1].WakeLatency {
			t.Errorf("mode %s wake latency not deeper than %s", modes[i].Name, modes[i-1].Name)
		}
		if len(modes[i].Knobs) <= len(modes[i-1].Knobs) {
			t.Errorf("mode %s should bundle more knobs than %s", modes[i].Name, modes[i-1].Name)
		}
	}
}

func TestEvaluateHalfUsedSwitch(t *testing.T) {
	cfg := asic.DefaultConfig()
	reports, err := Evaluate(cfg, halfDeployment())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	// PM0 draws full power, zero savings.
	if reports[0].Power != cfg.Max || reports[0].Savings != 0 {
		t.Errorf("PM0 = %+v", reports[0])
	}
	// Deeper modes save strictly more for this deployment.
	for i := 1; i < len(reports); i++ {
		if reports[i].Power >= reports[i-1].Power {
			t.Errorf("%s power %v not below %s power %v",
				reports[i].Mode.Name, reports[i].Power, reports[i-1].Mode.Name, reports[i-1].Power)
		}
	}
	// PM1 gates 64 of 128 ports: saves half the SerDes share = 17.5%.
	if math.Abs(reports[1].Savings-0.175) > 1e-9 {
		t.Errorf("PM1 savings = %v, want 0.175", reports[1].Savings)
	}
	// PM2 additionally gates 6/8 banks (25% FIB -> 2 banks) and L3:
	// + 6/8*0.15 + 0.25*0.30 = 0.1125 + 0.075.
	wantPM2 := 0.175 + 0.1125 + 0.075
	if math.Abs(reports[2].Savings-wantPM2) > 1e-9 {
		t.Errorf("PM2 savings = %v, want %v", reports[2].Savings, wantPM2)
	}
	// PM3 additionally parks pipelines 2 and 3: + 2/4*0.30, but L3 gating
	// now only applies to the two live pipelines (overlap correction).
	wantPM3 := 0.175 + 0.1125 + 0.30*0.5 + 0.25*0.30*0.5
	if math.Abs(reports[3].Savings-wantPM3) > 1e-9 {
		t.Errorf("PM3 savings = %v, want %v", reports[3].Savings, wantPM3)
	}
	// All modes within the 1 s wake budget.
	for _, r := range reports {
		if !r.Allowed {
			t.Errorf("%s should be allowed", r.Mode.Name)
		}
	}
}

func TestEvaluateWakeBudgetLimitsDepth(t *testing.T) {
	d := halfDeployment()
	d.WakeBudget = 1e-4 // allows PM0, PM1 only (PM2 wakes in 1 ms)
	reports, err := Evaluate(asic.DefaultConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, r := range reports {
		allowed[r.Mode.Name] = r.Allowed
	}
	if !allowed["PM0"] || !allowed["PM1"] || allowed["PM2"] || allowed["PM3"] {
		t.Errorf("allowed set = %v", allowed)
	}
	best, err := Best(reports)
	if err != nil {
		t.Fatal(err)
	}
	if best.Mode.Name != "PM1" {
		t.Errorf("best mode = %s, want PM1", best.Mode.Name)
	}
}

func TestBestNoModeAllowed(t *testing.T) {
	reports := []ModeReport{{Mode: Mode{Name: "PM1", WakeLatency: 1}, Allowed: false}}
	if _, err := Best(reports); err == nil {
		t.Error("no allowed mode should fail")
	}
}

func TestApplyFullyUsedSwitchSavesNothing(t *testing.T) {
	cfg := asic.DefaultConfig()
	all := make([]int, cfg.Ports)
	for i := range all {
		all[i] = i
	}
	d := Deployment{UsedPorts: all, NeedsL3: true, FIBFraction: 1, WakeBudget: 1}
	a, _ := asic.New(cfg)
	deepest := Modes()[3]
	if err := Apply(a, d, deepest); err != nil {
		t.Fatal(err)
	}
	if a.Power() != cfg.Max {
		t.Errorf("fully used switch power = %v, want %v (nothing to gate)", a.Power(), cfg.Max)
	}
}

func TestApplyUnknownKnob(t *testing.T) {
	a, _ := asic.New(asic.DefaultConfig())
	err := Apply(a, halfDeployment(), Mode{Name: "X", Knobs: []string{"bogus"}})
	if err == nil {
		t.Error("unknown knob accepted")
	}
}

func TestApplyInvalidDeployment(t *testing.T) {
	a, _ := asic.New(asic.DefaultConfig())
	d := halfDeployment()
	d.FIBFraction = -1
	if err := Apply(a, d, Modes()[1]); err == nil {
		t.Error("invalid deployment accepted")
	}
}

func TestMemoryKnobKeepsOneBank(t *testing.T) {
	cfg := asic.DefaultConfig()
	d := Deployment{UsedPorts: []int{0}, FIBFraction: 0, WakeBudget: 1}
	a, _ := asic.New(cfg)
	if err := Apply(a, d, Modes()[2]); err != nil {
		t.Fatal(err)
	}
	on := 0
	for b := 0; b < cfg.MemoryBanks; b++ {
		if a.MemoryBankOn(b) {
			on++
		}
	}
	if on != 1 {
		t.Errorf("banks on = %d, want 1 (floor)", on)
	}
}

func TestStandardKnobsNamed(t *testing.T) {
	names := map[string]bool{}
	for _, k := range StandardKnobs() {
		if k.Name == "" || k.Description == "" || k.Apply == nil {
			t.Errorf("knob %+v incomplete", k.Name)
		}
		names[k.Name] = true
	}
	for _, want := range []string{KnobGatePorts, KnobGateMemory, KnobGateL3, KnobParkPipelines} {
		if !names[want] {
			t.Errorf("missing knob %s", want)
		}
	}
}

func TestSortByPower(t *testing.T) {
	reports := []ModeReport{
		{Mode: Mode{Name: "b"}, Power: 200},
		{Mode: Mode{Name: "a"}, Power: 100},
	}
	SortByPower(reports)
	if reports[0].Mode.Name != "a" {
		t.Error("sort broken")
	}
}

// Property: for any subset of used ports, every mode's power is within
// [MinPower, Max] and savings grow monotonically down the ladder.
func TestEvaluateInvariants(t *testing.T) {
	f := func(mask uint64, l3 bool, fibRaw uint8) bool {
		cfg := asic.DefaultConfig()
		var used []int
		for p := 0; p < 64; p++ {
			if mask&(1<<uint(p)) != 0 {
				used = append(used, p*2) // spread over pipelines
			}
		}
		d := Deployment{
			UsedPorts:   used,
			NeedsL3:     l3,
			FIBFraction: float64(fibRaw%101) / 100,
			WakeBudget:  units.Seconds(1),
		}
		reports, err := Evaluate(cfg, d)
		if err != nil {
			return false
		}
		a, _ := asic.New(cfg)
		for i, r := range reports {
			if r.Power < a.MinPower()-1e-9 || r.Power > cfg.Max+1e-9 {
				return false
			}
			if i > 0 && r.Power > reports[i-1].Power+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
