// Package powergate implements §4.1's static optimization: exposing power
// knobs. It defines a registry of gating knobs over an ASIC, a Deployment
// profile describing what a given role actually needs (used ports, L3,
// FIB share), and networking "C-states" — predefined low-power modes that
// bundle knobs without exposing hardware details, mirroring CPU C-states.
package powergate

import (
	"fmt"
	"math"
	"sort"

	"netpowerprop/internal/asic"
	"netpowerprop/internal/units"
)

// Deployment captures the requirements a switch's role places on the
// hardware — the information an operator (or an automatic governor) needs
// to decide which components can be gated.
type Deployment struct {
	// UsedPorts lists the ports that carry links in this deployment.
	UsedPorts []int
	// NeedsL3 reports whether the switch routes (false = pure L2).
	NeedsL3 bool
	// FIBFraction is the share of forwarding-table memory the role needs
	// (e.g. a route-reflector client stores a small part; §4.1).
	FIBFraction float64
	// WakeBudget bounds the wake latency the deployment tolerates; deeper
	// modes with longer wake latencies are skipped above it.
	WakeBudget units.Seconds
}

// Validate checks the deployment against an ASIC configuration.
func (d Deployment) Validate(cfg asic.Config) error {
	seen := make(map[int]bool, len(d.UsedPorts))
	for _, p := range d.UsedPorts {
		if p < 0 || p >= cfg.Ports {
			return fmt.Errorf("powergate: used port %d outside [0,%d)", p, cfg.Ports)
		}
		if seen[p] {
			return fmt.Errorf("powergate: duplicate used port %d", p)
		}
		seen[p] = true
	}
	if d.FIBFraction < 0 || d.FIBFraction > 1 {
		return fmt.Errorf("powergate: FIB fraction %v outside [0,1]", d.FIBFraction)
	}
	if d.WakeBudget < 0 {
		return fmt.Errorf("powergate: negative wake budget %v", d.WakeBudget)
	}
	return nil
}

// Knob is one exposable power control: a named state adjustment derived
// from the deployment.
type Knob struct {
	Name        string
	Description string
	Apply       func(a *asic.ASIC, d Deployment) error
}

// Knob names, used to compose modes.
const (
	KnobGatePorts     = "gate-unused-ports"
	KnobGateMemory    = "gate-unused-memory"
	KnobGateL3        = "gate-l3"
	KnobParkPipelines = "park-empty-pipelines"
)

// StandardKnobs returns the §4.1 knob set.
func StandardKnobs() []Knob {
	return []Knob{
		{
			Name:        KnobGatePorts,
			Description: "power off SerDes of ports with no link (fixes ports that are down in software but powered in hardware)",
			Apply: func(a *asic.ASIC, d Deployment) error {
				used := make(map[int]bool, len(d.UsedPorts))
				for _, p := range d.UsedPorts {
					used[p] = true
				}
				for p := 0; p < a.Config().Ports; p++ {
					if err := a.SetPort(p, used[p]); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name:        KnobGateMemory,
			Description: "power off memory banks beyond the deployment's FIB needs (route-reflector clients store a fraction of the table)",
			Apply: func(a *asic.ASIC, d Deployment) error {
				banks := a.Config().MemoryBanks
				need := int(math.Ceil(d.FIBFraction * float64(banks)))
				if need < 1 {
					need = 1 // always keep one bank for local state
				}
				for b := 0; b < banks; b++ {
					if err := a.SetMemoryBank(b, b < need); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name:        KnobGateL3,
			Description: "power off L3 lookup stages when the switch only forwards at L2",
			Apply: func(a *asic.ASIC, d Deployment) error {
				a.SetL3(d.NeedsL3)
				return nil
			},
		},
		{
			Name:        KnobParkPipelines,
			Description: "power off pipelines none of whose ports are in use",
			Apply: func(a *asic.ASIC, d Deployment) error {
				used := make(map[int]bool)
				for _, p := range d.UsedPorts {
					pipe, err := a.PipelineOf(p)
					if err != nil {
						return err
					}
					used[pipe] = true
				}
				for pipe := 0; pipe < a.Config().Pipelines; pipe++ {
					if err := a.SetPipeline(pipe, used[pipe]); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// knobByName indexes the standard knobs.
func knobByName() map[string]Knob {
	m := make(map[string]Knob)
	for _, k := range StandardKnobs() {
		m[k.Name] = k
	}
	return m
}

// Mode is a predefined low-power mode — the networking analogue of a CPU
// C-state (§4.1's proposal): a knob bundle with a wake latency, exposed
// without the operator needing to understand the silicon.
type Mode struct {
	Name        string
	Description string
	Knobs       []string
	// WakeLatency is the time to return to full operation from this mode.
	WakeLatency units.Seconds
}

// Modes returns the predefined mode ladder, shallow to deep.
func Modes() []Mode {
	return []Mode{
		{
			Name:        "PM0",
			Description: "fully on: every component powered regardless of use (today's default)",
		},
		{
			Name:        "PM1",
			Description: "gate unused port SerDes",
			Knobs:       []string{KnobGatePorts},
			WakeLatency: 1e-6,
		},
		{
			Name:        "PM2",
			Description: "PM1 plus unused memory banks and L3 stages",
			Knobs:       []string{KnobGatePorts, KnobGateMemory, KnobGateL3},
			WakeLatency: 1e-3,
		},
		{
			Name:        "PM3",
			Description: "PM2 plus parking pipelines with no used ports",
			Knobs:       []string{KnobGatePorts, KnobGateMemory, KnobGateL3, KnobParkPipelines},
			WakeLatency: 50e-3,
		},
	}
}

// Apply configures an ASIC into a mode for a deployment.
func Apply(a *asic.ASIC, d Deployment, mode Mode) error {
	if err := d.Validate(a.Config()); err != nil {
		return err
	}
	knobs := knobByName()
	for _, name := range mode.Knobs {
		k, ok := knobs[name]
		if !ok {
			return fmt.Errorf("powergate: mode %s references unknown knob %q", mode.Name, name)
		}
		if err := k.Apply(a, d); err != nil {
			return fmt.Errorf("powergate: knob %s: %w", name, err)
		}
	}
	return nil
}

// ModeReport is one row of an Evaluate run.
type ModeReport struct {
	Mode    Mode
	Power   units.Power
	Savings float64 // fraction saved vs. PM0
	// Allowed is false when the mode's wake latency exceeds the
	// deployment's budget.
	Allowed bool
}

// Evaluate computes the power of every mode for a deployment, flagging
// modes deeper than the wake budget allows. Reports are ordered
// shallow-to-deep.
func Evaluate(cfg asic.Config, d Deployment) ([]ModeReport, error) {
	if err := d.Validate(cfg); err != nil {
		return nil, err
	}
	var base units.Power
	var out []ModeReport
	for _, mode := range Modes() {
		a, err := asic.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := Apply(a, d, mode); err != nil {
			return nil, err
		}
		p := a.Power()
		if mode.Name == "PM0" {
			base = p
		}
		r := ModeReport{Mode: mode, Power: p, Allowed: mode.WakeLatency <= d.WakeBudget}
		if base > 0 {
			r.Savings = float64(base-p) / float64(base)
		}
		out = append(out, r)
	}
	return out, nil
}

// Best returns the deepest allowed mode (the governor decision).
func Best(reports []ModeReport) (ModeReport, error) {
	idx := -1
	for i, r := range reports {
		if r.Allowed {
			idx = i
		}
	}
	if idx < 0 {
		return ModeReport{}, fmt.Errorf("powergate: no mode within wake budget")
	}
	// Reports are shallow-to-deep; deeper never draws more power, but be
	// safe and pick the minimum-power allowed mode.
	best := reports[idx]
	for _, r := range reports {
		if r.Allowed && r.Power < best.Power {
			best = r
		}
	}
	return best, nil
}

// SortByPower orders reports by ascending power (useful for display).
func SortByPower(reports []ModeReport) {
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Power < reports[j].Power })
}
