package schedule

import (
	"fmt"
	"sort"

	"netpowerprop/internal/fattree"
)

// MapToTopology realizes a schedule on an explicit fat-tree topology:
// each placement's edge indices are mapped to the topology's edge switches
// (in construction order) and its hosts to concrete host node IDs under
// those edges. The returned map (job ID → host node IDs) is what the
// flow-level simulator consumes, closing the loop between the §4.2
// scheduler and the fabric simulation.
func (s Schedule) MapToTopology(top *fattree.Topology) (map[int][]int, error) {
	if top == nil {
		return nil, fmt.Errorf("schedule: nil topology")
	}
	// Collect edge switches in deterministic construction order.
	var edges []int
	for _, n := range top.Nodes {
		if n.Kind == fattree.KindEdge {
			edges = append(edges, n.ID)
		}
	}
	if len(edges) < s.EdgesUsed {
		return nil, fmt.Errorf("schedule: schedule uses %d edges but topology has %d", s.EdgesUsed, len(edges))
	}
	// Hosts under each edge, in node-ID order.
	hostsUnder := make(map[int][]int, len(edges))
	for _, h := range top.Hosts() {
		e, err := top.EdgeOf(h)
		if err != nil {
			return nil, err
		}
		hostsUnder[e] = append(hostsUnder[e], h)
	}
	for _, hs := range hostsUnder {
		sort.Ints(hs)
	}

	// The schedule's abstract edge indices may exceed the topology's edge
	// count only if the fabric was bigger; require compatibility.
	next := make(map[int]int) // edge node ID -> next free host slot
	out := make(map[int][]int, len(s.Placements))
	for _, pl := range s.Placements {
		// Deterministic iteration over the placement's edges.
		idxs := make([]int, 0, len(pl.HostsPerEdge))
		for e := range pl.HostsPerEdge {
			idxs = append(idxs, e)
		}
		sort.Ints(idxs)
		for _, abstract := range idxs {
			if abstract >= len(edges) {
				return nil, fmt.Errorf("schedule: placement edge %d outside topology's %d edges", abstract, len(edges))
			}
			edgeNode := edges[abstract]
			slots := hostsUnder[edgeNode]
			need := pl.HostsPerEdge[abstract]
			if next[edgeNode]+need > len(slots) {
				return nil, fmt.Errorf("schedule: edge %d over-subscribed (%d+%d > %d hosts)",
					abstract, next[edgeNode], need, len(slots))
			}
			out[pl.Job.ID] = append(out[pl.Job.ID], slots[next[edgeNode]:next[edgeNode]+need]...)
			next[edgeNode] += need
		}
	}
	return out, nil
}
