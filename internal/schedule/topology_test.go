package schedule

import (
	"testing"

	"netpowerprop/internal/fattree"
	"netpowerprop/internal/ocs"
	"netpowerprop/internal/units"
)

func topo(t *testing.T) *fattree.Topology {
	t.Helper()
	top, err := fattree.BuildThreeTier(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestMapToTopologyBasic(t *testing.T) {
	f, err := ocs.ThreeTierFabric(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	top := topo(t)
	jobs := []JobReq{{ID: 1, Hosts: 6}, {ID: 2, Hosts: 3}}
	s, err := Place(f, jobs, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := s.MapToTopology(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != 2 {
		t.Fatalf("jobs mapped = %d, want 2", len(mapping))
	}
	if len(mapping[1]) != 6 || len(mapping[2]) != 3 {
		t.Errorf("host counts = %d/%d, want 6/3", len(mapping[1]), len(mapping[2]))
	}
	// All mapped IDs are distinct hosts of the topology.
	seen := map[int]bool{}
	for _, hosts := range mapping {
		for _, h := range hosts {
			if top.Nodes[h].Kind != fattree.KindHost {
				t.Errorf("node %d is not a host", h)
			}
			if seen[h] {
				t.Errorf("host %d assigned twice", h)
			}
			seen[h] = true
		}
	}
	// Concentrated placement lands on few distinct edges.
	edgeSet := map[int]bool{}
	for _, hosts := range mapping {
		for _, h := range hosts {
			e, _ := top.EdgeOf(h)
			edgeSet[e] = true
		}
	}
	if len(edgeSet) != s.EdgesUsed {
		t.Errorf("topology edges used = %d, schedule says %d", len(edgeSet), s.EdgesUsed)
	}
}

func TestMapToTopologySpread(t *testing.T) {
	f, _ := ocs.ThreeTierFabric(8, 400*units.Gbps)
	top := topo(t)
	s, err := Place(f, []JobReq{{ID: 1, Hosts: 8}}, Spread)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := s.MapToTopology(top)
	if err != nil {
		t.Fatal(err)
	}
	edgeSet := map[int]bool{}
	for _, h := range mapping[1] {
		e, _ := top.EdgeOf(h)
		edgeSet[e] = true
	}
	if len(edgeSet) != 8 {
		t.Errorf("spread job on %d edges, want 8", len(edgeSet))
	}
}

func TestMapToTopologyErrors(t *testing.T) {
	f, _ := ocs.ThreeTierFabric(8, 400*units.Gbps)
	s, err := Place(f, []JobReq{{ID: 1, Hosts: 4}}, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MapToTopology(nil); err == nil {
		t.Error("nil topology accepted")
	}
	// A topology smaller than the fabric cannot host the schedule.
	small, err := fattree.BuildThreeTier(4, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	bigFabric, _ := ocs.ThreeTierFabric(16, 400*units.Gbps)
	bigSched, err := Place(bigFabric, []JobReq{{ID: 1, Hosts: 100}}, Spread)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bigSched.MapToTopology(small); err == nil {
		t.Error("oversized schedule accepted on a small topology")
	}
	// Over-subscribing one edge: fabricate a schedule whose per-edge count
	// exceeds the topology's hosts per edge.
	fake := Schedule{
		Fabric:     f,
		Placements: []Placement{{Job: JobReq{ID: 9, Hosts: 10}, HostsPerEdge: map[int]int{0: 10}}},
		EdgesUsed:  1, PodsUsed: 1,
	}
	if _, err := fake.MapToTopology(topo(t)); err == nil {
		t.Error("over-subscribed edge accepted")
	}
}

func TestMapToTopologyDeterministic(t *testing.T) {
	f, _ := ocs.ThreeTierFabric(8, 400*units.Gbps)
	top := topo(t)
	s, _ := Place(f, []JobReq{{ID: 1, Hosts: 5}, {ID: 2, Hosts: 5}}, Concentrate)
	a, err := s.MapToTopology(top)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MapToTopology(top)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a {
		if len(a[id]) != len(b[id]) {
			t.Fatal("non-deterministic mapping size")
		}
		for i := range a[id] {
			if a[id][i] != b[id][i] {
				t.Fatal("non-deterministic mapping")
			}
		}
	}
}
