package schedule

import (
	"testing"
	"testing/quick"

	"netpowerprop/internal/ocs"
	"netpowerprop/internal/units"
)

func fabric(t *testing.T) ocs.Fabric {
	t.Helper()
	f, err := ocs.ThreeTierFabric(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlaceConcentrateSingleJob(t *testing.T) {
	f := fabric(t)
	// 6 hosts on 4-host edges: 2 edges, 1 pod.
	s, err := Place(f, []JobReq{{ID: 1, Hosts: 6}}, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if s.EdgesUsed != 2 || s.PodsUsed != 1 {
		t.Errorf("edges/pods = %d/%d, want 2/1", s.EdgesUsed, s.PodsUsed)
	}
	// 2 edges + 4 aggs (one pod), no core.
	if got := s.ActiveSwitches(); got != 6 {
		t.Errorf("active = %d, want 6", got)
	}
	if s.OffSwitches() != 80-6 {
		t.Errorf("off = %d, want 74", s.OffSwitches())
	}
	// All hosts placed.
	placed := 0
	for _, n := range s.Placements[0].HostsPerEdge {
		placed += n
	}
	if placed != 6 {
		t.Errorf("placed = %d, want 6", placed)
	}
}

func TestPlaceSpreadUsesManyEdges(t *testing.T) {
	f := fabric(t)
	jobs := []JobReq{{ID: 1, Hosts: 6}}
	spread, err := Place(f, jobs, Spread)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Place(f, jobs, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin puts 6 hosts on 6 distinct edges across 2 pods.
	if spread.EdgesUsed != 6 {
		t.Errorf("spread edges = %d, want 6", spread.EdgesUsed)
	}
	if spread.ActiveSwitches() <= conc.ActiveSwitches() {
		t.Errorf("spread active (%d) should exceed concentrate (%d)",
			spread.ActiveSwitches(), conc.ActiveSwitches())
	}
}

func TestPlaceFirstFitDecreasing(t *testing.T) {
	f := fabric(t)
	// Three jobs totaling 12 hosts = exactly 3 edges; FFD packs the big
	// job first so everything fits one pod.
	jobs := []JobReq{{ID: 1, Hosts: 2}, {ID: 2, Hosts: 8}, {ID: 3, Hosts: 2}}
	s, err := Place(f, jobs, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if s.PodsUsed != 1 {
		t.Errorf("pods used = %d, want 1", s.PodsUsed)
	}
	if s.EdgesUsed != 3 {
		t.Errorf("edges used = %d, want 3", s.EdgesUsed)
	}
	// Placement order preserved is by size (FFD), but all jobs present.
	if len(s.Placements) != 3 {
		t.Fatalf("placements = %d", len(s.Placements))
	}
	seen := map[int]bool{}
	for _, pl := range s.Placements {
		seen[pl.Job.ID] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Error("missing job placements")
	}
}

func TestPlaceCapacityAndValidation(t *testing.T) {
	f := fabric(t)
	if _, err := Place(f, nil, Concentrate); err == nil {
		t.Error("no jobs accepted")
	}
	if _, err := Place(f, []JobReq{{ID: 1, Hosts: 0}}, Concentrate); err == nil {
		t.Error("zero-host job accepted")
	}
	// Fabric holds 128 hosts (32 edges x 4).
	if _, err := Place(f, []JobReq{{ID: 1, Hosts: 129}}, Concentrate); err == nil {
		t.Error("oversized job accepted")
	}
	full, err := Place(f, []JobReq{{ID: 1, Hosts: 128}}, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if full.EdgesUsed != 32 || full.PodsUsed != 8 {
		t.Errorf("full fabric = %d edges, %d pods", full.EdgesUsed, full.PodsUsed)
	}
	if full.OffSwitches() != 0 {
		t.Errorf("full fabric off = %d, want 0", full.OffSwitches())
	}
	if _, err := Place(f, []JobReq{{ID: 1, Hosts: 4}}, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestScheduleEnergyOrdering(t *testing.T) {
	f := fabric(t)
	jobs := []JobReq{{ID: 1, Hosts: 8}, {ID: 2, Hosts: 4}}
	conc, _ := Place(f, jobs, Concentrate)
	spread, _ := Place(f, jobs, Spread)
	base := EnergyParams{Horizon: 3600, DutyCycle: 0.1, Proportionality: 0.1, OffSwitchesSleep: true}
	eConc, err := conc.Energy(base)
	if err != nil {
		t.Fatal(err)
	}
	eSpread, err := spread.Energy(base)
	if err != nil {
		t.Fatal(err)
	}
	if eConc >= eSpread {
		t.Errorf("concentrate energy %v should beat spread %v", eConc, eSpread)
	}
	// Without the ability to power off, concentration saves nothing.
	noSleep := base
	noSleep.OffSwitchesSleep = false
	c2, _ := conc.Energy(noSleep)
	s2, _ := spread.Energy(noSleep)
	diff := float64(s2-c2) / float64(s2)
	if diff > 0.01 {
		t.Errorf("without sleep, policies should be near-equal (diff %v)", diff)
	}
	// Sleeping off-switches always beats not sleeping.
	if eConc >= c2 {
		t.Errorf("sleep energy %v should beat no-sleep %v", eConc, c2)
	}
}

func TestEnergyValidation(t *testing.T) {
	f := fabric(t)
	s, _ := Place(f, []JobReq{{ID: 1, Hosts: 4}}, Concentrate)
	if _, err := s.Energy(EnergyParams{Horizon: 0, DutyCycle: 0.1, Proportionality: 0.1}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := s.Energy(EnergyParams{Horizon: 1, DutyCycle: 2, Proportionality: 0.1}); err == nil {
		t.Error("duty cycle > 1 accepted")
	}
	if _, err := s.Energy(EnergyParams{Horizon: 1, DutyCycle: 0.1, Proportionality: 2}); err == nil {
		t.Error("invalid proportionality accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if Concentrate.String() != "concentrate" || Spread.String() != "spread" {
		t.Error("policy names broken")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy formatting broken")
	}
}

// Property: placements conserve hosts, never exceed edge capacity, and
// Concentrate never uses more edges than Spread.
func TestPlaceInvariants(t *testing.T) {
	f, err := ocs.ThreeTierFabric(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	check := func(sizes []uint8) bool {
		var jobs []JobReq
		total := 0
		for i, raw := range sizes {
			h := 1 + int(raw)%10
			if total+h > 128 {
				break
			}
			jobs = append(jobs, JobReq{ID: i, Hosts: h})
			total += h
		}
		if len(jobs) == 0 {
			return true
		}
		conc, err1 := Place(f, jobs, Concentrate)
		spread, err2 := Place(f, jobs, Spread)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, s := range []Schedule{conc, spread} {
			perEdge := map[int]int{}
			for _, pl := range s.Placements {
				placed := 0
				for e, n := range pl.HostsPerEdge {
					placed += n
					perEdge[e] += n
				}
				if placed != pl.Job.Hosts {
					return false
				}
			}
			for _, n := range perEdge {
				if n > f.HostsPerEdge() {
					return false
				}
			}
		}
		return conc.EdgesUsed <= spread.EdgesUsed && conc.PodsUsed <= spread.PodsUsed
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
