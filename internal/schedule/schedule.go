// Package schedule implements §4.2's job-scheduler angle: concentrating
// workloads on as few network devices as possible, the way compute
// clusters consolidate onto few servers. A placement policy assigns each
// job's hosts to edge switches; concentration lets whole pods — and the
// core layer, when a single pod suffices — power off, while spreading
// (today's load-balancing default) keeps everything on.
package schedule

import (
	"fmt"
	"sort"

	"netpowerprop/internal/device"
	"netpowerprop/internal/ocs"
	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// JobReq is a job's resource request.
type JobReq struct {
	ID    int
	Hosts int
}

// Policy selects the placement strategy.
type Policy int

const (
	// Concentrate packs jobs onto the fewest edges and pods (first-fit
	// decreasing) so unused fabric can power off.
	Concentrate Policy = iota
	// Spread round-robins hosts across all edges — maximizing failure
	// independence and entropy, and keeping every switch busy (the
	// energy-oblivious default).
	Spread
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Concentrate:
		return "concentrate"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Placement records where one job landed.
type Placement struct {
	Job JobReq
	// HostsPerEdge maps edge index to the number of the job's hosts there.
	HostsPerEdge map[int]int
}

// Schedule is a complete placement of jobs onto a fabric.
type Schedule struct {
	Fabric     ocs.Fabric
	Policy     Policy
	Placements []Placement
	// EdgesUsed and PodsUsed count fabric elements with at least one host.
	EdgesUsed, PodsUsed int
}

// ActiveSwitches returns how many switches must stay powered: the used
// edges, the full aggregation layer of every used pod (intra-pod
// any-to-any), and the full core layer as soon as a second pod is used.
func (s Schedule) ActiveSwitches() int {
	n := s.EdgesUsed + s.PodsUsed*s.Fabric.EdgesPerPod()
	if s.PodsUsed > 1 {
		n += s.Fabric.CoreTotal
	}
	return n
}

// OffSwitches returns how many switches the schedule lets power off.
func (s Schedule) OffSwitches() int {
	total := s.Fabric.EdgeTotal + s.Fabric.AggTotal + s.Fabric.CoreTotal
	return total - s.ActiveSwitches()
}

// Place assigns jobs to edges under a policy. Jobs are processed largest
// first (first-fit decreasing) for Concentrate, and in input order for
// Spread.
func Place(f ocs.Fabric, jobs []JobReq, pol Policy) (Schedule, error) {
	if len(jobs) == 0 {
		return Schedule{}, fmt.Errorf("schedule: no jobs")
	}
	perEdge := f.HostsPerEdge()
	total := 0
	for _, j := range jobs {
		if j.Hosts < 1 {
			return Schedule{}, fmt.Errorf("schedule: job %d requests %d hosts", j.ID, j.Hosts)
		}
		total += j.Hosts
	}
	if total > perEdge*f.EdgeTotal {
		return Schedule{}, fmt.Errorf("schedule: %d hosts exceed fabric capacity %d", total, perEdge*f.EdgeTotal)
	}

	free := make([]int, f.EdgeTotal)
	for i := range free {
		free[i] = perEdge
	}
	s := Schedule{Fabric: f, Policy: pol}

	ordered := make([]JobReq, len(jobs))
	copy(ordered, jobs)
	if pol == Concentrate {
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Hosts > ordered[j].Hosts })
	}

	next := 0 // round-robin cursor for Spread
	for _, job := range ordered {
		pl := Placement{Job: job, HostsPerEdge: make(map[int]int)}
		remaining := job.Hosts
		switch pol {
		case Concentrate:
			// First fit: fill partially used edges of used pods first,
			// then fresh edges in pod order.
			for e := 0; e < f.EdgeTotal && remaining > 0; e++ {
				if free[e] == 0 {
					continue
				}
				take := free[e]
				if take > remaining {
					take = remaining
				}
				free[e] -= take
				remaining -= take
				pl.HostsPerEdge[e] += take
			}
		case Spread:
			// One host at a time, round-robin over edges with space.
			for remaining > 0 {
				tried := 0
				for free[next%f.EdgeTotal] == 0 {
					next++
					tried++
					if tried > f.EdgeTotal {
						return Schedule{}, fmt.Errorf("schedule: internal: no free edge despite capacity check")
					}
				}
				e := next % f.EdgeTotal
				free[e]--
				remaining--
				pl.HostsPerEdge[e]++
				next++
			}
		default:
			return Schedule{}, fmt.Errorf("schedule: unknown policy %v", pol)
		}
		s.Placements = append(s.Placements, pl)
	}

	usedEdge := map[int]bool{}
	usedPod := map[int]bool{}
	for _, pl := range s.Placements {
		for e := range pl.HostsPerEdge {
			usedEdge[e] = true
			usedPod[e/f.EdgesPerPod()] = true
		}
	}
	s.EdgesUsed = len(usedEdge)
	s.PodsUsed = len(usedPod)
	return s, nil
}

// EnergyParams configures the schedule energy comparison.
type EnergyParams struct {
	Horizon units.Seconds
	// DutyCycle is the fraction of time active switches are busy.
	DutyCycle float64
	// Proportionality of the packet switches.
	Proportionality float64
	// OffSwitchesSleep: when false, "off" switches still draw idle power
	// (no mechanism to power them down — today's reality); when true they
	// draw nothing (the §4.2 vision).
	OffSwitchesSleep bool
}

// Energy returns the fabric's energy under the schedule.
func (s Schedule) Energy(p EnergyParams) (units.Energy, error) {
	if p.Horizon <= 0 {
		return 0, fmt.Errorf("schedule: horizon %v must be positive", p.Horizon)
	}
	if p.DutyCycle < 0 || p.DutyCycle > 1 {
		return 0, fmt.Errorf("schedule: duty cycle %v outside [0,1]", p.DutyCycle)
	}
	m, err := power.NewModel(device.SwitchMaxPower, p.Proportionality)
	if err != nil {
		return 0, err
	}
	active := float64(s.ActiveSwitches())
	off := float64(s.OffSwitches())
	perActive := float64(m.Max)*p.DutyCycle + float64(m.Idle())*(1-p.DutyCycle)
	perOff := float64(m.Idle())
	if p.OffSwitchesSleep {
		perOff = 0
	}
	return units.Energy((active*perActive + off*perOff) * float64(p.Horizon)), nil
}
