package power

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func TestModelIdle(t *testing.T) {
	tests := []struct {
		max  units.Power
		prop float64
		idle float64 // watts
	}{
		{500 * units.Watt, 0.85, 75},     // paper's GPU unit (§2.3.1)
		{750 * units.Watt, 0.10, 675},    // paper's switch at baseline prop
		{100 * units.Watt, 0, 100},       // fully non-proportional
		{100 * units.Watt, 1, 0},         // perfectly proportional
		{25.4 * units.Watt, 0.10, 22.86}, // 400G NIC
	}
	for _, tt := range tests {
		m, err := NewModel(tt.max, tt.prop)
		if err != nil {
			t.Fatalf("NewModel(%v, %v): %v", tt.max, tt.prop, err)
		}
		if got := m.Idle().Watts(); math.Abs(got-tt.idle) > 1e-9 {
			t.Errorf("Idle(%v, prop=%v) = %v W, want %v W", tt.max, tt.prop, got, tt.idle)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(-1*units.Watt, 0.5); err == nil {
		t.Error("negative max power should fail")
	}
	if _, err := NewModel(100*units.Watt, -0.1); err == nil {
		t.Error("negative proportionality should fail")
	}
	if _, err := NewModel(100*units.Watt, 1.1); err == nil {
		t.Error("proportionality > 1 should fail")
	}
}

func TestAtTwoState(t *testing.T) {
	m, _ := NewModel(100*units.Watt, 0.4)
	if got := m.At(0); got != 60*units.Watt {
		t.Errorf("At(0) = %v, want 60 W", got)
	}
	for _, u := range []float64{0.01, 0.5, 1, 2} {
		if got := m.At(u); got != 100*units.Watt {
			t.Errorf("At(%v) = %v, want 100 W (two-state: busy = max)", u, got)
		}
	}
}

func TestAtLinear(t *testing.T) {
	m, _ := NewModel(100*units.Watt, 0.4) // idle 60
	tests := []struct{ u, want float64 }{
		{0, 60}, {0.5, 80}, {1, 100}, {-1, 60}, {2, 100},
	}
	for _, tt := range tests {
		if got := m.AtLinear(tt.u).Watts(); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("AtLinear(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func TestProportionalityEq1(t *testing.T) {
	// Eq. 1 on the paper's GPU numbers: (500-75)/500 = 0.85.
	p, err := Proportionality(500*units.Watt, 75*units.Watt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.85) > 1e-12 {
		t.Errorf("Proportionality(500, 75) = %v, want 0.85", p)
	}
	if _, err := Proportionality(0, 0); err == nil {
		t.Error("zero max should fail")
	}
	if _, err := Proportionality(100*units.Watt, 200*units.Watt); err == nil {
		t.Error("idle above max should fail")
	}
	if _, err := Proportionality(100*units.Watt, -1*units.Watt); err == nil {
		t.Error("negative idle should fail")
	}
}

// Property: Eq. 1 round-trips through Model: building a model with
// proportionality p and recomputing from (max, idle) recovers p.
func TestProportionalityRoundTrip(t *testing.T) {
	f := func(rawMax, rawP float64) bool {
		max := units.Power(1 + math.Abs(math.Mod(rawMax, 1e6)))
		p := math.Abs(math.Mod(rawP, 1.0))
		m, err := NewModel(max, p)
		if err != nil {
			return false
		}
		back, err := Proportionality(m.Max, m.Idle())
		if err != nil {
			return false
		}
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: power draw is always within [idle, max].
func TestPowerBounded(t *testing.T) {
	f := func(rawMax, rawP, rawU float64) bool {
		max := units.Power(math.Abs(math.Mod(rawMax, 1e6)))
		p := math.Abs(math.Mod(rawP, 1.0))
		u := math.Mod(rawU, 2.0)
		m, err := NewModel(max, p)
		if err != nil {
			return false
		}
		for _, got := range []units.Power{m.At(u), m.AtLinear(u)} {
			if got < m.Idle()-1e-9 || got > m.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func iterationPhases() []Phase {
	// The paper's baseline iteration seen from the network: idle during the
	// 90% computation phase, busy during the 10% communication phase.
	return []Phase{{Duration: 0.9, Busy: false}, {Duration: 0.1, Busy: true}}
}

func TestEnergyAndAverage(t *testing.T) {
	m, _ := NewModel(1000*units.Watt, 0.10)
	ph := iterationPhases()
	// idle = 900 W for 0.9 s + 1000 W for 0.1 s = 810 + 100 = 910 J.
	if got := m.Energy(ph).Joules(); math.Abs(got-910) > 1e-9 {
		t.Errorf("Energy = %v J, want 910 J", got)
	}
	if got := m.AveragePower(ph).Watts(); math.Abs(got-910) > 1e-9 {
		t.Errorf("AveragePower = %v W, want 910 W", got)
	}
}

// TestNetworkEfficiency11Percent reproduces §3.1's headline: a network with
// 10% proportionality that is busy 10% of the time has ~11% efficiency.
func TestNetworkEfficiency11Percent(t *testing.T) {
	m, _ := NewModel(1*units.Megawatt, 0.10)
	eff := m.Efficiency(iterationPhases())
	// useful = 0.1*1.0 = 0.1; total = 0.9*0.9 + 0.1 = 0.91; 0.1/0.91 = 10.99%.
	if math.Abs(eff-0.10989) > 1e-4 {
		t.Errorf("network efficiency = %.4f, want ~0.110 (paper: 11%%)", eff)
	}
}

func TestEfficiencyEdgeCases(t *testing.T) {
	m, _ := NewModel(100*units.Watt, 0.5)
	if got := m.Efficiency(nil); got != 0 {
		t.Errorf("Efficiency(nil) = %v, want 0", got)
	}
	zero := Model{}
	if got := zero.Efficiency(iterationPhases()); got != 0 {
		t.Errorf("zero-power model efficiency = %v, want 0", got)
	}
	alwaysBusy := []Phase{{Duration: 1, Busy: true}}
	if got := m.Efficiency(alwaysBusy); math.Abs(got-1) > 1e-12 {
		t.Errorf("always-busy efficiency = %v, want 1", got)
	}
}

// Property: efficiency is in [0,1] and increases with proportionality for a
// fixed schedule that has at least some idle time.
func TestEfficiencyMonotoneInProportionality(t *testing.T) {
	ph := iterationPhases()
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1.0))
		pb := math.Abs(math.Mod(b, 1.0))
		if pa > pb {
			pa, pb = pb, pa
		}
		ma, _ := NewModel(100*units.Watt, pa)
		mb, _ := NewModel(100*units.Watt, pb)
		ea := ma.Efficiency(ph)
		eb := mb.Efficiency(ph)
		return ea >= 0 && eb <= 1 && ea <= eb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateTableValidation(t *testing.T) {
	valid := []State{
		{Name: "active", Power: 100 * units.Watt},
		{Name: "idle", Power: 60 * units.Watt, WakeLatency: 1e-6},
		{Name: "sleep", Power: 10 * units.Watt, WakeLatency: 1e-3},
	}
	if _, err := NewStateTable(valid); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if _, err := NewStateTable(nil); err == nil {
		t.Error("empty table should fail")
	}
	badWake := []State{{Name: "active", Power: 100 * units.Watt, WakeLatency: 1}}
	if _, err := NewStateTable(badWake); err == nil {
		t.Error("operating state with non-zero wake latency should fail")
	}
	badPower := []State{
		{Name: "active", Power: 100 * units.Watt},
		{Name: "idle", Power: 100 * units.Watt, WakeLatency: 1e-6},
	}
	if _, err := NewStateTable(badPower); err == nil {
		t.Error("non-decreasing power should fail")
	}
	badLatency := []State{
		{Name: "active", Power: 100 * units.Watt},
		{Name: "idle", Power: 50 * units.Watt, WakeLatency: 1e-3},
		{Name: "sleep", Power: 10 * units.Watt, WakeLatency: 1e-6},
	}
	if _, err := NewStateTable(badLatency); err == nil {
		t.Error("decreasing wake latency should fail")
	}
}

func TestStateTableDeepest(t *testing.T) {
	tbl, err := NewStateTable([]State{
		{Name: "active", Power: 100 * units.Watt},
		{Name: "shallow", Power: 60 * units.Watt, WakeLatency: 1e-6},
		{Name: "deep", Power: 5 * units.Watt, WakeLatency: 1e-2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		budget units.Seconds
		want   int
	}{
		{0, 0}, {1e-7, 0}, {1e-6, 1}, {1e-3, 1}, {1e-2, 2}, {1, 2},
	}
	for _, tt := range tests {
		if got := tbl.Deepest(tt.budget); got != tt.want {
			t.Errorf("Deepest(%v) = %d, want %d", tt.budget, got, tt.want)
		}
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
	if tbl.State(2).Name != "deep" {
		t.Errorf("State(2) = %+v", tbl.State(2))
	}
}

func TestBreakEven(t *testing.T) {
	tbl, err := NewStateTable([]State{
		{Name: "active", Power: 100 * units.Watt},
		{Name: "sleep", Power: 20 * units.Watt, WakeLatency: 0.004},
	})
	if err != nil {
		t.Fatal(err)
	}
	// break-even = 100 * 0.004 / (100-20) = 0.005 s.
	if got := tbl.BreakEven(1); math.Abs(float64(got)-0.005) > 1e-12 {
		t.Errorf("BreakEven = %v, want 0.005", got)
	}
	if got := tbl.BreakEven(0); got != 0 {
		t.Errorf("BreakEven(0) = %v, want 0", got)
	}
	if got := tbl.BreakEven(5); got != 0 {
		t.Errorf("BreakEven(out of range) = %v, want 0", got)
	}
}

func TestTwoState(t *testing.T) {
	m, _ := NewModel(100*units.Watt, 0.4)
	tbl, err := m.TwoState(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.State(1).Power != 60*units.Watt {
		t.Errorf("TwoState produced %+v", tbl)
	}
	// A 0%-proportional model collapses to a single state.
	flat, _ := NewModel(100*units.Watt, 0)
	tbl, err = flat.TwoState(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("flat model TwoState Len = %d, want 1", tbl.Len())
	}
}
