// Package power implements the paper's power model (§2.3): hardware is
// either idle or running at full speed, mapping to two power states, and
// power proportionality relates them:
//
//	proportionality = (max power − idle power) / max power   (Eq. 1)
//
// The package also provides energy accounting over phase schedules, the
// energy-efficiency metric used in §3.1, and a multi-state extension
// (networking "C-states", §4.1) used by the mechanism simulators.
package power

import (
	"fmt"
	"math"

	"netpowerprop/internal/units"
)

// Model is a two-state power model with a max draw and a proportionality.
// The zero value is a 0 W device and is safe to use.
type Model struct {
	Max units.Power
	// Proportionality in [0,1]: 0 means idle power equals max power
	// (completely non-proportional); 1 means the device draws nothing when
	// idle (perfectly proportional).
	Proportionality float64
}

// NewModel builds a Model, validating the proportionality range.
func NewModel(max units.Power, proportionality float64) (Model, error) {
	if max < 0 {
		return Model{}, fmt.Errorf("power model: negative max power %v", max)
	}
	if proportionality < 0 || proportionality > 1 {
		return Model{}, fmt.Errorf("power model: proportionality %v outside [0,1]", proportionality)
	}
	return Model{Max: max, Proportionality: proportionality}, nil
}

// Idle returns the idle-state power: max·(1 − proportionality).
func (m Model) Idle() units.Power {
	return units.Power(float64(m.Max) * (1 - m.Proportionality))
}

// At returns the power draw at a utilization in [0,1] under the paper's
// two-state assumption: any non-zero utilization draws max power.
// Utilizations outside [0,1] are clamped.
func (m Model) At(utilization float64) units.Power {
	if utilization > 0 {
		return m.Max
	}
	return m.Idle()
}

// AtLinear returns the power draw assuming a linear ramp between idle and
// max: idle + u·(max−idle). The analytical model never uses this, but the
// mechanism simulators (§4.3 rate adaptation) do.
func (m Model) AtLinear(utilization float64) units.Power {
	u := math.Min(1, math.Max(0, utilization))
	idle := float64(m.Idle())
	return units.Power(idle + u*(float64(m.Max)-idle))
}

// Proportionality computes Eq. 1 from explicit max and idle powers.
// It returns an error when idle exceeds max or max is non-positive.
func Proportionality(max, idle units.Power) (float64, error) {
	if max <= 0 {
		return 0, fmt.Errorf("proportionality: non-positive max power %v", max)
	}
	if idle < 0 || idle > max {
		return 0, fmt.Errorf("proportionality: idle power %v outside [0, %v]", idle, max)
	}
	return float64(max-idle) / float64(max), nil
}

// Phase is a time span with a single busy/idle state for a device class.
type Phase struct {
	Duration units.Seconds
	Busy     bool
}

// Energy integrates the model over a phase schedule.
func (m Model) Energy(phases []Phase) units.Energy {
	var e units.Energy
	for _, ph := range phases {
		p := m.Idle()
		if ph.Busy {
			p = m.Max
		}
		e += units.EnergyOver(p, ph.Duration)
	}
	return e
}

// Efficiency returns the energy-efficiency metric of §3.1: the fraction of
// consumed energy that was spent while the device was busy (doing useful
// work). A device that idles most of the time at near-max power scores low.
// It returns 0 for an empty or zero-energy schedule.
func (m Model) Efficiency(phases []Phase) float64 {
	var useful, total units.Energy
	for _, ph := range phases {
		p := m.Idle()
		if ph.Busy {
			p = m.Max
			useful += units.EnergyOver(p, ph.Duration)
		}
		total += units.EnergyOver(p, ph.Duration)
	}
	if total == 0 {
		return 0
	}
	return float64(useful) / float64(total)
}

// AveragePower returns the schedule's mean power draw.
func (m Model) AveragePower(phases []Phase) units.Power {
	var d units.Seconds
	for _, ph := range phases {
		d += ph.Duration
	}
	return units.AveragePower(m.Energy(phases), d)
}

// State is one entry of a multi-state power table (§4.1's networking
// C-states): a named mode with a power draw and a wake latency back to
// the operating state.
type State struct {
	Name        string
	Power       units.Power
	WakeLatency units.Seconds
}

// StateTable is an ordered list of power states, from the operating state
// (index 0, highest power, zero wake latency) to the deepest sleep state.
// It generalizes the two-state model for the §4 mechanism simulators.
type StateTable struct {
	states []State
}

// NewStateTable validates and builds a state table. States must be ordered
// by strictly decreasing power and non-decreasing wake latency, and the
// first state must have zero wake latency.
func NewStateTable(states []State) (*StateTable, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("state table: no states")
	}
	if states[0].WakeLatency != 0 {
		return nil, fmt.Errorf("state table: operating state %q must have zero wake latency", states[0].Name)
	}
	for i := 1; i < len(states); i++ {
		if states[i].Power >= states[i-1].Power {
			return nil, fmt.Errorf("state table: %q power %v not below %q power %v",
				states[i].Name, states[i].Power, states[i-1].Name, states[i-1].Power)
		}
		if states[i].WakeLatency < states[i-1].WakeLatency {
			return nil, fmt.Errorf("state table: %q wake latency %v below %q wake latency %v",
				states[i].Name, states[i].WakeLatency, states[i-1].Name, states[i-1].WakeLatency)
		}
	}
	cp := make([]State, len(states))
	copy(cp, states)
	return &StateTable{states: cp}, nil
}

// Len returns the number of states.
func (t *StateTable) Len() int { return len(t.states) }

// State returns the i-th state.
func (t *StateTable) State(i int) State { return t.states[i] }

// Deepest returns the index of the deepest state whose wake latency does not
// exceed the given budget — the standard C-state governor decision.
func (t *StateTable) Deepest(latencyBudget units.Seconds) int {
	best := 0
	for i, s := range t.states {
		if s.WakeLatency <= latencyBudget {
			best = i
		}
	}
	return best
}

// BreakEven returns the minimum idle duration for which entering state i
// saves energy versus staying in the operating state, assuming the wake
// transition burns operating power for the full wake latency. It returns
// +Inf when the state saves nothing.
func (t *StateTable) BreakEven(i int) units.Seconds {
	if i <= 0 || i >= len(t.states) {
		return 0
	}
	op := t.states[0]
	s := t.states[i]
	saved := float64(op.Power - s.Power)
	if saved <= 0 {
		return units.Seconds(math.Inf(1))
	}
	// Energy penalty of the wake transition relative to having stayed awake:
	// the device draws op.Power during wake but performs no work, so the
	// sleep must last long enough that (op−s)·(d−wake) ≥ op·wake… the
	// conventional simplification charges the wake at op.Power:
	// savings = (op−s)·d − op·wake ≥ 0.
	return units.Seconds(float64(op.Power) * float64(s.WakeLatency) / saved)
}

// TwoState converts a Model into an equivalent two-entry StateTable with
// the given wake latency for the idle state.
func (m Model) TwoState(wake units.Seconds) (*StateTable, error) {
	if m.Idle() >= m.Max {
		// Completely non-proportional hardware has no useful idle state;
		// represent it as a single operating state.
		return NewStateTable([]State{{Name: "active", Power: m.Max}})
	}
	return NewStateTable([]State{
		{Name: "active", Power: m.Max},
		{Name: "idle", Power: m.Idle(), WakeLatency: wake},
	})
}
