package power_test

import (
	"fmt"
	"log"

	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// Eq. 1 on the paper's numbers: a 500 W GPU unit idling at 75 W is 85%
// power proportional; a 750 W switch idling at 675 W is 10%.
func ExampleProportionality() {
	gpu, err := power.Proportionality(500*units.Watt, 75*units.Watt)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := power.Proportionality(750*units.Watt, 675*units.Watt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU unit: %.0f%%\n", gpu*100)
	fmt.Printf("switch:   %.0f%%\n", sw*100)
	// Output:
	// GPU unit: 85%
	// switch:   10%
}

// The §3.1 efficiency metric: a 10%-proportional device that is busy 10%
// of the time wastes 89% of its energy idling.
func ExampleModel_Efficiency() {
	m, err := power.NewModel(750*units.Watt, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	iteration := []power.Phase{
		{Duration: 0.9, Busy: false},
		{Duration: 0.1, Busy: true},
	}
	fmt.Printf("efficiency: %.1f%%\n", m.Efficiency(iteration)*100)
	// Output:
	// efficiency: 11.0%
}
