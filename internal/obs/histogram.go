package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free fixed-bucket histogram. Observations are two
// atomic adds (bucket + sum), so it is safe on hot paths and under
// arbitrary concurrency; rendering takes a point-in-time snapshot of the
// counters. Bucket bounds are upper bounds in ascending order; an
// implicit +Inf bucket catches the tail, matching Prometheus semantics.
type Histogram struct {
	bounds []float64 // ascending upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	inf    atomic.Uint64
	// sumNanos accumulates the observed total as integer nanoseconds —
	// an atomic add instead of a CAS loop, at the cost of sub-nanosecond
	// truncation, which is far below the bucket resolution.
	sumNanos atomic.Int64
}

// DefLatencyBuckets spans 5 µs to 10 s: the engine's cheapest analytic
// ops land in the microsecond buckets, full fault sweeps in the seconds.
var DefLatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). Panics on empty or unsorted bounds — bucket layout is a
// programming decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	// Binary search beats linear scan only past ~30 buckets; bounds are
	// small, but sort.SearchFloat64s is branch-predictable and clear.
	i := sort.SearchFloat64s(h.bounds, seconds)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sumNanos.Add(int64(seconds * 1e9))
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sumNanos.Add(int64(d))
}

// Count is the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum is the total of all observations, in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNanos.Load()) / 1e9 }

// snapshot returns cumulative bucket counts (one per bound, plus +Inf
// last), the total count, and the sum — the exposition-format shape.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts)+1)
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	run += h.inf.Load()
	cum[len(h.counts)] = run
	return cum, run, h.Sum()
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations by
// linear interpolation inside the bucket the quantile lands in — the
// same estimate Prometheus's histogram_quantile computes. With no
// observations it returns 0; a quantile landing in the +Inf bucket
// returns the highest finite bound (the histogram cannot resolve the
// tail beyond its last bucket). The estimate reads a point-in-time
// snapshot, so it is safe to call concurrently with Observe.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	cum, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	for i, bound := range h.bounds {
		c := float64(cum[i])
		if c < rank {
			continue
		}
		lower, lowerCum := 0.0, 0.0
		if i > 0 {
			lower, lowerCum = h.bounds[i-1], float64(cum[i-1])
		}
		inBucket := c - lowerCum
		if inBucket <= 0 {
			return bound
		}
		return lower + (bound-lower)*(rank-lowerCum)/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCount returns the non-cumulative count of the bucket with the
// given index; index len(Bounds()) is the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if i == len(h.counts) {
		return h.inf.Load()
	}
	return h.counts[i].Load()
}

// formatBound renders a bucket bound the way Prometheus spells le=
// labels: shortest round-trip float, with +Inf for the tail.
func formatBound(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return formatFloat(v)
}
