package obs

import (
	"context"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated trace id %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Errorf("empty context trace = %q, want \"\"", got)
	}
	ctx = WithTraceID(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Errorf("trace = %q, want abc123", got)
	}
	same, id := EnsureTraceID(ctx)
	if id != "abc123" || TraceID(same) != "abc123" {
		t.Errorf("EnsureTraceID replaced an existing id: %q", id)
	}
	fresh, id2 := EnsureTraceID(context.Background())
	if id2 == "" || TraceID(fresh) != id2 {
		t.Errorf("EnsureTraceID minted %q but context carries %q", id2, TraceID(fresh))
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"abc", "AB-12_z", "0123456789abcdef"} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", `quo"te`, string(long)} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}
