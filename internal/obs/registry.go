package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them as Prometheus text
// exposition (version 0.0.4): one # HELP and # TYPE line per family,
// then one sample line per child, histograms expanded into cumulative
// _bucket/_sum/_count series. Registration is explicit and panics on
// misuse (bad names, type conflicts, duplicate children) — metric layout
// is program structure, not runtime input.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: help, type, and its labeled children.
type family struct {
	name, help, typ string
	buckets         []float64 // histogram families only

	mu       sync.Mutex
	order    []string // child render order (insertion)
	children map[string]*child
}

// child is one (family, label-set) series.
type child struct {
	labels  string // rendered `{k="v",...}` or ""
	counter *Counter
	fn      func() float64 // counterfunc / gaugefunc
	hist    *Histogram
}

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value is the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter registers (or extends) a counter family and returns the child
// for the given label pairs ("key", "value", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.addChild(name, help, "counter", nil, labels, &child{counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the migration path for pre-existing atomic counters that other
// code still snapshots directly.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.addChild(name, help, "counter", nil, labels, &child{fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at render time
// (queue depths, cache population, in-flight counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.addChild(name, help, "gauge", nil, labels, &child{fn: fn})
}

// Histogram registers (or extends) a histogram family and returns the
// child for the given label pairs. Every child of one family shares the
// same bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	h := NewHistogram(bounds)
	r.addChild(name, help, "histogram", bounds, labels, &child{hist: h})
	return h
}

// addChild validates and registers one series under its family.
func (r *Registry) addChild(name, help, typ string, buckets []float64, labels []string, ch *child) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ch.labels = renderLabels(labels)
	r.mu.Lock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			children: make(map[string]*child)}
		r.fams[name] = f
	}
	r.mu.Unlock()
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.children[ch.labels]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, ch.labels))
	}
	f.children[ch.labels] = ch
	f.order = append(f.order, ch.labels)
}

// Render writes the whole registry in exposition format, families sorted
// by name, children in registration order.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// render emits one family: HELP, TYPE, then every child's samples.
func (f *family) render(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')
	f.mu.Lock()
	children := make([]*child, 0, len(f.order))
	for _, key := range f.order {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	for _, ch := range children {
		switch {
		case ch.counter != nil:
			sample(b, f.name, "", ch.labels, strconv.FormatUint(ch.counter.Value(), 10))
		case ch.fn != nil:
			sample(b, f.name, "", ch.labels, formatFloat(ch.fn()))
		case ch.hist != nil:
			cum, count, sum := ch.hist.snapshot()
			bounds := ch.hist.bounds
			for i, c := range cum {
				bound := "+Inf"
				if i < len(bounds) {
					bound = formatBound(bounds[i])
				}
				le := mergeLabels(ch.labels, `le="`+bound+`"`)
				sample(b, f.name, "_bucket", le, strconv.FormatUint(c, 10))
			}
			sample(b, f.name, "_sum", ch.labels, formatFloat(sum))
			sample(b, f.name, "_count", ch.labels, strconv.FormatUint(count, 10))
		}
	}
}

// sample writes one exposition sample line.
func sample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// mergeLabels splices an extra rendered pair into an existing label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// renderLabels validates and renders alternating key/value pairs into
// the canonical `{k="v",...}` form ("" for no labels).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if !validLabelName(kv[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a value the way Prometheus text format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslashes, quotes, and newlines.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName: [a-zA-Z_:][a-zA-Z0-9_:]*
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName: [a-zA-Z_][a-zA-Z0-9_]* and not a reserved __ name.
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
