package obs

import (
	"strings"
	"testing"
)

func TestRegistryRenderIsValidExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	r.Counter("test_requests_errors_total", "Failed requests.", "route", "/v1/whatif").Inc()
	r.GaugeFunc("test_inflight", "Computations running now.", func() float64 { return 2 })
	r.CounterFunc("test_compute_seconds_total", "Cumulative compute time.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "op", "sweep")
	h.Observe(0.05)
	h.Observe(3)
	// A label value with every character class that needs escaping.
	r.Counter("test_weird_total", "Weird \\ label\nvalues.", "what", "a \"quoted\\thing\"\nline").Inc()

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("rendered output fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n# TYPE test_requests_total counter\ntest_requests_total 3\n",
		`test_requests_errors_total{route="/v1/whatif"} 1`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{op="sweep",le="0.01"} 0`,
		`test_latency_seconds_bucket{op="sweep",le="0.1"} 1`,
		`test_latency_seconds_bucket{op="sweep",le="+Inf"} 2`,
		`test_latency_seconds_sum{op="sweep"} 3.05`,
		`test_latency_seconds_count{op="sweep"} 2`,
		"test_inflight 2",
		"test_compute_seconds_total 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_compute_seconds_total") > strings.Index(out, "test_requests_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistrySameFamilyManyLabels(t *testing.T) {
	r := NewRegistry()
	for _, op := range []string{"whatif", "sweep", "table3"} {
		r.Counter("test_ops_total", "Per-op count.", "op", op).Inc()
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE test_ops_total"); got != 1 {
		t.Errorf("family announced %d times, want once:\n%s", got, out)
	}
	if got := strings.Count(out, "test_ops_total{op="); got != 3 {
		t.Errorf("got %d children, want 3:\n%s", got, out)
	}
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Errorf("multi-child family invalid: %v", err)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(r *Registry){
		"invalid metric name": func(r *Registry) { r.Counter("9bad", "h") },
		"invalid label name":  func(r *Registry) { r.Counter("ok_total", "h", "9bad", "v") },
		"odd label list":      func(r *Registry) { r.Counter("ok_total", "h", "key") },
		"type conflict": func(r *Registry) {
			r.Counter("twice", "h")
			r.GaugeFunc("twice", "h", func() float64 { return 0 })
		},
		"duplicate series": func(r *Registry) {
			r.Counter("dup_total", "h", "a", "b")
			r.Counter("dup_total", "h", "a", "b")
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(NewRegistry())
		}()
	}
}
