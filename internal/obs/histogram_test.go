package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0
	h.Observe(0.01)  // le="0.01" is inclusive -> bucket 0
	h.Observe(0.05)  // bucket 1
	h.Observe(0.5)   // bucket 2
	h.Observe(5)     // +Inf
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	for i, want := range []uint64{2, 1, 1, 1} {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	cum, count, sum := h.snapshot()
	wantCum := []uint64{2, 3, 4, 5}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if count != 5 {
		t.Errorf("snapshot count = %d, want 5", count)
	}
	if math.Abs(sum-5.565) > 1e-6 {
		t.Errorf("sum = %v, want 5.565", sum)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	h.ObserveDuration(3 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.003) > 1e-9 {
		t.Errorf("Sum = %v, want 0.003", got)
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.4, 0.8})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// 100 observations, uniformly placed: 50 in (0,0.1], 30 in (0.1,0.2],
	// 15 in (0.2,0.4], 5 in (0.4,0.8].
	fill := func(n int, v float64) {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	fill(50, 0.05)
	fill(30, 0.15)
	fill(15, 0.3)
	fill(5, 0.6)
	cases := []struct{ q, want float64 }{
		{0.50, 0.1},                   // rank 50 = exactly the first bucket's full count
		{0.25, 0.05},                  // rank 25, halfway through bucket (0, 0.1]
		{0.80, 0.2},                   // rank 80 = cumulative through second bucket
		{0.99, 0.4 + 0.4*(99-95)/5.0}, // interpolated in (0.4, 0.8]
		{1.00, 0.8},
		{0.00, 0.0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// A quantile landing beyond the last finite bound clamps to it.
	fill(900, 100)
	if got := h.Quantile(0.99); got != 0.8 {
		t.Errorf("tail Quantile = %v, want highest finite bound 0.8", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// under -race: the total count and sum must come out exact, proving the
// lock-free counters lose nothing.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1e-4, 1e-3, 1e-2, 1e-1, 1})
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Spread observations across all buckets deterministically.
				h.Observe(math.Pow(10, -float64((g+i)%6)))
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*per); got != want {
		t.Errorf("concurrent Count = %d, want %d", got, want)
	}
	cum, count, _ := h.snapshot()
	if cum[len(cum)-1] != count {
		t.Errorf("+Inf cumulative %d != count %d", cum[len(cum)-1], count)
	}
	// Each goroutine contributes a fixed multiset of values; the sum must
	// be exact up to the nanosecond truncation per observation.
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			wantSum += math.Pow(10, -float64((g+i)%6))
		}
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-3 {
		t.Errorf("concurrent Sum = %v, want %v", got, wantSum)
	}
}
