package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks that data is well-formed Prometheus text
// exposition (version 0.0.4). It is deliberately stricter than a
// scraping parser, because this repo produces the text: every sample
// must belong to a family announced by a preceding # TYPE line, HELP and
// TYPE appear at most once per family, histogram samples may only use
// the _bucket/_sum/_count suffixes of a histogram family (with a le
// label on _bucket), no series may appear twice, and every value must
// parse as a float. The CI metrics smoke and the /metrics tests both
// call this, so a malformed line fails the build rather than the scrape.
func ValidateExposition(data []byte) error {
	types := make(map[string]string) // family -> type
	helped := make(map[string]bool)
	seen := make(map[string]bool) // full series line identity
	for n, line := range strings.Split(string(data), "\n") {
		lineNo := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, helped); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types, seen); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return nil
}

// validateComment checks a # HELP or # TYPE line.
func validateComment(line string, types map[string]string, helped map[string]bool) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return fmt.Errorf("comment %q is not '# HELP' or '# TYPE'", line)
	}
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		name := fields[0]
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if helped[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helped[name] = true
		return nil
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[0], fields[1]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		types[name] = typ
		return nil
	}
	return fmt.Errorf("comment %q is not '# HELP' or '# TYPE'", line)
}

// validateSample checks one sample line: name, optional labels, float
// value, optional integer timestamp.
func validateSample(line string, types map[string]string, seen map[string]bool) error {
	name := line
	for i := 0; i < len(line); i++ {
		if line[i] == '{' || line[i] == ' ' {
			name = line[:i]
			break
		}
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name in sample %q", name)
	}
	family, suffix := name, ""
	if _, ok := types[name]; !ok {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, s); ok {
				if _, known := types[base]; known {
					family, suffix = base, s
					break
				}
			}
		}
	}
	typ, ok := types[family]
	if !ok {
		return fmt.Errorf("sample %s has no preceding # TYPE", name)
	}
	if suffix != "" && typ != "histogram" && typ != "summary" {
		return fmt.Errorf("suffix %s on non-histogram family %s", suffix, family)
	}
	rest := line[len(name):]
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	if suffix == "_bucket" && !strings.Contains(labels, `le="`) {
		return fmt.Errorf("histogram bucket %s missing le label", name)
	}
	series := name + labels
	if seen[series] {
		return fmt.Errorf("duplicate series %s", series)
	}
	seen[series] = true
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %s: want 'value [timestamp]', got %q", name, rest)
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %s: bad timestamp %q", name, fields[1])
		}
	}
	return nil
}

// parseSampleValue accepts floats plus the exposition spellings of
// infinity and NaN.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes a leading {k="v",...} block if present, returning
// it and the remainder of the line.
func parseLabels(s string) (labels, rest string, err error) {
	if !strings.HasPrefix(s, "{") {
		return "", s, nil
	}
	i := 1
	for {
		// label name
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated label block")
		}
		if !validLabelName(s[start:i]) {
			return "", "", fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return "", "", fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return "", "", fmt.Errorf("dangling escape in label value")
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return "", "", fmt.Errorf("invalid escape \\%c in label value", s[i])
				}
			}
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated label block")
		}
		switch s[i] {
		case ',':
			i++
			continue
		case '}':
			return s[:i+1], s[i+1:], nil
		default:
			return "", "", fmt.Errorf("unexpected %q after label value", s[i])
		}
	}
}
