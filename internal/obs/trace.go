package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// A trace ID is a 16-hex-character opaque token stamped on a request at
// the HTTP edge (or minted at submission for CLI jobs) and carried via
// context through the engine and the job runner, so one request's log
// lines correlate across layers and across a journal-recovered resume.

// traceKey is the context key for the trace ID.
type traceKey struct{}

// traceFallback seeds the non-cryptographic fallback counter.
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-char trace ID. IDs come from
// crypto/rand; if that fails (no entropy device), a time-seeded counter
// keeps IDs unique within the process rather than failing the request.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceFallback.Add(1)
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^(n<<40))
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID extracts the context's trace ID, or "" when none was stamped.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTraceID returns the context's trace ID, minting and attaching a
// fresh one when absent.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// ValidTraceID reports whether a caller-supplied trace ID is safe to
// propagate: 1–64 characters drawn from [0-9a-zA-Z_-]. Anything else
// (header injection, log forgery) is replaced rather than echoed.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
