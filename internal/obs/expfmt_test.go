package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		"# HELP http_requests_total Requests.",
		"# TYPE http_requests_total counter",
		"http_requests_total 1027",
		`http_requests_total{method="post",code="200"} 3 1395066363000`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 4.5",
		"latency_seconds_count 3",
		"# TYPE temp gauge",
		"temp -17.5",
		"# TYPE odd gauge",
		"odd NaN",
		`# TYPE esc counter`,
		`esc{v="a\"b\\c\nd"} 1`,
		"",
	}, "\n")
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":     "no_type_total 1\n",
		"bad comment":             "# NOTE something\n",
		"bad metric name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad value":               "# TYPE m counter\nm notanumber\n",
		"missing value":           "# TYPE m counter\nm\n",
		"extra fields":            "# TYPE m counter\nm 1 2 3\n",
		"bad timestamp":           "# TYPE m counter\nm 1 soon\n",
		"duplicate TYPE":          "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate HELP":          "# HELP m a\n# HELP m b\n# TYPE m counter\nm 1\n",
		"duplicate series":        "# TYPE m counter\nm{a=\"b\"} 1\nm{a=\"b\"} 2\n",
		"unterminated labels":     "# TYPE m counter\nm{a=\"b\" 1\n",
		"unquoted label value":    "# TYPE m counter\nm{a=b} 1\n",
		"bad label name":          "# TYPE m counter\nm{9a=\"b\"} 1\n",
		"bad escape":              "# TYPE m counter\nm{a=\"\\x\"} 1\n",
		"bucket without le":       "# TYPE h histogram\nh_bucket{op=\"x\"} 1\n",
		"suffix on counter":       "# TYPE c counter\nc_bucket{le=\"1\"} 1\n",
		"unknown type":            "# TYPE m enum\nm 1\n",
		"type after sample":       "m 1\n# TYPE m counter\n",
		"mixed naming no family":  "# TYPE a counter\nb_sum 1\n",
		"space in name via label": "# TYPE m counter\nm {a=\"b\"} 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition([]byte(text)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, text)
		}
	}
}
