// Package obs is the repo's dependency-free observability kit: a leveled
// structured logger (key=value lines, injectable sink), trace-ID
// generation with context propagation, lock-free fixed-bucket latency
// histograms, and a metric registry that renders real Prometheus text
// exposition (# HELP / # TYPE, counters, gauges, histograms). cmd/serve,
// internal/engine, and internal/jobs all emit through this package, so
// one request carries one trace ID from the HTTP edge through the engine
// and the job runner, and /metrics speaks one consistent,
// scrape-able namespace.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	// LevelDebug: per-event detail (cache hits, queue waits).
	LevelDebug Level = iota
	// LevelInfo: one line per unit of served work (request, row, job).
	LevelInfo
	// LevelWarn: degraded but handled (retry, shed, deadline).
	LevelWarn
	// LevelError: contained failures (panics, exhausted retries).
	LevelError
	// levelOff disables all output; used by Nop.
	levelOff
)

// String renders the level the way log lines spell it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// ParseLevel maps a flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// Logger writes leveled key=value lines to a sink. Loggers derived with
// With share the parent's sink, level, and clock, so a level change on
// the root applies everywhere. The zero Logger is not usable; construct
// with New or Nop.
type Logger struct {
	core   *logCore
	fields string // pre-rendered " k=v k=v" bound by With
}

// logCore is the state shared by a Logger and everything derived from it.
type logCore struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time
}

// New builds a logger writing to w at the given minimum level. The sink
// is any io.Writer; writes are serialized, so tests can hand in a plain
// buffer and read whole lines back.
func New(w io.Writer, level Level) *Logger {
	c := &logCore{w: w, now: time.Now}
	c.level.Store(int32(level))
	return &Logger{core: c}
}

// Nop is a logger that discards everything at zero cost.
func Nop() *Logger {
	c := &logCore{w: io.Discard, now: time.Now}
	c.level.Store(int32(levelOff))
	return &Logger{core: c}
}

// SetLevel changes the minimum level for this logger and everything
// sharing its sink (parents and With-derived children alike).
func (l *Logger) SetLevel(level Level) { l.core.level.Store(int32(level)) }

// Enabled reports whether lines at the given level would be written —
// the guard for callers that want to skip building debug attributes.
func (l *Logger) Enabled(level Level) bool {
	return int32(level) >= l.core.level.Load()
}

// With returns a logger that appends the given key/value pairs to every
// line it writes. Pairs are rendered once, at With time.
func (l *Logger) With(kv ...any) *Logger {
	if len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.fields)
	appendPairs(&b, kv)
	return &Logger{core: l.core, fields: b.String()}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// log renders one line: ts=<RFC3339Nano> level=<level> msg=<msg> k=v...
func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.fields) + 16*len(kv))
	b.WriteString("ts=")
	b.WriteString(l.core.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	appendValue(&b, msg)
	b.WriteString(l.fields)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	io.WriteString(l.core.w, b.String())
}

// appendPairs renders alternating key/value arguments; a trailing
// unpaired key is rendered with the placeholder value "(MISSING)".
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kv) {
			appendValue(b, kv[i+1])
		} else {
			b.WriteString("(MISSING)")
		}
	}
}

// appendValue renders one value, quoting strings that contain spaces,
// quotes, or '=' so lines stay machine-splittable on spaces.
func appendValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		appendString(b, x)
	case error:
		appendString(b, x.Error())
	case time.Duration:
		b.WriteString(x.String())
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	default:
		appendString(b, fmt.Sprint(v))
	}
}

// appendString quotes only when needed.
func appendString(b *strings.Builder, s string) {
	if s != "" && !strings.ContainsAny(s, " \t\n\"=") {
		b.WriteString(s)
		return
	}
	b.WriteString(strconv.Quote(s))
}

// MemSink is an in-memory log sink for tests: an io.Writer that splits
// what it receives into lines and hands them back under a lock.
type MemSink struct {
	mu  sync.Mutex
	buf strings.Builder
}

// Write implements io.Writer.
func (s *MemSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

// Lines returns every complete line written so far.
func (s *MemSink) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	text := strings.TrimSuffix(s.buf.String(), "\n")
	if text == "" {
		return nil
	}
	return strings.Split(text, "\n")
}

// String returns the raw accumulated text.
func (s *MemSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}
