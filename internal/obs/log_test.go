package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins log timestamps for shape assertions.
func fixedClock(l *Logger) {
	l.core.now = func() time.Time {
		return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	}
}

func TestLogLineShape(t *testing.T) {
	var sink MemSink
	l := New(&sink, LevelInfo)
	fixedClock(l)
	l.Info("request served", "trace", "ab12", "status", 200, "dur", 250*time.Millisecond,
		"path", "/v1/what if")
	lines := sink.Lines()
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), lines)
	}
	want := `ts=2026-08-06T12:00:00Z level=info msg="request served" trace=ab12 status=200 dur=250ms path="/v1/what if"`
	if lines[0] != want {
		t.Errorf("line = %q\nwant   %q", lines[0], want)
	}
}

func TestLogLevelsFilter(t *testing.T) {
	var sink MemSink
	l := New(&sink, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := sink.Lines()
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want warn+error only: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("unexpected lines: %q", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with the configured level")
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if got := sink.Lines(); len(got) != 3 {
		t.Errorf("SetLevel(debug) did not take effect: %q", got)
	}
}

func TestLogWithBindsFields(t *testing.T) {
	var sink MemSink
	root := New(&sink, LevelInfo)
	child := root.With("component", "engine", "op", "sweep")
	child.Info("computed", "rows", 5)
	line := sink.Lines()[0]
	for _, want := range []string{"component=engine", "op=sweep", "rows=5"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// The child shares the root's level switch.
	root.SetLevel(LevelError)
	child.Info("suppressed")
	if got := sink.Lines(); len(got) != 1 {
		t.Errorf("child ignored root level change: %q", got)
	}
}

func TestLogOddPairsAndNonStringValues(t *testing.T) {
	var sink MemSink
	l := New(&sink, LevelInfo)
	l.Info("odd", "key") // trailing key without a value must not panic
	line := sink.Lines()[0]
	if !strings.Contains(line, "key=(MISSING)") {
		t.Errorf("odd pair rendered as %q", line)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	l := Nop()
	l.Error("nothing happens")
	if l.Enabled(LevelError) {
		t.Error("Nop logger claims to be enabled")
	}
}

// TestLogConcurrent exercises the sink serialization under -race and
// checks no lines interleave.
func TestLogConcurrent(t *testing.T) {
	var sink MemSink
	l := New(&sink, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("tick", "goroutine", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := sink.Lines()
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}
