package chiplet

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func TestValidate(t *testing.T) {
	if err := Today().Validate(); err != nil {
		t.Fatalf("Today invalid: %v", err)
	}
	if err := Chiplets(64).Validate(); err != nil {
		t.Fatalf("Chiplets invalid: %v", err)
	}
	cases := []func(*Design){
		func(d *Design) { d.Units = 0 },
		func(d *Design) { d.CorePower = 0 },
		func(d *Design) { d.GateableFraction = 1.5 },
		func(d *Design) { d.UnitOverhead = -1 },
		func(d *Design) { d.MinActive = -1 },
		func(d *Design) { d.MinActive = 99 },
		func(d *Design) { d.OpticsPower = -1 },
		func(d *Design) { d.Optics = Optics(9) },
	}
	for i, mutate := range cases {
		d := Chiplets(8)
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid design accepted", i)
		}
	}
}

func TestTodayIsNonProportional(t *testing.T) {
	d := Today()
	prop, err := d.Proportionality()
	if err != nil {
		t.Fatal(err)
	}
	// MinActive = Units means nothing gates: zero effective
	// proportionality — today's hardware.
	if prop != 0 {
		t.Errorf("today's proportionality = %v, want 0", prop)
	}
	idle, _ := d.PowerAt(0)
	full, _ := d.PowerAt(1)
	if idle != full {
		t.Errorf("today's idle %v != max %v", idle, full)
	}
}

func TestGateableProportionality(t *testing.T) {
	d := Gateable()
	prop, err := d.Proportionality()
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 4 pipeline shares gate: 0.65*0.75 of core; optics stay on.
	// idle = 750*(1-0.65) + 750*0.65/4 + 160 = 262.5+121.875+160 = 544.375
	// max = 910; prop = (910-544.375)/910.
	want := (910.0 - 544.375) / 910.0
	if math.Abs(prop-want) > 1e-9 {
		t.Errorf("gateable proportionality = %v, want %v", prop, want)
	}
}

func TestChipletsFinerGranularity(t *testing.T) {
	// At 30% load, a 4-unit design runs 2/4 units (50% of gateable), a
	// 64-unit design runs 20/64 (31%) — finer tracking, less waste.
	coarse := Chiplets(4)
	fine := Chiplets(64)
	pc, err := coarse.PowerAt(0.30)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := fine.PowerAt(0.30)
	if err != nil {
		t.Fatal(err)
	}
	if pf >= pc {
		t.Errorf("fine design %v should draw less than coarse %v at 30%% load", pf, pc)
	}
}

func TestOverheadTaxAtFullLoad(t *testing.T) {
	// At full load the chiplet design pays for its disaggregation: more
	// units, more overhead.
	few := Chiplets(4)
	many := Chiplets(64)
	pFew, _ := few.PowerAt(1)
	pMany, _ := many.PowerAt(1)
	if pMany <= pFew {
		t.Errorf("64 units at full load (%v) should cost more than 4 (%v)", pMany, pFew)
	}
	if diff := float64(pMany - pFew); math.Abs(diff-60*2) > 1e-9 {
		t.Errorf("overhead difference = %v W, want 120 W (60 extra units x 2 W)", diff)
	}
}

func TestCoPackagedOpticsGate(t *testing.T) {
	cp := Chiplets(8)
	ext := cp
	ext.Optics = ExternalOptics
	ext.Name = "external"
	// At low load, co-packaged optics gate with their units.
	pcp, _ := cp.PowerAt(0.1)
	pext, _ := ext.PowerAt(0.1)
	if pcp >= pext {
		t.Errorf("co-packaged %v should beat external %v at low load", pcp, pext)
	}
	// At full load they cost the same (all optics on).
	pcp, _ = cp.PowerAt(1)
	pext, _ = ext.PowerAt(1)
	if pcp != pext {
		t.Errorf("co-packaged %v != external %v at full load", pcp, pext)
	}
}

func TestPowerAtValidation(t *testing.T) {
	d := Chiplets(8)
	if _, err := d.PowerAt(-0.1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := d.PowerAt(1.1); err == nil {
		t.Error("load > 1 accepted")
	}
	bad := d
	bad.Units = 0
	if _, err := bad.PowerAt(0.5); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestMinActiveFloor(t *testing.T) {
	d := Chiplets(8)
	d.MinActive = 2
	p0, _ := d.PowerAt(0)
	p1, _ := d.PowerAt(0.125) // exactly 1 unit of load
	if p0 != p1 {
		t.Errorf("floor of 2 units: PowerAt(0)=%v should equal PowerAt(1/8)=%v", p0, p1)
	}
}

func mlProfile(t *testing.T, n int) ([]units.Seconds, []float64) {
	t.Helper()
	prof, err := traffic.MLPeriodic(0.1, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]units.Seconds, n)
	loads := make([]float64, n)
	for i := range times {
		times[i] = units.Seconds(i) * 0.5
		loads[i] = prof(times[i])
	}
	return times, loads
}

func TestSweepOrdering(t *testing.T) {
	times, loads := mlProfile(t, 200)
	rows, err := Sweep([]Design{Today(), Gateable(), Chiplets(4), Chiplets(16), Chiplets(64)}, times, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Today saves nothing against itself.
	if rows[0].SavingsVsToday != 0 {
		t.Errorf("today vs today = %v", rows[0].SavingsVsToday)
	}
	// Each step of the redesign ladder helps on this 90%-idle load:
	// gateable > today, chiplets+CPO > gateable, finer > coarser.
	for i := 1; i < len(rows); i++ {
		if rows[i].SavingsVsToday <= rows[i-1].SavingsVsToday {
			t.Errorf("%s (%.3f) should beat %s (%.3f)",
				rows[i].Design.Name, rows[i].SavingsVsToday,
				rows[i-1].Design.Name, rows[i-1].SavingsVsToday)
		}
	}
	// The fine-grained CPO design approaches compute-class proportionality.
	if rows[4].Proportionality < 0.70 {
		t.Errorf("64-chiplet proportionality = %v, want > 0.70", rows[4].Proportionality)
	}
}

func TestEnergyOnProfileValidation(t *testing.T) {
	d := Chiplets(8)
	times, loads := mlProfile(t, 10)
	if _, err := d.EnergyOnProfile(times[:1], loads[:1]); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := d.EnergyOnProfile(times, loads[:5]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	bad := append([]float64{}, loads...)
	bad[0] = 2
	if _, err := d.EnergyOnProfile(times, bad); err == nil {
		t.Error("load > 1 accepted")
	}
	rev := append([]units.Seconds{}, times...)
	rev[1] = rev[0]
	if _, err := d.EnergyOnProfile(rev, loads); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestOpticsString(t *testing.T) {
	if ExternalOptics.String() != "external" || CoPackagedOptics.String() != "co-packaged" {
		t.Error("optics names broken")
	}
	if Optics(7).String() != "Optics(7)" {
		t.Error("unknown optics formatting broken")
	}
}

// Property: power is monotone non-decreasing in load and bounded by
// [PowerAt(0), MaxPower].
func TestPowerMonotoneBounded(t *testing.T) {
	f := func(nRaw uint8, aRaw, bRaw float64) bool {
		d := Chiplets(1 + int(nRaw)%128)
		a := math.Abs(math.Mod(aRaw, 1.0))
		b := math.Abs(math.Mod(bRaw, 1.0))
		if a > b {
			a, b = b, a
		}
		pa, err1 := d.PowerAt(a)
		pb, err2 := d.PowerAt(b)
		p0, err3 := d.PowerAt(0)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return pa <= pb+1e-9 && pa >= p0-1e-9 && pb <= d.MaxPower()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: effective proportionality improves (weakly) with unit count
// for overhead-free designs.
func TestProportionalityImprovesWithUnits(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		na := 1 + int(aRaw)%64
		nb := 1 + int(bRaw)%64
		if na > nb {
			na, nb = nb, na
		}
		da, db := Chiplets(na), Chiplets(nb)
		da.UnitOverhead, db.UnitOverhead = 0, 0
		pa, err1 := da.Proportionality()
		pb, err2 := db.Proportionality()
		if err1 != nil || err2 != nil {
			return false
		}
		return pb >= pa-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
