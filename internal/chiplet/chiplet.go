// Package chiplet explores §4.5: redesigning the switching ASIC from
// scratch with power proportionality as the primary objective. A design is
// a forwarding complex split into N independently gateable processing
// units ("many small pipelines, chiplets, or similar"): more, smaller
// units track the load more finely — at the cost of a per-unit
// disaggregation overhead (die-to-die interconnect, packaging). The
// package also models co-packaged optics, which move the optical
// conversion on-package where it can be gated with its unit, versus
// external transceivers that burn power whenever the port is lit.
package chiplet

import (
	"fmt"
	"math"

	"netpowerprop/internal/device"
	"netpowerprop/internal/units"
)

// Optics selects where the optical conversion lives.
type Optics int

const (
	// ExternalOptics models today's pluggable transceivers: their power is
	// always on while the switch is up, regardless of load.
	ExternalOptics Optics = iota
	// CoPackagedOptics places the conversion next to each processing unit;
	// a gated unit gates its optics too (§4.5's trend).
	CoPackagedOptics
)

// String names the optics model.
func (o Optics) String() string {
	switch o {
	case ExternalOptics:
		return "external"
	case CoPackagedOptics:
		return "co-packaged"
	default:
		return fmt.Sprintf("Optics(%d)", int(o))
	}
}

// Design is one point in the §4.5 design space.
type Design struct {
	Name string
	// Units is the number of independently gateable processing units.
	Units int
	// CorePower is the forwarding complex's power at N=1 (no
	// disaggregation overhead).
	CorePower units.Power
	// GateableFraction is the share of CorePower that lives inside the
	// units (the rest is shared control/fixed logic that never gates).
	GateableFraction float64
	// UnitOverhead is the per-unit disaggregation tax beyond the first
	// unit (die-to-die SerDes, packaging).
	UnitOverhead units.Power
	// MinActive floors the number of live units (a switch must forward).
	MinActive int
	// Optics selects the optics model; OpticsPower is the total optics
	// power at full capacity.
	Optics      Optics
	OpticsPower units.Power
}

// Validate checks the design parameters.
func (d Design) Validate() error {
	if d.Units < 1 {
		return fmt.Errorf("chiplet: units %d must be positive", d.Units)
	}
	if d.CorePower <= 0 {
		return fmt.Errorf("chiplet: core power %v must be positive", d.CorePower)
	}
	if d.GateableFraction < 0 || d.GateableFraction > 1 {
		return fmt.Errorf("chiplet: gateable fraction %v outside [0,1]", d.GateableFraction)
	}
	if d.UnitOverhead < 0 {
		return fmt.Errorf("chiplet: negative unit overhead %v", d.UnitOverhead)
	}
	if d.MinActive < 0 || d.MinActive > d.Units {
		return fmt.Errorf("chiplet: min active %d outside [0,%d]", d.MinActive, d.Units)
	}
	if d.OpticsPower < 0 {
		return fmt.Errorf("chiplet: negative optics power %v", d.OpticsPower)
	}
	switch d.Optics {
	case ExternalOptics, CoPackagedOptics:
	default:
		return fmt.Errorf("chiplet: unknown optics model %v", d.Optics)
	}
	return nil
}

// MaxPower returns the design's power with every unit active.
func (d Design) MaxPower() units.Power {
	return units.Power(float64(d.CorePower) +
		float64(d.Units-1)*float64(d.UnitOverhead) +
		float64(d.OpticsPower))
}

// activeUnits returns how many units a load requires.
func (d Design) activeUnits(load float64) int {
	n := int(math.Ceil(load * float64(d.Units)))
	if n < d.MinActive {
		n = d.MinActive
	}
	if n > d.Units {
		n = d.Units
	}
	return n
}

// PowerAt returns the design's draw at a load in [0,1]: shared logic is
// always on; ceil(load·N) units are active, each paying its core share,
// its overhead, and (co-packaged only) its optics share; external optics
// burn fully at any load.
func (d Design) PowerAt(load float64) (units.Power, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if load < 0 || load > 1 {
		return 0, fmt.Errorf("chiplet: load %v outside [0,1]", load)
	}
	shared := float64(d.CorePower) * (1 - d.GateableFraction)
	perUnitCore := float64(d.CorePower) * d.GateableFraction / float64(d.Units)
	active := d.activeUnits(load)
	p := shared + float64(active)*perUnitCore
	// Overhead: the first unit is the reference die; each additional
	// *active* unit pays the disaggregation tax (a parked chiplet's
	// interconnect gates with it).
	if active > 0 {
		p += float64(active-1) * float64(d.UnitOverhead)
	}
	switch d.Optics {
	case ExternalOptics:
		p += float64(d.OpticsPower)
	case CoPackagedOptics:
		p += float64(d.OpticsPower) * float64(active) / float64(d.Units)
	}
	return units.Power(p), nil
}

// Proportionality returns the design's effective power proportionality
// (Eq. 1) using the zero-load draw as idle power.
func (d Design) Proportionality() (float64, error) {
	idle, err := d.PowerAt(0)
	if err != nil {
		return 0, err
	}
	max := d.MaxPower()
	if max <= 0 {
		return 0, fmt.Errorf("chiplet: non-positive max power")
	}
	return float64(max-idle) / float64(max), nil
}

// EnergyOnProfile integrates the design over a sampled load profile with
// uniform steps.
func (d Design) EnergyOnProfile(times []units.Seconds, loads []float64) (units.Energy, error) {
	if len(times) < 2 || len(loads) != len(times) {
		return 0, fmt.Errorf("chiplet: need matching times/loads with >= 2 samples")
	}
	step := times[1] - times[0]
	if step <= 0 {
		return 0, fmt.Errorf("chiplet: non-increasing sample times")
	}
	var e units.Energy
	for _, u := range loads {
		p, err := d.PowerAt(u)
		if err != nil {
			return 0, err
		}
		e += units.EnergyOver(p, step)
	}
	return e, nil
}

// Today returns the reference design: a monolithic 4-pipeline ASIC whose
// pipelines do NOT gate (MinActive = Units), with external transceivers —
// effectively today's ~10%-proportional switch.
func Today() Design {
	return Design{
		Name:             "today: monolithic, external optics",
		Units:            4,
		CorePower:        device.SwitchMaxPower,
		GateableFraction: 0.65,
		UnitOverhead:     0,
		MinActive:        4,
		Optics:           ExternalOptics,
		OpticsPower:      160 * units.Watt, // 16 uplinks x 10 W at 400G
	}
}

// Gateable returns a §4.4-style design: the same monolithic ASIC but with
// pipelines that can park (MinActive 1).
func Gateable() Design {
	d := Today()
	d.Name = "gateable pipelines, external optics"
	d.MinActive = 1
	return d
}

// Chiplets returns a §4.5 design with n small units and co-packaged
// optics, paying a per-unit disaggregation overhead.
func Chiplets(n int) Design {
	return Design{
		Name:             fmt.Sprintf("%d chiplets, co-packaged optics", n),
		Units:            n,
		CorePower:        device.SwitchMaxPower,
		GateableFraction: 0.65,
		UnitOverhead:     2 * units.Watt,
		MinActive:        1,
		Optics:           CoPackagedOptics,
		OpticsPower:      160 * units.Watt,
	}
}

// SweepRow is one design's outcome on a load profile.
type SweepRow struct {
	Design          Design
	MaxPower        units.Power
	Proportionality float64
	Energy          units.Energy
	// SavingsVsToday is the energy saved relative to the Today() design on
	// the same profile.
	SavingsVsToday float64
}

// Sweep evaluates designs on a load profile, reporting each against the
// Today() reference.
func Sweep(designs []Design, times []units.Seconds, loads []float64) ([]SweepRow, error) {
	ref, err := Today().EnergyOnProfile(times, loads)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, 0, len(designs))
	for _, d := range designs {
		prop, err := d.Proportionality()
		if err != nil {
			return nil, err
		}
		e, err := d.EnergyOnProfile(times, loads)
		if err != nil {
			return nil, err
		}
		row := SweepRow{Design: d, MaxPower: d.MaxPower(), Proportionality: prop, Energy: e}
		if ref > 0 {
			row.SavingsVsToday = 1 - float64(e)/float64(ref)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
