package ocs

import (
	"math"
	"testing"

	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

func fabric(t *testing.T) Fabric {
	t.Helper()
	f, err := ThreeTierFabric(8, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestThreeTierFabric(t *testing.T) {
	f := fabric(t)
	// k=8: 32 edge, 32 agg, 16 core; 4 hosts per edge; 4 edges per pod.
	if f.EdgeTotal != 32 || f.AggTotal != 32 || f.CoreTotal != 16 {
		t.Errorf("fabric = %+v", f)
	}
	if f.HostsPerEdge() != 4 || f.EdgesPerPod() != 4 {
		t.Errorf("per-edge/pod = %d/%d", f.HostsPerEdge(), f.EdgesPerPod())
	}
	if _, err := ThreeTierFabric(7, 400*units.Gbps); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := ThreeTierFabric(8, 0); err == nil {
		t.Error("zero speed accepted")
	}
}

func ringMatrix(t *testing.T, hosts int, rate units.Bandwidth) *traffic.Matrix {
	t.Helper()
	ids := make([]int, hosts)
	for i := range ids {
		ids[i] = 1000 + i
	}
	j := traffic.Job{ID: 1, Hosts: ids, Period: 10, CommRatio: 0.5, Rate: rate, Pattern: traffic.Ring}
	m, err := j.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTailorPacksRingLocally(t *testing.T) {
	f := fabric(t)
	// An 8-host ring fits on 2 edge switches; affinity packing keeps the
	// ring segments local, so only the seam traffic crosses edges.
	m := ringMatrix(t, 8, 100*units.Gbps)
	plan, err := Tailor(f, m)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Hosts != 8 || plan.EdgeActive != 2 {
		t.Errorf("plan = %+v, want 8 hosts on 2 edges", plan)
	}
	// Ring over 2 edges: exactly 2 edges of the ring cross (the two
	// seams), each 50 Gbps average (rate x ratio).
	wantCross := 2 * 50 * units.Gbps
	if math.Abs(float64(plan.InterEdgeDemand-wantCross)) > 1e-3 {
		t.Errorf("inter-edge demand = %v, want %v", plan.InterEdgeDemand, wantCross)
	}
	// Both edges are in one pod: no core needed, one agg carries the seam.
	if plan.CoreActive != 0 {
		t.Errorf("core active = %d, want 0", plan.CoreActive)
	}
	if plan.AggActive != 1 {
		t.Errorf("agg active = %d, want 1", plan.AggActive)
	}
	// 77 of 80 switches can power off.
	if plan.OffSwitches() != plan.TotalSwitches()-3 {
		t.Errorf("off = %d of %d", plan.OffSwitches(), plan.TotalSwitches())
	}
	// Every job host is placed on a valid edge.
	for h := 1000; h < 1008; h++ {
		e, ok := plan.EdgeOf(h)
		if !ok || e < 0 || e >= plan.EdgeActive {
			t.Errorf("host %d placement = %d, %v", h, e, ok)
		}
	}
	if _, ok := plan.EdgeOf(9999); ok {
		t.Error("non-job host placed")
	}
}

func TestTailorSmallJobSingleEdge(t *testing.T) {
	f := fabric(t)
	m := ringMatrix(t, 4, 100*units.Gbps)
	plan, err := Tailor(f, m)
	if err != nil {
		t.Fatal(err)
	}
	// 4 hosts fit one edge: zero cross traffic, only 1 switch on.
	if plan.EdgeActive != 1 || plan.AggActive != 0 || plan.CoreActive != 0 {
		t.Errorf("plan = %+v, want single edge", plan)
	}
	if plan.InterEdgeDemand != 0 || plan.InterPodDemand != 0 {
		t.Errorf("cross demand = %v/%v, want 0", plan.InterEdgeDemand, plan.InterPodDemand)
	}
}

func TestTailorCrossPodJob(t *testing.T) {
	f := fabric(t)
	// 32 hosts need 8 edges = 2 pods; the ring seams cross pods.
	m := ringMatrix(t, 32, 100*units.Gbps)
	plan, err := Tailor(f, m)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EdgeActive != 8 {
		t.Errorf("edge active = %d, want 8", plan.EdgeActive)
	}
	if plan.InterPodDemand <= 0 {
		t.Error("cross-pod ring should have inter-pod demand")
	}
	if plan.CoreActive < 1 {
		t.Errorf("core active = %d, want >= 1", plan.CoreActive)
	}
	if plan.ActiveSwitches() >= plan.TotalSwitches() {
		t.Error("tailoring should still turn switches off")
	}
}

func TestTailorAllToAllNeedsMoreFabric(t *testing.T) {
	f := fabric(t)
	ring := ringMatrix(t, 16, 100*units.Gbps)
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = 1000 + i
	}
	a2a, err := (traffic.Job{ID: 2, Hosts: ids, Period: 10, CommRatio: 0.5,
		Rate: 100 * units.Gbps, Pattern: traffic.AllToAll}).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	ringPlan, err := Tailor(f, ring)
	if err != nil {
		t.Fatal(err)
	}
	a2aPlan, err := Tailor(f, a2a)
	if err != nil {
		t.Fatal(err)
	}
	if a2aPlan.ActiveSwitches() <= ringPlan.ActiveSwitches() {
		t.Errorf("all-to-all (%d active) should need more fabric than ring (%d)",
			a2aPlan.ActiveSwitches(), ringPlan.ActiveSwitches())
	}
}

func TestTailorErrors(t *testing.T) {
	f := fabric(t)
	if _, err := Tailor(f, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Tailor(f, traffic.NewMatrix()); err == nil {
		t.Error("empty matrix accepted")
	}
	// More hosts than the fabric supports.
	big := traffic.NewMatrix()
	for i := 0; i < 200; i++ {
		big.Add(i, (i+1)%200, 1*units.Gbps)
	}
	if _, err := Tailor(f, big); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestCompare(t *testing.T) {
	f := fabric(t)
	plan, err := Tailor(f, ringMatrix(t, 8, 100*units.Gbps))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(plan, DefaultCompareParams())
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 80 switches on: ~96% switch-energy savings minus OCS power.
	if c.Savings < 0.90 {
		t.Errorf("savings = %v, want > 0.90", c.Savings)
	}
	if c.TailoredEnergy >= c.FullEnergy {
		t.Error("tailored should beat full")
	}
	// 25 ms amortized over a day is negligible.
	if c.ReconfigOverhead > 1e-6 {
		t.Errorf("reconfig overhead = %v", c.ReconfigOverhead)
	}
}

func TestCompareValidation(t *testing.T) {
	f := fabric(t)
	plan, _ := Tailor(f, ringMatrix(t, 8, 100*units.Gbps))
	cases := []func(*CompareParams){
		func(p *CompareParams) { p.JobDuration = 0 },
		func(p *CompareParams) { p.CommDutyCycle = 2 },
		func(p *CompareParams) { p.OCSPower = -1 },
		func(p *CompareParams) { p.ReconfigTime = -1 },
		func(p *CompareParams) { p.ReconfigTime = 1e9 },
		func(p *CompareParams) { p.SwitchProportionality = 2 },
	}
	for i, mutate := range cases {
		p := DefaultCompareParams()
		mutate(&p)
		if _, err := Compare(plan, p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestCompareOCSPowerCanNegateSavings(t *testing.T) {
	f := fabric(t)
	plan, _ := Tailor(f, ringMatrix(t, 8, 100*units.Gbps))
	p := DefaultCompareParams()
	// An absurdly hungry OCS erases the benefit — the paper's "is the
	// addition worth it?" question.
	p.OCSPower = 100 * units.Kilowatt
	c, err := Compare(plan, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Savings >= 0 {
		t.Errorf("savings = %v, want negative with a 100 kW OCS", c.Savings)
	}
}

func TestStandbyCurve(t *testing.T) {
	pts, err := StandbyCurve(DefaultStandbyParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	// Pool 0: no extra power, slow reaction.
	if pts[0].ExtraPower != 0 || pts[0].Reaction != 120 {
		t.Errorf("pool 0 = %+v", pts[0])
	}
	// Full pool: fast reaction, maximal power.
	last := pts[4]
	if last.Reaction != 2 {
		t.Errorf("full pool reaction = %v, want 2", last.Reaction)
	}
	if math.Abs(float64(last.ExtraPower)-4*0.4*750) > 1e-9 {
		t.Errorf("full pool power = %v, want 1200 W", last.ExtraPower)
	}
	// Partial pools still pay the slow boot (off switches dominate).
	if pts[2].Reaction != 120 {
		t.Errorf("partial pool reaction = %v, want 120", pts[2].Reaction)
	}
	// Monotone power growth.
	for i := 1; i < len(pts); i++ {
		if pts[i].ExtraPower <= pts[i-1].ExtraPower {
			t.Error("extra power not increasing with pool size")
		}
	}
}

func TestStandbyCurveValidation(t *testing.T) {
	if _, err := StandbyCurve(DefaultStandbyParams(), 0); err == nil {
		t.Error("zero needed accepted")
	}
	p := DefaultStandbyParams()
	p.StandbyPower = -1
	if _, err := StandbyCurve(p, 2); err == nil {
		t.Error("standby below off accepted")
	}
	p = DefaultStandbyParams()
	p.WakeFromStandby = 1000
	if _, err := StandbyCurve(p, 2); err == nil {
		t.Error("standby slower than off accepted")
	}
}
