// Package ocs implements §4.2's static optimization: tailoring the
// datacenter topology to the workload with optical circuit switches. For
// long-running ML training jobs, an OCS layer between hosts and the
// packet-switched fabric re-packs the job's hosts onto the fewest edge
// switches and sizes the aggregation/core layers to the traffic that
// actually crosses them — everything else powers off. Off-the-shelf OCSs
// reconfigure in tens of milliseconds, which a days-long job amortizes to
// nothing (the paper's observation).
//
// The package also models the standby trade-off the paper raises: keeping
// some switches in a fast-wake standby state costs energy but shortens the
// reaction time when a job's traffic pattern changes.
package ocs

import (
	"fmt"
	"math"
	"sort"

	"netpowerprop/internal/device"
	"netpowerprop/internal/power"
	"netpowerprop/internal/traffic"
	"netpowerprop/internal/units"
)

// Fabric describes the packet-switched fat tree the OCS feeds, in the
// aggregate terms the tailoring algorithm needs.
type Fabric struct {
	// Ports is the switch radix k.
	Ports int
	// LinkSpeed is the per-port speed.
	LinkSpeed units.Bandwidth
	// EdgeTotal, AggTotal, CoreTotal are the full topology's switch counts.
	EdgeTotal, AggTotal, CoreTotal int
}

// ThreeTierFabric derives a Fabric from a full three-tier fat tree of
// k-port switches.
func ThreeTierFabric(ports int, speed units.Bandwidth) (Fabric, error) {
	if ports < 2 || ports%2 != 0 {
		return Fabric{}, fmt.Errorf("ocs: radix %d must be even and >= 2", ports)
	}
	if speed <= 0 {
		return Fabric{}, fmt.Errorf("ocs: link speed %v must be positive", speed)
	}
	half := ports / 2
	return Fabric{
		Ports:     ports,
		LinkSpeed: speed,
		EdgeTotal: ports * half,
		AggTotal:  ports * half,
		CoreTotal: half * half,
	}, nil
}

// HostsPerEdge returns an edge switch's host capacity (k/2 downlinks).
func (f Fabric) HostsPerEdge() int { return f.Ports / 2 }

// EdgesPerPod returns the pod width (k/2 edges).
func (f Fabric) EdgesPerPod() int { return f.Ports / 2 }

// Plan is the outcome of tailoring the topology to a job.
type Plan struct {
	Fabric Fabric
	// Hosts is the job's host count.
	Hosts int
	// EdgeActive, AggActive, CoreActive are the switches that must stay
	// on; the rest power off.
	EdgeActive, AggActive, CoreActive int
	// InterEdgeDemand and InterPodDemand are the traffic volumes that,
	// after re-packing, still cross the aggregation and core layers.
	InterEdgeDemand units.Bandwidth
	InterPodDemand  units.Bandwidth
	// placement maps each job host to its packed edge index.
	placement map[int]int
}

// ActiveSwitches returns the total switches the plan keeps on.
func (p Plan) ActiveSwitches() int { return p.EdgeActive + p.AggActive + p.CoreActive }

// TotalSwitches returns the full topology's switch count.
func (p Plan) TotalSwitches() int { return p.Fabric.EdgeTotal + p.Fabric.AggTotal + p.Fabric.CoreTotal }

// OffSwitches returns how many switches the plan powers off.
func (p Plan) OffSwitches() int { return p.TotalSwitches() - p.ActiveSwitches() }

// EdgeOf returns the packed edge index of a job host.
func (p Plan) EdgeOf(host int) (int, bool) {
	e, ok := p.placement[host]
	return e, ok
}

// Tailor re-packs a job's hosts onto the fewest edge switches and sizes
// the upper layers to the residual cross traffic. Hosts are packed in
// descending order of their total traffic with already-packed hosts
// (greedy affinity), which keeps ring and neighbor patterns local.
func Tailor(f Fabric, m *traffic.Matrix) (Plan, error) {
	if m == nil || m.Len() == 0 {
		return Plan{}, fmt.Errorf("ocs: empty traffic matrix")
	}
	hostSet := map[int]bool{}
	m.Pairs(func(s, d int, _ units.Bandwidth) {
		hostSet[s] = true
		hostSet[d] = true
	})
	hosts := make([]int, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	hostsPerEdge := f.HostsPerEdge()
	edgeNeeded := int(math.Ceil(float64(len(hosts)) / float64(hostsPerEdge)))
	if edgeNeeded > f.EdgeTotal {
		return Plan{}, fmt.Errorf("ocs: job needs %d edge switches, fabric has %d", edgeNeeded, f.EdgeTotal)
	}

	// Greedy affinity packing: seed each edge with the highest-traffic
	// unplaced host, then fill it with the hosts that exchange the most
	// traffic with the edge's current members.
	totalTraffic := map[int]float64{}
	m.Pairs(func(s, d int, v units.Bandwidth) {
		totalTraffic[s] += float64(v)
		totalTraffic[d] += float64(v)
	})
	unplaced := map[int]bool{}
	for _, h := range hosts {
		unplaced[h] = true
	}
	placement := make(map[int]int, len(hosts))
	affinity := func(h int, members []int) float64 {
		var a float64
		for _, mbr := range members {
			a += float64(m.Demand(h, mbr) + m.Demand(mbr, h))
		}
		return a
	}
	for e := 0; e < edgeNeeded && len(unplaced) > 0; e++ {
		// Seed: heaviest unplaced host (ties by ID for determinism).
		seed, best := -1, -1.0
		for _, h := range hosts {
			if unplaced[h] && (totalTraffic[h] > best || (totalTraffic[h] == best && (seed < 0 || h < seed))) {
				seed, best = h, totalTraffic[h]
			}
		}
		members := []int{seed}
		placement[seed] = e
		delete(unplaced, seed)
		for len(members) < hostsPerEdge && len(unplaced) > 0 {
			pick, bestA := -1, -1.0
			for _, h := range hosts {
				if !unplaced[h] {
					continue
				}
				if a := affinity(h, members); a > bestA || (a == bestA && (pick < 0 || h < pick)) {
					pick, bestA = h, a
				}
			}
			members = append(members, pick)
			placement[pick] = e
			delete(unplaced, pick)
		}
	}

	// Residual demand across the packed layout.
	edgesPerPod := f.EdgesPerPod()
	var interEdge, interPod float64
	m.Pairs(func(s, d int, v units.Bandwidth) {
		es, ed := placement[s], placement[d]
		if es == ed {
			return
		}
		interEdge += float64(v)
		if es/edgesPerPod != ed/edgesPerPod {
			interPod += float64(v)
		}
	})

	aggCapacity := float64(f.EdgesPerPod()) * float64(f.LinkSpeed)
	coreCapacity := float64(f.Ports) * float64(f.LinkSpeed)
	plan := Plan{
		Fabric:          f,
		Hosts:           len(hosts),
		EdgeActive:      edgeNeeded,
		InterEdgeDemand: units.Bandwidth(interEdge),
		InterPodDemand:  units.Bandwidth(interPod),
		placement:       placement,
	}
	if interEdge > 0 {
		plan.AggActive = int(math.Ceil(interEdge / aggCapacity))
	}
	if interPod > 0 {
		plan.CoreActive = int(math.Ceil(interPod / coreCapacity))
	}
	if plan.AggActive > f.AggTotal || plan.CoreActive > f.CoreTotal {
		return Plan{}, fmt.Errorf("ocs: residual demand exceeds fabric (agg %d/%d, core %d/%d)",
			plan.AggActive, f.AggTotal, plan.CoreActive, f.CoreTotal)
	}
	return plan, nil
}

// Comparison quantifies a tailored topology against the full fat tree for
// one job.
type Comparison struct {
	Plan Plan
	// FullEnergy keeps every switch powered (two-state at the job's
	// communication duty cycle); TailoredEnergy powers only the plan's
	// active switches plus the OCS.
	FullEnergy     units.Energy
	TailoredEnergy units.Energy
	Savings        float64
	// ReconfigOverhead is the fraction of the job duration spent waiting
	// for the one OCS reconfiguration at job start.
	ReconfigOverhead float64
}

// CompareParams configures the energy comparison.
type CompareParams struct {
	// JobDuration is the training job's length.
	JobDuration units.Seconds
	// CommDutyCycle is the fraction of time the network is busy (§2.2's
	// communication ratio).
	CommDutyCycle float64
	// SwitchProportionality is the packet switches' power proportionality.
	SwitchProportionality float64
	// OCSPower is the circuit switch layer's constant draw (mirror
	// control only — the paper postulates it is small).
	OCSPower units.Power
	// ReconfigTime is the OCS reconfiguration latency at job start.
	ReconfigTime units.Seconds
}

// DefaultCompareParams: a one-day job at 10% duty cycle on 10%-proportional
// switches, a 30 W OCS, and a 25 ms reconfiguration.
func DefaultCompareParams() CompareParams {
	return CompareParams{
		JobDuration:           86400,
		CommDutyCycle:         0.10,
		SwitchProportionality: device.NetworkProportionality,
		OCSPower:              30 * units.Watt,
		ReconfigTime:          25e-3,
	}
}

// Compare evaluates a tailoring plan's energy against the full topology.
func Compare(plan Plan, p CompareParams) (Comparison, error) {
	if p.JobDuration <= 0 {
		return Comparison{}, fmt.Errorf("ocs: job duration %v must be positive", p.JobDuration)
	}
	if p.CommDutyCycle < 0 || p.CommDutyCycle > 1 {
		return Comparison{}, fmt.Errorf("ocs: duty cycle %v outside [0,1]", p.CommDutyCycle)
	}
	if p.OCSPower < 0 {
		return Comparison{}, fmt.Errorf("ocs: negative OCS power %v", p.OCSPower)
	}
	if p.ReconfigTime < 0 || units.Seconds(p.ReconfigTime) > p.JobDuration {
		return Comparison{}, fmt.Errorf("ocs: reconfig time %v outside [0, job duration]", p.ReconfigTime)
	}
	model, err := power.NewModel(device.SwitchMaxPower, p.SwitchProportionality)
	if err != nil {
		return Comparison{}, err
	}
	perSwitch := float64(model.Max)*p.CommDutyCycle + float64(model.Idle())*(1-p.CommDutyCycle)
	full := perSwitch * float64(plan.TotalSwitches()) * float64(p.JobDuration)
	tailored := perSwitch*float64(plan.ActiveSwitches())*float64(p.JobDuration) +
		float64(p.OCSPower)*float64(p.JobDuration)
	c := Comparison{
		Plan:             plan,
		FullEnergy:       units.Energy(full),
		TailoredEnergy:   units.Energy(tailored),
		ReconfigOverhead: float64(p.ReconfigTime) / float64(p.JobDuration),
	}
	if full > 0 {
		c.Savings = 1 - tailored/full
	}
	return c, nil
}

// StandbyParams models the reaction-time/energy trade-off of keeping spare
// switches in standby rather than fully off (§4.2: "turning on network
// devices takes a while, so it makes sense to keep some devices in
// standby").
type StandbyParams struct {
	// OffPower, StandbyPower, wake latencies of the two states.
	OffPower        units.Power
	StandbyPower    units.Power
	WakeFromOff     units.Seconds
	WakeFromStandby units.Seconds
}

// DefaultStandbyParams: off draws nothing but takes 120 s to boot; standby
// draws 40% of max and wakes in 2 s.
func DefaultStandbyParams() StandbyParams {
	return StandbyParams{
		OffPower:        0,
		StandbyPower:    units.Power(0.4 * float64(device.SwitchMaxPower)),
		WakeFromOff:     120,
		WakeFromStandby: 2,
	}
}

// StandbyPoint is one row of the standby trade-off curve.
type StandbyPoint struct {
	// Pool is the number of switches kept in standby.
	Pool int
	// ExtraPower is the steady power cost versus keeping them off.
	ExtraPower units.Power
	// Reaction is the time to bring `needed` switches online: standby
	// wakes cover the pool, the remainder boots from off.
	Reaction units.Seconds
}

// StandbyCurve evaluates pools 0..needed for a demand spike requiring
// `needed` additional switches.
func StandbyCurve(p StandbyParams, needed int) ([]StandbyPoint, error) {
	if needed < 1 {
		return nil, fmt.Errorf("ocs: needed %d must be positive", needed)
	}
	if p.StandbyPower < p.OffPower {
		return nil, fmt.Errorf("ocs: standby power %v below off power %v", p.StandbyPower, p.OffPower)
	}
	if p.WakeFromStandby > p.WakeFromOff {
		return nil, fmt.Errorf("ocs: standby wake %v slower than off wake %v", p.WakeFromStandby, p.WakeFromOff)
	}
	out := make([]StandbyPoint, 0, needed+1)
	for pool := 0; pool <= needed; pool++ {
		pt := StandbyPoint{
			Pool:       pool,
			ExtraPower: units.Power(float64(p.StandbyPower-p.OffPower) * float64(pool)),
		}
		if pool >= needed {
			pt.Reaction = p.WakeFromStandby
		} else {
			// The off switches dominate the reaction (they boot in
			// parallel with the standby wakes).
			pt.Reaction = p.WakeFromOff
		}
		out = append(out, pt)
	}
	return out, nil
}
