// Package jobs is the durable asynchronous job subsystem: a submitted
// engine request is split into its independent rows (engine.RowPlan),
// executed through the engine's bounded worker pool, and journaled to a
// per-job JSONL write-ahead log — submit record, one record per completed
// row, terminal record. A crash, deadline, or restart loses nothing:
// Open replays the journals and ResumeAll continues each incomplete job
// from its last checkpointed row, producing a result byte-identical to an
// uninterrupted run without recomputing any finished row. Failed rows
// retry with seeded deterministic exponential backoff + jitter up to a
// cap, after which the job degrades gracefully: it completes with the
// successful rows plus typed per-row error markers (engine.RowError)
// instead of failing wholesale, and recovered panics are contained the
// same way the serving path contains them.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netpowerprop/internal/engine"
	"netpowerprop/internal/obs"
)

// Executor plans and runs rows. *engine.Engine satisfies it; tests
// substitute scripted executors.
type Executor interface {
	Plan(req engine.Request) (*engine.RowPlan, error)
	ExecRow(ctx context.Context, p *engine.RowPlan, i int) (json.RawMessage, error)
}

var _ Executor = (*engine.Engine)(nil)

// cachePrimer is the optional executor hook for priming the synchronous
// result cache with a finished job's result. *engine.Engine implements it
// via Prime.
type cachePrimer interface {
	Prime(key string, res *engine.Result)
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: submitted, waiting for a runner slot.
	StateQueued State = "queued"
	// StateRunning: rows are executing.
	StateRunning State = "running"
	// StateInterrupted: recovered from a journal (or stopped by a drain)
	// with rows missing; ResumeAll or a re-Submit continues it.
	StateInterrupted State = "interrupted"
	// StateDone: every row succeeded.
	StateDone State = "done"
	// StateDegraded: finished, but some rows exhausted their retries and
	// carry typed error markers instead of payloads.
	StateDegraded State = "degraded"
	// StateCanceled: canceled before completion.
	StateCanceled State = "canceled"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateDegraded || s == StateCanceled
}

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("jobs: manager closed")

// ErrUnknownJob is returned for ids the manager does not hold.
var ErrUnknownJob = errors.New("jobs: unknown job")

// ErrLeaseHeld is returned by Submit when the job's journal in a shared
// directory is live-held by another replica: that replica is running the
// job, and this one must not touch the journal. Callers poll or redirect.
var ErrLeaseHeld = errors.New("jobs: journal leased to another replica")

// Options configures a Manager. Dir and Exec are required; zero values
// elsewhere select defaults.
type Options struct {
	// Dir holds one JSONL journal per job. Created if missing.
	Dir string
	// Exec plans and executes rows (normally the engine).
	Exec Executor
	// Clock injects time for tests; defaults to the real clock.
	Clock Clock
	// Retry is the per-row retry schedule.
	Retry RetryPolicy
	// MaxConcurrent bounds jobs running at once (default 2; rows inside a
	// job run sequentially — the checkpoint order is the row order — so
	// per-job parallelism comes from the engine pool serving other work).
	MaxConcurrent int
	// OnRowCheckpoint, if set, runs after each row is journaled — the
	// chaos hook: returning an error halts the runner dead with no
	// terminal record, exactly like a crash, so recovery paths can be
	// exercised deterministically in tests.
	OnRowCheckpoint func(id string, row int) error
	// Logf receives recovery/skip diagnostics (default: discard).
	Logf func(format string, args ...any)
	// Logger receives structured lifecycle events — submit, resume,
	// retry, checkpoint, drain, terminal — each carrying the job id, key,
	// row, attempt, and the submitting request's trace ID. Nil discards.
	Logger *obs.Logger
	// Registry, when non-nil, receives every jobs metric under the
	// netpowerprop_jobs_* namespace, including a row-latency histogram.
	// Register at most one manager per registry.
	Registry *obs.Registry
	// Owner, when non-empty, enables the owner-lease protocol for a
	// journal directory shared between replicas: this manager only
	// loads, runs, and resumes journals whose lease it holds, releases
	// leases on drain and completion, and may adopt stale leases via
	// ClaimStale. Use a stable per-replica name (its cluster address).
	// Empty disables leases entirely — single-node behavior unchanged.
	Owner string
	// LeaseTTL is how long a claim outlives its last renewal (default
	// 10s). Renewed on every row checkpoint, so only a crashed replica
	// lets its leases expire.
	LeaseTTL time.Duration
}

// Manager owns the job table, the journal directory, and the runner pool.
type Manager struct {
	dir      string
	exec     Executor
	clock    Clock
	retry    RetryPolicy
	hook     func(id string, row int) error
	logf     func(format string, args ...any)
	log      *obs.Logger
	rowHist  *obs.Histogram
	owner    string
	leaseTTL time.Duration

	slots     chan struct{}
	drain     chan struct{}
	drainOnce sync.Once
	hardCtx   context.Context
	hardStop  context.CancelFunc
	wg        sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool

	submitted   atomic.Uint64
	completed   atomic.Uint64
	degradedN   atomic.Uint64
	canceledN   atomic.Uint64
	recovered   atomic.Uint64
	resumed     atomic.Uint64
	rowsDone    atomic.Uint64
	rowRetries  atomic.Uint64
	rowFailures atomic.Uint64
	adopted     atomic.Uint64

	// journalErr latches the first journal append failure. Once set the
	// manager is journal-degraded: Submit refuses new durable work (the
	// node cannot keep its durability promises) while in-flight state
	// stays queryable and compute-only traffic is unaffected.
	journalErr  atomic.Pointer[error]
	journalErrs atomic.Uint64
}

// job is one durable unit of work.
type job struct {
	id    string
	key   string
	req   engine.Request
	plan  *engine.RowPlan
	path  string
	trace string

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	rows      []json.RawMessage
	rowErrs   []*engine.RowError
	attempts  []int
	done      int // rows checkpointed (payload or exhausted marker)
	retries   int
	created   time.Time
	finished  time.Time
	result    *engine.Result
	jl        *journal
	canceled  bool
	doneCh    chan struct{}
	startOnce sync.Once
	// updated is the row-progress broadcast: closed and replaced under mu
	// whenever a row settles or the state changes, waking StreamRows
	// waiters. Waiters re-check under mu, so a spurious wake is harmless.
	updated chan struct{}
}

// bump wakes every StreamRows waiter. Callers hold j.mu.
func (j *job) bump() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// jobID derives the stable job id from the canonical request key, so
// identical requests map to one job (and one journal file) by
// construction.
func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// Open creates the journal directory if needed, replays every journal in
// it, and returns a manager holding the recovered jobs: finished jobs are
// loaded with their results reassembled, incomplete ones surface as
// StateInterrupted with their checkpointed rows preloaded. Nothing runs
// until ResumeAll or Submit.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("jobs: Options.Dir is required")
	}
	if opts.Exec == nil {
		return nil, errors.New("jobs: Options.Exec is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
		if n := runtime.GOMAXPROCS(0) / 2; n > opts.MaxConcurrent {
			opts.MaxConcurrent = n
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dir:      opts.Dir,
		exec:     opts.Exec,
		clock:    opts.Clock,
		retry:    opts.Retry.withDefaults(),
		hook:     opts.OnRowCheckpoint,
		logf:     opts.Logf,
		log:      opts.Logger,
		owner:    opts.Owner,
		leaseTTL: opts.LeaseTTL,
		slots:    make(chan struct{}, opts.MaxConcurrent),
		drain:    make(chan struct{}),
		hardCtx:  ctx,
		hardStop: cancel,
		jobs:     make(map[string]*job),
	}
	m.instrument(opts.Registry)
	if err := m.recover(); err != nil {
		cancel()
		return nil, err
	}
	return m, nil
}

// instrument registers the manager's metrics under netpowerprop_jobs_*.
// The histogram exists even without a registry so observations are
// always safe.
func (m *Manager) instrument(reg *obs.Registry) {
	if reg == nil {
		m.rowHist = obs.NewHistogram(obs.DefLatencyBuckets)
		return
	}
	m.rowHist = reg.Histogram("netpowerprop_jobs_row_duration_seconds",
		"Latency of one job-row attempt, including engine queueing.",
		obs.DefLatencyBuckets)
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("netpowerprop_jobs_submitted_total",
		"Jobs accepted by Submit (new runs only).", &m.submitted)
	counter("netpowerprop_jobs_completed_total",
		"Jobs finishing with every row successful.", &m.completed)
	counter("netpowerprop_jobs_degraded_total",
		"Jobs finishing with at least one failed row.", &m.degradedN)
	counter("netpowerprop_jobs_canceled_total",
		"Jobs canceled before completion.", &m.canceledN)
	counter("netpowerprop_jobs_recovered_total",
		"Incomplete jobs reloaded from journals at Open.", &m.recovered)
	counter("netpowerprop_jobs_resumed_total",
		"Interrupted jobs restarted by ResumeAll or Submit.", &m.resumed)
	counter("netpowerprop_jobs_rows_done_total",
		"Rows checkpointed (payloads and exhausted markers).", &m.rowsDone)
	counter("netpowerprop_jobs_row_retries_total",
		"Row attempts beyond the first.", &m.rowRetries)
	counter("netpowerprop_jobs_row_failures_total",
		"Rows that exhausted their retries.", &m.rowFailures)
	counter("netpowerprop_jobs_adopted_total",
		"Journals adopted from other replicas via the lease protocol.", &m.adopted)
	counter("netpowerprop_jobs_journal_errors_total",
		"Journal append/fsync failures observed.", &m.journalErrs)
	reg.GaugeFunc("netpowerprop_jobs_journal_degraded",
		"1 once a journal append has failed and new jobs are refused.",
		func() float64 {
			if m.JournalErr() != nil {
				return 1
			}
			return 0
		})
	depth := func(state string, count func(Depth) int) {
		reg.GaugeFunc("netpowerprop_jobs_depth",
			"Jobs currently in each lifecycle state.",
			func() float64 { return float64(count(m.Depth())) },
			"state", state)
	}
	depth("running", func(d Depth) int { return d.Running })
	depth("queued", func(d Depth) int { return d.Queued })
	depth("interrupted", func(d Depth) int { return d.Interrupted })
	depth("done", func(d Depth) int { return d.Done })
	depth("degraded", func(d Depth) int { return d.Degraded })
	depth("canceled", func(d Depth) int { return d.Canceled })
}

// noteJournalErr latches a typed journal append failure, flipping the
// manager into journal-degraded mode. Non-journal errors are ignored.
func (m *Manager) noteJournalErr(where string, err error) {
	if err == nil || (!errors.Is(err, ErrJournalWrite) && !errors.Is(err, ErrJournalSync)) {
		return
	}
	m.journalErrs.Add(1)
	e := err
	if m.journalErr.CompareAndSwap(nil, &e) {
		m.log.Error("journal degraded, refusing new jobs", "where", where, "cause", err)
	}
}

// JournalErr returns the first journal append failure observed, or nil
// while the write-ahead log is healthy. A non-nil value means the node
// is degraded for durable work: /healthz reports it and Submit returns
// ErrJournalDegraded.
func (m *Manager) JournalErr() error {
	if p := m.journalErr.Load(); p != nil {
		return *p
	}
	return nil
}

// recover replays every journal in the directory.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(m.dir, e.Name())
		if _, err := m.adoptJournal(path); err != nil {
			m.logf("jobs: skipping journal %s: %v", path, err)
		}
	}
	return nil
}

// recoverFile replays one journal into a job, returning the job id. A
// journal whose id the manager already holds is left untouched (the
// in-memory job is authoritative). Callers gate on adoptJournal when
// leases are enabled.
func (m *Manager) recoverFile(path string) (string, error) {
	recs, cleanOff, torn, err := readJournal(path)
	if err != nil {
		return "", err
	}
	if torn {
		// Drop the partial tail now so a resume appends onto clean bytes.
		if err := os.Truncate(path, cleanOff); err != nil {
			return "", fmt.Errorf("truncate torn tail: %w", err)
		}
		m.logf("jobs: journal %s had a torn tail; truncated to the %d-byte durable prefix", path, cleanOff)
	}
	if len(recs) == 0 || recs[0].T != recSubmit || recs[0].Req == nil {
		return "", errors.New("no submit record")
	}
	sub := recs[0]
	plan, err := m.exec.Plan(*sub.Req)
	if err != nil {
		return "", fmt.Errorf("replan: %w", err)
	}
	if plan.Key() != sub.Key {
		return "", fmt.Errorf("canonical key changed (journal %q, plan %q)", sub.Key, plan.Key())
	}
	if plan.Rows() != sub.Rows {
		return "", fmt.Errorf("row count changed (journal %d, plan %d)", sub.Rows, plan.Rows())
	}
	j := m.newJob(sub.ID, plan, path, sub.Trace)
	var terminal State
	for _, rec := range recs[1:] {
		switch rec.T {
		case recRow:
			if rec.I < 0 || rec.I >= plan.Rows() {
				continue
			}
			if j.rows[rec.I] != nil || j.rowErrs[rec.I] != nil {
				continue // duplicate append after a resume overlap; first write wins
			}
			if rec.Error != "" {
				j.rowErrs[rec.I] = &engine.RowError{Row: rec.I, Err: rec.Error, Panic: rec.Panic}
			} else {
				j.rows[rec.I] = rec.Data
			}
			j.attempts[rec.I] = rec.Attempts
			j.done++
		case recDone:
			terminal = State(rec.Status)
		}
	}
	switch terminal {
	case StateDone, StateDegraded:
		res, err := plan.Assemble(j.rows, j.markers())
		if err != nil {
			return "", fmt.Errorf("reassemble: %w", err)
		}
		j.result = res
		j.state = terminal
		j.cancel()
		close(j.doneCh)
	case StateCanceled:
		j.state = StateCanceled
		j.canceled = true
		j.cancel()
		close(j.doneCh)
	default:
		j.state = StateInterrupted
		m.recovered.Add(1)
		m.log.Info("job recovered", "job", j.id, "key", j.key,
			"rows_done", j.done, "rows", plan.Rows(), "trace", j.trace)
	}
	m.mu.Lock()
	if _, ok := m.jobs[j.id]; ok {
		m.mu.Unlock()
		j.cancel()
		return j.id, nil
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	return j.id, nil
}

// newJob allocates the in-memory job shell. The trace ID is embedded in
// the job's context so engine-level logs from its rows carry the same
// trace as the submitting request.
func (m *Manager) newJob(id string, plan *engine.RowPlan, path, trace string) *job {
	ctx, cancel := context.WithCancel(obs.WithTraceID(m.hardCtx, trace))
	return &job{
		id:       id,
		key:      plan.Key(),
		req:      plan.Request(),
		plan:     plan,
		path:     path,
		trace:    trace,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		rows:     make([]json.RawMessage, plan.Rows()),
		rowErrs:  make([]*engine.RowError, plan.Rows()),
		attempts: make([]int, plan.Rows()),
		created:  m.clock.Now(),
		doneCh:   make(chan struct{}),
		updated:  make(chan struct{}),
	}
}

// markers collects the job's typed row-error markers in row order.
func (j *job) markers() []engine.RowError {
	var out []engine.RowError
	for _, re := range j.rowErrs {
		if re != nil {
			out = append(out, *re)
		}
	}
	return out
}

// Submit registers a request as a durable job, idempotently by canonical
// key: resubmitting an identical request returns the existing job
// (created=false) whether it is queued, running, finished, or — after a
// restart — interrupted, in which case the submit resumes it. Only a
// canceled job is restarted from scratch with a fresh journal. The
// context's trace ID (minted here when absent) is journaled with the
// job and tags every lifecycle log line, including after a resume.
func (m *Manager) Submit(ctx context.Context, req engine.Request) (*Snapshot, bool, error) {
	plan, err := m.exec.Plan(req)
	if err != nil {
		return nil, false, err
	}
	trace := obs.TraceID(ctx)
	if trace == "" {
		trace = obs.NewTraceID()
	}
	id := jobID(plan.Key())
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrClosed
	}
	rerun := false
	if j, ok := m.jobs[id]; ok {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st != StateCanceled {
			m.mu.Unlock()
			m.log.Debug("job resubmitted", "job", id, "state", string(st),
				"trace", trace, "jobtrace", j.trace)
			// An already-accepted job needs no new journal write, so its
			// idempotent re-submit returns the existing snapshot even
			// while the journal is degraded. Resuming an interrupted job
			// DOES append, so only that path stays gated.
			if st == StateInterrupted {
				if jerr := m.JournalErr(); jerr != nil {
					return nil, false, fmt.Errorf("%w: %w", ErrJournalDegraded, jerr)
				}
				m.resume(j)
			}
			return m.snapshot(j, true), false, nil
		}
		rerun = true
	}
	// Everything past here writes the journal (fresh job, canceled
	// rerun, or on-disk adoption): refused while the journal is degraded.
	if jerr := m.JournalErr(); jerr != nil {
		m.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %w", ErrJournalDegraded, jerr)
	}
	if rerun {
		delete(m.jobs, id) // canceled: rerun from scratch
	}
	path := filepath.Join(m.dir, id+".jsonl")
	if m.leasesEnabled() {
		if _, err := os.Stat(path); err == nil && !rerun {
			// A journal exists on disk that we do not hold in memory:
			// another replica wrote it into the shared directory. Adopt it
			// if its lease allows, rather than truncating its checkpoints.
			m.mu.Unlock()
			if loaded, err := m.adoptJournal(path); err != nil {
				return nil, false, fmt.Errorf("jobs: adopt %s: %w", id, err)
			} else if !loaded {
				return nil, false, ErrLeaseHeld
			}
			m.mu.Lock()
			j := m.jobs[id]
			m.mu.Unlock()
			if j == nil {
				return nil, false, ErrUnknownJob
			}
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			m.adopted.Add(1)
			m.log.Info("job adopted on submit", "job", id, "state", string(st), "trace", trace)
			if st == StateInterrupted {
				m.resume(j)
			}
			return m.snapshot(j, true), false, nil
		}
		if !m.claimLease(path) {
			m.mu.Unlock()
			return nil, false, ErrLeaseHeld
		}
	}
	j := m.newJob(id, plan, path, trace)
	jl, err := createJournal(j.path)
	if err != nil {
		m.mu.Unlock()
		return nil, false, err
	}
	j.jl = jl
	reqCopy := j.req
	if err := jl.append(record{
		T: recSubmit, ID: id, Key: j.key, Req: &reqCopy,
		Rows: plan.Rows(), Trace: trace, At: m.clock.Now().UnixNano(),
	}); err != nil {
		jl.close()
		m.mu.Unlock()
		m.noteJournalErr("submit", err)
		return nil, false, err
	}
	m.jobs[id] = j
	m.mu.Unlock()
	m.submitted.Add(1)
	m.log.Info("job submitted", "job", id, "key", j.key,
		"op", string(j.req.Op), "rows", plan.Rows(), "trace", trace)
	m.start(j)
	return m.snapshot(j, true), true, nil
}

// resume reopens an interrupted job's journal and starts its runner.
func (m *Manager) resume(j *job) {
	j.mu.Lock()
	if j.state != StateInterrupted {
		j.mu.Unlock()
		return
	}
	if !m.claimLease(j.path) {
		// Another replica adopted the journal between our recovery and
		// this resume; it owns the job now. Ours stays interrupted.
		j.mu.Unlock()
		m.logf("jobs: resume %s: lease held elsewhere", j.id)
		return
	}
	jl, err := appendJournal(j.path)
	if err != nil {
		j.mu.Unlock()
		m.logf("jobs: resume %s: %v", j.id, err)
		return
	}
	j.jl = jl
	j.state = StateQueued
	done := j.done
	j.bump()
	j.mu.Unlock()
	m.resumed.Add(1)
	m.log.Info("job resumed", "job", j.id, "key", j.key,
		"rows_done", done, "rows", j.plan.Rows(), "trace", j.trace)
	m.start(j)
}

// ResumeAll restarts every interrupted job and returns how many it
// started — the post-recovery hook servers call once at boot.
func (m *Manager) ResumeAll() int {
	m.mu.Lock()
	var interrupted []*job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateInterrupted {
			interrupted = append(interrupted, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	sort.Slice(interrupted, func(a, b int) bool { return interrupted[a].id < interrupted[b].id })
	for _, j := range interrupted {
		m.resume(j)
	}
	return len(interrupted)
}

// start launches the runner goroutine for a queued job.
func (m *Manager) start(j *job) {
	j.startOnce.Do(func() {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			select {
			case m.slots <- struct{}{}:
			case <-m.drain:
				m.markInterrupted(j)
				return
			case <-j.ctx.Done():
				m.finishCanceled(j)
				return
			}
			defer func() { <-m.slots }()
			m.runJob(j)
		}()
	})
}

// runJob executes the job's missing rows in order, checkpointing each to
// the journal; completed rows (from a previous run) are never recomputed.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	j.state = StateRunning
	plan := j.plan
	j.bump()
	j.mu.Unlock()
	for i := 0; i < plan.Rows(); i++ {
		j.mu.Lock()
		have := j.rows[i] != nil || j.rowErrs[i] != nil
		j.mu.Unlock()
		if have {
			continue
		}
		select {
		case <-m.drain:
			m.markInterrupted(j)
			return
		case <-j.ctx.Done():
			m.finishCanceled(j)
			return
		default:
		}
		data, attempts, rerr, stopped := m.execRowWithRetry(j, plan, i)
		if stopped {
			if j.ctx.Err() != nil && !m.draining() {
				m.finishCanceled(j)
			} else {
				m.markInterrupted(j)
			}
			return
		}
		rec := record{T: recRow, I: i, Attempts: attempts, At: m.clock.Now().UnixNano()}
		j.mu.Lock()
		if rerr != nil {
			j.rowErrs[i] = rerr
			rec.Error, rec.Panic = rerr.Err, rerr.Panic
			m.rowFailures.Add(1)
		} else {
			j.rows[i] = data
			rec.Data = data
		}
		j.attempts[i] = attempts
		j.done++
		jl := j.jl
		j.bump()
		j.mu.Unlock()
		m.rowsDone.Add(1)
		if err := jl.append(rec); err != nil {
			m.logf("jobs: journal %s row %d: %v", j.id, i, err)
			m.noteJournalErr("row checkpoint", err)
			m.markInterrupted(j)
			return
		}
		// Each durable checkpoint renews the lease, so a live runner's
		// claim on a shared journal directory never expires between rows.
		m.renewLease(j.path)
		if m.log.Enabled(obs.LevelInfo) {
			kv := []any{"job", j.id, "key", j.key, "row", i,
				"attempts", attempts, "trace", j.trace}
			if rerr != nil {
				kv = append(kv, "error", rerr.Err, "panic", rerr.Panic)
			}
			m.log.Info("row checkpointed", kv...)
		}
		if m.hook != nil {
			if err := m.hook(j.id, i); err != nil {
				// Simulated crash: stop dead, no terminal record. The
				// journal holds every completed row; recovery resumes here.
				m.markInterrupted(j)
				return
			}
		}
	}
	m.finishJob(j)
}

// execRowWithRetry runs one row through the executor with the retry
// policy. stopped reports a cancellation/drain (row not settled); rerr is
// the typed marker after retries are exhausted.
func (m *Manager) execRowWithRetry(j *job, plan *engine.RowPlan, i int) (data json.RawMessage, attempts int, rerr *engine.RowError, stopped bool) {
	for attempt := 1; ; attempt++ {
		start := m.clock.Now()
		data, err := m.exec.ExecRow(j.ctx, plan, i)
		m.rowHist.ObserveDuration(m.clock.Now().Sub(start))
		if err == nil {
			return data, attempt, nil, false
		}
		if j.ctx.Err() != nil {
			return nil, attempt, nil, true
		}
		if attempt >= m.retry.MaxAttempts {
			var pe *engine.PanicError
			m.log.Warn("row failed, retries exhausted", "job", j.id, "key", j.key,
				"row", i, "attempts", attempt, "error", err.Error(),
				"panic", errors.As(err, &pe), "trace", j.trace)
			return nil, attempt, &engine.RowError{
				Row: i, Err: err.Error(), Panic: errors.As(err, &pe),
			}, false
		}
		m.rowRetries.Add(1)
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		delay := m.retry.Delay(j.key, i, attempt)
		m.log.Warn("row retry", "job", j.id, "key", j.key, "row", i,
			"attempt", attempt, "delay", delay, "error", err.Error(),
			"trace", j.trace)
		if m.sleepRetry(j, delay) != nil {
			return nil, attempt, nil, true
		}
	}
}

// sleepRetry is the backoff sleep, interruptible by job cancellation AND
// by a drain: a parked retry may be arbitrarily long, and shutdown must
// not wait it out — the un-checkpointed row simply replays (with the same
// deterministic delays) after recovery.
func (m *Manager) sleepRetry(j *job, d time.Duration) error {
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	go func() {
		select {
		case <-m.drain:
			cancel()
		case <-ctx.Done():
		}
	}()
	return m.clock.Sleep(ctx, d)
}

// finishJob assembles the result, journals the terminal record, and
// settles the job as done or degraded.
func (m *Manager) finishJob(j *job) {
	j.mu.Lock()
	markers := j.markers()
	res, err := j.plan.Assemble(j.rows, markers)
	if err != nil {
		// Assembly of journaled payloads cannot fail unless the journal
		// was corrupted in flight; keep the job resumable rather than
		// inventing a terminal state.
		j.mu.Unlock()
		m.logf("jobs: assemble %s: %v", j.id, err)
		m.markInterrupted(j)
		return
	}
	state := StateDone
	if len(markers) > 0 {
		state = StateDegraded
	}
	j.result = res
	j.state = state
	j.finished = m.clock.Now()
	jl := j.jl
	j.bump()
	j.mu.Unlock()
	if err := jl.append(record{T: recDone, Status: string(state), At: m.clock.Now().UnixNano()}); err != nil {
		m.logf("jobs: journal %s terminal: %v", j.id, err)
		m.noteJournalErr("terminal record", err)
	}
	jl.close()
	m.releaseLease(j.path)
	if state == StateDone {
		m.completed.Add(1)
		m.log.Info("job done", "job", j.id, "key", j.key,
			"rows", len(j.rows), "trace", j.trace)
		if p, ok := m.exec.(cachePrimer); ok {
			p.Prime(j.key, res)
		}
	} else {
		m.degradedN.Add(1)
		m.log.Warn("job degraded", "job", j.id, "key", j.key,
			"rows", len(j.rows), "rows_failed", len(markers), "trace", j.trace)
	}
	j.cancel()
	close(j.doneCh)
}

// finishCanceled settles a canceled job with a terminal record.
func (m *Manager) finishCanceled(j *job) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = StateCanceled
	j.finished = m.clock.Now()
	jl := j.jl
	j.bump()
	j.mu.Unlock()
	if jl != nil {
		if err := jl.append(record{T: recDone, Status: string(StateCanceled), At: m.clock.Now().UnixNano()}); err != nil {
			m.logf("jobs: journal %s cancel: %v", j.id, err)
			m.noteJournalErr("cancel record", err)
		}
		jl.close()
	}
	m.releaseLease(j.path)
	m.canceledN.Add(1)
	m.log.Info("job canceled", "job", j.id, "key", j.key, "trace", j.trace)
	j.cancel()
	close(j.doneCh)
}

// markInterrupted checkpoints a job stopped by drain or simulated crash:
// no terminal record, journal closed, resumable later.
func (m *Manager) markInterrupted(j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() || j.state == StateInterrupted {
		return
	}
	j.state = StateInterrupted
	if j.jl != nil {
		j.jl.close()
	}
	// A drained job's journal is a clean handoff: release the lease so a
	// surviving replica's ClaimStale can adopt it immediately instead of
	// waiting out the TTL.
	if m.draining() {
		m.releaseLease(j.path)
	}
	m.log.Info("job interrupted", "job", j.id, "key", j.key,
		"rows_done", j.done, "rows", len(j.rows), "trace", j.trace)
	// Re-arm so a later resume can start a fresh runner.
	j.cancel()
	j.startOnce = sync.Once{}
	j.ctx, j.cancel = context.WithCancel(obs.WithTraceID(m.hardCtx, j.trace))
	j.bump()
}

// draining reports whether Close has begun.
func (m *Manager) draining() bool {
	select {
	case <-m.drain:
		return true
	default:
		return false
	}
}

// Cancel stops a job. Running jobs abort their current row; queued or
// interrupted jobs settle immediately. Terminal jobs are returned as-is.
func (m *Manager) Cancel(id string) (*Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	st := j.state
	cancel := j.cancel
	j.canceled = st == StateInterrupted || st == StateQueued || st == StateRunning
	j.mu.Unlock()
	switch st {
	case StateInterrupted:
		// No runner to observe the cancel; settle it here with an
		// append-mode journal for the terminal record.
		if jl, err := appendJournal(j.path); err == nil {
			j.mu.Lock()
			j.jl = jl
			j.mu.Unlock()
		}
		m.finishCanceled(j)
	case StateQueued, StateRunning:
		cancel()
	}
	return m.snapshot(j, true), nil
}

// Get returns one job's snapshot with its rows and (if finished) result.
func (m *Manager) Get(id string) (*Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	return m.snapshot(j, true), nil
}

// List returns lightweight snapshots (no rows, no results), sorted by
// creation time then id for a stable order.
func (m *Manager) List() []*Snapshot {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]*Snapshot, 0, len(js))
	for _, j := range js {
		out = append(out, m.snapshot(j, false))
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// StreamRows streams a job's settled rows to emit in row order, starting
// at row from — the resume offset: a client that already holds n rows
// passes n and receives only what it is missing. Rows already
// checkpointed replay immediately from memory (their journaled bytes
// verbatim); later rows are emitted as the runner checkpoints them. The
// call returns the job's snapshot once every remaining row has been
// emitted and the job is terminal, or early — with fewer rows — when the
// job is interrupted (drain or simulated crash closed its journal), so a
// client reconnects with its new offset after the next resume. An emit
// error (the client's connection died) aborts the stream with that error.
func (m *Manager) StreamRows(ctx context.Context, id string, from int, emit func(RowStatus) error) (*Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if from < 0 {
		from = 0
	}
	next := from
	for {
		j.mu.Lock()
		var pending []RowStatus
		// Rows checkpoint strictly in row order, so everything settled at
		// or beyond next is a contiguous run.
		for next < len(j.rows) && (j.rows[next] != nil || j.rowErrs[next] != nil) {
			pending = append(pending, j.rowStatus(next))
			next++
		}
		st := j.state
		upd := j.updated
		j.mu.Unlock()
		for _, rs := range pending {
			if err := emit(rs); err != nil {
				return nil, err
			}
		}
		if next >= len(j.rows) && st.terminal() {
			return m.snapshot(j, true), nil
		}
		if st == StateInterrupted || st == StateCanceled {
			// No runner will settle further rows on this journal; end the
			// stream early with the current snapshot so the client can
			// reconnect with Last-Row after a resume.
			return m.snapshot(j, true), nil
		}
		select {
		case <-upd:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Wait blocks until the job reaches a terminal state or the context
// expires, then returns its snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (*Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	select {
	case <-j.doneCh:
		return m.snapshot(j, true), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close drains the manager: no new submissions, runners stop at their
// next row boundary (checkpointing, not discarding, completed rows), and
// jobs still waiting become interrupted for the next process to resume.
// If the context expires first, in-flight rows are canceled hard.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.drainOnce.Do(func() {
		m.log.Info("manager draining", "depth_running", m.Depth().Running)
		close(m.drain)
	})
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.hardStop()
		<-done
	}
	m.hardStop()
	return err
}

// Depth is the queue-depth gauge set surfaced on /healthz and /metrics.
type Depth struct {
	Running     int `json:"running"`
	Queued      int `json:"queued"`
	Interrupted int `json:"interrupted"`
	Done        int `json:"done"`
	Degraded    int `json:"degraded"`
	Canceled    int `json:"canceled"`
}

// Depth counts jobs by state.
func (m *Manager) Depth() Depth {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	var d Depth
	for _, j := range js {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case StateRunning:
			d.Running++
		case StateQueued:
			d.Queued++
		case StateInterrupted:
			d.Interrupted++
		case StateDone:
			d.Done++
		case StateDegraded:
			d.Degraded++
		case StateCanceled:
			d.Canceled++
		}
	}
	return d
}

// Metrics is a point-in-time snapshot of the manager's counters.
type Metrics struct {
	// Submitted counts jobs accepted by Submit (new runs only).
	Submitted uint64
	// Completed counts jobs finishing with every row successful.
	Completed uint64
	// Degraded counts jobs finishing with at least one failed row.
	Degraded uint64
	// Canceled counts canceled jobs.
	Canceled uint64
	// Recovered counts incomplete jobs reloaded from journals at Open.
	Recovered uint64
	// Resumed counts interrupted jobs restarted by ResumeAll/Submit.
	Resumed uint64
	// RowsDone counts rows checkpointed (payloads and markers).
	RowsDone uint64
	// RowRetries counts row attempts beyond the first.
	RowRetries uint64
	// RowFailures counts rows that exhausted retries.
	RowFailures uint64
	// Adopted counts journals claimed from other replicas by ClaimStale
	// or an adopting Submit.
	Adopted uint64
	// JournalErrors counts journal append/fsync failures observed.
	JournalErrors uint64
	// Depth is the current per-state job census.
	Depth Depth
}

// Metrics snapshots the counters.
func (m *Manager) Metrics() Metrics {
	return Metrics{
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Degraded:      m.degradedN.Load(),
		Canceled:      m.canceledN.Load(),
		Recovered:     m.recovered.Load(),
		Resumed:       m.resumed.Load(),
		RowsDone:      m.rowsDone.Load(),
		RowRetries:    m.rowRetries.Load(),
		RowFailures:   m.rowFailures.Load(),
		Adopted:       m.adopted.Load(),
		JournalErrors: m.journalErrs.Load(),
		Depth:         m.Depth(),
	}
}

// RowStatus is one row's position in a snapshot.
type RowStatus struct {
	Row      int             `json:"row"`
	Done     bool            `json:"done"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Panic    bool            `json:"panic,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// rowStatus renders one settled row. Callers hold j.mu. The Data bytes
// are the journaled payload verbatim — the same bytes Assemble consumes —
// so a streamed row is byte-identical to the row of the final result.
func (j *job) rowStatus(i int) RowStatus {
	rs := RowStatus{Row: i, Done: true, Attempts: j.attempts[i], Data: j.rows[i]}
	if re := j.rowErrs[i]; re != nil {
		rs.Error, rs.Panic, rs.Data = re.Err, re.Panic, nil
	}
	return rs
}

// Snapshot is a job's externally visible state: status, progress, partial
// rows, and — once terminal — the assembled result.
type Snapshot struct {
	ID        string            `json:"id"`
	Key       string            `json:"key"`
	State     State             `json:"state"`
	Rows      int               `json:"rows"`
	RowsDone  int               `json:"rows_done"`
	RowsError int               `json:"rows_failed"`
	Retries   int               `json:"retries"`
	Created   time.Time         `json:"created"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Request   engine.Request    `json:"request"`
	Partial   []RowStatus       `json:"partial,omitempty"`
	RowErrors []engine.RowError `json:"row_errors,omitempty"`
	Result    *engine.Result    `json:"result,omitempty"`
}

// snapshot renders a job; full snapshots carry partial rows and results.
func (m *Manager) snapshot(j *job, full bool) *Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &Snapshot{
		ID:      j.id,
		Key:     j.key,
		State:   j.state,
		Rows:    len(j.rows),
		Retries: j.retries,
		Created: j.created,
		Request: j.req,
	}
	for i := range j.rows {
		done := j.rows[i] != nil || j.rowErrs[i] != nil
		if done {
			s.RowsDone++
		}
		if j.rowErrs[i] != nil {
			s.RowsError++
		}
		if full && done {
			s.Partial = append(s.Partial, j.rowStatus(i))
		}
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if full {
		s.RowErrors = j.markers()
		s.Result = j.result
	}
	return s
}
