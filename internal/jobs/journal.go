package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"netpowerprop/internal/chaos"
	"netpowerprop/internal/engine"
)

// Typed journal-failure surfaces. A journal append that fails leaves
// the node unable to make durability promises: callers match these
// with errors.Is to distinguish a broken write-ahead log from an
// engine or request failure.
var (
	// ErrJournalWrite marks a failed (or short) journal record write:
	// the record may be partially on disk as a torn tail.
	ErrJournalWrite = errors.New("jobs: journal write failed")
	// ErrJournalSync marks a failed fsync after a record write: the
	// bytes were handed to the kernel but durability is unknown. Per
	// fsync semantics a failed sync poisons the file's dirty state, so
	// the journal must be treated as broken from here on.
	ErrJournalSync = errors.New("jobs: journal fsync failed")
	// ErrJournalDegraded is returned by Submit once any journal append
	// has failed: the manager stops accepting new durable work while
	// compute-only traffic continues.
	ErrJournalDegraded = errors.New("jobs: journal degraded, not accepting new jobs")
)

// The journal is a per-job JSONL write-ahead log. One file per job,
// one record per line, appended and fsynced in order:
//
//	{"t":"submit","id":...,"key":...,"req":{...},"rows":N,"at":...}
//	{"t":"row","i":0,"attempts":1,"data":<row payload>,"at":...}
//	{"t":"row","i":3,"attempts":4,"error":"...","panic":true,"at":...}   (exhausted retries)
//	{"t":"done","status":"done"|"degraded"|"canceled","at":...}
//
// A journal without a terminal "done" record is an interrupted job:
// Recover replays its row records and resumes from the first missing
// row. A torn trailing line (crash mid-append) is discarded; every
// fully written record before it is honored.
type record struct {
	T        string          `json:"t"`
	ID       string          `json:"id,omitempty"`
	Key      string          `json:"key,omitempty"`
	Req      *engine.Request `json:"req,omitempty"`
	Rows     int             `json:"rows,omitempty"`
	I        int             `json:"i,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
	Error    string          `json:"error,omitempty"`
	Panic    bool            `json:"panic,omitempty"`
	Status   string          `json:"status,omitempty"`
	// Trace is the submitting request's trace ID, persisted so a job
	// resumed after a restart still logs under the original trace.
	Trace string `json:"trace,omitempty"`
	// At is the wall-clock append time (UnixNano), informational only:
	// replay ignores it, so journals stay byte-replayable across clock
	// changes.
	At int64 `json:"at,omitempty"`
}

const (
	recSubmit = "submit"
	recRow    = "row"
	recDone   = "done"
)

// journal is an append-only JSONL file. Appends are serialized and
// fsynced so a row completion survives an immediate crash.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// createJournal truncates and opens a fresh journal for a new job run.
func createJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// appendJournal opens an existing journal for resumption.
func appendJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// append writes one record and syncs it to stable storage.
func (j *journal) append(rec record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshal journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("jobs: journal %s is closed", j.path)
	}
	if n, ferr := chaos.FileWrite(chaos.SiteJournalWrite, len(b)); ferr != nil {
		if n > 0 {
			// Injected short write: the prefix really reaches the file,
			// leaving the torn tail recovery must truncate.
			j.f.Write(b[:n])
		}
		return fmt.Errorf("%w: %s: %w", ErrJournalWrite, j.path, ferr)
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("%w: %s: %w", ErrJournalWrite, j.path, err)
	}
	if ferr := chaos.Error(chaos.SiteJournalFsync); ferr != nil {
		return fmt.Errorf("%w: %s: %w", ErrJournalSync, j.path, ferr)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("%w: %s: %w", ErrJournalSync, j.path, err)
	}
	return nil
}

// close closes the underlying file; further appends fail.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// readJournal parses a journal file, tolerating a torn tail: a record is
// durable iff its line is complete (newline-terminated) and parses, and
// reading stops at the first line that is not. cleanOff is the byte
// length of the durable prefix — when torn is set, recovery truncates the
// file there so a resumed run appends onto clean bytes, never onto a
// partial line.
func readJournal(path string) (recs []record, cleanOff int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == nil {
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) != 0 {
				var rec record
				if json.Unmarshal(trimmed, &rec) != nil {
					return recs, cleanOff, true, nil
				}
				recs = append(recs, rec)
			}
			cleanOff += int64(len(line))
			continue
		}
		// EOF with a partial (unterminated) line, or a read error: either
		// way the tail is not durable.
		if len(bytes.TrimSpace(line)) != 0 || rerr != io.EOF {
			torn = true
		}
		return recs, cleanOff, torn, nil
	}
}
