package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netpowerprop/internal/engine"
)

// leaseTestReq is the request every lease test submits: a 3-row sweep.
func leaseTestReq() engine.Request { return engine.Request{Op: engine.OpSweep, Steps: 3} }

// goldenRun computes the uninterrupted single-manager result for the
// lease tests' request — the byte-identity reference.
func goldenRun(t *testing.T) string {
	t.Helper()
	m, err := Open(Options{Dir: t.TempDir(), Exec: newScriptExec(3, nil)})
	if err != nil {
		t.Fatalf("golden Open: %v", err)
	}
	defer m.Close(context.Background())
	snap, _, err := m.Submit(context.Background(), leaseTestReq())
	if err != nil {
		t.Fatalf("golden Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("golden Wait: %v", err)
	}
	return resultJSON(t, final.Result)
}

// interruptAfterRow builds a manager (owner "a") whose job crashes —
// simulated, no lease release — after checkpointing rows 0..row, and
// runs the test request into that state. Returns the journal dir, the
// job id, and the manager (already closed).
func interruptAfterRow(t *testing.T, row int, clock Clock) (dir, id string) {
	t.Helper()
	dir = t.TempDir()
	m, err := Open(Options{
		Dir: dir, Exec: newScriptExec(3, nil), Owner: "a", Clock: clock,
		OnRowCheckpoint: func(id string, r int) error {
			if r == row {
				return errors.New("simulated crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Open A: %v", err)
	}
	snap, _, err := m.Submit(context.Background(), leaseTestReq())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, snap.ID, StateInterrupted)
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close A: %v", err)
	}
	return dir, snap.ID
}

func readLeaseFile(t *testing.T, dir, id string) leaseFile {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, id+".lease"))
	if err != nil {
		t.Fatalf("read lease: %v", err)
	}
	var lf leaseFile
	if err := json.Unmarshal(b, &lf); err != nil {
		t.Fatalf("unmarshal lease: %v", err)
	}
	return lf
}

func writeLeaseFile(t *testing.T, dir, id string, lf leaseFile) {
	t.Helper()
	b, _ := json.Marshal(lf)
	if err := os.WriteFile(filepath.Join(dir, id+".lease"), b, 0o644); err != nil {
		t.Fatalf("write lease: %v", err)
	}
}

func TestLeasesDisabledWritesNoLeaseFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Exec: newScriptExec(3, nil)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close(context.Background())
	snap, _, err := m.Submit(context.Background(), leaseTestReq())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".lease" {
			t.Fatalf("lease file %s written with leases disabled", e.Name())
		}
	}
	if m.ClaimStale() != 0 {
		t.Error("ClaimStale did work with leases disabled")
	}
}

// A journal live-held by another replica is invisible — not loaded at
// Open, not adopted by ClaimStale — until its lease is released, at
// which point the survivor adopts and finishes it without recomputing
// any checkpointed row, byte-identical to an uninterrupted run.
func TestLiveLeaseBlocksAdoptionUntilReleased(t *testing.T) {
	golden := goldenRun(t)
	dir, id := interruptAfterRow(t, 0, nil)
	// Re-stamp the lease as another replica's live claim.
	writeLeaseFile(t, dir, id, leaseFile{
		Owner: "other", Expires: time.Now().Add(time.Hour).UnixNano(),
	})

	execB := newScriptExec(3, nil)
	b, err := Open(Options{Dir: dir, Exec: execB, Owner: "b"})
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	defer b.Close(context.Background())
	if _, err := b.Get(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Get = %v, want ErrUnknownJob while lease is live-held", err)
	}
	if n := b.ClaimStale(); n != 0 {
		t.Fatalf("ClaimStale = %d against a live lease, want 0", n)
	}
	// Submitting the identical request must not truncate the held journal.
	if _, _, err := b.Submit(context.Background(), leaseTestReq()); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("Submit = %v, want ErrLeaseHeld", err)
	}

	// The other replica hands off.
	writeLeaseFile(t, dir, id, leaseFile{Owner: "other", Released: true})
	if n := b.ClaimStale(); n != 1 {
		t.Fatalf("ClaimStale = %d after release, want 1", n)
	}
	final, err := b.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if got := resultJSON(t, final.Result); got != golden {
		t.Errorf("adopted result differs from uninterrupted run:\n got: %s\nwant: %s", got, golden)
	}
	if n := execB.attempts(0); n != 0 {
		t.Errorf("row 0 recomputed %d times after adoption, want 0", n)
	}
	if execB.attempts(1) != 1 || execB.attempts(2) != 1 {
		t.Errorf("rows 1,2 attempts = %d,%d, want 1,1", execB.attempts(1), execB.attempts(2))
	}
	if b.Metrics().Adopted != 1 {
		t.Errorf("Adopted = %d, want 1", b.Metrics().Adopted)
	}
}

// A replica restarting under its own name reclaims its journals at Open
// without waiting out its own unexpired lease, and resumes without
// recomputing checkpointed rows.
func TestRestartReclaimsOwnJournals(t *testing.T) {
	golden := goldenRun(t)
	dir, id := interruptAfterRow(t, 0, nil)
	if lf := readLeaseFile(t, dir, id); lf.Owner != "a" || lf.Released {
		t.Fatalf("crash left lease %+v, want live claim by a", lf)
	}

	execA2 := newScriptExec(3, nil)
	a2, err := Open(Options{Dir: dir, Exec: execA2, Owner: "a"})
	if err != nil {
		t.Fatalf("Open A2: %v", err)
	}
	defer a2.Close(context.Background())
	if n := a2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	final, err := a2.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := resultJSON(t, final.Result); got != golden {
		t.Errorf("restarted result differs:\n got: %s\nwant: %s", got, golden)
	}
	if n := execA2.attempts(0); n != 0 {
		t.Errorf("row 0 recomputed %d times on restart, want 0", n)
	}
}

// A crashed replica's lease expires by TTL, after which a survivor
// adopts the journal.
func TestExpiredLeaseIsAdopted(t *testing.T) {
	// A runs on a fake clock pinned years in the past, so its lease
	// expiry is long gone by the survivor's real clock.
	dir, id := interruptAfterRow(t, 0, newFakeClock())

	execB := newScriptExec(3, nil)
	b, err := Open(Options{Dir: dir, Exec: execB, Owner: "b"})
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	defer b.Close(context.Background())
	// Open's recovery sweep already adopts expired leases.
	snap, err := b.Get(id)
	if err != nil {
		t.Fatalf("Get after Open: %v (expired lease not adopted)", err)
	}
	if snap.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted", snap.State)
	}
	if lf := readLeaseFile(t, dir, id); lf.Owner != "b" {
		t.Errorf("lease owner = %q after adoption, want b", lf.Owner)
	}
	if n := b.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	if final, err := b.Wait(context.Background(), id); err != nil || final.State != StateDone {
		t.Fatalf("Wait = %v/%v, want done", final, err)
	}
	if n := execB.attempts(0); n != 0 {
		t.Errorf("row 0 recomputed %d times, want 0", n)
	}
}

// gatedExec blocks configured rows until the test opens their gate, so
// a drain can be interleaved at an exact row boundary.
type gatedExec struct {
	*scriptExec
	mu    sync.Mutex
	gates map[int]chan struct{}
}

func (g *gatedExec) ExecRow(ctx context.Context, p *engine.RowPlan, i int) (json.RawMessage, error) {
	g.mu.Lock()
	ch := g.gates[i]
	g.mu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.scriptExec.ExecRow(ctx, p, i)
}

// Drain handoff: the draining replica finishes its in-flight row,
// checkpoints it, releases the lease, and a survivor adopts the journal
// immediately — no TTL wait — finishing only the missing rows.
func TestDrainHandoffReleasesLease(t *testing.T) {
	golden := goldenRun(t)
	dir := t.TempDir()
	row0 := make(chan struct{})
	gate1 := make(chan struct{})
	exec := &gatedExec{
		scriptExec: newScriptExec(3, nil),
		gates:      map[int]chan struct{}{1: gate1},
	}
	var once sync.Once
	a, err := Open(Options{
		Dir: dir, Exec: exec, Owner: "a",
		OnRowCheckpoint: func(id string, r int) error {
			if r == 0 {
				once.Do(func() { close(row0) })
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Open A: %v", err)
	}
	snap, _, err := a.Submit(context.Background(), leaseTestReq())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-row0 // row 0 durable; runner is now blocked on row 1's gate
	closed := make(chan error, 1)
	go func() { closed <- a.Close(context.Background()) }()
	// Wait for the drain signal to be visible, then let row 1 finish:
	// the runner must checkpoint it before stopping at the row-2 boundary.
	deadline := time.Now().Add(5 * time.Second)
	for !a.draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate1)
	if err := <-closed; err != nil {
		t.Fatalf("Close A: %v", err)
	}
	if lf := readLeaseFile(t, dir, snap.ID); !lf.Released {
		t.Fatalf("drained lease = %+v, want released handoff", lf)
	}

	execB := newScriptExec(3, nil)
	b, err := Open(Options{Dir: dir, Exec: execB, Owner: "b"})
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	defer b.Close(context.Background())
	if n := b.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	final, err := b.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if got := resultJSON(t, final.Result); got != golden {
		t.Errorf("handoff result differs:\n got: %s\nwant: %s", got, golden)
	}
	// The draining replica checkpointed rows 0 and 1; the survivor
	// computes only row 2.
	if execB.attempts(0) != 0 || execB.attempts(1) != 0 {
		t.Errorf("survivor recomputed rows 0/1: %d,%d attempts", execB.attempts(0), execB.attempts(1))
	}
	if n := execB.attempts(2); n != 1 {
		t.Errorf("row 2 attempts = %d, want 1", n)
	}
}
