package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"netpowerprop/internal/obs"
)

// linesWith filters a sink's lines to those containing every needle.
func linesWith(lines []string, needles ...string) []string {
	var out []string
outer:
	for _, l := range lines {
		for _, n := range needles {
			if !strings.Contains(l, n) {
				continue outer
			}
		}
		out = append(out, l)
	}
	return out
}

// TestRetryEventsCarrySubmitTrace drives a flaky row through retries with
// a sink-backed logger and checks every lifecycle line — submit, retry,
// checkpoint, done — carries the submitting request's trace ID.
func TestRetryEventsCarrySubmitTrace(t *testing.T) {
	dir := t.TempDir()
	var sink obs.MemSink
	exec := newScriptExec(2, map[int]int{1: 2}) // row 1 fails twice, then succeeds
	m, _ := newManager(t, dir, Options{
		Exec:   exec,
		Retry:  RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 3},
		Logger: obs.New(&sink, obs.LevelDebug),
	})

	ctx := obs.WithTraceID(context.Background(), "trace-retry-1")
	snap, _, err := m.Submit(ctx, sweepReq(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, snap.ID, StateDone)

	lines := sink.Lines()
	for _, event := range []string{
		`msg="job submitted"`, `msg="row retry"`, `msg="row checkpointed"`, `msg="job done"`,
	} {
		matched := linesWith(lines, event, "trace=trace-retry-1")
		if len(matched) == 0 {
			t.Errorf("no %s line carrying trace=trace-retry-1; lines:\n%s",
				event, strings.Join(lines, "\n"))
		}
	}
	retries := linesWith(lines, `msg="row retry"`, "row=1")
	if len(retries) != 2 {
		t.Errorf("got %d retry lines for row 1, want 2:\n%s", len(retries), strings.Join(retries, "\n"))
	}
	for _, l := range retries {
		for _, want := range []string{"job=" + snap.ID, "attempt=", "delay=", "error="} {
			if !strings.Contains(l, want) {
				t.Errorf("retry line %q missing %q", l, want)
			}
		}
	}
}

// TestResumeEventsCarryOriginalTrace crashes a job mid-run (checkpoint
// hook), reopens the journal directory in a second manager with a fresh
// sink, and checks the recovery/resume/done lines still carry the trace
// the job was originally submitted under — the journal persists it.
func TestResumeEventsCarryOriginalTrace(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated crash")
	m1, _ := newManager(t, dir, Options{
		Exec: newScriptExec(3, nil),
		OnRowCheckpoint: func(id string, row int) error {
			if row == 0 {
				return boom
			}
			return nil
		},
	})
	snap, _, err := m1.Submit(obs.WithTraceID(context.Background(), "trace-resume-7"), sweepReq(2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m1, snap.ID, StateInterrupted)
	if err := m1.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var sink obs.MemSink
	m2, _ := newManager(t, dir, Options{
		Exec:   newScriptExec(3, nil),
		Logger: obs.New(&sink, obs.LevelDebug),
	})
	if n := m2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll resumed %d jobs, want 1", n)
	}
	waitState(t, m2, snap.ID, StateDone)

	lines := sink.Lines()
	for _, event := range []string{
		`msg="job recovered"`, `msg="job resumed"`, `msg="row checkpointed"`, `msg="job done"`,
	} {
		if len(linesWith(lines, event, "trace=trace-resume-7")) == 0 {
			t.Errorf("no %s line carrying the original trace; lines:\n%s",
				event, strings.Join(lines, "\n"))
		}
	}
}
