package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// A live stream delivers every row in order, with bytes identical to the
// partial rows the snapshot reports, and returns the terminal snapshot.
func TestStreamRowsLive(t *testing.T) {
	m, _ := newManager(t, t.TempDir(), Options{})
	snap, _, err := m.Submit(context.Background(), sweepReq(6))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var rows []RowStatus
	final, err := m.StreamRows(ctx, snap.ID, 0, func(rs RowStatus) error {
		rows = append(rows, rs)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamRows: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s, want done", final.State)
	}
	if len(rows) != 7 {
		t.Fatalf("streamed %d rows, want 7", len(rows))
	}
	for i, rs := range rows {
		if rs.Row != i {
			t.Fatalf("row order %d at position %d", rs.Row, i)
		}
		if !bytes.Equal(rs.Data, final.Partial[i].Data) {
			t.Errorf("row %d bytes differ from snapshot partial", i)
		}
	}
}

// A resume offset replays only the missing suffix.
func TestStreamRowsOffset(t *testing.T) {
	m, _ := newManager(t, t.TempDir(), Options{})
	snap, _, err := m.Submit(context.Background(), sweepReq(6))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, snap.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var rows []RowStatus
	final, err := m.StreamRows(ctx, snap.ID, 3, func(rs RowStatus) error {
		rows = append(rows, rs)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamRows: %v", err)
	}
	if len(rows) != 4 || rows[0].Row != 3 || rows[3].Row != 6 {
		t.Fatalf("offset stream rows = %+v, want rows 3..6", rows)
	}
	if final.State != StateDone {
		t.Errorf("final state = %s, want done", final.State)
	}
	// An offset at (or past) the end emits nothing and still settles.
	n := 0
	if _, err := m.StreamRows(ctx, snap.ID, 7, func(RowStatus) error { n++; return nil }); err != nil {
		t.Fatalf("StreamRows past end: %v", err)
	}
	if n != 0 {
		t.Errorf("stream past end emitted %d rows", n)
	}
}

// A stream over a job interrupted mid-run (simulated crash) ends early
// with the interrupted snapshot; reconnecting with the offset after the
// resume delivers exactly the missing rows, byte-identical to an
// uninterrupted run.
func TestStreamRowsInterruptedAndResume(t *testing.T) {
	dir := t.TempDir()
	killed := false
	m, _ := newManager(t, dir, Options{
		OnRowCheckpoint: func(id string, row int) error {
			if row == 2 && !killed {
				killed = true
				return errors.New("simulated crash")
			}
			return nil
		},
	})
	snap, _, err := m.Submit(context.Background(), sweepReq(6))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []RowStatus
	early, err := m.StreamRows(ctx, snap.ID, 0, func(rs RowStatus) error {
		got = append(got, rs)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamRows: %v", err)
	}
	if early.State != StateInterrupted {
		t.Fatalf("early snapshot state = %s, want interrupted", early.State)
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d rows before the crash, want 3", len(got))
	}
	// Resubmit resumes the interrupted job; reconnect at the offset.
	if _, created, err := m.Submit(context.Background(), sweepReq(6)); err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	final, err := m.StreamRows(ctx, snap.ID, len(got), func(rs RowStatus) error {
		got = append(got, rs)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamRows resume: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s, want done", final.State)
	}
	if len(got) != 7 {
		t.Fatalf("total streamed rows = %d, want 7", len(got))
	}
	for i, rs := range got {
		if rs.Row != i {
			t.Fatalf("row order %d at position %d", rs.Row, i)
		}
		if !bytes.Equal(rs.Data, final.Partial[i].Data) {
			t.Errorf("row %d bytes differ after kill-and-resume", i)
		}
	}
}

// An emit failure (dead client) aborts the stream with that error.
func TestStreamRowsEmitError(t *testing.T) {
	m, _ := newManager(t, t.TempDir(), Options{})
	snap, _, err := m.Submit(context.Background(), sweepReq(4))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	boom := fmt.Errorf("client went away")
	if _, err := m.StreamRows(ctx, snap.ID, 0, func(rs RowStatus) error {
		if rs.Row == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("StreamRows = %v, want emit error", err)
	}
}

// A stream waiting for rows honors its context.
func TestStreamRowsContext(t *testing.T) {
	release := make(chan struct{})
	var once bool
	m, _ := newManager(t, t.TempDir(), Options{
		OnRowCheckpoint: func(id string, row int) error {
			if row == 1 && !once {
				once = true
				<-release
			}
			return nil
		},
	})
	defer close(release)
	snap, _, err := m.Submit(context.Background(), sweepReq(6))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = m.StreamRows(ctx, snap.ID, 0, func(RowStatus) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StreamRows = %v, want DeadlineExceeded", err)
	}
}

func TestStreamRowsUnknownJob(t *testing.T) {
	m, _ := newManager(t, t.TempDir(), Options{})
	if _, err := m.StreamRows(context.Background(), "nope", 0, func(RowStatus) error { return nil }); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("StreamRows = %v, want ErrUnknownJob", err)
	}
}
