package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock advances instantly: Sleep records the requested duration and
// moves Now forward, so tests assert exact backoff schedules without
// waiting them out.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

func (c *fakeClock) slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}

func TestRetryDelayWithoutJitterDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Base: 100 * time.Millisecond, Max: 1 * time.Second}.withDefaults()
	p.Jitter = 0
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay("k", 0, i+1); got != w {
			t.Errorf("Delay(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
	// Absurd attempt numbers must not overflow past the cap.
	if got := p.Delay("k", 0, 500); got != time.Second {
		t.Errorf("Delay(attempt 500) = %v, want %v", got, time.Second)
	}
}

func TestRetryDelayJitterIsDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Seed: 42, Jitter: 0.5}.withDefaults()
	for row := 0; row < 4; row++ {
		for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
			d1 := p.Delay("some-key", row, attempt)
			d2 := p.Delay("some-key", row, attempt)
			if d1 != d2 {
				t.Fatalf("Delay(row %d, attempt %d) not deterministic: %v != %v", row, attempt, d1, d2)
			}
			base := RetryPolicy{Seed: p.Seed, MaxAttempts: p.MaxAttempts, Base: p.Base, Max: p.Max}.Delay("some-key", row, attempt)
			if d1 < base || float64(d1) >= float64(base)*(1+p.Jitter)+1 {
				t.Errorf("Delay(row %d, attempt %d) = %v outside [%v, %v)", row, attempt, d1, base, time.Duration(float64(base)*1.5))
			}
		}
	}
}

func TestRetryDelayVariesAcrossKeysRowsSeeds(t *testing.T) {
	p := RetryPolicy{Seed: 1, Jitter: 1}.withDefaults()
	base := p.Delay("key-a", 0, 1)
	distinct := false
	for _, d := range []time.Duration{
		p.Delay("key-b", 0, 1),
		p.Delay("key-a", 1, 1),
		RetryPolicy{Seed: 2, Jitter: 1}.withDefaults().Delay("key-a", 0, 1),
	} {
		if d != base {
			distinct = true
		}
	}
	if !distinct {
		t.Error("jitter identical across keys, rows, and seeds; hash not mixing inputs")
	}
}

func TestRetryDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 4 || p.Base != 100*time.Millisecond || p.Max != 5*time.Second {
		t.Errorf("unexpected defaults: %+v", p)
	}
}
