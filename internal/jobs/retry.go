package jobs

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Clock abstracts time for the retry machinery so tests can assert exact
// backoff schedules without sleeping.
type Clock interface {
	// Now is the current time (journal timestamps, job bookkeeping).
	Now() time.Time
	// Sleep blocks for d or until the context is done, returning the
	// context's error in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryPolicy is the per-row retry schedule: exponential backoff with
// deterministic, seeded jitter. The jitter for a given (seed, job key,
// row, attempt) tuple is a pure hash, so two runs of the same job — or a
// resumed run replaying a retried row — sleep the identical durations.
type RetryPolicy struct {
	// MaxAttempts is the total tries per row before the row degrades into
	// a typed error marker (default 4; 1 disables retries).
	MaxAttempts int
	// Base is the first backoff delay (default 100ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Jitter scales the deterministic jitter: the delay is multiplied by
	// a factor in [1, 1+Jitter). Zero selects the default 0.5; negative
	// disables jitter entirely.
	Jitter float64
	// Seed perturbs the jitter hash so fleets of processes retrying the
	// same key do not thunder in lockstep.
	Seed uint64
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Delay is the backoff before retry number attempt (attempt 1 is the
// delay after the first failure) of the given row. Pure function of the
// policy, key, row, and attempt: deterministic across runs and resumes.
func (p RetryPolicy) Delay(key string, row, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Max || d < 0 {
			d = p.Max
			break
		}
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter <= 0 {
		return d
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], p.Seed)
	h.Write(buf[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(buf[:], uint64(row))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	// 53 high bits → uniform float in [0,1).
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(d) * (1 + p.Jitter*u))
}
