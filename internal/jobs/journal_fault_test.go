package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"netpowerprop/internal/chaos"
	"netpowerprop/internal/engine"
)

func armChaos(t *testing.T, spec string) {
	t.Helper()
	p, err := chaos.Parse(spec)
	if err != nil {
		t.Fatalf("chaos.Parse(%q): %v", spec, err)
	}
	chaos.Arm(p)
	t.Cleanup(func() {
		chaos.Disarm()
		chaos.ResetCounts()
	})
}

// An injected fsync failure on a row checkpoint must surface as the
// typed ErrJournalSync, interrupt the job, flip the manager into
// journal-degraded mode (new Submits refused with ErrJournalDegraded),
// and still recover on restart: the resumed run is byte-identical to an
// uninterrupted one with no checkpointed row recomputed.
func TestJournalFsyncFaultDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(6)

	refEng := engine.New(engine.Options{})
	ref, _, err := refEng.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("reference Do: %v", err)
	}

	// Fsync hit 0 is the submit record; rows are hits 1..7. Fail hit 4
	// (row 3's checkpoint), once.
	armChaos(t, "seed=1;site=jobs.journal.fsync kind=fsyncfail count=1 after=4")
	m1, _ := newManager(t, dir, Options{})
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m1, snap.ID, StateInterrupted)

	jerr := m1.JournalErr()
	if !errors.Is(jerr, ErrJournalSync) {
		t.Fatalf("JournalErr = %v, want ErrJournalSync", jerr)
	}
	if !errors.Is(jerr, chaos.ErrInjected) {
		t.Fatalf("JournalErr = %v, want chaos.ErrInjected in chain", jerr)
	}
	if _, _, err := m1.Submit(context.Background(), sweepReq(3)); !errors.Is(err, ErrJournalDegraded) {
		t.Fatalf("Submit while degraded = %v, want ErrJournalDegraded", err)
	}
	if got := m1.Metrics().JournalErrors; got != 1 {
		t.Fatalf("JournalErrors = %d, want 1", got)
	}

	// Restart without chaos: the journal replays and the job finishes
	// byte-identically, skipping every checkpointed row.
	chaos.Disarm()
	m2, _ := newManager(t, dir, Options{})
	if m2.JournalErr() != nil {
		t.Fatalf("fresh manager inherited journal degradation: %v", m2.JournalErr())
	}
	if n := m2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	final, err := m2.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, ref); got != want {
		t.Errorf("recovered result differs:\n got: %s\nwant: %s", got, want)
	}
	if records, distinct := journalRowRecords(t, dir, snap.ID); records != 7 || distinct != 7 {
		t.Errorf("journal has %d row records over %d rows, want 7 over 7", records, distinct)
	}
}

// An injected short write leaves a torn tail; recovery truncates it and
// recomputes only the torn row, so the journal still ends with exactly
// one record per row.
func TestJournalShortWriteLeavesTornTailAndRecovers(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(6)

	// Write hit 0 is the submit record; tear row 2's checkpoint (hit 3).
	armChaos(t, "seed=1;site=jobs.journal.write kind=shortwrite count=1 after=3")
	m1, _ := newManager(t, dir, Options{})
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m1, snap.ID, StateInterrupted)
	if jerr := m1.JournalErr(); !errors.Is(jerr, ErrJournalWrite) {
		t.Fatalf("JournalErr = %v, want ErrJournalWrite", jerr)
	}

	chaos.Disarm()
	m2, _ := newManager(t, dir, Options{})
	if n := m2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	final, err := m2.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if records, distinct := journalRowRecords(t, dir, snap.ID); records != 7 || distinct != 7 {
		t.Errorf("journal has %d row records over %d rows, want 7 over 7", records, distinct)
	}
}

// An injected ENOSPC on the submit record itself must refuse the job
// with the typed write error and degrade the manager.
func TestJournalENOSPCOnSubmitRefusesJob(t *testing.T) {
	dir := t.TempDir()
	armChaos(t, "seed=1;site=jobs.journal.write kind=enospc count=1")
	m, _ := newManager(t, dir, Options{})
	_, _, err := m.Submit(context.Background(), sweepReq(4))
	if !errors.Is(err, ErrJournalWrite) {
		t.Fatalf("Submit = %v, want ErrJournalWrite", err)
	}
	if _, _, err := m.Submit(context.Background(), sweepReq(5)); !errors.Is(err, ErrJournalDegraded) {
		t.Fatalf("second Submit = %v, want ErrJournalDegraded", err)
	}
}

// A degraded journal must refuse only genuinely NEW work: re-submitting
// an already-accepted (here: finished) job needs no journal write, so it
// still returns the existing snapshot idempotently instead of a 503.
func TestJournalDegradedStillServesKnownJobResubmit(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(4)
	m, _ := newManager(t, dir, Options{})
	snap, created, err := m.Submit(context.Background(), req)
	if err != nil || !created {
		t.Fatalf("Submit = (created=%v, %v), want fresh job", created, err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	m.noteJournalErr("test", fmt.Errorf("%w: injected", ErrJournalSync))
	if m.JournalErr() == nil {
		t.Fatal("manager did not latch the journal error")
	}
	got, created2, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("re-submit of finished job while degraded = %v, want its snapshot", err)
	}
	if created2 || got.ID != snap.ID || got.State != StateDone {
		t.Fatalf("re-submit = (id=%s state=%s created=%v), want existing done job %s", got.ID, got.State, created2, snap.ID)
	}
	// New work is still refused.
	if _, _, err := m.Submit(context.Background(), sweepReq(9)); !errors.Is(err, ErrJournalDegraded) {
		t.Fatalf("new Submit while degraded = %v, want ErrJournalDegraded", err)
	}
}
