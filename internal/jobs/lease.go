package jobs

// Owner leases make a journal directory shareable between replicas. Each
// journal <id>.jsonl gets a sibling <id>.lease naming the replica that
// may append to it and when that claim expires; a replica only loads,
// runs, or resumes journals it holds the lease for, so two processes
// pointed at one -jobdir never double-run a job. The protocol is
// deliberately cooperative fencing, not a distributed lock: writes go
// through an O_EXCL-created temp file plus rename, a claimant re-reads
// after writing to confirm it won, and the journal replay already
// tolerates duplicate row records ("first write wins"), so the worst
// case of a lost race is wasted recompute, never a corrupted result.
//
// Lifecycle: Submit and resume claim; every row checkpoint renews;
// drain (markInterrupted) and terminal states release with a tombstone
// (Released=true) so survivors can adopt the journal immediately
// instead of waiting out the TTL; a crash leaves the lease to expire.
// ClaimStale is the adoption sweep replicas run periodically: it scans
// for journals whose lease is missing, released, or expired, claims
// them, replays them, and resumes the interrupted ones from their last
// checkpointed row. Options.Owner == "" disables all of it — no lease
// files are written or consulted, preserving single-node behavior.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"netpowerprop/internal/chaos"
)

// leaseFile is the on-disk lease record.
type leaseFile struct {
	// Owner is the claiming replica's stable name (its cluster address).
	Owner string `json:"owner"`
	// Expires is the claim's expiry as Unix nanoseconds; a lease past it
	// is stale and adoptable.
	Expires int64 `json:"expires_unix_nano"`
	// Released marks a clean handoff: the owner finished or drained, and
	// the journal is adoptable immediately.
	Released bool `json:"released,omitempty"`
}

// leasePath is the lease sibling of a journal path.
func leasePath(journalPath string) string {
	return strings.TrimSuffix(journalPath, ".jsonl") + ".lease"
}

// leasesEnabled reports whether this manager participates in the lease
// protocol.
func (m *Manager) leasesEnabled() bool { return m.owner != "" }

// readLease loads a journal's lease; ok is false when no lease exists
// (never written, or unreadable — treated as absent, i.e. adoptable).
func (m *Manager) readLease(journalPath string) (lf leaseFile, ok bool) {
	b, err := os.ReadFile(leasePath(journalPath))
	if err != nil {
		return leaseFile{}, false
	}
	if err := json.Unmarshal(b, &lf); err != nil {
		m.logf("jobs: lease %s unreadable: %v", leasePath(journalPath), err)
		return leaseFile{}, false
	}
	return lf, true
}

// heldByOther reports whether another live replica currently owns the
// journal: a lease that exists, is not released, has not expired, and
// names someone else. A replica's own lease never blocks it — after a
// crash-restart under the same name, the process reclaims its journals
// without waiting out its own TTL.
func (m *Manager) heldByOther(journalPath string) bool {
	lf, ok := m.readLease(journalPath)
	if !ok || lf.Released || lf.Owner == m.owner {
		return false
	}
	return lf.Expires > m.clock.Now().UnixNano()
}

// writeLease durably replaces the journal's lease with this manager's
// claim (or release tombstone) via temp file + rename.
func (m *Manager) writeLease(journalPath string, released bool) error {
	lf := leaseFile{
		Owner:    m.owner,
		Expires:  m.clock.Now().Add(m.leaseTTL).UnixNano(),
		Released: released,
	}
	b, err := json.Marshal(lf)
	if err != nil {
		return err
	}
	if ferr := chaos.ErrorPeer(chaos.SiteLeaseWrite, m.owner); ferr != nil {
		return ferr
	}
	path := leasePath(journalPath)
	tmp := fmt.Sprintf("%s.%d.tmp", path, os.Getpid())
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// claimLease attempts to take ownership of a journal. It refuses while
// another replica holds a live lease, then writes its claim and re-reads
// to confirm it won any rename race. Always true with leases disabled.
func (m *Manager) claimLease(journalPath string) bool {
	if !m.leasesEnabled() {
		return true
	}
	if m.heldByOther(journalPath) {
		return false
	}
	if err := m.writeLease(journalPath, false); err != nil {
		m.logf("jobs: claim lease %s: %v", journalPath, err)
		return false
	}
	lf, ok := m.readLease(journalPath)
	return ok && lf.Owner == m.owner && !lf.Released
}

// renewLease extends this manager's claim. Called on every row
// checkpoint, so a live runner's lease never expires between rows.
func (m *Manager) renewLease(journalPath string) {
	if !m.leasesEnabled() {
		return
	}
	if err := m.writeLease(journalPath, false); err != nil {
		m.logf("jobs: renew lease %s: %v", journalPath, err)
	}
}

// releaseLease writes the handoff tombstone: the journal is immediately
// adoptable by any replica. Called on drain and on terminal states.
func (m *Manager) releaseLease(journalPath string) {
	if !m.leasesEnabled() {
		return
	}
	if err := m.writeLease(journalPath, true); err != nil {
		m.logf("jobs: release lease %s: %v", journalPath, err)
	}
}

// adoptJournal is the lease-gated replay used by Open's recovery sweep
// and by ClaimStale: skip journals another live replica holds, claim
// before replaying, and release again right away when the replayed job
// turned out to be terminal (terminal journals need ownership only for
// the replay itself).
func (m *Manager) adoptJournal(path string) (loaded bool, err error) {
	if m.leasesEnabled() {
		if m.heldByOther(path) {
			return false, nil
		}
		if !m.claimLease(path) {
			return false, nil
		}
	}
	id, err := m.recoverFile(path)
	if err != nil {
		return false, err
	}
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j != nil {
		j.mu.Lock()
		terminal := j.state.terminal()
		j.mu.Unlock()
		if terminal {
			m.releaseLease(path)
		}
	}
	return true, nil
}

// ClaimStale is the adoption sweep: scan the shared journal directory
// for jobs this manager does not hold whose lease is missing, released,
// or expired, claim and replay each, and resume the interrupted ones
// from their last checkpointed row. Returns how many journals were
// adopted. Replicas call it periodically (and once after a peer is
// observed dead) so a crashed or drained replica's durable jobs finish
// on a survivor. No-op with leases disabled or after Close.
func (m *Manager) ClaimStale() int {
	if !m.leasesEnabled() {
		return 0
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return 0
	}
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		m.logf("jobs: claim sweep: %v", err)
		return 0
	}
	adopted := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".jsonl")
		m.mu.Lock()
		_, have := m.jobs[id]
		m.mu.Unlock()
		if have {
			continue
		}
		path := filepath.Join(m.dir, e.Name())
		loaded, err := m.adoptJournal(path)
		if err != nil {
			m.logf("jobs: adopting journal %s: %v", path, err)
			continue
		}
		if !loaded {
			continue
		}
		adopted++
		m.adopted.Add(1)
		m.mu.Lock()
		j := m.jobs[id]
		m.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		m.log.Info("journal adopted", "job", id, "state", string(st), "owner", m.owner)
		if st == StateInterrupted {
			m.resume(j)
		}
	}
	return adopted
}
