package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netpowerprop/internal/engine"
)

// sweepReq is the canonical small job: an analytic proportionality sweep
// with steps+1 independent rows, cheap enough to run many times per test.
func sweepReq(steps int) engine.Request {
	return engine.Request{Op: engine.OpSweep, Steps: steps}
}

// newManager opens a manager over a fresh engine in a test temp dir.
func newManager(t *testing.T, dir string, opts Options) (*Manager, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Options{})
	opts.Dir = dir
	if opts.Exec == nil {
		opts.Exec = eng
	}
	opts.Clock = newFakeClock()
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m, eng
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, m *Manager, id string, want State) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if s.State == want {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (at %s)", id, want, s.State)
	return nil
}

// resultJSON renders a result for byte-for-byte comparison.
func resultJSON(t *testing.T, res *engine.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// journalRowRecords counts the row records (and distinct rows) journaled
// for a job — the proof that completed rows were never recomputed.
func journalRowRecords(t *testing.T, dir, id string) (records int, distinct int) {
	t.Helper()
	recs, _, torn, err := readJournal(filepath.Join(dir, id+".jsonl"))
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if torn {
		t.Fatalf("journal for %s unexpectedly torn", id)
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if r.T == recRow {
			records++
			seen[r.I] = true
		}
	}
	return records, len(seen)
}

func TestJobMatchesSynchronousResult(t *testing.T) {
	dir := t.TempDir()
	m, eng := newManager(t, dir, Options{})
	req := sweepReq(6)

	snap, created, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !created {
		t.Fatal("first Submit reported created=false")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if final.RowsDone != 7 || final.Rows != 7 {
		t.Fatalf("rows done %d/%d, want 7/7", final.RowsDone, final.Rows)
	}

	direct, _, err := eng.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, direct); got != want {
		t.Errorf("job result differs from synchronous result:\n job: %s\nsync: %s", got, want)
	}
}

func TestSubmitIsIdempotentByCanonicalKey(t *testing.T) {
	dir := t.TempDir()
	m, _ := newManager(t, dir, Options{})

	s1, created1, err := m.Submit(context.Background(), sweepReq(6))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// A differently spelled but identical request (steps 6 is explicit
	// here, and the default interp resolves the same) maps to the same job.
	s2, created2, err := m.Submit(context.Background(), engine.Request{Op: engine.OpSweep, Steps: 6, Bandwidth: "400G"})
	if err != nil {
		t.Fatalf("re-Submit: %v", err)
	}
	if !created1 || created2 {
		t.Errorf("created flags = %v, %v; want true, false", created1, created2)
	}
	if s1.ID != s2.ID {
		t.Errorf("equivalent requests got different jobs: %s vs %s", s1.ID, s2.ID)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.jsonl")); len(files) != 1 {
		t.Errorf("expected one journal, found %d", len(files))
	}
}

func TestKillMidJobThenRecoverIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(6) // 7 rows
	const killAfterRow = 2

	// The uninterrupted reference result.
	refEng := engine.New(engine.Options{})
	ref, _, err := refEng.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("reference Do: %v", err)
	}

	// Run 1: the checkpoint hook simulates a crash after row 2 is
	// journaled — the runner stops dead, no terminal record.
	boom := errors.New("simulated crash")
	m1, _ := newManager(t, dir, Options{
		OnRowCheckpoint: func(id string, row int) error {
			if row == killAfterRow {
				return boom
			}
			return nil
		},
	})
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	interrupted := waitState(t, m1, snap.ID, StateInterrupted)
	if interrupted.RowsDone != killAfterRow+1 {
		t.Fatalf("rows checkpointed before crash = %d, want %d", interrupted.RowsDone, killAfterRow+1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close run 1: %v", err)
	}

	// Run 2: a fresh manager over a fresh engine recovers the journal and
	// resumes from the checkpoint.
	m2, eng2 := newManager(t, dir, Options{})
	if got := m2.Metrics().Recovered; got != 1 {
		t.Fatalf("recovered = %d, want 1", got)
	}
	if n := m2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll resumed %d jobs, want 1", n)
	}
	final, err := m2.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait after resume: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state after resume = %s, want done", final.State)
	}

	// Byte-for-byte identical to the uninterrupted run.
	if got, want := resultJSON(t, final.Result), resultJSON(t, ref); got != want {
		t.Errorf("recovered result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}

	// No completed row was recomputed: the journal holds exactly one row
	// record per row, and the resumed engine executed only the missing 4.
	records, distinct := journalRowRecords(t, dir, snap.ID)
	if records != 7 || distinct != 7 {
		t.Errorf("journal has %d row records over %d rows, want 7 over 7", records, distinct)
	}
	if got := eng2.Metrics().RowsExecuted; got != 7-(killAfterRow+1) {
		t.Errorf("resumed engine executed %d rows, want %d", got, 7-(killAfterRow+1))
	}
}

func TestTornJournalTailIsTruncatedAndResumed(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(6)

	refEng := engine.New(engine.Options{})
	ref, _, err := refEng.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("reference Do: %v", err)
	}

	boom := errors.New("simulated crash")
	m1, _ := newManager(t, dir, Options{
		OnRowCheckpoint: func(id string, row int) error {
			if row == 3 {
				return boom
			}
			return nil
		},
	})
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m1, snap.ID, StateInterrupted)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: a crash mid-append leaves a partial line.
	path := filepath.Join(dir, snap.ID+".jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.WriteString(`{"t":"row","i":4,"att`); err != nil {
		t.Fatalf("tear journal: %v", err)
	}
	f.Close()

	m2, _ := newManager(t, dir, Options{})
	if got := m2.Metrics().Recovered; got != 1 {
		t.Fatalf("recovered = %d, want 1", got)
	}
	m2.ResumeAll()
	final, err := m2.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, ref); got != want {
		t.Errorf("result after torn-tail recovery differs:\n got: %s\nwant: %s", got, want)
	}
	// The truncation must leave a parseable journal with one record per row.
	records, distinct := journalRowRecords(t, dir, snap.ID)
	if records != 7 || distinct != 7 {
		t.Errorf("journal has %d row records over %d rows, want 7 over 7", records, distinct)
	}
}

func TestRecoveredDoneJobServesResultWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(4)
	m1, _ := newManager(t, dir, Options{})
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m1.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Close(ctx)

	m2, eng2 := newManager(t, dir, Options{})
	got, err := m2.Get(snap.ID)
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if got.State != StateDone {
		t.Fatalf("state = %s, want done", got.State)
	}
	if a, b := resultJSON(t, got.Result), resultJSON(t, final.Result); a != b {
		t.Errorf("recovered result differs from original:\n got: %s\nwant: %s", a, b)
	}
	if n := eng2.Metrics().RowsExecuted; n != 0 {
		t.Errorf("recovery of a finished job executed %d rows, want 0", n)
	}
	// Resubmitting the finished job returns it instead of rerunning.
	again, created, err := m2.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("re-Submit: %v", err)
	}
	if created || again.ID != snap.ID || again.State != StateDone {
		t.Errorf("re-Submit = (created %v, id %s, state %s), want existing done job", created, again.ID, again.State)
	}
}

// scriptExec is a scripted executor: rows fail a configured number of
// times (-1: always) before succeeding, so retry behavior can be asserted
// exactly against the fake clock.
type scriptExec struct {
	rows int
	fail map[int]int

	mu    sync.Mutex
	calls map[int]int
}

func newScriptExec(rows int, fail map[int]int) *scriptExec {
	return &scriptExec{rows: rows, fail: fail, calls: map[int]int{}}
}

func (s *scriptExec) Plan(req engine.Request) (*engine.RowPlan, error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	return engine.NewRowPlan(norm, s.rows,
		func(ctx context.Context, i int) (json.RawMessage, error) {
			return json.Marshal(fmt.Sprintf("row-%d", i))
		},
		func(rows []json.RawMessage, failed []engine.RowError) (*engine.Result, error) {
			t := &engine.Table{Title: "script"}
			for _, raw := range rows {
				if raw == nil {
					continue
				}
				var cell string
				if err := json.Unmarshal(raw, &cell); err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{cell})
			}
			return &engine.Result{Op: norm.Op, Request: norm, Table: t}, nil
		}), nil
}

func (s *scriptExec) ExecRow(ctx context.Context, p *engine.RowPlan, i int) (json.RawMessage, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.calls[i]++
	n := s.calls[i]
	f, failing := s.fail[i]
	s.mu.Unlock()
	if failing && (f < 0 || n <= f) {
		return nil, fmt.Errorf("scripted failure: row %d attempt %d", i, n)
	}
	return json.Marshal(fmt.Sprintf("row-%d", i))
}

func (s *scriptExec) attempts(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[i]
}

// heal clears a row's scripted failure.
func (s *scriptExec) heal(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.fail, i)
}

func TestRetrySleepsFollowThePolicySchedule(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	exec := newScriptExec(3, map[int]int{1: 2}) // row 1 fails twice, then succeeds
	policy := RetryPolicy{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 7}
	m, err := Open(Options{Dir: dir, Exec: exec, Clock: clock, Retry: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close(context.Background())

	snap, _, err := m.Submit(context.Background(), engine.Request{Op: engine.OpSweep, Steps: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done (retries must not fail the job)", final.State)
	}
	want := []time.Duration{
		policy.withDefaults().Delay(snap.Key, 1, 1),
		policy.withDefaults().Delay(snap.Key, 1, 2),
	}
	got := clock.slept()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", got, want)
	}
	if n := exec.attempts(1); n != 3 {
		t.Errorf("row 1 attempts = %d, want 3", n)
	}
	if m.Metrics().RowRetries != 2 {
		t.Errorf("RowRetries = %d, want 2", m.Metrics().RowRetries)
	}
}

func TestRetryExhaustionDegradesInsteadOfFailing(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	exec := newScriptExec(4, map[int]int{2: -1}) // row 2 never succeeds
	policy := RetryPolicy{MaxAttempts: 3, Base: 10 * time.Millisecond, Jitter: -1}
	m, err := Open(Options{Dir: dir, Exec: exec, Clock: clock, Retry: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close(context.Background())

	snap, _, err := m.Submit(context.Background(), engine.Request{Op: engine.OpSweep, Steps: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDegraded {
		t.Fatalf("state = %s, want degraded", final.State)
	}
	if len(final.RowErrors) != 1 || final.RowErrors[0].Row != 2 {
		t.Fatalf("row errors = %+v, want one marker for row 2", final.RowErrors)
	}
	if final.RowErrors[0].Panic {
		t.Error("plain failure marked as panic")
	}
	if final.Result == nil || len(final.Result.RowErrors) != 1 {
		t.Fatalf("degraded result missing row-error markers: %+v", final.Result)
	}
	// The three healthy rows all made it into the partial result.
	if len(final.Result.Table.Rows) != 3 {
		t.Errorf("degraded result has %d rows, want 3", len(final.Result.Table.Rows))
	}
	if n := exec.attempts(2); n != 3 {
		t.Errorf("row 2 attempts = %d, want MaxAttempts=3", n)
	}
	// Exactly MaxAttempts-1 backoff sleeps, on the deterministic schedule.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	got := clock.slept()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", got, want)
	}
	mm := m.Metrics()
	if mm.RowFailures != 1 || mm.Degraded != 1 {
		t.Errorf("metrics = %+v, want RowFailures 1 and Degraded 1", mm)
	}
}

func TestPanicRowIsContainedAsTypedMarker(t *testing.T) {
	dir := t.TempDir()
	m, _ := newManager(t, dir, Options{
		Retry: RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1},
	})
	req := engine.Request{
		Op: engine.OpScenario, Scenario: "chaos",
		Params: map[string]float64{"rows": 4, "panicrow": 2},
	}
	snap, _, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDegraded {
		t.Fatalf("state = %s, want degraded", final.State)
	}
	if len(final.RowErrors) != 1 || final.RowErrors[0].Row != 2 || !final.RowErrors[0].Panic {
		t.Fatalf("row errors = %+v, want a panic marker for row 2", final.RowErrors)
	}
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	exec := newScriptExec(3, map[int]int{1: -1}) // row 1 retries forever
	clock := &blockingClock{gate: make(chan struct{})}
	m, err := Open(Options{Dir: dir, Exec: exec, Clock: clock,
		Retry: RetryPolicy{MaxAttempts: 1000, Base: time.Millisecond, Jitter: -1}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close(context.Background())

	snap, _, err := m.Submit(context.Background(), engine.Request{Op: engine.OpSweep, Steps: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until the runner is parked in a retry sleep, then cancel.
	select {
	case <-clock.gate:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached a retry sleep")
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if m.Metrics().Canceled != 1 {
		t.Errorf("Canceled metric = %d, want 1", m.Metrics().Canceled)
	}
	// A canceled job resubmitted starts over from scratch.
	exec.heal(1)
	again, created, err := m.Submit(context.Background(), engine.Request{Op: engine.OpSweep, Steps: 2})
	if err != nil {
		t.Fatalf("re-Submit after cancel: %v", err)
	}
	if !created {
		t.Error("re-Submit after cancel did not create a fresh run")
	}
	final2, err := m.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final2.State != StateDone {
		t.Errorf("state after restart = %s, want done", final2.State)
	}
}

// blockingClock signals the first Sleep and then blocks until the context
// is canceled, parking a retrying job deterministically for cancel and
// drain tests.
type blockingClock struct {
	gate     chan struct{}
	gateOnce sync.Once
}

func (c *blockingClock) Now() time.Time { return time.Unix(1_700_000_000, 0) }

func (c *blockingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.gateOnce.Do(func() { close(c.gate) })
	<-ctx.Done()
	return ctx.Err()
}

func TestDrainCheckpointsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq(6) // 7 rows
	exec := newScriptExec(7, map[int]int{4: -1})
	clock := &blockingClock{gate: make(chan struct{})}
	m1, err := Open(Options{Dir: dir, Exec: exec, Clock: clock,
		Retry: RetryPolicy{MaxAttempts: 1000, Base: time.Millisecond, Jitter: -1}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap, _, err := m1.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Rows 0-3 complete; row 4 parks in its retry sleep. Drain must not
	// wait the backoff out: it interrupts the sleep and checkpoints.
	select {
	case <-clock.gate:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached row 4's retry sleep")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s, err := m1.Get(snap.ID); err != nil || s.State != StateInterrupted {
		t.Fatalf("after drain: state %v err %v, want interrupted", s.State, err)
	}
	if s, _ := m1.Get(snap.ID); s.RowsDone != 4 {
		t.Fatalf("rows checkpointed at drain = %d, want 4", s.RowsDone)
	}

	// Recovery resumes from row 4 once the failure clears.
	exec.heal(4)
	m2, err := Open(Options{Dir: dir, Exec: exec, Clock: newFakeClock()})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close(context.Background())
	if n := m2.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll = %d, want 1", n)
	}
	final, err := m2.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if m2.Metrics().Resumed != 1 {
		t.Errorf("Resumed metric = %d, want 1", m2.Metrics().Resumed)
	}
	// Rows 0-3 were never re-executed after recovery.
	for i := 0; i < 4; i++ {
		if n := exec.attempts(i); n != 1 {
			t.Errorf("row %d executed %d times across both runs, want 1", i, n)
		}
	}
}

func TestJobPrimesEngineCache(t *testing.T) {
	dir := t.TempDir()
	m, eng := newManager(t, dir, Options{})
	req := sweepReq(5)
	snap, _, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	before := eng.Metrics()
	if _, cached, err := eng.Do(context.Background(), req); err != nil || !cached {
		t.Errorf("synchronous query after job: cached=%v err=%v, want cache hit", cached, err)
	}
	after := eng.Metrics()
	if after.Computations != before.Computations {
		t.Errorf("synchronous query recomputed despite primed cache")
	}
}

func TestDepthAndList(t *testing.T) {
	dir := t.TempDir()
	m, _ := newManager(t, dir, Options{})
	for _, steps := range []int{3, 4} {
		if _, _, err := m.Submit(context.Background(), sweepReq(steps)); err != nil {
			t.Fatalf("Submit(%d): %v", steps, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d := m.Depth(); d.Done == 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := m.Depth(); d.Done != 2 || d.Running+d.Queued+d.Interrupted != 0 {
		t.Errorf("Depth = %+v, want 2 done", d)
	}
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("List returned %d jobs, want 2", len(list))
	}
	for _, s := range list {
		if s.Result != nil || s.Partial != nil {
			t.Errorf("List snapshot for %s carries heavy fields", s.ID)
		}
	}
}
