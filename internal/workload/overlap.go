package workload

import (
	"fmt"

	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// Schedule is an iteration laid out as up to three segments: compute-only,
// overlapped (both compute and network busy), and communication-only. It
// generalizes the paper's no-overlap assumption (§2.2, footnote 1) to the
// §3.4 relaxation where some training schemes overlap computation and
// communication — there is then still network underutilization, just less
// of it.
type Schedule struct {
	ComputeOnly units.Seconds
	Overlapped  units.Seconds
	CommOnly    units.Seconds
}

// Total returns the iteration time under the schedule.
func (s Schedule) Total() units.Seconds { return s.ComputeOnly + s.Overlapped + s.CommOnly }

// ComputeBusy returns the total time the compute hardware is busy.
func (s Schedule) ComputeBusy() units.Seconds { return s.ComputeOnly + s.Overlapped }

// NetworkBusy returns the total time the network is busy.
func (s Schedule) NetworkBusy() units.Seconds { return s.Overlapped + s.CommOnly }

// ComputePhases returns the compute hardware's phase schedule.
func (s Schedule) ComputePhases() []power.Phase {
	return []power.Phase{
		{Duration: s.ComputeOnly, Busy: true},
		{Duration: s.Overlapped, Busy: true},
		{Duration: s.CommOnly, Busy: false},
	}
}

// NetworkPhases returns the network hardware's phase schedule.
func (s Schedule) NetworkPhases() []power.Phase {
	return []power.Phase{
		{Duration: s.ComputeOnly, Busy: false},
		{Duration: s.Overlapped, Busy: true},
		{Duration: s.CommOnly, Busy: true},
	}
}

// WithOverlap converts an iteration into a schedule where the given
// fraction of the communication phase is hidden behind computation.
// overlap = 0 reproduces the paper's sequential model; overlap = 1 hides
// communication entirely (bounded by the computation time — communication
// cannot hide behind compute that is not running).
func (it Iteration) WithOverlap(overlap float64) (Schedule, error) {
	if overlap < 0 || overlap > 1 {
		return Schedule{}, fmt.Errorf("workload: overlap %v outside [0,1]", overlap)
	}
	hidden := units.Seconds(overlap * float64(it.Comm))
	if hidden > it.Compute {
		return Schedule{}, fmt.Errorf("workload: overlapped communication %v exceeds computation %v",
			hidden, it.Compute)
	}
	return Schedule{
		ComputeOnly: it.Compute - hidden,
		Overlapped:  hidden,
		CommOnly:    it.Comm - hidden,
	}, nil
}

// NetworkIdleShare returns the fraction of the iteration the network
// spends idle — the underutilization that proportionality improvements
// monetize (§3.4).
func (s Schedule) NetworkIdleShare() float64 {
	total := float64(s.Total())
	if total == 0 {
		return 0
	}
	return float64(s.ComputeOnly) / total
}
