// Package workload implements the paper's training-workload model (§2.2,
// Fig. 1): an iteration is one computation phase followed by one
// communication phase with no overlap; GPUs run at full speed while the
// network idles, and vice versa. The total workload is constant as the
// cluster scales, execution time scales linearly with resources, and the
// communication ratio is the communication share of the iteration time.
package workload

import (
	"fmt"

	"netpowerprop/internal/power"
	"netpowerprop/internal/units"
)

// Workload is a fixed amount of training work, expressed as the phase
// durations measured on a reference cluster (a GPU count and a per-GPU
// network bandwidth). Scaling the cluster rescales the phases linearly.
type Workload struct {
	// ComputeTime is the computation-phase duration on RefGPUs GPUs.
	ComputeTime units.Seconds
	// CommTime is the communication-phase duration at RefBandwidth per GPU.
	CommTime units.Seconds
	// RefGPUs is the GPU count the times were measured on.
	RefGPUs int
	// RefBandwidth is the per-GPU network bandwidth the times were
	// measured at.
	RefBandwidth units.Bandwidth
}

// New validates and builds a Workload.
func New(computeTime, commTime units.Seconds, refGPUs int, refBandwidth units.Bandwidth) (Workload, error) {
	if computeTime < 0 || commTime < 0 {
		return Workload{}, fmt.Errorf("workload: negative phase duration (compute=%v, comm=%v)", computeTime, commTime)
	}
	if computeTime == 0 && commTime == 0 {
		return Workload{}, fmt.Errorf("workload: empty iteration")
	}
	if refGPUs < 1 {
		return Workload{}, fmt.Errorf("workload: reference GPU count %d must be positive", refGPUs)
	}
	if refBandwidth <= 0 {
		return Workload{}, fmt.Errorf("workload: reference bandwidth %v must be positive", refBandwidth)
	}
	return Workload{ComputeTime: computeTime, CommTime: commTime, RefGPUs: refGPUs, RefBandwidth: refBandwidth}, nil
}

// CommRatio returns the communication ratio at the reference configuration:
// communication time divided by iteration time (§2.2).
func (w Workload) CommRatio() float64 {
	total := float64(w.ComputeTime + w.CommTime)
	if total == 0 {
		return 0
	}
	return float64(w.CommTime) / total
}

// Iteration is one concrete compute+communicate cycle on a specific cluster.
type Iteration struct {
	Compute units.Seconds
	Comm    units.Seconds
}

// Total returns the iteration time.
func (it Iteration) Total() units.Seconds { return it.Compute + it.Comm }

// CommRatio returns the communication share of this iteration.
func (it Iteration) CommRatio() float64 {
	if it.Total() == 0 {
		return 0
	}
	return float64(it.Comm) / float64(it.Total())
}

// On scales the fixed workload onto a cluster with the given GPU count and
// per-GPU bandwidth: computation time scales inversely with GPUs, and
// communication time inversely with bandwidth (Fig. 1).
func (w Workload) On(gpus int, bandwidth units.Bandwidth) (Iteration, error) {
	if gpus < 1 {
		return Iteration{}, fmt.Errorf("workload: GPU count %d must be positive", gpus)
	}
	if bandwidth <= 0 {
		return Iteration{}, fmt.Errorf("workload: bandwidth %v must be positive", bandwidth)
	}
	return Iteration{
		Compute: w.ComputeTime * units.Seconds(float64(w.RefGPUs)/float64(gpus)),
		Comm:    w.CommTime * units.Seconds(float64(w.RefBandwidth)/float64(bandwidth)),
	}, nil
}

// WithFixedRatio returns the iteration on a cluster where the communication
// workload grows with the network speed so that the communication ratio
// stays pinned (the paper's second evaluation scenario, §3.3): computation
// scales with GPUs, and communication is set to ratio/(1−ratio) of it.
func (w Workload) WithFixedRatio(gpus int, ratio float64) (Iteration, error) {
	if gpus < 1 {
		return Iteration{}, fmt.Errorf("workload: GPU count %d must be positive", gpus)
	}
	if ratio < 0 || ratio >= 1 {
		return Iteration{}, fmt.Errorf("workload: communication ratio %v outside [0,1)", ratio)
	}
	compute := w.ComputeTime * units.Seconds(float64(w.RefGPUs)/float64(gpus))
	return Iteration{
		Compute: compute,
		Comm:    units.Seconds(float64(compute) * ratio / (1 - ratio)),
	}, nil
}

// ComputePhases returns the iteration as a phase schedule seen by the
// compute hardware: busy while computing, idle while communicating.
func (it Iteration) ComputePhases() []power.Phase {
	return []power.Phase{
		{Duration: it.Compute, Busy: true},
		{Duration: it.Comm, Busy: false},
	}
}

// NetworkPhases returns the iteration as a phase schedule seen by the
// network hardware: idle while computing, busy while communicating.
func (it Iteration) NetworkPhases() []power.Phase {
	return []power.Phase{
		{Duration: it.Compute, Busy: false},
		{Duration: it.Comm, Busy: true},
	}
}

// Baseline returns the paper's baseline workload (§2.1): a unit iteration
// with a 10% communication ratio measured on 15,360 GPUs at 400 Gbps.
func Baseline() Workload {
	return Workload{
		ComputeTime:  0.9,
		CommTime:     0.1,
		RefGPUs:      15360,
		RefBandwidth: 400 * units.Gbps,
	}
}

// Fig1Row is one line of the paper's Fig. 1: a scaling scenario and the
// resulting iteration.
type Fig1Row struct {
	Label     string
	Iteration Iteration
}

// Fig1 reproduces the paper's Fig. 1 on a 20%-communication-ratio unit
// iteration: the reference run, a 2×-GPU run (computation halves), and a
// 0.5×-bandwidth run (communication doubles).
func Fig1() []Fig1Row {
	w := Workload{ComputeTime: 0.8, CommTime: 0.2, RefGPUs: 1000, RefBandwidth: 400 * units.Gbps}
	ref, _ := w.On(w.RefGPUs, w.RefBandwidth)
	gpus2x, _ := w.On(2*w.RefGPUs, w.RefBandwidth)
	bwHalf, _ := w.On(w.RefGPUs, w.RefBandwidth/2)
	return []Fig1Row{
		{Label: "baseline", Iteration: ref},
		{Label: "2x GPUs", Iteration: gpus2x},
		{Label: "0.5x BW", Iteration: bwHalf},
	}
}
