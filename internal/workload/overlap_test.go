package workload

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func TestWithOverlapZeroMatchesSequential(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	s, err := it.WithOverlap(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeOnly != 0.9 || s.Overlapped != 0 || s.CommOnly != 0.1 {
		t.Errorf("overlap 0 schedule = %+v", s)
	}
	if s.Total() != it.Total() {
		t.Errorf("total changed: %v vs %v", s.Total(), it.Total())
	}
}

func TestWithOverlapHalf(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	s, err := it.WithOverlap(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.Overlapped)-0.05) > 1e-12 {
		t.Errorf("overlapped = %v, want 0.05", s.Overlapped)
	}
	if math.Abs(float64(s.ComputeOnly)-0.85) > 1e-12 {
		t.Errorf("compute-only = %v, want 0.85", s.ComputeOnly)
	}
	if math.Abs(float64(s.CommOnly)-0.05) > 1e-12 {
		t.Errorf("comm-only = %v, want 0.05", s.CommOnly)
	}
	// Overlap shortens the iteration: 1.0 -> 0.95.
	if math.Abs(float64(s.Total())-0.95) > 1e-12 {
		t.Errorf("total = %v, want 0.95", s.Total())
	}
	// Busy times are conserved: compute still works 0.9, network 0.1.
	if math.Abs(float64(s.ComputeBusy())-0.9) > 1e-12 {
		t.Errorf("compute busy = %v, want 0.9", s.ComputeBusy())
	}
	if math.Abs(float64(s.NetworkBusy())-0.1) > 1e-12 {
		t.Errorf("network busy = %v, want 0.1", s.NetworkBusy())
	}
}

func TestWithOverlapFull(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	s, err := it.WithOverlap(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CommOnly != 0 || math.Abs(float64(s.Total())-0.9) > 1e-12 {
		t.Errorf("full overlap schedule = %+v", s)
	}
}

func TestWithOverlapValidation(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	if _, err := it.WithOverlap(-0.1); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := it.WithOverlap(1.1); err == nil {
		t.Error("overlap > 1 accepted")
	}
	// Communication longer than computation cannot fully hide.
	long := Iteration{Compute: 0.1, Comm: 0.9}
	if _, err := long.WithOverlap(1); err == nil {
		t.Error("impossible overlap accepted")
	}
	if _, err := long.WithOverlap(0.1); err != nil {
		t.Error("feasible partial overlap rejected")
	}
}

func TestSchedulePhases(t *testing.T) {
	s := Schedule{ComputeOnly: 0.85, Overlapped: 0.05, CommOnly: 0.05}
	cp := s.ComputePhases()
	if !cp[0].Busy || !cp[1].Busy || cp[2].Busy {
		t.Errorf("compute phases = %+v", cp)
	}
	np := s.NetworkPhases()
	if np[0].Busy || !np[1].Busy || !np[2].Busy {
		t.Errorf("network phases = %+v", np)
	}
	var cpd, npd units.Seconds
	for i := range cp {
		cpd += cp[i].Duration
		npd += np[i].Duration
	}
	if cpd != s.Total() || npd != s.Total() {
		t.Error("phase durations do not cover the schedule")
	}
}

func TestNetworkIdleShare(t *testing.T) {
	s := Schedule{ComputeOnly: 0.85, Overlapped: 0.05, CommOnly: 0.05}
	want := 0.85 / 0.95
	if got := s.NetworkIdleShare(); math.Abs(got-want) > 1e-12 {
		t.Errorf("idle share = %v, want %v", got, want)
	}
	if (Schedule{}).NetworkIdleShare() != 0 {
		t.Error("zero schedule idle share should be 0")
	}
}

// Property: overlap conserves busy time and never lengthens the iteration;
// more overlap means less network idle share.
func TestOverlapInvariants(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1.0))
		b := math.Abs(math.Mod(bRaw, 1.0))
		if a > b {
			a, b = b, a
		}
		sa, err1 := it.WithOverlap(a)
		sb, err2 := it.WithOverlap(b)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(float64(sa.ComputeBusy()-it.Compute)) > 1e-12 ||
			math.Abs(float64(sa.NetworkBusy()-it.Comm)) > 1e-12 {
			return false
		}
		return sb.Total() <= sa.Total()+1e-12 &&
			sb.NetworkIdleShare() <= sa.NetworkIdleShare()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
