package workload

import (
	"math"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func TestBaseline(t *testing.T) {
	w := Baseline()
	if math.Abs(w.CommRatio()-0.10) > 1e-12 {
		t.Errorf("baseline comm ratio = %v, want 0.10", w.CommRatio())
	}
	if w.RefGPUs != 15360 {
		t.Errorf("baseline GPUs = %d, want 15360", w.RefGPUs)
	}
	if w.RefBandwidth != 400*units.Gbps {
		t.Errorf("baseline bandwidth = %v, want 400 Gbps", w.RefBandwidth)
	}
	it, err := w.On(w.RefGPUs, w.RefBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(it.Total())-1.0) > 1e-12 {
		t.Errorf("baseline iteration time = %v, want 1.0", it.Total())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 0.1, 100, 400*units.Gbps); err == nil {
		t.Error("negative compute time should fail")
	}
	if _, err := New(0.9, -1, 100, 400*units.Gbps); err == nil {
		t.Error("negative comm time should fail")
	}
	if _, err := New(0, 0, 100, 400*units.Gbps); err == nil {
		t.Error("empty iteration should fail")
	}
	if _, err := New(0.9, 0.1, 0, 400*units.Gbps); err == nil {
		t.Error("zero GPUs should fail")
	}
	if _, err := New(0.9, 0.1, 100, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if w, err := New(0.9, 0.1, 100, 400*units.Gbps); err != nil || w.CommRatio() != 0.1 {
		t.Errorf("valid workload rejected: %v", err)
	}
}

// TestFig1Scaling asserts the exact scaling relations of the paper's Fig. 1.
func TestFig1Scaling(t *testing.T) {
	rows := Fig1()
	if len(rows) != 3 {
		t.Fatalf("Fig1 rows = %d, want 3", len(rows))
	}
	base := rows[0].Iteration
	if math.Abs(float64(base.Total())-1.0) > 1e-12 || math.Abs(base.CommRatio()-0.2) > 1e-12 {
		t.Errorf("Fig1 baseline = %+v, want total 1.0 ratio 0.2", base)
	}
	// 2x GPUs: computation halves, communication unchanged.
	g2 := rows[1].Iteration
	if math.Abs(float64(g2.Compute)-0.4) > 1e-12 || math.Abs(float64(g2.Comm)-0.2) > 1e-12 {
		t.Errorf("Fig1 2x GPUs = %+v, want compute 0.4 comm 0.2", g2)
	}
	// 0.5x bandwidth: communication doubles, computation unchanged.
	bh := rows[2].Iteration
	if math.Abs(float64(bh.Compute)-0.8) > 1e-12 || math.Abs(float64(bh.Comm)-0.4) > 1e-12 {
		t.Errorf("Fig1 0.5x BW = %+v, want compute 0.8 comm 0.4", bh)
	}
}

func TestOnScaling(t *testing.T) {
	w := Baseline()
	// 2x bandwidth halves communication: ratio becomes 0.1/(0.9+0.05)... i.e.
	// comm 0.05.
	it, err := w.On(15360, 800*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(it.Comm)-0.05) > 1e-12 {
		t.Errorf("comm at 800G = %v, want 0.05", it.Comm)
	}
	if math.Abs(float64(it.Compute)-0.9) > 1e-12 {
		t.Errorf("compute unchanged = %v, want 0.9", it.Compute)
	}
	// Quarter the GPUs: computation 4x.
	it, err = w.On(3840, 400*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(it.Compute)-3.6) > 1e-12 {
		t.Errorf("compute at 1/4 GPUs = %v, want 3.6", it.Compute)
	}
}

func TestOnValidation(t *testing.T) {
	w := Baseline()
	if _, err := w.On(0, 400*units.Gbps); err == nil {
		t.Error("zero GPUs should fail")
	}
	if _, err := w.On(100, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestWithFixedRatio(t *testing.T) {
	w := Baseline()
	it, err := w.WithFixedRatio(15360, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(it.CommRatio()-0.10) > 1e-12 {
		t.Errorf("fixed ratio = %v, want 0.10", it.CommRatio())
	}
	// Doubling GPUs halves compute but keeps the ratio.
	it2, err := w.WithFixedRatio(30720, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(it2.CommRatio()-0.10) > 1e-12 {
		t.Errorf("fixed ratio after scaling = %v, want 0.10", it2.CommRatio())
	}
	if math.Abs(float64(it2.Compute)*2-float64(it.Compute)) > 1e-12 {
		t.Errorf("compute should halve: %v vs %v", it2.Compute, it.Compute)
	}
	if _, err := w.WithFixedRatio(0, 0.1); err == nil {
		t.Error("zero GPUs should fail")
	}
	if _, err := w.WithFixedRatio(100, 1.0); err == nil {
		t.Error("ratio 1.0 should fail")
	}
	if _, err := w.WithFixedRatio(100, -0.1); err == nil {
		t.Error("negative ratio should fail")
	}
	// Zero ratio means no communication phase at all.
	it3, err := w.WithFixedRatio(15360, 0)
	if err != nil || it3.Comm != 0 {
		t.Errorf("zero-ratio iteration = %+v, err=%v", it3, err)
	}
}

func TestPhases(t *testing.T) {
	it := Iteration{Compute: 0.9, Comm: 0.1}
	cp := it.ComputePhases()
	if !cp[0].Busy || cp[0].Duration != 0.9 || cp[1].Busy || cp[1].Duration != 0.1 {
		t.Errorf("ComputePhases = %+v", cp)
	}
	np := it.NetworkPhases()
	if np[0].Busy || np[0].Duration != 0.9 || !np[1].Busy || np[1].Duration != 0.1 {
		t.Errorf("NetworkPhases = %+v", np)
	}
}

func TestCommRatioEdge(t *testing.T) {
	if (Iteration{}).CommRatio() != 0 {
		t.Error("zero iteration ratio should be 0")
	}
	if (Workload{}).CommRatio() != 0 {
		t.Error("zero workload ratio should be 0")
	}
}

// Property: total work is conserved — compute time x GPUs and comm time x
// bandwidth are invariant under On.
func TestWorkConservation(t *testing.T) {
	w := Baseline()
	f := func(gRaw, bRaw uint16) bool {
		g := 1 + int(gRaw)%100000
		b := units.Bandwidth(1+int(bRaw)%3200) * units.Gbps
		it, err := w.On(g, b)
		if err != nil {
			return false
		}
		computeWork := float64(it.Compute) * float64(g)
		commWork := float64(it.Comm) * float64(b)
		wantComputeWork := float64(w.ComputeTime) * float64(w.RefGPUs)
		wantCommWork := float64(w.CommTime) * float64(w.RefBandwidth)
		return math.Abs(computeWork-wantComputeWork) < 1e-6*wantComputeWork &&
			math.Abs(commWork-wantCommWork) < 1e-6*wantCommWork
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: iteration time is monotone non-increasing in both GPUs and
// bandwidth.
func TestIterationMonotone(t *testing.T) {
	w := Baseline()
	f := func(g1, g2, b1, b2 uint16) bool {
		ga, gb := 1+int(g1)%100000, 1+int(g2)%100000
		ba := units.Bandwidth(1+int(b1)%3200) * units.Gbps
		bb := units.Bandwidth(1+int(b2)%3200) * units.Gbps
		if ga > gb {
			ga, gb = gb, ga
		}
		if ba > bb {
			ba, bb = bb, ba
		}
		slow, err1 := w.On(ga, ba)
		fast, err2 := w.On(gb, bb)
		if err1 != nil || err2 != nil {
			return false
		}
		return fast.Total() <= slow.Total()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
