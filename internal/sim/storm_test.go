package sim

import (
	"math/rand/v2"
	"testing"

	"netpowerprop/internal/units"
)

// Regression: a Timer held across its event's firing must not cancel the
// event object's next incarnation off the free list. Before the generation
// counter, this canceled an unrelated later event.
func TestFaultStaleCancelAfterFreeListReuse(t *testing.T) {
	var e Engine
	fired := map[string]int{}
	tA := e.Schedule(1, func(*Engine) { fired["A"]++ })
	e.Step() // fires A; its event object is recycled
	// B reuses A's object (free list is LIFO and holds exactly one entry).
	e.Schedule(2, func(*Engine) { fired["B"]++ })
	tA.Cancel() // stale: must be a no-op on B
	e.Run()
	if fired["A"] != 1 || fired["B"] != 1 {
		t.Fatalf("fired = %v, want A and B exactly once", fired)
	}
	_ = tA
}

// Regression: canceling a timer from inside its own handler. The event is
// recycled before the handler runs, so the cancel must not mark the freed
// object (which the handler's own reschedule may already have claimed).
func TestFaultCancelInsideOwnHandler(t *testing.T) {
	var e Engine
	fired := map[string]int{}
	var self Timer
	self = e.Schedule(1, func(e *Engine) {
		fired["self"]++
		// This reuse claims the just-recycled object…
		e.Schedule(2, func(*Engine) { fired["next"]++ })
		// …and this stale self-cancel must not kill it.
		self.Cancel()
	})
	e.Run()
	if fired["self"] != 1 || fired["next"] != 1 {
		t.Fatalf("fired = %v, want self and next exactly once", fired)
	}
}

// Regression: a canceled-then-drained event also recycles; a second Cancel
// of the same timer after reuse must not touch the new occupant.
func TestFaultDoubleCancelAcrossReuse(t *testing.T) {
	var e Engine
	fired := 0
	tm := e.Schedule(1, func(*Engine) { t.Fatal("canceled event fired") })
	tm.Cancel()
	e.RunUntil(5) // drains the canceled event, recycling its object
	e.Schedule(6, func(*Engine) { fired++ })
	tm.Cancel() // stale again
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

// A seeded schedule/cancel storm mimicking fault-injection churn: many
// timers, random cancels (some stale, some in-handler), heavy free-list
// reuse. Every surviving event must fire exactly once, in time order, and
// the whole run must be deterministic for a fixed seed.
func TestFaultCancelStormDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		var e Engine
		var order []int
		var timers []Timer
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 3 + rng.IntN(5)
			for i := 0; i < n; i++ {
				at := e.Now() + units.Seconds(rng.Float64())
				myID := id
				id++
				tm := e.Schedule(at, func(e *Engine) {
					order = append(order, myID)
					// Handlers occasionally cancel a random earlier timer
					// (often already fired — must be a no-op) and spawn more
					// work, churning the free list.
					if len(timers) > 0 && rng.Float64() < 0.4 {
						timers[rng.IntN(len(timers))].Cancel()
					}
					if depth < 3 && rng.Float64() < 0.3 {
						schedule(depth + 1)
					}
				})
				timers = append(timers, tm)
			}
		}
		schedule(0)
		// Cancel a third of the initial batch up front.
		for _, i := range rng.Perm(len(timers))[:len(timers)/3] {
			timers[i].Cancel()
		}
		e.Run()
		return order
	}

	for seed := uint64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) == 0 {
			t.Fatalf("seed %d: storm fired no events", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: nondeterministic storm: %d vs %d events", seed, len(a), len(b))
		}
		seen := make(map[int]bool, len(a))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: order diverges at %d: %d vs %d", seed, i, a[i], b[i])
			}
			if seen[a[i]] {
				t.Fatalf("seed %d: event %d fired twice", seed, a[i])
			}
			seen[a[i]] = true
		}
	}
}

// Under the storm, the free list is actually exercised: after a run the
// engine has recycled objects available, and reusing the engine for a
// second storm still behaves correctly.
func TestFaultEngineReuseAfterStorm(t *testing.T) {
	var e Engine
	total := 0
	for i := 0; i < 100; i++ {
		e.After(units.Seconds(i)*0.01, func(*Engine) { total++ })
	}
	e.Run()
	if total != 100 {
		t.Fatalf("first storm fired %d, want 100", total)
	}
	if len(e.free) == 0 {
		t.Fatal("free list empty after run; recycling is broken")
	}
	// Second storm on the same engine reuses recycled objects.
	for i := 0; i < 100; i++ {
		e.After(units.Seconds(i)*0.01, func(*Engine) { total++ })
	}
	e.Run()
	if total != 200 {
		t.Fatalf("second storm fired %d total, want 200", total)
	}
}
