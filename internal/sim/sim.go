// Package sim is a minimal discrete-event simulation kernel: a virtual
// clock and an event queue ordered by time (FIFO among equal times). The
// §4 mechanism simulators (EEE, rate adaptation, pipeline parking, OCS
// reconfiguration) all run on this kernel.
package sim

import (
	"container/heap"
	"fmt"

	"netpowerprop/internal/units"
)

// Handler is a scheduled callback. It runs with the engine clock set to its
// event time and may schedule further events.
type Handler func(e *Engine)

type event struct {
	at  units.Seconds
	seq uint64
	fn  Handler
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
	// gen increments each time the event object is recycled through the
	// engine free list, so a stale Timer cannot cancel the object's next
	// incarnation.
	gen uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Timer identifies a scheduled event so it can be canceled.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op (a fired event's object may already
// be serving a later Schedule call; the generation check keeps the stale
// timer from touching it).
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.canceled = true
	}
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now   units.Seconds
	queue eventQueue
	seq   uint64
	steps uint64
	// free is the event free list: fired and drained-canceled events are
	// recycled here instead of left to the garbage collector, so long §4
	// runs stop allocating one heap object per scheduled event.
	free []*event
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// Pending returns the number of events still queued (including canceled
// ones not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Steps returns how many events have been executed.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn at the given absolute virtual time. Scheduling in the
// past panics: it indicates a simulator bug, not a recoverable condition.
func (e *Engine) Schedule(at units.Seconds, fn Handler) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the free list for the next Schedule.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// After runs fn after a non-negative delay.
func (e *Engine) After(delay units.Seconds, fn Handler) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.steps++
		fn := ev.fn
		// Recycle before running: fn may schedule new events, and the hot
		// schedule-one-fire-one pattern then reuses this object directly.
		e.recycle(ev)
		fn(e)
		return true
	}
	return false
}

// RunUntil executes events with time ≤ until, then advances the clock to
// exactly until. Events scheduled during execution are honored.
func (e *Engine) RunUntil(until units.Seconds) {
	for len(e.queue) > 0 {
		// Peek without popping canceled entries permanently out of order.
		ev := e.queue[0]
		if ev.canceled {
			e.recycle(heap.Pop(&e.queue).(*event))
			continue
		}
		if ev.at > until {
			break
		}
		e.Step()
	}
	if until > e.now {
		e.now = until
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Meter integrates a piecewise-constant power signal into energy. It is the
// accounting primitive every simulated component uses.
type Meter struct {
	lastT  units.Seconds
	power  units.Power
	energy units.Energy
	// busyEnergy accumulates energy drawn while marked busy, for
	// efficiency reporting.
	busy       bool
	busyEnergy units.Energy
	busyTime   units.Seconds
}

// NewMeter starts a meter at time t drawing p.
func NewMeter(t units.Seconds, p units.Power) *Meter {
	return &Meter{lastT: t, power: p}
}

// Set records a power change at time t (t must not precede the previous
// sample). The busy flag tags the energy drawn *since the last sample*
// retroactively as it was: the meter accumulates at the old power/busy
// state up to t, then switches.
func (m *Meter) Set(t units.Seconds, p units.Power, busy bool) {
	m.accumulate(t)
	m.power = p
	m.busy = busy
}

func (m *Meter) accumulate(t units.Seconds) {
	d := t - m.lastT
	if d < 0 {
		panic(fmt.Sprintf("sim: meter sample at %v before %v", t, m.lastT))
	}
	if d > 0 {
		e := units.EnergyOver(m.power, d)
		m.energy += e
		if m.busy {
			m.busyEnergy += e
			m.busyTime += d
		}
		m.lastT = t
	}
}

// Energy returns the total energy consumed up to time t.
func (m *Meter) Energy(t units.Seconds) units.Energy {
	m.accumulate(t)
	return m.energy
}

// BusyEnergy returns the energy consumed while busy up to time t.
func (m *Meter) BusyEnergy(t units.Seconds) units.Energy {
	m.accumulate(t)
	return m.busyEnergy
}

// BusyTime returns the total time spent busy up to time t.
func (m *Meter) BusyTime(t units.Seconds) units.Seconds {
	m.accumulate(t)
	return m.busyTime
}

// Power returns the current power draw.
func (m *Meter) Power() units.Power { return m.power }

// Efficiency returns busy energy over total energy up to t (0 if no energy).
func (m *Meter) Efficiency(t units.Seconds) float64 {
	m.accumulate(t)
	if m.energy == 0 {
		return 0
	}
	return float64(m.busyEnergy) / float64(m.energy)
}
