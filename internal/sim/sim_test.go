package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"netpowerprop/internal/units"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v, want 3", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d, want 3", e.Steps())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", order)
		}
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	var fired []units.Seconds
	var tick Handler
	tick = func(en *Engine) {
		fired = append(fired, en.Now())
		if en.Now() < 5 {
			en.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("cascade fired %d times, want 5: %v", len(fired), fired)
	}
	for i, at := range fired {
		if float64(at) != float64(i+1) {
			t.Errorf("tick %d at %v, want %d", i, at, i+1)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []units.Seconds
	for _, at := range []units.Seconds{1, 2, 3, 10} {
		at := at
		e.Schedule(at, func(en *Engine) { fired = append(fired, en.Now()) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Errorf("RunUntil(5) fired %d events, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Errorf("time after RunUntil = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(20)
	if len(fired) != 4 || e.Now() != 20 {
		t.Errorf("after RunUntil(20): fired=%d now=%v", len(fired), e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	var e Engine
	fired := false
	tm := e.Schedule(1, func(*Engine) { fired = true })
	tm.Cancel()
	tm.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Canceled event at the head of the queue is skipped by RunUntil too.
	tm2 := e.Schedule(e.Now()+1, func(*Engine) { fired = true })
	e.Schedule(e.Now()+2, func(*Engine) {})
	tm2.Cancel()
	e.RunUntil(e.Now() + 3)
	if fired {
		t.Error("canceled event fired via RunUntil")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func(*Engine) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.After(-1, func(*Engine) {})
}

// Property: any set of event times is executed in sorted order.
func TestEngineSortsArbitraryTimes(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var got []float64
		for _, r := range raw {
			at := units.Seconds(r)
			e.Schedule(at, func(en *Engine) { got = append(got, float64(en.Now())) })
		}
		e.Run()
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(0, 100*units.Watt)
	m.Set(10, 50*units.Watt, true) // 100 W idle for 10 s
	m.Set(20, 0, false)            // 50 W busy for 10 s
	e := m.Energy(30)              // 0 W for 10 s
	if math.Abs(e.Joules()-1500) > 1e-9 {
		t.Errorf("energy = %v J, want 1500", e.Joules())
	}
	if be := m.BusyEnergy(30); math.Abs(be.Joules()-500) > 1e-9 {
		t.Errorf("busy energy = %v J, want 500", be.Joules())
	}
	if bt := m.BusyTime(30); math.Abs(float64(bt)-10) > 1e-9 {
		t.Errorf("busy time = %v, want 10", bt)
	}
	if eff := m.Efficiency(30); math.Abs(eff-500.0/1500.0) > 1e-12 {
		t.Errorf("efficiency = %v, want 1/3", eff)
	}
	if m.Power() != 0 {
		t.Errorf("current power = %v, want 0", m.Power())
	}
}

func TestMeterIdempotentReads(t *testing.T) {
	m := NewMeter(0, 10*units.Watt)
	if e1, e2 := m.Energy(5), m.Energy(5); e1 != e2 {
		t.Errorf("repeated reads differ: %v vs %v", e1, e2)
	}
	// Reading earlier than the last read panics (time went backwards).
	defer func() {
		if recover() == nil {
			t.Error("backwards meter read should panic")
		}
	}()
	m.Energy(1)
}

func TestMeterZeroEnergyEfficiency(t *testing.T) {
	m := NewMeter(0, 0)
	if eff := m.Efficiency(10); eff != 0 {
		t.Errorf("zero-energy efficiency = %v, want 0", eff)
	}
}

// Property: meter energy equals the sum of piecewise power x duration for
// random step signals, and busy energy never exceeds total.
func TestMeterConservation(t *testing.T) {
	f := func(steps []struct {
		P uint16
		D uint8
		B bool
	}) bool {
		m := NewMeter(0, 0)
		var now units.Seconds
		var want, wantBusy float64
		cur := 0.0
		curBusy := false
		for _, s := range steps {
			d := units.Seconds(s.D)
			want += cur * float64(d)
			if curBusy {
				wantBusy += cur * float64(d)
			}
			now += d
			m.Set(now, units.Power(s.P), s.B)
			cur, curBusy = float64(s.P), s.B
		}
		got := m.Energy(now)
		gotBusy := m.BusyEnergy(now)
		return math.Abs(got.Joules()-want) < 1e-6 &&
			math.Abs(gotBusy.Joules()-wantBusy) < 1e-6 &&
			gotBusy <= got+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEventRecycleStaleCancel: a timer for an already-fired event must not
// cancel the recycled event object's next incarnation.
func TestEventRecycleStaleCancel(t *testing.T) {
	var e Engine
	t1 := e.Schedule(1, func(*Engine) {})
	e.Run() // fires and recycles t1's event object
	fired := false
	t2 := e.Schedule(2, func(*Engine) { fired = true })
	t1.Cancel() // stale: must be a no-op on the reused object
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	t2.Cancel() // after firing: also a no-op
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

// TestEventRecycleCanceledDrain: canceled events drained by Step and
// RunUntil return to the free list and are reused.
func TestEventRecycleCanceledDrain(t *testing.T) {
	var e Engine
	a := e.Schedule(1, func(*Engine) { t.Fatal("canceled event ran") })
	a.Cancel()
	e.RunUntil(2)
	if got := len(e.free); got != 1 {
		t.Fatalf("free list = %d events, want 1", got)
	}
	ran := false
	e.Schedule(3, func(*Engine) { ran = true })
	if got := len(e.free); got != 0 {
		t.Fatalf("free list = %d events after reuse, want 0", got)
	}
	e.Run()
	if !ran {
		t.Fatal("reused event never ran")
	}
}

// TestScheduleAllocFree guards the free-list pool: once warm, the
// schedule-fire cycle performs no heap allocations per event.
func TestScheduleAllocFree(t *testing.T) {
	var e Engine
	nop := func(*Engine) {}
	e.After(1, nop)
	e.Step() // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, nop)
		e.Step()
	})
	if allocs > 0.01 {
		t.Errorf("schedule+step allocates %.3f objects/op, want 0", allocs)
	}
}

// BenchmarkSchedule measures the event-queue hot cycle; allocs/op is the
// headline (free-list pool target: 0).
func BenchmarkSchedule(b *testing.B) {
	var e Engine
	nop := func(*Engine) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, nop)
		e.Step()
	}
}
