package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is one peer's circuit position.
type BreakerState string

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the peer tripped; forwards are rejected without a
	// network attempt until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: cooldown elapsed; exactly one probe request may
	// pass. Success re-closes the circuit, failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// Default breaker tuning: trip after 5 consecutive typed failures, probe
// again after 2s.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
)

// BreakerOptions configures a Breaker.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens a peer's
	// circuit (DefaultBreakerThreshold when <= 0).
	Threshold int
	// Cooldown is how long an open circuit rejects before allowing a
	// half-open probe (DefaultBreakerCooldown when <= 0).
	Cooldown time.Duration
	// Now injects the clock so breaker timing is deterministic in tests;
	// defaults to time.Now.
	Now func() time.Time
}

// Breaker is a per-peer circuit breaker for the forward/hedge path.
// A peer that fails Threshold consecutive times is cut off for
// Cooldown; after that a single half-open probe decides whether the
// circuit re-closes. All transitions are driven by the injected clock,
// never a background goroutine, so behavior is reproducible.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu    sync.Mutex
	peers map[string]*breakerEntry

	opens    atomic.Uint64
	rejects  atomic.Uint64
	probes   atomic.Uint64
	recloses atomic.Uint64
}

type breakerEntry struct {
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open probe currently in flight
	opens    uint64
}

// NewBreaker builds a Breaker with defaults filled in.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultBreakerThreshold
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultBreakerCooldown
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{
		threshold: opts.Threshold,
		cooldown:  opts.Cooldown,
		now:       opts.Now,
		peers:     make(map[string]*breakerEntry),
	}
}

func (b *Breaker) entry(peer string) *breakerEntry {
	e := b.peers[peer]
	if e == nil {
		e = &breakerEntry{state: BreakerClosed}
		b.peers[peer] = e
	}
	return e
}

// Allow reports whether a request to peer may proceed. While open it
// returns false (counted as a reject) until the cooldown elapses, then
// admits exactly one half-open probe at a time. probe is true when the
// admitted call IS that probe: the caller then owes the breaker exactly
// one resolution — Success, Failure, or CancelProbe — or the peer's
// circuit wedges half-open and rejects forever.
func (b *Breaker) Allow(peer string) (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	switch e.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(e.openedAt) < b.cooldown {
			b.rejects.Add(1)
			return false, false
		}
		e.state = BreakerHalfOpen
		e.probing = true
		b.probes.Add(1)
		return true, true
	default: // half-open
		if e.probing {
			b.rejects.Add(1)
			return false, false
		}
		e.probing = true
		b.probes.Add(1)
		return true, true
	}
}

// Success records a completed request: the circuit re-closes (from any
// state) and the failure streak resets.
func (b *Breaker) Success(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	if e.state != BreakerClosed {
		b.recloses.Add(1)
	}
	e.state = BreakerClosed
	e.fails = 0
	e.probing = false
}

// Failure records a typed forward failure. A half-open probe failing
// re-opens immediately; a closed circuit opens once the consecutive
// streak reaches the threshold.
func (b *Breaker) Failure(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	switch e.state {
	case BreakerHalfOpen:
		e.probing = false
		b.open(e)
	case BreakerClosed:
		e.fails++
		if e.fails >= b.threshold {
			b.open(e)
		}
	}
}

// CancelProbe releases peer's half-open probe slot without recording a
// verdict. For paths that abandon an admitted probe for reasons that say
// nothing about the peer's health — the parent request was canceled, or
// the probe lost a hedge race — so the circuit stays half-open and the
// next Allow may probe again instead of rejecting forever.
func (b *Breaker) CancelProbe(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.peers[peer]; e != nil {
		e.probing = false
	}
}

// open transitions an entry to open. Callers hold b.mu.
func (b *Breaker) open(e *breakerEntry) {
	e.state = BreakerOpen
	e.openedAt = b.now()
	e.fails = 0
	e.opens++
	b.opens.Add(1)
}

// State reports peer's current circuit position (closed when unknown).
// Purely observational: it does not start a half-open probe.
func (b *Breaker) State(peer string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.peers[peer]
	if e == nil {
		return BreakerClosed
	}
	if e.state == BreakerOpen && b.now().Sub(e.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return e.state
}

// Opens, Rejects, Probes, Recloses are lifetime totals across peers.
func (b *Breaker) Opens() uint64    { return b.opens.Load() }
func (b *Breaker) Rejects() uint64  { return b.rejects.Load() }
func (b *Breaker) Probes() uint64   { return b.probes.Load() }
func (b *Breaker) Recloses() uint64 { return b.recloses.Load() }

// OpenCount is how many peers are currently not closed.
func (b *Breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	nOpen := 0
	for _, e := range b.peers {
		if e.state != BreakerClosed {
			nOpen++
		}
	}
	return nOpen
}

// BreakerStatus is one peer's circuit in /v1/cluster. Probing and
// OpenAgeMS make a leaked probe observable: a peer stuck half-open with
// probing=true and a growing age means an admitted probe never resolved.
type BreakerStatus struct {
	Peer      string       `json:"peer"`
	State     BreakerState `json:"state"`
	Fails     int          `json:"consecutive_failures"`
	Opens     uint64       `json:"opens"`
	Probing   bool         `json:"probing,omitempty"`
	OpenAgeMS int64        `json:"open_age_ms,omitempty"`
}

// Snapshot lists every tracked peer's circuit, sorted by address. State
// is the same derived view State reports: an open circuit past its
// cooldown shows half-open.
func (b *Breaker) Snapshot() []BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	out := make([]BreakerStatus, 0, len(b.peers))
	for peer, e := range b.peers {
		st := e.state
		if st == BreakerOpen && now.Sub(e.openedAt) >= b.cooldown {
			st = BreakerHalfOpen
		}
		s := BreakerStatus{Peer: peer, State: st, Fails: e.fails, Opens: e.opens, Probing: e.probing}
		if st != BreakerClosed {
			s.OpenAgeMS = now.Sub(e.openedAt).Milliseconds()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
